// Ablation: bytes shipped per committed TPC-C transaction under value vs
// hybrid (operation) replication — quantifying the Section 5 claim that
// operation replication cuts replication cost by up to an order of
// magnitude (Payment's 500-byte C_DATA field vs a ~40-byte delta).

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

int main() {
  PrintHeader("Ablation: replication bytes per committed TPC-C transaction",
              "Value mode ships whole records; hybrid ships field "
              "operations in the partitioned phase.");
  TpccWorkload tpcc(BenchTpcc());
  for (double p : {0.0, 0.1, 0.5}) {
    {
      StarOptions o = DefaultStar(p);
      StarEngine e(o, tpcc);
      PrintRow("STAR value", p * 100, Measure(e));
    }
    {
      StarOptions o = DefaultStar(p);
      o.replication = ReplicationMode::kHybrid;
      StarEngine e(o, tpcc);
      PrintRow("STAR hybrid", p * 100, Measure(e));
    }
  }
  std::printf("\nExpected: hybrid's B/txn well below value's at P=0 "
              "(everything runs partitioned); the gap closes as P grows "
              "because the single-master phase must ship values.\n");
  return 0;
}
