// Replica-served snapshot reads: scaling read throughput with the replica
// fleet (cc/snapshot.h).
//
// The write path is held fixed — the standard STAR YCSB deployment, 4 nodes,
// 2 workers each — while the number of dedicated replica readers per node
// sweeps 0/1/2.  Readers execute read-only transactions at their local
// replica with zero coordination (no locks, no OCC registration, no
// messages), pinning the applied-epoch watermark the replication fence
// already publishes and validating Silo-style at commit; a conflict with
// in-flight replay is retried locally.  Reported per deployment:
//
//  * read txns/sec and validated keys/sec (the new capacity),
//  * write txns/sec (must stay within noise of the reader-free baseline:
//    readers share nothing with the write path but cores),
//  * staleness — mean watermark lag behind the live epoch, in epochs and
//    milliseconds (bounded by a couple of fence iterations by design),
//  * snapshot conflict/retry rate.
//
// Gates (recorded with host_cpus; honestly evaluable only when the host has
// cores for the extra readers — on a 1-core host every thread time-slices
// one core, so added readers cannibalise writers by construction):
//  * read throughput rises with the reader fleet (k=1 -> k=2),
//  * write throughput at k=2 within 5% of the k=0 baseline.
// Results are mirrored to BENCH_replica_reads.json.

#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"

namespace star {
namespace {

using bench::JsonLog;

struct RunResult {
  double write_tps = 0;
  double read_tps = 0;
  double read_keys_per_sec = 0;
  double lag_epochs = 0;
  double lag_ms = 0;
  double conflict_rate = 0;
  double abort_rate = 0;
};

RunResult RunDeployment(int readers_per_node, ReplicaReadMode mode) {
  YcsbWorkload wl(bench::BenchYcsb());
  StarOptions o = bench::DefaultStar(/*cross_fraction=*/0.1);
  o.replica_read_workers = readers_per_node;
  o.replica_read_mode = mode;
  StarEngine engine(o, wl);
  Metrics m = bench::Measure(engine);
  RunResult r;
  r.write_tps = m.Tps();
  r.read_tps = m.ReplicaReadTps();
  r.read_keys_per_sec =
      m.seconds > 0 ? m.replica_read_keys / m.seconds : 0;
  r.lag_epochs = m.ReplicaReadLagEpochs();
  // One epoch advances per fence, one fence per iteration: epochs of lag
  // translate to wall-clock staleness via the iteration time.
  r.lag_ms = r.lag_epochs * o.iteration_ms;
  r.conflict_rate = m.ReplicaReadConflictRate();
  r.abort_rate =
      m.replica_reads + m.replica_read_aborts > 0
          ? static_cast<double>(m.replica_read_aborts) /
                (m.replica_reads + m.replica_read_aborts)
          : 0;
  return r;
}

void Report(const std::string& config, int readers_per_node,
            const RunResult& r) {
  std::printf(
      "%-14s  %9.0f write tps  %9.0f read tps  lag=%5.2f ep (%5.1f ms)"
      "  conflicts=%5.2f%%  aborts=%5.2f%%\n",
      config.c_str(), r.write_tps, r.read_tps, r.lag_epochs, r.lag_ms,
      100 * r.conflict_rate, 100 * r.abort_rate);
  std::fflush(stdout);
  JsonLog::Instance().Row(
      {{"config", config},
       {"readers_per_node", JsonLog::Format(readers_per_node)},
       {"write_tps", JsonLog::Format(r.write_tps)},
       {"read_tps", JsonLog::Format(r.read_tps)},
       {"read_keys_per_sec", JsonLog::Format(r.read_keys_per_sec)},
       {"staleness_epochs", JsonLog::Format(r.lag_epochs)},
       {"staleness_ms", JsonLog::Format(r.lag_ms)},
       {"conflict_rate", JsonLog::Format(r.conflict_rate)},
       {"abort_rate", JsonLog::Format(r.abort_rate)}});
}

}  // namespace
}  // namespace star

int main() {
  star::bench::PrintHeader(
      "replica_reads",
      "Replica-served snapshot reads (zero-coordination, watermark-pinned)\n"
      "vs the reader fleet size, write workload held fixed.  Gates: read tps\n"
      "rises k=1 -> k=2; write tps at k=2 within 5% of k=0 (cores "
      "permitting).");

  long cpus = std::thread::hardware_concurrency();
  star::RunResult base = star::RunDeployment(0, star::ReplicaReadMode::kSnapshot);
  star::Report("readers_0", 0, base);
  star::RunResult k1 = star::RunDeployment(1, star::ReplicaReadMode::kSnapshot);
  star::Report("readers_1", 1, k1);
  star::RunResult k2 = star::RunDeployment(2, star::ReplicaReadMode::kSnapshot);
  star::Report("readers_2", 2, k2);
  star::RunResult mono =
      star::RunDeployment(1, star::ReplicaReadMode::kMonotonic);
  star::Report("monotonic_1", 1, mono);

  double read_scaling = k1.read_tps > 0 ? k2.read_tps / k1.read_tps : 0;
  double write_impact = base.write_tps > 0 ? k2.write_tps / base.write_tps : 0;
  // The deployment runs 4 nodes x (2 workers + k readers) + io + control
  // threads; the gates measure genuine parallel capacity only when the host
  // can actually run the added readers alongside the writers.
  long needed = 4 * (2 + 2) + 2;
  bool evaluable = cpus >= needed;
  star::bench::JsonLog::Instance().Row(
      {{"config", "gate"},
       {"read_scaling_k1_to_k2", star::bench::JsonLog::Format(read_scaling)},
       {"write_impact_k2_vs_k0", star::bench::JsonLog::Format(write_impact)},
       {"gate_evaluable", evaluable ? "true" : "false"},
       {"host_cpus", star::bench::JsonLog::Format(static_cast<double>(cpus))}});
  std::printf(
      "\nread scaling k=1 -> k=2: %.2fx (gate: > 1x)   "
      "write impact k=2 vs k=0: %.2fx (gate: within 5%%)\n"
      "%ld cpu(s) on this host, ~%ld threads in the k=2 deployment: gates %s"
      "\nreaders never block writers by construction (no shared locks, no\n"
      "fence participation); on a small host they still share cores, which\n"
      "is scheduling pressure, not coordination.\n",
      read_scaling, write_impact, cpus, needed,
      evaluable ? "evaluable on this host"
                : "recorded but not evaluable on this host");
  return 0;
}
