// Micro-benchmarks of the substrate data structures (google-benchmark):
// hash-table probes, optimistic reads, TID generation, operation
// application, replication entry encode/decode.

#include <benchmark/benchmark.h>

#include "cc/operation.h"
#include "common/rng.h"
#include "common/serializer.h"
#include "replication/log_entry.h"
#include "storage/hash_table.h"

namespace star {

static void BM_HashTableGet(benchmark::State& state) {
  HashTable ht(100, 100000, false);
  for (uint64_t k = 0; k < 100000; ++k) ht.GetOrInsert(k);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ht.Get(rng.Uniform(100000)));
  }
}
BENCHMARK(BM_HashTableGet);

static void BM_ReadStable(benchmark::State& state) {
  HashTable ht(100, 1024, false);
  auto row = ht.GetOrInsertRow(1);
  row.rec->UnlockWithTid(Tid::Make(1, 1, 0));
  char out[100];
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.ReadStable(out));
  }
}
BENCHMARK(BM_ReadStable);

static void BM_ThomasApply(benchmark::State& state) {
  HashTable ht(100, 1024, false);
  auto row = ht.GetOrInsertRow(1);
  char v[100] = {};
  uint64_t seq = 1;
  for (auto _ : state) {
    row.rec->ApplyThomas(Tid::Make(1, seq++, 0), v, 100, row.value, false);
  }
}
BENCHMARK(BM_ThomasApply);

static void BM_TidGenerate(benchmark::State& state) {
  TidGenerator gen(1);
  uint64_t observed = 0;
  for (auto _ : state) {
    observed = gen.Generate(observed, 1);
    benchmark::DoNotOptimize(observed);
  }
}
BENCHMARK(BM_TidGenerate);

static void BM_OperationStringPrepend(benchmark::State& state) {
  char field[500];
  std::memset(field, 'x', sizeof(field));
  Operation op = Operation::StringPrepend(0, 500, "12 34 5 6 7 8.90|");
  for (auto _ : state) {
    op.ApplyTo(field);
  }
}
BENCHMARK(BM_OperationStringPrepend);

static void BM_RepEntryRoundTrip(benchmark::State& state) {
  std::string value(100, 'v');
  for (auto _ : state) {
    WriteBuffer buf;
    SerializeValueEntry(buf, 0, 0, 42, Tid::Make(1, 1, 0), value);
    ReadBuffer in(buf.data());
    RepEntry e = RepEntry::Deserialize(in);
    benchmark::DoNotOptimize(e.value.size());
  }
}
BENCHMARK(BM_RepEntryRoundTrip);

}  // namespace star

BENCHMARK_MAIN();
