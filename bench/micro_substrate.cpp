// Micro-benchmarks of the substrate and of the transaction hot path.
//
// Unlike the figure benches, this binary instruments the *allocator*: a
// counting operator-new hook reports amortized heap allocations per
// committed transaction alongside txns/sec, so "the commit path does not
// touch the allocator in steady state" is a measured property, not an
// asserted one.  Results are mirrored to BENCH_micro_substrate.json.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_common.h"
#include "cc/operation.h"
#include "cc/silo.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/serializer.h"
#include "net/endpoint.h"
#include "net/fabric.h"
#include "replication/applier.h"
#include "replication/log_entry.h"
#include "replication/stream.h"
#include "storage/database.h"
#include "storage/hash_table.h"

// ---------------------------------------------------------------------------
// Counting allocator hook
// ---------------------------------------------------------------------------

static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  std::size_t a = static_cast<std::size_t>(al);
  std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace star {
namespace {

using bench::JsonLog;

constexpr uint32_t kValueSize = 100;
constexpr uint64_t kRows = 50'000;

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", kValueSize, kRows}};
  auto db = std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
  char v[kValueSize] = {};
  for (uint64_t k = 0; k < kRows; ++k) db->Load(0, 0, k, v);
  return db;
}

/// An ideal wire: the hot-path benches measure the send/apply code, not the
/// simulated link.
net::SimNetOptions IdealNet() {
  net::SimNetOptions o;
  o.link_latency_us = 0;
  o.local_latency_us = 0;
  o.bandwidth_gbps = 0;  // unlimited
  return o;
}

struct HotPathResult {
  double tps = 0;
  double allocs_per_txn = 0;
};

void Report(const char* name, const HotPathResult& r) {
  std::printf("%-28s %12.0f txns/sec  %8.4f allocs/txn\n", name, r.tps,
              r.allocs_per_txn);
  JsonLog::Instance().Row({{"bench", name},
                           {"tps", JsonLog::Format(r.tps)},
                           {"allocs_per_txn", JsonLog::Format(r.allocs_per_txn)}});
}

/// One synthetic transaction: 4 reads, 3 value writes, 1 field operation.
/// Write-heavy on purpose — this is the shape that stresses write-set and
/// replication-buffer memory management.
template <typename Rng>
void RunProc(SiloContext& ctx, Rng& rng) {
  char buf[kValueSize];
  for (int r = 0; r < 4; ++r) {
    (void)ctx.Read(0, 0, rng.Uniform(kRows), buf);
  }
  for (int w = 0; w < 3; ++w) {
    uint64_t key = rng.Uniform(kRows);
    std::memset(buf, static_cast<int>(key & 0xff), sizeof(buf));
    ctx.Write(0, 0, key, buf);
  }
  ctx.ApplyOperation(0, 0, rng.Uniform(kRows), Operation::AddI64(0, 1));
}

/// Shared harness for the two hot-path benches: run `txns` transactions
/// through `commit` (which commits the context and returns the TID, or 0 on
/// abort), replicating to a drained replica, and measure txns/sec plus
/// allocations per transaction in steady state.
template <typename Commit>
HotPathResult MeasureHotPath(uint64_t txns, bool allow_operations,
                             uint64_t seed, Commit&& commit) {
  auto db = MakeDb();
  auto replica = MakeDb();
  net::SimTransport fabric(2, IdealNet());
  net::Endpoint ep(&fabric, 0);  // never Start()ed: we drain inline
  ReplicationCounters counters(2);
  ReplicationStream stream(&ep, &counters, 2);
  ReplicationApplier applier(replica.get(), &counters);
  Rng rng(seed);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);

  net::Message m;
  auto drain = [&] {
    // Inline stand-in for the replica's io loop: apply, then return the
    // payload buffer to the pool (exactly what Endpoint::IoLoop does).
    while (fabric.Poll(1, &m)) {
      applier.ApplyBatch(m.src, m.payload);
      fabric.payload_pool().Release(1, std::move(m.payload));
    }
  };
  auto one = [&] {
    ctx.Reset();
    RunProc(ctx, rng);
    uint64_t tid = commit(ctx, gen, epoch);
    if (tid == 0) return;
    stream.Append(1, tid, ctx.write_set(), allow_operations);
  };

  for (uint64_t i = 0; i < txns / 8; ++i) one();  // warm up capacities
  stream.FlushAll();
  drain();

  uint64_t allocs0 = g_allocations.load();
  uint64_t t0 = NowNanos();
  for (uint64_t i = 0; i < txns; ++i) {
    one();
    if ((i & 255) == 255) drain();
  }
  stream.FlushAll();
  drain();
  uint64_t dt = NowNanos() - t0;
  uint64_t allocs = g_allocations.load() - allocs0;

  HotPathResult r;
  r.tps = static_cast<double>(txns) / (static_cast<double>(dt) / 1e9);
  r.allocs_per_txn = static_cast<double>(allocs) / static_cast<double>(txns);
  return r;
}

/// Partitioned-phase hot path (Section 4.1): serial commit, asynchronous
/// operation-mode replication into a batched stream, applied on a replica.
HotPathResult BenchPartitionedPhase(uint64_t txns) {
  return MeasureHotPath(
      txns, /*allow_operations=*/true, /*seed=*/7,
      [](SiloContext& ctx, TidGenerator& gen, std::atomic<uint64_t>& epoch) {
        return SiloSerialCommit(ctx, gen, epoch).tid;
      });
}

/// Single-master-phase hot path (Section 4.2): full Silo OCC commit with
/// value-mode replication (the mode used when many threads share a
/// partition).
HotPathResult BenchSingleMasterPhase(uint64_t txns) {
  return MeasureHotPath(
      txns, /*allow_operations=*/false, /*seed=*/11,
      [](SiloContext& ctx, TidGenerator& gen, std::atomic<uint64_t>& epoch) {
        CommitResult cr = SiloOccCommit(ctx, gen, epoch);
        return cr.status == TxnStatus::kCommitted ? cr.tid : uint64_t{0};
      });
}

/// Synchronous-replication hot path (Figure 9's SYNC column): the commit
/// serialises one batch per replica inside the pre-install hook, while the
/// write locks are held.  This reproduces StarEngine::SyncReplicate's
/// memory behaviour — per-worker batch buffers that re-adopt recycled
/// payload-pool strings, and a hook constructed once per worker — so the
/// alloc counter certifies the sync path stays off the allocator too (the
/// ack round trip is the fabric's latency domain, not the allocator's).
HotPathResult BenchSyncReplicationPath(uint64_t txns) {
  auto db = MakeDb();
  auto replica = MakeDb();
  net::SimTransport fabric(2, IdealNet());
  net::Endpoint ep(&fabric, 0);  // never Start()ed: we drain inline
  ReplicationCounters counters(2);
  ReplicationApplier applier(replica.get(), &counters);
  Rng rng(13);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);

  // The worker-state scratch StarEngine hoists: persists across commits.
  std::vector<WriteBuffer> batches(2);

  net::Message m;
  auto drain = [&] {
    while (fabric.Poll(1, &m)) {
      applier.ApplyBatch(m.src, m.payload);
      fabric.payload_pool().Release(1, std::move(m.payload));
    }
  };
  PreInstallHook hook = [&](uint64_t tid, WriteSet& ws) {
    WriteBuffer& b = batches[1];
    uint64_t n = 0;
    for (const auto& e : ws.entries()) {
      if (e.is_delete) {
        SerializeDeleteEntry(b, e.table, e.partition, e.key, tid);
      } else {
        SerializeValueEntry(b, e.table, e.partition, e.key, tid,
                            ws.ValueView(e));
      }
      ++n;
    }
    if (!b.empty()) {
      if (ep.Send(1, net::MsgType::kReplicationBatch, b.Release())) {
        counters.AddSent(1, n);
      }
      b.Adopt(ep.AcquirePayload());
    }
    return true;
  };
  // Synchronous replication is ack-paced — at most one batch per worker in
  // flight — so the replica drains after every commit (draining lazily
  // would overflow the payload pool's per-shard cap and charge the
  // allocator for a backlog the real sync path never builds).
  auto one = [&] {
    ctx.Reset();
    RunProc(ctx, rng);
    SiloOccCommit(ctx, gen, epoch, hook);
    drain();
  };

  for (uint64_t i = 0; i < txns / 8; ++i) one();  // warm up capacities

  uint64_t allocs0 = g_allocations.load();
  uint64_t t0 = NowNanos();
  for (uint64_t i = 0; i < txns; ++i) one();
  drain();
  uint64_t dt = NowNanos() - t0;
  uint64_t allocs = g_allocations.load() - allocs0;

  HotPathResult r;
  r.tps = static_cast<double>(txns) / (static_cast<double>(dt) / 1e9);
  r.allocs_per_txn = static_cast<double>(allocs) / static_cast<double>(txns);
  return r;
}

// ---------------------------------------------------------------------------
// Substrate micro-ops (ns/op)
// ---------------------------------------------------------------------------

template <typename T>
inline void benchmark_do_not_optimize(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

template <typename F>
double NsPerOp(const char* name, uint64_t iters, F&& f) {
  f();  // warm
  uint64_t t0 = NowNanos();
  for (uint64_t i = 0; i < iters; ++i) f();
  double ns = static_cast<double>(NowNanos() - t0) / iters;
  std::printf("%-28s %10.1f ns/op\n", name, ns);
  JsonLog::Instance().Row({{"bench", name}, {"ns_per_op", JsonLog::Format(ns)}});
  return ns;
}

void BenchSubstrate() {
  {
    HashTable ht(kValueSize, kRows, false);
    for (uint64_t k = 0; k < kRows; ++k) ht.GetOrInsert(k);
    Rng rng(1);
    NsPerOp("hash_table_get", 2'000'000,
            [&] { benchmark_do_not_optimize(ht.Get(rng.Uniform(kRows))); });
  }
  {
    HashTable ht(kValueSize, 1024, false);
    auto row = ht.GetOrInsertRow(1);
    row.rec->UnlockWithTid(Tid::Make(1, 1, 0));
    char out[kValueSize];
    NsPerOp("read_stable", 2'000'000,
            [&] { benchmark_do_not_optimize(row.ReadStable(out)); });
  }
  {
    TidGenerator gen(1);
    uint64_t observed = 0;
    NsPerOp("tid_generate", 2'000'000, [&] {
      observed = gen.Generate(observed, 1);
      benchmark_do_not_optimize(observed);
    });
  }
  {
    std::string value(kValueSize, 'v');
    NsPerOp("rep_entry_round_trip", 500'000, [&] {
      WriteBuffer buf;
      SerializeValueEntry(buf, 0, 0, 42, Tid::Make(1, 1, 0), value);
      ReadBuffer in(buf.data());
      RepEntry e = RepEntry::Deserialize(in);
      benchmark_do_not_optimize(e.value.size());
    });
  }
}

}  // namespace
}  // namespace star

int main() {
  star::bench::PrintHeader(
      "micro_substrate",
      "Substrate micro-ops and hot-path txns/sec + allocations per "
      "committed transaction (steady state).");

  star::BenchSubstrate();

  uint64_t txns = static_cast<uint64_t>(200'000 * star::bench::Scale());
  star::Report("partitioned_hot_path", star::BenchPartitionedPhase(txns));
  star::Report("single_master_hot_path", star::BenchSingleMasterPhase(txns));
  star::Report("sync_replication_hot_path",
               star::BenchSyncReplicationPath(txns));
  return 0;
}
