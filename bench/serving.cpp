// Serving front end under open-loop load: tail latency vs offered rate,
// with admission control holding the accepted-request tail at overload
// (serve/server.h, serve/admission.h, serve/loadgen.h).
//
// Unlike the figure benches, which drive the engine from closed-loop
// worker threads, this is the end-to-end client path: a ServeServer on TCP
// loopback, stored procedures dispatched through the ProcRegistry into the
// engine's external queues, and an open-loop Poisson load generator whose
// latency clock starts at each request's *scheduled* arrival time — so the
// numbers are immune to coordinated omission (a backed-up socket makes the
// measured latency worse, not invisible, exactly as a real client fleet
// would experience it).
//
// Procedure: a calibration burst estimates saturation capacity C (accepted
// throughput with the gate wide open at an offered rate far beyond the
// engine), then the offered rate sweeps 0.25x..2x of C.  Reported per
// point: accepted p50/p99/p99.9 (ms), achieved rate and shed rate.
//
// Gates (recorded with host_cpus; the tail gate is honestly evaluable only
// with enough cores that the loadgen is not stealing the engine's cpu —
// a 1-core smoke host time-slices everything onto one core):
//  * at 2x saturation, accepted-request p99 stays within the configured
//    SLO budget (the open-loop queue would otherwise grow without bound
//    and p99 with it) — admission_holds_slo;
//  * at 2x saturation a nonzero shed rate is actually reported (the gate
//    engaged rather than the engine absorbing everything) — gate_engaged.
// Results are mirrored to BENCH_serving.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "serve/loadgen.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace star {
namespace {

using bench::JsonLog;
using serve::LoadGenOptions;
using serve::LoadGenResult;
using serve::ProcRegistry;
using serve::ServeOptions;
using serve::ServeServer;

constexpr double kSloMs = 50.0;

struct Point {
  double offered_tps = 0;
  LoadGenResult res;
  ServeServer::Counters srv;
};

Point RunPoint(double offered_tps, double duration_s, bool gate_open) {
  YcsbWorkload wl(bench::BenchYcsb());
  StarOptions o = bench::DefaultStar(/*cross_fraction=*/0.1);
  // The engine executes exactly the offered client load: no synthetic
  // closed-loop transactions competing with the serving path.
  o.synthetic_load = false;
  o.replica_read_workers = 1;  // serve read-only procs from replica readers
  ProcRegistry reg = ProcRegistry::ForWorkload(wl);

  StarEngine engine(o, wl);
  engine.Start();

  ServeOptions so;
  so.admission.slo_budget_ns = static_cast<uint64_t>(kSloMs * 1e6);
  if (gate_open) {
    // Calibration: an effectively unbounded budget so the measured
    // accepted throughput is the engine's capacity, not the gate's.
    so.admission.slo_budget_ns = ~0ull >> 1;
    so.admission.max_inflight = 1u << 20;
  }
  ServeServer server(&engine, &reg, so);
  if (!server.Start()) {
    std::fprintf(stderr, "serving: server failed to start\n");
    engine.Stop();
    std::exit(1);
  }

  LoadGenOptions lg;
  lg.port = server.port();
  lg.threads = 2;
  lg.conns_per_thread = 16;
  lg.offered_tps = offered_tps;
  lg.duration_s = duration_s;
  lg.drain_s = std::min(2.0, duration_s);
  lg.read_fraction = 0.5;
  lg.cross_fraction = 0.1;
  lg.num_partitions = o.cluster.num_partitions();

  Point p;
  p.offered_tps = offered_tps;
  p.res = serve::RunOpenLoopLoad(lg);
  server.Stop();
  engine.Stop();  // server object must outlive this (completion callbacks)
  p.srv = server.counters();
  return p;
}

void Report(const std::string& label, const Point& p) {
  const LoadGenResult& r = p.res;
  std::printf(
      "%-12s offered=%8.0f/s achieved=%8.0f/s shed=%5.1f%%  "
      "p50=%7.2f ms  p99=%7.2f ms  p99.9=%7.2f ms  lost=%llu\n",
      label.c_str(), p.offered_tps, r.achieved_tps, 100 * r.shed_rate,
      r.latency.p50() / 1e6, r.latency.p99() / 1e6, r.latency.p999() / 1e6,
      static_cast<unsigned long long>(r.lost));
  std::fflush(stdout);
  JsonLog::Instance().Row(
      {{"label", label},
       {"offered_tps", JsonLog::Format(p.offered_tps)},
       {"achieved_tps", JsonLog::Format(r.achieved_tps)},
       {"shed_rate", JsonLog::Format(r.shed_rate)},
       {"p50_ms", JsonLog::Format(r.latency.p50() / 1e6)},
       {"p99_ms", JsonLog::Format(r.latency.p99() / 1e6)},
       {"p999_ms", JsonLog::Format(r.latency.p999() / 1e6)},
       {"ok", JsonLog::Format(static_cast<double>(r.ok))},
       {"aborted", JsonLog::Format(static_cast<double>(r.aborted))},
       {"shed", JsonLog::Format(static_cast<double>(r.shed))},
       {"shed_retried", JsonLog::Format(static_cast<double>(r.shed_retried))},
       {"shed_give_up", JsonLog::Format(static_cast<double>(r.shed_give_up))},
       {"retry", JsonLog::Format(static_cast<double>(r.retry))},
       {"lost", JsonLog::Format(static_cast<double>(r.lost))},
       {"slo_ms", JsonLog::Format(kSloMs)}});
}

}  // namespace
}  // namespace star

int main() {
  using namespace star;

  bench::PrintHeader(
      "serving",
      "Open-loop serving tail latency vs offered load (YCSB procs over the "
      "wire protocol; admission control at 2x saturation)");

  double duration_s = std::max(0.5, 2.0 * bench::Scale());

  // Calibration: gate wide open, offered far past any plausible capacity
  // for this host; accepted throughput ~= saturation capacity C.
  Point cal = RunPoint(/*offered_tps=*/20000.0, duration_s,
                       /*gate_open=*/true);
  double capacity = std::max(50.0, cal.res.achieved_tps);
  Report("calibrate", cal);

  const double kLoads[] = {0.25, 0.5, 1.0, 1.5, 2.0};
  Point at2x;
  for (double frac : kLoads) {
    Point p = RunPoint(frac * capacity, duration_s, /*gate_open=*/false);
    char label[32];
    std::snprintf(label, sizeof(label), "%.2fx", frac);
    Report(label, p);
    if (frac == 2.0) at2x = p;
  }

  // Overload gates, recorded for the perf trajectory (see header comment).
  unsigned cpus = std::thread::hardware_concurrency();
  bool admission_holds_slo =
      at2x.res.latency.count() > 0 && at2x.res.latency.p99() / 1e6 <= kSloMs;
  bool gate_engaged = at2x.res.shed > 0;
  std::printf(
      "\n2x-saturation gate: p99=%.2f ms (slo %.0f ms) %s, shed=%.1f%% %s "
      "(host_cpus=%u)\n",
      at2x.res.latency.p99() / 1e6, kSloMs,
      admission_holds_slo ? "OK" : "MISS", 100 * at2x.res.shed_rate,
      gate_engaged ? "(gate engaged)" : "(gate idle)", cpus);
  JsonLog::Instance().Row(
      {{"label", "gate_2x"},
       {"capacity_tps", JsonLog::Format(capacity)},
       {"p99_ms", JsonLog::Format(at2x.res.latency.p99() / 1e6)},
       {"slo_ms", JsonLog::Format(kSloMs)},
       {"shed_rate", JsonLog::Format(at2x.res.shed_rate)},
       {"admission_holds_slo",
        JsonLog::Format(admission_holds_slo ? 1.0 : 0.0)},
       {"gate_engaged", JsonLog::Format(gate_engaged ? 1.0 : 0.0)},
       {"host_cpus", JsonLog::Format(static_cast<double>(cpus))}});
  return 0;
}
