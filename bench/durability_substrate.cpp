// Durable-epoch group-commit substrate: what durability costs, and what the
// incremental checkpoint chain buys at rejoin.
//
// Three sections, mirrored to BENCH_durability.json:
//
//  * engine commit latency with durable logging, commit_wait=none vs
//    durable — the visible price of "results release only once their epoch
//    is durable" (fsyncs amortise across the whole epoch, so the tax shows
//    up in p50/p99, not throughput);
//  * raw logger-pool append throughput and fsyncs-per-epoch at 1 vs 2
//    logger threads — group commit means the fsync count tracks epochs,
//    not transactions;
//  * recovery cost vs delta size — a rejoin that recovers base + delta +
//    log tail must re-read O(changed rows), not O(table).
//
// Gates (recorded with host_cpus; the latency gate needs a host with
// enough cores that logger threads are not time-slicing with workers):
//  * durable commit_wait engine commits work and publishes a nonzero
//    cluster durable epoch;
//  * delta checkpoint entries == rows actually touched (exact O(delta)).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/tid.h"
#include "wal/logger.h"
#include "wal/wal.h"

namespace star {
namespace {

using bench::JsonLog;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = "/tmp/star_bench_dur_" + std::to_string(::getpid()) +
                    "_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- section 1: engine commit latency, commit_wait none vs durable -------

Metrics RunEngine(CommitWait wait, const std::string& dir) {
  StarOptions o = bench::DefaultStar(0.1);
  o.durable_logging = true;
  o.fsync = true;
  o.log_workers = 2;
  o.log_dir = dir;
  o.commit_wait = wait;
  auto wl = std::make_unique<YcsbWorkload>(bench::BenchYcsb());
  StarEngine engine(o, *wl);
  return bench::Measure(engine);
}

void CommitWaitSection() {
  bench::PrintHeader(
      "Durability substrate",
      "commit latency under durable logging (group commit, fsync on)");
  for (CommitWait wait : {CommitWait::kNone, CommitWait::kDurable}) {
    const char* name = wait == CommitWait::kDurable ? "wait=durable"
                                                    : "wait=none";
    std::string dir = FreshDir(name + 5);
    Metrics m = RunEngine(wait, dir);
    double fsyncs_per_epoch =
        static_cast<double>(m.wal_fsyncs) /
        std::max<uint64_t>(1, m.durable_epoch);
    std::printf(
        "%-14s %10.0f txns/sec  p50=%7.2f ms  p99=%7.2f ms  "
        "durable_epoch=%llu  fsyncs/epoch=%.1f\n",
        name, m.Tps(), m.latency.p50() / 1e6, m.latency.p99() / 1e6,
        static_cast<unsigned long long>(m.durable_epoch), fsyncs_per_epoch);
    JsonLog::Instance().Row(
        {{"config", name},
         {"tps", JsonLog::Format(m.Tps())},
         {"p50_ms", JsonLog::Format(m.latency.p50() / 1e6)},
         {"p99_ms", JsonLog::Format(m.latency.p99() / 1e6)},
         {"durable_epoch",
          JsonLog::Format(static_cast<double>(m.durable_epoch))},
         {"wal_fsyncs", JsonLog::Format(static_cast<double>(m.wal_fsyncs))},
         {"fsyncs_per_epoch", JsonLog::Format(fsyncs_per_epoch)},
         {"committed", JsonLog::Format(static_cast<double>(m.committed))}});
    if (wait == CommitWait::kDurable) {
      bool ok = m.committed > 0 && m.durable_epoch > 0;
      long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
      JsonLog::Instance().Row(
          {{"config", "gate"},
           {"gate", "durable_wait_commits"},
           {"pass", ok ? "true" : "false"},
           {"host_cpus", JsonLog::Format(static_cast<double>(cpus))}});
      std::printf("gate durable_wait_commits: %s (%ld cpus)\n",
                  ok ? "PASS" : "FAIL", cpus);
    }
    std::filesystem::remove_all(dir);
  }
}

// --- section 2: raw logger-pool appends + fsyncs per epoch ---------------

void LoggerPoolSection() {
  constexpr int kLanes = 2;
  const double seconds = 0.5 * bench::Scale();
  for (int loggers : {1, 2}) {
    std::string dir = FreshDir("pool" + std::to_string(loggers));
    wal::LoggerPoolOptions lo;
    lo.dir = dir;
    lo.num_lanes = kLanes;
    lo.num_loggers = loggers;
    lo.fsync = true;
    wal::LoggerPool pool(lo);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> appends{0};
    std::vector<std::thread> writers;
    for (int l = 0; l < kLanes; ++l) {
      writers.emplace_back([&, l] {
        wal::LogLane* lane = pool.lane(l);
        uint64_t v = 0;
        uint64_t seq = 1;
        while (!stop.load(std::memory_order_relaxed)) {
          ++v;
          lane->Append(0, 0, v & 1023, Tid::Make(1, seq++, static_cast<uint64_t>(l)),
                       {reinterpret_cast<const char*>(&v), sizeof(v)});
          appends.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // An epoch fence every 10 ms, like the engine's iteration cadence.
    int64_t start = NowNs();
    uint64_t epoch = 0;
    while (NowNs() - start < static_cast<int64_t>(seconds * 1e9)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      ++epoch;
      for (int l = 0; l < kLanes; ++l) pool.lane(l)->MarkEpoch(epoch);
    }
    stop.store(true);
    for (auto& t : writers) t.join();
    pool.Drain();
    double secs = (NowNs() - start) / 1e9;
    double aps = appends.load() / secs;
    double fsyncs_per_epoch =
        static_cast<double>(pool.fsyncs()) /
        std::max<uint64_t>(1, pool.durable_epoch());
    std::printf(
        "loggers=%d       %10.0f appends/sec  durable_epoch=%llu  "
        "fsyncs/epoch=%.1f  bytes=%llu\n",
        loggers, aps, static_cast<unsigned long long>(pool.durable_epoch()),
        fsyncs_per_epoch, static_cast<unsigned long long>(pool.bytes_written()));
    JsonLog::Instance().Row(
        {{"config", "pool_loggers_" + std::to_string(loggers)},
         {"appends_per_sec", JsonLog::Format(aps)},
         {"durable_epoch",
          JsonLog::Format(static_cast<double>(pool.durable_epoch()))},
         {"fsyncs_per_epoch", JsonLog::Format(fsyncs_per_epoch)},
         {"bytes", JsonLog::Format(static_cast<double>(pool.bytes_written()))}});
    pool.Stop();
    std::filesystem::remove_all(dir);
  }
}

// --- section 3: recovery time vs delta size ------------------------------

void RecoverySection() {
  constexpr uint64_t kRows = 20'000;
  for (uint64_t touched : {100ull, 2000ull}) {
    std::string dir = FreshDir("rec" + std::to_string(touched));
    std::vector<TableSchema> schemas{{"t", 8, kRows * 2}};
    Database db(schemas, 1, std::vector<int>{0}, false);
    std::atomic<uint64_t> stable{0};
    wal::LoggerPoolOptions lo;
    lo.dir = dir;
    wal::LoggerPool pool(lo);
    pool.MarkComplete();
    wal::LogLane* lane = pool.lane(0);

    for (uint64_t key = 1; key <= kRows; ++key) {
      uint64_t tid = Tid::Make(1, key, 0);
      uint64_t v = key;
      lane->Append(0, 0, key, tid,
                   {reinterpret_cast<const char*>(&v), sizeof(v)});
      HashTable::Row row = db.table(0, 0)->GetOrInsertRow(key);
      row.rec->ApplyThomas(tid, &v, row.size, row.value, db.two_version());
    }
    lane->MarkEpoch(1);
    pool.Drain();
    wal::Checkpointer ckpt(&db, dir, 0, &stable);
    stable.store(1);
    ckpt.RunOnce();
    uint64_t base_entries = ckpt.entries_written();

    for (uint64_t key = 1; key <= touched; ++key) {
      uint64_t tid = Tid::Make(2, key, 0);
      uint64_t v = key * 3;
      lane->Append(0, 0, key, tid,
                   {reinterpret_cast<const char*>(&v), sizeof(v)});
      HashTable::Row row = db.table(0, 0)->GetOrInsertRow(key);
      row.rec->ApplyThomas(tid, &v, row.size, row.value, db.two_version());
    }
    lane->MarkEpoch(2);
    pool.Drain();
    stable.store(2);
    ckpt.RunOnce();
    uint64_t delta_entries = ckpt.entries_written() - base_entries;
    pool.Stop();

    Database fresh(schemas, 1, std::vector<int>{0}, false);
    int64_t t0 = NowNs();
    wal::RecoveryResult r = wal::Recover(&fresh, dir, 0);
    double recover_ms = (NowNs() - t0) / 1e6;
    std::printf(
        "delta=%5llu/%llu rows  recover=%7.2f ms  ckpt_entries=%llu  "
        "delta_entries=%llu\n",
        static_cast<unsigned long long>(touched),
        static_cast<unsigned long long>(kRows), recover_ms,
        static_cast<unsigned long long>(r.checkpoint_entries),
        static_cast<unsigned long long>(delta_entries));
    JsonLog::Instance().Row(
        {{"config", "recover_delta_" + std::to_string(touched)},
         {"rows", JsonLog::Format(static_cast<double>(kRows))},
         {"touched", JsonLog::Format(static_cast<double>(touched))},
         {"recover_ms", JsonLog::Format(recover_ms)},
         {"delta_entries", JsonLog::Format(static_cast<double>(delta_entries))},
         {"committed_epoch",
          JsonLog::Format(static_cast<double>(r.committed_epoch))}});
    bool o_delta = delta_entries == touched;
    if (!o_delta) {
      std::printf("gate delta_is_o_delta: FAIL (%llu entries for %llu rows)\n",
                  static_cast<unsigned long long>(delta_entries),
                  static_cast<unsigned long long>(touched));
    }
    long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
    JsonLog::Instance().Row(
        {{"config", "gate"},
         {"gate", "delta_is_o_delta"},
         {"pass", o_delta ? "true" : "false"},
         {"host_cpus", JsonLog::Format(static_cast<double>(cpus))}});
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace star

int main() {
  star::CommitWaitSection();
  star::LoggerPoolSection();
  star::RecoverySection();
  return 0;
}
