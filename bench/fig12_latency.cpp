// Figure 12: latency (p50/p99) of each approach, synchronous replication vs
// asynchronous replication + epoch-based group commit.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

int main() {
  PrintHeader("Figure 12: latency (ms) p50/p99",
              "Sync systems: sub-epoch latency that grows with P for the "
              "distributed engines.  Async/group-commit systems (incl. "
              "STAR): latency tracks the 10 ms epoch regardless of P.");
  YcsbWorkload ycsb(BenchYcsb());

  std::printf("\n--- synchronous replication, YCSB ---\n");
  for (double p : {0.1, 0.5, 0.9}) {
    BaselineOptions o = DefaultBase(p);
    o.sync_replication = true;
    {
      PbOccEngine e(o, ycsb);
      PrintRow("PB.OCC/sync", p * 100, Measure(e));
    }
    {
      DistOccEngine e(o, ycsb);
      PrintRow("Dist.OCC/sync", p * 100, Measure(e));
    }
    {
      DistS2plEngine e(o, ycsb);
      PrintRow("Dist.S2PL/sync", p * 100, Measure(e));
    }
  }

  std::printf("\n--- async + epoch group commit, YCSB, P=10%% ---\n");
  {
    StarEngine e(DefaultStar(0.1), ycsb);
    PrintRow("STAR", 10, Measure(e));
  }
  {
    PbOccEngine e(DefaultBase(0.1), ycsb);
    PrintRow("PB.OCC", 10, Measure(e));
  }
  {
    DistOccEngine e(DefaultBase(0.1), ycsb);
    PrintRow("Dist.OCC", 10, Measure(e));
  }
  {
    DistS2plEngine e(DefaultBase(0.1), ycsb);
    PrintRow("Dist.S2PL", 10, Measure(e));
  }
  std::printf("\npaper check: async rows all cluster around the epoch "
              "(paper: ~6/11 ms with a 10 ms epoch).\n");
  return 0;
}
