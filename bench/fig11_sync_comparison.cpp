// Figure 11(c,d): the same comparison with synchronous replication — every
// transaction holds write locks across the replication round trip, and the
// distributed engines add two-phase commit.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

template <class W>
void Sweep(const char* wname, const W& wl) {
  std::printf("\n--- %s ---\n", wname);
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    BaselineOptions o = DefaultBase(p);
    o.sync_replication = true;
    {
      PbOccEngine e(o, wl);
      PrintRow("PB.OCC/sync", p * 100, Measure(e));
    }
    {
      DistOccEngine e(o, wl);
      PrintRow("Dist.OCC/sync", p * 100, Measure(e));
    }
    {
      DistS2plEngine e(o, wl);
      PrintRow("Dist.S2PL/sync", p * 100, Measure(e));
    }
  }
}

int main() {
  PrintHeader("Figure 11(c,d): synchronous replication",
              "Expected shape: far below the async numbers even at P=0 "
              "(round trips on every commit); paper reports STAR at least "
              "7x (YCSB) / 15x (TPC-C) above these.");
  YcsbWorkload ycsb(BenchYcsb());
  Sweep("YCSB (Figure 11c)", ycsb);
  TpccWorkload tpcc(BenchTpcc());
  Sweep("TPC-C (Figure 11d)", tpcc);
  return 0;
}
