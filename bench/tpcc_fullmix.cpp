// Full five-transaction TPC-C standard mix (45/43/4/4/4) end-to-end: the
// paper's evaluation runs only NewOrder + Payment because hash tables cannot
// serve range scans; the ordered-index layer lifts that restriction.  This
// bench runs the full mix on the STAR engine and on the scan-capable
// baselines (PB. OCC, Dist. OCC), reporting throughput plus the achieved
// transaction-class mix, and mirrors everything to BENCH_tpcc_fullmix.json.

#include "bench_common.h"

namespace star::bench {
namespace {

constexpr const char* kClassNames[5] = {"new_order", "payment",
                                        "order_status", "delivery",
                                        "stock_level"};

TpccOptions FullMixTpcc() {
  TpccOptions o = BenchTpcc();
  o.full_mix = true;
  return o;
}

void ReportMix(const std::string& system, const TpccWorkload& wl,
               const Metrics& m, double cross) {
  uint64_t total = 0;
  uint64_t counts[5];
  for (int c = 0; c < 5; ++c) {
    counts[c] = wl.generated(static_cast<TpccWorkload::TxnClass>(c));
    total += counts[c];
  }
  PrintRow(system, 100.0 * cross, m);
  std::printf("  generated mix:");
  std::vector<std::pair<std::string, std::string>> fields{
      {"system", system},
      {"metric", "generated_mix"},
  };
  for (int c = 0; c < 5; ++c) {
    double pct = total > 0 ? 100.0 * counts[c] / total : 0.0;
    std::printf(" %s=%.1f%%", kClassNames[c], pct);
    fields.emplace_back(kClassNames[c] + std::string("_pct"),
                        JsonLog::Format(pct));
  }
  std::printf("\n");
  JsonLog::Instance().Row(std::move(fields));
}

void Run() {
  const double cross = 0.1;

  {
    TpccWorkload wl(FullMixTpcc());
    StarEngine engine(DefaultStar(cross), wl);
    Metrics m = Measure(engine);
    ReportMix("STAR", wl, m, cross);
  }
  {
    TpccWorkload wl(FullMixTpcc());
    PbOccEngine engine(DefaultBase(cross), wl);
    Metrics m = Measure(engine);
    ReportMix("PB. OCC", wl, m, cross);
  }
  {
    TpccWorkload wl(FullMixTpcc());
    DistOccEngine engine(DefaultBase(cross), wl);
    Metrics m = Measure(engine);
    ReportMix("Dist. OCC", wl, m, cross);
  }
}

}  // namespace
}  // namespace star::bench

int main() {
  star::bench::PrintHeader(
      "tpcc_fullmix",
      "Full TPC-C standard mix (NewOrder 45 / Payment 43 / Order-Status 4 / "
      "Delivery 4 / Stock-Level 4) over the ordered-index scan layer; "
      "Dist. S2PL and Calvin lack range locking / a-priori scan sets and "
      "are excluded.");
  star::bench::Run();
  return 0;
}
