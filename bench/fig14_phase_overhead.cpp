// Figure 14: overhead of phase transitions.
//  (a) throughput and overhead vs iteration time (relative to a 200 ms
//      iteration), YCSB.
//  (b) overhead vs cluster size for 10 ms and 20 ms iterations.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

double RunWithIteration(const YcsbWorkload& wl, double iter_ms, int k,
                        double* fence_frac = nullptr) {
  StarOptions o = DefaultStar(0.1);
  o.cluster.partial_replicas = k;
  o.iteration_ms = iter_ms;
  StarEngine e(o, wl);
  Metrics m = Measure(e);
  if (fence_frac != nullptr) {
    *fence_frac = e.fence_seconds() / m.seconds;
  }
  return m.Tps();
}

int main() {
  PrintHeader("Figure 14: the overhead of phase transitions",
              "Overhead = 1 - tps(e) / tps(200 ms).  Paper: 43% at 1 ms, "
              "~2% at 10 ms on their testbed; on a 2-core host the knee "
              "shifts right because the fence costs scheduler latency.");
  YcsbWorkload wl(BenchYcsb());

  std::printf("\n--- (a) iteration time sweep, 4 nodes ---\n");
  double base = RunWithIteration(wl, 200, 3);
  std::printf("%10s %14s %10s %12s\n", "iter(ms)", "txns/sec", "overhead",
              "fence-time");
  for (double e : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    double frac = 0;
    double tps = RunWithIteration(wl, e, 3, &frac);
    std::printf("%10.0f %14.0f %9.1f%% %11.1f%%\n", e, tps,
                100 * (1 - tps / base), 100 * frac);
  }

  std::printf("\n--- (b) node-count sweep (k partial replicas + 1 full) ---\n");
  std::printf("%8s %12s %12s\n", "nodes", "ovh@10ms", "ovh@20ms");
  for (int k : {1, 3, 7}) {
    double b = RunWithIteration(wl, 200, k);
    double t10 = RunWithIteration(wl, 10, k);
    double t20 = RunWithIteration(wl, 20, k);
    std::printf("%8d %11.1f%% %11.1f%%\n", k + 1, 100 * (1 - t10 / b),
                100 * (1 - t20 / b));
  }
  return 0;
}
