// Figure 11(a,b): throughput vs %% cross-partition transactions under
// asynchronous replication + epoch-based group commit: STAR vs PB. OCC vs
// Dist. OCC vs Dist. S2PL, on YCSB and TPC-C.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

template <class W>
void Sweep(const char* wname, const W& wl) {
  std::printf("\n--- %s ---\n", wname);
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    {
      StarEngine e(DefaultStar(p), wl);
      PrintRow("STAR", p * 100, Measure(e));
    }
    {
      PbOccEngine e(DefaultBase(p), wl);
      PrintRow("PB.OCC", p * 100, Measure(e));
    }
    {
      DistOccEngine e(DefaultBase(p), wl);
      PrintRow("Dist.OCC", p * 100, Measure(e));
    }
    {
      DistS2plEngine e(DefaultBase(p), wl);
      PrintRow("Dist.S2PL", p * 100, Measure(e));
    }
  }
}

int main() {
  PrintHeader("Figure 11(a,b): async replication + epoch group commit",
              "Expected shape: all partitioned systems comparable at P=0; "
              "STAR flat-ish and above Dist.* from P>=10%; STAR approaches "
              "PB.OCC as P->100% (paper: up to 10x over Dist.*).");
  YcsbWorkload ycsb(BenchYcsb());
  Sweep("YCSB (Figure 11a)", ycsb);
  TpccWorkload tpcc(BenchTpcc());
  Sweep("TPC-C (Figure 11b)", tpcc);
  return 0;
}
