// Figure 16: scalability with cluster size — STAR vs Dist. OCC, Dist. S2PL
// and Calvin on YCSB and TPC-C.  Partitions scale with nodes (one per
// worker thread), as in Section 7.4.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

template <class W>
void Sweep(const char* wname, const W& wl, double p) {
  std::printf("\n--- %s (P=%.0f%%) ---\n", wname, p * 100);
  for (int nodes : {2, 4, 8}) {
    {
      StarOptions o = DefaultStar(p);
      o.cluster.partial_replicas = nodes - 1;
      StarEngine e(o, wl);
      PrintRow("STAR/" + std::to_string(nodes) + "n", p * 100, Measure(e));
    }
    {
      BaselineOptions o = DefaultBase(p);
      o.num_nodes = nodes;
      o.partitions = nodes * o.workers_per_node;
      DistOccEngine e(o, wl);
      PrintRow("Dist.OCC/" + std::to_string(nodes) + "n", p * 100,
               Measure(e));
    }
    {
      BaselineOptions o = DefaultBase(p);
      o.num_nodes = nodes;
      o.partitions = nodes * o.workers_per_node;
      DistS2plEngine e(o, wl);
      PrintRow("Dist.S2PL/" + std::to_string(nodes) + "n", p * 100,
               Measure(e));
    }
    {
      CalvinOptions co;
      co.base = DefaultBase(p);
      co.base.num_nodes = nodes;
      co.base.partitions = nodes * co.base.workers_per_node;
      co.lock_managers = 1;
      CalvinEngine e(co, wl);
      PrintRow("Calvin/" + std::to_string(nodes) + "n", p * 100, Measure(e));
    }
  }
}

int main() {
  PrintHeader("Figure 16: scalability experiment",
              "Expected shape: STAR gains from 2->4 nodes then flattens "
              "(replication bandwidth / single-master ceiling); Dist.* and "
              "Calvin start lower but scale more smoothly.");
  YcsbWorkload ycsb(BenchYcsb());
  Sweep("YCSB (Figure 16a)", ycsb, 0.1);
  TpccOptions to = BenchTpcc();
  to.customers_per_district = 200;  // keep 8-node population affordable
  to.items = 1000;
  TpccWorkload tpcc(to);
  Sweep("TPC-C (Figure 16b)", tpcc, 0.1);
  return 0;
}
