// Figure 3: speedup predicted by the analytical model for STAR with n nodes
// over a single node, for P in {1, 5, 10, 15}%.

#include <cstdio>

#include "model/model.h"

int main() {
  std::printf("=== Figure 3: model speedup of asymmetric replication ===\n");
  std::printf("Speedup I(n) = n / (nP - P + 1)  (Section 6.3)\n\n");
  const double kPs[] = {0.01, 0.05, 0.10, 0.15};
  std::printf("%6s", "nodes");
  for (double p : kPs) std::printf("  P=%-3.0f%%", p * 100);
  std::printf("\n");
  for (int n = 1; n <= 16; ++n) {
    std::printf("%6d", n);
    for (double p : kPs) {
      std::printf("  %7.2f", star::model::Speedup(p, n));
    }
    std::printf("\n");
  }
  std::printf("\npaper check: P=10%%, n=16 -> %.2f (paper plots ~6.4)\n",
              star::model::Speedup(0.10, 16));
  return 0;
}
