// Figure 15: replication strategies and fault tolerance.
//  (a) SYNC STAR vs STAR vs STAR w/ hybrid replication, TPC-C.
//  (b) throughput degradation with disk logging + checkpointing.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

int main() {
  PrintHeader("Figure 15: replication and fault tolerance",
              "(a) hybrid replication ships operations in the partitioned "
              "phase (biggest win at low P); SYNC STAR pays a round trip "
              "per cross-partition commit.  (b) logging overhead: paper "
              "reports ~6% (YCSB) / ~14% (TPC-C).");
  TpccWorkload tpcc(BenchTpcc());

  std::printf("\n--- (a) replication strategies, TPC-C ---\n");
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    {
      StarOptions o = DefaultStar(p);
      o.replication = ReplicationMode::kSyncValue;
      StarEngine e(o, tpcc);
      PrintRow("SYNC STAR", p * 100, Measure(e));
    }
    {
      StarOptions o = DefaultStar(p);
      StarEngine e(o, tpcc);
      PrintRow("STAR", p * 100, Measure(e));
    }
    {
      StarOptions o = DefaultStar(p);
      o.replication = ReplicationMode::kHybrid;
      StarEngine e(o, tpcc);
      PrintRow("STAR w/ Hybrid", p * 100, Measure(e));
    }
  }

  std::printf("\n--- (a') parallel replication replay: fence drain time ---\n");
  // The fence's drain round waits for replicas to finish applying the
  // phase's writes (Section 4.3); parallel replay shortens it wherever the
  // replica has cores to drain with.  (On a single-cpu host the replay
  // workers time-slice one core, so treat these rows as a correctness /
  // overhead check, not a scaling result — bench/applier_substrate isolates
  // the apply-path speedup.)
  for (int shards : {1, 4}) {
    StarOptions o = DefaultStar(0.1);
    o.cluster.replay_shards = shards;
    StarEngine e(o, tpcc);
    Metrics m = Measure(e);
    double drain_ms = e.fence_drain_ns() / 1e6;
    double per_fence_us =
        e.fence_count() > 0 ? e.fence_drain_ns() / 1e3 / e.fence_count() : 0;
    std::printf("replay shards=%d  %10.0f txns/sec  drain %7.2f ms total"
                "  (%6.1f us/fence, %llu fences)\n",
                shards, m.Tps(), drain_ms, per_fence_us,
                static_cast<unsigned long long>(e.fence_count()));
    JsonLog::Instance().Row(
        {{"system", shards == 1 ? "STAR serial replay" : "STAR 4-shard replay"},
         {"replay_shards", JsonLog::Format(shards)},
         {"tps", JsonLog::Format(m.Tps())},
         {"fence_drain_ms", JsonLog::Format(drain_ms)},
         {"fence_drain_us_per_fence", JsonLog::Format(per_fence_us)}});
  }

  std::printf("\n--- (b) disk logging + checkpointing overhead ---\n");
  YcsbWorkload ycsb(BenchYcsb());
  auto run = [&](const char* name, const Workload& wl, bool durable) {
    StarOptions o = DefaultStar(0.1);
    o.durable_logging = durable;
    o.checkpointing = durable;
    o.log_dir = "/tmp/star_bench_logs";
    StarEngine e(o, wl);
    Metrics m = Measure(e);
    std::printf("%-24s %12.0f txns/sec\n", name, m.Tps());
    return m.Tps();
  };
  double y0 = run("YCSB", ycsb, false);
  double y1 = run("YCSB + disk logging", ycsb, true);
  double t0 = run("TPC-C", tpcc, false);
  double t1 = run("TPC-C + disk logging", tpcc, true);
  std::printf("overhead: YCSB %.1f%%, TPC-C %.1f%% (paper: 6%% / 14%%)\n",
              100 * (1 - y1 / y0), 100 * (1 - t1 / t0));
  return 0;
}
