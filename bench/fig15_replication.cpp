// Figure 15: replication strategies and fault tolerance.
//  (a) SYNC STAR vs STAR vs STAR w/ hybrid replication, TPC-C.
//  (b) throughput degradation with disk logging + checkpointing.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

int main() {
  PrintHeader("Figure 15: replication and fault tolerance",
              "(a) hybrid replication ships operations in the partitioned "
              "phase (biggest win at low P); SYNC STAR pays a round trip "
              "per cross-partition commit.  (b) logging overhead: paper "
              "reports ~6% (YCSB) / ~14% (TPC-C).");
  TpccWorkload tpcc(BenchTpcc());

  std::printf("\n--- (a) replication strategies, TPC-C ---\n");
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    {
      StarOptions o = DefaultStar(p);
      o.replication = ReplicationMode::kSyncValue;
      StarEngine e(o, tpcc);
      PrintRow("SYNC STAR", p * 100, Measure(e));
    }
    {
      StarOptions o = DefaultStar(p);
      StarEngine e(o, tpcc);
      PrintRow("STAR", p * 100, Measure(e));
    }
    {
      StarOptions o = DefaultStar(p);
      o.replication = ReplicationMode::kHybrid;
      StarEngine e(o, tpcc);
      PrintRow("STAR w/ Hybrid", p * 100, Measure(e));
    }
  }

  std::printf("\n--- (b) disk logging + checkpointing overhead ---\n");
  YcsbWorkload ycsb(BenchYcsb());
  auto run = [&](const char* name, const Workload& wl, bool durable) {
    StarOptions o = DefaultStar(0.1);
    o.durable_logging = durable;
    o.checkpointing = durable;
    o.log_dir = "/tmp/star_bench_logs";
    StarEngine e(o, wl);
    Metrics m = Measure(e);
    std::printf("%-24s %12.0f txns/sec\n", name, m.Tps());
    return m.Tps();
  };
  double y0 = run("YCSB", ycsb, false);
  double y1 = run("YCSB + disk logging", ycsb, true);
  double t0 = run("TPC-C", tpcc, false);
  double t1 = run("TPC-C + disk logging", tpcc, true);
  std::printf("overhead: YCSB %.1f%%, TPC-C %.1f%% (paper: 6%% / 14%%)\n",
              100 * (1 - y1 / y0), 100 * (1 - t1 / t0));
  return 0;
}
