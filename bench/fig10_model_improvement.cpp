// Figure 10: model improvement of STAR over partitioning-based systems
// (K in {2,4,8,16}) and over non-partitioned systems, on 4 nodes.

#include <cstdio>

#include "model/model.h"

int main() {
  std::printf("=== Figure 10: effectiveness of STAR (model, n = 4) ===\n");
  std::printf("Improvement (%%) = 100 * (I - 1); > 0 means STAR wins\n\n");
  const double kKs[] = {2, 4, 8, 16};
  std::printf("%7s", "P(%)");
  for (double k : kKs) std::printf("   K=%-4.0f", k);
  std::printf("  NonPart\n");
  for (int p100 = 0; p100 <= 100; p100 += 10) {
    double p = p100 / 100.0;
    std::printf("%7d", p100);
    for (double k : kKs) {
      std::printf("  %6.0f%%",
                  100 * (star::model::ImprovementOverPartitioning(k, p, 4) - 1));
    }
    std::printf("  %6.0f%%\n",
                100 * (star::model::ImprovementOverNonPartitioned(p, 4) - 1));
  }
  std::printf("\npaper check: break-even K equals n (=4); K=16 curves peak "
              "in the low-P region, the non-partitioned curve at P=0: +300%%\n");
  return 0;
}
