#ifndef STAR_BENCH_BENCH_COMMON_H_
#define STAR_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benchmarks.  Each binary
// regenerates one table/figure of the paper's evaluation (Section 7),
// printing the same series the paper plots.  Durations are kept short by
// default so the whole suite runs in minutes on a laptop; set
// STAR_BENCH_SCALE=<float> to lengthen every measurement window.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "baselines/calvin.h"
#include "baselines/dist_engine.h"
#include "baselines/pb_occ.h"
#include "core/engine.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star::bench {

inline double Scale() {
  const char* s = std::getenv("STAR_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline int WarmMs() { return static_cast<int>(250 * Scale()); }
inline int RunMs() { return static_cast<int>(1000 * Scale()); }

/// Paper-testbed-shaped defaults scaled for a small host: 4 nodes (1 full +
/// 3 partial), 2 workers each, partitions = workers.
inline StarOptions DefaultStar(double cross_fraction) {
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = cross_fraction;
  return o;
}

inline BaselineOptions DefaultBase(double cross_fraction) {
  BaselineOptions o;
  o.num_nodes = 4;
  o.workers_per_node = 2;
  o.partitions = 8;  // match STAR's partition count
  o.cross_fraction = cross_fraction;
  return o;
}

inline YcsbOptions BenchYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 20'000;  // scaled from the paper's 200 K/partition
  return o;
}

inline TpccOptions BenchTpcc() {
  TpccOptions o;
  o.districts_per_warehouse = 10;
  o.customers_per_district = 300;  // scaled from the spec's 3000
  o.items = 2000;                  // scaled from the spec's 100 K
  return o;
}

template <class Engine>
Metrics Measure(Engine& engine) {
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(WarmMs()));
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(RunMs()));
  return engine.Stop();
}

inline void PrintHeader(const char* title, const char* caption) {
  std::printf("\n=== %s ===\n%s\n", title, caption);
}

inline void PrintRow(const std::string& system, double p_percent,
                     const Metrics& m) {
  std::printf("%-16s P=%3.0f%%  %10.0f txns/sec  p50=%7.2f ms  p99=%7.2f ms"
              "  aborts=%5.2f%%  %7.0f B/txn\n",
              system.c_str(), p_percent, m.Tps(), m.latency.p50() / 1e6,
              m.latency.p99() / 1e6, 100 * m.AbortRate(), m.BytesPerCommit());
  std::fflush(stdout);
}

}  // namespace star::bench

#endif  // STAR_BENCH_BENCH_COMMON_H_
