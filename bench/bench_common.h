#ifndef STAR_BENCH_BENCH_COMMON_H_
#define STAR_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benchmarks.  Each binary
// regenerates one table/figure of the paper's evaluation (Section 7),
// printing the same series the paper plots.  Durations are kept short by
// default so the whole suite runs in minutes on a laptop; set
// STAR_BENCH_SCALE=<float> to lengthen every measurement window.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/calvin.h"
#include "baselines/dist_engine.h"
#include "baselines/pb_occ.h"
#include "core/engine.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star::bench {

/// Machine-readable results sink: every PrintHeader/PrintRow pair is mirrored
/// into `BENCH_<slug-of-first-title>.json` in the working directory (override
/// the path with STAR_BENCH_JSON=<file>), so the perf trajectory of each
/// bench binary can be tracked across commits.  The file is an array of row
/// objects; numeric fields are emitted as numbers, everything else as
/// strings.
class JsonLog {
 public:
  static JsonLog& Instance() {
    static JsonLog log;
    return log;
  }

  void SetTitle(const std::string& title) {
    section_ = title;
    if (name_.empty()) name_ = Slug(title);
  }

  /// One result row: alternating key/value pairs; values that parse as
  /// numbers are written unquoted.
  void Row(std::vector<std::pair<std::string, std::string>> fields) {
    std::string row = "  {";
    row += "\"section\": \"" + Escape(section_) + "\"";
    for (auto& [k, v] : fields) {
      row += ", \"" + Escape(k) + "\": ";
      row += IsNumber(v) ? v : "\"" + Escape(v) + "\"";
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  ~JsonLog() {
    if (rows_.empty()) return;
    std::string path;
    if (const char* p = std::getenv("STAR_BENCH_JSON")) {
      path = p;
    } else {
      path = "BENCH_" + (name_.empty() ? std::string("results") : name_) +
             ".json";
    }
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  static std::string Format(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

 private:
  static std::string Slug(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else if (!out.empty() && out.back() != '_') {
        out += '_';
      }
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
  }
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  static bool IsNumber(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    // NaN/Infinity parse via strtod but are not valid JSON numbers; emit
    // them quoted instead so the file stays parseable.
    return end != nullptr && *end == '\0' && std::isfinite(v);
  }

  std::string name_;
  std::string section_;
  std::vector<std::string> rows_;
};

inline double Scale() {
  const char* s = std::getenv("STAR_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline int WarmMs() { return static_cast<int>(250 * Scale()); }
inline int RunMs() { return static_cast<int>(1000 * Scale()); }

/// Paper-testbed-shaped defaults scaled for a small host: 4 nodes (1 full +
/// 3 partial), 2 workers each, partitions = workers.
inline StarOptions DefaultStar(double cross_fraction) {
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = cross_fraction;
  return o;
}

inline BaselineOptions DefaultBase(double cross_fraction) {
  BaselineOptions o;
  o.num_nodes = 4;
  o.workers_per_node = 2;
  o.partitions = 8;  // match STAR's partition count
  o.cross_fraction = cross_fraction;
  return o;
}

inline YcsbOptions BenchYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 20'000;  // scaled from the paper's 200 K/partition
  return o;
}

inline TpccOptions BenchTpcc() {
  TpccOptions o;
  o.districts_per_warehouse = 10;
  o.customers_per_district = 300;  // scaled from the spec's 3000
  o.items = 2000;                  // scaled from the spec's 100 K
  return o;
}

template <class Engine>
Metrics Measure(Engine& engine) {
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(WarmMs()));
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(RunMs()));
  return engine.Stop();
}

inline void PrintHeader(const char* title, const char* caption) {
  std::printf("\n=== %s ===\n%s\n", title, caption);
  JsonLog::Instance().SetTitle(title);
}

inline void PrintRow(const std::string& system, double p_percent,
                     const Metrics& m) {
  std::printf("%-16s P=%3.0f%%  %10.0f txns/sec  p50=%7.2f ms  p99=%7.2f ms"
              "  aborts=%5.2f%%  %7.0f B/txn\n",
              system.c_str(), p_percent, m.Tps(), m.latency.p50() / 1e6,
              m.latency.p99() / 1e6, 100 * m.AbortRate(), m.BytesPerCommit());
  std::fflush(stdout);
  JsonLog::Instance().Row(
      {{"system", system},
       {"p_percent", JsonLog::Format(p_percent)},
       {"tps", JsonLog::Format(m.Tps())},
       {"p50_ms", JsonLog::Format(m.latency.p50() / 1e6)},
       {"p99_ms", JsonLog::Format(m.latency.p99() / 1e6)},
       {"abort_rate", JsonLog::Format(m.AbortRate())},
       {"bytes_per_commit", JsonLog::Format(m.BytesPerCommit())},
       // Fail-stop drop accounting (always 0 outside failure experiments;
       // nonzero values flag a sick transport in the perf trajectory).
       {"dropped_msgs",
        JsonLog::Format(static_cast<double>(m.network_dropped_messages))},
       {"dropped_bytes",
        JsonLog::Format(static_cast<double>(m.network_dropped_bytes))},
       // Replication batches deliberately ignored because their source was
       // marked failed — previously invisible (engine.cc handler).
       {"replication_ignored",
        JsonLog::Format(
            static_cast<double>(m.replication_ignored_batches))}});
}

}  // namespace star::bench

#endif  // STAR_BENCH_BENCH_COMMON_H_
