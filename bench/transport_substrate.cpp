// Transport substrate bench: SimTransport vs TcpTransport over loopback.
//
// Measures the replication-shaped message path (8 KB batches, one producer
// endpoint, one consumer endpoint that recycles payloads like a real io
// loop) and reports throughput in batches/sec and MB/s plus amortized heap
// allocations per message — the first *networked* datapoint of the perf
// trajectory.  Results are mirrored to BENCH_transport.json.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "bench_common.h"
#include "common/clock.h"
#include "net/transport.h"

// ---------------------------------------------------------------------------
// Counting allocator hook (same harness as micro_substrate)
// ---------------------------------------------------------------------------

static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  std::size_t a = static_cast<std::size_t>(al);
  std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace star {
namespace {

using bench::JsonLog;

constexpr size_t kBatchBytes = 8 * 1024;  // rep_flush_bytes default
// Max in-flight batches.  Kept under PayloadPool::kMaxPerShard so the
// recycle loop actually closes — a deeper window would outrun the pool and
// every excess acquire would hit the allocator.
constexpr uint64_t kWindow = 56;

struct SubstrateResult {
  double batches_per_sec = 0;
  double mbytes_per_sec = 0;
  double allocs_per_msg = 0;
  double mean_latency_us = 0;  // send -> delivery, mean over the window
};

std::unique_ptr<net::Transport> MakeKind(net::TransportKind kind) {
  net::TransportConfig c;
  c.kind = kind;
  c.sim.link_latency_us = 0;
  c.sim.bandwidth_gbps = 0;  // the sim's ideal wire; TCP is whatever
  c.tcp.base_port = 0;       // loopback really is
  return net::MakeTransport(2, c);
}

SubstrateResult Run(net::TransportKind kind, double seconds,
                    size_t batch_bytes = kBatchBytes) {
  auto t = MakeKind(kind);
  if (!t->Start()) {
    std::fprintf(stderr, "transport failed to start\n");
    std::exit(1);
  }

  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> latency_ns{0};
  std::atomic<bool> stop{false};

  // Consumer: the replica's io loop — poll, "apply", recycle the payload.
  std::thread consumer([&] {
    net::Message m;
    while (!stop.load(std::memory_order_acquire)) {
      if (!t->Poll(1, &m)) {
        star::CpuRelax();
        continue;
      }
      uint64_t sent_at = 0;
      std::memcpy(&sent_at, m.payload.data() + sizeof(uint64_t),
                  sizeof(sent_at));
      latency_ns.fetch_add(NowNanos() - sent_at, std::memory_order_relaxed);
      received.fetch_add(1, std::memory_order_release);
      // Release to the producer's shard: the recycle loop is cross-thread
      // here (producer acquires with hint 0).
      t->payload_pool().Release(0, std::move(m.payload));
    }
  });

  auto send_one = [&](uint64_t seq) {
    std::string payload = t->payload_pool().Acquire(0);
    payload.resize(batch_bytes);
    std::memcpy(payload.data(), &seq, sizeof(seq));
    uint64_t now = NowNanos();
    std::memcpy(payload.data() + sizeof(uint64_t), &now, sizeof(now));
    net::Message m;
    m.src = 0;
    m.dst = 1;
    m.type = net::MsgType::kReplicationBatch;
    m.payload = std::move(payload);
    while (!t->Send(std::move(m))) {
      // Only transient on this path (connect still in flight).
      std::this_thread::yield();
    }
  };

  // Warm-up: fill the payload pool loop and the socket path.
  uint64_t sent = 0;
  for (; sent < 2048; ++sent) {
    while (sent - received.load(std::memory_order_acquire) >= kWindow) {
      std::this_thread::yield();  // 2-core host: let the consumer run
    }
    send_one(sent);
  }
  while (received.load(std::memory_order_acquire) < sent) star::CpuRelax();

  // Measured window.
  uint64_t allocs0 = g_allocations.load(std::memory_order_relaxed);
  uint64_t latency0 = latency_ns.load(std::memory_order_relaxed);
  uint64_t t0 = NowNanos();
  uint64_t deadline = t0 + static_cast<uint64_t>(seconds * 1e9);
  uint64_t measured0 = sent;
  while (NowNanos() < deadline) {
    while (sent - received.load(std::memory_order_acquire) >= kWindow) {
      std::this_thread::yield();
    }
    send_one(sent++);
  }
  while (received.load(std::memory_order_acquire) < sent) star::CpuRelax();
  double secs = (NowNanos() - t0) / 1e9;
  uint64_t msgs = sent - measured0;
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - allocs0;
  uint64_t lat = latency_ns.load(std::memory_order_relaxed) - latency0;

  stop.store(true, std::memory_order_release);
  consumer.join();
  t->Stop();

  SubstrateResult r;
  r.batches_per_sec = msgs / secs;
  r.mbytes_per_sec = msgs * double(batch_bytes) / secs / (1 << 20);
  r.allocs_per_msg = double(allocs) / msgs;
  r.mean_latency_us = double(lat) / msgs / 1000.0;
  return r;
}

void Report(const char* name, const SubstrateResult& r,
            size_t batch_bytes = kBatchBytes) {
  std::printf(
      "%-18s %6zuB %10.0f batches/sec  %8.1f MB/s  %8.4f allocs/msg"
      "  %8.1f us\n",
      name, batch_bytes, r.batches_per_sec, r.mbytes_per_sec, r.allocs_per_msg,
      r.mean_latency_us);
  std::fflush(stdout);
  JsonLog::Instance().Row(
      {{"transport", name},
       {"batch_bytes", JsonLog::Format(static_cast<double>(batch_bytes))},
       {"batches_per_sec", JsonLog::Format(r.batches_per_sec)},
       {"mbytes_per_sec", JsonLog::Format(r.mbytes_per_sec)},
       {"allocs_per_msg", JsonLog::Format(r.allocs_per_msg)},
       {"mean_latency_us", JsonLog::Format(r.mean_latency_us)}});
}

}  // namespace
}  // namespace star

int main() {
  star::bench::PrintHeader(
      "transport",
      "Replication-batch path (8 KB frames, payload-pool recycling):\n"
      "simulated fabric vs real TCP sockets over loopback.");
  double secs = 1.0 * star::bench::Scale();
  star::SubstrateResult sim = star::Run(star::net::TransportKind::kSim, secs);
  star::Report("sim", sim);
  star::SubstrateResult tcp = star::Run(star::net::TransportKind::kTcp, secs);
  star::Report("tcp-loopback", tcp);
  std::printf(
      "\nthe TCP path pays one memcpy at the receiver (socket -> pooled\n"
      "buffer); the send side is scatter-gather straight from the batch.\n");

  // The rep_flush_bytes trade-off (ClusterConfig::rep_flush_bytes): bigger
  // replication batches amortise per-message cost, smaller ones cut the
  // replica's apply lag.  Sweep the flush sizes a stream would use.
  std::printf(
      "\n--- flush-size sweep (batch bytes == ReplicationStream flush "
      "threshold) ---\n");
  for (size_t bytes : {size_t{1} << 10, size_t{4} << 10, size_t{8} << 10,
                       size_t{32} << 10}) {
    star::SubstrateResult s =
        star::Run(star::net::TransportKind::kSim, secs * 0.5, bytes);
    star::Report("sim", s, bytes);
    star::SubstrateResult c =
        star::Run(star::net::TransportKind::kTcp, secs * 0.5, bytes);
    star::Report("tcp-loopback", c, bytes);
  }
  return 0;
}
