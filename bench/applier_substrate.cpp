// Replica apply-path substrate: the serial (pre-pipeline) applier vs the
// sharded replay pipeline at 1/2/4/8 shards, on a DRAM-resident table.
//
// This is the replica half of STAR's asymmetry: the primary produces writes
// W-wide, and the paper assumes replicas replay them in parallel so the
// replication fence stays short (Sections 3, 4.3).  Two mechanisms are
// measured together, because they ship together:
//
//  * the prefetched apply loop — decode a window of entry headers ahead and
//    software-prefetch bucket/node/value lines, overlapping the dependent
//    DRAM misses that dominate a hash lookup on a table bigger than LLC
//    (this is what moves the needle on few-core hosts, where replay threads
//    share cores with everything else);
//  * the sharded replay pipeline — per-partition-shard segments fanned out
//    to replay workers over bounded rings (this is what scales on real
//    multi-core replicas).
//
// Acceptance gate: >= 2.5x replica apply throughput at 4 replay shards vs
// the single-threaded serial applier on the same host.  Results are
// mirrored to BENCH_applier.json.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "replication/sharded_applier.h"

namespace star {
namespace {

using bench::JsonLog;

// Sized so the table dwarfs the LLC (this host: ~105 MB): the apply loop
// must eat real DRAM misses, as a replica of any serious database does.
struct Config {
  int partitions = 8;
  uint32_t value_size = 64;
  uint64_t rows_per_partition = 1u << 19;  // 512 K x 8 partitions = 4 M rows
  // The corpus must cover the whole table (~one visit per key per round):
  // a small cycled corpus would keep its keys LLC-resident and measure a
  // cache benchmark instead of a replica draining a real table.
  int batches = 45'000;  // x ~90 entries x ~8 KB: one full-table round
  int entries_per_batch = 90;
  double seconds = 1.0;
};

/// Best-effort: provision the explicit 2 MB page pool the table blocks try
/// first (storage/hash_table.h).  Production deployments reserve huge pages
/// at boot; a bench harness running as root can do it for itself.  Silently
/// degrades to THP/4 KB pages when not permitted.
void ProvisionHugePages(int pages) {
  FILE* f = std::fopen("/proc/sys/vm/nr_hugepages", "r+");
  if (f == nullptr) {
    std::printf("hugepages: no permission, using THP/4K pages\n");
    return;
  }
  int have = 0;
  if (std::fscanf(f, "%d", &have) == 1 && have < pages) {
    std::rewind(f);
    std::fprintf(f, "%d\n", pages);
  }
  std::fclose(f);
  f = std::fopen("/proc/sys/vm/nr_hugepages", "r");
  if (f != nullptr) {
    if (std::fscanf(f, "%d", &have) == 1) {
      std::printf("hugepages: %d x 2 MB provisioned\n", have);
    }
    std::fclose(f);
  }
}

std::unique_ptr<Database> MakeDb(const Config& cfg) {
  std::vector<TableSchema> schemas{
      {"t", cfg.value_size, static_cast<size_t>(cfg.rows_per_partition)}};
  std::vector<int> parts;
  for (int p = 0; p < cfg.partitions; ++p) parts.push_back(p);
  auto db = std::make_unique<Database>(schemas, cfg.partitions, parts,
                                       /*two_version=*/false);
  std::vector<char> zero(cfg.value_size, 0);
  for (int p = 0; p < cfg.partitions; ++p) {
    for (uint64_t k = 0; k < cfg.rows_per_partition; ++k) {
      db->Load(0, p, k, zero.data());
    }
  }
  return db;
}

/// Pre-serialised corpus of replication batches: uniformly random keys over
/// the whole table (the single-master phase's value stream).  Cycling a
/// fixed corpus would make every re-apply a Thomas stale-skip (no value
/// install at all), so each batch also records the byte offsets of its TID
/// fields: the harness patches `round * kRoundTidStride` into the copied
/// payload per corpus round, keeping TIDs monotonically increasing — every
/// measured entry is a genuine full-cost install.
struct Corpus {
  std::vector<std::string> payloads;
  std::vector<std::vector<uint32_t>> tid_offsets;  // per batch
  uint64_t entries = 0;
};

constexpr uint64_t kRoundTidStride = 1u << 24;  // > entries per round

Corpus MakeCorpus(const Config& cfg, uint64_t tid_base) {
  Rng rng(42);
  Corpus corpus;
  corpus.payloads.reserve(cfg.batches);
  corpus.tid_offsets.reserve(cfg.batches);
  std::string value(cfg.value_size, 'v');
  uint64_t seq = 0;
  for (int b = 0; b < cfg.batches; ++b) {
    WriteBuffer buf(static_cast<size_t>(cfg.entries_per_batch) *
                    (25 + 4 + cfg.value_size));
    std::vector<uint32_t> offsets;
    offsets.reserve(cfg.entries_per_batch);
    for (int i = 0; i < cfg.entries_per_batch; ++i) {
      int p = static_cast<int>(rng.Uniform(cfg.partitions));
      uint64_t key = rng.Uniform(cfg.rows_per_partition);
      std::memcpy(value.data(), &key, sizeof(key));
      // TID field sits after kind(1) + table(4) + partition(4) + key(8).
      offsets.push_back(static_cast<uint32_t>(buf.size()) + 17);
      SerializeValueEntry(buf, 0, p, key, tid_base + (++seq), value);
      ++corpus.entries;
    }
    corpus.payloads.push_back(buf.Release());
    corpus.tid_offsets.push_back(std::move(offsets));
  }
  return corpus;
}

/// Copies batch `i` of the corpus into a pooled buffer with its TIDs
/// advanced by `round` strides — the receive-side copy a real transport
/// performs, plus the freshness real rounds of commits would carry.
std::string MaterializeBatch(const Corpus& corpus, size_t i, uint64_t round,
                             std::string buffer) {
  buffer.assign(corpus.payloads[i]);
  if (round != 0) {
    uint64_t delta = round * kRoundTidStride;
    for (uint32_t off : corpus.tid_offsets[i]) {
      uint64_t tid;
      std::memcpy(&tid, buffer.data() + off, sizeof(tid));
      tid += delta;
      std::memcpy(buffer.data() + off, &tid, sizeof(tid));
    }
  }
  return buffer;
}

struct Result {
  double entries_per_sec = 0;
  double mbytes_per_sec = 0;
};

/// Every configuration receives its batches the way a real replica does:
/// the payload lands in a recycled pool buffer (one copy from the corpus,
/// standing in for the transport writing the wire bytes), and the consumer
/// releases the buffer when done.  Serial and sharded pay identical
/// receive-side costs; only the apply architecture differs.
struct BufferPool {
  std::vector<std::string> pool;
  SpinLock mu;
  std::string Acquire() {
    SpinLockGuard g(mu);
    if (pool.empty()) return std::string();
    std::string s = std::move(pool.back());
    pool.pop_back();
    return s;
  }
  void Release(std::string&& s) {
    SpinLockGuard g(mu);
    if (pool.size() < 512) pool.push_back(std::move(s));
  }
};

/// Single-threaded paths: `pipelined` selects the prefetched window loop;
/// otherwise this is the pre-change serial applier.
Result RunSingleThread(const Config& cfg, Database* db, const Corpus& corpus,
                       bool pipelined) {
  ReplicationCounters counters(1);
  ReplicationApplier applier(db, &counters);
  BufferPool pool;
  uint64_t round = 0;
  auto apply_one = [&](size_t i) {
    std::string payload = MaterializeBatch(corpus, i, round, pool.Acquire());
    uint64_t n = pipelined ? applier.ApplyBatchPipelined(0, payload)
                           : applier.ApplyBatch(0, payload);
    pool.Release(std::move(payload));
    return n;
  };
  // Warm up one corpus round (installs the keys' first versions).
  for (size_t i = 0; i < corpus.payloads.size(); ++i) apply_one(i);
  round = 1;

  uint64_t entries = 0, bytes = 0;
  uint64_t t0 = NowNanos();
  uint64_t deadline = t0 + static_cast<uint64_t>(cfg.seconds * 1e9);
  size_t i = 0;
  while (NowNanos() < deadline) {
    entries += apply_one(i);
    bytes += corpus.payloads[i].size();
    if (++i == corpus.payloads.size()) {
      i = 0;
      ++round;  // fresh TIDs: every re-apply stays a full-cost install
    }
  }
  double secs = (NowNanos() - t0) / 1e9;
  return Result{entries / secs, bytes / secs / (1 << 20)};
}

/// The replay pipeline: one router (the "io thread") + N replay workers.
Result RunSharded(const Config& cfg, Database* db, const Corpus& corpus,
                  int shards) {
  ReplicationCounters counters(1, shards);
  ShardedApplier::Options so;
  so.shards = shards;
  ShardedApplier sharded(db, &counters, so);
  BufferPool pool;
  sharded.set_release_hook(
      [&pool](std::string&& s) { pool.Release(std::move(s)); });
  sharded.Start();

  // Warm-up round.
  for (size_t i = 0; i < corpus.payloads.size(); ++i) {
    sharded.Submit(0, MaterializeBatch(corpus, i, 0, pool.Acquire()));
  }
  sharded.Drain();

  uint64_t bytes = 0, round = 1;
  uint64_t applied0 = counters.applied_from(0);
  uint64_t t0 = NowNanos();
  uint64_t deadline = t0 + static_cast<uint64_t>(cfg.seconds * 1e9);
  size_t i = 0;
  while (NowNanos() < deadline) {
    bytes += corpus.payloads[i].size();
    sharded.Submit(0, MaterializeBatch(corpus, i, round, pool.Acquire()));
    if (++i == corpus.payloads.size()) {
      i = 0;
      ++round;  // fresh TIDs: every re-apply stays a full-cost install
    }
  }
  sharded.Drain();
  double secs = (NowNanos() - t0) / 1e9;
  uint64_t entries = counters.applied_from(0) - applied0;
  sharded.Stop();
  return Result{entries / secs, bytes / secs / (1 << 20)};
}

void Report(const char* config, const Result& r, double speedup) {
  std::printf("%-10s %12.0f entries/sec  %8.1f MB/s  %6.2fx vs serial\n",
              config, r.entries_per_sec, r.mbytes_per_sec, speedup);
  std::fflush(stdout);
  JsonLog::Instance().Row(
      {{"config", config},
       {"entries_per_sec", JsonLog::Format(r.entries_per_sec)},
       {"mbytes_per_sec", JsonLog::Format(r.mbytes_per_sec)},
       {"speedup_vs_serial", JsonLog::Format(speedup)}});
}

}  // namespace
}  // namespace star

int main() {
  star::bench::PrintHeader(
      "applier",
      "Replica apply throughput, DRAM-resident table: pre-pipeline serial\n"
      "applier vs the sharded replay pipeline (prefetched apply loop +\n"
      "per-partition-shard replay workers).  Gate: >= 2.5x at 4 shards.");
  star::Config cfg;
  double scale = star::bench::Scale();
  cfg.seconds = 1.0 * scale;
  if (scale < 0.5) {
    // Smoke configuration: small table, short windows — exercises every
    // code path without the multi-second population.
    cfg.rows_per_partition = 1u << 14;
    cfg.batches = 64;
  } else {
    star::ProvisionHugePages(360);  // ~720 MB: buckets + node arenas
  }

  std::printf("populating %d x %llu rows (%.0f MB of records)...\n",
              cfg.partitions,
              static_cast<unsigned long long>(cfg.rows_per_partition),
              cfg.partitions * cfg.rows_per_partition *
                  (32.0 + cfg.value_size) / 1e6);
  auto corpus = star::MakeCorpus(cfg, star::Tid::Make(2, 1, 0));

  // Each configuration gets its own freshly populated table so stale-TID
  // short-circuits cannot leak between runs.
  long cpus = std::thread::hardware_concurrency();
  double serial_eps = 0;
  {
    auto db = star::MakeDb(cfg);
    star::Result r =
        star::RunSingleThread(cfg, db.get(), corpus, /*pipelined=*/false);
    serial_eps = r.entries_per_sec;
    star::Report("serial", r, 1.0);
  }
  {
    // The prefetched apply loop alone, same single thread — isolates the
    // window/prefetch win from the fan-out win.
    auto db = star::MakeDb(cfg);
    star::Result r =
        star::RunSingleThread(cfg, db.get(), corpus, /*pipelined=*/true);
    star::Report("pipelined", r,
                 serial_eps > 0 ? r.entries_per_sec / serial_eps : 0);
  }
  double at4 = 0;
  for (int shards : {1, 2, 4, 8}) {
    auto db = star::MakeDb(cfg);
    star::Result r = star::RunSharded(cfg, db.get(), corpus, shards);
    double speedup = serial_eps > 0 ? r.entries_per_sec / serial_eps : 0;
    if (shards == 4) at4 = speedup;
    char name[32];
    std::snprintf(name, sizeof(name), "shards_%d", shards);
    star::Report(name, r, speedup);
  }
  star::bench::JsonLog::Instance().Row(
      {{"config", "gate"},
       {"speedup_4shards_vs_serial", star::bench::JsonLog::Format(at4)},
       {"host_cpus", star::bench::JsonLog::Format(static_cast<double>(cpus))}});
  std::printf(
      "\n4-shard speedup vs serial: %.2fx (gate: 2.5x) on %ld cpu(s)\n"
      "the fan-out term needs cores: replay workers time-slicing one core\n"
      "add scheduling cost but no parallel apply; on a single-cpu host the\n"
      "prefetched window loop (the `pipelined` row) is the whole win.\n",
      at4, cpus);
  return 0;
}
