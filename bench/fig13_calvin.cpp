// Figure 13: STAR vs Calvin-x (deterministic database) on YCSB and TPC-C.
// Calvin-x uses x of each node's worker threads as lock managers; the rest
// execute.  Scaled from the paper's 12-thread nodes to 4-thread nodes:
// Calvin-1/2/3 play the role of the paper's Calvin-2/4/6.

#include "bench/bench_common.h"

using namespace star;
using namespace star::bench;

template <class W>
void Sweep(const char* wname, const W& wl) {
  std::printf("\n--- %s ---\n", wname);
  for (double p : {0.0, 0.1, 0.5}) {
    {
      StarOptions o = DefaultStar(p);
      o.cluster.workers_per_node = 4;
      StarEngine e(o, wl);
      PrintRow("STAR(4w)", p * 100, Measure(e));
    }
    for (int x : {1, 2, 3}) {
      CalvinOptions co;
      co.base = DefaultBase(p);
      co.base.workers_per_node = 4;
      co.base.partitions = 8;
      co.lock_managers = x;
      CalvinEngine e(co, wl);
      PrintRow("Calvin-" + std::to_string(x), p * 100, Measure(e));
    }
  }
}

int main() {
  PrintHeader("Figure 13: comparison with deterministic databases",
              "Expected shape: more lock managers help at P=0 (more "
              "parallelism) and hurt at high P; STAR stays above every "
              "Calvin configuration (paper: 4-11x).");
  YcsbWorkload ycsb(BenchYcsb());
  Sweep("YCSB (Figure 13a)", ycsb);
  TpccWorkload tpcc(BenchTpcc());
  Sweep("TPC-C (Figure 13b)", tpcc);
  return 0;
}
