// Ablation: the Thomas write rule under reordered replication streams
// (DESIGN.md Section 5).  Quantifies (i) convergence despite shuffling and
// (ii) the lost-update rate if partial-field values were shipped instead of
// whole records — the Figure 8 argument, measured.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "storage/hash_table.h"

using namespace star;

int main() {
  std::printf("=== Ablation: Thomas write rule vs replication reordering ===\n");
  Rng rng(42);
  constexpr int kRecords = 1000;
  constexpr int kWrites = 20000;
  constexpr int kFields = 2;  // two 8-byte fields per record

  struct W {
    uint64_t tid;
    uint64_t key;
    int field;        // which field the txn logically updated
    int64_t fields[kFields];  // full-record image at commit time
  };

  // Simulate a committed history on the primary.
  std::vector<std::array<int64_t, kFields>> truth(kRecords, {0, 0});
  std::vector<W> log;
  for (int i = 1; i <= kWrites; ++i) {
    W w;
    w.key = rng.Uniform(kRecords);
    w.field = static_cast<int>(rng.Uniform(kFields));
    truth[w.key][w.field] = i;
    w.tid = Tid::Make(1, i, 0);
    w.fields[0] = truth[w.key][0];
    w.fields[1] = truth[w.key][1];
    log.push_back(w);
  }

  auto replay = [&](bool whole_record, bool shuffle) {
    std::vector<W> stream = log;
    if (shuffle) {
      for (size_t i = stream.size(); i > 1; --i) {
        size_t j = rng.Uniform(i);
        // Bounded reordering (network-style): swap within a window.
        size_t k = std::min(stream.size() - 1, j + rng.Uniform(16));
        std::swap(stream[i - 1], stream[k]);
      }
    }
    HashTable ht(16, kRecords, false);
    for (uint64_t k = 0; k < kRecords; ++k) {
      int64_t zero[2] = {0, 0};
      auto row = ht.GetOrInsertRow(k);
      row.rec->LockSpin();
      row.rec->Store(1, zero, 16, row.value, false);
      row.rec->UnlockWithTid(1);
    }
    for (const auto& w : stream) {
      auto row = ht.GetRow(w.key);
      if (whole_record) {
        row.rec->ApplyThomas(w.tid, w.fields, 16, row.value, false);
      } else {
        // Partial-field variant: image contains only the updated field;
        // the other field carries a stale zero.
        int64_t img[2] = {0, 0};
        img[w.field] = w.fields[w.field];
        row.rec->ApplyThomas(w.tid, img, 16, row.value, false);
      }
    }
    int lost = 0;
    for (uint64_t k = 0; k < kRecords; ++k) {
      int64_t got[2];
      std::memcpy(got, ht.GetRow(k).value, 16);
      if (got[0] != truth[k][0] || got[1] != truth[k][1]) ++lost;
    }
    return lost;
  };

  std::printf("%-44s %8s\n", "scheme", "diverged");
  std::printf("%-44s %7d/%d\n", "whole-record value, in order",
              replay(true, false), kRecords);
  std::printf("%-44s %7d/%d\n", "whole-record value, shuffled (Thomas rule)",
              replay(true, true), kRecords);
  std::printf("%-44s %7d/%d\n", "partial-field value, shuffled (Figure 8 bug)",
              replay(false, true), kRecords);
  std::printf("\nExpected: 0 divergence for whole-record replication in any "
              "order; substantial divergence for partial-field images.\n");
  return 0;
}
