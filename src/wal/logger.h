#ifndef STAR_WAL_LOGGER_H_
#define STAR_WAL_LOGGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "wal/log_buffer.h"

namespace star::wal {

class Checkpointer;

struct LoggerPoolOptions {
  std::string dir;
  int node = 0;
  /// Lanes = log producers (workers + io threads + replay shards).
  int num_lanes = 1;
  /// Dedicated logger threads; each owns one shard WAL file and serves the
  /// lanes with `lane % num_loggers == logger`.  Clamped to [1, num_lanes].
  int num_loggers = 1;
  bool fsync = false;
  /// Pin logger threads to cores (Linux only; off by default — the dev
  /// container is single-vCPU and pinning there just fights the scheduler).
  bool affinity = false;
  /// A lane hands its buffer to the logger once it holds this many bytes
  /// (epoch marks publish immediately regardless).
  size_t handoff_bytes = 1 << 16;
  /// Rotate a shard's WAL into a fresh segment file once the current one
  /// crosses this size; closed segments whose every entry is covered by a
  /// durable checkpoint link are garbage-collected (Gc).  0 = never rotate
  /// (one unbounded file per shard, the pre-GC behaviour).
  size_t segment_bytes = 64ull << 20;
};

/// Durable-epoch group commit (paper §4.5.1, exemplar: enclaveSilo's
/// LogBufferPool / durableEpochWork).  Workers append to in-memory lanes;
/// a configurable fleet of logger threads batches the published buffers
/// into per-shard WAL files, fsyncs, and advances a per-logger durable
/// watermark = min over its lanes' epoch marks.  The node's durable epoch
/// is the min over loggers: every entry of every epoch <= it is on disk.
///
/// Each engine restart writes a fresh *incarnation* of shard files
/// (`wal_node<N>_inc<I>_shard<S>.log`) — appending "wb"-style truncation
/// destroyed history across restarts before.  Under sustained load a shard
/// rotates into bounded segment files (`..._seg<K>.log`), each opening with
/// a carry-over epoch marker; segments and incarnations fully covered by a
/// durable checkpoint link are deleted (Gc), so the WAL's on-disk footprint
/// stays proportional to the checkpoint interval, not to uptime.  An
/// incarnation only counts
/// toward recovery's global committed epoch once its `.ok` completeness
/// marker exists (`MarkComplete()`): a process that crashes mid-rejoin has
/// real durable markers but an incomplete state basis, and must not
/// overclaim.
class LoggerPool : public BufferSink {
 public:
  explicit LoggerPool(LoggerPoolOptions opts);
  ~LoggerPool() override;

  LoggerPool(const LoggerPool&) = delete;
  LoggerPool& operator=(const LoggerPool&) = delete;

  LogLane* lane(int i) { return lanes_[static_cast<size_t>(i)].get(); }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int incarnation() const { return incarnation_; }

  // BufferSink: recycled buffers, freelist-backed like the payload pool.
  LogBuffer* AcquireBuffer() override;
  void Submit(LogBuffer* buf) override;

  /// Hands the checkpointer to logger thread 0, which runs it on its own
  /// cadence — checkpoints are written by the logger fleet, off the
  /// worker's lane.
  void AttachCheckpointer(Checkpointer* ckpt, double period_ms);

  /// Every entry of every epoch <= this is fsynced (min over loggers).
  uint64_t durable_epoch() const;

  /// Declares this incarnation's files a complete recovery basis (writes
  /// the `.ok` marker + directory fsync).  Called at startup for nodes
  /// that populated or recovered locally, and at rejoin-fetch completion
  /// for rejoining nodes.
  void MarkComplete();

  /// Records a failed fence on every lane (revert entries + watermark
  /// rollback); see LogLane::MarkRevert.
  void MarkRevert(uint64_t epoch);

  /// WAL garbage collection, driven by the checkpoint cadence (logger
  /// thread 0 calls this with the epoch the chain durably covers through).
  /// Two reclaim paths, both gated on this incarnation being a complete
  /// recovery basis (MarkComplete):
  ///  * closed segments: per shard, the longest *prefix* of closed segment
  ///    files whose entries all have epoch <= `covered_epoch` is deleted —
  ///    prefix-only so a retained pre-revert write can never outlive the
  ///    revert entry that shadows it, and each surviving segment opens with
  ///    a carry-over epoch marker so recovery's min-over-files watermark is
  ///    unaffected by the deletions;
  ///  * prior incarnations: once the chain covers the epoch this process
  ///    recovered to (SetPriorCommitted), every older incarnation's files
  ///    (and legacy `_worker` logs) are superseded in full — recovery only
  ///    ever replays them below that epoch — and deleted in one sweep.
  /// Safe to call from tests directly; idempotent.
  void Gc(uint64_t covered_epoch);

  /// The committed epoch wal::Recover rebuilt this process's state to.
  /// Until it is set, Gc never deletes prior-incarnation files (a process
  /// that did not recover cannot know what the old logs still cover).
  void SetPriorCommitted(uint64_t epoch) {
    prior_committed_.store(epoch, std::memory_order_release);
  }

  /// Publishes all lanes and blocks until every logger's queue is on disk.
  void Drain();

  /// Drain, stop and join the logger threads, close the files.  Idempotent.
  void Stop();

  uint64_t bytes_written() const { return Sum(&Logger::bytes); }
  uint64_t fsyncs() const { return Sum(&Logger::fsyncs); }
  uint64_t batches() const { return Sum(&Logger::batches); }
  uint64_t epoch_markers() const { return Sum(&Logger::markers); }
  uint64_t segments_rotated() const {
    return rotations_.load(std::memory_order_relaxed);
  }
  uint64_t wal_files_deleted() const {
    return gc_deleted_.load(std::memory_order_relaxed);
  }

  static std::string ShardPath(const std::string& dir, int node, int inc,
                               int shard);
  /// Segment 0 is ShardPath itself (backward-compatible name); later
  /// segments append a `_seg<K>` suffix.
  static std::string SegmentPath(const std::string& dir, int node, int inc,
                                 int shard, int seg);
  static std::string CompletePath(const std::string& dir, int node, int inc);
  /// Highest incarnation number present in `dir` for `node` (0 if none;
  /// the legacy `_worker` files are incarnation 0).
  static int ScanMaxIncarnation(const std::string& dir, int node);

 private:
  /// One logger thread + its shard file.  `marked`/`last_marker` are owned
  /// by the logger thread exclusively (no lock); the queue is the only
  /// cross-thread state.
  struct STAR_CACHELINE_ALIGNED Logger {
    int id = 0;
    int fd = -1;
    std::vector<int> lanes;                   // lane ids this logger serves
    std::vector<uint64_t> marked;             // per-lane watermark (by id)
    uint64_t last_marker = 0;                 // last epoch marker on disk
    int seg_index = 0;                        // current segment number
    uint64_t seg_bytes = 0;                   // bytes in current segment
    uint64_t seg_max_epoch = 0;               // max entry epoch in it
    Mutex mu;
    CondVar cv;
    std::vector<LogBuffer*> queue STAR_GUARDED_BY(mu);
    bool busy STAR_GUARDED_BY(mu) = false;    // batch in flight off-queue
    bool running STAR_GUARDED_BY(mu) = true;
    std::atomic<uint64_t> durable{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> fsyncs{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> markers{0};
    std::thread thread;
  };

  void RunLogger(Logger& lg);
  void WriteBatch(Logger& lg, std::vector<LogBuffer*>& batch);
  void RotateSegment(Logger& lg);
  void MaybeCheckpoint();

  uint64_t Sum(std::atomic<uint64_t> Logger::*field) const {
    uint64_t total = 0;
    for (const auto& lg : loggers_) {
      total += (lg.get()->*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  LoggerPoolOptions opts_;
  int incarnation_ = 1;
  std::vector<std::unique_ptr<Logger>> loggers_;
  std::vector<std::unique_ptr<LogLane>> lanes_;

  SpinLock free_mu_;
  std::vector<std::unique_ptr<LogBuffer>> all_buffers_ STAR_GUARDED_BY(free_mu_);
  std::vector<LogBuffer*> free_buffers_ STAR_GUARDED_BY(free_mu_);

  std::atomic<Checkpointer*> ckpt_{nullptr};  // attached after threads start
  std::atomic<int64_t> ckpt_period_ns_{0};
  std::atomic<int64_t> ckpt_last_ns_{0};
  bool stopped_ = false;

  /// A rotated-out segment file awaiting checkpoint coverage.  Per-logger
  /// lists stay in rotation order — Gc's prefix rule depends on it.
  struct ClosedSegment {
    std::string path;
    uint64_t max_epoch = 0;
  };
  SpinLock gc_mu_;
  std::vector<std::vector<ClosedSegment>> closed_ STAR_GUARDED_BY(gc_mu_);
  bool prior_gc_done_ STAR_GUARDED_BY(gc_mu_) = false;
  std::atomic<bool> complete_{false};  // MarkComplete() has run
  /// ~0 = "never recovered, coverage of the old logs unknown" sentinel.
  std::atomic<uint64_t> prior_committed_{~0ull};
  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> gc_deleted_{0};
};

}  // namespace star::wal

#endif  // STAR_WAL_LOGGER_H_
