#ifndef STAR_WAL_LOGGER_H_
#define STAR_WAL_LOGGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "wal/log_buffer.h"

namespace star::wal {

class Checkpointer;

struct LoggerPoolOptions {
  std::string dir;
  int node = 0;
  /// Lanes = log producers (workers + io threads + replay shards).
  int num_lanes = 1;
  /// Dedicated logger threads; each owns one shard WAL file and serves the
  /// lanes with `lane % num_loggers == logger`.  Clamped to [1, num_lanes].
  int num_loggers = 1;
  bool fsync = false;
  /// Pin logger threads to cores (Linux only; off by default — the dev
  /// container is single-vCPU and pinning there just fights the scheduler).
  bool affinity = false;
  /// A lane hands its buffer to the logger once it holds this many bytes
  /// (epoch marks publish immediately regardless).
  size_t handoff_bytes = 1 << 16;
};

/// Durable-epoch group commit (paper §4.5.1, exemplar: enclaveSilo's
/// LogBufferPool / durableEpochWork).  Workers append to in-memory lanes;
/// a configurable fleet of logger threads batches the published buffers
/// into per-shard WAL files, fsyncs, and advances a per-logger durable
/// watermark = min over its lanes' epoch marks.  The node's durable epoch
/// is the min over loggers: every entry of every epoch <= it is on disk.
///
/// Each engine restart writes a fresh *incarnation* of shard files
/// (`wal_node<N>_inc<I>_shard<S>.log`) — appending "wb"-style truncation
/// destroyed history across restarts before.  An incarnation only counts
/// toward recovery's global committed epoch once its `.ok` completeness
/// marker exists (`MarkComplete()`): a process that crashes mid-rejoin has
/// real durable markers but an incomplete state basis, and must not
/// overclaim.
class LoggerPool : public BufferSink {
 public:
  explicit LoggerPool(LoggerPoolOptions opts);
  ~LoggerPool() override;

  LoggerPool(const LoggerPool&) = delete;
  LoggerPool& operator=(const LoggerPool&) = delete;

  LogLane* lane(int i) { return lanes_[static_cast<size_t>(i)].get(); }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int incarnation() const { return incarnation_; }

  // BufferSink: recycled buffers, freelist-backed like the payload pool.
  LogBuffer* AcquireBuffer() override;
  void Submit(LogBuffer* buf) override;

  /// Hands the checkpointer to logger thread 0, which runs it on its own
  /// cadence — checkpoints are written by the logger fleet, off the
  /// worker's lane.
  void AttachCheckpointer(Checkpointer* ckpt, double period_ms);

  /// Every entry of every epoch <= this is fsynced (min over loggers).
  uint64_t durable_epoch() const;

  /// Declares this incarnation's files a complete recovery basis (writes
  /// the `.ok` marker + directory fsync).  Called at startup for nodes
  /// that populated or recovered locally, and at rejoin-fetch completion
  /// for rejoining nodes.
  void MarkComplete();

  /// Records a failed fence on every lane (revert entries + watermark
  /// rollback); see LogLane::MarkRevert.
  void MarkRevert(uint64_t epoch);

  /// Publishes all lanes and blocks until every logger's queue is on disk.
  void Drain();

  /// Drain, stop and join the logger threads, close the files.  Idempotent.
  void Stop();

  uint64_t bytes_written() const { return Sum(&Logger::bytes); }
  uint64_t fsyncs() const { return Sum(&Logger::fsyncs); }
  uint64_t batches() const { return Sum(&Logger::batches); }
  uint64_t epoch_markers() const { return Sum(&Logger::markers); }

  static std::string ShardPath(const std::string& dir, int node, int inc,
                               int shard);
  static std::string CompletePath(const std::string& dir, int node, int inc);
  /// Highest incarnation number present in `dir` for `node` (0 if none;
  /// the legacy `_worker` files are incarnation 0).
  static int ScanMaxIncarnation(const std::string& dir, int node);

 private:
  /// One logger thread + its shard file.  `marked`/`last_marker` are owned
  /// by the logger thread exclusively (no lock); the queue is the only
  /// cross-thread state.
  struct STAR_CACHELINE_ALIGNED Logger {
    int id = 0;
    int fd = -1;
    std::vector<int> lanes;                   // lane ids this logger serves
    std::vector<uint64_t> marked;             // per-lane watermark (by id)
    uint64_t last_marker = 0;                 // last epoch marker on disk
    Mutex mu;
    CondVar cv;
    std::vector<LogBuffer*> queue STAR_GUARDED_BY(mu);
    bool busy STAR_GUARDED_BY(mu) = false;    // batch in flight off-queue
    bool running STAR_GUARDED_BY(mu) = true;
    std::atomic<uint64_t> durable{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> fsyncs{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> markers{0};
    std::thread thread;
  };

  void RunLogger(Logger& lg);
  void WriteBatch(Logger& lg, std::vector<LogBuffer*>& batch);
  void MaybeCheckpoint();

  uint64_t Sum(std::atomic<uint64_t> Logger::*field) const {
    uint64_t total = 0;
    for (const auto& lg : loggers_) {
      total += (lg.get()->*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  LoggerPoolOptions opts_;
  int incarnation_ = 1;
  std::vector<std::unique_ptr<Logger>> loggers_;
  std::vector<std::unique_ptr<LogLane>> lanes_;

  SpinLock free_mu_;
  std::vector<std::unique_ptr<LogBuffer>> all_buffers_ STAR_GUARDED_BY(free_mu_);
  std::vector<LogBuffer*> free_buffers_ STAR_GUARDED_BY(free_mu_);

  std::atomic<Checkpointer*> ckpt_{nullptr};  // attached after threads start
  std::atomic<int64_t> ckpt_period_ns_{0};
  std::atomic<int64_t> ckpt_last_ns_{0};
  bool stopped_ = false;
};

}  // namespace star::wal

#endif  // STAR_WAL_LOGGER_H_
