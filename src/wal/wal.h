#ifndef STAR_WAL_WAL_H_
#define STAR_WAL_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cc/write_set.h"
#include "common/mutex.h"
#include "common/serializer.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "storage/database.h"
#include "wal/format.h"

namespace star::wal {

/// fsyncs a directory so that file creations and renames inside it survive
/// a crash — fsyncing the file alone pins the *bytes*, not the directory
/// entry that names them.
void FsyncDir(const std::string& dir);

/// Per-worker write-ahead log (Section 4.5.1): "each worker thread has a
/// local recovery log.  The writes of committed transactions along with some
/// metadata are buffered in memory and periodically flushed."
///
/// Record entry: key, value and TID (the TID embeds the epoch), CRC-framed
/// per wal/format.h.  Epoch markers are appended at every replication fence;
/// recovery replays only epochs whose marker is present in *every* log,
/// which restores the database "to the end of the last epoch" (Section
/// 4.5.3, Case 4).
///
/// This is the synchronous single-writer log (durability in the appender's
/// lane).  The engine's group-commit path uses wal/logger.h LogLane +
/// LoggerPool instead, which share the on-disk format; WalWriter remains
/// the simple substrate for tests and tools.
class WalWriter {
 public:
  WalWriter(std::string path, bool fsync_on_flush, size_t flush_bytes = 1 << 20);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one committed write (whole record, Section 5's transform makes
  /// this possible even under operation replication).
  void Append(int32_t table, int32_t partition, uint64_t key, uint64_t tid,
              std::string_view value);

  /// Buffers one committed delete (tombstone; replayed with the Thomas rule
  /// like every other entry, so log order stays irrelevant to recovery).
  void AppendDelete(int32_t table, int32_t partition, uint64_t key,
                    uint64_t tid);

  /// Buffers every entry of a committed transaction's write set (values
  /// serialised straight from the arena views) under a single latch
  /// acquisition — the per-commit fast path for worker logs.
  void AppendCommit(uint64_t tid, const WriteSet& writes);

  /// Appends the epoch-commit marker and flushes (called in the fence).
  void MarkEpochAndFlush(uint64_t epoch);

  void Flush();

  uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  void FlushLocked() STAR_REQUIRES(mu_);

  std::string path_;
  FILE* file_ STAR_GUARDED_BY(mu_);
  bool fsync_;
  size_t flush_bytes_;
  WriteBuffer buf_ STAR_GUARDED_BY(mu_);
  std::atomic<uint64_t> bytes_{0};
  /// Appends come from one thread in the common case, but fence-time epoch
  /// markers on io-thread logs are written by the node control thread, so
  /// every mutation takes this latch.
  SpinLock mu_;
};

/// One link in a node's checkpoint chain: a base (full fuzzy scan) or a
/// delta (records whose TID epoch moved since the previous link), both
/// epoch-bounded — a link covers exactly (from_epoch, stable_epoch].
struct CheckpointChainEntry {
  uint8_t kind = 0;  // 0 = base, 1 = delta
  uint64_t from_epoch = 0;
  uint64_t stable_epoch = 0;
  std::string file;  // filename relative to the log dir
};

std::string CheckpointManifestPath(const std::string& dir, int node);

/// Parses the manifest; returns false (and leaves `out` empty) on a
/// missing, torn or corrupt manifest — recovery then falls back to logs
/// alone, never to a half-trusted chain.
bool LoadCheckpointManifest(const std::string& path,
                            std::vector<CheckpointChainEntry>* out);

/// Incremental non-quiescent checkpointer (Section 4.5.1).  The first run
/// writes a base: every present record with TID epoch <= the stable epoch,
/// read per-record-consistently while workers keep running (the snapshot as
/// a whole is fuzzy; the Thomas rule during recovery fixes it up).  Later
/// runs write deltas: only records — including tombstones — whose TID epoch
/// moved past the previous link's stable epoch.  Records above the stable
/// ceiling are skipped entirely: the log tail covers them, and the ceiling
/// (the cluster durable epoch) can never contain an epoch that later
/// reverts, so checkpoints never capture doomed data.
///
/// Each link is written tmp -> fsync -> rename -> dir-fsync, then the
/// manifest is rewritten the same way; a crash at any point leaves either
/// the old chain or the new one, never a torn mix (orphan data files are
/// simply never referenced).
///
/// The chain is kept bounded: once it reaches `max_chain_links`, the next
/// run writes a fresh base instead of a delta, and — after the manifest
/// durably names the one-link chain — every data file the manifest no
/// longer references (superseded links and crash orphans alike) is swept
/// from the directory.  Sustained load therefore costs O(max_chain_links)
/// checkpoint files, not an ever-growing chain.
class Checkpointer {
 public:
  /// `stable_epoch` is the ceiling the checkpoints chase — the engine
  /// passes the cluster durable epoch.  `max_chain_links` bounds the chain
  /// (0 = never compact, the unbounded pre-GC behaviour).
  Checkpointer(Database* db, std::string dir, int node,
               const std::atomic<uint64_t>* stable_epoch,
               size_t max_chain_links = 16);
  ~Checkpointer() { Stop(); }

  /// Writes one link (base if the chain is empty or due for compaction,
  /// else delta); returns the stable epoch the chain covers through
  /// (0 = nothing to do yet).
  uint64_t RunOnce();

  /// Background loop checkpointing every `period_ms`.  The engine instead
  /// attaches this checkpointer to the logger pool (logger thread 0 runs
  /// the cadence); the thread here serves tests and standalone use.
  void StartPeriodic(double period_ms);
  void Stop();

  std::string ManifestPath() const;

  uint64_t checkpoints_taken() const {
    return taken_.load(std::memory_order_relaxed);
  }
  uint64_t entries_written() const {
    return entries_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t chain_files_deleted() const {
    return swept_.load(std::memory_order_relaxed);
  }
  size_t chain_length() {
    MutexLock l(run_mu_);
    return chain_.size();
  }

 private:
  Database* db_;
  std::string dir_;
  int node_;
  const std::atomic<uint64_t>* stable_epoch_;
  size_t max_chain_links_;

  /// RunOnce may be invoked by a logger thread, the periodic thread, or a
  /// test; one link at a time.
  Mutex run_mu_;
  std::vector<CheckpointChainEntry> chain_ STAR_GUARDED_BY(run_mu_);
  uint64_t next_seq_ STAR_GUARDED_BY(run_mu_) = 0;

  std::atomic<uint64_t> taken_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> swept_{0};

  std::atomic<bool> running_{false};
  std::thread thread_;
};

struct RecoveryResult {
  uint64_t committed_epoch = 0;  // database restored to the end of this epoch
  uint64_t checkpoint_entries = 0;
  uint64_t log_entries_replayed = 0;
  uint64_t log_entries_skipped = 0;  // newer than committed, or reverted
  uint64_t torn_files = 0;           // logs with an invalid (torn) tail
  int incarnations = 0;              // log incarnations found
  bool used_checkpoint = false;      // a valid chain was installed
  bool has_base = false;             // ...and it includes a base link
};

/// Rebuilds a node's database from its checkpoint chain + logs (Section
/// 4.5.3, Case 4).  Globs the directory for every log incarnation (legacy
/// `_worker` files and logger-pool `_inc<I>_shard<S>` files); a rotated
/// shard's `_seg<K>` files are concatenated in segment order back into one
/// logical stream (rotation cuts on entry boundaries, and GC only ever
/// removes a covered prefix, whose watermark the next segment's carry-over
/// marker re-states).  Per
/// incarnation the recoverable epoch is the min over its files of the
/// highest epoch marker, walked sequentially so revert entries cancel the
/// markers of rolled-back fences.  The global committed epoch is the max
/// over *complete* incarnations (see LoggerPool::MarkComplete).  The
/// checkpoint chain installs first (entries gated to epochs <= committed),
/// then every log entry with epoch <= its own incarnation's recoverable
/// epoch — and not shadowed by a later revert of that epoch in the same
/// file — is replayed under the Thomas write rule; order is irrelevant.
RecoveryResult Recover(Database* db, const std::string& dir, int node);

/// Helper naming scheme shared by writer and recovery.
std::string WalPath(const std::string& dir, int node, int worker);

}  // namespace star::wal

#endif  // STAR_WAL_WAL_H_
