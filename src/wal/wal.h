#ifndef STAR_WAL_WAL_H_
#define STAR_WAL_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>

#include "cc/write_set.h"
#include "common/serializer.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "storage/database.h"

namespace star::wal {

/// Per-worker write-ahead log (Section 4.5.1): "each worker thread has a
/// local recovery log.  The writes of committed transactions along with some
/// metadata are buffered in memory and periodically flushed."
///
/// Record entry: key, value and TID (the TID embeds the epoch).  Epoch
/// markers are appended at every replication fence; recovery replays only
/// epochs whose marker is present in *every* worker log, which restores the
/// database "to the end of the last epoch" (Section 4.5.3, Case 4).
class WalWriter {
 public:
  WalWriter(std::string path, bool fsync_on_flush, size_t flush_bytes = 1 << 20);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one committed write (whole record, Section 5's transform makes
  /// this possible even under operation replication).
  void Append(int32_t table, int32_t partition, uint64_t key, uint64_t tid,
              std::string_view value);

  /// Buffers one committed delete (tombstone; replayed with the Thomas rule
  /// like every other entry, so log order stays irrelevant to recovery).
  void AppendDelete(int32_t table, int32_t partition, uint64_t key,
                    uint64_t tid);

  /// Buffers every entry of a committed transaction's write set (values
  /// serialised straight from the arena views) under a single latch
  /// acquisition — the per-commit fast path for worker logs.
  void AppendCommit(uint64_t tid, const WriteSet& writes);

  /// Appends the epoch-commit marker and flushes (called in the fence).
  void MarkEpochAndFlush(uint64_t epoch);

  void Flush();

  uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

  // Entry tags in the on-disk stream.
  static constexpr uint8_t kWriteTag = 0;
  static constexpr uint8_t kEpochTag = 1;
  static constexpr uint8_t kDeleteTag = 2;

 private:
  void AppendLocked(int32_t table, int32_t partition, uint64_t key,
                    uint64_t tid, std::string_view value) STAR_REQUIRES(mu_);
  void FlushLocked() STAR_REQUIRES(mu_);

  std::string path_;
  FILE* file_ STAR_GUARDED_BY(mu_);
  bool fsync_;
  size_t flush_bytes_;
  WriteBuffer buf_ STAR_GUARDED_BY(mu_);
  std::atomic<uint64_t> bytes_{0};
  /// Appends come from one thread in the common case, but fence-time epoch
  /// markers on io-thread logs are written by the node control thread, so
  /// every mutation takes this latch.
  SpinLock mu_;
};

/// Non-quiescent checkpointer (Section 4.5.1): scans the database and logs
/// each record with its TID.  The snapshot need not be transactionally
/// consistent — recovery fixes it up with the Thomas write rule — so workers
/// keep running.
class Checkpointer {
 public:
  Checkpointer(Database* db, std::string dir, int node,
               const std::atomic<uint64_t>* epoch)
      : db_(db), dir_(std::move(dir)), node_(node), epoch_(epoch) {}
  ~Checkpointer() { Stop(); }

  /// Writes one full checkpoint; returns the epoch recorded at its start.
  uint64_t RunOnce();

  /// Background loop checkpointing every `period_ms`.
  void StartPeriodic(double period_ms);
  void Stop();

  std::string FinalPath() const;

 private:
  Database* db_;
  std::string dir_;
  int node_;
  const std::atomic<uint64_t>* epoch_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

struct RecoveryResult {
  uint64_t committed_epoch = 0;  // database restored to the end of this epoch
  uint64_t checkpoint_entries = 0;
  uint64_t log_entries_replayed = 0;
  uint64_t log_entries_skipped = 0;  // newer than the committed epoch
};

/// Rebuilds a node's database from its checkpoint + worker logs (Section
/// 4.5.3, Case 4).  The checkpoint is loaded first (possibly inconsistent),
/// then every log entry with epoch <= committed_epoch is replayed under the
/// Thomas write rule; order is irrelevant.
RecoveryResult Recover(Database* db, const std::string& dir, int node,
                       int num_workers);

/// Helper naming scheme shared by writer and recovery.
std::string WalPath(const std::string& dir, int node, int worker);

}  // namespace star::wal

#endif  // STAR_WAL_WAL_H_
