#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/tid.h"
#include "storage/record.h"
#include "wal/crash_point.h"

namespace star::wal {

namespace {

constexpr uint64_t kCkptMagic = 0x31504B4352415453ull;      // "STARCKP1"
constexpr uint64_t kManifestMagic = 0x314D4B4352415453ull;  // "STARCKM1"

std::string ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  data.resize(got);
  return data;
}

/// Write + flush + fsync + close, returning false on any failure.
bool WriteFileDurably(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  std::fclose(f);
  return ok;
}

}  // namespace

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string WalPath(const std::string& dir, int node, int worker) {
  return dir + "/wal_node" + std::to_string(node) + "_worker" +
         std::to_string(worker) + ".log";
}

// --- WalWriter ---

WalWriter::WalWriter(std::string path, bool fsync_on_flush, size_t flush_bytes)
    : path_(std::move(path)),
      file_(std::fopen(path_.c_str(), "wb")),
      fsync_(fsync_on_flush),
      flush_bytes_(flush_bytes) {
  // The newly-created file's directory entry must survive a crash too.
  if (fsync_) {
    FsyncDir(std::filesystem::path(path_).parent_path().string());
  }
}

WalWriter::~WalWriter() {
  // No thread can race a dtor; the guard satisfies the analysis and keeps
  // FlushLocked's contract literal.
  SpinLockGuard g(mu_);
  if (file_ != nullptr) {
    FlushLocked();
    std::fclose(file_);
  }
}

void WalWriter::Append(int32_t table, int32_t partition, uint64_t key,
                       uint64_t tid, std::string_view value) {
  SpinLockGuard g(mu_);
  AppendWriteEntry(&buf_, table, partition, key, tid, value.data(),
                   static_cast<uint32_t>(value.size()));
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::AppendDelete(int32_t table, int32_t partition, uint64_t key,
                             uint64_t tid) {
  SpinLockGuard g(mu_);
  AppendDeleteEntry(&buf_, table, partition, key, tid);
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::AppendCommit(uint64_t tid, const WriteSet& writes) {
  SpinLockGuard g(mu_);
  for (const auto& e : writes.entries()) {
    if (e.is_delete) {
      AppendDeleteEntry(&buf_, e.table, e.partition, e.key, tid);
    } else {
      std::string_view v = writes.ValueView(e);
      AppendWriteEntry(&buf_, e.table, e.partition, e.key, tid, v.data(),
                       static_cast<uint32_t>(v.size()));
    }
  }
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::MarkEpochAndFlush(uint64_t epoch) {
  SpinLockGuard g(mu_);
  AppendEpochEntry(&buf_, epoch);
  FlushLocked();
}

void WalWriter::Flush() {
  SpinLockGuard g(mu_);
  FlushLocked();
}

void WalWriter::FlushLocked() {
  if (buf_.empty() || file_ == nullptr) return;
  std::fwrite(buf_.data().data(), 1, buf_.size(), file_);
  std::fflush(file_);
  MaybeCrash("pre-fsync");
  if (fsync_) {
    ::fsync(::fileno(file_));
  }
  bytes_.fetch_add(buf_.size(), std::memory_order_relaxed);
  buf_.Clear();
}

// --- Checkpoint manifest ---

std::string CheckpointManifestPath(const std::string& dir, int node) {
  return dir + "/ckpt_node" + std::to_string(node) + ".manifest";
}

bool LoadCheckpointManifest(const std::string& path,
                            std::vector<CheckpointChainEntry>* out) {
  out->clear();
  std::string data = ReadWholeFile(path);
  if (data.size() < sizeof(uint64_t) + sizeof(uint32_t) * 2) return false;

  uint32_t stored;
  std::memcpy(&stored, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored != Crc32(data.data(), data.size() - sizeof(uint32_t))) {
    return false;
  }

  size_t pos = 0;
  size_t end = data.size() - sizeof(uint32_t);
  auto read = [&](void* dst, size_t n) {
    if (end - pos < n) return false;
    std::memcpy(dst, data.data() + pos, n);
    pos += n;
    return true;
  };
  uint64_t magic;
  uint32_t count;
  if (!read(&magic, sizeof(magic)) || magic != kManifestMagic) return false;
  if (!read(&count, sizeof(count))) return false;
  for (uint32_t i = 0; i < count; ++i) {
    CheckpointChainEntry e;
    uint32_t name_len;
    if (!read(&e.kind, 1) || !read(&e.from_epoch, 8) ||
        !read(&e.stable_epoch, 8) || !read(&name_len, 4) ||
        name_len > end - pos) {
      out->clear();
      return false;
    }
    e.file.assign(data.data() + pos, name_len);
    pos += name_len;
    out->push_back(std::move(e));
  }
  if (pos != end) {
    out->clear();
    return false;
  }
  return true;
}

// --- Checkpointer ---

Checkpointer::Checkpointer(Database* db, std::string dir, int node,
                           const std::atomic<uint64_t>* stable_epoch,
                           size_t max_chain_links)
    : db_(db),
      dir_(std::move(dir)),
      node_(node),
      stable_epoch_(stable_epoch),
      max_chain_links_(max_chain_links) {
  // Continue an existing chain across restarts; a torn manifest means the
  // chain is unusable, so start a fresh one (the first run writes a base).
  MutexLock l(run_mu_);
  if (LoadCheckpointManifest(ManifestPath(), &chain_)) {
    for (const auto& e : chain_) {
      // Seq numbers are embedded in filenames: ckpt_node<N>_<seq>.dat.
      size_t us = e.file.rfind('_');
      if (us != std::string::npos) {
        next_seq_ = std::max(
            next_seq_, static_cast<uint64_t>(
                           std::atoll(e.file.c_str() + us + 1)) + 1);
      }
    }
  }
}

std::string Checkpointer::ManifestPath() const {
  return CheckpointManifestPath(dir_, node_);
}

uint64_t Checkpointer::RunOnce() {
  MutexLock l(run_mu_);
  uint64_t stable = stable_epoch_->load(std::memory_order_acquire);
  if (stable == 0) return 0;
  uint64_t from = chain_.empty() ? 0 : chain_.back().stable_epoch;
  // At the link bound the next run compacts: it writes a fresh base (even
  // if the stable epoch has not moved) and the superseded links are swept
  // once the manifest durably names the one-link chain.
  bool compact = max_chain_links_ > 0 && chain_.size() >= max_chain_links_;
  uint8_t kind = (chain_.empty() || compact) ? 0 : 1;
  if (kind == 1 && stable <= from) return from;  // nothing new is durable
  if (compact) from = 0;  // a base re-covers (0, stable] in full

  std::string name = "ckpt_node" + std::to_string(node_) + "_" +
                     std::to_string(next_seq_) + ".dat";
  std::string tmp = dir_ + "/" + name + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return from;

  WriteBuffer buf;
  {
    size_t start = buf.data().size();
    buf.Write<uint64_t>(kCkptMagic);
    buf.Write<uint8_t>(kind);
    buf.Write<uint64_t>(from);
    buf.Write<uint64_t>(stable);
    SealEntry(&buf, start);
  }
  std::fwrite(buf.data().data(), 1, buf.size(), f);
  uint64_t file_bytes = buf.size();
  buf.Clear();
  MaybeCrash("mid-checkpoint-delta");

  uint64_t entries = 0;
  std::string scratch;
  for (int t = 0; t < db_->num_tables(); ++t) {
    for (int p = 0; p < db_->num_partitions(); ++p) {
      HashTable* ht = db_->table(t, p);
      if (ht == nullptr) continue;
      scratch.resize(ht->value_size());
      ht->ForEach([&](uint64_t key, Record* rec, char* value) {
        // Consistent per-record read; the snapshot as a whole is fuzzy.
        uint64_t w = rec->ReadStable(scratch.data(), scratch.size(), value);
        uint64_t tid = Record::TidOf(w);
        uint64_t epoch = Tid::Epoch(tid);
        // Above the stable ceiling the log tail is authoritative — and the
        // epoch might yet revert; never bake it into a checkpoint.
        if (epoch > stable) return;
        if (Record::IsAbsent(w)) {
          // Tombstones matter only to deltas: the base encodes absence by
          // omission, and pre-history absences (tid 0) never moved.
          if (kind == 1 && tid != 0 && epoch > from) {
            AppendDeleteEntry(&buf, t, p, key, tid);
            ++entries;
          }
          return;
        }
        if (kind == 1 && epoch <= from) return;  // unchanged since last link
        AppendWriteEntry(&buf, t, p, key, tid, scratch.data(),
                         static_cast<uint32_t>(scratch.size()));
        ++entries;
        if (buf.size() >= (1u << 20)) {
          std::fwrite(buf.data().data(), 1, buf.size(), f);
          file_bytes += buf.size();
          buf.Clear();
        }
      });
    }
  }
  std::fwrite(buf.data().data(), 1, buf.size(), f);
  file_bytes += buf.size();
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);

  if (kind == 1 && entries == 0) {
    // An empty delta would only grow the chain; the log tail already covers
    // (from, stable] and recovery does not need a placeholder link.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return from;
  }

  std::error_code ec;
  std::filesystem::rename(tmp, dir_ + "/" + name, ec);
  if (ec) return from;
  FsyncDir(dir_);

  if (compact) chain_.clear();  // the fresh base supersedes every old link
  chain_.push_back(CheckpointChainEntry{kind, from, stable, name});
  ++next_seq_;

  WriteBuffer mf;
  mf.Write<uint64_t>(kManifestMagic);
  mf.Write<uint32_t>(static_cast<uint32_t>(chain_.size()));
  for (const auto& e : chain_) {
    mf.Write<uint8_t>(e.kind);
    mf.Write<uint64_t>(e.from_epoch);
    mf.Write<uint64_t>(e.stable_epoch);
    mf.Write<uint32_t>(static_cast<uint32_t>(e.file.size()));
    mf.WriteRaw(e.file.data(), e.file.size());
  }
  mf.Write<uint32_t>(Crc32(mf.data().data(), mf.size()));

  std::string mtmp = ManifestPath() + ".tmp";
  bool manifest_ok = false;
  if (WriteFileDurably(mtmp, mf.data())) {
    // The new link's data file is durable but the manifest still names the
    // old chain: dying exactly here must leave recovery on the old chain
    // with the new file a harmless orphan.
    MaybeCrash("mid-manifest-rename");
    std::filesystem::rename(mtmp, ManifestPath(), ec);
    if (!ec) {
      FsyncDir(dir_);
      manifest_ok = true;
    }
  }

  if (manifest_ok && compact) {
    // Sweep every data file the manifest no longer references: the links
    // the base just superseded, plus any orphan a crash between link
    // rename and manifest rename left behind earlier.  Deletion needs no
    // dir fsync — a file resurrected by a crash is unreferenced and inert.
    const std::string prefix = "ckpt_node" + std::to_string(node_) + "_";
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      std::string fname = entry.path().filename().string();
      if (fname.rfind(prefix, 0) != 0 ||
          fname.find(".dat") == std::string::npos) {
        continue;
      }
      bool referenced = false;
      for (const auto& e : chain_) referenced |= (e.file == fname);
      std::error_code rc;
      if (!referenced && std::filesystem::remove(entry.path(), rc)) {
        swept_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  taken_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(entries, std::memory_order_relaxed);
  bytes_.fetch_add(file_bytes, std::memory_order_relaxed);
  return stable;
}

void Checkpointer::StartPeriodic(double period_ms) {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, period_ms] {
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(period_ms * 1000)));
      if (!running_.load(std::memory_order_acquire)) break;
      RunOnce();
    }
  });
}

void Checkpointer::Stop() {
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  thread_.join();
}

// --- Recovery ---

namespace {

/// One scanned log file: its bytes, the revert-aware recoverable epoch, and
/// where the last revert of each epoch sits (entry ordinal) so replay can
/// skip entries shadowed by a rollback.
struct ScannedLog {
  std::string path;
  int incarnation = 0;
  std::string data;
  uint64_t recoverable = 0;
  std::unordered_map<uint64_t, uint64_t> last_revert;  // epoch -> ordinal
  bool torn = false;
};

void ScanLog(ScannedLog* log) {
  LogCursor cur(log->data);
  LogEntry e;
  uint64_t running = 0;
  uint64_t ordinal = 0;
  while (cur.Next(&e)) {
    if (e.tag == kEpochTag) {
      running = std::max(running, e.epoch);
    } else if (e.tag == kRevertTag) {
      if (e.epoch > 0) running = std::min(running, e.epoch - 1);
      log->last_revert[e.epoch] = ordinal;
    }
    ++ordinal;
  }
  log->recoverable = running;
  log->torn = cur.torn();
}

struct ParsedCheckpoint {
  std::string data;
  size_t entries_off = 0;
};

/// Validates magic + header CRC + every entry (a checkpoint file is written
/// via tmp/rename, so a torn one is corruption, not a crash artifact — the
/// whole chain is rejected rather than half-trusted).
bool ParseCheckpointFile(const std::string& path,
                         const CheckpointChainEntry& link,
                         ParsedCheckpoint* out) {
  out->data = ReadWholeFile(path);
  constexpr size_t kHeader = 8 + 1 + 8 + 8 + 4;
  if (out->data.size() < kHeader) return false;
  uint32_t stored;
  std::memcpy(&stored, out->data.data() + kHeader - 4, sizeof(uint32_t));
  if (stored != Crc32(out->data.data(), kHeader - 4)) return false;
  uint64_t magic;
  std::memcpy(&magic, out->data.data(), sizeof(magic));
  if (magic != kCkptMagic) return false;
  if (static_cast<uint8_t>(out->data[8]) != link.kind) return false;
  out->entries_off = kHeader;
  LogCursor cur(std::string_view(out->data).substr(kHeader));
  LogEntry e;
  while (cur.Next(&e)) {
    if (e.tag != kWriteTag && e.tag != kDeleteTag) return false;
  }
  return !cur.torn();
}

void ApplyEntry(Database* db, const LogEntry& e) {
  HashTable* ht = db->table(e.table, e.partition);
  if (ht == nullptr) return;
  HashTable::Row row = ht->GetOrInsertRow(e.key);
  if (e.tag == kDeleteTag) {
    row.rec->ApplyThomasDelete(e.tid, row.size, row.value, db->two_version());
  } else {
    row.rec->ApplyThomas(e.tid, e.value.data(), row.size, row.value,
                         db->two_version());
  }
}

}  // namespace

RecoveryResult Recover(Database* db, const std::string& dir, int node) {
  RecoveryResult result;

  // 1. Glob the directory: legacy per-worker files are incarnation 0;
  //    logger-pool shard files carry their incarnation in the name, with a
  //    sibling `.ok` marking the incarnation as a complete recovery basis.
  //    A rotated shard's `_seg<K>` files re-form one logical stream when
  //    concatenated in segment order — rotation cuts on entry boundaries,
  //    GC deletes only a checkpoint-covered prefix, and each segment after
  //    the first opens with a carry-over marker re-stating the watermark.
  std::vector<ScannedLog> logs;
  std::map<int, bool> incarnation_complete;
  std::map<std::pair<int, int>, std::map<int, std::string>> shard_segs;
  const std::string worker_prefix =
      "wal_node" + std::to_string(node) + "_worker";
  const std::string inc_prefix = "wal_node" + std::to_string(node) + "_inc";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(worker_prefix, 0) == 0) {
      ScannedLog log;
      log.path = entry.path().string();
      log.incarnation = 0;
      log.data = ReadWholeFile(log.path);
      incarnation_complete[0] = true;  // legacy files predate the marker
      logs.push_back(std::move(log));
    } else if (name.rfind(inc_prefix, 0) == 0) {
      int inc = std::atoi(name.c_str() + inc_prefix.size());
      if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ok") == 0) {
        incarnation_complete[inc] = true;
      } else {
        size_t sp = name.find("_shard");
        if (sp != std::string::npos) {
          int shard = std::atoi(name.c_str() + sp + 6);
          size_t gp = name.find("_seg", sp);
          int seg = gp == std::string::npos
                        ? 0
                        : std::atoi(name.c_str() + gp + 4);
          shard_segs[{inc, shard}][seg] = entry.path().string();
          if (incarnation_complete.find(inc) == incarnation_complete.end()) {
            incarnation_complete[inc] = false;
          }
        }
      }
    }
  }
  for (auto& [key, segs] : shard_segs) {
    ScannedLog log;
    log.incarnation = key.first;
    log.path = segs.begin()->second;
    for (auto& [seg, path] : segs) log.data += ReadWholeFile(path);
    logs.push_back(std::move(log));
  }

  // 2. Scan: per incarnation the recoverable epoch is the min over its
  //    files of the (revert-adjusted) highest marker; the global committed
  //    epoch is the max over complete incarnations.  An incomplete
  //    incarnation (crashed mid-rejoin-fetch) has honest markers but an
  //    incomplete state basis — its entries still replay below its own
  //    recoverable epoch, it just cannot *claim* that epoch for the node.
  std::map<int, uint64_t> inc_recoverable;
  for (auto& log : logs) {
    ScanLog(&log);
    if (log.torn) ++result.torn_files;
    auto it = inc_recoverable.find(log.incarnation);
    if (it == inc_recoverable.end()) {
      inc_recoverable[log.incarnation] = log.recoverable;
    } else {
      it->second = std::min(it->second, log.recoverable);
    }
  }
  uint64_t committed = 0;
  for (const auto& [inc, rec] : inc_recoverable) {
    if (incarnation_complete[inc]) committed = std::max(committed, rec);
  }
  result.committed_epoch = committed;
  result.incarnations = static_cast<int>(inc_recoverable.size());

  // 3. Install the checkpoint chain (base, then deltas), if the manifest
  //    and every link validate.  Entries above the committed epoch are
  //    skipped: a checkpoint written by a later-crashed incarnation may
  //    cover epochs this recovery cannot prove durable, and under-install
  //    is always safe (logs or the rejoin delta fetch re-cover them).
  std::vector<CheckpointChainEntry> chain;
  if (LoadCheckpointManifest(CheckpointManifestPath(dir, node), &chain) &&
      !chain.empty()) {
    std::vector<ParsedCheckpoint> files(chain.size());
    bool ok = true;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (!ParseCheckpointFile(dir + "/" + chain[i].file, chain[i],
                               &files[i])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& pc : files) {
        LogCursor cur(std::string_view(pc.data).substr(pc.entries_off));
        LogEntry e;
        while (cur.Next(&e)) {
          if (e.tid != Database::kLoadTid && Tid::Epoch(e.tid) > committed) {
            continue;
          }
          ApplyEntry(db, e);
          ++result.checkpoint_entries;
        }
      }
      result.used_checkpoint = true;
      result.has_base = chain.front().kind == 0;
    }
  }

  // 4. Replay log entries with epoch <= their own incarnation's recoverable
  //    epoch under the Thomas write rule; entries of an epoch that a later
  //    revert entry in the same file rolled back are skipped (the same
  //    epoch may recommit after the revert — position decides).
  for (const auto& log : logs) {
    uint64_t ceiling = inc_recoverable[log.incarnation];
    LogCursor cur(log.data);
    LogEntry e;
    uint64_t ordinal = 0;
    while (cur.Next(&e)) {
      uint64_t this_ordinal = ordinal++;
      if (e.tag != kWriteTag && e.tag != kDeleteTag) continue;
      uint64_t epoch = Tid::Epoch(e.tid);
      if (epoch > ceiling) {
        ++result.log_entries_skipped;
        continue;
      }
      auto rv = log.last_revert.find(epoch);
      if (rv != log.last_revert.end() && rv->second > this_ordinal) {
        ++result.log_entries_skipped;
        continue;
      }
      ApplyEntry(db, e);
      ++result.log_entries_replayed;
    }
  }
  return result;
}

}  // namespace star::wal
