#include "wal/wal.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/tid.h"
#include "storage/record.h"

namespace star::wal {

std::string WalPath(const std::string& dir, int node, int worker) {
  return dir + "/wal_node" + std::to_string(node) + "_worker" +
         std::to_string(worker) + ".log";
}

// --- WalWriter ---

WalWriter::WalWriter(std::string path, bool fsync_on_flush, size_t flush_bytes)
    : path_(std::move(path)),
      file_(std::fopen(path_.c_str(), "wb")),
      fsync_(fsync_on_flush),
      flush_bytes_(flush_bytes) {}

WalWriter::~WalWriter() {
  // No thread can race a dtor; the guard satisfies the analysis and keeps
  // FlushLocked's contract literal.
  SpinLockGuard g(mu_);
  if (file_ != nullptr) {
    FlushLocked();
    std::fclose(file_);
  }
}

void WalWriter::AppendLocked(int32_t table, int32_t partition, uint64_t key,
                             uint64_t tid, std::string_view value) {
  buf_.Write<uint8_t>(kWriteTag);
  buf_.Write<int32_t>(table);
  buf_.Write<int32_t>(partition);
  buf_.Write<uint64_t>(key);
  buf_.Write<uint64_t>(tid);
  buf_.WriteBytes(value.data(), value.size());
}

void WalWriter::Append(int32_t table, int32_t partition, uint64_t key,
                       uint64_t tid, std::string_view value) {
  SpinLockGuard g(mu_);
  AppendLocked(table, partition, key, tid, value);
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::AppendDelete(int32_t table, int32_t partition, uint64_t key,
                             uint64_t tid) {
  SpinLockGuard g(mu_);
  buf_.Write<uint8_t>(kDeleteTag);
  buf_.Write<int32_t>(table);
  buf_.Write<int32_t>(partition);
  buf_.Write<uint64_t>(key);
  buf_.Write<uint64_t>(tid);
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::AppendCommit(uint64_t tid, const WriteSet& writes) {
  SpinLockGuard g(mu_);
  for (const auto& e : writes.entries()) {
    if (e.is_delete) {
      buf_.Write<uint8_t>(kDeleteTag);
      buf_.Write<int32_t>(e.table);
      buf_.Write<int32_t>(e.partition);
      buf_.Write<uint64_t>(e.key);
      buf_.Write<uint64_t>(tid);
    } else {
      AppendLocked(e.table, e.partition, e.key, tid, writes.ValueView(e));
    }
  }
  if (buf_.size() >= flush_bytes_) FlushLocked();
}

void WalWriter::MarkEpochAndFlush(uint64_t epoch) {
  SpinLockGuard g(mu_);
  buf_.Write<uint8_t>(kEpochTag);
  buf_.Write<uint64_t>(epoch);
  FlushLocked();
}

void WalWriter::Flush() {
  SpinLockGuard g(mu_);
  FlushLocked();
}

void WalWriter::FlushLocked() {
  if (buf_.empty() || file_ == nullptr) return;
  std::fwrite(buf_.data().data(), 1, buf_.size(), file_);
  std::fflush(file_);
  if (fsync_) {
    ::fsync(::fileno(file_));
  }
  bytes_.fetch_add(buf_.size(), std::memory_order_relaxed);
  buf_.Clear();
}

// --- Checkpointer ---

std::string Checkpointer::FinalPath() const {
  return dir_ + "/ckpt_node" + std::to_string(node_) + ".dat";
}

uint64_t Checkpointer::RunOnce() {
  // Record the epoch e_c at checkpoint start; after completion all logs
  // earlier than e_c could be truncated (we keep them: replay via the
  // Thomas rule is idempotent, and the benches measure logging cost, not
  // disk reclamation).
  uint64_t start_epoch = epoch_->load(std::memory_order_acquire);
  std::string tmp = FinalPath() + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return start_epoch;

  WriteBuffer buf;
  buf.Write<uint64_t>(start_epoch);
  std::string scratch;
  for (int t = 0; t < db_->num_tables(); ++t) {
    for (int p = 0; p < db_->num_partitions(); ++p) {
      HashTable* ht = db_->table(t, p);
      if (ht == nullptr) continue;
      scratch.resize(ht->value_size());
      ht->ForEach([&](uint64_t key, Record* rec, char* value) {
        // Consistent per-record read; the snapshot as a whole is fuzzy.
        uint64_t w = rec->ReadStable(scratch.data(), scratch.size(), value);
        if (Record::IsAbsent(w)) return;
        buf.Write<int32_t>(t);
        buf.Write<int32_t>(p);
        buf.Write<uint64_t>(key);
        buf.Write<uint64_t>(Record::TidOf(w));
        buf.WriteBytes(scratch.data(), scratch.size());
        if (buf.size() >= (1u << 20)) {
          std::fwrite(buf.data().data(), 1, buf.size(), f);
          buf.Clear();
        }
      });
    }
  }
  std::fwrite(buf.data().data(), 1, buf.size(), f);
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  std::filesystem::rename(tmp, FinalPath());
  return start_epoch;
}

void Checkpointer::StartPeriodic(double period_ms) {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, period_ms] {
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(period_ms * 1000)));
      if (!running_.load(std::memory_order_acquire)) break;
      RunOnce();
    }
  });
}

void Checkpointer::Stop() {
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  thread_.join();
}

// --- Recovery ---

namespace {

std::string ReadWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  data.resize(got);
  return data;
}

}  // namespace

RecoveryResult Recover(Database* db, const std::string& dir, int node,
                       int num_workers) {
  RecoveryResult result;

  // 1. Load the checkpoint, if any.  It may be fuzzy; the Thomas write rule
  //    during log replay corrects it.
  std::string ckpt =
      ReadWholeFile(dir + "/ckpt_node" + std::to_string(node) + ".dat");
  if (!ckpt.empty()) {
    ReadBuffer in(ckpt);
    (void)in.Read<uint64_t>();  // e_c: informational
    while (!in.Done()) {
      int32_t t = in.Read<int32_t>();
      int32_t p = in.Read<int32_t>();
      uint64_t key = in.Read<uint64_t>();
      uint64_t tid = in.Read<uint64_t>();
      std::string_view value = in.ReadBytes();
      HashTable* ht = db->table(t, p);
      if (ht == nullptr) continue;
      HashTable::Row row = ht->GetOrInsertRow(key);
      row.rec->ApplyThomas(tid, value.data(), row.size, row.value,
                           db->two_version());
      ++result.checkpoint_entries;
    }
  }

  // 2. First pass over the logs: the recoverable epoch is the largest epoch
  //    whose commit marker every worker log contains.
  std::vector<std::string> logs(num_workers);
  uint64_t committed = ~0ull;
  for (int w = 0; w < num_workers; ++w) {
    logs[w] = ReadWholeFile(WalPath(dir, node, w));
    uint64_t max_marker = 0;
    ReadBuffer in(logs[w]);
    while (!in.Done()) {
      uint8_t tag = in.Read<uint8_t>();
      if (tag == WalWriter::kEpochTag) {
        max_marker = std::max(max_marker, in.Read<uint64_t>());
      } else {
        in.Skip(4 + 4 + 8 + 8);
        if (tag == WalWriter::kWriteTag) (void)in.ReadBytes();
      }
    }
    committed = std::min(committed, max_marker);
  }
  if (committed == ~0ull) committed = 0;
  result.committed_epoch = committed;

  // 3. Replay writes with epoch <= committed under the Thomas write rule;
  //    newer entries belong to an epoch that never committed (Figure 6's
  //    "revert to epoch" behaviour falls out of skipping them).
  for (int w = 0; w < num_workers; ++w) {
    ReadBuffer in(logs[w]);
    while (!in.Done()) {
      uint8_t tag = in.Read<uint8_t>();
      if (tag == WalWriter::kEpochTag) {
        (void)in.Read<uint64_t>();
        continue;
      }
      int32_t t = in.Read<int32_t>();
      int32_t p = in.Read<int32_t>();
      uint64_t key = in.Read<uint64_t>();
      uint64_t tid = in.Read<uint64_t>();
      std::string_view value;
      if (tag == WalWriter::kWriteTag) value = in.ReadBytes();
      if (Tid::Epoch(tid) > committed) {
        ++result.log_entries_skipped;
        continue;
      }
      HashTable* ht = db->table(t, p);
      if (ht == nullptr) continue;
      HashTable::Row row = ht->GetOrInsertRow(key);
      if (tag == WalWriter::kDeleteTag) {
        row.rec->ApplyThomasDelete(tid, row.size, row.value,
                                   db->two_version());
      } else {
        row.rec->ApplyThomas(tid, value.data(), row.size, row.value,
                             db->two_version());
      }
      ++result.log_entries_replayed;
    }
  }
  return result;
}

}  // namespace star::wal
