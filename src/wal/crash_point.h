#ifndef STAR_WAL_CRASH_POINT_H_
#define STAR_WAL_CRASH_POINT_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <unistd.h>

namespace star::wal {

/// Deterministic crash injection for the durability tests.
///
/// The crash-recovery harness forks a child with STAR_CRASH_POINT set to a
/// named durability boundary; when execution reaches that boundary the
/// process dies with `_exit(2)` — no atexit handlers, no buffered-IO
/// flushing, the closest a unit test gets to yanking the power cord (the
/// kernel page cache still survives, which the torn-tail fixtures cover by
/// corrupting files explicitly).
///
/// STAR_CRASH_SKIP=N delays death until the (N+1)-th time the named point
/// is reached, so randomized iterations can kill the process at an
/// arbitrary depth into the workload rather than always on first contact.
///
/// Defined boundaries (grep for MaybeCrash to keep this list honest):
///   "pre-fsync"                     after WAL batch write, before fsync
///   "post-fsync-pre-epoch-publish"  after epoch-marker fsync, before the
///                                   durable epoch is published
///   "mid-checkpoint-delta"          checkpoint data file partially written
///   "mid-manifest-rename"           new data file durable, manifest not
///                                   yet switched
struct CrashPoint {
  const char* point;   // nullptr => disabled
  long skip;           // hits to survive before dying

  static CrashPoint FromEnv() {
    CrashPoint cp{nullptr, 0};
    const char* p = std::getenv("STAR_CRASH_POINT");
    if (p != nullptr && *p != '\0') {
      cp.point = p;
      if (const char* s = std::getenv("STAR_CRASH_SKIP")) {
        cp.skip = std::strtol(s, nullptr, 10);
      }
    }
    return cp;
  }
};

inline void MaybeCrash(const char* point) {
  static const CrashPoint cp = CrashPoint::FromEnv();
  if (cp.point == nullptr) return;
  if (std::strcmp(cp.point, point) != 0) return;
  static std::atomic<long> hits{0};
  if (hits.fetch_add(1, std::memory_order_relaxed) >= cp.skip) {
    _exit(2);
  }
}

}  // namespace star::wal

#endif  // STAR_WAL_CRASH_POINT_H_
