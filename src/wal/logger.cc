#include "wal/logger.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "wal/crash_point.h"
#include "wal/wal.h"

namespace star::wal {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// write(2) until the span is fully on its way to the page cache; short
/// writes and EINTR are routine on regular files under memory pressure.
void WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // disk full / IO error: durability degrades to best-effort,
               // and the durable epoch simply stops advancing past fsync
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

}  // namespace

std::string LoggerPool::ShardPath(const std::string& dir, int node, int inc,
                                  int shard) {
  return dir + "/wal_node" + std::to_string(node) + "_inc" +
         std::to_string(inc) + "_shard" + std::to_string(shard) + ".log";
}

std::string LoggerPool::SegmentPath(const std::string& dir, int node, int inc,
                                    int shard, int seg) {
  if (seg == 0) return ShardPath(dir, node, inc, shard);
  return dir + "/wal_node" + std::to_string(node) + "_inc" +
         std::to_string(inc) + "_shard" + std::to_string(shard) + "_seg" +
         std::to_string(seg) + ".log";
}

std::string LoggerPool::CompletePath(const std::string& dir, int node,
                                     int inc) {
  return dir + "/wal_node" + std::to_string(node) + "_inc" +
         std::to_string(inc) + ".ok";
}

int LoggerPool::ScanMaxIncarnation(const std::string& dir, int node) {
  int max_inc = 0;
  std::error_code ec;
  std::string prefix = "wal_node" + std::to_string(node) + "_inc";
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    int inc = std::atoi(name.c_str() + prefix.size());
    max_inc = std::max(max_inc, inc);
  }
  return max_inc;
}

LoggerPool::LoggerPool(LoggerPoolOptions opts) : opts_(std::move(opts)) {
  opts_.num_lanes = std::max(1, opts_.num_lanes);
  opts_.num_loggers = std::clamp(opts_.num_loggers, 1, opts_.num_lanes);

  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  incarnation_ = ScanMaxIncarnation(opts_.dir, opts_.node) + 1;

  loggers_.reserve(static_cast<size_t>(opts_.num_loggers));
  for (int l = 0; l < opts_.num_loggers; ++l) {
    auto lg = std::make_unique<Logger>();
    lg->id = l;
    lg->marked.assign(static_cast<size_t>(opts_.num_lanes), 0);
    std::string path = ShardPath(opts_.dir, opts_.node, incarnation_, l);
    lg->fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                    0644);
    loggers_.push_back(std::move(lg));
  }
  // The files must themselves survive a crash: fsync the directory once
  // after creating the incarnation's shard files (the old WalWriter never
  // did this — a crash right after creation could lose the files entirely).
  FsyncDir(opts_.dir);
  closed_.resize(static_cast<size_t>(opts_.num_loggers));

  lanes_.reserve(static_cast<size_t>(opts_.num_lanes));
  for (int i = 0; i < opts_.num_lanes; ++i) {
    loggers_[static_cast<size_t>(i % opts_.num_loggers)]->lanes.push_back(i);
    lanes_.push_back(
        std::make_unique<LogLane>(i, this, opts_.handoff_bytes));
  }

  ckpt_last_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  for (auto& lg : loggers_) {
    lg->thread = std::thread([this, raw = lg.get()] { RunLogger(*raw); });
  }
}

LoggerPool::~LoggerPool() {
  Stop();
  // Lanes dereference their current buffer in ~LogLane; destroy them before
  // implicit member destruction frees the buffer pool out from under them.
  lanes_.clear();
}

LogBuffer* LoggerPool::AcquireBuffer() {
  {
    SpinLockGuard g(free_mu_);
    if (!free_buffers_.empty()) {
      LogBuffer* b = free_buffers_.back();
      free_buffers_.pop_back();
      return b;
    }
  }
  // star-lint: allow(hot-path): freelist miss allocates only during warm-up
  auto owned = std::make_unique<LogBuffer>();
  LogBuffer* b = owned.get();
  SpinLockGuard g(free_mu_);
  // star-lint: allow(hot-path): grows only on the warm-up path above
  all_buffers_.push_back(std::move(owned));
  return b;
}

void LoggerPool::Submit(LogBuffer* buf) {
  Logger& lg =
      *loggers_[static_cast<size_t>(buf->lane % opts_.num_loggers)];
  {
    MutexLock l(lg.mu);
    lg.queue.push_back(buf);
  }
  lg.cv.NotifyOne();
}

void LoggerPool::AttachCheckpointer(Checkpointer* ckpt, double period_ms) {
  ckpt_period_ns_.store(static_cast<int64_t>(period_ms * 1e6),
                        std::memory_order_relaxed);
  ckpt_.store(ckpt, std::memory_order_release);
}

uint64_t LoggerPool::durable_epoch() const {
  uint64_t d = ~0ull;
  for (const auto& lg : loggers_) {
    d = std::min(d, lg->durable.load(std::memory_order_acquire));
  }
  return d == ~0ull ? 0 : d;
}

void LoggerPool::MarkComplete() {
  std::string path = CompletePath(opts_.dir, opts_.node, incarnation_);
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  FsyncDir(opts_.dir);
  complete_.store(true, std::memory_order_release);
}

void LoggerPool::MarkRevert(uint64_t epoch) {
  for (auto& lane : lanes_) lane->MarkRevert(epoch);
}

void LoggerPool::Drain() {
  for (auto& lane : lanes_) lane->Publish();
  for (auto& lg : loggers_) {
    for (;;) {
      {
        MutexLock l(lg->mu);
        if (lg->queue.empty() && !lg->busy) break;
      }
      lg->cv.NotifyOne();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void LoggerPool::Stop() {
  if (stopped_) return;
  stopped_ = true;
  Drain();
  for (auto& lg : loggers_) {
    {
      MutexLock l(lg->mu);
      lg->running = false;
    }
    lg->cv.NotifyAll();
    if (lg->thread.joinable()) lg->thread.join();
    if (lg->fd >= 0) {
      ::close(lg->fd);
      lg->fd = -1;
    }
  }
}

void LoggerPool::RunLogger(Logger& lg) {
#ifdef __linux__
  if (opts_.affinity) {
    unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu > 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(opts_.node * opts_.num_loggers + lg.id) %
                  ncpu,
              &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
  }
#endif
  std::vector<LogBuffer*> batch;
  for (;;) {
    bool stop;
    {
      MutexLock l(lg.mu);
      if (lg.queue.empty() && lg.running) {
        // Bounded single wait + outer-loop recheck (house CondVar pattern);
        // the timeout also paces the checkpoint cadence check below.
        lg.cv.WaitFor(l, std::chrono::milliseconds(5));
      }
      batch.swap(lg.queue);
      lg.busy = !batch.empty();
      stop = !lg.running && batch.empty();
    }
    if (!batch.empty()) {
      WriteBatch(lg, batch);
      if (opts_.segment_bytes > 0 && lg.fd >= 0 &&
          lg.seg_bytes >= opts_.segment_bytes) {
        RotateSegment(lg);
      }
      {
        MutexLock l(lg.mu);
        lg.busy = false;
      }
      {
        SpinLockGuard g(free_mu_);
        for (LogBuffer* b : batch) {
          b->Reset();
          free_buffers_.push_back(b);
        }
      }
      batch.clear();
    }
    if (lg.id == 0) MaybeCheckpoint();
    if (stop) return;
  }
}

void LoggerPool::WriteBatch(Logger& lg, std::vector<LogBuffer*>& batch) {
  size_t total = 0;
  for (LogBuffer* b : batch) total += b->data.size();
  if (total > 0 && lg.fd >= 0) {
    for (LogBuffer* b : batch) {
      if (!b->data.empty()) {
        WriteAll(lg.fd, b->data.data().data(), b->data.size());
      }
    }
    MaybeCrash("pre-fsync");
    if (opts_.fsync) {
      ::fsync(lg.fd);
      lg.fsyncs.fetch_add(1, std::memory_order_relaxed);
    }
    lg.bytes.fetch_add(total, std::memory_order_relaxed);
    lg.batches.fetch_add(1, std::memory_order_relaxed);
    lg.seg_bytes += total;
  }
  for (LogBuffer* b : batch) {
    lg.seg_max_epoch = std::max(lg.seg_max_epoch, b->max_epoch);
  }

  // Watermark bookkeeping, in publish order: a mark means "the lane is
  // complete through E and its bytes are in this very batch (or earlier)",
  // so after the write+fsync above it is safe to count; a revert drags the
  // lane's watermark back below the rolled-back epoch.
  for (LogBuffer* b : batch) {
    uint64_t& m = lg.marked[static_cast<size_t>(b->lane)];
    if (b->marked_epoch != 0) m = std::max(m, b->marked_epoch);
    if (b->revert_epoch != 0 && m >= b->revert_epoch) {
      m = b->revert_epoch - 1;
    }
  }

  uint64_t lane_min = ~0ull;
  for (int lane : lg.lanes) {
    lane_min = std::min(lane_min, lg.marked[static_cast<size_t>(lane)]);
  }
  if (lane_min == ~0ull) return;
  if (lane_min < lg.last_marker) {
    // A revert undid epochs we already marked.  The revert entries are in
    // the file (recovery honours their position); resetting last_marker
    // makes a later successful fence of the same epoch re-emit its marker.
    lg.last_marker = lane_min;
    return;
  }
  if (lane_min == lg.last_marker) return;

  WriteBuffer marker;
  AppendEpochEntry(&marker, lane_min);
  if (lg.fd >= 0) {
    WriteAll(lg.fd, marker.data().data(), marker.size());
    if (opts_.fsync) {
      ::fsync(lg.fd);
      lg.fsyncs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  lg.bytes.fetch_add(marker.size(), std::memory_order_relaxed);
  lg.markers.fetch_add(1, std::memory_order_relaxed);
  lg.seg_bytes += marker.size();
  lg.last_marker = lane_min;
  // Everything up to and including the marker is fsynced; dying here (the
  // harness's post-fsync-pre-epoch-publish point) must lose only the
  // *announcement*, never the durability — recovery re-derives the same
  // epoch from the on-disk markers.
  MaybeCrash("post-fsync-pre-epoch-publish");
  if (lane_min > lg.durable.load(std::memory_order_relaxed)) {
    lg.durable.store(lane_min, std::memory_order_release);
  }
}

void LoggerPool::RotateSegment(Logger& lg) {
  // Runs on the logger's own thread between batches, so the cut lands on an
  // entry boundary: recovery re-forms the stream by concatenating segments
  // in order.
  std::string next =
      SegmentPath(opts_.dir, opts_.node, incarnation_, lg.id,
                  lg.seg_index + 1);
  int nfd = ::open(next.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                   0644);
  if (nfd < 0) return;  // keep appending to the current segment
  // Carry-over marker: a fresh segment must re-state the shard's durability
  // watermark as its first entry, or — once older segments are deleted —
  // recovery's min-over-files scan would see a markerless file and drag the
  // incarnation's recoverable epoch to zero.
  uint64_t head_bytes = 0;
  if (lg.last_marker > 0) {
    WriteBuffer head;
    AppendEpochEntry(&head, lg.last_marker);
    WriteAll(nfd, head.data().data(), head.size());
    if (opts_.fsync) ::fsync(nfd);
    head_bytes = head.size();
    lg.bytes.fetch_add(head_bytes, std::memory_order_relaxed);
  }
  // New file (and its carry-over marker) durable before the old fd closes:
  // a crash anywhere in between leaves both segments present and recovery
  // simply concatenates them.
  FsyncDir(opts_.dir);

  if (opts_.fsync) ::fsync(lg.fd);
  ::close(lg.fd);
  {
    SpinLockGuard g(gc_mu_);
    closed_[static_cast<size_t>(lg.id)].push_back(ClosedSegment{
        SegmentPath(opts_.dir, opts_.node, incarnation_, lg.id,
                    lg.seg_index),
        lg.seg_max_epoch});
  }
  lg.fd = nfd;
  ++lg.seg_index;
  lg.seg_bytes = head_bytes;
  lg.seg_max_epoch = 0;
  rotations_.fetch_add(1, std::memory_order_relaxed);
}

void LoggerPool::Gc(uint64_t covered_epoch) {
  if (covered_epoch == 0) return;
  // An incomplete incarnation's recovery basis is still being assembled
  // (rejoin fetch in flight); nothing may be deleted under it.
  if (!complete_.load(std::memory_order_acquire)) return;

  std::vector<std::string> victims;
  bool sweep_prior = false;
  uint64_t prior = prior_committed_.load(std::memory_order_acquire);
  {
    SpinLockGuard g(gc_mu_);
    for (auto& segs : closed_) {
      // Prefix-only deletion: a stream suffix must never lose an earlier
      // segment's revert entry while keeping the pre-revert writes it
      // shadows, and the next surviving segment's carry-over marker keeps
      // the watermark scan exact.
      size_t n = 0;
      while (n < segs.size() && segs[n].max_epoch <= covered_epoch) {
        victims.push_back(std::move(segs[n].path));
        ++n;
      }
      segs.erase(segs.begin(), segs.begin() + static_cast<long>(n));
    }
    if (!prior_gc_done_ && prior != ~0ull && covered_epoch >= prior) {
      prior_gc_done_ = true;
      sweep_prior = true;
    }
  }

  std::error_code ec;
  for (const auto& path : victims) {
    if (std::filesystem::remove(path, ec)) {
      gc_deleted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (sweep_prior) {
    // The chain now durably covers everything this process recovered from
    // the old logs; recovery never replays them above that epoch, so every
    // prior incarnation (shards, segments, `.ok` markers) and every legacy
    // per-worker file is superseded in full.
    const std::string worker_prefix =
        "wal_node" + std::to_string(opts_.node) + "_worker";
    const std::string inc_prefix =
        "wal_node" + std::to_string(opts_.node) + "_inc";
    for (const auto& entry :
         std::filesystem::directory_iterator(opts_.dir, ec)) {
      std::string name = entry.path().filename().string();
      bool victim = name.rfind(worker_prefix, 0) == 0;
      if (!victim && name.rfind(inc_prefix, 0) == 0) {
        victim = std::atoi(name.c_str() + inc_prefix.size()) < incarnation_;
      }
      std::error_code rc;
      if (victim && std::filesystem::remove(entry.path(), rc)) {
        gc_deleted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void LoggerPool::MaybeCheckpoint() {
  Checkpointer* ckpt = ckpt_.load(std::memory_order_acquire);
  if (ckpt == nullptr) return;
  int64_t period = ckpt_period_ns_.load(std::memory_order_relaxed);
  if (period <= 0) return;
  int64_t now = SteadyNowNs();
  if (now - ckpt_last_ns_.load(std::memory_order_relaxed) < period) return;
  ckpt_last_ns_.store(now, std::memory_order_relaxed);
  // The chain's covered-through epoch doubles as the WAL GC horizon:
  // everything at or below it is reconstructible from checkpoints alone.
  Gc(ckpt->RunOnce());
}

}  // namespace star::wal
