#ifndef STAR_WAL_LOG_BUFFER_H_
#define STAR_WAL_LOG_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "cc/write_set.h"
#include "common/serializer.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/tid.h"
#include "wal/format.h"

namespace star::wal {

/// One in-flight log batch.  Buffers are owned by the logger pool and
/// recycled through a freelist exactly like the replication payload pool:
/// a lane fills one, hands it to its logger, and gets a recycled (already
/// grown) buffer back, so the steady-state commit path never allocates.
struct LogBuffer {
  WriteBuffer data;
  int lane = 0;
  /// Highest epoch the lane had fully written when this buffer was
  /// published (0 = no watermark).  The logger may advance its durable
  /// bookkeeping for the lane only after this buffer — and everything the
  /// lane published before it — is on disk.
  uint64_t marked_epoch = 0;
  /// Highest epoch rolled back by a failed fence while this buffer was
  /// current (0 = none).  Forces the logger's watermark for the lane back
  /// below the reverted epoch.
  uint64_t revert_epoch = 0;
  /// Highest epoch any entry (write, delete or revert) in `data` belongs
  /// to.  Segment GC may delete a closed WAL segment only once a durable
  /// checkpoint link covers every epoch written into it; this is how the
  /// logger knows that ceiling without parsing its own bytes back.
  uint64_t max_epoch = 0;

  void Reset() {
    data.Clear();
    lane = 0;
    marked_epoch = 0;
    revert_epoch = 0;
    max_epoch = 0;
  }
};

/// Where full buffers go.  Implemented by the logger pool; split out as an
/// interface so the lane layer (and its tests) need no logger threads.
class BufferSink {
 public:
  virtual ~BufferSink() = default;
  /// Returns a recycled (or fresh) buffer; never nullptr.
  virtual LogBuffer* AcquireBuffer() = 0;
  /// Takes ownership of a published buffer.
  virtual void Submit(LogBuffer* buf) = 0;
};

/// A worker-side log lane: the append API of the old WalWriter, minus the
/// file.  Commits buffer entries under a spinlock; once the buffer crosses
/// the handoff threshold (or the fence marks an epoch) it is published to
/// the dedicated logger thread, which owns write() and fsync().  This is
/// the decoupling the durable-epoch design is built on — commit latency no
/// longer contains storage latency.
class LogLane {
 public:
  LogLane(int id, BufferSink* sink, size_t handoff_bytes)
      : id_(id), sink_(sink), handoff_bytes_(handoff_bytes) {
    cur_ = sink_->AcquireBuffer();
    cur_->lane = id_;
  }

  LogLane(const LogLane&) = delete;
  LogLane& operator=(const LogLane&) = delete;

  ~LogLane() {
    // The pool drains lanes before destruction; anything still here is a
    // buffer with no published content.
    SpinLockGuard g(mu_);
    PublishLocked();
  }

  /// Buffers one committed write.
  STAR_HOT_PATH void Append(int32_t table, int32_t partition, uint64_t key,
                            uint64_t tid, std::string_view value) {
    SpinLockGuard g(mu_);
    AppendWriteEntry(&cur_->data, table, partition, key, tid, value.data(),
                     static_cast<uint32_t>(value.size()));
    cur_->max_epoch = std::max(cur_->max_epoch, Tid::Epoch(tid));
    if (cur_->data.size() >= handoff_bytes_) PublishLocked();
  }

  /// Buffers one committed delete (tombstone).
  STAR_HOT_PATH void AppendDelete(int32_t table, int32_t partition,
                                  uint64_t key, uint64_t tid) {
    SpinLockGuard g(mu_);
    AppendDeleteEntry(&cur_->data, table, partition, key, tid);
    cur_->max_epoch = std::max(cur_->max_epoch, Tid::Epoch(tid));
    if (cur_->data.size() >= handoff_bytes_) PublishLocked();
  }

  /// Buffers a committed transaction's whole write set under one latch
  /// acquisition — the per-commit fast path.
  STAR_HOT_PATH void AppendCommit(uint64_t tid, const WriteSet& writes) {
    SpinLockGuard g(mu_);
    for (const auto& e : writes.entries()) {
      if (e.is_delete) {
        AppendDeleteEntry(&cur_->data, e.table, e.partition, e.key, tid);
      } else {
        std::string_view v = writes.ValueView(e);
        AppendWriteEntry(&cur_->data, e.table, e.partition, e.key, tid,
                         v.data(), static_cast<uint32_t>(v.size()));
      }
    }
    cur_->max_epoch = std::max(cur_->max_epoch, Tid::Epoch(tid));
    if (cur_->data.size() >= handoff_bytes_) PublishLocked();
  }

  /// Fence: everything this lane will ever write for epochs <= `epoch` has
  /// been appended.  Publishes immediately (even an empty buffer — the
  /// watermark itself must reach the logger) and returns without touching
  /// the disk; the logger thread turns the watermark into an on-disk epoch
  /// marker once the batch is durable.
  void MarkEpoch(uint64_t epoch) {
    SpinLockGuard g(mu_);
    cur_->marked_epoch = std::max(cur_->marked_epoch, epoch);
    PublishLocked();
  }

  /// Failed fence: epoch `epoch` was rolled back.  Logged as a revert entry
  /// (position in the file matters: the same epoch can commit later after a
  /// successful re-fence) and published immediately.
  void MarkRevert(uint64_t epoch) {
    SpinLockGuard g(mu_);
    AppendRevertEntry(&cur_->data, epoch);
    cur_->revert_epoch = std::max(cur_->revert_epoch, epoch);
    // The revert entry is itself position-significant content of `epoch`;
    // it must pin the segment it lands in just like a write of that epoch
    // (GC deletes whole stream prefixes, so the revert can never be
    // dropped while an older pre-revert write of the epoch survives).
    cur_->max_epoch = std::max(cur_->max_epoch, epoch);
    PublishLocked();
  }

  /// Hands whatever is buffered to the logger (drain/shutdown path).
  void Publish() {
    SpinLockGuard g(mu_);
    PublishLocked();
  }

  int id() const { return id_; }

 private:
  void PublishLocked() STAR_REQUIRES(mu_) {
    if (cur_->data.empty() && cur_->marked_epoch == 0 &&
        cur_->revert_epoch == 0) {
      return;
    }
    sink_->Submit(cur_);
    cur_ = sink_->AcquireBuffer();
    cur_->lane = id_;
  }

  const int id_;
  BufferSink* const sink_;
  const size_t handoff_bytes_;
  LogBuffer* cur_ STAR_GUARDED_BY(mu_);
  /// Appends come from one worker in the common case, but fence-time marks
  /// on io/shard lanes arrive from the node control thread, and the rejoin
  /// fetch thread shares the io lane — every mutation takes this latch.
  SpinLock mu_;
};

}  // namespace star::wal

#endif  // STAR_WAL_LOG_BUFFER_H_
