#ifndef STAR_WAL_FORMAT_H_
#define STAR_WAL_FORMAT_H_

#include <cstdint>
#include <cstring>

#include <string_view>

#include "common/crc32.h"
#include "common/serializer.h"

namespace star::wal {

/// Shared on-disk record framing for WAL shard files, the legacy per-worker
/// WAL, and checkpoint data files.  Every entry is CRC-framed: the trailing
/// u32 is a CRC-32 over all preceding bytes of the entry, so recovery can
/// stop cleanly at a torn or bit-flipped tail instead of installing garbage.
///
///   write:  u8 tag=0 | i32 table | i32 partition | u64 key | u64 tid
///           | u32 len | len value bytes | u32 crc
///   epoch:  u8 tag=1 | u64 epoch | u32 crc
///   delete: u8 tag=2 | i32 table | i32 partition | u64 key | u64 tid
///           | u32 crc
///   revert: u8 tag=3 | u64 epoch | u32 crc
///
/// Epoch markers mean "every entry written to THIS file before this point
/// belongs to an epoch <= marker, and all of the writer's data for epochs
/// <= marker is in the file".  Revert markers record a failed fence: epoch
/// E was rolled back, so entries for E written before the marker must not
/// be replayed (E can legitimately reappear later, after a successful
/// re-fence — position matters, which is why it is a log entry and not
/// file metadata).
inline constexpr uint8_t kWriteTag = 0;
inline constexpr uint8_t kEpochTag = 1;
inline constexpr uint8_t kDeleteTag = 2;
inline constexpr uint8_t kRevertTag = 3;

// ---------------------------------------------------------------------------
// Append helpers.  Each appends one fully-framed entry to `out`; the CRC is
// computed over the bytes appended before it.

inline void SealEntry(WriteBuffer* out, size_t start) {
  const std::string& bytes = out->data();
  uint32_t crc = Crc32(bytes.data() + start, bytes.size() - start);
  out->Write<uint32_t>(crc);
}

inline void AppendWriteEntry(WriteBuffer* out, int32_t table,
                             int32_t partition, uint64_t key, uint64_t tid,
                             const void* value, uint32_t len) {
  size_t start = out->data().size();
  out->Write<uint8_t>(kWriteTag);
  out->Write<int32_t>(table);
  out->Write<int32_t>(partition);
  out->Write<uint64_t>(key);
  out->Write<uint64_t>(tid);
  out->Write<uint32_t>(len);
  out->WriteRaw(value, len);
  SealEntry(out, start);
}

inline void AppendDeleteEntry(WriteBuffer* out, int32_t table,
                              int32_t partition, uint64_t key, uint64_t tid) {
  size_t start = out->data().size();
  out->Write<uint8_t>(kDeleteTag);
  out->Write<int32_t>(table);
  out->Write<int32_t>(partition);
  out->Write<uint64_t>(key);
  out->Write<uint64_t>(tid);
  SealEntry(out, start);
}

inline void AppendEpochEntry(WriteBuffer* out, uint64_t epoch) {
  size_t start = out->data().size();
  out->Write<uint8_t>(kEpochTag);
  out->Write<uint64_t>(epoch);
  SealEntry(out, start);
}

inline void AppendRevertEntry(WriteBuffer* out, uint64_t epoch) {
  size_t start = out->data().size();
  out->Write<uint8_t>(kRevertTag);
  out->Write<uint64_t>(epoch);
  SealEntry(out, start);
}

// ---------------------------------------------------------------------------
// Cursor.  Bounds- and CRC-checked iteration over a byte span; unlike
// ReadBuffer (whose checks are debug asserts) every read here is validated
// in release builds, because log tails after a crash are expected to be
// garbage and must be rejected, not trusted.

struct LogEntry {
  uint8_t tag = 0;
  int32_t table = 0;
  int32_t partition = 0;
  uint64_t key = 0;
  uint64_t tid = 0;
  uint64_t epoch = 0;            // kEpochTag / kRevertTag
  std::string_view value;        // kWriteTag
};

class LogCursor {
 public:
  explicit LogCursor(std::string_view data) : data_(data) {}

  /// Advances to the next entry.  Returns false at end of data or at the
  /// first torn/corrupt entry; `valid_bytes()` then marks the durable
  /// prefix and `torn()` distinguishes the two outcomes.
  bool Next(LogEntry* e) {
    size_t pos = pos_;
    uint8_t tag;
    if (!Read(&pos, &tag)) return Stop();
    e->tag = tag;
    switch (tag) {
      case kWriteTag: {
        uint32_t len;
        if (!Read(&pos, &e->table) || !Read(&pos, &e->partition) ||
            !Read(&pos, &e->key) || !Read(&pos, &e->tid) ||
            !Read(&pos, &len)) {
          return Stop();
        }
        if (len > data_.size() - pos) return Stop();
        e->value = data_.substr(pos, len);
        pos += len;
        break;
      }
      case kDeleteTag:
        if (!Read(&pos, &e->table) || !Read(&pos, &e->partition) ||
            !Read(&pos, &e->key) || !Read(&pos, &e->tid)) {
          return Stop();
        }
        break;
      case kEpochTag:
      case kRevertTag:
        if (!Read(&pos, &e->epoch)) return Stop();
        break;
      default:
        return Stop();
    }
    uint32_t stored;
    if (!Read(&pos, &stored)) return Stop();
    uint32_t actual = Crc32(data_.data() + pos_, pos - sizeof(uint32_t) - pos_);
    if (stored != actual) return Stop();
    pos_ = pos;
    ++index_;
    return true;
  }

  /// Byte length of the valid prefix (end of the last good entry).
  size_t valid_bytes() const { return pos_; }
  /// Number of entries successfully decoded so far.
  uint64_t index() const { return index_; }
  /// True once iteration stopped before consuming all input — a torn or
  /// corrupt tail (false while entries remain or after a clean end).
  bool torn() const { return stopped_ && pos_ != data_.size(); }

 private:
  template <typename T>
  bool Read(size_t* pos, T* out) {
    if (data_.size() - *pos < sizeof(T)) return false;
    std::memcpy(out, data_.data() + *pos, sizeof(T));
    *pos += sizeof(T);
    return true;
  }

  bool Stop() {
    stopped_ = true;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  uint64_t index_ = 0;
  bool stopped_ = false;
};

}  // namespace star::wal

#endif  // STAR_WAL_FORMAT_H_
