#ifndef STAR_BASELINES_PB_OCC_H_
#define STAR_BASELINES_PB_OCC_H_

#include "baselines/cluster_engine.h"

namespace star {

/// PB. OCC (Section 7.1.2): "a variant of Silo's OCC protocol adapted for a
/// primary/backup setting.  The primary node runs all transactions and
/// replicates the writes to the backup node.  Only two nodes are used."
///
/// A non-partitioned system: any worker on the primary may touch any
/// partition, so cross-partition transactions cost the same as
/// single-partition ones — flat curves in Figure 11.
///
/// Replication modes (Figure 9):
///  * async: ship writes after commit; epoch-based group commit.
///  * sync: hold write locks across the replication round trip.
class PbOccEngine final : public ClusterEngine {
 public:
  PbOccEngine(const BaselineOptions& options, const Workload& workload)
      : ClusterEngine(Fix(options), workload,
                      Placement::AllOnPrimary(2, Fix(options).num_partitions(),
                                              /*replicas=*/2)) {}

 protected:
  void RunOne(Node& node, WorkerState& w, SiloContext& ctx) override {
    if (node.id != 0) {
      // Backup: the io thread applies the primary's stream.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return;
    }
    bool cross = options_.cross_fraction > 0 &&
                 w.rng.Flip(options_.cross_fraction);
    int home = static_cast<int>(w.rng.Uniform(num_partitions_));
    TxnRequest req =
        cross ? workload_.MakeCrossPartition(w.rng, home, num_partitions_)
              : workload_.MakeSinglePartition(w.rng, home, num_partitions_);
    uint64_t start = NowNanos();
    for (;;) {
      ctx.Reset();
      TxnStatus status = req.proc(ctx);
      if (status == TxnStatus::kAbortUser) {
        w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      CommitResult cr;
      if (status != TxnStatus::kCommitted) {
        cr.status = TxnStatus::kAbortConflict;
      } else if (options_.sync_replication) {
        // Locks stay held while the backup acknowledges (high write
        // latency, low commit latency — Figure 9).
        cr = SiloOccCommit(ctx, w.gen, epoch_mgr_.counter(),
                           [&](uint64_t tid, WriteSet& ws) {
                             return ReplicateSyncAndWait(node, w, tid, ws);
                           });
      } else {
        cr = SiloOccCommit(ctx, w.gen, epoch_mgr_.counter());
      }
      if (cr.status == TxnStatus::kCommitted) {
        if (!options_.sync_replication) {
          ReplicateAsync(w, node.id, cr.tid, ctx.write_set());
        }
        FinishCommit(w, cr.tid, start, cross, &ctx.write_set());
        return;
      }
      w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
      if (!running_.load(std::memory_order_acquire)) return;
    }
  }

 private:
  static BaselineOptions Fix(BaselineOptions o) {
    o.num_nodes = 2;  // primary + backup, as in the paper
    return o;
  }
};

}  // namespace star

#endif  // STAR_BASELINES_PB_OCC_H_
