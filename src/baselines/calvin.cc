#include "baselines/calvin.h"

#include <algorithm>
#include <cassert>

namespace star {

namespace {

BaselineOptions CalvinBase(CalvinOptions o) {
  // One replica group: each partition lives on exactly one node.
  o.base.replicas = 1;
  return o.base;
}

}  // namespace

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

/// Execution context on one participant: local reads come from the node's
/// partitions (locks already granted), remote reads from the forwarded
/// values, writes apply only to local partitions.
class CalvinContext final : public TxnContext {
 public:
  CalvinContext(CalvinEngine* engine, CalvinEngine::Node* node,
                CalvinEngine::NodeState* ns, CalvinEngine::NodeTxn* txn,
                Rng* rng, const Workload* workload, Placement* placement,
                uint64_t wait_ns, WriteSet* scratch)
      : engine_(engine),
        node_(node),
        ns_(ns),
        txn_(txn),
        rng_(rng),
        workload_(workload),
        placement_(placement),
        wait_ns_(wait_ns),
        ws_(scratch) {
    ws_->Clear();
  }

  bool timed_out() const { return timed_out_; }
  WriteSet& writes() { return *ws_; }

  bool Read(int t, int p, uint64_t key, void* out) override {
    if (WriteSetEntry* ws = ws_->Find(t, p, key)) {
      std::memcpy(out, ws_->ValuePtr(*ws), ws->value_len);
      return true;
    }
    int owner = placement_->master(p);
    if (owner != node_->id && workload_->IsReadOnlyTable(t)) {
      // Identical catalogue content in every partition: serve locally.
      p = node_->primaries.front();
      owner = node_->id;
    }
    if (owner == node_->id) {
      HashTable* ht = node_->db->table(t, p);
      HashTable::Row row = ht->GetRow(key);
      if (!row.valid()) return false;
      uint64_t word = row.ReadStable(out);
      return !Record::IsAbsent(word);
    }
    // Remote: wait for the owner's forward (sent when its locks were
    // granted).  Bounded wait; on timeout the executor requeues the txn.
    uint64_t tkey = CalvinEngine::TxnKey(txn_->batch, txn_->index);
    CalvinEngine::ForwardBox* box = engine_->GetForwardBox(*ns_, tkey);
    uint64_t deadline = NowNanos() + wait_ns_;
    int spins = 0;
    for (;;) {
      {
        SpinLockGuard g(box->mu);
        auto it = box->values.find({t, p, key});
        if (it != box->values.end()) {
          std::memcpy(out, it->second.data(), it->second.size());
          return true;
        }
      }
      if (NowNanos() > deadline) {
        timed_out_ = true;
        return false;
      }
      // Never busy-spin here: the io thread that delivers the forward needs
      // the core (small-host substitution, DESIGN.md Section 2).
      if (++spins < 32) {
        CpuRelax();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  }

  void Write(int t, int p, uint64_t key, const void* value) override {
    uint32_t size = node_->db->schema(t).value_size;
    if (WriteSetEntry* ws = ws_->Find(t, p, key)) {
      ws_->AssignValue(*ws, value, size);
      return;
    }
    WriteSetEntry& e = ws_->Add(t, p, key);
    ws_->AssignValue(e, value, size);
  }

  void ApplyOperation(int t, int p, uint64_t key,
                      const Operation& op) override {
    if (WriteSetEntry* ws = ws_->Find(t, p, key)) {
      op.ApplyTo(ws_->ValuePtr(*ws));
      return;
    }
    // Seed from the current version *before* the entry becomes visible to
    // Read's own-write check (the read may come from a remote forward).
    uint32_t size = node_->db->schema(t).value_size;
    uint32_t off = ws_->arena().Alloc(size);
    if (!Read(t, p, key, ws_->arena().ptr(off))) {
      // Timed out or missing; leave a marker so the executor requeues.
      timed_out_ = true;
      return;
    }
    WriteSetEntry& e = ws_->Add(t, p, key);
    e.value_off = off;
    e.value_len = size;
    op.ApplyTo(ws_->ValuePtr(e));
  }

  void Insert(int t, int p, uint64_t key, const void* value) override {
    Write(t, p, key, value);
    ws_->entries().back().is_insert = true;
  }

  Rng& rng() override { return *rng_; }

 private:
  CalvinEngine* engine_;
  CalvinEngine::Node* node_;
  CalvinEngine::NodeState* ns_;
  CalvinEngine::NodeTxn* txn_;
  Rng* rng_;
  const Workload* workload_;
  Placement* placement_;
  uint64_t wait_ns_;
  WriteSet* ws_;
  bool timed_out_ = false;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

CalvinEngine::CalvinEngine(const CalvinOptions& options,
                           const Workload& workload)
    : ClusterEngine(CalvinBase(options), workload,
                    Placement::PrimaryBackup(options.base.num_nodes,
                                             CalvinBase(options)
                                                 .num_partitions(),
                                             /*replicas=*/1),
                    /*extra_endpoints=*/1),
      copts_(options) {
  assert(copts_.lock_managers >= 1 &&
         copts_.lock_managers < options_.workers_per_node);
  sequencer_ = std::make_unique<net::Endpoint>(transport_.get(), num_nodes_, 1);
  sequencer_->RegisterHandler(
      net::MsgType::kCalvinBatchAck, [this](net::Message&& m) {
        uint64_t batch = ReadBuffer(m.payload).Read<uint64_t>();
        bool done = false;
        {
          SpinLockGuard g(acks_mu_);
          if (++ack_counts_[batch] == num_nodes_) {
            ack_counts_.erase(batch);
            done = true;
          }
        }
        if (done) {
          {
            SpinLockGuard g(batches_mu_);
            batches_.erase(batch);
          }
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
      });

  for (int i = 0; i < num_nodes_; ++i) {
    auto ns = std::make_unique<NodeState>();
    for (int s = 0; s < copts_.lock_managers; ++s) {
      ns->shards.push_back(std::make_unique<LmShard>());
    }
    Node* n = nodes_[i].get();
    NodeState* nsp = ns.get();
    n->endpoint->RegisterHandler(
        net::MsgType::kCalvinBatch, [this, nsp](net::Message&& m) {
          ReadBuffer in(m.payload);
          uint64_t batch_id = in.Read<uint64_t>();
          {
            SpinLockGuard g(nsp->batch_mu);
            nsp->pending_batches.push_back(batch_id);
          }
        });
    n->endpoint->RegisterHandler(
        net::MsgType::kCalvinForward, [this, nsp](net::Message&& m) {
          ReadBuffer in(m.payload);
          uint64_t batch = in.Read<uint64_t>();
          uint32_t index = in.Read<uint32_t>();
          uint16_t count = in.Read<uint16_t>();
          ForwardBox* box = GetForwardBox(*nsp, TxnKey(batch, index));
          for (uint16_t i2 = 0; i2 < count; ++i2) {
            int32_t t = in.Read<int32_t>();
            int32_t p = in.Read<int32_t>();
            uint64_t key = in.Read<uint64_t>();
            std::string_view value = in.ReadBytes();
            SpinLockGuard g(box->mu);
            box->values[{t, p, key}] = std::string(value);
          }
        });
    cstate_.push_back(std::move(ns));
  }
}

CalvinEngine::~CalvinEngine() {
  if (running_.load(std::memory_order_acquire)) Stop();
}

CalvinEngine::ForwardBox* CalvinEngine::GetForwardBox(NodeState& ns,
                                                      uint64_t key) {
  SpinLockGuard g(ns.fwd_mu);
  auto& slot = ns.forwards[key];
  if (slot == nullptr) slot = std::make_unique<ForwardBox>();
  return slot.get();
}

void CalvinEngine::OnStart() {
  sequencer_->Start();
  sequencer_thread_ = std::thread([this] { SequencerLoop(); });
}

void CalvinEngine::OnStopBegin() {
  running_.store(false, std::memory_order_release);
  if (sequencer_thread_.joinable()) sequencer_thread_.join();
  sequencer_->Stop();
}

void CalvinEngine::SequencerLoop() {
  Rng rng(options_.seed * 31337ull);
  uint64_t batch_id = 1;
  while (running_.load(std::memory_order_acquire)) {
    auto batch = std::make_shared<Batch>();
    batch->id = batch_id;
    batch->txns.reserve(copts_.batch_size);
    size_t wire_bytes = 16;
    for (int i = 0; i < copts_.batch_size; ++i) {
      int home = static_cast<int>(rng.Uniform(num_partitions_));
      bool cross = options_.cross_fraction > 0 &&
                   rng.Flip(options_.cross_fraction);
      TxnRequest req =
          cross ? workload_.MakeCrossPartition(rng, home, num_partitions_)
                : workload_.MakeSinglePartition(rng, home, num_partitions_);
      wire_bytes += 64 + 17 * req.accesses.size();  // params + access list
      batch->txns.push_back(std::move(req));
    }
    batch->dispatch_ns = NowNanos();
    {
      SpinLockGuard g(batches_mu_);
      batches_[batch_id] = batch;
    }
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    // Dispatch: the payload carries the batch id plus padding that models
    // the serialized inputs (the actual requests travel in process).
    for (int i = 0; i < num_nodes_; ++i) {
      WriteBuffer b;
      b.Write<uint64_t>(batch_id);
      std::string pad(wire_bytes / num_nodes_, '\0');
      b.WriteRaw(pad.data(), pad.size());
      sequencer_->Send(i, net::MsgType::kCalvinBatch, b.Release());
    }
    // Flow control: keep up to pipeline_batches in flight.
    while (inflight_.load(std::memory_order_acquire) >=
               copts_.pipeline_batches &&
           running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++batch_id;
  }
}

void CalvinEngine::ScheduleBatch(Node& node, uint64_t batch_id) {
  NodeState& ns = *cstate_[node.id];
  std::shared_ptr<Batch> batch;
  {
    SpinLockGuard g(batches_mu_);
    auto it = batches_.find(batch_id);
    if (it == batches_.end()) return;
    batch = it->second;
  }

  // Build this node's transaction instances and count participants.
  std::vector<NodeTxn*> mine;
  int local_count = 0;
  for (uint32_t i = 0; i < batch->txns.size(); ++i) {
    const TxnRequest& req = batch->txns[i];
    std::vector<AccessDesc> local;
    // The home node always participates (it applies the inserts and owns
    // the result), even when none of the declared accesses land on it.
    std::vector<int> participants{placement_.master(req.home_partition)};
    for (const auto& a : req.accesses) {
      int owner = placement_.master(a.partition);
      bool seen = false;
      for (int pn : participants) seen |= pn == owner;
      if (!seen) participants.push_back(owner);
      if (owner != node.id) continue;
      // Dedup (strongest mode wins) to avoid self-conflicts in the FIFO
      // lock queues.
      bool merged = false;
      for (auto& l : local) {
        if (l.key == a.key && l.table == a.table &&
            l.partition == a.partition) {
          l.write |= a.write;
          merged = true;
          break;
        }
      }
      if (!merged) local.push_back(a);
    }
    bool participant = !local.empty() ||
                       placement_.master(req.home_partition) == node.id;
    if (!participant) continue;
    auto txn = std::make_unique<NodeTxn>();
    txn->req = &batch->txns[i];
    txn->batch = batch_id;
    txn->index = i;
    txn->dispatch_ns = batch->dispatch_ns;
    txn->local_locks = std::move(local);
    txn->participants = std::move(participants);
    txn->pending_locks.store(static_cast<int>(txn->local_locks.size()),
                             std::memory_order_release);
    NodeTxn* raw = txn.get();
    {
      SpinLockGuard g(ns.txns_mu);
      ns.txns[TxnKey(batch_id, i)] = std::move(txn);
    }
    mine.push_back(raw);
    ++local_count;
    diag_scheduled_.fetch_add(1, std::memory_order_relaxed);
  }
  if (local_count == 0) {
    WriteBuffer ack;
    ack.Write<uint64_t>(batch_id);
    node.endpoint->Send(num_nodes_, net::MsgType::kCalvinBatchAck,
                        ack.Release());
    return;
  }
  {
    // Retain the batch until this node finishes it (requests are referenced
    // by the NodeTxn instances).
    SpinLockGuard g(ns.prog_mu);
    ns.outstanding[batch_id] = local_count;
    ns.held_batches[batch_id] = batch;
  }

  // Deterministic lock acquisition in batch order.  Each shard owns a
  // disjoint slice of the lock space, so processing per shard in order is
  // equivalent to the single-threaded scan (the paper's multi-threaded
  // lock manager).
  for (NodeTxn* txn : mine) {
    if (txn->local_locks.empty()) {
      MarkReady(node, txn);
      continue;
    }
    for (const auto& a : txn->local_locks) {
      int shard_idx = static_cast<int>(SlotKey(a) % ns.shards.size());
      LmShard& shard = *ns.shards[shard_idx];
      SpinLockGuard g(shard.mu);
      GrantOrQueue(node, shard, txn, a);
    }
  }
}

void CalvinEngine::GrantOrQueue(Node& node, LmShard& shard, NodeTxn* txn,
                                const AccessDesc& a) {
  LockSlot& slot = shard.slots[SlotKey(a)];
  bool grantable;
  if (a.write) {
    grantable = slot.readers == 0 && !slot.writer && slot.waiters.empty();
  } else {
    grantable = !slot.writer && slot.waiters.empty();
  }
  if (grantable) {
    if (a.write) {
      slot.writer = true;
    } else {
      ++slot.readers;
    }
    if (txn->pending_locks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MarkReady(node, txn);
    }
  } else {
    slot.waiters.emplace_back(txn, a.write);
  }
}

void CalvinEngine::MarkReady(Node& node, NodeTxn* txn) {
  NodeState& ns = *cstate_[node.id];
  // Forward local reads as soon as the locks are granted: executors on
  // other participants then never wait on a remote *worker*, only on lock
  // progress, which keeps the deterministic schedule deadlock-free.
  SendForwards(node, txn);
  diag_ready_.fetch_add(1, std::memory_order_relaxed);
  SpinLockGuard g(ns.ready_mu);
  ns.ready[TxnKey(txn->batch, txn->index)] = txn;
}

void CalvinEngine::SendForwards(Node& node, NodeTxn* txn) {
  if (txn->forwards_sent || txn->participants.size() <= 1) {
    txn->forwards_sent = true;
    return;
  }
  txn->forwards_sent = true;
  diag_forwards_sent_.fetch_add(1, std::memory_order_relaxed);
  WriteBuffer body;
  uint16_t count = 0;
  std::string scratch;
  for (const auto& a : txn->req->accesses) {
    if (placement_.master(a.partition) != node.id) continue;
    HashTable* ht = node.db->table(a.table, a.partition);
    HashTable::Row row = ht->GetRow(a.key);
    if (!row.valid()) continue;
    scratch.resize(row.size);
    uint64_t w = row.ReadStable(scratch.data());
    if (Record::IsAbsent(w)) continue;
    body.Write<int32_t>(a.table);
    body.Write<int32_t>(a.partition);
    body.Write<uint64_t>(a.key);
    body.WriteString(scratch);
    ++count;
  }
  if (count == 0) return;
  for (int pn : txn->participants) {
    if (pn == node.id) continue;
    WriteBuffer msg;
    msg.Write<uint64_t>(txn->batch);
    msg.Write<uint32_t>(txn->index);
    msg.Write<uint16_t>(count);
    msg.WriteRaw(body.data().data(), body.size());
    node.endpoint->Send(pn, net::MsgType::kCalvinForward, msg.Release());
  }
}

void CalvinEngine::WorkerLoop(Node& node, int worker_index) {
  if (worker_index < copts_.lock_managers) {
    LmLoop(node, worker_index);
  } else {
    ExecLoop(node, *node.workers[worker_index]);
  }
}

void CalvinEngine::LmLoop(Node& node, int lm_index) {
  NodeState& ns = *cstate_[node.id];
  while (running_.load(std::memory_order_acquire)) {
    // Lock-manager thread 0 also schedules arriving batches (the scan is
    // sharded internally, so one scheduler keeps the order deterministic).
    bool did_work = false;
    if (lm_index == 0) {
      uint64_t batch_id = 0;
      {
        SpinLockGuard g(ns.batch_mu);
        if (!ns.pending_batches.empty()) {
          batch_id = ns.pending_batches.front();
          ns.pending_batches.pop_front();
        }
      }
      if (batch_id != 0) {
        ScheduleBatch(node, batch_id);
        did_work = true;
      }
    }
    // Drain lock releases and grant waiters in FIFO order.
    LmShard& shard = *ns.shards[lm_index];
    std::deque<std::pair<uint64_t, bool>> releases;
    {
      SpinLockGuard g(shard.mu);
      releases.swap(shard.releases);
      for (auto& [slot_key, was_write] : releases) {
        LockSlot& slot = shard.slots[slot_key];
        if (was_write) {
          slot.writer = false;
        } else {
          --slot.readers;
        }
        while (!slot.waiters.empty()) {
          auto [txn, write] = slot.waiters.front();
          if (write) {
            if (slot.readers != 0 || slot.writer) break;
            slot.writer = true;
          } else {
            if (slot.writer) break;
            ++slot.readers;
          }
          slot.waiters.pop_front();
          if (txn->pending_locks.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            MarkReady(node, txn);
          }
        }
      }
    }
    if (!did_work && releases.empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void CalvinEngine::ExecLoop(Node& node, WorkerState& w) {
  NodeState& ns = *cstate_[node.id];
  while (running_.load(std::memory_order_acquire)) {
    NodeTxn* txn = nullptr;
    {
      // Oldest runnable first; transactions waiting for forwards are parked
      // behind their retry deadline so they cannot monopolise the executor.
      uint64_t now = NowNanos();
      SpinLockGuard g(ns.ready_mu);
      for (auto it = ns.ready.begin(); it != ns.ready.end(); ++it) {
        if (it->second->retry_at_ns <= now) {
          txn = it->second;
          ns.ready.erase(it);
          break;
        }
      }
    }
    if (txn == nullptr) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    diag_pops_.fetch_add(1, std::memory_order_relaxed);
    ExecuteTxn(node, w, txn);
  }
}

void CalvinEngine::ExecuteTxn(Node& node, WorkerState& w, NodeTxn* txn) {
  NodeState& ns = *cstate_[node.id];
  diag_exec_enter_.fetch_add(1, std::memory_order_relaxed);
  CalvinContext ctx(this, &node, &ns, txn, &w.rng, &workload_, &placement_,
                    static_cast<uint64_t>(copts_.forward_wait_us * 1000),
                    &w.write_scratch);
  TxnStatus status = txn->req->proc(ctx);
  if (ctx.timed_out()) {
    // Forwards not here yet: park briefly and let the executor pick other
    // work.
    diag_requeues_.fetch_add(1, std::memory_order_relaxed);
    txn->retry_at_ns = NowNanos() + 500'000;
    SpinLockGuard g(ns.ready_mu);
    ns.ready[TxnKey(txn->batch, txn->index)] = txn;
    return;
  }
  diag_executed_.fetch_add(1, std::memory_order_relaxed);

  bool is_home = placement_.master(txn->req->home_partition) == node.id;
  if (status == TxnStatus::kCommitted) {
    // Deterministic TID: every replica group would install identical state.
    uint64_t tid = Tid::Make(txn->batch & Tid::kEpochMask, txn->index, 0);
    WriteSet& writes = ctx.writes();
    for (auto& ws : writes.entries()) {
      if (placement_.master(ws.partition) != node.id) continue;
      HashTable* ht = node.db->table(ws.table, ws.partition);
      HashTable::Row row =
          ws.is_insert ? ht->GetOrInsertRow(ws.key) : ht->GetRow(ws.key);
      row.rec->LockSpin();
      row.rec->Store(tid, writes.ValuePtr(ws), ws.value_len, row.value,
                     false);
      row.rec->UnlockWithTid(tid);
    }
    if (is_home) {
      w.stats.committed.fetch_add(1, std::memory_order_relaxed);
      (txn->req->cross_partition ? w.stats.cross_partition
                                 : w.stats.single_partition)
          .fetch_add(1, std::memory_order_relaxed);
      w.stats.MaybeResetLatency();
      w.stats.latency.Record(NowNanos() - txn->dispatch_ns);
    }
  } else if (is_home) {
    w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
  }

  // Release local locks via the owning shards.
  for (const auto& a : txn->local_locks) {
    int shard_idx = static_cast<int>(SlotKey(a) % ns.shards.size());
    LmShard& shard = *ns.shards[shard_idx];
    SpinLockGuard g(shard.mu);
    shard.releases.emplace_back(SlotKey(a), a.write);
  }

  // Retire the transaction instance and its forward box.
  uint64_t batch_of_txn = txn->batch;
  uint64_t tkey = TxnKey(txn->batch, txn->index);
  {
    SpinLockGuard g(ns.fwd_mu);
    ns.forwards.erase(tkey);
  }
  {
    SpinLockGuard g(ns.txns_mu);
    ns.txns.erase(tkey);
  }
  bool batch_done = false;
  {
    SpinLockGuard g(ns.prog_mu);
    if (--ns.outstanding[batch_of_txn] == 0) {
      ns.outstanding.erase(batch_of_txn);
      ns.held_batches.erase(batch_of_txn);
      batch_done = true;
    }
  }
  if (batch_done) {
    WriteBuffer ack;
    ack.Write<uint64_t>(batch_of_txn);
    node.endpoint->Send(num_nodes_, net::MsgType::kCalvinBatchAck,
                        ack.Release());
  }
}

void CalvinEngine::RunOne(Node&, WorkerState&, SiloContext&) {
  // Unused: Calvin overrides WorkerLoop entirely.
}

}  // namespace star
