#ifndef STAR_BASELINES_DIST_ENGINE_H_
#define STAR_BASELINES_DIST_ENGINE_H_

#include <unordered_map>

#include "baselines/cluster_engine.h"
#include "cc/lock_table.h"

namespace star {

/// Concurrency-control discipline of the distributed engine.
enum class DistCc : uint8_t {
  kOcc,   // Dist. OCC: optimistic execution, lock/validate/install rounds
  kS2pl,  // Dist. S2PL: NO_WAIT strict two-phase locking during execution
};

/// The partitioning-based baselines of Section 7.1.2.  Each transaction
/// executes at the node that generated it; reads and writes on partitions
/// mastered elsewhere turn into RPC round trips against the owner, and with
/// synchronous replication commits add two-phase-commit rounds — precisely
/// the costs Figure 11 charges against these systems.
///
///  * Dist. OCC: "a transaction reads from the database and maintains a
///    local write set in the execution phase.  The transaction first
///    acquires all write locks and next validates all reads.  Finally, it
///    applies the writes to the database and releases the write locks."
///  * Dist. S2PL: "a transaction acquires read and write locks during
///    execution [NO_WAIT on conflict].  The transaction next executes to
///    compute the value of each write.  Finally, it applies the writes and
///    releases all acquired locks."
class DistEngine : public ClusterEngine {
 public:
  DistEngine(const BaselineOptions& options, const Workload& workload,
             DistCc cc);

  DistCc cc() const { return cc_; }

 protected:
  void RunOne(Node& node, WorkerState& w, SiloContext& ctx) override;

 private:
  friend class DistContext;

  /// Per-node striped lock table for the S2PL discipline.
  std::vector<std::unique_ptr<LockTable>> lock_tables_;
  DistCc cc_;

  /// One persistent DistContext per worker (indexed node * workers + index):
  /// write-set arenas, read sets, and RPC scratch keep their capacity across
  /// transactions, so the coordinator-side hot path stops allocating once
  /// warmed up.  Stored through the TxnContext interface to keep the
  /// concrete class local to the .cc file.
  std::vector<std::unique_ptr<TxnContext>> worker_ctxs_;

  void RegisterHandlers(Node& node);

  // io-thread handlers (run on the owner node).
  void HandleRead(Node& node, net::Message&& m);
  void HandleLock(Node& node, net::Message&& m);
  void HandleValidate(Node& node, net::Message&& m);
  void HandleInstall(Node& node, net::Message&& m);
  void HandleUnlock(Node& node, net::Message&& m);
  void HandlePrepare(Node& node, net::Message&& m);
};

/// Convenience aliases matching the paper's names.
class DistOccEngine final : public DistEngine {
 public:
  DistOccEngine(const BaselineOptions& o, const Workload& w)
      : DistEngine(o, w, DistCc::kOcc) {}
};

class DistS2plEngine final : public DistEngine {
 public:
  DistS2plEngine(const BaselineOptions& o, const Workload& w)
      : DistEngine(o, w, DistCc::kS2pl) {}
};

}  // namespace star

#endif  // STAR_BASELINES_DIST_ENGINE_H_
