#include "baselines/dist_engine.h"

#include <algorithm>
#include <cassert>

namespace star {

namespace {

/// Lock-table namespace id combining table and partition (a node masters
/// several partitions; locks must not alias across them).
int LockNs(int table, int partition) { return table * 1000003 + partition; }

struct RemoteLock {
  int32_t table;
  int32_t partition;
  uint64_t key;
  bool write;
};

}  // namespace

// ---------------------------------------------------------------------------
// Transaction context
// ---------------------------------------------------------------------------

/// Execution context for one distributed transaction attempt.  Lives on the
/// coordinator (the worker's node); remote operations are RPCs against
/// partition owners.
class DistContext final : public TxnContext {
 public:
  DistContext(DistEngine* engine, DistEngine::Node* node,
              DistEngine::WorkerState* w, Placement* placement,
              LockTable* local_locks, DistCc cc, double rpc_timeout_ms)
      : engine_(engine),
        node_(node),
        w_(w),
        placement_(placement),
        lt_(local_locks),
        cc_(cc),
        timeout_ns_(MillisToNanos(rpc_timeout_ms)) {}

  void Begin(const TxnRequest* req) {
    req_ = req;
    ws_.Clear();
    reads_.clear();
    cache_.clear();
    held_local_.clear();
    held_remote_.clear();
    scans_.Clear();
    remote_lock_words_ = 0;
  }

  // --- TxnContext ---

  bool Read(int t, int p, uint64_t key, void* out) override {
    if (WriteSetEntry* ws = ws_.Find(t, p, key)) {
      if (ws->is_delete) return false;  // own delete: the row reads absent
      std::memcpy(out, ws_.ValuePtr(*ws), ws->value_len);
      return true;
    }
    int owner = placement_->master(p);
    uint32_t size = 0;
    if (cc_ == DistCc::kS2pl) {
      // NO_WAIT lock acquired up front; re-reads of a held key hit the
      // cache.
      if (const CacheEntry* v = FindCache(t, p, key)) {
        std::memcpy(out, ws_.arena().ptr(v->off), v->len);
        return true;
      }
      bool want_write = DeclaredWrite(t, p, key);
      if (owner == node_->id) {
        if (want_write ? !lt_->TryWriteLock(LockNs(t, p), key)
                       : !lt_->TryReadLock(LockNs(t, p), key)) {
          return false;
        }
        held_local_.push_back({t, p, key, want_write});
        HashTable* ht = node_->db->table(t, p);
        HashTable::Row row = ht->GetRow(key);
        if (!row.valid()) return false;
        size = row.size;
        uint64_t word = row.ReadStable(out);
        if (Record::IsAbsent(word)) return false;
        reads_.push_back({t, p, key, word, false, row, false});
      } else {
        WriteBuffer b;
        b.Write<uint8_t>(want_write ? 2 : 1);
        b.Write<uint16_t>(1);
        b.Write<int32_t>(t);
        b.Write<int32_t>(p);
        b.Write<uint64_t>(key);
        std::string resp;
        if (!node_->endpoint->Call(owner, net::MsgType::kLockRequest,
                                   b.Release(), &resp, timeout_ns_)) {
          return false;
        }
        ReadBuffer in(resp);
        if (in.Read<uint8_t>() == 0) return false;
        uint64_t word = in.Read<uint64_t>();
        std::string_view value = in.ReadBytes();
        size = static_cast<uint32_t>(value.size());
        std::memcpy(out, value.data(), value.size());
        held_remote_.push_back({t, p, key, want_write});
        reads_.push_back({t, p, key, word, true, {}, false});
        remote_lock_words_ = std::max(remote_lock_words_, word);
      }
    } else {  // OCC: optimistic reads, no locks
      if (owner == node_->id) {
        HashTable* ht = node_->db->table(t, p);
        HashTable::Row row = ht->GetRow(key);
        if (!row.valid()) return false;
        size = row.size;
        uint64_t word = row.ReadStable(out);
        if (Record::IsAbsent(word)) return false;
        reads_.push_back({t, p, key, word, false, row, false});
      } else {
        WriteBuffer b;
        b.Write<int32_t>(t);
        b.Write<int32_t>(p);
        b.Write<uint64_t>(key);
        std::string resp;
        if (!node_->endpoint->Call(owner, net::MsgType::kReadRequest,
                                   b.Release(), &resp, timeout_ns_)) {
          return false;
        }
        ReadBuffer in(resp);
        if (in.Read<uint8_t>() == 0) return false;
        uint64_t word = in.Read<uint64_t>();
        std::string_view value = in.ReadBytes();
        size = static_cast<uint32_t>(value.size());
        std::memcpy(out, value.data(), value.size());
        reads_.push_back({t, p, key, word, true, {}, false});
      }
    }
    // Read cache: value bytes live in the write set's arena (rewound at
    // Begin), so caching never allocates in steady state.
    CacheEntry c{t, p, key, ws_.arena().Alloc(size), size};
    std::memcpy(ws_.arena().ptr(c.off), out, size);
    cache_.push_back(c);
    return true;
  }

  void Write(int t, int p, uint64_t key, const void* value) override {
    uint32_t size = node_->db->schema(t).value_size;
    if (WriteSetEntry* ws = ws_.Find(t, p, key)) {
      ws_.AssignValue(*ws, value, size);
      ws->is_delete = false;  // write-after-delete resurrects the row
      ws->ops_only = false;
      return;
    }
    WriteSetEntry& e = ws_.Add(t, p, key);
    ws_.AssignValue(e, value, size);
  }

  void ApplyOperation(int t, int p, uint64_t key,
                      const Operation& op) override {
    if (WriteSetEntry* ws = ws_.Find(t, p, key)) {
      if (ws->is_delete) {
        // See SiloContext::ApplyOperation: unreachable from correct
        // procedures (reads observe the delete); resurrect from zeros.
        char* dst = ws_.AllocValue(*ws, node_->db->schema(t).value_size);
        std::memset(dst, 0, ws->value_len);
        ws->is_delete = false;
        op.ApplyTo(dst);
        ws->ops_only = false;
        return;
      }
      op.ApplyTo(ws_.ValuePtr(*ws));
      ws_.AppendOp(*ws, op);
      return;
    }
    const CacheEntry* seed = FindCache(t, p, key);
    assert(seed != nullptr && "operation without a preceding read");
    WriteSetEntry& e = ws_.Add(t, p, key);
    // Allocate before resolving the seed pointer: cache and value share the
    // arena, and Alloc may move it.
    char* dst = ws_.AllocValue(e, seed->len);
    std::memcpy(dst, ws_.arena().ptr(seed->off), seed->len);
    op.ApplyTo(ws_.ValuePtr(e));
    ws_.AppendOp(e, op);
    e.ops_only = true;
  }

  void Insert(int t, int p, uint64_t key, const void* value) override {
    // Inserts target the transaction's home partition in our workloads;
    // remote inserts would need owner-side GetOrInsert in the lock round.
    if (WriteSetEntry* ws = ws_.Find(t, p, key)) {
      // Re-insert after this transaction's own delete/write: plain write.
      ws_.AssignValue(*ws, value, node_->db->schema(t).value_size);
      ws->is_delete = false;
      ws->ops_only = false;
      return;
    }
    WriteSetEntry& e = ws_.Add(t, p, key);
    ws_.AssignValue(e, value, node_->db->schema(t).value_size);
    e.is_insert = true;
  }

  void Delete(int t, int p, uint64_t key) override {
    // Deletes, like inserts, stay on the home partition in our workloads.
    if (WriteSetEntry* w = ws_.Find(t, p, key)) {
      w->is_delete = true;
      w->ops_only = false;
      return;
    }
    HashTable* ht = node_->db->table(t, p);
    HashTable::Row row = ht != nullptr ? ht->GetRow(key) : HashTable::Row{};
    if (!row.valid()) return;
    WriteSetEntry& e = ws_.Add(t, p, key);
    e.row = row;
    e.is_delete = true;
  }

  bool Scan(int t, int p, uint64_t lo, uint64_t hi, int limit,
            ScanVisitor visit, void* arg) override {
    // Scans run against locally-mastered partitions only (the TPC-C scan
    // transactions are single-home) and under the OCC discipline, whose
    // commit re-validates the range; S2PL would need range locks the lock
    // table does not provide.  Remote scans would need an owner-side RPC.
    if (cc_ != DistCc::kOcc || placement_->master(p) != node_->id) {
      return false;
    }
    HashTable* ht = node_->db->table(t, p);
    if (ht == nullptr || ht->index() == nullptr) return false;
    scans_.Walk(ht, t, p, lo, hi, limit, visit, arg, ws_,
                [&](uint64_t key, const HashTable::Row& row, uint64_t word) {
                  reads_.push_back({t, p, key, word, false, row, false});
                });
    return true;
  }

  Rng& rng() override { return w_->rng; }

  // --- commit / abort drivers (called by the engine) ---

  CommitResult Commit(const std::atomic<uint64_t>& epoch);
  void Abort();

  WriteSet& writes() { return ws_; }

 private:
  struct ReadEntry {
    int32_t t;
    int32_t p;
    uint64_t key;
    uint64_t word;
    bool remote;
    HashTable::Row row;  // local only
    bool self_write;     // filled during validation
  };
  struct CacheEntry {
    int32_t t;
    int32_t p;
    uint64_t key;
    uint32_t off;  // arena view of the cached value
    uint32_t len;
  };

  /// Phantom validation for scanned ranges (OCC only; see ScanSet).
  bool ValidateScans() {
    return scans_.empty() || scans_.Validate(node_->db.get(), ws_);
  }

  const CacheEntry* FindCache(int t, int p, uint64_t key) const {
    for (const auto& c : cache_) {
      if (c.key == key && c.t == t && c.p == p) return &c;
    }
    return nullptr;
  }
  bool DeclaredWrite(int t, int p, uint64_t key) const {
    for (const auto& a : req_->accesses) {
      if (a.write && a.key == key && a.table == t && a.partition == p) {
        return true;
      }
    }
    return false;
  }
  bool InWriteSet(int t, int p, uint64_t key) {
    return ws_.Find(t, p, key) != nullptr;
  }

  CommitResult CommitOcc(const std::atomic<uint64_t>& epoch);
  CommitResult CommitS2pl(const std::atomic<uint64_t>& epoch);
  void SendRemoteUnlocks();
  void ReleaseLocalS2pl() {
    for (const auto& l : held_local_) {
      if (l.write) {
        lt_->WriteUnlock(LockNs(l.table, l.partition), l.key);
      } else {
        lt_->ReadUnlock(LockNs(l.table, l.partition), l.key);
      }
    }
    held_local_.clear();
  }

  DistEngine* engine_;
  DistEngine::Node* node_;
  DistEngine::WorkerState* w_;
  Placement* placement_;
  LockTable* lt_;
  DistCc cc_;
  uint64_t timeout_ns_;

  const TxnRequest* req_ = nullptr;
  WriteSet ws_;
  std::vector<ReadEntry> reads_;
  std::vector<CacheEntry> cache_;
  ScanSet scans_;
  std::vector<RemoteLock> held_local_;   // S2PL locks on this node
  std::vector<RemoteLock> held_remote_;  // S2PL locks at remote owners
  uint64_t remote_lock_words_ = 0;

  // OCC commit bookkeeping (reset per commit attempt).  The context is
  // reused across transactions, so all of these retain capacity.
  std::vector<WriteSetEntry*> locked_local_;
  std::vector<RemoteLock> locked_remote_;
  std::vector<WriteSetEntry*> local_writes_;
  std::vector<std::vector<WriteSetEntry*>> remote_writes_;
  std::vector<std::vector<ReadEntry*>> remote_reads_;
};

void DistContext::SendRemoteUnlocks() {
  // Group held/locked remote locks by owner and send one-way unlocks.
  const auto& locks = cc_ == DistCc::kS2pl ? held_remote_ : locked_remote_;
  std::vector<WriteBuffer> per_owner(placement_->num_nodes());
  std::vector<uint16_t> counts(placement_->num_nodes(), 0);
  for (const auto& l : locks) {
    int owner = placement_->master(l.partition);
    per_owner[owner].Write<int32_t>(l.table);
    per_owner[owner].Write<int32_t>(l.partition);
    per_owner[owner].Write<uint64_t>(l.key);
    per_owner[owner].Write<uint8_t>(l.write ? 1 : 0);
    counts[owner]++;
  }
  for (int o = 0; o < placement_->num_nodes(); ++o) {
    if (counts[o] == 0) continue;
    WriteBuffer b;
    b.Write<uint16_t>(counts[o]);
    b.WriteRaw(per_owner[o].data().data(), per_owner[o].size());
    node_->endpoint->Send(o, net::MsgType::kUnlockRequest, b.Release());
  }
}

void DistContext::Abort() {
  if (cc_ == DistCc::kS2pl) {
    ReleaseLocalS2pl();
    SendRemoteUnlocks();
    held_remote_.clear();
  }
  // OCC: execution acquired nothing; commit-time cleanup happens inline.
}

CommitResult DistContext::Commit(const std::atomic<uint64_t>& epoch) {
  return cc_ == DistCc::kOcc ? CommitOcc(epoch) : CommitS2pl(epoch);
}

CommitResult DistContext::CommitOcc(const std::atomic<uint64_t>& epoch) {
  locked_local_.clear();
  locked_remote_.clear();
  uint64_t floor = 0;

  // --- lock phase (paper: "first acquires all write locks") ---
  // Local writes: materialise inserts, then NO_WAIT-lock in address order.
  auto& local = local_writes_;
  auto& remote = remote_writes_;
  local.clear();
  remote.resize(placement_->num_nodes());
  for (auto& v : remote) v.clear();
  for (auto& ws : ws_.entries()) {
    int owner = placement_->master(ws.partition);
    if (owner == node_->id) {
      HashTable* ht = node_->db->table(ws.table, ws.partition);
      if (ws.is_insert) {
        bool inserted = false;
        ws.row = ht->GetOrInsertRow(ws.key, &inserted);
        ws.created_here = inserted;
      } else if (!ws.row.valid()) {
        ws.row = ht->GetRow(ws.key);
      }
      local.push_back(&ws);
    } else {
      assert(!ws.is_insert && !ws.is_delete &&
             "remote inserts/deletes unsupported by this workload");
      remote[owner].push_back(&ws);
    }
  }
  std::sort(local.begin(), local.end(),
            [](const WriteSetEntry* a, const WriteSetEntry* b) {
              return a->row.rec < b->row.rec;
            });
  auto abort_cleanup = [&]() {
    for (WriteSetEntry* ws : locked_local_) {
      // Plain unlock (see SiloOccCommit): never mark absent on abort.
      ws->row.rec->Unlock();
    }
    SendRemoteUnlocks();
    locked_local_.clear();
    locked_remote_.clear();
  };
  for (WriteSetEntry* ws : local) {
    if (!ws->row.rec->TryLock()) {  // NO_WAIT
      abort_cleanup();
      return {TxnStatus::kAbortConflict, 0};
    }
    locked_local_.push_back(ws);
    floor = std::max(floor, Record::TidOf(ws->row.rec->LoadWord()));
  }
  // Remote lock rounds, in parallel across owners.
  {
    std::vector<std::pair<int, uint64_t>> tokens;
    for (int o = 0; o < placement_->num_nodes(); ++o) {
      if (remote[o].empty()) continue;
      WriteBuffer b;
      b.Write<uint8_t>(0);  // mode 0: OCC write locks
      b.Write<uint16_t>(static_cast<uint16_t>(remote[o].size()));
      for (WriteSetEntry* ws : remote[o]) {
        b.Write<int32_t>(ws->table);
        b.Write<int32_t>(ws->partition);
        b.Write<uint64_t>(ws->key);
      }
      tokens.emplace_back(o, node_->endpoint->CallAsync(
                                 o, net::MsgType::kLockRequest, b.Release()));
    }
    bool ok = true;
    for (auto& [o, tok] : tokens) {
      std::string resp;
      if (!node_->endpoint->Wait(tok, &resp, timeout_ns_)) {
        ok = false;
        continue;
      }
      ReadBuffer in(resp);
      if (in.Read<uint8_t>() == 0) {
        ok = false;
        continue;
      }
      for (WriteSetEntry* ws : remote[o]) {
        floor = std::max(floor, in.Read<uint64_t>());
        locked_remote_.push_back({ws->table, ws->partition, ws->key, true});
      }
    }
    if (!ok) {
      abort_cleanup();
      return {TxnStatus::kAbortConflict, 0};
    }
  }

  // --- validation phase ("next validates all reads") ---
  auto& vremote = remote_reads_;
  vremote.resize(placement_->num_nodes());
  for (auto& v : vremote) v.clear();
  for (auto& r : reads_) {
    floor = std::max(floor, Record::TidOf(r.word));
    r.self_write = InWriteSet(r.t, r.p, r.key);
    if (!r.remote) {
      uint64_t cur = r.row.rec->LoadWord();
      if (Record::TidOf(cur) != Record::TidOf(r.word) ||
          (Record::IsLocked(cur) && !r.self_write)) {
        abort_cleanup();
        return {TxnStatus::kAbortConflict, 0};
      }
    } else {
      vremote[placement_->master(r.p)].push_back(&r);
    }
  }
  {
    std::vector<uint64_t> tokens;
    for (int o = 0; o < placement_->num_nodes(); ++o) {
      if (vremote[o].empty()) continue;
      WriteBuffer b;
      b.Write<uint16_t>(static_cast<uint16_t>(vremote[o].size()));
      for (ReadEntry* r : vremote[o]) {
        b.Write<int32_t>(r->t);
        b.Write<int32_t>(r->p);
        b.Write<uint64_t>(r->key);
        b.Write<uint64_t>(r->word);
        b.Write<uint8_t>(r->self_write ? 1 : 0);
      }
      tokens.push_back(node_->endpoint->CallAsync(
          o, net::MsgType::kValidateRequest, b.Release()));
    }
    for (uint64_t tok : tokens) {
      std::string resp;
      if (!node_->endpoint->Wait(tok, &resp, timeout_ns_) ||
          ReadBuffer(resp).Read<uint8_t>() == 0) {
        abort_cleanup();
        return {TxnStatus::kAbortConflict, 0};
      }
    }
  }
  if (!ValidateScans()) {  // phantom check over scanned ranges
    abort_cleanup();
    return {TxnStatus::kAbortConflict, 0};
  }

  // --- TID + (optional) 2PC prepare + synchronous replication ---
  uint64_t tid =
      w_->gen.Generate(floor, epoch.load(std::memory_order_acquire));
  if (engine_->options_.sync_replication) {
    std::vector<uint64_t> tokens;
    for (int o = 0; o < placement_->num_nodes(); ++o) {
      if (remote[o].empty()) continue;
      tokens.push_back(
          node_->endpoint->CallAsync(o, net::MsgType::kPrepareRequest, ""));
    }
    bool ok = true;
    for (uint64_t tok : tokens) {
      ok &= node_->endpoint->Wait(tok, nullptr, timeout_ns_);
    }
    if (ok) ok = engine_->ReplicateSyncAndWait(*node_, *w_, tid, ws_);
    if (!ok) {
      abort_cleanup();
      return {TxnStatus::kAbortNetwork, 0};
    }
  }

  // --- install phase ("applies the writes ... releases the write locks") ---
  for (WriteSetEntry* ws : local) {
    if (ws->is_delete) {
      ws->row.rec->UnlockWithTidAbsent(tid);
      continue;
    }
    ws->row.rec->Store(tid, ws_.ValuePtr(*ws), ws->value_len, ws->row.value,
                       false);
    ws->row.rec->UnlockWithTid(tid);
  }
  {
    std::vector<uint64_t> tokens;
    for (int o = 0; o < placement_->num_nodes(); ++o) {
      if (remote[o].empty()) continue;
      WriteBuffer b;
      b.Write<uint64_t>(tid);
      b.Write<uint16_t>(static_cast<uint16_t>(remote[o].size()));
      for (WriteSetEntry* ws : remote[o]) {
        b.Write<int32_t>(ws->table);
        b.Write<int32_t>(ws->partition);
        b.Write<uint64_t>(ws->key);
        b.WriteString(ws_.ValueView(*ws));
      }
      b.Write<uint16_t>(0);  // no S2PL read locks to release
      tokens.push_back(node_->endpoint->CallAsync(
          o, net::MsgType::kInstallRequest, b.Release()));
    }
    for (uint64_t tok : tokens) {
      node_->endpoint->Wait(tok, nullptr, timeout_ns_);
    }
  }
  return {TxnStatus::kCommitted, tid};
}

CommitResult DistContext::CommitS2pl(const std::atomic<uint64_t>& epoch) {
  // Every lock is already held (acquired during execution).  Compute the
  // TID, optionally run 2PC + synchronous replication, then install and
  // release everywhere.
  uint64_t floor = remote_lock_words_;
  for (const auto& r : reads_) floor = std::max(floor, Record::TidOf(r.word));
  uint64_t tid =
      w_->gen.Generate(floor, epoch.load(std::memory_order_acquire));

  // Partition writes by owner; resolve local rows.
  auto& local = local_writes_;
  auto& remote = remote_writes_;
  local.clear();
  remote.resize(placement_->num_nodes());
  for (auto& v : remote) v.clear();
  for (auto& ws : ws_.entries()) {
    int owner = placement_->master(ws.partition);
    if (owner == node_->id) {
      HashTable* ht = node_->db->table(ws.table, ws.partition);
      if (ws.is_insert) {
        ws.row = ht->GetOrInsertRow(ws.key);
      } else if (!ws.row.valid()) {
        ws.row = ht->GetRow(ws.key);
      }
      local.push_back(&ws);
    } else {
      assert(!ws.is_insert && !ws.is_delete &&
             "remote inserts/deletes unsupported by this workload");
      remote[owner].push_back(&ws);
    }
  }

  if (engine_->options_.sync_replication) {
    std::vector<uint64_t> tokens;
    for (int o = 0; o < placement_->num_nodes(); ++o) {
      if (remote[o].empty()) continue;
      tokens.push_back(
          node_->endpoint->CallAsync(o, net::MsgType::kPrepareRequest, ""));
    }
    bool ok = true;
    for (uint64_t tok : tokens) {
      ok &= node_->endpoint->Wait(tok, nullptr, timeout_ns_);
    }
    if (ok) ok = engine_->ReplicateSyncAndWait(*node_, *w_, tid, ws_);
    if (!ok) {
      Abort();
      return {TxnStatus::kAbortNetwork, 0};
    }
  }

  // Install local writes (record latch shields optimistic readers).
  for (WriteSetEntry* ws : local) {
    ws->row.rec->LockSpin();
    if (ws->is_delete) {
      ws->row.rec->UnlockWithTidAbsent(tid);
      continue;
    }
    ws->row.rec->Store(tid, ws_.ValuePtr(*ws), ws->value_len, ws->row.value,
                       false);
    ws->row.rec->UnlockWithTid(tid);
  }
  ReleaseLocalS2pl();

  // Install remote writes and release every lock held at each owner.
  std::vector<std::vector<const RemoteLock*>> locks_at(
      placement_->num_nodes());
  for (const auto& l : held_remote_) {
    locks_at[placement_->master(l.partition)].push_back(&l);
  }
  std::vector<uint64_t> tokens;
  for (int o = 0; o < placement_->num_nodes(); ++o) {
    if (remote[o].empty() && locks_at[o].empty()) continue;
    WriteBuffer b;
    b.Write<uint64_t>(tid);
    b.Write<uint16_t>(static_cast<uint16_t>(remote[o].size()));
    for (WriteSetEntry* ws : remote[o]) {
      b.Write<int32_t>(ws->table);
      b.Write<int32_t>(ws->partition);
      b.Write<uint64_t>(ws->key);
      b.WriteString(ws_.ValueView(*ws));
    }
    b.Write<uint16_t>(static_cast<uint16_t>(locks_at[o].size()));
    for (const RemoteLock* l : locks_at[o]) {
      b.Write<int32_t>(l->table);
      b.Write<int32_t>(l->partition);
      b.Write<uint64_t>(l->key);
      b.Write<uint8_t>(l->write ? 1 : 0);
    }
    tokens.push_back(node_->endpoint->CallAsync(
        o, net::MsgType::kInstallRequest, b.Release()));
  }
  for (uint64_t tok : tokens) {
    node_->endpoint->Wait(tok, nullptr, timeout_ns_);
  }
  held_remote_.clear();
  return {TxnStatus::kCommitted, tid};
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

DistEngine::DistEngine(const BaselineOptions& options,
                       const Workload& workload, DistCc cc)
    : ClusterEngine(options, workload,
                    Placement::PrimaryBackup(options.num_nodes,
                                             options.num_partitions(),
                                             options.replicas)),
      cc_(cc) {
  lock_tables_.resize(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) {
    lock_tables_[i] = std::make_unique<LockTable>();
    RegisterHandlers(*nodes_[i]);
  }
  // Persistent per-worker contexts: write-set arena/pool capacity survives
  // across transactions (see DistContext members).
  for (int i = 0; i < num_nodes_; ++i) {
    for (int w = 0; w < options_.workers_per_node; ++w) {
      worker_ctxs_.push_back(std::make_unique<DistContext>(
          this, nodes_[i].get(), nodes_[i]->workers[w].get(), &placement_,
          lock_tables_[i].get(), cc_, options_.rpc_timeout_ms));
    }
  }
}

void DistEngine::RegisterHandlers(Node& node) {
  Node* n = &node;
  n->endpoint->RegisterHandler(net::MsgType::kReadRequest,
                               [this, n](net::Message&& m) {
                                 HandleRead(*n, std::move(m));
                               });
  n->endpoint->RegisterHandler(net::MsgType::kLockRequest,
                               [this, n](net::Message&& m) {
                                 HandleLock(*n, std::move(m));
                               });
  n->endpoint->RegisterHandler(net::MsgType::kValidateRequest,
                               [this, n](net::Message&& m) {
                                 HandleValidate(*n, std::move(m));
                               });
  n->endpoint->RegisterHandler(net::MsgType::kInstallRequest,
                               [this, n](net::Message&& m) {
                                 HandleInstall(*n, std::move(m));
                               });
  n->endpoint->RegisterHandler(net::MsgType::kUnlockRequest,
                               [this, n](net::Message&& m) {
                                 HandleUnlock(*n, std::move(m));
                               });
  n->endpoint->RegisterHandler(net::MsgType::kPrepareRequest,
                               [this, n](net::Message&& m) {
                                 HandlePrepare(*n, std::move(m));
                               });
}

void DistEngine::HandleRead(Node& node, net::Message&& m) {
  ReadBuffer in(m.payload);
  int32_t t = in.Read<int32_t>();
  int32_t p = in.Read<int32_t>();
  uint64_t key = in.Read<uint64_t>();
  WriteBuffer out;
  HashTable* ht = node.db->table(t, p);
  HashTable::Row row = ht != nullptr ? ht->GetRow(key) : HashTable::Row{};
  uint64_t word = 0;
  std::string value(row.valid() ? row.size : 0, '\0');
  // Bounded read: the io thread must never block on a commit-locked record
  // (the lock holder may itself be waiting on this io thread — a classic
  // network-thread deadlock).  A busy record reads as a conflict; the
  // coordinator aborts and retries, NO_WAIT style.
  if (!row.valid() ||
      !row.rec->TryReadStable(value.data(), row.size, row.value, &word) ||
      Record::IsAbsent(word)) {
    out.Write<uint8_t>(0);
  } else {
    out.Write<uint8_t>(1);
    out.Write<uint64_t>(word);
    out.WriteString(value);
  }
  node.endpoint->Respond(m, net::MsgType::kReadResponse, out.Release());
}

void DistEngine::HandleLock(Node& node, net::Message&& m) {
  ReadBuffer in(m.payload);
  uint8_t mode = in.Read<uint8_t>();
  uint16_t count = in.Read<uint16_t>();
  WriteBuffer out;
  if (mode == 0) {
    // OCC write locks on record headers, NO_WAIT.
    std::vector<HashTable::Row> locked;
    WriteBuffer words;
    bool ok = true;
    for (uint16_t i = 0; i < count && ok; ++i) {
      int32_t t = in.Read<int32_t>();
      int32_t p = in.Read<int32_t>();
      uint64_t key = in.Read<uint64_t>();
      HashTable* ht = node.db->table(t, p);
      HashTable::Row row = ht != nullptr ? ht->GetRow(key) : HashTable::Row{};
      if (!row.valid() || !row.rec->TryLock()) {
        ok = false;
        break;
      }
      locked.push_back(row);
      words.Write<uint64_t>(Record::TidOf(row.rec->LoadWord()));
    }
    if (!ok) {
      for (auto& row : locked) row.rec->Unlock();
      out.Write<uint8_t>(0);
    } else {
      out.Write<uint8_t>(1);
      out.WriteRaw(words.data().data(), words.size());
    }
  } else {
    // S2PL shared/exclusive via the owner's lock table; returns the record
    // word and the current value on success (lock + read in one trip).
    LockTable* lt = lock_tables_[node.id].get();
    struct Acq {
      int32_t t;
      int32_t p;
      uint64_t key;
      bool write;
    };
    std::vector<Acq> acquired;
    WriteBuffer body;
    bool ok = true;
    bool write_mode = mode == 2;
    for (uint16_t i = 0; i < count && ok; ++i) {
      int32_t t = in.Read<int32_t>();
      int32_t p = in.Read<int32_t>();
      uint64_t key = in.Read<uint64_t>();
      bool got = write_mode ? lt->TryWriteLock(LockNs(t, p), key)
                            : lt->TryReadLock(LockNs(t, p), key);
      if (!got) {
        ok = false;
        break;
      }
      acquired.push_back({t, p, key, write_mode});
      HashTable* ht = node.db->table(t, p);
      HashTable::Row row = ht != nullptr ? ht->GetRow(key) : HashTable::Row{};
      if (!row.valid()) {
        ok = false;
        break;
      }
      std::string value(row.size, '\0');
      uint64_t word = 0;
      if (!row.rec->TryReadStable(value.data(), row.size, row.value, &word) ||
          Record::IsAbsent(word)) {
        ok = false;
        break;
      }
      body.Write<uint64_t>(word);
      body.WriteString(value);
    }
    if (!ok) {
      for (const auto& a : acquired) {
        if (a.write) {
          lt->WriteUnlock(LockNs(a.t, a.p), a.key);
        } else {
          lt->ReadUnlock(LockNs(a.t, a.p), a.key);
        }
      }
      out.Write<uint8_t>(0);
    } else {
      out.Write<uint8_t>(1);
      out.WriteRaw(body.data().data(), body.size());
    }
  }
  node.endpoint->Respond(m, net::MsgType::kLockResponse, out.Release());
}

void DistEngine::HandleValidate(Node& node, net::Message&& m) {
  ReadBuffer in(m.payload);
  uint16_t count = in.Read<uint16_t>();
  bool ok = true;
  for (uint16_t i = 0; i < count; ++i) {
    int32_t t = in.Read<int32_t>();
    int32_t p = in.Read<int32_t>();
    uint64_t key = in.Read<uint64_t>();
    uint64_t expected = in.Read<uint64_t>();
    bool self_locked = in.Read<uint8_t>() != 0;
    if (!ok) continue;
    HashTable* ht = node.db->table(t, p);
    HashTable::Row row = ht != nullptr ? ht->GetRow(key) : HashTable::Row{};
    if (!row.valid()) {
      ok = false;
      continue;
    }
    uint64_t cur = row.rec->LoadWord();
    if (Record::TidOf(cur) != Record::TidOf(expected) ||
        (Record::IsLocked(cur) && !self_locked)) {
      ok = false;
    }
  }
  WriteBuffer out;
  out.Write<uint8_t>(ok ? 1 : 0);
  node.endpoint->Respond(m, net::MsgType::kValidateResponse, out.Release());
}

void DistEngine::HandleInstall(Node& node, net::Message&& m) {
  ReadBuffer in(m.payload);
  uint64_t tid = in.Read<uint64_t>();
  uint16_t wcount = in.Read<uint16_t>();
  std::vector<uint64_t> installed_keys;
  installed_keys.reserve(wcount);
  for (uint16_t i = 0; i < wcount; ++i) {
    int32_t t = in.Read<int32_t>();
    int32_t p = in.Read<int32_t>();
    uint64_t key = in.Read<uint64_t>();
    std::string_view value = in.ReadBytes();
    HashTable* ht = node.db->table(t, p);
    HashTable::Row row = ht->GetRow(key);
    if (cc_ == DistCc::kOcc) {
      // Record lock held since the lock round.
      row.rec->Store(tid, value.data(), row.size, row.value, false);
      row.rec->UnlockWithTid(tid);
    } else {
      row.rec->LockSpin();
      row.rec->Store(tid, value.data(), row.size, row.value, false);
      row.rec->UnlockWithTid(tid);
      lock_tables_[node.id]->WriteUnlock(LockNs(t, p), key);
      installed_keys.push_back(static_cast<uint64_t>(LockNs(t, p)) << 32 ^
                               key);
    }
  }
  uint16_t rcount = in.Read<uint16_t>();
  LockTable* lt = lock_tables_[node.id].get();
  for (uint16_t i = 0; i < rcount; ++i) {
    int32_t t = in.Read<int32_t>();
    int32_t p = in.Read<int32_t>();
    uint64_t key = in.Read<uint64_t>();
    bool write = in.Read<uint8_t>() != 0;
    if (write) {
      // Write locks whose key was installed above were already released;
      // release the rest (declared-write keys the transaction never wrote).
      bool installed = false;
      for (uint64_t ik : installed_keys) {
        if (ik == (static_cast<uint64_t>(LockNs(t, p)) << 32 ^ key)) {
          installed = true;
          break;
        }
      }
      if (!installed) lt->WriteUnlock(LockNs(t, p), key);
    } else {
      lt->ReadUnlock(LockNs(t, p), key);
    }
  }
  node.endpoint->Respond(m, net::MsgType::kInstallResponse, "");
}

void DistEngine::HandleUnlock(Node& node, net::Message&& m) {
  ReadBuffer in(m.payload);
  uint16_t count = in.Read<uint16_t>();
  LockTable* lt = lock_tables_[node.id].get();
  for (uint16_t i = 0; i < count; ++i) {
    int32_t t = in.Read<int32_t>();
    int32_t p = in.Read<int32_t>();
    uint64_t key = in.Read<uint64_t>();
    bool write = in.Read<uint8_t>() != 0;
    if (cc_ == DistCc::kOcc) {
      HashTable* ht = node.db->table(t, p);
      HashTable::Row row = ht->GetRow(key);
      if (row.valid()) row.rec->Unlock();
    } else if (write) {
      lt->WriteUnlock(LockNs(t, p), key);
    } else {
      lt->ReadUnlock(LockNs(t, p), key);
    }
  }
}

void DistEngine::HandlePrepare(Node& node, net::Message&& m) {
  // Participants vote yes: locks are held and in-memory state is in place.
  // (A durable implementation would force a prepare record here.)
  node.endpoint->Respond(m, net::MsgType::kPrepareResponse, "");
}

void DistEngine::RunOne(Node& node, WorkerState& w, SiloContext& base_ctx) {
  (void)base_ctx;  // the distributed engines use their own context
  if (node.primaries.empty()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return;
  }
  // Home partition: one of this node's primaries handled by this worker.
  int home = node.primaries[w.rr++ % node.primaries.size()];
  bool cross =
      options_.cross_fraction > 0 && w.rng.Flip(options_.cross_fraction);
  TxnRequest req =
      cross ? workload_.MakeCrossPartition(w.rng, home, num_partitions_)
            : workload_.MakeSinglePartition(w.rng, home, num_partitions_);

  DistContext& ctx = *static_cast<DistContext*>(
      worker_ctxs_[node.id * options_.workers_per_node + w.index].get());
  uint64_t start = NowNanos();
  for (int attempt = 0;; ++attempt) {
    ctx.Begin(&req);
    TxnStatus status = req.proc(ctx);
    if (status == TxnStatus::kAbortUser) {
      ctx.Abort();
      w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CommitResult cr{TxnStatus::kAbortConflict, 0};
    if (status == TxnStatus::kCommitted) {
      cr = ctx.Commit(epoch_mgr_.counter());
    } else {
      ctx.Abort();
    }
    if (cr.status == TxnStatus::kCommitted) {
      if (!options_.sync_replication) {
        // Asynchronous replication to every backup copy.
        const WriteSet& writes = ctx.writes();
        for (const auto& e : writes.entries()) {
          int owner = placement_.master(e.partition);
          for (int dst : placement_.storing(e.partition)) {
            if (dst != owner) {
              w.stream->AppendEntry(dst, cr.tid, writes, e, false);
            }
          }
        }
      }
      FinishCommit(w, cr.tid, start, cross, &ctx.writes());
      return;
    }
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    if (!running_.load(std::memory_order_acquire)) return;
    // NO_WAIT backoff before retrying the same transaction: exponential
    // and jittered, both properties load-bearing.  A deterministic,
    // identical backoff lets workers with overlapping write sets collide
    // in lockstep indefinitely on an idle host, and a cap near the attempt
    // duration sustains a stable distributed livelock: cross-partition
    // attempts hold their local write locks across ~1 ms of remote lock
    // rounds, so at a ~1 ms retry cadence every participant keeps its hot
    // locks at a high duty cycle and nobody gets through.  Growing the gap
    // until someone succeeds breaks the ring.
    int base_us = 50 << std::min(attempt, 9);  // 50 us .. ~25 ms
    std::this_thread::sleep_for(std::chrono::microseconds(
        base_us / 2 + static_cast<int>(w.rng.Uniform(base_us))));
  }
}

}  // namespace star
