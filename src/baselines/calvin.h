#ifndef STAR_BASELINES_CALVIN_H_
#define STAR_BASELINES_CALVIN_H_

#include <deque>
#include <map>
#include <unordered_map>

#include "baselines/cluster_engine.h"
#include "common/thread_annotations.h"

namespace star {

/// Calvin (Section 7.3): deterministic concurrency control.  A sequencer
/// orders batches of transaction inputs; every node deterministically locks
/// its local records in batch order (sharded lock-manager threads —
/// Calvin-x uses x of the node's worker threads as lock managers) and the
/// remaining threads execute.  Participants exchange local reads
/// (kCalvinForward) instead of running 2PC; results are identical on every
/// replica group, so replication ships inputs, not writes.
///
/// We run one replica group of `num_nodes` nodes, exactly as the paper's
/// experiment does, with a multi-threaded lock manager per node (the
/// paper's extension of Calvin's single-threaded design).
struct CalvinOptions {
  BaselineOptions base;
  /// Lock-manager threads per node (the x in Calvin-x); the node's
  /// remaining workers execute transactions.
  int lock_managers = 1;
  /// Transactions per sequencer batch.
  int batch_size = 200;
  /// Batches in flight: the sequencer dispatches ahead of completion (real
  /// Calvin emits a batch every epoch regardless); nodes still schedule
  /// batches strictly in order, preserving determinism.
  int pipeline_batches = 8;
  /// How long an executor waits for forwarded reads before requeueing the
  /// transaction and working on another (avoids executor-pool stalls).
  double forward_wait_us = 1000.0;
};

class CalvinEngine final : public ClusterEngine {
 public:
  CalvinEngine(const CalvinOptions& options, const Workload& workload);
  ~CalvinEngine() override;

 protected:
  void RunOne(Node& node, WorkerState& w, SiloContext& ctx) override;
  void WorkerLoop(Node& node, int worker_index) override;
  void OnStart() override;
  void OnStopBegin() override;

 private:
  friend class CalvinContext;

  /// One transaction instance on one participating node.
  struct NodeTxn {
    const TxnRequest* req = nullptr;
    uint64_t batch = 0;
    uint32_t index = 0;
    uint64_t dispatch_ns = 0;
    std::vector<AccessDesc> local_locks;   // deduped, strongest mode
    std::vector<int> participants;         // nodes owning any access
    std::atomic<int> pending_locks{0};
    bool forwards_sent = false;
    /// Executor backoff: after a forward-wait timeout the transaction is
    /// requeued but not retried before this deadline, so it cannot
    /// head-of-line block younger ready transactions.
    uint64_t retry_at_ns = 0;
  };

  /// Cross-participant read exchange box (may be created by a forward that
  /// arrives before the batch is scheduled locally).
  struct ForwardBox {
    SpinLock mu;
    /// (table, partition, key) -> value bytes.
    std::map<std::tuple<int32_t, int32_t, uint64_t>, std::string> values
        STAR_GUARDED_BY(mu);
  };

  struct LockSlot {
    int readers = 0;
    bool writer = false;
    std::deque<std::pair<NodeTxn*, bool>> waiters;  // (txn, is_write) FIFO
  };

  struct LmShard {
    SpinLock mu;
    /// (slot key, was_write)
    std::deque<std::pair<uint64_t, bool>> releases STAR_GUARDED_BY(mu);
    std::unordered_map<uint64_t, LockSlot> slots STAR_GUARDED_BY(mu);
  };

  struct Batch {
    uint64_t id = 0;
    uint64_t dispatch_ns = 0;
    std::vector<TxnRequest> txns;
  };

  struct NodeState {
    std::vector<std::unique_ptr<LmShard>> shards;
    /// Ready transactions ordered by (batch, index): executors prefer the
    /// oldest, which guarantees progress (see ExecLoop).
    SpinLock ready_mu;
    std::map<uint64_t, NodeTxn*> ready STAR_GUARDED_BY(ready_mu);
    /// Owned transaction instances for in-flight batches.
    SpinLock txns_mu;
    std::unordered_map<uint64_t, std::unique_ptr<NodeTxn>> txns
        STAR_GUARDED_BY(txns_mu);
    SpinLock fwd_mu;
    std::unordered_map<uint64_t, std::unique_ptr<ForwardBox>> forwards
        STAR_GUARDED_BY(fwd_mu);
    /// Per-batch unfinished-transaction counts and batch retention (the
    /// requests live in the shared Batch object).
    SpinLock prog_mu;
    std::unordered_map<uint64_t, int> outstanding STAR_GUARDED_BY(prog_mu);
    std::unordered_map<uint64_t, std::shared_ptr<Batch>> held_batches
        STAR_GUARDED_BY(prog_mu);
    /// Batches announced by the sequencer but not yet lock-scheduled.
    SpinLock batch_mu;
    std::deque<uint64_t> pending_batches STAR_GUARDED_BY(batch_mu);
  };

  static uint64_t TxnKey(uint64_t batch, uint32_t index) {
    return (batch << 24) | index;
  }
  static uint64_t SlotKey(const AccessDesc& a) {
    return HashKey(a.key * 1000003ull + static_cast<uint64_t>(a.table) * 31 +
                   static_cast<uint64_t>(a.partition) + 1);
  }

  void SequencerLoop();
  void LmLoop(Node& node, int lm_index);
  void ExecLoop(Node& node, WorkerState& w);
  void ScheduleBatch(Node& node, uint64_t batch_id);
  void ExecuteTxn(Node& node, WorkerState& w, NodeTxn* txn);
  void SendForwards(Node& node, NodeTxn* txn);
  ForwardBox* GetForwardBox(NodeState& ns, uint64_t key);
  void GrantOrQueue(Node& node, LmShard& shard, NodeTxn* txn,
                    const AccessDesc& a);
  void MarkReady(Node& node, NodeTxn* txn);

 public:
  // Diagnostics (tests and tuning).
  std::atomic<uint64_t> diag_requeues_{0};
  std::atomic<uint64_t> diag_forwards_sent_{0};
  std::atomic<uint64_t> diag_ready_{0};
  std::atomic<uint64_t> diag_executed_{0};
  std::atomic<uint64_t> diag_scheduled_{0};
  std::atomic<uint64_t> diag_pops_{0};
  std::atomic<uint64_t> diag_exec_enter_{0};

 private:
  CalvinOptions copts_;
  std::vector<std::unique_ptr<NodeState>> cstate_;
  std::unique_ptr<net::Endpoint> sequencer_;  // endpoint id == num_nodes
  std::thread sequencer_thread_;
  /// Pipelining: per-batch ack counts (sequencer side) and in-flight count.
  SpinLock acks_mu_;
  std::unordered_map<uint64_t, int> ack_counts_ STAR_GUARDED_BY(acks_mu_);
  std::atomic<int> inflight_{0};

  // Shared in-process batch store (stands in for input replication; the
  // fabric message carries a realistically-sized payload so byte accounting
  // stays honest).
  SpinLock batches_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Batch>> batches_
      STAR_GUARDED_BY(batches_mu_);
};

}  // namespace star

#endif  // STAR_BASELINES_CALVIN_H_
