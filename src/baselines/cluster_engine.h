#ifndef STAR_BASELINES_CLUSTER_ENGINE_H_
#define STAR_BASELINES_CLUSTER_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/options.h"
#include "cc/epoch.h"
#include "cc/silo.h"
#include "cc/workload.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/stats.h"
#include "net/endpoint.h"
#include "net/transport.h"
#include "replication/applier.h"
#include "replication/sharded_applier.h"
#include "replication/stream.h"
#include "wal/logger.h"

namespace star {

/// Shared chassis for the baseline engines: a transport, one database replica
/// per node (per a Placement), endpoints with a replication applier, an
/// epoch timer for group commit, and worker threads.  Subclasses implement
/// RunOne() (one transaction attempt cycle) and may register extra message
/// handlers before Start().
class ClusterEngine {
 public:
  ClusterEngine(const BaselineOptions& options, const Workload& workload,
                Placement placement, int extra_endpoints = 0);
  virtual ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  void Start();
  Metrics Stop();
  Metrics Snapshot() const;
  void ResetStats();

  Database* database(int node) { return nodes_[node]->db.get(); }
  net::Transport* transport() { return transport_.get(); }
  const Placement& placement() const { return placement_; }
  uint64_t epoch() const { return epoch_mgr_.Current(); }
  /// Silo durable epoch: min over every node's logger fleet (0 when
  /// durable logging is off).
  uint64_t durable_epoch() const {
    uint64_t d = ~0ull;
    for (const auto& node : nodes_) {
      if (node->logs != nullptr) d = std::min(d, node->logs->durable_epoch());
    }
    return d == ~0ull ? 0 : d;
  }

 protected:
  struct WorkerState {
    WorkerState(uint64_t seed, uint64_t tid_thread, int index)
        : rng(seed), gen(tid_thread), index(index) {}
    Rng rng;
    TidGenerator gen;
    WorkerStats stats;
    GroupCommitTracker tracker;
    std::unique_ptr<ReplicationStream> stream;
    /// Per-worker write-set scratch for engines whose contexts are built per
    /// transaction (Calvin): capacity persists across transactions.
    WriteSet write_scratch;
    /// Synchronous-replication scratch (see ReplicateSyncAndWait).
    std::vector<WriteBuffer> sync_batches;
    std::vector<uint64_t> sync_tokens;
    int index;  // worker index within the node
    uint32_t txn_since_yield = 0;
    size_t rr = 0;  // cursor over the node's primary partitions
    /// Log lane when durable_logging is on (owned by the node's pool).
    wal::LogLane* wal = nullptr;
    /// Highest epoch this worker has certified complete to its lane
    /// (Silo durable-epoch protocol, see WorkerLoop).
    uint64_t wal_marked = 0;
  };

  /// State of one replica-read worker (monotonic-fresh mode; see
  /// BaselineOptions::replica_read_workers).  Padded against false sharing.
  struct alignas(64) ReaderState {
    explicit ReaderState(uint64_t seed) : rng(seed) {}
    Rng rng;
    std::atomic<uint64_t> committed{0};
    std::atomic<uint64_t> aborted{0};    // missing record / user abort
    std::atomic<uint64_t> conflicts{0};  // bounded optimistic read gave up
  };

  struct Node {
    int id = 0;
    std::unique_ptr<Database> db;
    std::unique_ptr<net::Endpoint> endpoint;
    std::unique_ptr<ReplicationCounters> counters;
    std::unique_ptr<ReplicationApplier> applier;
    /// Parallel replay pipeline (options.replay_shards >= 2); null for the
    /// inline serial default.  Same pipeline as StarEngine's.
    std::unique_ptr<ShardedApplier> sharded;
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::vector<std::unique_ptr<ReaderState>> readers;
    std::vector<std::thread> threads;
    std::vector<std::thread> reader_threads;
    std::vector<int> primaries;  // partitions this node masters
    /// Group-commit logger fleet (durable_logging); null otherwise.
    std::unique_ptr<wal::LoggerPool> logs;
  };

  /// One unit of work for a worker; called in a loop until Stop().
  /// Implementations run exactly one transaction to completion (with
  /// internal retries if they choose) or sleep briefly when idle.
  virtual void RunOne(Node& node, WorkerState& w, SiloContext& ctx) = 0;

  /// Hooks around the run (register handlers in the constructor instead).
  virtual void OnStart() {}
  virtual void OnStopBegin() {}

  /// Streams value-replication entries for a committed write set to every
  /// replica of each touched partition (asynchronous replication; the
  /// Thomas rule reconciles ordering).
  void ReplicateAsync(WorkerState& w, int self, uint64_t tid,
                      const WriteSet& writes) {
    for (const auto& e : writes.entries()) {
      for (int dst : placement_.storing(e.partition)) {
        if (dst != self) w.stream->AppendEntry(dst, tid, writes, e, false);
      }
    }
  }

  /// Synchronous replication: ships the batch and waits for every ack while
  /// the caller still holds its write locks.  Returns false on timeout.
  bool ReplicateSyncAndWait(Node& node, WorkerState& w, uint64_t tid,
                            const WriteSet& writes);

  /// Records a commit in the stats and the group-commit tracker (async) or
  /// directly in the latency histogram (sync).  With durable logging on,
  /// `writes` (when provided) is appended to the worker's log lane first.
  void FinishCommit(WorkerState& w, uint64_t tid, uint64_t start_ns,
                    bool cross, const WriteSet* writes = nullptr) {
    if (w.wal != nullptr && writes != nullptr) {
      w.wal->AppendCommit(tid, *writes);
    }
    w.stats.committed.fetch_add(1, std::memory_order_relaxed);
    (cross ? w.stats.cross_partition : w.stats.single_partition)
        .fetch_add(1, std::memory_order_relaxed);
    if (options_.sync_replication) {
      w.stats.latency.Record(NowNanos() - start_ns);
    } else {
      w.tracker.Add(Tid::Epoch(tid), start_ns);
    }
  }

  /// Default loop: RunOne + group-commit drain + yield cadence.  Calvin
  /// overrides it (its workers split into lock managers and executors).
  virtual void WorkerLoop(Node& node, int worker_index);

  /// Replica-read loop: monotonic-fresh read-only transactions against the
  /// node's local replica (no watermark — the baselines have no fence).
  void ReaderLoop(Node& node, int reader_index);

  BaselineOptions options_;
  const Workload& workload_;
  int num_nodes_;
  int num_partitions_;
  Placement placement_;
  EpochManager epoch_mgr_;

  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> running_{false};

  uint64_t measure_start_ns_ = 0;
  uint64_t net_bytes_at_reset_ = 0;
  uint64_t net_msgs_at_reset_ = 0;
  uint64_t net_dropped_bytes_at_reset_ = 0;
  uint64_t net_dropped_msgs_at_reset_ = 0;
};

}  // namespace star

#endif  // STAR_BASELINES_CLUSTER_ENGINE_H_
