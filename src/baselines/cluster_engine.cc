#include "baselines/cluster_engine.h"

#include <cstdio>
#include <cstdlib>

#include "cc/snapshot.h"

namespace star {

ClusterEngine::ClusterEngine(const BaselineOptions& options,
                             const Workload& workload, Placement placement,
                             int extra_endpoints)
    : options_(options),
      workload_(workload),
      num_nodes_(options.num_nodes),
      num_partitions_(options.num_partitions()),
      placement_(std::move(placement)),
      epoch_mgr_(options.epoch_ms) {
  net::TransportConfig tc;
  tc.kind = options_.transport;
  tc.sim.link_latency_us = options_.link_latency_us;
  tc.sim.local_latency_us = options_.local_latency_us;
  tc.sim.bandwidth_gbps = options_.bandwidth_gbps;
  tc.tcp.host = options_.tcp_host;
  tc.tcp.base_port = options_.tcp_base_port;
  transport_ = net::MakeTransport(num_nodes_ + extra_endpoints, tc);

  auto schemas = workload_.Schemas();
  for (int i = 0; i < num_nodes_; ++i) {
    auto node = std::make_unique<Node>();
    node->id = i;
    node->db = std::make_unique<Database>(schemas, num_partitions_,
                                          placement_.StoredPartitions(i),
                                          /*two_version=*/false);
    node->endpoint = std::make_unique<net::Endpoint>(
        transport_.get(), i, options_.io_threads_per_node);
    // 0 autosizes from the host core budget (ResolveReplayShards); the
    // resolved 1 then runs the sharded pipeline's single prefetched worker,
    // while an explicit 1 keeps the inline io-thread apply.
    int replay_shards = ResolveReplayShards(options_.replay_shards);
    bool sharded_replay = options_.replay_shards == 0 || replay_shards >= 2;
    node->counters = std::make_unique<ReplicationCounters>(
        num_nodes_, replay_shards, /*sent_lanes=*/options_.workers_per_node);
    node->applier = std::make_unique<ReplicationApplier>(node->db.get(),
                                                         node->counters.get());
    if (sharded_replay) {
      ShardedApplier::Options so;
      so.shards = replay_shards;
      node->sharded = std::make_unique<ShardedApplier>(
          node->db.get(), node->counters.get(), so);
      node->sharded->set_release_hook(
          [ep = node->endpoint.get()](std::string&& payload) {
            ep->ReleasePayload(std::move(payload));
          });
    }
    node->primaries = placement_.mastered_by(i);

    if (options_.durable_logging) {
      wal::LoggerPoolOptions lo;
      lo.dir = options_.log_dir;
      lo.node = i;
      lo.num_lanes = options_.workers_per_node;
      lo.num_loggers = options_.log_workers;
      lo.fsync = options_.fsync;
      node->logs = std::make_unique<wal::LoggerPool>(lo);
      // Baselines never rejoin mid-run; every incarnation is complete.
      node->logs->MarkComplete();
    }

    Node* n = node.get();
    node->endpoint->RegisterHandler(
        net::MsgType::kReplicationBatch, [n](net::Message&& m) {
          // Same dispatch as StarEngine: async batches ride the replay
          // pipeline when it exists; synchronous batches apply inline so
          // the ack certifies an *applied* write.
          if (n->sharded != nullptr && m.rpc_id == 0) {
            n->sharded->Submit(m.src, std::move(m.payload));
            return;
          }
          n->applier->ApplyBatch(m.src, m.payload);
          if (m.rpc_id != 0) {
            n->endpoint->Respond(m, net::MsgType::kReplicationAck, "");
          }
        });

    for (int w = 0; w < options_.workers_per_node; ++w) {
      uint64_t seed = options_.seed * 7349ull + i * 977 + w;
      uint64_t tid_thread =
          static_cast<uint64_t>(i) * options_.workers_per_node + w;
      auto ws = std::make_unique<WorkerState>(seed, tid_thread, w);
      ws->stream = std::make_unique<ReplicationStream>(
          node->endpoint.get(), node->counters.get(), num_nodes_,
          options_.rep_flush_bytes, /*lane=*/w);
      if (node->logs != nullptr) ws->wal = node->logs->lane(w);
      node->workers.push_back(std::move(ws));
    }
    for (int r = 0; r < options_.replica_read_workers; ++r) {
      uint64_t seed = options_.seed * 888121ull + i * 977 + r;
      node->readers.push_back(std::make_unique<ReaderState>(seed));
    }
    nodes_.push_back(std::move(node));
  }
}

ClusterEngine::~ClusterEngine() {
  if (running_.load(std::memory_order_acquire)) Stop();
}

void ClusterEngine::Start() {
  if (!transport_->Start()) {
    std::fprintf(stderr, "[star] transport failed to start (port taken?)\n");
    std::abort();
  }
  for (auto& node : nodes_) {
    for (int p = 0; p < num_partitions_; ++p) {
      if (node->db->HasPartition(p)) workload_.PopulatePartition(*node->db, p);
    }
  }
  running_.store(true, std::memory_order_release);
  epoch_mgr_.StartTimer();
  for (auto& node : nodes_) {
    if (node->sharded != nullptr) node->sharded->Start();
    node->endpoint->Start();
  }
  OnStart();
  for (auto& node : nodes_) {
    for (int w = 0; w < options_.workers_per_node; ++w) {
      node->threads.emplace_back(
          [this, n = node.get(), w] { WorkerLoop(*n, w); });
    }
    for (size_t r = 0; r < node->readers.size(); ++r) {
      node->reader_threads.emplace_back(
          [this, n = node.get(), r] { ReaderLoop(*n, static_cast<int>(r)); });
    }
  }
  ResetStats();
}

void ClusterEngine::ReaderLoop(Node& node, int reader_index) {
  ReaderState& r = *node.readers[reader_index];
  // No watermark: the baselines have no replication fence, so readers get
  // monotonic-fresh semantics only (each record individually committed,
  // per-record TIDs never regress; no cross-record snapshot).  The chassis
  // never reverts epochs or resets storage, so no pause handshake either.
  SnapshotContext ctx(node.db.get(), /*watermark=*/nullptr,
                      ReplicaReadMode::kMonotonic, &r.rng,
                      num_nodes_ * options_.workers_per_node +
                          node.id * static_cast<int>(node.readers.size()) +
                          reader_index);
  std::vector<int> parts = placement_.StoredPartitions(node.id);
  size_t rr = static_cast<size_t>(
      r.rng.Uniform(static_cast<uint64_t>(parts.size())));
  uint32_t txn_since_yield = 0;
  while (running_.load(std::memory_order_acquire)) {
    int partition = parts[rr++ % parts.size()];
    TxnRequest req = workload_.MakeReadOnly(r.rng, partition, num_partitions_);
    if (req.proc == nullptr) return;  // workload has no read-only class
    ctx.Begin();
    TxnStatus status = req.proc(ctx);
    if (status == TxnStatus::kCommitted && ctx.Commit()) {
      r.committed.fetch_add(1, std::memory_order_relaxed);
    } else if (ctx.conflicted()) {
      r.conflicts.fetch_add(1, std::memory_order_relaxed);
    } else {
      r.aborted.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.yield_every_n_txns != 0 &&
        ++txn_since_yield >= options_.yield_every_n_txns) {
      txn_since_yield = 0;
      std::this_thread::yield();
    }
  }
}

void ClusterEngine::WorkerLoop(Node& node, int worker_index) {
  WorkerState& w = *node.workers[worker_index];
  SiloContext ctx(node.db.get(), &w.rng,
                  node.id * options_.workers_per_node + worker_index);
  while (running_.load(std::memory_order_acquire)) {
    ctx.Reset();
    w.stats.MaybeResetLatency();
    RunOne(node, w, ctx);
    uint64_t cur = epoch_mgr_.Current();
    // Silo durable-epoch protocol: between transactions, every future
    // commit from this worker carries epoch >= cur, so everything below
    // cur is final for this lane — certify it to the logger fleet (the
    // on-disk durable epoch is then the min over lanes).
    if (w.wal != nullptr && cur - 1 > w.wal_marked) {
      w.wal_marked = cur - 1;
      w.wal->MarkEpoch(w.wal_marked);
    }
    w.tracker.Drain(cur, NowNanos(), w.stats.latency);
    if (options_.yield_every_n_txns != 0 &&
        ++w.txn_since_yield >= options_.yield_every_n_txns) {
      w.txn_since_yield = 0;
      std::this_thread::yield();
    }
  }
  // Flush outstanding replication and release remaining group commits.
  w.stream->FlushAll();
  if (w.wal != nullptr) w.wal->MarkEpoch(epoch_mgr_.Current());
  w.tracker.DrainAll(NowNanos(), w.stats.latency);
}

bool ClusterEngine::ReplicateSyncAndWait(Node& node, WorkerState& w,
                                         uint64_t tid,
                                         const WriteSet& writes) {
  // Per-worker scratch: the sync path must not regress the zero-allocation
  // hot path (buffer capacity and recycled payload-pool strings persist
  // across commits).
  if (w.sync_batches.size() != static_cast<size_t>(num_nodes_)) {
    w.sync_batches.resize(num_nodes_);
  }
  auto& batches = w.sync_batches;
  for (const auto& e : writes.entries()) {
    int owner = placement_.master(e.partition);
    for (int dst : placement_.storing(e.partition)) {
      // Skip ourselves and the partition owner: the owner installs the
      // write in the commit's install round, and its copy of the record is
      // lock-held by this very transaction — replicating to it would wedge
      // its io thread on our own lock (io-thread self-deadlock).
      if (dst == node.id || dst == owner) continue;
      if (e.is_delete) {
        SerializeDeleteEntry(batches[dst], e.table, e.partition, e.key, tid);
      } else {
        SerializeValueEntry(batches[dst], e.table, e.partition, e.key, tid,
                            writes.ValueView(e));
      }
    }
  }
  auto& tokens = w.sync_tokens;
  tokens.clear();
  for (int dst = 0; dst < num_nodes_; ++dst) {
    if (batches[dst].empty()) continue;
    tokens.push_back(node.endpoint->CallAsync(
        dst, net::MsgType::kReplicationBatch, batches[dst].Release()));
    batches[dst].Adopt(node.endpoint->AcquirePayload());
  }
  bool ok = true;
  for (uint64_t t : tokens) {
    if (!node.endpoint->Wait(t, nullptr,
                             MillisToNanos(options_.rpc_timeout_ms))) {
      ok = false;
    }
  }
  return ok;
}

Metrics ClusterEngine::Snapshot() const {
  Metrics m;
  for (const auto& node : nodes_) {
    for (const auto& w : node->workers) {
      m.committed += w->stats.committed.load(std::memory_order_relaxed);
      m.aborted += w->stats.aborted.load(std::memory_order_relaxed);
      m.aborted_user += w->stats.aborted_user.load(std::memory_order_relaxed);
      m.single_partition +=
          w->stats.single_partition.load(std::memory_order_relaxed);
      m.cross_partition +=
          w->stats.cross_partition.load(std::memory_order_relaxed);
      m.latency.Merge(w->stats.latency);
    }
    for (const auto& r : node->readers) {
      m.replica_reads += r->committed.load(std::memory_order_relaxed);
      m.replica_read_aborts += r->aborted.load(std::memory_order_relaxed);
      m.replica_read_conflicts +=
          r->conflicts.load(std::memory_order_relaxed);
    }
    if (node->logs != nullptr) {
      m.wal_bytes += node->logs->bytes_written();
      m.wal_fsyncs += node->logs->fsyncs();
      m.wal_batches += node->logs->batches();
      m.wal_epoch_markers += node->logs->epoch_markers();
    }
  }
  m.durable_epoch = durable_epoch();
  m.seconds = (NowNanos() - measure_start_ns_) / 1e9;
  m.network_bytes = transport_->total_bytes() - net_bytes_at_reset_;
  m.network_messages = transport_->total_messages() - net_msgs_at_reset_;
  m.network_dropped_bytes =
      transport_->dropped_bytes() - net_dropped_bytes_at_reset_;
  m.network_dropped_messages =
      transport_->dropped_messages() - net_dropped_msgs_at_reset_;
  return m;
}

void ClusterEngine::ResetStats() {
  bool live = running_.load(std::memory_order_acquire);
  for (auto& node : nodes_) {
    for (auto& w : node->workers) {
      // Also clears the latency histogram (warm-up samples must not leak
      // into the measured window).  While running, the histogram reset is
      // deferred to the owning worker; on a stopped engine, do it directly.
      w->stats.Reset();
      if (!live) w->stats.MaybeResetLatency();
    }
    for (auto& r : node->readers) {
      r->committed.store(0, std::memory_order_relaxed);
      r->aborted.store(0, std::memory_order_relaxed);
      r->conflicts.store(0, std::memory_order_relaxed);
    }
  }
  net_bytes_at_reset_ = transport_->total_bytes();
  net_msgs_at_reset_ = transport_->total_messages();
  net_dropped_bytes_at_reset_ = transport_->dropped_bytes();
  net_dropped_msgs_at_reset_ = transport_->dropped_messages();
  measure_start_ns_ = NowNanos();
}

Metrics ClusterEngine::Stop() {
  Metrics before = Snapshot();
  double seconds = before.seconds;
  OnStopBegin();
  running_.store(false, std::memory_order_release);
  for (auto& node : nodes_) {
    for (auto& t : node->threads) {
      if (t.joinable()) t.join();
    }
    node->threads.clear();
    for (auto& t : node->reader_threads) {
      if (t.joinable()) t.join();
    }
    node->reader_threads.clear();
  }
  epoch_mgr_.StopTimer();
  for (auto& node : nodes_) {
    node->endpoint->Stop();
    // Io threads are gone: drain the shard queues and join the replay
    // workers so every accepted batch reaches the store before teardown.
    if (node->sharded != nullptr) node->sharded->Stop();
    if (node->logs != nullptr) node->logs->Stop();
  }
  transport_->Stop();
  Metrics m = Snapshot();
  m.seconds = seconds;
  return m;
}

}  // namespace star
