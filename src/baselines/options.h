#ifndef STAR_BASELINES_OPTIONS_H_
#define STAR_BASELINES_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/transport.h"

namespace star {

/// Configuration shared by the baseline engines of Section 7.1.2/7.1.3:
/// PB. OCC (non-partitioned primary/backup), Dist. OCC and Dist. S2PL
/// (partitioning-based, 2 replicas per partition), and Calvin (deterministic,
/// one replica group).
struct BaselineOptions {
  int num_nodes = 4;
  int workers_per_node = 2;
  int io_threads_per_node = 1;
  /// Replication replay shards per node (see ClusterConfig::replay_shards):
  /// 0 (default) = autosize from the host core budget (ResolveReplayShards),
  /// 1 = inline serial apply on the io thread, >= 2 = parallel replay
  /// pipeline.  The baselines share STAR's applier stack.
  int replay_shards = 0;
  /// Outbound replication batch flush threshold, bytes (see
  /// ClusterConfig::rep_flush_bytes).
  size_t rep_flush_bytes = 8 * 1024;
  /// 0 = one partition per worker thread (the paper's setup).
  int partitions = 0;
  /// Copies of each partition (primary + backups), Section 7.1.3.
  int replicas = 2;

  /// Group-commit epoch for asynchronous replication (Silo-style timer).
  double epoch_ms = 10.0;

  /// Durability: per-node logger pool (wal/logger.h), one log lane per
  /// worker, Silo-style durable epoch = min over lane watermarks.  Same
  /// group-commit machinery as StarEngine so durability costs are
  /// comparable across engines.  Off by default, as in the paper.
  bool durable_logging = false;
  std::string log_dir = "/tmp/star_logs";
  bool fsync = false;
  /// Dedicated logger threads per node; clamped to [1, workers_per_node].
  int log_workers = 1;
  /// Synchronous replication: transactions hold write locks across the
  /// replication round trip, and the distributed engines add two-phase
  /// commit rounds (Figure 11(c,d)).
  bool sync_replication = false;

  /// Fraction of generated transactions that are cross-partition.
  double cross_fraction = 0.1;

  /// Replica-served read-only transactions, per node (cc/snapshot.h).  The
  /// baselines have no replication fence and therefore no applied-epoch
  /// watermark, so their readers run in monotonic-fresh mode only: each
  /// record read is individually a committed version (per-record time never
  /// runs backwards under the Thomas rule), with no cross-record snapshot
  /// guarantee.  0 (default) spawns none.
  int replica_read_workers = 0;

  // Transport parameters (same defaults as STAR's cluster).  kSim keeps
  // the simulated latency/bandwidth model; kTcp runs the baseline over
  // real loopback sockets (single-process).
  net::TransportKind transport = net::TransportKind::kSim;
  std::string tcp_host = "127.0.0.1";
  int tcp_base_port = 0;  // 0 = ephemeral ports
  double link_latency_us = 50.0;
  double local_latency_us = 0.0;
  double bandwidth_gbps = 4.8;

  uint64_t seed = 42;
  uint32_t yield_every_n_txns = 64;
  double rpc_timeout_ms = 10000.0;

  int num_partitions() const {
    return partitions > 0 ? partitions : num_nodes * workers_per_node;
  }
};

}  // namespace star

#endif  // STAR_BASELINES_OPTIONS_H_
