#ifndef STAR_CORE_ENGINE_H_
#define STAR_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cc/epoch.h"
#include "cc/silo.h"
#include "cc/workload.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/stats.h"
#include "core/options.h"
#include "net/endpoint.h"
#include "net/fabric.h"
#include "replication/applier.h"
#include "replication/stream.h"
#include "wal/wal.h"

namespace star {

/// The STAR engine: a simulated cluster of f full replicas and k partial
/// replicas running the phase-switching protocol of Section 4.
///
/// Threads per node: `workers_per_node` transaction workers, one control
/// thread (fence participation, Figure 5), and `io_threads_per_node` fabric
/// pollers that apply inbound replication.  A stand-alone coordinator thread
/// (its own fabric endpoint, as the paper deploys it "outside of STAR
/// instances") drives phase transitions.
///
/// Usage:
///   StarEngine engine(options, workload);
///   engine.Start();
///   ... let it run ...
///   Metrics m = engine.Stop();
class StarEngine {
 public:
  StarEngine(const StarOptions& options, const Workload& workload);
  ~StarEngine();

  StarEngine(const StarEngine&) = delete;
  StarEngine& operator=(const StarEngine&) = delete;

  /// Populates all replicas and launches worker/control/io/coordinator
  /// threads.  Returns once the first partitioned phase has begun.
  void Start();

  /// Runs a final fence, stops all threads, and returns the metrics
  /// accumulated since Start()/ResetStats().
  Metrics Stop();

  /// Snapshot of the counters without stopping (approximate while running).
  Metrics Snapshot() const;

  /// Clears counters and restarts the measurement clock (used to exclude
  /// warm-up).
  void ResetStats();

  // --- fault tolerance (Section 4.5) ---

  /// Fail-stop failure injection: the node's endpoint drops off the fabric.
  /// Detected by the coordinator at the next fence.
  void InjectFailure(int node);

  /// Asks the coordinator to re-admit a previously failed node at the next
  /// fence: the node re-fetches its partitions from healthy replicas
  /// (Case 1's "copies data from remote nodes"), then regains mastership.
  void RequestRejoin(int node);

  SystemState state() const { return state_.load(std::memory_order_acquire); }
  bool IsNodeHealthy(int node) const {
    return node_healthy_[node].load(std::memory_order_acquire);
  }

  // --- introspection (tests, benches, docs) ---

  Database* database(int node) { return nodes_[node]->db.get(); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t fence_count() const {
    return fence_count_.load(std::memory_order_relaxed);
  }
  double fence_seconds() const {
    return static_cast<double>(
               fence_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }
  uint64_t fence_stop_ns() const {
    return fence_stop_ns_.load(std::memory_order_relaxed);
  }
  uint64_t fence_drain_ns() const {
    return fence_drain_ns_.load(std::memory_order_relaxed);
  }
  double current_tau_p_ms() const { return tau_p_ms_; }
  double current_tau_s_ms() const { return tau_s_ms_; }
  int master_node() const { return master_node_; }
  const StarOptions& options() const { return options_; }
  net::Fabric* fabric() { return fabric_.get(); }

 private:
  struct WorkerState {
    explicit WorkerState(uint64_t seed, uint64_t tid_thread)
        : rng(seed), gen(tid_thread) {}
    Rng rng;
    TidGenerator gen;
    WorkerStats stats;
    GroupCommitTracker tracker;
    std::unique_ptr<ReplicationStream> stream;
    wal::WalWriter* wal = nullptr;  // owned by Node
    /// Partitions this worker masters in the partitioned phase (rebuilt on
    /// view changes, while workers are parked).
    std::vector<int> partitions;
    /// Per-destination scratch for synchronous replication, so the sync
    /// commit path reuses buffer capacity instead of allocating per commit
    /// (mirrors ReplicationStream's recycling on the async path).
    std::vector<WriteBuffer> sync_batches;
    std::vector<uint64_t> sync_counts;
    std::vector<std::pair<int, uint64_t>> sync_tokens;  // (dst, rpc token)
    size_t rr = 0;              // round-robin cursor over `partitions`
    uint64_t seen_seq = 0;      // last phase sequence acted upon
    uint32_t txn_since_yield = 0;
  };

  struct Node {
    int id = 0;
    std::unique_ptr<Database> db;
    std::unique_ptr<net::Endpoint> endpoint;
    std::unique_ptr<ReplicationCounters> counters;
    std::unique_ptr<ReplicationApplier> applier;
    std::vector<std::unique_ptr<wal::WalWriter>> wals;  // workers then io
    std::unique_ptr<wal::Checkpointer> checkpointer;
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::vector<std::thread> worker_threads;
    std::thread control_thread;

    /// Phase word: [ phase : 8 | sequence : 56 ].  Written by the control
    /// thread, polled by workers.
    std::atomic<uint64_t> phase_word{0};
    std::atomic<uint64_t> epoch{1};
    std::atomic<int> parked{0};
    uint64_t reported_committed = 0;  // control-thread only

    // Control-thread mailbox (requests from the coordinator RPCs).
    std::mutex mail_mu;
    std::condition_variable mail_cv;
    std::deque<net::Message> mail;
    std::atomic<bool> control_running{false};
  };

  static uint64_t PackPhase(Phase p, uint64_t seq) {
    return (static_cast<uint64_t>(p) << 56) | seq;
  }
  static Phase PhaseOf(uint64_t word) {
    return static_cast<Phase>(word >> 56);
  }
  static uint64_t SeqOf(uint64_t word) { return word & ((1ull << 56) - 1); }

  // Thread bodies.
  void WorkerLoop(Node& node, int worker_index);
  void ControlLoop(Node& node);
  void CoordinatorLoop();

  // Worker helpers.
  void RunPartitionedTxn(Node& node, WorkerState& w, SiloContext& ctx,
                         int partition);
  /// `sync_hook` is the worker's pre-constructed synchronous-replication
  /// hook (empty unless ReplicationMode::kSyncValue) — constructed once per
  /// worker so the sync commit path does not allocate a std::function per
  /// transaction.
  void RunSingleMasterTxn(Node& node, WorkerState& w, SiloContext& ctx,
                          const PreInstallHook& sync_hook);
  void ReplicateCommit(WorkerState& w, uint64_t tid, const WriteSet& writes,
                       bool allow_ops,
                       const std::vector<std::vector<int>>& targets);
  bool SyncReplicate(Node& node, WorkerState& w, uint64_t tid,
                     WriteSet& writes);
  void LogCommitToWal(WorkerState& w, uint64_t tid, const WriteSet& writes);

  // Coordinator helpers.
  struct FenceOutcome {
    bool ok = true;
    std::vector<int> failed_nodes;
    uint64_t committed_delta = 0;
  };
  FenceOutcome Fence(Phase ended_phase, double phase_seconds);
  void StartPhaseOnNodes(Phase phase);
  void HandleFailures(const std::vector<int>& newly_failed);
  void PerformRejoin(int node);
  void RecomputeAssignments();
  void UpdateTaus();

  std::vector<int> HealthyNodes() const;

  StarOptions options_;
  const Workload& workload_;
  int num_nodes_;
  int num_partitions_;
  Placement placement_;

  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Endpoint> coordinator_;  // endpoint id == num_nodes_
  std::vector<std::unique_ptr<Node>> nodes_;

  /// Replication targets per partition, derived from placement_ and node
  /// health; only mutated while all workers are parked (fence).
  /// replica_targets_: for partitioned-phase writers (storing minus the
  /// partition's master).  sm_targets_: for the single-master phase (every
  /// healthy node storing the partition except the designated master).
  std::vector<std::vector<int>> replica_targets_;
  std::vector<std::vector<int>> sm_targets_;

  std::thread coordinator_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> epoch_{1};
  std::atomic<SystemState> state_{SystemState::kStopped};
  std::vector<std::atomic<bool>> node_healthy_;

  // Rejoin requests (coordinator picks them up between iterations).
  std::mutex rejoin_mu_;
  std::vector<int> rejoin_requests_;

  // Monitored throughputs for Equations (1)-(2).
  double tp_ = 0;  // partitioned-phase committed txns/sec
  double ts_ = 0;  // single-master-phase committed txns/sec
  double tau_p_ms_ = 0;
  double tau_s_ms_ = 0;
  uint64_t last_single_delta_ = 0;  // committed in the last partitioned phase
  uint64_t last_cross_delta_ = 0;   // committed in the last single-master phase
  int master_node_ = 0;

  std::atomic<uint64_t> fence_count_{0};
  std::atomic<uint64_t> fence_ns_{0};
  std::atomic<uint64_t> fence_stop_ns_{0};   // stop+stats round time
  std::atomic<uint64_t> fence_drain_ns_{0};  // drain round time

  uint64_t measure_start_ns_ = 0;
  uint64_t fabric_bytes_at_reset_ = 0;
  uint64_t fabric_msgs_at_reset_ = 0;
};

}  // namespace star

#endif  // STAR_CORE_ENGINE_H_
