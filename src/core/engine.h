#ifndef STAR_CORE_ENGINE_H_
#define STAR_CORE_ENGINE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/epoch.h"
#include "cc/silo.h"
#include "cc/workload.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "core/options.h"
#include "net/endpoint.h"
#include "net/transport.h"
#include "replication/applier.h"
#include "replication/sharded_applier.h"
#include "replication/stream.h"
#include "wal/logger.h"
#include "wal/wal.h"

namespace star {

class SnapshotContext;

/// The STAR engine: a cluster of f full replicas and k partial replicas
/// running the phase-switching protocol of Section 4 over an abstract
/// message transport (simulated fabric or real TCP sockets — see
/// net/transport.h).
///
/// Threads per node: `workers_per_node` transaction workers, one control
/// thread (fence participation, Figure 5), and `io_threads_per_node`
/// transport pollers that apply inbound replication.  A stand-alone
/// coordinator thread (its own transport endpoint, as the paper deploys it
/// "outside of STAR instances") drives phase transitions.
///
/// Deployment scope: by default one engine hosts the whole cluster in one
/// process.  With StarOptions::multiprocess, each process constructs the
/// engine from identical options but hosts only its `hosted_nodes` (and
/// the coordinator where `hosted_coordinator` is set); cluster state that
/// used to be poked directly (health, mastership, partition assignment) is
/// then carried by a generation-numbered view broadcast (kViewChange) that
/// every process applies deterministically.
///
/// Usage:
///   StarEngine engine(options, workload);
///   engine.Start();
///   ... let it run ...
///   Metrics m = engine.Stop();
class StarEngine {
 public:
  StarEngine(const StarOptions& options, const Workload& workload);
  ~StarEngine();

  StarEngine(const StarEngine&) = delete;
  StarEngine& operator=(const StarEngine&) = delete;

  /// Populates all hosted replicas and launches worker/control/io (and,
  /// where hosted, coordinator) threads.
  void Start();

  /// Runs a final fence, stops all threads, and returns the metrics
  /// accumulated since Start()/ResetStats().  The multi-process coordinator
  /// additionally runs the shutdown round (see cluster_summary()).
  Metrics Stop();

  /// Snapshot of the counters without stopping (approximate while running).
  Metrics Snapshot() const;

  /// Clears counters and restarts the measurement clock (used to exclude
  /// warm-up).
  void ResetStats();

  // --- fault tolerance (Section 4.5) ---

  /// Fail-stop failure injection: the node's endpoint drops off the
  /// transport.  Detected by the coordinator at the next fence.  (In a
  /// multi-process deployment the equivalent is killing the node process.)
  void InjectFailure(int node);

  /// Asks the coordinator to re-admit a previously failed node at the next
  /// fence: the node re-fetches its partitions from healthy replicas
  /// (Case 1's "copies data from remote nodes"), then regains mastership.
  void RequestRejoin(int node);

  // --- multi-process deployment ---

  /// Node-process side of rejoin: RPCs kRejoinRequest to the coordinator
  /// with jittered exponential backoff (the ack may be dropped while this
  /// node is still marked down) until acknowledged.  Returns false once the
  /// budget expires; <= 0 uses StarOptions::rejoin_timeout_ms.
  bool RequestRejoinFromCoordinator(double timeout_ms = -1.0);

  /// Node-process side of shutdown: blocks until every hosted node has
  /// served the coordinator's kShutdown round (or the timeout expires).
  bool WaitForShutdown(double timeout_ms);

  /// Result of the multi-process shutdown round: cluster-wide committed
  /// counts and whether every reported replica of every partition carried
  /// the same checksum.
  struct ClusterSummary {
    bool valid = false;
    uint64_t committed = 0;
    uint64_t cross_partition = 0;
    int nodes_reporting = 0;
    bool converged = false;
  };
  const ClusterSummary& cluster_summary() const { return summary_; }

  SystemState state() const { return state_.load(std::memory_order_acquire); }
  bool IsNodeHealthy(int node) const {
    return node_healthy_[node].load(std::memory_order_acquire);
  }

  // --- introspection (tests, benches, docs) ---

  Database* database(int node) { return nodes_[node]->db.get(); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t fence_count() const {
    return fence_count_.load(std::memory_order_relaxed);
  }
  double fence_seconds() const {
    return static_cast<double>(
               fence_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }
  uint64_t fence_stop_ns() const {
    return fence_stop_ns_.load(std::memory_order_relaxed);
  }
  uint64_t fence_drain_ns() const {
    return fence_drain_ns_.load(std::memory_order_relaxed);
  }
  double current_tau_p_ms() const { return tau_p_ms_; }
  double current_tau_s_ms() const { return tau_s_ms_; }
  /// Cluster-wide durable epoch E_d: every transaction of every epoch
  /// <= E_d is fsynced on every healthy node.  On the coordinator this is
  /// the authoritative value; node processes report the last E_d a phase
  /// start published to them.
  uint64_t durable_epoch() const {
    if (coordinator_here_) {
      return cluster_durable_.load(std::memory_order_acquire);
    }
    uint64_t d = 0;
    for (const auto& n : nodes_) {
      if (n != nullptr) {
        d = std::max(d, n->durable_cluster.load(std::memory_order_acquire));
      }
    }
    return d;
  }
  /// Bytes fetched over the rejoin path by hosted nodes (delta or full).
  uint64_t rejoin_fetch_bytes() const {
    uint64_t b = 0;
    for (const auto& n : nodes_) {
      if (n != nullptr) {
        b += n->rejoin_bytes.load(std::memory_order_relaxed);
      }
    }
    return b;
  }
  int master_node() const {
    return master_node_.load(std::memory_order_relaxed);
  }
  const StarOptions& options() const { return options_; }
  net::Transport* transport() { return transport_.get(); }
  bool Hosts(int node) const { return nodes_[node] != nullptr; }
  /// The node's replay pipeline, or null when replay_shards == 1 (tests use
  /// this to inject apply delays and inspect routing).
  ShardedApplier* sharded_applier(int node) {
    return nodes_[node] != nullptr ? nodes_[node]->sharded.get() : nullptr;
  }
  /// The node's applied-epoch watermark (published by the fence, pinned by
  /// replica readers); null for nodes hosted elsewhere.
  const AppliedEpochWatermark* watermark(int node) const {
    return nodes_[node] != nullptr ? nodes_[node]->watermark.get() : nullptr;
  }

  // --- external request submission (serving front end, src/serve/) ---

  /// An externally submitted stored-procedure invocation.  The engine
  /// executes it on the thread class that owns its routing: partitioned
  /// workers for single-partition writes, the designated master's workers
  /// for cross-partition writes, replica readers for read-only requests.
  /// `done` is invoked exactly once, on the executing thread — at
  /// group-commit release for writes (results are never released before
  /// their epoch closes; `wait_durable` additionally holds them until the
  /// cluster durable epoch covers the commit, i.e. per-request
  /// commit_wait=durable), immediately for read-only snapshots and aborts.
  /// Ownership transfers to `done`; a null `done` makes the engine delete
  /// the object itself.
  struct ExternalTxn {
    TxnRequest req;
    uint64_t submit_ns = 0;     // injection timestamp; 0 = stamp at submit
    uint64_t min_epoch = 0;     // read-your-writes floor (read-only only)
    bool wait_durable = false;  // per-request commit_wait=durable
    void (*done)(ExternalTxn* t, TxnStatus status, uint64_t epoch) = nullptr;
    void* owner = nullptr;      // callback context (e.g. the serve server)
    uint64_t tag0 = 0, tag1 = 0, tag2 = 0;  // opaque callback words
  };

  /// Queues `t` for execution.  Returns false — ownership stays with the
  /// caller — when the target queue is full (backpressure: the caller
  /// sheds) or no hosted thread can serve the class (e.g. a read-only
  /// request with no replica readers for its partition).
  bool SubmitExternal(ExternalTxn* t);

  /// Queued-but-not-yet-executing external requests: the admission
  /// controller's queue-depth signal.
  size_t ExternalDepth() const;

 private:
  struct WorkerState {
    explicit WorkerState(uint64_t seed, uint64_t tid_thread)
        : rng(seed), gen(tid_thread) {}
    Rng rng;
    TidGenerator gen;
    WorkerStats stats;
    GroupCommitTracker tracker;
    std::unique_ptr<ReplicationStream> stream;
    wal::LogLane* wal = nullptr;  // owned by Node's logger pool
    /// Partitions this worker masters in the partitioned phase (rebuilt on
    /// view changes, while workers are parked).
    std::vector<int> partitions;
    /// Per-destination scratch for synchronous replication, so the sync
    /// commit path reuses buffer capacity instead of allocating per commit
    /// (mirrors ReplicationStream's recycling on the async path).
    std::vector<WriteBuffer> sync_batches;
    std::vector<uint64_t> sync_counts;
    std::vector<std::pair<int, uint64_t>> sync_tokens;  // (dst, rpc token)
    /// True while this worker sits in the parked loop; false whenever it
    /// may touch shared engine state (targets, partitions).  Unlike the
    /// node-level `parked` *counter* (which a worker bumps once per phase
    /// sequence, so it inflates across un-reset sequence bumps), this flag
    /// is a faithful per-worker quiescence bit: on a fenced node no phase
    /// start can unpark the worker, so flag==true is stable and the
    /// coordinator may rebuild shared state.
    std::atomic<bool> parked_flag{false};
    size_t rr = 0;              // round-robin cursor over `partitions`
    uint64_t seen_seq = 0;      // last phase sequence acted upon
    uint32_t txn_since_yield = 0;
  };

  /// State of one replica-read worker (cc/snapshot.h).  Cache-line padded
  /// like WorkerStats: readers on neighbouring slots must not false-share.
  struct alignas(64) ReaderState {
    explicit ReaderState(uint64_t seed) : rng(seed) {}
    Rng rng;
    std::atomic<uint64_t> committed{0};   // validated read-only txns
    std::atomic<uint64_t> aborted{0};     // gave up (missing record / user)
    std::atomic<uint64_t> conflicts{0};   // snapshot retries (replay raced)
    std::atomic<uint64_t> keys{0};        // read-set keys validated
    std::atomic<uint64_t> lag_epochs{0};  // sum of (node epoch - pinned W)
    /// True while the reader sits parked (pause request, unhealthy node, or
    /// thread exit) and provably touches no storage.
    std::atomic<bool> parked{false};
    uint32_t txn_since_yield = 0;  // owner-thread only
  };

  /// Cacheline-aligned: phase_word/epoch/parked are polled by every hosted
  /// worker while neighbouring Node allocations take unrelated traffic.
  struct STAR_CACHELINE_ALIGNED Node {
    int id = 0;
    std::unique_ptr<Database> db;
    std::unique_ptr<net::Endpoint> endpoint;
    std::unique_ptr<ReplicationCounters> counters;
    std::unique_ptr<ReplicationApplier> applier;
    /// Per-source applied-epoch watermark, published by this node's control
    /// thread at every drained fence; pinned by replica readers.
    std::unique_ptr<AppliedEpochWatermark> watermark;
    std::vector<std::unique_ptr<ReaderState>> readers;
    std::vector<std::thread> reader_threads;
    /// Quiesce request for the replica readers: set (and awaited via each
    /// reader's `parked` flag) around storage operations optimistic readers
    /// must not race — epoch revert's backup memcpy and the rejoin storage
    /// reset.  Workers need no such handshake: they park at fences anyway.
    std::atomic<bool> readers_pause{false};
    /// Readers serve only while the applied view says this node is fully
    /// healthy.  Load-bearing for rejoin: after the storage reset the
    /// watermark restarts at 0 but the snapshot *fetch* is still copying
    /// old epochs back in, so until the stage-3 view restores kNodeHealthy
    /// a "snapshot at W" here would be missing fetched-later records.
    std::atomic<bool> serving{true};
    /// Parallel replay pipeline (cluster.replay_shards >= 2); null when
    /// replication applies inline on the io thread (the serial default).
    std::unique_ptr<ShardedApplier> sharded;
    /// Batches ignored because their source was marked failed — the
    /// formerly invisible early-return in the kReplicationBatch handler.
    std::atomic<uint64_t> replication_ignored{0};
    /// Group-commit substrate: one lane per log producer (workers, io
    /// threads, replay shards), flushed by dedicated logger threads that
    /// advance this node's durable epoch (wal/logger.h).
    std::unique_ptr<wal::LoggerPool> logs;
    std::unique_ptr<wal::Checkpointer> checkpointer;
    /// Cluster durable epoch E_d as last published by the coordinator's
    /// phase starts: every epoch <= E_d is fsynced on every healthy node.
    /// Read by workers in commit_wait=durable mode and used as the
    /// checkpointer's stable ceiling.
    std::atomic<uint64_t> durable_cluster{0};
    /// Epoch this process recovered its database through at startup
    /// (recover_on_start); gates the delta rejoin fetch.
    uint64_t recovered_epoch = 0;
    /// Payload bytes fetched by this node's rejoin fetch (delta or full).
    std::atomic<uint64_t> rejoin_bytes{0};
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::vector<std::thread> worker_threads;
    std::thread control_thread;

    /// Phase word: [ phase : 8 | sequence : 56 ].  Written by the control
    /// thread, polled by workers.
    std::atomic<uint64_t> phase_word{0};
    /// Sticky fail-stop latch: set when this node is declared failed
    /// (InjectFailure / fence detection), cleared on rejoin.  The control
    /// thread ignores phase starts while set — a kPhaseStart that was
    /// already queued when the failure was declared must not unpark the
    /// workers of a written-off node (it would race the coordinator's
    /// assignment rebuild).
    std::atomic<bool> fenced{false};
    std::atomic<uint64_t> epoch{1};
    std::atomic<int> parked{0};
    uint64_t reported_committed = 0;  // control-thread only
    /// Fence-drain outcome staged at kFenceExpect, published to the
    /// watermark at the first kPhaseStart whose epoch proves the fence
    /// committed.  Control-thread only (both handlers run there; the
    /// coordinator's per-link FIFO orders them).
    uint64_t staged_epoch = 0;
    std::vector<uint8_t> staged_drained;

    // Control-thread mailbox (requests from the coordinator RPCs).
    Mutex mail_mu;
    CondVar mail_cv;
    std::deque<net::Message> mail STAR_GUARDED_BY(mail_mu);
    std::atomic<bool> control_running{false};
  };

  /// Per-node health in the generation-numbered cluster view.
  static constexpr uint8_t kNodeDown = 0;
  static constexpr uint8_t kNodeHealthy = 1;
  /// Healthy as a replication target, but masters nothing yet (rejoining
  /// node whose snapshot fetch is in flight).
  static constexpr uint8_t kNodeRejoining = 2;

  static uint64_t PackPhase(Phase p, uint64_t seq) {
    return (static_cast<uint64_t>(p) << 56) | seq;
  }
  static Phase PhaseOf(uint64_t word) {
    return static_cast<Phase>(word >> 56);
  }
  static uint64_t SeqOf(uint64_t word) { return word & ((1ull << 56) - 1); }

  // Thread bodies.
  void WorkerLoop(Node& node, int worker_index);
  void ReaderLoop(Node& node, int reader_index);
  void ControlLoop(Node& node);
  void CoordinatorLoop();

  /// Parks every replica reader of `node` (waits until each is provably out
  /// of storage) / releases them.  No-ops without readers.
  void PauseReaders(Node& node);
  void ResumeReaders(Node& node);

  /// A bounded multi-producer queue of externally submitted requests.
  /// Spinlocked deque rather than an MPSC ring because the consumer
  /// migrates with phase switches and view changes (partitioned-phase owner
  /// vs the single-master's workers) — there is no single consumer to
  /// dedicate a ring to — and serving rates sit far below the lock's
  /// capacity.  `depth` shadows q.size() so admission control and the
  /// workers' empty-poll never take the lock.
  struct STAR_CACHELINE_ALIGNED ExternalQueue {
    SpinLock mu;
    std::deque<ExternalTxn*> q STAR_GUARDED_BY(mu);
    std::atomic<size_t> depth{0};

    bool Push(ExternalTxn* t, size_t cap) {
      SpinLockGuard g(mu);
      if (q.size() >= cap) return false;
      q.push_back(t);
      depth.store(q.size(), std::memory_order_relaxed);
      return true;
    }
    ExternalTxn* Pop() {
      if (depth.load(std::memory_order_relaxed) == 0) return nullptr;
      SpinLockGuard g(mu);
      if (q.empty()) return nullptr;
      ExternalTxn* t = q.front();
      q.pop_front();
      depth.store(q.size(), std::memory_order_relaxed);
      return t;
    }
  };

  // External-request execution (see ExternalTxn).
  void RunExternalPartitioned(Node& node, WorkerState& w, SiloContext& ctx,
                              ExternalTxn* t);
  bool RunExternalSingleMaster(Node& node, WorkerState& w, SiloContext& ctx,
                               const PreInstallHook& sync_hook,
                               ExternalTxn* t);
  void RunExternalRead(Node& node, ReaderState& r, SnapshotContext& ctx,
                       ExternalTxn* t);
  /// GroupCommitTracker::DoneFn trampoline: epoch released (or dropped by a
  /// revert) → fire the request's completion.
  static void ExternalReleased(void* ctx, bool committed, uint64_t epoch);
  /// Fires `done` exactly once and hands it ownership of `t`.
  static void CompleteExternal(ExternalTxn* t, TxnStatus status,
                               uint64_t epoch);
  /// Fails every queued external request (engine shutdown).
  void FailExternalQueues();

  // Worker helpers.
  void RunPartitionedTxn(Node& node, WorkerState& w, SiloContext& ctx,
                         int partition);
  /// `sync_hook` is the worker's pre-constructed synchronous-replication
  /// hook (empty unless ReplicationMode::kSyncValue) — constructed once per
  /// worker so the sync commit path does not allocate a std::function per
  /// transaction.
  void RunSingleMasterTxn(Node& node, WorkerState& w, SiloContext& ctx,
                          const PreInstallHook& sync_hook);
  void ReplicateCommit(WorkerState& w, uint64_t tid, const WriteSet& writes,
                       bool allow_ops,
                       const std::vector<std::vector<int>>& targets);
  bool SyncReplicate(Node& node, WorkerState& w, uint64_t tid,
                     WriteSet& writes);
  void LogCommitToWal(WorkerState& w, uint64_t tid, const WriteSet& writes);

  // Coordinator helpers.
  struct FenceOutcome {
    bool ok = true;
    std::vector<int> failed_nodes;
    uint64_t committed_delta = 0;
  };
  FenceOutcome Fence(Phase ended_phase, double phase_seconds);
  void StartPhaseOnNodes(Phase phase);
  /// Folds a fence outcome into the per-node consecutive-miss streaks
  /// (coordinator thread only) and returns the nodes whose streak reached
  /// StarOptions::fence_miss_threshold — the ones to actually write off.
  /// A node that answered (or a fully clean fence) resets its streak:
  /// that is what distinguishes slow from dead.
  std::vector<int> RegisterFenceMisses(const FenceOutcome& out);
  void HandleFailures(const std::vector<int>& newly_failed);
  void PerformRejoin(int node, uint64_t nonce);
  void UpdateTaus();
  /// First full replica healthy in the coordinator's authoritative view,
  /// falling back to the current designation.
  int ComputeMaster() const;
  /// Ships the authoritative view (plus the epoch to revert, 0 for none)
  /// to every healthy node and waits for the acks.
  void BroadcastView(uint64_t gen, uint64_t revert_epoch, int master);
  void CollectClusterSummary();

  // View application (every process).
  /// Installs a cluster view: health bits, transport up/down, designated
  /// master, replication targets, and hosted workers' partition lists.
  /// Generation-guarded and idempotent; returns true when `gen` was newly
  /// applied.  Callers must only invoke this while hosted workers are
  /// parked (construction, fences, view changes).
  bool ApplyView(uint64_t gen, int master, const std::vector<uint8_t>& status);
  void RebuildAssignmentsLocked(const std::vector<uint8_t>& status)
      STAR_REQUIRES(view_mu_);
  /// Reverts the uncommitted epoch (nonzero `revert_epoch`) and resets the
  /// replication counters on every hosted node.
  void RevertLocal(uint64_t revert_epoch);

  std::vector<int> HealthyNodes() const;

  StarOptions options_;
  const Workload& workload_;
  int num_nodes_;
  int num_partitions_;
  Placement placement_;
  bool coordinator_here_ = true;

  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::Endpoint> coordinator_;  // endpoint id == num_nodes_
  /// nodes_[i] is null when node i lives in another process.
  std::vector<std::unique_ptr<Node>> nodes_;

  /// External request queues (serving front end): one per partition for
  /// single-partition writes (drained by the partitioned-phase owner, or by
  /// the master's workers during the single-master phase), one for
  /// cross-partition writes (master's workers only), one per hosted node
  /// for read-only requests (replica readers).
  std::vector<std::unique_ptr<ExternalQueue>> external_part_q_;
  std::unique_ptr<ExternalQueue> external_cross_q_;
  std::vector<std::unique_ptr<ExternalQueue>> external_read_q_;
  /// partition → hosted nodes with replica readers storing it (computed at
  /// Start; static routing — rejoin/failure re-routing is the serve layer's
  /// retry problem, not the queue's).
  std::vector<std::vector<int>> read_route_;
  std::atomic<size_t> read_rr_{0};
  /// Gate for SubmitExternal: true between Start() and the head of Stop().
  std::atomic<bool> external_accepting_{false};

  /// Replication targets per partition, derived from the applied view;
  /// only mutated while all hosted workers are parked (fence).
  /// replica_targets_: for partitioned-phase writers (storing minus the
  /// partition's master).  sm_targets_: for the single-master phase (every
  /// healthy node storing the partition except the designated master).
  std::vector<std::vector<int>> replica_targets_;
  std::vector<std::vector<int>> sm_targets_;

  std::thread coordinator_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> epoch_{1};
  /// Coordinator-side cluster durable epoch: min over healthy nodes'
  /// fence-reported durable watermarks, clamped to the last committed
  /// epoch (epoch_ - 1) so a node that fsynced an epoch the fence later
  /// reverted can never drag E_d past what actually committed.
  std::atomic<uint64_t> cluster_durable_{0};
  std::atomic<SystemState> state_{SystemState::kStopped};
  std::vector<std::atomic<bool>> node_healthy_;

  /// Authoritative view, written only by the coordinator thread.
  std::vector<uint8_t> node_status_;
  uint64_t view_gen_ = 1;
  /// Consecutive fence misses per node (coordinator thread only; see
  /// RegisterFenceMisses / StarOptions::fence_miss_threshold).
  std::vector<int> fence_miss_;
  /// Applied-view guard: handlers on several control threads may receive
  /// the same broadcast; the first applies, the rest ack.
  Mutex view_mu_;
  uint64_t applied_view_gen_ STAR_GUARDED_BY(view_mu_) = 0;
  /// Last status applied per node, so transport up/down only follows
  /// *transitions* (an InjectFailure cut must survive unrelated views).
  std::vector<uint8_t> applied_status_ STAR_GUARDED_BY(view_mu_);

  // Rejoin requests: (node, incarnation nonce) pairs the coordinator picks
  // up between iterations.
  static constexpr uint64_t kInProcessNonce = 1;
  Mutex rejoin_mu_;
  std::vector<std::pair<int, uint64_t>> rejoin_requests_
      STAR_GUARDED_BY(rejoin_mu_);
  /// Per node: the incarnation nonce whose rejoin was granted (0 = none).
  /// The coordinator acks retried kRejoinRequests carrying this nonce and
  /// treats any other nonce as evidence of a fresh restart.  Cleared when
  /// the node fails (again).
  std::vector<std::atomic<uint64_t>> granted_nonce_;

  /// False only in a rejoining process before its re-admission view: the
  /// control plane ignores fences/pings so the fresh incarnation cannot
  /// impersonate the dead node it replaces.
  std::atomic<bool> admitted_{true};

  // Multi-process shutdown handshake.
  std::atomic<int> shutdown_seen_{0};
  ClusterSummary summary_;

  // Monitored throughputs for Equations (1)-(2).
  double tp_ = 0;  // partitioned-phase committed txns/sec
  double ts_ = 0;  // single-master-phase committed txns/sec
  double tau_p_ms_ = 0;
  double tau_s_ms_ = 0;
  uint64_t last_single_delta_ = 0;  // committed in the last partitioned phase
  uint64_t last_cross_delta_ = 0;   // committed in the last single-master phase
  /// Designated single-master; written by ApplyView, read by every worker's
  /// standby check (hence atomic — a worker of a freshly failed node may
  /// still be draining its current transaction when the view changes).
  std::atomic<int> master_node_{0};

  std::atomic<uint64_t> fence_count_{0};
  std::atomic<uint64_t> fence_ns_{0};
  std::atomic<uint64_t> fence_stop_ns_{0};   // stop+stats round time
  std::atomic<uint64_t> fence_drain_ns_{0};  // drain round time

  uint64_t measure_start_ns_ = 0;
  uint64_t net_bytes_at_reset_ = 0;
  uint64_t net_msgs_at_reset_ = 0;
  uint64_t net_dropped_bytes_at_reset_ = 0;
  uint64_t net_dropped_msgs_at_reset_ = 0;
};

}  // namespace star

#endif  // STAR_CORE_ENGINE_H_
