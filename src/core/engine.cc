#include "core/engine.h"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "cc/snapshot.h"
#include "storage/checksum.h"

namespace star {

namespace {

/// Payload helpers for the coordination messages (Figure 5's protocol).

std::string EncodePhaseStart(Phase phase, uint64_t epoch, int master,
                             uint64_t durable) {
  WriteBuffer b;
  b.Write<uint8_t>(static_cast<uint8_t>(phase));
  b.Write<uint64_t>(epoch);
  b.Write<int32_t>(master);
  // Trailing field (readers treat it as optional for compatibility): the
  // cluster durable epoch E_d the fence derived — the coordinator's
  // "durable through E_d" announcement piggybacking on the phase start.
  b.Write<uint64_t>(durable);
  return b.Release();
}

std::string EncodeExpected(const std::vector<uint64_t>& expected) {
  WriteBuffer b;
  b.Write<uint32_t>(static_cast<uint32_t>(expected.size()));
  for (uint64_t e : expected) b.Write<uint64_t>(e);
  return b.Release();
}

/// The generation-numbered view broadcast: every process installs the same
/// health/mastership state, so multi-process deployments never rely on
/// shared memory.
std::string EncodeView(uint64_t gen, uint64_t revert_epoch, int master,
                       const std::vector<uint8_t>& status) {
  WriteBuffer b;
  b.Write<uint64_t>(gen);
  b.Write<uint64_t>(revert_epoch);
  b.Write<int32_t>(master);
  b.Write<uint32_t>(static_cast<uint32_t>(status.size()));
  for (uint8_t s : status) b.Write<uint8_t>(s);
  return b.Release();
}

}  // namespace

StarEngine::StarEngine(const StarOptions& options, const Workload& workload)
    : options_(options),
      workload_(workload),
      num_nodes_(options.cluster.nodes()),
      num_partitions_(options.cluster.num_partitions()),
      placement_(Placement::Star(options.cluster.full_replicas,
                                 options.cluster.partial_replicas,
                                 num_partitions_)),
      node_healthy_(num_nodes_) {
  // Hosting scope: by default one process hosts the whole cluster; in
  // multi-process mode only the listed nodes (and maybe the coordinator).
  coordinator_here_ = !options_.multiprocess || options_.hosted_coordinator;
  std::vector<bool> hosted(num_nodes_, !options_.multiprocess);
  if (options_.multiprocess) {
    assert(options_.transport == net::TransportKind::kTcp &&
           "multi-process deployment requires the TCP transport");
    for (int i : options_.hosted_nodes) {
      if (i >= 0 && i < num_nodes_) hosted[i] = true;
    }
  }

  net::TransportConfig tc;
  tc.kind = options_.transport;
  tc.sim.link_latency_us = options_.cluster.link_latency_us;
  tc.sim.local_latency_us = options_.cluster.local_latency_us;
  tc.sim.bandwidth_gbps = options_.cluster.bandwidth_gbps;
  tc.tcp.host = options_.tcp_host;
  tc.tcp.base_port = options_.tcp_base_port;
  tc.fault = options_.fault;
  if (options_.multiprocess) {
    for (int i = 0; i < num_nodes_; ++i) {
      if (hosted[i]) tc.tcp.local_endpoints.push_back(i);
    }
    if (coordinator_here_) tc.tcp.local_endpoints.push_back(num_nodes_);
  }
  // +1 endpoint: the stand-alone phase-switching coordinator (Section 4.3).
  // It needs an io thread of its own to receive fence responses.
  transport_ = net::MakeTransport(num_nodes_ + 1, tc);
  if (coordinator_here_) {
    coordinator_ = std::make_unique<net::Endpoint>(transport_.get(),
                                                   num_nodes_,
                                                   /*io_threads=*/1);
    // Restarted node processes announce themselves here.  A request is
    // itself proof the node's process restarted — under fail-stop the old
    // incarnation cannot speak — so it is queued even when the crash has
    // not been detected by a fence timeout yet (PerformRejoin runs the
    // failure handling first in that case).  The ack is only sent once the
    // rejoin has been granted; until then the requester keeps retrying.
    coordinator_->RegisterHandler(
        net::MsgType::kRejoinRequest, [this](net::Message&& m) {
          ReadBuffer in(m.payload);
          int32_t id = in.Read<int32_t>();
          uint64_t nonce = in.Read<uint64_t>();
          if (id < 0 || id >= num_nodes_ || nonce == 0) return;
          if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
            std::fprintf(stderr,
                         "[star] %.3f kRejoinRequest id=%d nonce=%llu "
                         "granted=%llu\n",
                         NowNanos() / 1e9, id, (unsigned long long)nonce,
                         (unsigned long long)granted_nonce_[id].load(
                             std::memory_order_acquire));
          }
          if (granted_nonce_[id].load(std::memory_order_acquire) == nonce) {
            coordinator_->Respond(m, net::MsgType::kRejoinRequest, "");
          } else {
            MutexLock g(rejoin_mu_);
            bool pending = false;
            for (auto& [r, n] : rejoin_requests_) {
              pending |= (r == id && n == nonce);
            }
            if (!pending) rejoin_requests_.emplace_back(id, nonce);
          }
        });
  }

  bool durable = options_.durable_logging;
  if (durable) {
    std::filesystem::create_directories(options_.log_dir);
  }

  auto schemas = workload_.Schemas();
  int workers = options_.cluster.workers_per_node;
  int io_threads = options_.cluster.io_threads_per_node;
  // replay_shards == 0 autosizes from the host core budget; the resolved
  // count of 1 then still uses the sharded pipeline's single prefetched
  // worker, while an explicit 1 keeps the legacy inline io-thread apply.
  int replay_shards = ResolveReplayShards(options_.cluster.replay_shards);
  bool sharded_replay =
      options_.cluster.replay_shards == 0 || replay_shards >= 2;

  for (int i = 0; i < num_nodes_; ++i) {
    node_healthy_[i].store(true, std::memory_order_relaxed);
    if (!hosted[i]) {
      nodes_.push_back(nullptr);
      continue;
    }
    auto node = std::make_unique<Node>();
    node->id = i;
    node->db = std::make_unique<Database>(schemas, num_partitions_,
                                          placement_.StoredPartitions(i),
                                          options_.two_version);
    node->endpoint =
        std::make_unique<net::Endpoint>(transport_.get(), i, io_threads);
    // One applied-counter lane per replay shard, so parallel replay workers
    // never serialise on a shared cacheline (lane 0 doubles as the inline
    // io-thread applier's lane), and one sent-counter lane per worker so hot
    // senders never false-share one AddSent cacheline.
    node->counters = std::make_unique<ReplicationCounters>(
        num_nodes_, replay_shards, /*sent_lanes=*/workers);
    node->watermark = std::make_unique<AppliedEpochWatermark>(num_nodes_);
    for (int r = 0; r < options_.replica_read_workers; ++r) {
      uint64_t seed = options_.cluster.seed * 888121ull + i * 131 + r;
      node->readers.push_back(std::make_unique<ReaderState>(seed));
    }
    node->applier = std::make_unique<ReplicationApplier>(node->db.get(),
                                                         node->counters.get());
    if (sharded_replay) {
      ShardedApplier::Options so;
      so.shards = replay_shards;
      node->sharded = std::make_unique<ShardedApplier>(
          node->db.get(), node->counters.get(), so);
      node->sharded->set_release_hook(
          [ep = node->endpoint.get()](std::string&& payload) {
            ep->ReleasePayload(std::move(payload));
          });
    }

    // Log lanes: one per worker thread, then one per io thread, then one
    // per replay shard (replicated writes are logged by the thread that
    // applies them, Section 5).  The lanes hand published buffers to the
    // logger-pool fleet, which owns write()/fsync() and advances this
    // node's durable epoch — commit latency no longer contains storage
    // latency (group commit, wal/logger.h).
    if (durable) {
      wal::LoggerPoolOptions lo;
      lo.dir = options_.log_dir;
      lo.node = i;
      lo.num_lanes =
          workers + io_threads + (sharded_replay ? replay_shards : 0);
      lo.num_loggers = options_.log_workers;
      lo.fsync = options_.fsync;
      lo.affinity = options_.logger_affinity;
      lo.segment_bytes = options_.wal_segment_bytes;
      node->logs = std::make_unique<wal::LoggerPool>(lo);
      if (!options_.rejoining) {
        // This incarnation's logs are a complete recovery basis from the
        // start (the node populates or recovers locally).  A rejoining
        // process must wait: its basis is complete only once the rejoin
        // fetch finishes (kRejoinFetch marks it then).
        node->logs->MarkComplete();
      }
      node->applier->set_wal_hook(
          [lane = node->logs->lane(workers)](int32_t t, int32_t p,
                                             uint64_t key, uint64_t tid,
                                             std::string_view val,
                                             bool deleted) {
            // io threads share the trailing lanes; with one io thread (the
            // default) this is the single lane at index `workers`.
            if (deleted) {
              lane->AppendDelete(t, p, key, tid);
            } else {
              lane->Append(t, p, key, tid, val);
            }
          });
      if (sharded_replay) {
        // Each replay worker owns its own lane — appends never contend,
        // and the control thread's fence marks (kFenceExpect) cover these
        // trailing lanes like the io-thread lanes.
        for (int s = 0; s < replay_shards; ++s) {
          wal::LogLane* lane = node->logs->lane(workers + io_threads + s);
          node->sharded->set_wal_hook(
              s, [lane](int32_t t, int32_t p, uint64_t key, uint64_t tid,
                        std::string_view val, bool deleted) {
                if (deleted) {
                  lane->AppendDelete(t, p, key, tid);
                } else {
                  lane->Append(t, p, key, tid, val);
                }
              });
        }
      }
      if (options_.checkpointing) {
        // The checkpoint ceiling is the cluster durable epoch: a checkpoint
        // must never capture an epoch that could still revert, and E_d by
        // construction only covers committed, everywhere-fsynced epochs.
        node->checkpointer = std::make_unique<wal::Checkpointer>(
            node->db.get(), options_.log_dir, i, &node->durable_cluster,
            static_cast<size_t>(std::max(0, options_.checkpoint_max_chain)));
        node->logs->AttachCheckpointer(node->checkpointer.get(),
                                       options_.checkpoint_period_ms);
      }
    }

    for (int w = 0; w < workers; ++w) {
      uint64_t seed = options_.cluster.seed * 1000003ull + i * 131 + w;
      uint64_t tid_thread = static_cast<uint64_t>(i) * workers + w;
      auto ws = std::make_unique<WorkerState>(seed, tid_thread);
      ws->stream = std::make_unique<ReplicationStream>(
          node->endpoint.get(), node->counters.get(), num_nodes_,
          options_.cluster.rep_flush_bytes, /*lane=*/w);
      if (durable) ws->wal = node->logs->lane(w);
      node->workers.push_back(std::move(ws));
    }

    // --- io-thread handlers ---
    Node* n = node.get();
    node->endpoint->RegisterHandler(
        net::MsgType::kReplicationBatch, [this, n](net::Message&& m) {
          // Replication from a node declared failed is ignored (Section
          // 4.5.2: healthy nodes "safely ignore all replication messages
          // from failed nodes").  Counted: a silently vanishing batch is
          // indistinguishable from a replication bug otherwise.
          if (!node_healthy_[m.src].load(std::memory_order_acquire)) {
            n->replication_ignored.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          if (n->sharded != nullptr && m.rpc_id == 0) {
            // Route to the replay workers without copying: the batch takes
            // the payload with it, and the last worker to finish a segment
            // returns the buffer to the pool (zero-copy dispatch contract).
            n->sharded->Submit(m.src, std::move(m.payload));
            return;
          }
          // Inline serial apply: the default path, and the synchronous-
          // replication path even when sharding is on — a sync commit's ack
          // certifies the write has been *applied*, so it must not ride an
          // asynchronous queue.  (Sync batches are value entries, order-free
          // under the Thomas rule against anything the shards apply.)
          n->applier->ApplyBatch(m.src, m.payload);
          if (m.rpc_id != 0) {  // synchronous replication wants an ack
            n->endpoint->Respond(m, net::MsgType::kReplicationAck, "");
          }
        });
    node->endpoint->RegisterHandler(
        net::MsgType::kSnapshotRequest, [n](net::Message&& m) {
          ReadBuffer in(m.payload);
          int32_t t = in.Read<int32_t>();
          int32_t p = in.Read<int32_t>();
          WriteBuffer out;
          HashTable* ht = n->db->table(t, p);
          if (ht != nullptr) {
            std::string scratch(ht->value_size(), '\0');
            ht->ForEach([&](uint64_t key, Record* rec, char* value) {
              uint64_t w =
                  rec->ReadStable(scratch.data(), scratch.size(), value);
              if (Record::IsAbsent(w)) return;
              out.Write<uint64_t>(key);
              out.Write<uint64_t>(Record::TidOf(w));
              out.WriteBytes(scratch.data(), scratch.size());
            });
          }
          n->endpoint->Respond(m, net::MsgType::kSnapshotResponse,
                               out.Release());
        });
    // Delta donor for the incremental rejoin path: streams only records —
    // including tombstones — whose TID epoch moved past `since_epoch`.  A
    // rejoining node that recovered locally through epoch R asks for
    // (R, now] instead of the whole table; bytes shipped scale with the
    // delta, not the data size.
    node->endpoint->RegisterHandler(
        net::MsgType::kDeltaRequest, [n](net::Message&& m) {
          ReadBuffer in(m.payload);
          int32_t t = in.Read<int32_t>();
          int32_t p = in.Read<int32_t>();
          uint64_t since = in.Read<uint64_t>();
          WriteBuffer out;
          HashTable* ht = n->db->table(t, p);
          if (ht != nullptr) {
            std::string scratch(ht->value_size(), '\0');
            ht->ForEach([&](uint64_t key, Record* rec, char* value) {
              uint64_t w =
                  rec->ReadStable(scratch.data(), scratch.size(), value);
              uint64_t tid = Record::TidOf(w);
              if (tid == 0 || Tid::Epoch(tid) <= since) return;
              bool deleted = Record::IsAbsent(w);
              out.Write<uint64_t>(key);
              out.Write<uint64_t>(tid);
              out.Write<uint8_t>(deleted ? 1 : 0);
              if (!deleted) out.WriteBytes(scratch.data(), scratch.size());
            });
          }
          n->endpoint->Respond(m, net::MsgType::kDeltaResponse,
                               out.Release());
        });
    // Liveness probe for the multi-process startup barrier.  Gated on
    // admission like the fence messages: a fresh rejoin process must look
    // dead until the coordinator re-admits it.
    node->endpoint->RegisterHandler(
        net::MsgType::kPing, [this, n](net::Message&& m) {
          if (!admitted_.load(std::memory_order_acquire)) return;
          n->endpoint->Respond(m, net::MsgType::kPong, "");
        });
    // Control-plane messages are executed serially by the control thread.
    for (auto type :
         {net::MsgType::kPhaseStart, net::MsgType::kFenceStop,
          net::MsgType::kFenceExpect, net::MsgType::kViewChange,
          net::MsgType::kRejoinFetch, net::MsgType::kShutdown}) {
      node->endpoint->RegisterHandler(type, [n](net::Message&& m) {
        {
          MutexLock g(n->mail_mu);
          n->mail.push_back(std::move(m));
        }
        n->mail_cv.NotifyOne();
      });
    }

    nodes_.push_back(std::move(node));
  }

  replica_targets_.resize(num_partitions_);
  sm_targets_.resize(num_partitions_);

  // External request queues (serving front end).  Allocated even when no
  // server attaches: the per-iteration cost for workers is one relaxed
  // depth load per poll.
  external_part_q_.reserve(static_cast<size_t>(num_partitions_));
  for (int p = 0; p < num_partitions_; ++p) {
    external_part_q_.push_back(std::make_unique<ExternalQueue>());
  }
  external_cross_q_ = std::make_unique<ExternalQueue>();
  external_read_q_.resize(static_cast<size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    if (nodes_[n] != nullptr) {
      external_read_q_[n] = std::make_unique<ExternalQueue>();
    }
  }
  read_route_.resize(static_cast<size_t>(num_partitions_));

  // A rejoining process stays invisible to fences and pings until the
  // coordinator's re-admission view arrives; everyone else is a member
  // from the start.
  admitted_.store(!options_.rejoining, std::memory_order_release);

  // Initial view: everyone healthy, first full replica designated master.
  granted_nonce_ = std::vector<std::atomic<uint64_t>>(num_nodes_);
  for (auto& g : granted_nonce_) g.store(0, std::memory_order_relaxed);
  node_status_.assign(num_nodes_, kNodeHealthy);
  applied_status_.assign(num_nodes_, kNodeHealthy);
  ApplyView(view_gen_, ComputeMaster(), node_status_);
}

StarEngine::~StarEngine() {
  if (running_.load(std::memory_order_acquire)) Stop();
}

std::vector<int> StarEngine::HealthyNodes() const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes_; ++i) {
    if (node_healthy_[i].load(std::memory_order_acquire)) out.push_back(i);
  }
  return out;
}

int StarEngine::ComputeMaster() const {
  // Designated master for the single-master phase: the first fully healthy
  // full replica (a rejoining one masters nothing until its fetch is done).
  for (int i = 0; i < options_.cluster.full_replicas; ++i) {
    if (node_status_[i] == kNodeHealthy) return i;
  }
  return master_node_.load(std::memory_order_relaxed);
}

bool StarEngine::ApplyView(uint64_t gen, int master,
                           const std::vector<uint8_t>& status) {
  MutexLock g(view_mu_);
  if (gen <= applied_view_gen_) return false;
  applied_view_gen_ = gen;
  master_node_.store(master, std::memory_order_relaxed);
  for (int i = 0; i < num_nodes_; ++i) {
    bool healthy = status[i] != kNodeDown;
    node_healthy_[i].store(healthy, std::memory_order_release);
    // Transport links follow *transitions* only: a node the view still
    // believes healthy may have been cut manually by InjectFailure and must
    // not be resurrected by an unrelated view change.
    if (status[i] == kNodeDown && applied_status_[i] != kNodeDown) {
      transport_->SetDown(i, true);
    } else if (status[i] != kNodeDown && applied_status_[i] == kNodeDown) {
      transport_->SetDown(i, false);
    }
    applied_status_[i] = status[i];
  }
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    // A failed source leaves every hosted watermark's minimum (its stream
    // is ignored from here on, so it could never publish again and would
    // freeze the snapshot watermark forever).  A rejoining source stays in:
    // it replicates normally and is fence-drained like a healthy one.
    for (int i = 0; i < num_nodes_; ++i) {
      node->watermark->SetActive(i, status[i] != kNodeDown);
    }
    // Replica readers serve only from fully healthy nodes (see Node::serving
    // — a rejoining node's watermark is ahead of its still-fetching store).
    node->serving.store(status[node->id] == kNodeHealthy,
                        std::memory_order_release);
  }
  RebuildAssignmentsLocked(status);
  return true;
}

void StarEngine::RebuildAssignmentsLocked(const std::vector<uint8_t>& status) {
  // Deterministic function of (placement, status, master): every process
  // computes the same assignment from the same broadcast, so mastership
  // never depends on shared memory.  Callers hold view_mu_ and hosted
  // workers are parked.
  int workers = options_.cluster.workers_per_node;

  // Effective master of each partition: its placement master if fully
  // healthy, otherwise the first healthy full replica (Case 3's "mastership
  // of records on lost partitions [is] reassigned to the nodes with full
  // replicas"; a rejoining node's partitions park there too until its
  // snapshot fetch completes).
  int full_fallback = -1;
  for (int i = 0; i < options_.cluster.full_replicas; ++i) {
    if (status[i] == kNodeHealthy) {
      full_fallback = i;
      break;
    }
  }
  std::vector<int> eff_master(num_partitions_, -1);
  for (int p = 0; p < num_partitions_; ++p) {
    int m = placement_.master(p);
    if (status[m] != kNodeHealthy) m = full_fallback;
    eff_master[p] = m;
    replica_targets_[p].clear();
    for (int s : placement_.storing(p)) {
      if (s != m && status[s] != kNodeDown) {
        replica_targets_[p].push_back(s);
      }
    }
    sm_targets_[p].clear();
    int master = master_node_.load(std::memory_order_relaxed);
    for (int s : placement_.storing(p)) {
      if (s != master && status[s] != kNodeDown) {
        sm_targets_[p].push_back(s);
      }
    }
  }

  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    for (auto& w : node->workers) w->partitions.clear();
    int next = 0;
    for (int p = 0; p < num_partitions_; ++p) {
      if (eff_master[p] != node->id) continue;
      node->workers[next % workers]->partitions.push_back(p);
      ++next;
    }
  }
}

void StarEngine::RevertLocal(uint64_t revert_epoch) {
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    // Failed nodes are out of the view: they are never revert targets (the
    // broadcast only reaches healthy nodes), and — when hosted — their
    // parked workers may already be exiting through a concurrent Stop(),
    // so their trackers must not be touched from this thread.
    if (!node_healthy_[node->id].load(std::memory_order_acquire)) continue;
    // Quiesce the replay pipeline: queued batches belong to the epoch
    // being reverted, so they must be applied (the revert below discards
    // them) — a replay worker installing a reverted-epoch write *after*
    // RevertEpoch would resurrect discarded data and diverge this replica.
    // The wait is unbounded on purpose (like PerformRejoin's): all workers
    // are parked cluster-wide here, so the queues only shrink.
    if (node->sharded != nullptr) node->sharded->Drain();
    if (revert_epoch != 0) {
      // Poison the reverted epoch in the WAL *before* discarding it from
      // memory: the revert entry drags every lane's durable watermark below
      // revert_epoch, so a crash after this point can never replay writes
      // the cluster just agreed to discard (wal/logger.h).
      if (node->logs != nullptr) node->logs->MarkRevert(revert_epoch);
      // Replica readers must not race the revert: RevertEpoch restores the
      // backup copy with a plain memcpy *before* the word store, which a
      // concurrent optimistic read could observe as a torn value under a
      // matching word.  Clamp the watermark first so no reader re-pins the
      // dying epoch, then park them for the duration.
      node->watermark->Revert(revert_epoch);
      PauseReaders(*node);
      node->db->RevertEpoch(revert_epoch);
      ResumeReaders(*node);
      for (auto& w : node->workers) {
        w->tracker.DropFrom(revert_epoch);
      }
    }
    node->counters->Reset();
  }
}

void StarEngine::PauseReaders(Node& node) {
  if (node.readers.empty()) return;
  node.readers_pause.store(true, std::memory_order_release);
  for (auto& r : node.readers) {
    // Terminates: a paused reader parks within one bounded transaction
    // attempt (bounded optimistic reads, bounded retry budget), and an
    // exiting reader parks on its way out.
    while (!r->parked.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void StarEngine::ResumeReaders(Node& node) {
  if (node.readers.empty()) return;
  node.readers_pause.store(false, std::memory_order_release);
}

void StarEngine::BroadcastView(uint64_t gen, uint64_t revert_epoch,
                               int master) {
  std::string payload = EncodeView(gen, revert_epoch, master, node_status_);
  auto healthy = HealthyNodes();
  std::vector<uint64_t> tokens;
  for (int i : healthy) {
    tokens.push_back(
        coordinator_->CallAsync(i, net::MsgType::kViewChange, payload));
  }
  Rng rng(gen ^ 0x5bd1e995ull);
  for (size_t k = 0; k < tokens.size(); ++k) {
    uint64_t t0 = NowNanos();
    bool ok = coordinator_->Wait(tokens[k], nullptr,
                                 MillisToNanos(options_.fence_timeout_ms));
    // A node that never receives this view runs on a stale one until the
    // silence watchdog parks it; bounded re-sends (safe — ApplyView is
    // generation-guarded and idempotent) close that window under message
    // loss.  Still best-effort: a genuinely dead node fails fences anyway.
    double backoff = options_.coord_backoff_min_ms;
    for (int a = 0; !ok && a < options_.coord_rpc_retries; ++a) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(backoff * (0.5 + rng.NextDouble()) * 1000)));
      backoff = std::min(backoff * 2, options_.coord_backoff_max_ms);
      uint64_t tok =
          coordinator_->CallAsync(healthy[k], net::MsgType::kViewChange,
                                  payload);
      ok = coordinator_->Wait(tok, nullptr,
                              MillisToNanos(options_.fence_timeout_ms));
    }
    if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
      std::fprintf(stderr,
                   "[star] %.3f view gen %llu ack node %d ok=%d %.0fms\n",
                   NowNanos() / 1e9, (unsigned long long)gen, healthy[k],
                   ok ? 1 : 0, (NowNanos() - t0) / 1e6);
    }
  }
}

void StarEngine::Start() {
  assert(!running_.load(std::memory_order_acquire));

  if (!transport_->Start()) {
    // A node that cannot listen must die loudly, not limp along silently
    // (Release builds compile assert() out; the smoke tests run Release).
    std::fprintf(stderr, "[star] transport failed to start (port taken?)\n");
    std::abort();
  }

  // Populate every hosted replica of every partition deterministically.  A
  // rejoining process without local logs starts empty on purpose: its state
  // comes from the snapshot fetch plus live replication (Section 4.5.3,
  // Case 1).  A rejoining process *with* recover_on_start populates first —
  // the deterministic load is the base the WAL replay below builds on, and
  // the delta fetch only ships records whose epoch exceeds what recovery
  // reconstructed (load records carry epoch 0 and are never in a delta).
  if (!options_.rejoining || options_.recover_on_start) {
    for (auto& node : nodes_) {
      if (node == nullptr) continue;
      for (int p = 0; p < num_partitions_; ++p) {
        if (node->db->HasPartition(p)) {
          workload_.PopulatePartition(*node->db, p);
        }
      }
    }
  }

  // Crash recovery: rebuild each hosted node's database from its checkpoint
  // chain + WAL tail (wal::Recover) before any thread serves it.  Must run
  // after populate — Database::Load would clobber recovered rows — and the
  // recovered epoch is what turns a rejoin's full snapshot refetch into a
  // delta fetch (ControlLoop, kRejoinFetch).
  if (options_.recover_on_start && options_.durable_logging) {
    for (auto& node : nodes_) {
      if (node == nullptr) continue;
      wal::RecoveryResult rr =
          wal::Recover(node->db.get(), options_.log_dir, node->id);
      node->recovered_epoch = rr.committed_epoch;
      // Once the checkpoint chain durably covers this epoch, the logger
      // pool may sweep the prior incarnations' files it was rebuilt from.
      if (node->logs != nullptr) {
        node->logs->SetPriorCommitted(rr.committed_epoch);
      }
    }
  }

  running_.store(true, std::memory_order_release);
  state_.store(SystemState::kRunning, std::memory_order_release);

  UpdateTaus();

  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    // Replay workers must be up before the io threads can route to them.
    if (node->sharded != nullptr) node->sharded->Start();
    node->endpoint->Start();
    node->control_running.store(true, std::memory_order_release);
    node->control_thread = std::thread([this, n = node.get()] {
      ControlLoop(*n);
    });
    int workers = options_.cluster.workers_per_node;
    for (int w = 0; w < workers; ++w) {
      node->worker_threads.emplace_back(
          [this, n = node.get(), w] { WorkerLoop(*n, w); });
    }
    for (size_t r = 0; r < node->readers.size(); ++r) {
      node->reader_threads.emplace_back(
          [this, n = node.get(), r] { ReaderLoop(*n, static_cast<int>(r)); });
    }
    // Checkpoint cadence is driven by logger thread 0 (AttachCheckpointer in
    // the constructor) — a checkpoint taken off the logger's own clock can
    // never outrun the durable epoch it snapshots against.
  }
  if (coordinator_here_) {
    coordinator_->Start();
    coordinator_thread_ = std::thread([this] { CoordinatorLoop(); });
  }

  // Static read routing for external read-only requests: every hosted node
  // with replica readers that stores the partition.
  for (int p = 0; p < num_partitions_; ++p) {
    read_route_[p].clear();
    for (const auto& node : nodes_) {
      if (node == nullptr || node->readers.empty()) continue;
      if (node->db->HasPartition(p)) read_route_[p].push_back(node->id);
    }
  }
  external_accepting_.store(true, std::memory_order_release);

  ResetStats();
}

// ---------------------------------------------------------------------------
// Coordinator (Figure 5)
// ---------------------------------------------------------------------------

void StarEngine::UpdateTaus() {
  // Equations (1)-(2): pick tau_p + tau_s = e such that the fraction of
  // committed work that is cross-partition equals P.  The paper solves the
  // equations with the monitored throughputs t_p, t_s; we drive the same
  // fixed point with a multiplicative feedback step on the *achieved* mix of
  // the last iteration, which stays accurate even when fence overhead
  // stretches the effective phase lengths (common on small hosts).
  double e = options_.iteration_ms;
  double P = options_.cross_fraction;
  if (P <= 0) {
    tau_p_ms_ = e;
    tau_s_ms_ = 0;
    return;
  }
  if (P >= 1) {
    tau_p_ms_ = 0;
    tau_s_ms_ = e;
    return;
  }
  if (tau_s_ms_ <= 0) {  // bootstrap: assume t_p == t_s
    // Clamp both phases into [min_phase_ms, e - min_phase_ms]: with P close
    // to 0 or 1 the raw split would assign one phase a vanishing (or, with
    // out-of-range P inputs, negative) share and that phase would never run
    // — the feedback step below can then never correct it, because it only
    // rescales a nonzero tau.
    tau_s_ms_ = std::clamp(P * e, options_.min_phase_ms,
                           e - options_.min_phase_ms);
    tau_p_ms_ = e - tau_s_ms_;
    return;
  }
  uint64_t single = last_single_delta_;
  uint64_t cross = last_cross_delta_;
  if (single + cross == 0) return;
  double achieved =
      static_cast<double>(cross) / static_cast<double>(single + cross);
  double step = achieved > 0 ? std::clamp(P / achieved, 0.5, 2.0) : 2.0;
  double tau_s = std::clamp(tau_s_ms_ * step, options_.min_phase_ms,
                            e - options_.min_phase_ms);
  tau_s_ms_ = tau_s;
  tau_p_ms_ = e - tau_s;
}

void StarEngine::StartPhaseOnNodes(Phase phase) {
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  std::string payload = EncodePhaseStart(
      phase, epoch, master_node_.load(std::memory_order_relaxed),
      cluster_durable_.load(std::memory_order_acquire));
  std::vector<std::pair<int, uint64_t>> tokens;
  for (int i : HealthyNodes()) {
    tokens.emplace_back(
        i, coordinator_->CallAsync(i, net::MsgType::kPhaseStart, payload));
  }
  // The acks only pace the coordinator (per-link FIFO already guarantees a
  // node sees the phase start before the following fence messages), so cap
  // the wait: blocking a full fence timeout here would serialise with the
  // fence's own timeout and double failure-detection latency.
  uint64_t wait_ns = MillisToNanos(
      std::min(options_.fence_timeout_ms, options_.phase_ack_wait_ms));
  Rng rng(epoch ^ 0xA5A5A5A5ull);
  for (auto& [i, tok] : tokens) {
    bool ok = coordinator_->Wait(tok, nullptr, wait_ns);
    // A missed ack under a gray network may mean the phase start itself was
    // lost; bounded re-sends keep the node from sitting parked for a whole
    // iteration.  Safe: phase re-entry is idempotent (same phase + epoch,
    // fresh seq), and a genuinely dead node fails the fence as before.
    double backoff = options_.coord_backoff_min_ms;
    for (int a = 0; !ok && a < options_.coord_rpc_retries; ++a) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(backoff * (0.5 + rng.NextDouble()) * 1000)));
      backoff = std::min(backoff * 2, options_.coord_backoff_max_ms);
      uint64_t retok =
          coordinator_->CallAsync(i, net::MsgType::kPhaseStart, payload);
      ok = coordinator_->Wait(retok, nullptr, wait_ns);
    }
  }
}

StarEngine::FenceOutcome StarEngine::Fence(Phase ended_phase,
                                           double phase_seconds) {
  FenceOutcome out;
  uint64_t t0 = NowNanos();
  uint64_t phase_start_ns = t0 - static_cast<uint64_t>(phase_seconds * 1e9);
  auto healthy = HealthyNodes();

  // Round 1: stop workers, collect committed counts + cumulative sent
  // counters ("all participant nodes synchronize statistics about the
  // number of committed transactions", Section 4.3).
  std::vector<uint64_t> tokens(num_nodes_, 0);
  for (int i : healthy) {
    tokens[i] = coordinator_->CallAsync(i, net::MsgType::kFenceStop, "");
  }
  // sent[src][dst], cumulative since the last counter reset.
  std::vector<std::vector<uint64_t>> sent(num_nodes_,
                                          std::vector<uint64_t>(num_nodes_, 0));
  uint64_t committed_delta = 0;
  // Durable-epoch piggyback: each stats response may carry the node's local
  // durable epoch (min over its loggers); the cluster durable epoch E_d is
  // the min over healthy nodes — but never past epoch_-1, because an epoch
  // only *commits* when its fence succeeds.  A node whose loggers fsynced
  // epoch E just before the fence that reverts E must not push E into E_d.
  uint64_t durable_min = ~0ull;
  for (int i : healthy) {
    std::string resp;
    if (!coordinator_->Wait(tokens[i], &resp,
                            MillisToNanos(options_.fence_timeout_ms))) {
      out.failed_nodes.push_back(i);
      continue;
    }
    ReadBuffer in(resp);
    committed_delta += in.Read<uint64_t>();
    uint32_t n = in.Read<uint32_t>();
    for (uint32_t d = 0; d < n; ++d) sent[i][d] = in.Read<uint64_t>();
    if (in.remaining() >= sizeof(uint64_t)) {
      durable_min = std::min(durable_min, in.Read<uint64_t>());
    } else {
      durable_min = 0;  // node without durable logging: E_d stays at 0
    }
  }
  out.committed_delta = committed_delta;
  if (out.failed_nodes.empty() && durable_min != ~0ull) {
    uint64_t committed = epoch_.load(std::memory_order_acquire) - 1;
    uint64_t ed = std::min(durable_min, committed);
    uint64_t cur = cluster_durable_.load(std::memory_order_relaxed);
    if (ed > cur) cluster_durable_.store(ed, std::memory_order_release);
  }

  // Throughput monitoring (t_p, t_s of Equation 2), measured over the real
  // execution window: phase start until the stop round completed (workers
  // keep committing until they observe the fence).
  double exec_seconds = (NowNanos() - phase_start_ns) / 1e9;
  if (exec_seconds > 0) {
    double rate = committed_delta / exec_seconds;
    double a = options_.throughput_ewma;
    if (ended_phase == Phase::kPartitioned) {
      tp_ = tp_ > 0 ? a * rate + (1 - a) * tp_ : rate;
      last_single_delta_ = committed_delta;
    } else if (ended_phase == Phase::kSingleMaster) {
      ts_ = ts_ > 0 ? a * rate + (1 - a) * ts_ : rate;
      last_cross_delta_ = committed_delta;
    }
  }

  if (!out.failed_nodes.empty()) {
    out.ok = false;
    return out;  // caller runs failure handling; no epoch advance
  }
  uint64_t t_stop_done = NowNanos();
  fence_stop_ns_.fetch_add(t_stop_done - t0, std::memory_order_relaxed);

  // Round 2: each node waits for the replication stream it is owed ("nodes
  // then wait until they have received and applied all writes").
  for (int d : healthy) {
    std::vector<uint64_t> expected(num_nodes_, 0);
    for (int s : healthy) expected[s] = sent[s][d];
    tokens[d] = coordinator_->CallAsync(d, net::MsgType::kFenceExpect,
                                        EncodeExpected(expected));
  }
  for (int d : healthy) {
    std::string resp;
    if (!coordinator_->Wait(tokens[d], &resp,
                            MillisToNanos(options_.fence_timeout_ms) * 4)) {
      out.failed_nodes.push_back(d);
    }
  }
  if (!out.failed_nodes.empty()) {
    out.ok = false;
    return out;
  }

  fence_drain_ns_.fetch_add(NowNanos() - t_stop_done,
                            std::memory_order_relaxed);
  // The fence is an epoch boundary (Section 3).
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  fence_count_.fetch_add(1, std::memory_order_relaxed);
  fence_ns_.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
  return out;
}

void StarEngine::CoordinatorLoop() {
  if (options_.multiprocess) {
    // Startup barrier: node processes may still be binding/connecting.
    // Ping each one until it answers, so the first fence is not a spurious
    // failure detection; genuine stragglers fail the usual way afterwards.
    uint64_t deadline = NowNanos() + MillisToNanos(options_.startup_barrier_ms);
    for (int i = 0; i < num_nodes_; ++i) {
      while (running_.load(std::memory_order_acquire) &&
             NowNanos() < deadline) {
        std::string resp;
        if (coordinator_->Call(i, net::MsgType::kPing, "", &resp,
                               MillisToNanos(250))) {
          break;
        }
      }
    }
  }

  while (running_.load(std::memory_order_acquire)) {
    // Handle rejoin requests at iteration boundaries (all nodes parked).
    std::vector<std::pair<int, uint64_t>> rejoin;
    {
      MutexLock g(rejoin_mu_);
      rejoin.swap(rejoin_requests_);
    }
    for (auto& [j, nonce] : rejoin) PerformRejoin(j, nonce);

    UpdateTaus();

    if (tau_p_ms_ > 0) {
      uint64_t t0 = NowNanos();
      StartPhaseOnNodes(Phase::kPartitioned);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(tau_p_ms_ * 1000)));
      double secs = (NowNanos() - t0) / 1e9;
      FenceOutcome out = Fence(Phase::kPartitioned, secs);
      std::vector<int> dead = RegisterFenceMisses(out);
      if (!out.ok) {
        // Below the miss threshold the fence simply retries next iteration:
        // no epoch was advanced, re-fencing is idempotent, and a slow node
        // gets another chance to answer before being written off.
        if (!dead.empty()) HandleFailures(dead);
        continue;
      }
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if (tau_s_ms_ > 0) {
      uint64_t t0 = NowNanos();
      StartPhaseOnNodes(Phase::kSingleMaster);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(tau_s_ms_ * 1000)));
      double secs = (NowNanos() - t0) / 1e9;
      FenceOutcome out = Fence(Phase::kSingleMaster, secs);
      std::vector<int> dead = RegisterFenceMisses(out);
      if (!out.ok) {
        if (!dead.empty()) HandleFailures(dead);
        continue;
      }
    }
    if (state_.load(std::memory_order_acquire) != SystemState::kRunning) {
      break;  // failure handling downgraded the system; stop switching
    }
  }
  // Park everyone.
  StartPhaseOnNodes(Phase::kStopped);
}

std::vector<int> StarEngine::RegisterFenceMisses(const FenceOutcome& out) {
  if (fence_miss_.size() != static_cast<size_t>(num_nodes_)) {
    fence_miss_.assign(static_cast<size_t>(num_nodes_), 0);
  }
  std::vector<int> write_off;
  if (out.ok) {
    std::fill(fence_miss_.begin(), fence_miss_.end(), 0);
    return write_off;
  }
  std::vector<bool> missed(static_cast<size_t>(num_nodes_), false);
  for (int f : out.failed_nodes) missed[static_cast<size_t>(f)] = true;
  const int threshold = std::max(1, options_.fence_miss_threshold);
  for (int i = 0; i < num_nodes_; ++i) {
    if (!node_healthy_[i].load(std::memory_order_acquire)) continue;
    if (missed[static_cast<size_t>(i)]) {
      if (++fence_miss_[static_cast<size_t>(i)] >= threshold) {
        write_off.push_back(i);
      }
    } else {
      // It answered this fence: slow earlier, not dead.
      fence_miss_[static_cast<size_t>(i)] = 0;
    }
  }
  if (std::getenv("STAR_DEBUG_FAILURES") != nullptr && write_off.empty()) {
    std::fprintf(stderr, "[star] %.3f fence miss below threshold:",
                 NowNanos() / 1e9);
    for (int f : out.failed_nodes) {
      std::fprintf(stderr, " %d(%d/%d)", f,
                   fence_miss_[static_cast<size_t>(f)], threshold);
    }
    std::fprintf(stderr, "\n");
  }
  return write_off;
}

void StarEngine::HandleFailures(const std::vector<int>& newly_failed) {
  if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
    std::fprintf(stderr, "[star] %.3f HandleFailures:", NowNanos() / 1e9);
    for (int f : newly_failed) std::fprintf(stderr, " %d", f);
    std::fprintf(stderr, "\n");
  }
  uint64_t reverted_epoch = epoch_.load(std::memory_order_acquire);

  // 1. Update the authoritative view: io threads immediately start ignoring
  //    replication from failed nodes, the transport cuts their links
  //    (fail-stop), and — if a "crashed" node is hosted here (failure
  //    injection) — its workers park.
  for (int f : newly_failed) {
    node_status_[f] = kNodeDown;
    granted_nonce_[f].store(0, std::memory_order_release);
    if (static_cast<size_t>(f) < fence_miss_.size()) {
      fence_miss_[static_cast<size_t>(f)] = 0;  // fresh streak if it rejoins
    }
    if (nodes_[f] != nullptr) {
      Node& n = *nodes_[f];
      n.fenced.store(true, std::memory_order_release);
      uint64_t word = n.phase_word.load(std::memory_order_acquire);
      n.phase_word.store(PackPhase(Phase::kStopped, SeqOf(word) + 1),
                         std::memory_order_release);
    }
  }
  // Healthy nodes' workers are provably parked (they answered the fence
  // stop round).  Fenced-off hosted nodes park asynchronously — and that
  // set is wider than `newly_failed`: a node cut by InjectFailure moments
  // ago may not have been *detected* yet (it is neither in this failure
  // batch nor did it answer the fence, its acks were dropped) while its
  // workers are still draining their last transaction.  Wait for every
  // hosted node carrying the fenced latch, so the assignment rebuild below
  // cannot race any straggler.  The wait terminates: every worker code
  // path re-checks the phase word within one transaction, a transaction's
  // length is bounded (synchronous-replication waits carry timeouts), and
  // the fenced latch keeps stale phase starts from un-parking anyone.
  // Like the kFenceStop handler's own park loop, this must not give up
  // early.
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    if (!node->fenced.load(std::memory_order_acquire)) continue;
    for (auto& w : node->workers) {
      while (!w->parked_flag.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  uint64_t gen = ++view_gen_;
  int master = ComputeMaster();
  ApplyView(gen, master, node_status_);

  // Give io threads a moment to finish in-flight batches from the failed
  // node (they belong to the epoch being reverted anyway).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  // 2. Classification (Section 4.5.3).  A "complete partial replica" exists
  //    when the healthy partial nodes collectively store every partition.
  bool full_ok = false;
  for (int i = 0; i < options_.cluster.full_replicas; ++i) {
    if (node_healthy_[i].load(std::memory_order_acquire)) full_ok = true;
  }
  bool partial_complete = true;
  for (int p = 0; p < num_partitions_; ++p) {
    bool covered = false;
    for (int s : placement_.storing(p)) {
      if (s >= options_.cluster.full_replicas &&
          node_healthy_[s].load(std::memory_order_acquire)) {
        covered = true;
      }
    }
    if (!covered) partial_complete = false;
  }

  // 3. Revert the uncommitted epoch on every hosted node, then broadcast
  //    the view + revert epoch so sibling processes do the same and resync
  //    their replication accounting (Figure 6).
  RevertLocal(reverted_epoch);
  BroadcastView(gen, reverted_epoch, master);

  if (!full_ok) {
    state_.store(partial_complete ? SystemState::kFallbackDistributed
                                  : SystemState::kUnavailable,
                 std::memory_order_release);
    return;
  }
  // Cases 1 and 3: continue with the phase-switching algorithm.  (With no
  // partial replicas left, every partition is mastered by the full replica
  // and the partitioned phase degenerates to single-node execution, which
  // is the paper's "runs transactions only on full replicas" mode.)
}

void StarEngine::PerformRejoin(int j, uint64_t nonce) {
  if (granted_nonce_[j].load(std::memory_order_acquire) == nonce) {
    return;  // stale duplicate from an incarnation already admitted
  }
  if (node_status_[j] == kNodeRejoining) return;  // already in progress
  if (node_status_[j] == kNodeHealthy) {
    // The rejoin request outran failure detection: the fresh incarnation
    // came up before a fence timed out on the dead one (or the node
    // restarted *again* during a rejoin).  The request itself is the crash
    // notice — under fail-stop the admitted incarnation cannot have sent a
    // nonce we have not granted — so run the failure path now instead of
    // waiting for the timeout.
    HandleFailures({j});
    if (state_.load(std::memory_order_acquire) != SystemState::kRunning) {
      return;
    }
  }
  if (node_status_[j] != kNodeDown) return;

  // Stage 1: re-admit the node as a storage target with no masterships.
  // Its database restarts empty (crash lost memory — explicit reset when
  // the node lives in this process, a genuinely fresh incarnation when it
  // is a restarted process); live replication resumes immediately, and a
  // background fetch copies the partitions from healthy replicas (Case 1:
  // "it copies data from remote nodes ... In parallel, it processes updates
  // from the relevant currently healthy nodes using the Thomas write rule").
  if (nodes_[j] != nullptr) {
    // Quiesce the node's io threads across the storage swap: an ApplyBatch
    // that started before the failure cut must not overlap (and must
    // happen-before) the table teardown.  Replay workers hold queued
    // batches beyond the io threads, so they are drained too (the io
    // threads are stopped, so the queues only empty) — a replay worker
    // touching a hash table across ResetStorage would be a use-after-free.
    nodes_[j]->endpoint->Stop();
    if (nodes_[j]->sharded != nullptr) nodes_[j]->sharded->Drain();
    // Replica readers hold raw Record pointers across a transaction
    // attempt; park them across the table teardown (use-after-free
    // otherwise) and zero the watermark — the empty store serves no
    // snapshot until fences re-publish every source.  Readers stay
    // effectively out of service anyway until the stage-3 view flips
    // Node::serving back on.
    PauseReaders(*nodes_[j]);
    nodes_[j]->watermark->Reset();
    nodes_[j]->db->ResetStorage();
    ResumeReaders(*nodes_[j]);
    nodes_[j]->endpoint->Start();
    nodes_[j]->fenced.store(false, std::memory_order_release);
  }
  node_status_[j] = kNodeRejoining;
  uint64_t gen = ++view_gen_;
  int master = ComputeMaster();
  ApplyView(gen, master, node_status_);
  // The node's counters are stale; reset the accounting everywhere while
  // all workers are parked (nothing to revert; the broadcast's gen guard
  // makes sibling processes do the same).
  RevertLocal(0);
  BroadcastView(gen, /*revert_epoch=*/0, master);
  // From here on, retried kRejoinRequests from this incarnation are
  // acknowledged (and recognised as duplicates by the rejoin queue).
  granted_nonce_[j].store(nonce, std::memory_order_release);

  if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
    std::fprintf(stderr,
                 "[star] %.3f PerformRejoin(%d): stage 1 view gen %llu\n",
                 NowNanos() / 1e9, j, static_cast<unsigned long long>(gen));
  }
  // Stage 2: kick off the snapshot fetch on node j's control thread.
  uint64_t tok = coordinator_->CallAsync(j, net::MsgType::kRejoinFetch, "");

  // Let the system run while the fetch proceeds; poll for completion.
  // (The fetch response arrives via the RPC reply.)
  uint64_t deadline = NowNanos() + MillisToNanos(30'000);
  bool done = false;
  while (NowNanos() < deadline && running_.load(std::memory_order_acquire)) {
    // Run a few iterations while fetching, so recovery overlaps processing.
    UpdateTaus();
    uint64_t t0 = NowNanos();
    StartPhaseOnNodes(Phase::kPartitioned);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(tau_p_ms_ * 1000)));
    FenceOutcome out = Fence(Phase::kPartitioned, (NowNanos() - t0) / 1e9);
    std::vector<int> dead = RegisterFenceMisses(out);
    if (!out.ok) {
      if (!dead.empty()) {
        HandleFailures(dead);
        return;
      }
      continue;  // below threshold: retry the fence, keep the fetch going
    }
    if (coordinator_->IsReady(tok)) {
      coordinator_->Wait(tok, nullptr, 1);
      done = true;
      break;
    }
  }
  if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
    std::fprintf(stderr, "[star] %.3f PerformRejoin(%d): fetch done=%d\n",
                 NowNanos() / 1e9, j, done ? 1 : 0);
  }
  if (done) {
    // Stage 3: fully healthy — restore j's masterships everywhere.
    node_status_[j] = kNodeHealthy;
    gen = ++view_gen_;
    master = ComputeMaster();
    ApplyView(gen, master, node_status_);
    BroadcastView(gen, /*revert_epoch=*/0, master);
  }
}

// ---------------------------------------------------------------------------
// Node control thread (fence participation, Figure 5 right-hand side)
// ---------------------------------------------------------------------------

void StarEngine::ControlLoop(Node& node) {
  uint64_t seq = 0;
  // Gray-partition self-defence: every mailbox message is coordinator-
  // originated, so prolonged mailbox silence on a running cluster means
  // this node cannot hear the coordinator — it may be running on a stale
  // view (e.g. serving a partition whose mastership moved).  After the
  // silence budget it parks itself (workers stop committing, replica
  // readers stop serving) and the next coordinator message un-parks it.
  const double silence_ms =
      options_.coordinator_silence_ms == 0
          ? std::max(3000.0, options_.fence_timeout_ms * 8)
          : options_.coordinator_silence_ms;
  const uint64_t silence_ns = MillisToNanos(std::max(silence_ms, 0.0));
  uint64_t last_coord_ns = NowNanos();
  bool self_parked = false;
  while (node.control_running.load(std::memory_order_acquire)) {
    net::Message msg;
    bool have_msg = false;
    {
      MutexLock lk(node.mail_mu);
      if (node.mail.empty() &&
          node.control_running.load(std::memory_order_acquire)) {
        // Bounded single wait instead of a predicate wait: the outer loop
        // re-checks both conditions, so a spurious or missed wakeup costs at
        // most one 50 ms lap (the same bound the timeout already imposed).
        node.mail_cv.WaitFor(lk, std::chrono::milliseconds(50));
      }
      if (!node.mail.empty()) {
        msg = std::move(node.mail.front());
        node.mail.pop_front();
        have_msg = true;
      }
    }
    if (!have_msg) {
      if (silence_ms > 0 && !self_parked &&
          NowNanos() - last_coord_ns >= silence_ns &&
          admitted_.load(std::memory_order_acquire) &&
          !node.fenced.load(std::memory_order_acquire) &&
          running_.load(std::memory_order_acquire)) {
        self_parked = true;
        uint64_t word = node.phase_word.load(std::memory_order_acquire);
        if (PhaseOf(word) != Phase::kStopped) {
          node.phase_word.store(PackPhase(Phase::kStopped, SeqOf(word) + 1),
                                std::memory_order_release);
        }
        PauseReaders(node);
        if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
          std::fprintf(stderr,
                       "[star] %.3f node %d self-parked: coordinator silent "
                       "%.0f ms\n",
                       NowNanos() / 1e9, node.id, silence_ms);
        }
      }
      continue;
    }
    last_coord_ns = NowNanos();
    if (self_parked) {
      // The coordinator is reachable again; the message being dispatched
      // (typically the next kPhaseStart or view) restores worker state.
      self_parked = false;
      ResumeReaders(node);
      if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
        std::fprintf(stderr, "[star] %.3f node %d un-parked: coordinator back\n",
                     NowNanos() / 1e9, node.id);
      }
    }
    switch (msg.type) {
      case net::MsgType::kFenceStop: {
        if (!admitted_.load(std::memory_order_acquire)) break;
        // Enter the fence: park workers, then report statistics.
        node.parked.store(0, std::memory_order_release);
        node.phase_word.store(PackPhase(Phase::kFence, ++seq),
                              std::memory_order_release);
        int want = static_cast<int>(node.workers.size());
        while (node.parked.load(std::memory_order_acquire) < want) {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
        uint64_t committed = 0;
        for (auto& w : node.workers) {
          committed += w->stats.committed.load(std::memory_order_relaxed);
        }
        // ResetStats() may have zeroed the worker counters since the last
        // fence; a plain subtraction would underflow and report a garbage
        // delta to the throughput monitor for one iteration.
        uint64_t delta = committed >= node.reported_committed
                             ? committed - node.reported_committed
                             : committed;
        WriteBuffer b;
        b.Write<uint64_t>(delta);
        node.reported_committed = committed;
        b.Write<uint32_t>(static_cast<uint32_t>(num_nodes_));
        for (int d = 0; d < num_nodes_; ++d) {
          b.Write<uint64_t>(node.counters->sent_to(d));
        }
        // Durable-epoch piggyback: the fence already synchronises every
        // node, so the local durable epoch rides the stats reply for free
        // (trailing field — old parsers simply stop short of it).  ~0 means
        // "no logging here": it never constrains the coordinator's min.
        b.Write<uint64_t>(node.logs != nullptr ? node.logs->durable_epoch()
                                               : ~0ull);
        node.endpoint->Respond(msg, net::MsgType::kFenceStats, b.Release());
        break;
      }
      case net::MsgType::kFenceExpect: {
        if (!admitted_.load(std::memory_order_acquire)) break;
        ReadBuffer in(msg.payload);
        uint32_t n = in.Read<uint32_t>();
        std::vector<uint64_t> expected(n);
        for (uint32_t s = 0; s < n; ++s) expected[s] = in.Read<uint64_t>();
        // Wait for the replication stream to drain.
        uint64_t deadline =
            NowNanos() + MillisToNanos(options_.fence_timeout_ms * 4);
        for (uint32_t s = 0; s < n; ++s) {
          if (static_cast<int>(s) == node.id) continue;
          while (node.counters->applied_from(s) < expected[s] &&
                 NowNanos() < deadline &&
                 !transport_->IsDown(static_cast<int>(s))) {
            std::this_thread::yield();
          }
        }
        // Mark the io/replay-shard lanes; workers marked theirs at park.
        // MarkEpoch only publishes the buffered batch to the logger threads
        // — no disk I/O on the fence path; durability catches up through
        // the durable epoch instead of stalling the fence.
        uint64_t epoch = node.epoch.load(std::memory_order_acquire);
        if (node.logs != nullptr) {
          for (int i = static_cast<int>(node.workers.size());
               i < node.logs->num_lanes(); ++i) {
            node.logs->lane(i)->MarkEpoch(epoch);
          }
        }
        // Stage the applied-epoch watermark for the epoch this fence ends.
        // Re-check each source's drain rather than trusting the loop exit:
        // a deadline or IsDown exit means the stream is NOT known applied
        // and must not count.  Own writes are applied at commit, so the
        // node itself always drains.  Publication is deferred to the next
        // phase start (see kPhaseStart): this node draining does not yet
        // mean the fence committed — a peer's timeout can still revert the
        // epoch, and a watermark published now would hand replica readers
        // an uncommitted snapshot.
        node.staged_epoch = epoch;
        node.staged_drained.assign(num_nodes_, 0);
        for (uint32_t s = 0;
             s < n && s < static_cast<uint32_t>(num_nodes_); ++s) {
          if (static_cast<int>(s) == node.id ||
              node.counters->applied_from(s) >= expected[s]) {
            node.staged_drained[s] = 1;
          }
        }
        node.endpoint->Respond(msg, net::MsgType::kFenceDrained, "");
        break;
      }
      case net::MsgType::kPhaseStart: {
        if (!admitted_.load(std::memory_order_acquire)) break;
        if (node.fenced.load(std::memory_order_acquire)) {
          // This node was written off while the phase start was in flight;
          // unparking its workers now would race the coordinator's
          // assignment rebuild.  Ack and stay parked.
          node.endpoint->Respond(msg, net::MsgType::kPhaseStart, "");
          break;
        }
        ReadBuffer in(msg.payload);
        Phase phase = static_cast<Phase>(in.Read<uint8_t>());
        uint64_t epoch = in.Read<uint64_t>();
        (void)in.Read<int32_t>();  // master id: carried by view broadcasts
        // Optional trailing field: the cluster durable epoch E_d computed
        // at the last fence.  Workers in commit_wait=durable mode release
        // results against this (monotonic — a rebooted coordinator may
        // briefly broadcast a smaller value).
        if (in.remaining() >= sizeof(uint64_t)) {
          uint64_t ed = in.Read<uint64_t>();
          if (ed > node.durable_cluster.load(std::memory_order_relaxed)) {
            node.durable_cluster.store(ed, std::memory_order_release);
          }
        }
        if (node.staged_epoch != 0 && epoch > node.staged_epoch) {
          // The epoch advanced past the staged fence, which proves that
          // fence committed cluster-wide (the coordinator only advances
          // after every node drained) — the staged epoch can no longer be
          // reverted, so it is safe to hand to replica readers.  A failed
          // fence never advances the epoch, so its staging is re-done (with
          // fresh flags) by the retried fence before any publish.
          for (int s = 0; s < num_nodes_; ++s) {
            if (node.staged_drained[s] != 0) {
              node.watermark->Publish(s, node.staged_epoch);
            }
          }
          node.staged_epoch = 0;
        }
        node.epoch.store(epoch, std::memory_order_release);
        node.parked.store(0, std::memory_order_release);
        node.phase_word.store(PackPhase(phase, ++seq),
                              std::memory_order_release);
        node.endpoint->Respond(msg, net::MsgType::kPhaseStart, "");
        break;
      }
      case net::MsgType::kViewChange: {
        ReadBuffer in(msg.payload);
        uint64_t gen = in.Read<uint64_t>();
        uint64_t revert_epoch = in.Read<uint64_t>();
        int32_t master = in.Read<int32_t>();
        uint32_t n = in.Read<uint32_t>();
        if (n != static_cast<uint32_t>(num_nodes_) || master < 0 ||
            master >= num_nodes_) {
          // Malformed/truncated view (version skew, corrupt frame):
          // applying it would index out of bounds.  Drop without acking so
          // the sender retries or times out.
          break;
        }
        std::vector<uint8_t> status(n);
        for (uint32_t i = 0; i < n; ++i) status[i] = in.Read<uint8_t>();
        // The first control thread in this process installs the view (the
        // coordinator's own process applied it before broadcasting, so its
        // nodes just ack); the revert only runs where the view was new.
        if (ApplyView(gen, master, status)) {
          if (revert_epoch != 0) {
            // Let io threads finish in-flight batches from failed nodes
            // (they belong to the epoch being reverted anyway).
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          RevertLocal(revert_epoch);
        }
        // Receiving any view broadcast means the coordinator counts this
        // node as a member (re-admission for a rejoining process).
        admitted_.store(true, std::memory_order_release);
        node.endpoint->Respond(msg, net::MsgType::kViewChange, "");
        break;
      }
      case net::MsgType::kShutdown: {
        // Final round of the multi-process protocol: report this node's
        // totals and per-partition checksums (workers are parked and the
        // final fence drained all replication, so the store is quiescent).
        uint64_t committed = 0, cross = 0;
        for (auto& w : node.workers) {
          committed += w->stats.committed.load(std::memory_order_relaxed);
          cross += w->stats.cross_partition.load(std::memory_order_relaxed);
        }
        WriteBuffer b;
        b.Write<uint64_t>(committed);
        b.Write<uint64_t>(cross);
        std::vector<int> parts = placement_.StoredPartitions(node.id);
        b.Write<uint32_t>(static_cast<uint32_t>(parts.size()));
        for (int p : parts) {
          b.Write<int32_t>(p);
          b.Write<uint64_t>(DatabasePartitionChecksum(*node.db, p));
        }
        node.endpoint->Respond(msg, net::MsgType::kShutdown, b.Release());
        shutdown_seen_.fetch_add(1, std::memory_order_acq_rel);
        break;
      }
      case net::MsgType::kRejoinFetch: {
        // Fetch on a helper thread: the control loop must stay responsive
        // to fences while recovery proceeds in parallel (Case 1).
        std::thread([this, &node, msg = std::move(msg)] {
        // With a recovered epoch (local checkpoint chain + log tail already
        // replayed in Start) the node asks donors only for records whose
        // epoch exceeds it: bytes streamed are O(changes since the crash),
        // not O(table).  Fetched records go through the io log lane like
        // any other applied write, so a crash mid-rejoin replays them.
        uint64_t since = node.recovered_epoch;
        wal::LogLane* lane =
            node.logs != nullptr
                ? node.logs->lane(static_cast<int>(node.workers.size()))
                : nullptr;
        for (int p = 0; p < num_partitions_; ++p) {
          if (!placement_.IsStored(node.id, p)) continue;
          int donor = -1;
          for (int s : placement_.storing(p)) {
            if (s != node.id &&
                node_healthy_[s].load(std::memory_order_acquire)) {
              donor = s;
              break;
            }
          }
          if (donor < 0) continue;
          for (int t = 0; t < node.db->num_tables(); ++t) {
            WriteBuffer req;
            req.Write<int32_t>(t);
            req.Write<int32_t>(p);
            if (since > 0) req.Write<uint64_t>(since);
            net::MsgType kind = since > 0 ? net::MsgType::kDeltaRequest
                                          : net::MsgType::kSnapshotRequest;
            std::string resp;
            if (!node.endpoint->Call(donor, kind, req.Release(), &resp)) {
              if (std::getenv("STAR_DEBUG_FAILURES") != nullptr) {
                std::fprintf(stderr,
                             "[star] node %d: %s fetch t%d p%d from %d "
                             "FAILED\n",
                             node.id, since > 0 ? "delta" : "snapshot", t, p,
                             donor);
              }
              continue;
            }
            node.rejoin_bytes.fetch_add(resp.size(),
                                        std::memory_order_relaxed);
            HashTable* ht = node.db->table(t, p);
            ReadBuffer in(resp);
            if (since > 0) {
              // Delta frame: key, tid, deleted flag, value when present
              // (tombstones ship without a payload).
              while (!in.Done()) {
                uint64_t key = in.Read<uint64_t>();
                uint64_t tid = in.Read<uint64_t>();
                uint8_t deleted = in.Read<uint8_t>();
                HashTable::Row row = ht->GetOrInsertRow(key);
                if (deleted != 0) {
                  row.rec->ApplyThomasDelete(tid, row.size, row.value,
                                             node.db->two_version());
                  if (lane != nullptr) lane->AppendDelete(t, p, key, tid);
                } else {
                  std::string_view value = in.ReadBytes();
                  row.rec->ApplyThomas(tid, value.data(), row.size,
                                       row.value, node.db->two_version());
                  if (lane != nullptr) lane->Append(t, p, key, tid, value);
                }
              }
            } else {
              while (!in.Done()) {
                uint64_t key = in.Read<uint64_t>();
                uint64_t tid = in.Read<uint64_t>();
                std::string_view value = in.ReadBytes();
                HashTable::Row row = ht->GetOrInsertRow(key);
                row.rec->ApplyThomas(tid, value.data(), row.size, row.value,
                                     node.db->two_version());
                if (lane != nullptr) lane->Append(t, p, key, tid, value);
              }
            }
          }
        }
        // The incarnation now holds a complete image (recovered base +
        // fetched delta): mark it so a later crash may trust these logs.
        if (node.logs != nullptr) node.logs->MarkComplete();
        node.endpoint->Respond(msg, net::MsgType::kRejoinDone, "");
        }).detach();
        break;
      }
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void StarEngine::WorkerLoop(Node& node, int worker_index) {
  WorkerState& w = *node.workers[worker_index];
  SiloContext ctx(node.db.get(), &w.rng,
                  node.id * options_.cluster.workers_per_node + worker_index);
  PreInstallHook sync_hook;
  if (options_.replication == ReplicationMode::kSyncValue) {
    sync_hook = [this, &node, &w](uint64_t tid, WriteSet& ws) {
      return SyncReplicate(node, w, tid, ws);
    };
  }
  bool parked_this_seq = false;
  for (;;) {
    // Consume a pending cross-thread latency reset at the top of every
    // iteration — including parked/standby ones — so a ResetStats issued
    // during a fence is not left pending into the measured window.
    w.stats.MaybeResetLatency();

    uint64_t word = node.phase_word.load(std::memory_order_acquire);
    Phase phase = PhaseOf(word);
    uint64_t seq = SeqOf(word);
    if (seq != w.seen_seq) {
      w.seen_seq = seq;
      parked_this_seq = false;
    }

    if (phase == Phase::kFence || phase == Phase::kStopped) {
      w.parked_flag.store(true, std::memory_order_release);
      if (!parked_this_seq) {
        // Flush outbound replication and publish the log lane's watermark,
        // then park.  MarkEpoch hands the buffered batch to the logger
        // threads without blocking on storage; the logger's on-disk epoch
        // marker is what certifies "all my writes up to this epoch are
        // durable" (Section 4.5.1).
        w.stream->FlushAll();
        if (w.wal != nullptr) {
          w.wal->MarkEpoch(node.epoch.load(std::memory_order_acquire));
        }
        parked_this_seq = true;
        node.parked.fetch_add(1, std::memory_order_acq_rel);
      }
      if (phase == Phase::kStopped &&
          !running_.load(std::memory_order_acquire)) {
        w.tracker.DrainAll(NowNanos(), w.stats.latency);
        return;
      }
      // Parked: sleep rather than spin — on an oversubscribed host the
      // active workers need the cores (2-core substitution note, DESIGN.md).
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }

    w.parked_flag.store(false, std::memory_order_relaxed);

    // Release transactions whose epoch has closed (group commit).  With
    // commit_wait=durable, additionally hold them until the cluster durable
    // epoch covers them: Drain releases epochs strictly below its argument,
    // so E_d durable means epochs <= E_d — i.e. < E_d + 1 — may go.
    // External requests that asked for wait_durable individually are gated
    // on the durable release even when the engine-wide wait is kNone.
    uint64_t epoch_now = node.epoch.load(std::memory_order_acquire);
    uint64_t durable_release = std::min(
        epoch_now, node.durable_cluster.load(std::memory_order_acquire) + 1);
    uint64_t release = options_.commit_wait == CommitWait::kDurable
                           ? durable_release
                           : epoch_now;
    w.tracker.Drain(release, durable_release, NowNanos(), w.stats.latency);

    if (phase == Phase::kPartitioned) {
      if (w.partitions.empty()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      // External requests first (a client is waiting on them); the scan
      // starts at the round-robin cursor so multi-partition workers drain
      // their queues fairly.
      ExternalTxn* ext = nullptr;
      for (size_t k = 0; k < w.partitions.size() && ext == nullptr; ++k) {
        int p = w.partitions[(w.rr + k) % w.partitions.size()];
        ext = external_part_q_[static_cast<size_t>(p)]->Pop();
      }
      if (ext != nullptr) {
        ++w.rr;
        RunExternalPartitioned(node, w, ctx, ext);
      } else if (options_.synthetic_load) {
        int partition = w.partitions[w.rr++ % w.partitions.size()];
        RunPartitionedTxn(node, w, ctx, partition);
      } else {
        // Open-loop serving with an empty queue: idle, don't burn the core.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
    } else {  // kSingleMaster
      if (node.id != master_node_.load(std::memory_order_relaxed)) {
        // Standby: io threads apply the master's replication stream.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      // Cross-partition queue first (only this phase can serve it), then
      // stranded single-partition requests — OCC executes those fine, and
      // leaving them queued for a whole tau_s would double their latency.
      ExternalTxn* ext = external_cross_q_->Pop();
      for (int p = 0; p < num_partitions_ && ext == nullptr; ++p) {
        ext = external_part_q_[static_cast<size_t>(p)]->Pop();
      }
      if (ext != nullptr) {
        RunExternalSingleMaster(node, w, ctx, sync_hook, ext);
      } else if (options_.synthetic_load) {
        RunSingleMasterTxn(node, w, ctx, sync_hook);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
    }
    // On hosts with fewer cores than workers, rotate the run queue often so
    // every worker observes fence flags quickly (keeps the stop round — and
    // thus the fence — short).
    if (options_.yield_every_n_txns != 0 &&
        ++w.txn_since_yield >= options_.yield_every_n_txns) {
      w.txn_since_yield = 0;
      std::this_thread::yield();
    }
  }
}

void StarEngine::ReaderLoop(Node& node, int reader_index) {
  ReaderState& r = *node.readers[reader_index];
  SnapshotContext ctx(node.db.get(), node.watermark.get(),
                      options_.replica_read_mode, &r.rng,
                      /*worker_id=*/num_nodes_ * options_.cluster.workers_per_node +
                          node.id * static_cast<int>(node.readers.size()) +
                          reader_index);
  std::vector<int> parts = placement_.StoredPartitions(node.id);
  // Bounded local retry budget per request: a conflicted attempt re-pins a
  // fresh watermark and re-runs; replay rarely races the same footprint
  // twice, so a handful of attempts all failing means the node is reverting
  // or resetting — drop the request rather than spin against the pause.
  constexpr int kMaxAttempts = 8;
  size_t rr = static_cast<size_t>(r.rng.Uniform(
      static_cast<uint64_t>(parts.size())));
  while (running_.load(std::memory_order_acquire)) {
    // Readers never park at fences — executing straight through phase
    // switches is the zero-coordination point — but they do quiesce for
    // the pause handshake (epoch revert / storage reset), while this node
    // is not fully healthy in the applied view, and when fenced off.
    if (node.readers_pause.load(std::memory_order_acquire) ||
        !node.serving.load(std::memory_order_acquire) ||
        node.fenced.load(std::memory_order_acquire)) {
      r.parked.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    r.parked.store(false, std::memory_order_relaxed);

    // External read-only requests first: a client is waiting, and in
    // open-loop serving mode (synthetic_load off) they are the only work.
    ExternalTxn* ext = external_read_q_[static_cast<size_t>(node.id)]->Pop();
    if (ext != nullptr) {
      RunExternalRead(node, r, ctx, ext);
      continue;
    }
    if (!options_.synthetic_load) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }

    int partition = parts[rr++ % parts.size()];
    TxnRequest req = workload_.MakeReadOnly(r.rng, partition, num_partitions_);
    if (req.proc == nullptr) break;  // workload has no read-only class
    bool done = false;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      ctx.Begin();
      TxnStatus status = req.proc(ctx);
      if (status == TxnStatus::kCommitted && ctx.Commit()) {
        r.committed.fetch_add(1, std::memory_order_relaxed);
        r.keys.fetch_add(ctx.validated_keys(), std::memory_order_relaxed);
        // Staleness: how far the node's current epoch ran ahead of the
        // snapshot this read observed.  Monotonic mode has no pin, so its
        // staleness is unmeasured (each record is individually fresh).
        if (options_.replica_read_mode == ReplicaReadMode::kSnapshot) {
          uint64_t now_epoch = node.epoch.load(std::memory_order_acquire);
          uint64_t pin = ctx.pinned();
          if (now_epoch > pin) {
            r.lag_epochs.fetch_add(now_epoch - pin, std::memory_order_relaxed);
          }
        }
        done = true;
        break;
      }
      if (status != TxnStatus::kCommitted && !ctx.conflicted()) {
        // Genuine application outcome (missing record / user abort): the
        // same thing happens at every snapshot, so don't retry.
        r.aborted.fetch_add(1, std::memory_order_relaxed);
        done = true;
        break;
      }
      // Snapshot conflict: a read tripped on an epoch past the pin, a
      // bounded optimistic read gave up, or commit-time validation caught
      // replay moving a read record past the pin.  Re-pin and retry after
      // yielding once — the conflicting replay window outlasts an immediate
      // retry, especially when replay workers share this reader's core.
      r.conflicts.fetch_add(1, std::memory_order_relaxed);
      if (node.readers_pause.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    if (!done) r.aborted.fetch_add(1, std::memory_order_relaxed);

    if (options_.yield_every_n_txns != 0 &&
        ++r.txn_since_yield >= options_.yield_every_n_txns) {
      r.txn_since_yield = 0;
      std::this_thread::yield();
    }
  }
  r.parked.store(true, std::memory_order_release);
}

void StarEngine::RunPartitionedTxn(Node& node, WorkerState& w,
                                   SiloContext& ctx, int partition) {
  TxnRequest req =
      workload_.MakeSinglePartition(w.rng, partition, num_partitions_);
  uint64_t start = NowNanos();
  ctx.Reset();
  TxnStatus status = req.proc(ctx);
  if (status == TxnStatus::kAbortUser) {
    w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (status != TxnStatus::kCommitted) {
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CommitResult cr = SiloSerialCommit(ctx, w.gen, node.epoch);
  if (cr.status != TxnStatus::kCommitted) {
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool allow_ops = options_.replication == ReplicationMode::kHybrid;
  ReplicateCommit(w, cr.tid, ctx.write_set(), allow_ops, replica_targets_);
  LogCommitToWal(w, cr.tid, ctx.write_set());
  w.stats.committed.fetch_add(1, std::memory_order_relaxed);
  w.stats.single_partition.fetch_add(1, std::memory_order_relaxed);
  w.tracker.Add(Tid::Epoch(cr.tid), start);
}

void StarEngine::RunSingleMasterTxn(Node& node, WorkerState& w,
                                    SiloContext& ctx,
                                    const PreInstallHook& sync_hook) {
  int home = static_cast<int>(w.rng.Uniform(num_partitions_));
  TxnRequest req = workload_.MakeCrossPartition(w.rng, home, num_partitions_);
  uint64_t start = NowNanos();
  bool is_sync = options_.replication == ReplicationMode::kSyncValue;

  // Retry loop: conflicts restart the transaction until the phase ends.
  for (;;) {
    ctx.Reset();
    TxnStatus status = req.proc(ctx);
    if (status == TxnStatus::kAbortUser) {
      w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CommitResult cr;
    if (status != TxnStatus::kCommitted) {
      cr.status = TxnStatus::kAbortConflict;
    } else if (is_sync) {
      cr = SiloOccCommit(ctx, w.gen, node.epoch, sync_hook);
    } else {
      cr = SiloOccCommit(ctx, w.gen, node.epoch);
    }
    if (cr.status == TxnStatus::kCommitted) {
      if (!is_sync) {
        ReplicateCommit(w, cr.tid, ctx.write_set(), /*allow_ops=*/false,
                        sm_targets_);
      }
      LogCommitToWal(w, cr.tid, ctx.write_set());
      w.stats.committed.fetch_add(1, std::memory_order_relaxed);
      w.stats.cross_partition.fetch_add(1, std::memory_order_relaxed);
      w.tracker.Add(Tid::Epoch(cr.tid), start);
      return;
    }
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    // Stop retrying if the phase ended under us.
    uint64_t word = node.phase_word.load(std::memory_order_acquire);
    if (PhaseOf(word) != Phase::kSingleMaster) return;
  }
}

// ---------------------------------------------------------------------------
// External requests (serving front end, src/serve/)
// ---------------------------------------------------------------------------

void StarEngine::CompleteExternal(ExternalTxn* t, TxnStatus status,
                                  uint64_t epoch) {
  auto done = t->done;
  if (done != nullptr) {
    done(t, status, epoch);  // callee owns t from here
  } else {
    delete t;
  }
}

void StarEngine::ExternalReleased(void* ctx, bool committed, uint64_t epoch) {
  auto* t = static_cast<ExternalTxn*>(ctx);
  CompleteExternal(
      t, committed ? TxnStatus::kCommitted : TxnStatus::kAbortConflict, epoch);
}

bool StarEngine::SubmitExternal(ExternalTxn* t) {
  if (!external_accepting_.load(std::memory_order_acquire)) return false;
  if (t->submit_ns == 0) t->submit_ns = NowNanos();
  // Without durable logging there is no durable epoch to wait for; honour
  // the request by not wedging it behind a gate that never opens.
  if (!options_.durable_logging) t->wait_durable = false;
  if (t->req.read_only) {
    const std::vector<int>& route =
        read_route_[static_cast<size_t>(t->req.home_partition)];
    if (route.empty()) return false;  // no replica readers can serve this
    size_t i = read_rr_.fetch_add(1, std::memory_order_relaxed);
    for (size_t k = 0; k < route.size(); ++k) {
      int n = route[(i + k) % route.size()];
      if (!nodes_[static_cast<size_t>(n)]->serving.load(
              std::memory_order_acquire)) {
        continue;
      }
      if (external_read_q_[static_cast<size_t>(n)]->Push(
              t, options_.external_queue_cap)) {
        return true;
      }
    }
    return false;
  }
  if (t->req.cross_partition) {
    // Drained by the designated master's workers in the single-master
    // phase.  Serving assumes the server is colocated with a process that
    // hosts the master (single-process clusters always are).
    if (nodes_[static_cast<size_t>(
            master_node_.load(std::memory_order_relaxed))] == nullptr) {
      return false;
    }
    return external_cross_q_->Push(t, options_.external_queue_cap);
  }
  return external_part_q_[static_cast<size_t>(t->req.home_partition)]->Push(
      t, options_.external_queue_cap);
}

size_t StarEngine::ExternalDepth() const {
  size_t d = external_cross_q_->depth.load(std::memory_order_relaxed);
  for (const auto& q : external_part_q_) {
    d += q->depth.load(std::memory_order_relaxed);
  }
  for (const auto& q : external_read_q_) {
    if (q != nullptr) d += q->depth.load(std::memory_order_relaxed);
  }
  return d;
}

void StarEngine::FailExternalQueues() {
  auto fail_all = [](ExternalQueue* q) {
    if (q == nullptr) return;
    for (ExternalTxn* t = q->Pop(); t != nullptr; t = q->Pop()) {
      CompleteExternal(t, TxnStatus::kAbortNetwork, 0);
    }
  };
  for (const auto& q : external_part_q_) fail_all(q.get());
  fail_all(external_cross_q_.get());
  for (const auto& q : external_read_q_) fail_all(q.get());
}

void StarEngine::RunExternalPartitioned(Node& node, WorkerState& w,
                                        SiloContext& ctx, ExternalTxn* t) {
  uint64_t start = t->submit_ns;  // latency includes queue wait
  ctx.Reset();
  TxnStatus status = t->req.proc(ctx);
  if (status == TxnStatus::kAbortUser) {
    w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
    CompleteExternal(t, status, 0);
    return;
  }
  if (status != TxnStatus::kCommitted) {
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    CompleteExternal(t, TxnStatus::kAbortConflict, 0);
    return;
  }
  CommitResult cr = SiloSerialCommit(ctx, w.gen, node.epoch);
  if (cr.status != TxnStatus::kCommitted) {
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    CompleteExternal(t, cr.status, 0);
    return;
  }
  bool allow_ops = options_.replication == ReplicationMode::kHybrid;
  ReplicateCommit(w, cr.tid, ctx.write_set(), allow_ops, replica_targets_);
  LogCommitToWal(w, cr.tid, ctx.write_set());
  w.stats.committed.fetch_add(1, std::memory_order_relaxed);
  w.stats.single_partition.fetch_add(1, std::memory_order_relaxed);
  w.tracker.Add(Tid::Epoch(cr.tid), start, &StarEngine::ExternalReleased, t,
                t->wait_durable);
}

bool StarEngine::RunExternalSingleMaster(Node& node, WorkerState& w,
                                         SiloContext& ctx,
                                         const PreInstallHook& sync_hook,
                                         ExternalTxn* t) {
  uint64_t start = t->submit_ns;
  bool is_sync = options_.replication == ReplicationMode::kSyncValue;
  for (;;) {
    ctx.Reset();
    TxnStatus status = t->req.proc(ctx);
    if (status == TxnStatus::kAbortUser) {
      w.stats.aborted_user.fetch_add(1, std::memory_order_relaxed);
      CompleteExternal(t, status, 0);
      return true;
    }
    CommitResult cr;
    if (status != TxnStatus::kCommitted) {
      cr.status = TxnStatus::kAbortConflict;
    } else if (is_sync) {
      cr = SiloOccCommit(ctx, w.gen, node.epoch, sync_hook);
    } else {
      cr = SiloOccCommit(ctx, w.gen, node.epoch);
    }
    if (cr.status == TxnStatus::kCommitted) {
      if (!is_sync) {
        ReplicateCommit(w, cr.tid, ctx.write_set(), /*allow_ops=*/false,
                        sm_targets_);
      }
      LogCommitToWal(w, cr.tid, ctx.write_set());
      w.stats.committed.fetch_add(1, std::memory_order_relaxed);
      if (t->req.cross_partition) {
        w.stats.cross_partition.fetch_add(1, std::memory_order_relaxed);
      } else {
        w.stats.single_partition.fetch_add(1, std::memory_order_relaxed);
      }
      w.tracker.Add(Tid::Epoch(cr.tid), start, &StarEngine::ExternalReleased,
                    t, t->wait_durable);
      return true;
    }
    w.stats.aborted.fetch_add(1, std::memory_order_relaxed);
    uint64_t word = node.phase_word.load(std::memory_order_acquire);
    if (PhaseOf(word) != Phase::kSingleMaster) {
      // The phase ended mid-retry: requeue for the next owner instead of
      // holding the stop round hostage.  A full queue fails the request —
      // the client retries against fresh admission control.
      ExternalQueue& q =
          t->req.cross_partition
              ? *external_cross_q_
              : *external_part_q_[static_cast<size_t>(t->req.home_partition)];
      if (!q.Push(t, options_.external_queue_cap)) {
        CompleteExternal(t, TxnStatus::kAbortConflict, 0);
      }
      return false;
    }
  }
}

void StarEngine::RunExternalRead(Node& node, ReaderState& r,
                                 SnapshotContext& ctx, ExternalTxn* t) {
  constexpr int kMaxAttempts = 8;
  // Read-your-writes floor: a watermark below the session's last commit
  // epoch fails Begin; the fence normally publishes that epoch within one
  // iteration, so wait for it (bounded) instead of failing the request.
  uint64_t floor_deadline =
      NowNanos() +
      MillisToNanos(4.0 * options_.iteration_ms + options_.min_phase_ms);
  TxnStatus final_status = TxnStatus::kAbortConflict;
  uint64_t pinned = 0;
  for (int attempt = 0; attempt < kMaxAttempts;) {
    if (node.readers_pause.load(std::memory_order_acquire) ||
        !node.serving.load(std::memory_order_acquire) ||
        !running_.load(std::memory_order_acquire)) {
      break;
    }
    if (!ctx.Begin(t->min_epoch)) {
      if (NowNanos() > floor_deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;  // floor waits don't consume conflict attempts
    }
    TxnStatus status = t->req.proc(ctx);
    if (status == TxnStatus::kCommitted && ctx.Commit()) {
      r.keys.fetch_add(ctx.validated_keys(), std::memory_order_relaxed);
      final_status = TxnStatus::kCommitted;
      pinned = ctx.pinned();
      break;
    }
    if (status != TxnStatus::kCommitted && !ctx.conflicted()) {
      final_status = status;  // genuine user outcome, same at any snapshot
      break;
    }
    r.conflicts.fetch_add(1, std::memory_order_relaxed);
    ++attempt;
    std::this_thread::yield();
  }
  if (final_status == TxnStatus::kCommitted) {
    r.committed.fetch_add(1, std::memory_order_relaxed);
  } else {
    r.aborted.fetch_add(1, std::memory_order_relaxed);
  }
  CompleteExternal(t, final_status, pinned);
}

void StarEngine::ReplicateCommit(WorkerState& w, uint64_t tid,
                                 const WriteSet& writes, bool allow_ops,
                                 const std::vector<std::vector<int>>& targets) {
  for (const auto& entry : writes.entries()) {
    for (int dst : targets[entry.partition]) {
      w.stream->AppendEntry(dst, tid, writes, entry, allow_ops);
    }
  }
}

bool StarEngine::SyncReplicate(Node& node, WorkerState& w, uint64_t tid,
                               WriteSet& writes) {
  // Build one batch per replica target and wait for every ack while the
  // commit holds its write locks (Figure 9's SYNC column).  The batch
  // buffers live in the worker state so a warmed-up sync commit, like the
  // async one, never touches the allocator.
  if (w.sync_batches.size() != static_cast<size_t>(num_nodes_)) {
    w.sync_batches.resize(num_nodes_);
    w.sync_counts.assign(num_nodes_, 0);
  }
  auto& batches = w.sync_batches;
  auto& counts = w.sync_counts;
  for (const auto& entry : writes.entries()) {
    for (int dst : sm_targets_[entry.partition]) {
      if (entry.is_delete) {
        SerializeDeleteEntry(batches[dst], entry.table, entry.partition,
                             entry.key, tid);
      } else {
        SerializeValueEntry(batches[dst], entry.table, entry.partition,
                            entry.key, tid, writes.ValueView(entry));
      }
      ++counts[dst];
    }
  }
  auto& tokens = w.sync_tokens;
  tokens.clear();
  for (int dst = 0; dst < num_nodes_; ++dst) {
    if (batches[dst].empty()) {
      counts[dst] = 0;
      continue;
    }
    // Counted before the call on purpose: an ack timeout does not mean the
    // replica skipped the batch (it may apply late), so skipping AddSent
    // here could leave applied > sent and let a fence drain round exit
    // early.  Over-counting toward a genuinely dead node is benign — failed
    // nodes are excluded from fences and counters reset on view changes.
    // (The one-way stream path in ReplicationStream::Flush does get exact
    // drop information from the transport and counts only accepted batches.)
    node.counters->AddSent(dst, counts[dst], w.stream->lane());
    counts[dst] = 0;
    tokens.emplace_back(
        dst, node.endpoint->CallAsync(dst, net::MsgType::kReplicationBatch,
                                      batches[dst].Release()));
    batches[dst].Adopt(node.endpoint->AcquirePayload());
  }
  bool ok = true;
  for (auto& [dst, tok] : tokens) {
    (void)dst;
    if (!node.endpoint->Wait(tok, nullptr,
                             MillisToNanos(options_.fence_timeout_ms))) {
      ok = false;
    }
  }
  return ok;
}

void StarEngine::LogCommitToWal(WorkerState& w, uint64_t tid,
                                const WriteSet& writes) {
  if (w.wal == nullptr) return;
  w.wal->AppendCommit(tid, writes);
}

// ---------------------------------------------------------------------------
// Lifecycle / metrics
// ---------------------------------------------------------------------------

void StarEngine::InjectFailure(int node) {
  // Fail-stop: cut the node off the transport; the coordinator notices at
  // the next fence (Section 4.5.2's definition of a failed node).  The
  // crashed process stops executing: park its workers.  (In a multi-process
  // deployment the real equivalent is killing the node's process.)
  transport_->SetDown(node, true);
  if (nodes_[node] != nullptr) {
    Node& n = *nodes_[node];
    n.fenced.store(true, std::memory_order_release);
    uint64_t word = n.phase_word.load(std::memory_order_acquire);
    n.phase_word.store(PackPhase(Phase::kStopped, SeqOf(word) + 1),
                       std::memory_order_release);
  }
}

void StarEngine::RequestRejoin(int node) {
  // In-process re-admission of a previously failed node; uses a fixed
  // incarnation nonce (the store restarts via ResetStorage, so there is
  // only ever one in-process incarnation at a time).
  MutexLock g(rejoin_mu_);
  if (node_healthy_[node].load(std::memory_order_acquire)) return;
  for (auto& [r, n] : rejoin_requests_) {
    if (r == node) return;
  }
  rejoin_requests_.emplace_back(node, kInProcessNonce);
}

bool StarEngine::RequestRejoinFromCoordinator(double timeout_ms) {
  Node* n = nullptr;
  for (auto& node : nodes_) {
    if (node != nullptr) {
      n = node.get();
      break;
    }
  }
  if (n == nullptr) return false;
  // Incarnation nonce: lets the coordinator tell a retried request from
  // this process apart from a request by yet another restart.
  uint64_t nonce =
      (static_cast<uint64_t>(getpid()) << 32) ^ NowNanos() ^ 1;
  if (nonce == 0) nonce = 1;
  WriteBuffer b;
  b.Write<int32_t>(n->id);
  b.Write<uint64_t>(nonce);
  std::string payload = b.Release();
  double budget_ms =
      timeout_ms > 0 ? timeout_ms : options_.rejoin_timeout_ms;
  uint64_t deadline = NowNanos() + MillisToNanos(budget_ms);
  // Jittered exponential backoff between attempts: under a gray network the
  // fixed-period retry storm both congests the recovering link and
  // synchronises with other rejoiners; the jitter (x0.5..x1.5) breaks that.
  Rng rng(nonce);
  double backoff_ms = std::max(1.0, options_.rejoin_backoff_min_ms);
  while (running_.load(std::memory_order_acquire) && NowNanos() < deadline) {
    std::string resp;
    // The ack leg is dropped while this node is still marked down at the
    // coordinator; keep retrying until the re-admission view opens the
    // link and an ack arrives.
    if (n->endpoint->Call(num_nodes_, net::MsgType::kRejoinRequest, payload,
                          &resp, MillisToNanos(300))) {
      return true;
    }
    double sleep_ms = backoff_ms * (0.5 + rng.NextDouble());
    uint64_t now = NowNanos();
    if (now >= deadline) break;
    uint64_t remain_ns = deadline - now;
    uint64_t sleep_ns = std::min(MillisToNanos(sleep_ms), remain_ns);
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
    backoff_ms = std::min(backoff_ms * 2, options_.rejoin_backoff_max_ms);
  }
  return false;
}

bool StarEngine::WaitForShutdown(double timeout_ms) {
  int want = 0;
  for (auto& node : nodes_) {
    if (node != nullptr) ++want;
  }
  uint64_t deadline = NowNanos() + MillisToNanos(timeout_ms);
  while (NowNanos() < deadline) {
    if (shutdown_seen_.load(std::memory_order_acquire) >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return shutdown_seen_.load(std::memory_order_acquire) >= want;
}

void StarEngine::CollectClusterSummary() {
  ClusterSummary s;
  // checksum per partition, as first reported; replicas must match it.
  std::map<int, uint64_t> first_sum;
  bool converged = true;
  for (int i : HealthyNodes()) {
    std::string resp;
    if (!coordinator_->Call(i, net::MsgType::kShutdown, "", &resp,
                            MillisToNanos(options_.fence_timeout_ms))) {
      continue;
    }
    ReadBuffer in(resp);
    s.committed += in.Read<uint64_t>();
    s.cross_partition += in.Read<uint64_t>();
    uint32_t np = in.Read<uint32_t>();
    for (uint32_t k = 0; k < np; ++k) {
      int32_t p = in.Read<int32_t>();
      uint64_t sum = in.Read<uint64_t>();
      auto [it, inserted] = first_sum.emplace(p, sum);
      if (!inserted && it->second != sum) converged = false;
    }
    ++s.nodes_reporting;
  }
  s.converged = converged && s.nodes_reporting > 0;
  s.valid = true;
  summary_ = s;
}

void StarEngine::ResetStats() {
  bool live = running_.load(std::memory_order_acquire);
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    for (auto& w : node->workers) {
      // Also clears the latency histogram — without that, warm-up samples
      // pollute every measured window.  While running, the histogram reset
      // is deferred to the owning worker (the histogram is single-writer);
      // on a stopped engine the workers are joined, so reset it directly.
      w->stats.Reset();
      if (!live) w->stats.MaybeResetLatency();
    }
    for (auto& r : node->readers) {
      r->committed.store(0, std::memory_order_relaxed);
      r->aborted.store(0, std::memory_order_relaxed);
      r->conflicts.store(0, std::memory_order_relaxed);
      r->keys.store(0, std::memory_order_relaxed);
      r->lag_epochs.store(0, std::memory_order_relaxed);
    }
    node->replication_ignored.store(0, std::memory_order_relaxed);
  }
  fence_count_.store(0, std::memory_order_relaxed);
  fence_ns_.store(0, std::memory_order_relaxed);
  fence_stop_ns_.store(0, std::memory_order_relaxed);
  fence_drain_ns_.store(0, std::memory_order_relaxed);
  net_bytes_at_reset_ = transport_->total_bytes();
  net_msgs_at_reset_ = transport_->total_messages();
  net_dropped_bytes_at_reset_ = transport_->dropped_bytes();
  net_dropped_msgs_at_reset_ = transport_->dropped_messages();
  measure_start_ns_ = NowNanos();
}

Metrics StarEngine::Snapshot() const {
  Metrics m;
  for (const auto& node : nodes_) {
    if (node == nullptr) continue;
    for (const auto& w : node->workers) {
      m.committed += w->stats.committed.load(std::memory_order_relaxed);
      m.aborted += w->stats.aborted.load(std::memory_order_relaxed);
      m.aborted_user += w->stats.aborted_user.load(std::memory_order_relaxed);
      m.single_partition +=
          w->stats.single_partition.load(std::memory_order_relaxed);
      m.cross_partition +=
          w->stats.cross_partition.load(std::memory_order_relaxed);
      m.latency.Merge(w->stats.latency);
    }
    for (const auto& r : node->readers) {
      m.replica_reads += r->committed.load(std::memory_order_relaxed);
      m.replica_read_aborts += r->aborted.load(std::memory_order_relaxed);
      m.replica_read_conflicts += r->conflicts.load(std::memory_order_relaxed);
      m.replica_read_keys += r->keys.load(std::memory_order_relaxed);
      m.replica_read_lag_epochs +=
          r->lag_epochs.load(std::memory_order_relaxed);
    }
    m.replication_ignored_batches +=
        node->replication_ignored.load(std::memory_order_relaxed);
    if (node->logs != nullptr) {
      m.wal_bytes += node->logs->bytes_written();
      m.wal_fsyncs += node->logs->fsyncs();
      m.wal_batches += node->logs->batches();
      m.wal_epoch_markers += node->logs->epoch_markers();
    }
    if (node->checkpointer != nullptr) {
      m.checkpoints += node->checkpointer->checkpoints_taken();
      m.checkpoint_entries += node->checkpointer->entries_written();
      m.checkpoint_bytes += node->checkpointer->bytes_written();
    }
    m.rejoin_fetch_bytes +=
        node->rejoin_bytes.load(std::memory_order_relaxed);
  }
  m.durable_epoch = durable_epoch();
  m.seconds = (NowNanos() - measure_start_ns_) / 1e9;
  m.network_bytes = transport_->total_bytes() - net_bytes_at_reset_;
  m.network_messages = transport_->total_messages() - net_msgs_at_reset_;
  m.network_dropped_bytes =
      transport_->dropped_bytes() - net_dropped_bytes_at_reset_;
  m.network_dropped_messages =
      transport_->dropped_messages() - net_dropped_msgs_at_reset_;
  return m;
}

Metrics StarEngine::Stop() {
  Metrics before = Snapshot();
  double seconds = before.seconds;

  // Refuse new external requests before any thread winds down; requests
  // already queued are failed below once their executors have exited.
  external_accepting_.store(false, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  if (coordinator_thread_.joinable()) coordinator_thread_.join();

  if (options_.multiprocess && coordinator_here_) {
    // The coordinator loop's exit broadcast parked every node in kStopped
    // (streams flushed).  Run one more stop+drain round so every accepted
    // replication batch is applied cluster-wide, then collect the final
    // stats + checksums; node processes exit once they have served it.
    Fence(Phase::kStopped, 0.0);
    CollectClusterSummary();
  }

  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    // The coordinator only messages healthy nodes; make sure every worker
    // (including those on failed nodes) observes the stop.
    uint64_t word = node->phase_word.load(std::memory_order_acquire);
    if (PhaseOf(word) != Phase::kStopped) {
      node->phase_word.store(PackPhase(Phase::kStopped, SeqOf(word) + 1),
                             std::memory_order_release);
    }
    for (auto& t : node->worker_threads) {
      if (t.joinable()) t.join();
    }
    for (auto& t : node->reader_threads) {
      if (t.joinable()) t.join();
    }
    node->control_running.store(false, std::memory_order_release);
    {
      // Pair the notify with the mailbox lock so a control thread between
      // its empty-check and its wait cannot miss the shutdown signal.
      MutexLock g(node->mail_mu);
    }
    node->mail_cv.NotifyAll();
    if (node->control_thread.joinable()) node->control_thread.join();
    if (node->checkpointer) node->checkpointer->Stop();
  }
  // Workers and readers are gone; anything still queued can never execute.
  FailExternalQueues();
  // Drain in-flight replication so all replicas converge before the io
  // threads stop (workers flushed their streams when they parked).
  uint64_t drain_deadline = NowNanos() + MillisToNanos(500);
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    if (!node_healthy_[node->id].load(std::memory_order_acquire)) continue;
    while (transport_->HasTraffic(node->id) && NowNanos() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    node->endpoint->Stop();
    // After the io threads stop, no new segments can arrive; Stop drains
    // the shard queues (every accepted batch reaches the store — the
    // convergence checks depend on it) and joins the replay workers.
    if (node->sharded != nullptr) node->sharded->Stop();
    // Drain every lane into the loggers, fsync, emit final epoch markers,
    // and join the logger threads.
    if (node->logs != nullptr) node->logs->Stop();
  }
  if (coordinator_ != nullptr) coordinator_->Stop();
  transport_->Stop();
  state_.store(SystemState::kStopped, std::memory_order_release);

  Metrics m = Snapshot();
  m.seconds = seconds;  // measure window ends at Stop() entry
  return m;
}

}  // namespace star
