#ifndef STAR_CORE_OPTIONS_H_
#define STAR_CORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/transport.h"

namespace star {

/// Execution phases of the phase-switching algorithm (Section 4).
enum class Phase : uint8_t {
  kStopped = 0,
  kPartitioned = 1,   // Section 4.1: serial per-partition execution
  kSingleMaster = 2,  // Section 4.2: Silo OCC on the designated master
  kFence = 3,         // Section 4.3: replication fence between phases
};

inline const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kStopped: return "stopped";
    case Phase::kPartitioned: return "partitioned";
    case Phase::kSingleMaster: return "single-master";
    case Phase::kFence: return "fence";
  }
  return "?";
}

/// When workers release committed results to the client-visible counters
/// (GroupCommitTracker).  kNone releases at the epoch boundary (fence
/// success), the paper's default; kDurable additionally holds results until
/// the cluster durable epoch E_d covers them — every release is then backed
/// by an fsync on every healthy node.
enum class CommitWait : uint8_t {
  kNone = 0,
  kDurable = 1,
};

/// Configuration of a StarEngine instance.
struct StarOptions {
  ClusterConfig cluster;

  /// Iteration time e = tau_p + tau_s (Equation 1).  The paper's default is
  /// 10 ms (Section 4.3).
  double iteration_ms = 10.0;

  /// Fraction P of cross-partition transactions in the offered workload
  /// (drives Equation 2's phase-length split).
  double cross_fraction = 0.1;

  /// Replication strategy (Section 5).  kHybrid is the paper's full design:
  /// value replication in the single-master phase, operation replication in
  /// the partitioned phase.  kValue is the default experimental baseline
  /// ("the hybrid replication optimization [is] disabled unless otherwise
  /// stated", Section 7.1.2).  kSyncValue holds write locks across the
  /// replication round trip in the single-master phase (SYNC STAR).
  ReplicationMode replication = ReplicationMode::kValue;

  /// Durability (Section 4.5.1).  Disabled by default, as in the paper's
  /// main experiments.
  bool durable_logging = false;
  bool checkpointing = false;
  double checkpoint_period_ms = 500.0;
  std::string log_dir = "/tmp/star_logs";
  bool fsync = false;
  /// Dedicated logger threads per node (group commit, wal/logger.h): the
  /// fleet that batches published lane buffers into per-shard WAL files and
  /// advances the node's durable epoch.  Clamped to [1, lanes].
  int log_workers = 1;
  /// Pin logger threads to cores (Linux; off by default — pointless on the
  /// single-vCPU dev container).
  bool logger_affinity = false;
  /// WAL/checkpoint GC: rotate each shard WAL into segments of this size;
  /// segments (and prior incarnations) fully covered by a durable
  /// checkpoint link are deleted, so sustained serving load cannot grow
  /// the log directory unboundedly.  0 = never rotate.
  size_t wal_segment_bytes = 64ull << 20;
  /// Compact the checkpoint chain into a fresh base once it reaches this
  /// many links, sweeping the superseded link files.  0 = never compact.
  int checkpoint_max_chain = 16;
  /// See CommitWait.  kDurable requires durable_logging.
  CommitWait commit_wait = CommitWait::kNone;
  /// Recover the hosted nodes' databases from log_dir before serving
  /// (checkpoint chain + log tail, wal::Recover).  A rejoining process sets
  /// this to turn the snapshot refetch into a delta fetch.
  bool recover_on_start = false;

  /// Maintain two versions per record so an uncommitted epoch can be
  /// reverted after a failure (Section 4.5.2).  Required for failure
  /// injection; costs one value copy on the first write per record per
  /// epoch.
  bool two_version = false;

  /// Floor on a phase length when both kinds of transactions are present.
  double min_phase_ms = 0.2;

  /// Failure detection: how long the coordinator waits for a fence response
  /// before declaring a node failed (Section 4.5.2).
  double fence_timeout_ms = 3000.0;

  // --- gray-failure hardening (fault injection + chaos, net/fault_transport) ---

  /// Consecutive missed fences before the coordinator writes a node off.
  /// 1 (the default) is the paper's fail-stop assumption: the first timeout
  /// is a crash.  Under gray networks (delay, loss, flaps) raise it so a
  /// slow-but-alive node survives: a fence that misses anyone below the
  /// threshold simply retries — safe because a failed fence never advances
  /// the epoch and re-fencing is idempotent.  Answering any fence resets a
  /// node's streak (slow, not dead).
  int fence_miss_threshold = 1;
  /// Cap on the phase-start ack wait (previously a fixed 500 ms).  The acks
  /// only pace the coordinator — per-link FIFO already orders the phase
  /// start before the following fence — so this stays well under the fence
  /// timeout; chaos tests shrink it to keep iterations short under faults.
  double phase_ack_wait_ms = 500.0;
  /// Extra attempts for coordinator-side control RPCs that would otherwise
  /// be one-shot (phase-start acks, view-change acks).  Re-sends are safe:
  /// both handlers are idempotent (phase re-entry re-parks, views are
  /// generation-guarded).  0 restores single-shot behavior.
  int coord_rpc_retries = 2;
  /// Jittered exponential backoff between those re-sends.
  double coord_backoff_min_ms = 20.0;
  double coord_backoff_max_ms = 250.0;
  /// Total budget for RequestRejoinFromCoordinator when its caller does not
  /// pass one explicitly (previously a fixed 15 s).
  double rejoin_timeout_ms = 15000.0;
  /// Jittered exponential backoff between rejoin-request attempts
  /// (previously a fixed 100 ms sleep).
  double rejoin_backoff_min_ms = 50.0;
  double rejoin_backoff_max_ms = 1000.0;
  /// A node that hears nothing from the coordinator for this long parks
  /// itself — workers stop committing and replica readers stop serving —
  /// instead of running on a potentially stale view across a partition;
  /// the next coordinator message un-parks it.  0 (default) auto-derives
  /// max(3000 ms, 8 x fence_timeout_ms); negative disables self-parking.
  double coordinator_silence_ms = 0.0;
  /// Network fault injection (delay/jitter, drops, asymmetric partitions,
  /// flaps) executed by the net::FaultTransport decorator over whichever
  /// substrate `transport` selects.  Disabled by default.
  net::FaultOptions fault;

  /// Exponential smoothing for the monitored throughputs t_p, t_s.
  double throughput_ewma = 0.5;

  /// Workers call sched_yield after this many transactions so that, on
  /// hosts with fewer cores than workers, every worker observes fence flags
  /// promptly (keeps the stop round short).  0 disables.
  uint32_t yield_every_n_txns = 64;

  /// Replica-served read-only transactions (cc/snapshot.h): per node, this
  /// many dedicated reader threads execute Workload::MakeReadOnly requests
  /// against the local replica with zero coordination — no locks, no OCC
  /// registration, no messages — validating against the applied-epoch
  /// watermark the replication fence publishes.  Readers run through BOTH
  /// phases (they never park at fences: that independence is the point) and
  /// scale read throughput with the replica fleet without touching the
  /// write path.  0 (the default) spawns none.  No effect on workloads
  /// without a read-only transaction class.
  int replica_read_workers = 0;
  /// Consistency served to replica readers: kSnapshot (consistent committed
  /// snapshot, validated, the default) or kMonotonic (best-effort fresh, no
  /// validation) — see ReplicaReadMode.
  ReplicaReadMode replica_read_mode = ReplicaReadMode::kSnapshot;

  // --- external requests (serving front end, src/serve/) ---

  /// When true (the default, and what every closed-loop bench measures),
  /// workers and readers generate their own Workload transactions whenever
  /// no external request is queued.  The serving bench turns this off so
  /// the engine executes exactly the offered open-loop load and idle
  /// threads sleep instead of saturating the machine.
  bool synthetic_load = true;
  /// Per-queue bound on externally submitted requests; SubmitExternal
  /// returns false at the bound (backpressure → the server sheds).
  size_t external_queue_cap = 8192;

  // --- deployment (Transport split) ---

  /// Message substrate.  kSim (the default) keeps the latency/bandwidth
  /// model every figure reproduction depends on; kTcp runs the identical
  /// protocol over real nonblocking sockets (single- or multi-process).
  net::TransportKind transport = net::TransportKind::kSim;
  /// TCP substrate: node i listens on tcp_base_port + i, the coordinator on
  /// tcp_base_port + nodes().  0 picks ephemeral ports, which only works
  /// when the whole cluster lives in one process.
  std::string tcp_host = "127.0.0.1";
  int tcp_base_port = 0;

  /// Multi-process deployment: when true, this process hosts only
  /// `hosted_nodes` (plus the phase-switching coordinator if
  /// `hosted_coordinator`); the rest of the cluster runs in sibling
  /// processes constructed from the same options.  Requires kTcp.
  bool multiprocess = false;
  std::vector<int> hosted_nodes;
  bool hosted_coordinator = false;
  /// A rejoining node process starts with an empty database and asks the
  /// coordinator for re-admission + snapshot fetch instead of populating
  /// (see RequestRejoinFromCoordinator).
  bool rejoining = false;
  /// Multi-process startup: how long the coordinator pings node processes
  /// (they may still be binding their ports) before starting the first
  /// phase and letting fence timeouts declare stragglers failed.
  double startup_barrier_ms = 20000.0;
};

/// State of the system as a whole, driven by failure handling
/// (Section 4.5.3).
enum class SystemState : uint8_t {
  kRunning = 0,
  /// Case 2: no full replica remains; a production deployment falls back to
  /// a distributed concurrency-control mode (our DistOccEngine).  The engine
  /// halts and reports this state.
  kFallbackDistributed = 2,
  /// Case 4: no complete copy remains; availability is lost until recovery
  /// from disk (wal::Recover).
  kUnavailable = 4,
  kStopped = 255,
};

}  // namespace star

#endif  // STAR_CORE_OPTIONS_H_
