#ifndef STAR_STORAGE_HASH_TABLE_H_
#define STAR_STORAGE_HASH_TABLE_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "storage/ordered_index.h"
#include "storage/record.h"

namespace star {

/// A heap block for table-sized structures (bucket arrays, node arenas).
/// A DRAM-resident table on 4 KB pages spends a large share of every lookup
/// in TLB walks — and software prefetches that miss the dTLB can be dropped,
/// which would gut the replay pipeline's prefetched apply loop.  Blocks of
/// >= 2 MB therefore try, in order:
///   1. explicit 2 MB pages (MAP_HUGETLB; needs a provisioned
///      /proc/sys/vm/nr_hugepages pool — bench harnesses reserve one),
///   2. a 2 MB-aligned heap block advised onto transparent huge pages,
///   3. the plain heap.
/// Small blocks stay on the regular heap (hundreds of small test tables
/// must not round up to 2 MB each).
struct TableBlock {
  enum class Kind : uint8_t { kHeap, kAligned, kHugeTlb };

  char* p = nullptr;
  size_t bytes = 0;
  Kind kind = Kind::kHeap;

  static TableBlock Allocate(size_t bytes) {
    constexpr size_t kHuge = size_t{2} << 20;
    TableBlock b;
    if (bytes >= kHuge) {
      size_t rounded = (bytes + kHuge - 1) & ~(kHuge - 1);
#if defined(__linux__)
      void* m = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (m != MAP_FAILED) {
        b.p = static_cast<char*>(m);
        b.bytes = rounded;
        b.kind = Kind::kHugeTlb;
        return b;
      }
#endif
      b.p = static_cast<char*>(std::aligned_alloc(kHuge, rounded));
      if (b.p != nullptr) {
        b.bytes = rounded;
        b.kind = Kind::kAligned;
#if defined(__linux__)
        madvise(b.p, rounded, MADV_HUGEPAGE);
#endif
        return b;
      }
      // Fall through to the plain heap on aligned_alloc failure.
    }
    b.p = new char[bytes];
    b.bytes = bytes;
    b.kind = Kind::kHeap;
    return b;
  }

  void Free() {
    if (p == nullptr) return;
    switch (kind) {
      case Kind::kHeap:
        delete[] p;
        break;
      case Kind::kAligned:
        std::free(p);
        break;
      case Kind::kHugeTlb:
#if defined(__linux__)
        munmap(p, bytes);
#endif
        break;
    }
    p = nullptr;
  }
};

/// Mixes a 64-bit key (finalizer of SplitMix64); good avalanche for the
/// dense integer keys our workloads use.
inline uint64_t HashKey(uint64_t k) {
  k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ull;
  k = (k ^ (k >> 27)) * 0x94D049BB133111EBull;
  return k ^ (k >> 31);
}

/// Chaining hash table with per-bucket spinlocks and arena-allocated nodes,
/// the primary-index structure of Section 3 ("Tables in STAR are implemented
/// as collections of hash tables").
///
/// Properties the engines rely on:
///  * Record pointers are stable for the table's lifetime (nodes are never
///    moved or freed), so transactions can stash `Record*` in read/write
///    sets and replication can target records directly.
///  * Lookups of existing keys only take the bucket latch on the miss path
///    of an insert; Get is latch-free (bucket chains are immutable except
///    for head insertion, done with release stores).
///  * Values are fixed-size byte arrays (`value_size`), with an optional
///    trailing backup slot of the same size for epoch revert (two-version
///    records, Section 4.5.2).
class HashTable {
 public:
  /// `expected_rows` sizes the bucket array (no resizing; chains absorb
  /// growth).  `two_version` reserves the backup slot in every node.
  /// `ordered` additionally maintains an OrderedIndex over the primary keys,
  /// kept in sync with the hash table by every insert path (bulk load,
  /// transactional insert materialisation, replication apply, snapshot
  /// fetch) so scans and point lookups always agree.
  HashTable(uint32_t value_size, size_t expected_rows, bool two_version,
            bool ordered = false)
      : value_size_(value_size),
        two_version_(two_version),
        node_bytes_((sizeof(NodeHeader) + sizeof(Record) +
                     static_cast<size_t>(value_size) * (two_version ? 2 : 1) +
                     15) &
                    ~size_t{15}) {
    size_t want = expected_rows + expected_rows / 2 + 16;
    size_t cap = 16;
    while (cap < want) cap <<= 1;
    bucket_block_ = TableBlock::Allocate(cap * sizeof(Bucket));
    buckets_ = reinterpret_cast<Bucket*>(bucket_block_.p);
    for (size_t i = 0; i < cap; ++i) new (&buckets_[i]) Bucket();
    mask_ = cap - 1;
    if (ordered) index_ = std::make_unique<OrderedIndex>();
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  ~HashTable() {
    // Buckets are trivially destructible (atomics only); just release the
    // blocks.  The guard is for the analysis: no thread can race a dtor.
    bucket_block_.Free();
    SpinLockGuard g(arena_mu_);
    for (TableBlock& chunk : chunks_) chunk.Free();
  }

  /// Returns the record for `key`, or nullptr if the key has never been
  /// inserted.  A present node whose Record is marked absent is returned:
  /// absence is a visibility property, existence a storage property.
  Record* Get(uint64_t key) const {
    const Bucket& b = buckets_[HashKey(key) & mask_];
    for (NodeHeader* n = b.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      if (n->key == key) return RecordOf(n);
    }
    return nullptr;
  }

  /// Returns the record for `key`, creating an absent-marked record if the
  /// key is new.  `*inserted` reports whether a node was created.
  Record* GetOrInsert(uint64_t key, bool* inserted = nullptr) {
    Bucket& b = buckets_[HashKey(key) & mask_];
    // Fast path: already present.
    for (NodeHeader* n = b.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      if (n->key == key) {
        if (inserted != nullptr) *inserted = false;
        return RecordOf(n);
      }
    }
    SpinLockGuard g(b.mu);
    // Re-check under the latch: another thread may have inserted.
    for (NodeHeader* n = b.head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next) {
      if (n->key == key) {
        if (inserted != nullptr) *inserted = false;
        return RecordOf(n);
      }
    }
    NodeHeader* n = AllocateNode();
    n->key = key;
    n->next = b.head.load(std::memory_order_relaxed);
    Record* rec = RecordOf(n);
    rec->Init(/*absent=*/true);
    std::memset(ValueOf(n), 0, value_size_);
    // Index before publishing in the bucket: the record is still absent, so
    // the ordering is unobservable, but this way a key reachable by Get is
    // always reachable by Scan.
    if (index_ != nullptr) index_->Insert(key, rec);
    b.head.store(n, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (inserted != nullptr) *inserted = true;
    return rec;
  }

  /// Value bytes that belong to `rec` (the Record returned by Get).
  char* ValueOfRecord(Record* rec) const {
    return reinterpret_cast<char*>(rec) + sizeof(Record);
  }
  const char* ValueOfRecord(const Record* rec) const {
    return reinterpret_cast<const char*>(rec) + sizeof(Record);
  }

  /// A record with its value pointer — the unit engines keep in read/write
  /// sets.
  struct Row {
    Record* rec = nullptr;
    char* value = nullptr;
    uint32_t size = 0;

    bool valid() const { return rec != nullptr; }
    /// Consistent optimistic read; returns the observed meta word.
    uint64_t ReadStable(void* out) const {
      return rec->ReadStable(out, size, value);
    }
  };

  /// Row lookup; Row.rec == nullptr when the key was never inserted.
  Row GetRow(uint64_t key) const {
    Record* rec = Get(key);
    if (rec == nullptr) return Row{};
    return Row{rec, const_cast<HashTable*>(this)->ValueOfRecord(rec),
               value_size_};
  }

  Row GetOrInsertRow(uint64_t key, bool* inserted = nullptr) {
    Record* rec = GetOrInsert(key, inserted);
    return Row{rec, ValueOfRecord(rec), value_size_};
  }

  // --- pipelined lookups (replication replay, Section 5) ---
  //
  // A lookup is a chain of dependent cache misses: bucket cell -> first
  // node -> value bytes.  The replay apply loop breaks the chain across a
  // window of entries: PrefetchBucket while decoding headers, LoadHead a
  // few entries later (issues the node-line prefetch), FindFrom when that
  // line has arrived.  Each stage only touches memory the previous stage
  // prefetched, so the misses of neighbouring entries overlap.

  /// Stage 1: prefetch the bucket cell for `key`.
  void PrefetchBucket(uint64_t key) const {
    __builtin_prefetch(&buckets_[HashKey(key) & mask_], 0, 1);
  }

  /// Stage 2: load the bucket head (cell line should be resident by now)
  /// and prefetch the first node.  The returned cursor is opaque; nullptr
  /// means the bucket is empty.
  const void* LoadHead(uint64_t key) const {
    NodeHeader* n =
        buckets_[HashKey(key) & mask_].head.load(std::memory_order_acquire);
    if (n != nullptr) __builtin_prefetch(n, 0, 1);
    return n;
  }

  /// Stage 3: walk the chain from a LoadHead cursor.  Row.rec == nullptr
  /// when the key is not present (the caller falls back to GetOrInsertRow).
  Row FindFrom(const void* head, uint64_t key) const {
    for (const NodeHeader* n = static_cast<const NodeHeader*>(head);
         n != nullptr; n = n->next) {
      if (n->key == key) {
        Record* rec = RecordOf(const_cast<NodeHeader*>(n));
        return Row{rec, const_cast<HashTable*>(this)->ValueOfRecord(rec),
                   value_size_};
      }
    }
    return Row{};
  }

  /// Iterates every node: fn(key, record, value_bytes).  Takes each bucket
  /// latch; safe against concurrent inserts (used by the checkpointer and
  /// by epoch revert).
  void ForEach(
      const std::function<void(uint64_t, Record*, char*)>& fn) {
    for (size_t i = 0; i <= mask_; ++i) {
      Bucket& b = buckets_[i];
      SpinLockGuard g(b.mu);
      for (NodeHeader* n = b.head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next) {
        fn(n->key, RecordOf(n), ValueOf(n));
      }
    }
  }

  uint32_t value_size() const { return value_size_; }
  bool two_version() const { return two_version_; }
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// The ordered primary-key index, or nullptr for hash-only tables.
  OrderedIndex* index() const { return index_.get(); }

 private:
  struct NodeHeader {
    NodeHeader* next;
    uint64_t key;
    // followed by: Record (16 bytes), value bytes, optional backup bytes
  };

  /// `head` is deliberately NOT guarded by `mu`: lookups are latch-free by
  /// design (chains are immutable except head insertion, published with a
  /// release store under the latch).  The latch serialises *writers* only.
  struct Bucket {
    SpinLock mu;
    std::atomic<NodeHeader*> head{nullptr};
  };

  static Record* RecordOf(NodeHeader* n) {
    return reinterpret_cast<Record*>(reinterpret_cast<char*>(n) +
                                     sizeof(NodeHeader));
  }
  char* ValueOf(NodeHeader* n) const {
    return reinterpret_cast<char*>(n) + sizeof(NodeHeader) + sizeof(Record);
  }

  /// Bump allocator; called with the bucket latch held, guarded by its own
  /// latch because different buckets share the arena.  Chunks grow from
  /// kFirstChunkBytes doubling up to kChunkBytes, so small tables stay
  /// small while big tables converge to huge-page-backed 2 MB chunks.
  NodeHeader* AllocateNode() {
    SpinLockGuard g(arena_mu_);
    if (chunks_.empty() || arena_used_ + node_bytes_ > chunks_.back().bytes) {
      size_t want = chunks_.empty() ? kFirstChunkBytes
                                    : chunks_.back().bytes * 2;
      if (want > kChunkBytes) want = kChunkBytes;
      if (want < node_bytes_) want = node_bytes_;
      chunks_.push_back(TableBlock::Allocate(want));
      arena_used_ = 0;
    }
    char* p = chunks_.back().p + arena_used_;
    arena_used_ += node_bytes_;
    return reinterpret_cast<NodeHeader*>(p);
  }

  static constexpr size_t kFirstChunkBytes = 64 << 10;
  static constexpr size_t kChunkBytes = 2 << 20;

  uint32_t value_size_;
  bool two_version_;
  size_t node_bytes_;
  TableBlock bucket_block_;
  Bucket* buckets_ = nullptr;
  size_t mask_;
  std::atomic<size_t> size_{0};

  SpinLock arena_mu_;
  std::vector<TableBlock> chunks_ STAR_GUARDED_BY(arena_mu_);
  size_t arena_used_ STAR_GUARDED_BY(arena_mu_) = 0;
  std::unique_ptr<OrderedIndex> index_;
};

}  // namespace star

#endif  // STAR_STORAGE_HASH_TABLE_H_
