#ifndef STAR_STORAGE_HASH_TABLE_H_
#define STAR_STORAGE_HASH_TABLE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/spinlock.h"
#include "storage/ordered_index.h"
#include "storage/record.h"

namespace star {

/// Mixes a 64-bit key (finalizer of SplitMix64); good avalanche for the
/// dense integer keys our workloads use.
inline uint64_t HashKey(uint64_t k) {
  k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ull;
  k = (k ^ (k >> 27)) * 0x94D049BB133111EBull;
  return k ^ (k >> 31);
}

/// Chaining hash table with per-bucket spinlocks and arena-allocated nodes,
/// the primary-index structure of Section 3 ("Tables in STAR are implemented
/// as collections of hash tables").
///
/// Properties the engines rely on:
///  * Record pointers are stable for the table's lifetime (nodes are never
///    moved or freed), so transactions can stash `Record*` in read/write
///    sets and replication can target records directly.
///  * Lookups of existing keys only take the bucket latch on the miss path
///    of an insert; Get is latch-free (bucket chains are immutable except
///    for head insertion, done with release stores).
///  * Values are fixed-size byte arrays (`value_size`), with an optional
///    trailing backup slot of the same size for epoch revert (two-version
///    records, Section 4.5.2).
class HashTable {
 public:
  /// `expected_rows` sizes the bucket array (no resizing; chains absorb
  /// growth).  `two_version` reserves the backup slot in every node.
  /// `ordered` additionally maintains an OrderedIndex over the primary keys,
  /// kept in sync with the hash table by every insert path (bulk load,
  /// transactional insert materialisation, replication apply, snapshot
  /// fetch) so scans and point lookups always agree.
  HashTable(uint32_t value_size, size_t expected_rows, bool two_version,
            bool ordered = false)
      : value_size_(value_size),
        two_version_(two_version),
        node_bytes_((sizeof(NodeHeader) + sizeof(Record) +
                     static_cast<size_t>(value_size) * (two_version ? 2 : 1) +
                     15) &
                    ~size_t{15}) {
    size_t want = expected_rows + expected_rows / 2 + 16;
    size_t cap = 16;
    while (cap < want) cap <<= 1;
    buckets_ = std::vector<Bucket>(cap);
    mask_ = cap - 1;
    if (ordered) index_ = std::make_unique<OrderedIndex>();
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  ~HashTable() {
    for (char* chunk : chunks_) delete[] chunk;
  }

  /// Returns the record for `key`, or nullptr if the key has never been
  /// inserted.  A present node whose Record is marked absent is returned:
  /// absence is a visibility property, existence a storage property.
  Record* Get(uint64_t key) const {
    const Bucket& b = buckets_[HashKey(key) & mask_];
    for (NodeHeader* n = b.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      if (n->key == key) return RecordOf(n);
    }
    return nullptr;
  }

  /// Returns the record for `key`, creating an absent-marked record if the
  /// key is new.  `*inserted` reports whether a node was created.
  Record* GetOrInsert(uint64_t key, bool* inserted = nullptr) {
    Bucket& b = buckets_[HashKey(key) & mask_];
    // Fast path: already present.
    for (NodeHeader* n = b.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      if (n->key == key) {
        if (inserted != nullptr) *inserted = false;
        return RecordOf(n);
      }
    }
    std::lock_guard<SpinLock> g(b.mu);
    // Re-check under the latch: another thread may have inserted.
    for (NodeHeader* n = b.head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next) {
      if (n->key == key) {
        if (inserted != nullptr) *inserted = false;
        return RecordOf(n);
      }
    }
    NodeHeader* n = AllocateNode();
    n->key = key;
    n->next = b.head.load(std::memory_order_relaxed);
    Record* rec = RecordOf(n);
    rec->Init(/*absent=*/true);
    std::memset(ValueOf(n), 0, value_size_);
    // Index before publishing in the bucket: the record is still absent, so
    // the ordering is unobservable, but this way a key reachable by Get is
    // always reachable by Scan.
    if (index_ != nullptr) index_->Insert(key, rec);
    b.head.store(n, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (inserted != nullptr) *inserted = true;
    return rec;
  }

  /// Value bytes that belong to `rec` (the Record returned by Get).
  char* ValueOfRecord(Record* rec) const {
    return reinterpret_cast<char*>(rec) + sizeof(Record);
  }
  const char* ValueOfRecord(const Record* rec) const {
    return reinterpret_cast<const char*>(rec) + sizeof(Record);
  }

  /// A record with its value pointer — the unit engines keep in read/write
  /// sets.
  struct Row {
    Record* rec = nullptr;
    char* value = nullptr;
    uint32_t size = 0;

    bool valid() const { return rec != nullptr; }
    /// Consistent optimistic read; returns the observed meta word.
    uint64_t ReadStable(void* out) const {
      return rec->ReadStable(out, size, value);
    }
  };

  /// Row lookup; Row.rec == nullptr when the key was never inserted.
  Row GetRow(uint64_t key) const {
    Record* rec = Get(key);
    if (rec == nullptr) return Row{};
    return Row{rec, const_cast<HashTable*>(this)->ValueOfRecord(rec),
               value_size_};
  }

  Row GetOrInsertRow(uint64_t key, bool* inserted = nullptr) {
    Record* rec = GetOrInsert(key, inserted);
    return Row{rec, ValueOfRecord(rec), value_size_};
  }

  /// Iterates every node: fn(key, record, value_bytes).  Takes each bucket
  /// latch; safe against concurrent inserts (used by the checkpointer and
  /// by epoch revert).
  void ForEach(
      const std::function<void(uint64_t, Record*, char*)>& fn) {
    for (Bucket& b : buckets_) {
      std::lock_guard<SpinLock> g(b.mu);
      for (NodeHeader* n = b.head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next) {
        fn(n->key, RecordOf(n), ValueOf(n));
      }
    }
  }

  uint32_t value_size() const { return value_size_; }
  bool two_version() const { return two_version_; }
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// The ordered primary-key index, or nullptr for hash-only tables.
  OrderedIndex* index() const { return index_.get(); }

 private:
  struct NodeHeader {
    NodeHeader* next;
    uint64_t key;
    // followed by: Record (16 bytes), value bytes, optional backup bytes
  };

  struct Bucket {
    SpinLock mu;
    std::atomic<NodeHeader*> head{nullptr};
  };

  static Record* RecordOf(NodeHeader* n) {
    return reinterpret_cast<Record*>(reinterpret_cast<char*>(n) +
                                     sizeof(NodeHeader));
  }
  char* ValueOf(NodeHeader* n) const {
    return reinterpret_cast<char*>(n) + sizeof(NodeHeader) + sizeof(Record);
  }

  /// Bump allocator; called with the bucket latch held, guarded by its own
  /// latch because different buckets share the arena.
  NodeHeader* AllocateNode() {
    std::lock_guard<SpinLock> g(arena_mu_);
    if (arena_used_ + node_bytes_ > kChunkBytes || chunks_.empty()) {
      size_t chunk_size = node_bytes_ > kChunkBytes ? node_bytes_ : kChunkBytes;
      chunks_.push_back(new char[chunk_size]);
      arena_used_ = 0;
    }
    char* p = chunks_.back() + arena_used_;
    arena_used_ += node_bytes_;
    return reinterpret_cast<NodeHeader*>(p);
  }

  static constexpr size_t kChunkBytes = 1 << 20;

  uint32_t value_size_;
  bool two_version_;
  size_t node_bytes_;
  std::vector<Bucket> buckets_;
  size_t mask_;
  std::atomic<size_t> size_{0};

  SpinLock arena_mu_;
  std::vector<char*> chunks_;
  size_t arena_used_ = 0;
  std::unique_ptr<OrderedIndex> index_;
};

}  // namespace star

#endif  // STAR_STORAGE_HASH_TABLE_H_
