#ifndef STAR_STORAGE_DATABASE_H_
#define STAR_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/hash_table.h"

namespace star {

/// Schema of one table: fixed-size values keyed by 64-bit primary keys
/// (composite keys are packed by the workload; Section 3's hash-table
/// storage model).
struct TableSchema {
  std::string name;
  uint32_t value_size = 0;
  /// Sizing hint per partition for the bucket array.
  size_t expected_rows_per_partition = 1024;
  /// Maintain an OrderedIndex over the primary keys so the table supports
  /// `Scan` (range queries).  Key packings must therefore be order-preserving
  /// for the ranges the workload scans.
  bool ordered = false;
};

/// One node's copy of the database: a [table x partition] grid of hash
/// tables, instantiated only for the partitions this node stores (full
/// replicas store all partitions, partial replicas a subset — Figure 2).
class Database {
 public:
  Database(std::vector<TableSchema> schemas, int num_partitions,
           const std::vector<int>& present_partitions, bool two_version)
      : schemas_(std::move(schemas)),
        num_partitions_(num_partitions),
        present_(num_partitions, false),
        two_version_(two_version) {
    tables_.resize(schemas_.size());
    for (size_t t = 0; t < schemas_.size(); ++t) {
      tables_[t].resize(num_partitions);
    }
    for (int p : present_partitions) {
      present_[p] = true;
      for (size_t t = 0; t < schemas_.size(); ++t) {
        tables_[t][p] = MakeTable(t);
      }
    }
  }

  /// The hash table for (table, partition); nullptr if the partition is not
  /// stored on this node.
  HashTable* table(int table_id, int partition) const {
    return tables_[table_id][partition].get();
  }

  bool HasPartition(int partition) const { return present_[partition]; }

  /// Adds storage for a partition (used when mastership is reassigned during
  /// recovery, Section 4.5.3 Case 3, or when a recovering node re-fetches
  /// partitions).
  void AddPartition(int partition) {
    if (present_[partition]) return;
    present_[partition] = true;
    for (size_t t = 0; t < schemas_.size(); ++t) {
      tables_[t][partition] = MakeTable(t);
    }
  }

  /// Bulk-load path used by workload population: installs a record with the
  /// load-time TID (epoch 0), which any transactional write outranks under
  /// the Thomas write rule.
  void Load(int table_id, int partition, uint64_t key, const void* value) {
    HashTable* ht = tables_[table_id][partition].get();
    HashTable::Row row = ht->GetOrInsertRow(key);
    row.rec->LockSpin();
    row.rec->Store(kLoadTid, value, row.size, row.value, false);
    row.rec->UnlockWithTid(kLoadTid);
  }

  /// TID assigned to loaded records: epoch 0, sequence 1.
  static constexpr uint64_t kLoadTid = 1ull << Tid::kThreadBits;

  /// Discards every version written in `epoch` (Section 4.5.2: on failure
  /// the system "reverts the database to the last committed epoch").  All
  /// workers must be quiesced.
  void RevertEpoch(uint64_t epoch) {
    for (size_t t = 0; t < tables_.size(); ++t) {
      for (int p = 0; p < num_partitions_; ++p) {
        HashTable* ht = tables_[t][p].get();
        if (ht == nullptr) continue;
        ht->ForEach([&](uint64_t, Record* rec, char* value) {
          rec->RevertEpoch(epoch, ht->value_size(), value);
        });
      }
    }
  }

  /// Discards all data while keeping the Database object (and every pointer
  /// to it) valid — models a node restarting with empty memory before
  /// re-fetching its partitions (Section 4.5.3, Case 1 recovery).
  void ResetStorage() {
    for (size_t t = 0; t < tables_.size(); ++t) {
      for (int p = 0; p < num_partitions_; ++p) {
        if (tables_[t][p] != nullptr) {
          tables_[t][p] = MakeTable(t);
        }
      }
    }
  }

  int num_tables() const { return static_cast<int>(schemas_.size()); }
  int num_partitions() const { return num_partitions_; }
  bool two_version() const { return two_version_; }
  const TableSchema& schema(int table_id) const { return schemas_[table_id]; }
  const std::vector<TableSchema>& schemas() const { return schemas_; }

 private:
  std::unique_ptr<HashTable> MakeTable(size_t t) const {
    return std::make_unique<HashTable>(
        schemas_[t].value_size, schemas_[t].expected_rows_per_partition,
        two_version_, schemas_[t].ordered);
  }

  std::vector<TableSchema> schemas_;
  int num_partitions_;
  std::vector<bool> present_;
  bool two_version_;
  /// tables_[table][partition]; null for partitions not stored here.
  std::vector<std::vector<std::unique_ptr<HashTable>>> tables_;
};

}  // namespace star

#endif  // STAR_STORAGE_DATABASE_H_
