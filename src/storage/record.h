#ifndef STAR_STORAGE_RECORD_H_
#define STAR_STORAGE_RECORD_H_

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "common/tid.h"

namespace star {

/// A record slot: one 64-bit meta word followed (in the enclosing hash-table
/// node) by the value bytes and, when fault tolerance is enabled, a backup
/// copy of the previous epoch's value (Section 4.5.2: "the database maintains
/// two versions of each record").
///
/// Meta word layout:  [ lock : 1 ][ absent : 1 ][ tid : 62 ]
///
/// Concurrency protocol (Silo variant, Section 3):
///  * Readers use ReadStable: copy the value between two meta-word loads and
///    retry if the word changed or was locked — an optimistic, latch-free
///    read.
///  * Writers either own the partition exclusively (partitioned phase: no
///    locking at all) or hold the record lock (single-master phase commit).
///  * Replication appliers use ApplyThomas: last-writer-wins on TID, which
///    tolerates arbitrary reordering of the replication stream.
class Record {
 public:
  static constexpr uint64_t kLockBit = 1ull << 63;
  static constexpr uint64_t kAbsentBit = 1ull << 62;

  /// In-place initialisation (records live inside arena-allocated hash
  /// nodes; there is no constructor call path through operator new).
  void Init(bool absent) {
    word_.store(absent ? kAbsentBit : 0, std::memory_order_relaxed);
    backup_tid_ = kNoBackup;
  }

  // --- meta word ---

  uint64_t LoadWord(std::memory_order order = std::memory_order_acquire) const {
    return word_.load(order);
  }
  static bool IsLocked(uint64_t word) { return (word & kLockBit) != 0; }
  static bool IsAbsent(uint64_t word) { return (word & kAbsentBit) != 0; }
  static uint64_t TidOf(uint64_t word) { return word & Tid::kTidMask; }

  bool IsPresent() const { return !IsAbsent(LoadWord()); }
  uint64_t LoadTid() const { return TidOf(LoadWord()); }

  STAR_HOT_PATH bool TryLock() {
    uint64_t w = word_.load(std::memory_order_relaxed);
    if (IsLocked(w)) return false;
    return word_.compare_exchange_strong(w, w | kLockBit,
                                         std::memory_order_acquire);
  }

  /// Acquires the record lock, spinning.  Deadlock freedom is the caller's
  /// obligation (write sets are locked in address order).
  STAR_HOT_PATH void LockSpin() {
    int spins = 0;
    while (!TryLock()) {
      CpuRelax();
      if (++spins > 256) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  STAR_HOT_PATH void Unlock() {
    word_.store(word_.load(std::memory_order_relaxed) & ~kLockBit,
                std::memory_order_release);
  }

  /// Releases the lock and installs a new TID (and clears the absent bit):
  /// the final step of a Silo commit on this record.
  STAR_HOT_PATH void UnlockWithTid(uint64_t tid) {
    word_.store(tid & Tid::kTidMask, std::memory_order_release);
  }

  /// Releases the lock leaving the record logically absent — the abort path
  /// for a record created by this transaction's insert.
  STAR_HOT_PATH void UnlockMarkAbsent() { word_.store(kAbsentBit, std::memory_order_release); }

  /// Releases the lock installing a delete: the record becomes a tombstone
  /// carrying `tid`, so later reads observe absence, scans skip it, and the
  /// Thomas write rule on replicas correctly orders the delete against
  /// concurrent value writes of the same record.
  STAR_HOT_PATH void UnlockWithTidAbsent(uint64_t tid) {
    word_.store(kAbsentBit | (tid & Tid::kTidMask), std::memory_order_release);
  }

  // --- data access ---

  /// Optimistic consistent read: copies `size` bytes of the value into `out`
  /// and returns the meta word observed (TID + absent bit).  Spins while the
  /// record is locked or the copy raced with a writer.
  STAR_HOT_PATH uint64_t ReadStable(void* out, size_t size, const char* value) const {
    for (;;) {
      uint64_t w1 = word_.load(std::memory_order_acquire);
      if (IsLocked(w1)) {
        CpuRelax();
        continue;
      }
      std::memcpy(out, value, size);
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t w2 = word_.load(std::memory_order_acquire);
      if (w1 == w2) return w1;
    }
  }

  /// Bounded variant of ReadStable for io-thread handlers, which must never
  /// block indefinitely (a handler stuck on a locked record can deadlock
  /// with the lock holder waiting for that handler's own io thread).
  /// Returns false if the record stayed locked/unstable for `max_attempts`.
  STAR_HOT_PATH bool TryReadStable(void* out, size_t size, const char* value,
                     uint64_t* word_out, int max_attempts = 256) const {
    for (int i = 0; i < max_attempts; ++i) {
      uint64_t w1 = word_.load(std::memory_order_acquire);
      if (IsLocked(w1)) {
        CpuRelax();
        continue;
      }
      std::memcpy(out, value, size);
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t w2 = word_.load(std::memory_order_acquire);
      if (w1 == w2) {
        *word_out = w1;
        return true;
      }
    }
    return false;
  }

  /// Saves the current version into the backup slot if `tid` opens a new
  /// epoch for this record.  Callers that mutate the value in place
  /// (operation replay) use this directly; value installs go through Store.
  STAR_HOT_PATH void PrepareBackup(uint64_t tid, size_t size, char* value) {
    uint64_t cur = word_.load(std::memory_order_relaxed);
    if (Tid::Epoch(TidOf(cur)) != Tid::Epoch(tid)) {
      backup_tid_ = IsAbsent(cur) ? kBackupAbsent : TidOf(cur);
      std::memcpy(value + size, value, size);
    }
  }

  /// Installs a value while the caller has exclusive access (partition owner
  /// or lock holder).  Maintains the previous-epoch backup when
  /// `keep_backup`: the first write in a new epoch saves the last committed
  /// version so the epoch can be reverted on failure (Section 4.5.2).
  STAR_HOT_PATH void Store(uint64_t tid, const void* val, size_t size, char* value,
             bool keep_backup) {
    if (keep_backup) PrepareBackup(tid, size, value);
    std::memcpy(value, val, size);
  }

  /// Thomas write rule (Section 3): applies the write iff `tid` exceeds the
  /// record's current TID.  Returns true if the value was installed.  Safe
  /// against concurrent appliers and readers; takes the record lock.
  STAR_HOT_PATH bool ApplyThomas(uint64_t tid, const void* val, size_t size, char* value,
                   bool keep_backup) {
    LockSpin();
    uint64_t w = word_.load(std::memory_order_relaxed);
    // Compare TIDs regardless of the absent bit: a never-written record has
    // TID 0 (always loses), and a tombstone's TID must outrank stale value
    // writes so a replayed delete is not resurrected by an older update.
    if (TidOf(w) >= tid) {
      Unlock();
      return false;
    }
    Store(tid, val, size, value, keep_backup);
    UnlockWithTid(tid);
    return true;
  }

  /// Thomas write rule for deletes: installs a tombstone iff `tid` exceeds
  /// the record's current TID.  The value bytes are preserved (and backed up
  /// under `keep_backup`) so an epoch revert can resurrect the record.
  STAR_HOT_PATH bool ApplyThomasDelete(uint64_t tid, size_t size, char* value,
                         bool keep_backup) {
    LockSpin();
    uint64_t w = word_.load(std::memory_order_relaxed);
    if (TidOf(w) >= tid) {
      Unlock();
      return false;
    }
    if (keep_backup) PrepareBackup(tid, size, value);
    UnlockWithTidAbsent(tid);
    return true;
  }

  /// Reverts the record to the previous-epoch version if its current version
  /// belongs to `epoch` (the epoch being discarded after a failure).  Caller
  /// must have quiesced all writers.
  void RevertEpoch(uint64_t epoch, size_t size, char* value) {
    uint64_t w = word_.load(std::memory_order_relaxed);
    // Tombstones deleted in the reverted epoch carry that epoch's TID and
    // must be resurrected; never-written absent records have TID 0 (epoch 0)
    // and fall out of the epoch comparison.
    if (Tid::Epoch(TidOf(w)) != epoch) return;
    if (backup_tid_ == kNoBackup || backup_tid_ == kBackupAbsent) {
      // The record was created in the reverted epoch: it logically
      // disappears again.
      word_.store(kAbsentBit, std::memory_order_release);
      return;
    }
    std::memcpy(value, value + size, size);
    word_.store(backup_tid_ & Tid::kTidMask, std::memory_order_release);
  }

  uint64_t backup_tid() const { return backup_tid_; }

 private:
  static constexpr uint64_t kNoBackup = ~0ull;
  static constexpr uint64_t kBackupAbsent = ~0ull - 1;

  std::atomic<uint64_t> word_;
  /// TID of the backup (previous-epoch) version; kNoBackup when the backup
  /// slot has never been written, kBackupAbsent when the record did not
  /// exist before the current epoch.
  uint64_t backup_tid_;
};

static_assert(sizeof(Record) == 16, "Record header should stay compact");

}  // namespace star

#endif  // STAR_STORAGE_RECORD_H_
