#ifndef STAR_STORAGE_ORDERED_INDEX_H_
#define STAR_STORAGE_ORDERED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "storage/record.h"

namespace star {

/// Ordered secondary index over one partition of one table: a skip list
/// mapping 64-bit index keys to the table's stable `Record*`s, giving the
/// storage layer the range scans the paper's hash-table-only design lacks
/// ("Tables in STAR are implemented as collections of hash tables" — scans
/// are the one access path that model cannot serve).
///
/// Properties, matching the guarantees engines already rely on from
/// HashTable:
///  * Insert-only and arena-backed: nodes are never moved or freed, so a
///    scan may hand out `Record*`s that stay valid for the index's lifetime.
///    Logical deletion is the record's absent bit; scans skip absent rows.
///  * Writers serialise on one spinlock per index (one partition has one
///    writer in the partitioned phase; single-master-phase writers contend
///    only on inserts into the same partition, which the workloads make
///    rare).  Links are published bottom-up with release stores.
///  * Readers are latch-free: a scan concurrent with an insert sees the new
///    node or not, atomically per node.  Transactional phantom safety is the
///    concurrency-control layer's job (scan re-validation in cc/silo.h),
///    exactly as Silo validates its B-tree node sets.
class OrderedIndex {
 public:
  OrderedIndex() {
    // Unpublished object; the guard exists for the analysis.
    SpinLockGuard g(mu_);
    head_ = AllocateNode(kMaxHeight, 0, nullptr);
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->next[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  ~OrderedIndex() {
    SpinLockGuard g(mu_);
    for (char* chunk : chunks_) delete[] chunk;
  }

  /// Inserts `key -> rec`.  Duplicate keys are ignored (the hash table
  /// already deduplicates primary keys; an index key maps to exactly one
  /// record for the packings our workloads use).
  void Insert(uint64_t key, Record* rec) {
    SpinLockGuard g(mu_);
    Node* preds[kMaxHeight];
    Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      for (Node* nxt = x->next[level].load(std::memory_order_relaxed);
           nxt != nullptr && nxt->key < key;
           nxt = x->next[level].load(std::memory_order_relaxed)) {
        x = nxt;
      }
      preds[level] = x;
    }
    Node* at = preds[0]->next[0].load(std::memory_order_relaxed);
    if (at != nullptr && at->key == key) return;  // already indexed
    int height = RandomHeight();
    Node* n = AllocateNode(height, key, rec);
    // Link bottom-up: once next[0] is published a scan can reach the node,
    // and all of the node's own pointers are already in place.
    for (int level = 0; level < height; ++level) {
      n->next[level].store(preds[level]->next[level].load(
                               std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    for (int level = 0; level < height; ++level) {
      preds[level]->next[level].store(n, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Walks every indexed entry with key in [lo, hi] in ascending key order,
  /// calling `fn(key, rec)` until it returns false.  Latch-free; safe
  /// against concurrent Insert.  Visits absent records too — visibility is
  /// the caller's concern (transactions skip them, validation inspects
  /// them).
  template <typename F>
  void Scan(uint64_t lo, uint64_t hi, F&& fn) const {
    const Node* x = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      for (const Node* nxt = x->next[level].load(std::memory_order_acquire);
           nxt != nullptr && nxt->key < lo;
           nxt = x->next[level].load(std::memory_order_acquire)) {
        x = nxt;
      }
    }
    for (const Node* n = x->next[0].load(std::memory_order_acquire);
         n != nullptr && n->key <= hi;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (!fn(n->key, n->rec)) return;
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kMaxHeight = 16;

  struct Node {
    uint64_t key;
    Record* rec;
    /// Trailing array of `height` links (over-declared; nodes are allocated
    /// with exactly the space their height needs).
    std::atomic<Node*> next[1];
  };

  static size_t NodeBytes(int height) {
    return sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  }

  /// Geometric height with p = 1/4 (classic skip-list balance), drawn from a
  /// per-index xorshift so population stays deterministic per partition.
  int RandomHeight() STAR_REQUIRES(mu_) {
    uint64_t x = rng_state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_state_ = x;
    int h = 1;
    while (h < kMaxHeight && (x & 3) == 0) {
      ++h;
      x >>= 2;
    }
    return h;
  }

  /// Bump allocator over large chunks; called under mu_.
  Node* AllocateNode(int height, uint64_t key, Record* rec)
      STAR_REQUIRES(mu_) {
    size_t bytes = (NodeBytes(height) + 15) & ~size_t{15};
    if (chunks_.empty() || arena_used_ + bytes > kChunkBytes) {
      size_t chunk = bytes > kChunkBytes ? bytes : kChunkBytes;
      chunks_.push_back(new char[chunk]);
      arena_used_ = 0;
    }
    char* p = chunks_.back() + arena_used_;
    arena_used_ += bytes;
    Node* n = reinterpret_cast<Node*>(p);
    n->key = key;
    n->rec = rec;
    for (int i = 0; i < height; ++i) {
      new (&n->next[i]) std::atomic<Node*>(nullptr);
    }
    return n;
  }

  static constexpr size_t kChunkBytes = 1 << 18;

  SpinLock mu_;
  /// Written once in the constructor, immutable afterwards (scans read it
  /// without the writer latch by design).
  Node* head_;
  uint64_t rng_state_ STAR_GUARDED_BY(mu_) = 0x9E3779B97F4A7C15ull;
  std::atomic<size_t> size_{0};
  std::vector<char*> chunks_ STAR_GUARDED_BY(mu_);
  size_t arena_used_ STAR_GUARDED_BY(mu_) = 0;
};

}  // namespace star

#endif  // STAR_STORAGE_ORDERED_INDEX_H_
