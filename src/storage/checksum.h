#ifndef STAR_STORAGE_CHECKSUM_H_
#define STAR_STORAGE_CHECKSUM_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "storage/database.h"

namespace star {

/// Order-independent checksum of one (table, partition): XOR of per-record
/// hashes over (key, tid, value bytes).  Two replicas of a partition are in
/// the same state iff their checksums match — used by the multi-process
/// shutdown round to verify replica convergence, and by tests.
inline uint64_t PartitionChecksum(Database& db, int table, int partition) {
  HashTable* ht = db.table(table, partition);
  if (ht == nullptr) return 0;
  uint64_t sum = 0;
  std::string scratch(ht->value_size(), '\0');
  ht->ForEach([&](uint64_t key, Record* rec, char* value) {
    uint64_t w = rec->ReadStable(scratch.data(), scratch.size(), value);
    if (Record::IsAbsent(w)) return;
    uint64_t h = HashKey(key) ^ HashKey(Record::TidOf(w));
    for (size_t i = 0; i < scratch.size(); i += 8) {
      uint64_t chunk = 0;
      std::memcpy(&chunk, scratch.data() + i,
                  std::min<size_t>(8, scratch.size() - i));
      h = HashKey(h ^ chunk);
    }
    sum ^= h;
  });
  return sum;
}

/// Checksum across all tables of a partition.
inline uint64_t DatabasePartitionChecksum(Database& db, int partition) {
  uint64_t sum = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    sum ^= HashKey(PartitionChecksum(db, t, partition) + t + 1);
  }
  return sum;
}

}  // namespace star

#endif  // STAR_STORAGE_CHECKSUM_H_
