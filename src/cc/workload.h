#ifndef STAR_CC_WORKLOAD_H_
#define STAR_CC_WORKLOAD_H_

#include <string>
#include <vector>

#include "cc/txn.h"
#include "common/rng.h"
#include "storage/database.h"

namespace star {

/// A benchmark workload: schema, initial population, and transaction
/// generation.  One implementation drives every engine (Section 7.1.2's
/// same-framework methodology).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Table schemas, in table-id order.
  virtual std::vector<TableSchema> Schemas() const = 0;

  /// True for catalogue tables that are never written and loaded with
  /// identical content in every partition (TPC-C's item table).  Engines may
  /// serve such reads from any local partition.
  virtual bool IsReadOnlyTable(int table) const {
    (void)table;
    return false;
  }

  /// Fills one partition's tables with initial records.  Called once per
  /// partition per replica; must be deterministic in `partition` so that
  /// all replicas of a partition start identical.
  virtual void PopulatePartition(Database& db, int partition) const = 0;

  /// A transaction confined to `partition`.
  virtual TxnRequest MakeSinglePartition(Rng& rng, int partition,
                                         int num_partitions) const = 0;

  /// A transaction that may touch any partition (home + remote ones).
  virtual TxnRequest MakeCrossPartition(Rng& rng, int home_partition,
                                        int num_partitions) const = 0;

  /// A read-only transaction confined to `partition`, eligible for
  /// replica-served snapshot execution (request.read_only set, proc issues
  /// no writes).  Workloads without a natural read-only class return a
  /// request with a null proc; engines treat that as "unsupported" and run
  /// no replica readers.
  virtual TxnRequest MakeReadOnly(Rng& rng, int partition,
                                  int num_partitions) const {
    (void)rng;
    (void)partition;
    (void)num_partitions;
    return TxnRequest{};
  }

  /// Generates the configured mix: cross-partition with probability
  /// `cross_fraction`.
  TxnRequest Make(Rng& rng, int home_partition, int num_partitions,
                  double cross_fraction) const {
    if (cross_fraction > 0 && rng.Flip(cross_fraction)) {
      return MakeCrossPartition(rng, home_partition, num_partitions);
    }
    return MakeSinglePartition(rng, home_partition, num_partitions);
  }
};

}  // namespace star

#endif  // STAR_CC_WORKLOAD_H_
