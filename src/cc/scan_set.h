#ifndef STAR_CC_SCAN_SET_H_
#define STAR_CC_SCAN_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cc/txn.h"
#include "cc/write_set.h"
#include "common/tid.h"
#include "storage/database.h"
#include "storage/hash_table.h"

namespace star {

/// One executed range scan: the requested range plus the sequence of
/// records observed visible, re-walked at validation to detect phantoms
/// (the scan-set analogue of Silo's B-tree node-set validation; we
/// re-traverse the ordered index instead of versioning interior nodes).
struct ScanSetEntry {
  int32_t table = 0;
  int32_t partition = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;  // effective upper bound: last visited key if truncated
  uint32_t begin = 0;  // range into the owning ScanSet's row vector
  uint32_t count = 0;
};

/// Executes one lock-free scan for a replica-served read-only transaction
/// (cc/snapshot.h): visits records in [lo, hi] in key order via the ordered
/// index, reading each with a bounded optimistic read and — in snapshot mode
/// (`check_watermark`) — admitting only versions whose TID epoch is <= the
/// pinned applied-epoch `watermark`.  There is no write-set awareness and no
/// phantom range registration: the snapshot invariant (every committed write
/// through the watermark is applied, anything in flight carries a later
/// epoch) makes a missing index entry definitively absent at the snapshot,
/// so only *visited* records need commit-time revalidation, which the caller
/// collects through `on_read(rec, word)`.
///
/// Returns false when the scan observed something unservable at the pinned
/// snapshot — a record that stayed locked/unstable past the read bound, or
/// one already carrying an epoch past the watermark (replication replay ran
/// ahead mid-scan).  The caller marks the transaction conflicted and retries
/// it locally against a fresh watermark.  Tombstones at or before the
/// watermark are committed deletes in the snapshot and are skipped.
template <typename OnRead>
bool SnapshotWalk(HashTable* ht, uint64_t lo, uint64_t hi, int limit,
                  uint64_t watermark, bool check_watermark,
                  std::string& scratch, TxnContext::ScanVisitor visit,
                  void* arg, OnRead&& on_read) {
  uint32_t size = ht->value_size();
  // star-lint: allow(hot-path): scratch warm-up; capacity persists per context
  if (scratch.size() < size) scratch.resize(size);
  bool ok = true;
  int taken = 0;
  ht->index()->Scan(lo, hi, [&](uint64_t key, Record* rec) {
    uint64_t word;
    if (!rec->TryReadStable(scratch.data(), size, ht->ValueOfRecord(rec),
                            &word)) {
      ok = false;  // contended past the read bound: retry the transaction
      return false;
    }
    if (check_watermark && Tid::Epoch(Record::TidOf(word)) > watermark) {
      ok = false;  // replay ran past the pinned snapshot
      return false;
    }
    if (Record::IsAbsent(word)) return true;  // deleted at the snapshot: skip
    if (check_watermark) on_read(rec, word);
    ++taken;
    if (!visit(arg, key, scratch.data()) || (limit > 0 && taken >= limit)) {
      return false;
    }
    return true;
  });
  return ok;
}

/// A transaction's scan footprint, shared by every scan-capable execution
/// context (SiloContext, Dist. OCC's DistContext) so the phantom-safety
/// logic lives in exactly one place.  Capacity is recycled across
/// transactions like the read and write sets.
class ScanSet {
 public:
  /// Executes one scan over `ht`'s ordered index: visits visible records in
  /// [lo, hi] in key order (at most `limit` when limit > 0), preferring the
  /// transaction's own buffered state in `ws` (deletes hide the record,
  /// writes surface the buffered value; records only Insert()ed this
  /// transaction are not yet materialised and are not visited).  `on_read`
  /// (key, row, observed word) is invoked for each record read from
  /// storage, so the context can grow its optimistic read set.  The range
  /// is recorded for Validate.
  template <typename OnRead>
  void Walk(HashTable* ht, int table, int partition, uint64_t lo, uint64_t hi,
            int limit, TxnContext::ScanVisitor visit, void* arg, WriteSet& ws,
            OnRead&& on_read) {
    uint32_t size = ht->value_size();
    if (scratch_.size() < size) scratch_.resize(size);
    ScanSetEntry se;
    se.table = table;
    se.partition = partition;
    se.lo = lo;
    se.hi = hi;
    se.begin = static_cast<uint32_t>(rows_.size());
    int taken = 0;
    ht->index()->Scan(lo, hi, [&](uint64_t key, Record* rec) {
      if (WriteSetEntry* w = ws.Find(table, partition, key)) {
        if (w->is_delete) return true;
        rows_.push_back(rec);
        ++se.count;
        ++taken;
        if (!visit(arg, key, ws.ValuePtr(*w)) ||
            (limit > 0 && taken >= limit)) {
          se.hi = key;  // phantoms past the stop point cannot matter
          return false;
        }
        return true;
      }
      uint64_t word = rec->ReadStable(scratch_.data(), size,
                                      ht->ValueOfRecord(rec));
      if (Record::IsAbsent(word)) return true;  // invisible: skip
      on_read(key, HashTable::Row{rec, ht->ValueOfRecord(rec), size}, word);
      rows_.push_back(rec);
      ++se.count;
      ++taken;
      if (!visit(arg, key, scratch_.data()) || (limit > 0 && taken >= limit)) {
        se.hi = key;
        return false;
      }
      return true;
    });
    entries_.push_back(se);
  }

  /// Phantom validation (call with the write set locked, after read-set
  /// validation): re-walks every scanned range and fails if any record not
  /// observed by the original scan has become visible — or is mid-insert by
  /// another transaction.  Records observed originally are guaranteed
  /// unchanged by read-set validation (or are lock-held by this
  /// transaction), so the re-walk only needs to match the sequence.
  /// Records in `ws` — the transaction's own pending inserts, deletes and
  /// writes — are never phantoms.
  bool Validate(Database* db, const WriteSet& ws) const {
    for (const ScanSetEntry& se : entries_) {
      HashTable* ht = db->table(se.table, se.partition);
      uint32_t cursor = se.begin;
      const uint32_t end = se.begin + se.count;
      bool ok = true;
      ht->index()->Scan(se.lo, se.hi, [&](uint64_t, Record* rec) {
        if (cursor < end && rows_[cursor] == rec) {
          ++cursor;
          return true;
        }
        uint64_t w = rec->LoadWord();
        if (Record::IsAbsent(w) && !Record::IsLocked(w)) {
          return true;  // invisible to everyone: not a phantom
        }
        // Own pending work is not a phantom: an insert materialised at
        // commit (absent + locked), or a record the scan skipped because
        // this transaction buffered a delete for it (present + locked).
        if (InWriteSet(ws, rec)) return true;
        ok = false;  // committed phantom, or foreign insert mid-commit
        return false;
      });
      if (!ok || cursor != end) return false;
    }
    return true;
  }

  bool empty() const { return entries_.empty(); }

  /// Forgets the footprint, keeping capacity (like WriteSet::Clear).
  void Clear() {
    entries_.clear();
    rows_.clear();
  }

 private:
  static bool InWriteSet(const WriteSet& ws, const Record* rec) {
    for (const auto& w : ws.entries()) {
      if (w.row.rec == rec) return true;
    }
    return false;
  }

  std::vector<ScanSetEntry> entries_;
  std::vector<Record*> rows_;
  std::string scratch_;
};

}  // namespace star

#endif  // STAR_CC_SCAN_SET_H_
