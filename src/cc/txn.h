#ifndef STAR_CC_TXN_H_
#define STAR_CC_TXN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cc/operation.h"
#include "common/rng.h"
#include "storage/hash_table.h"

namespace star {

/// Outcome of one transaction attempt.
enum class TxnStatus : uint8_t {
  kCommitted = 0,
  kAbortConflict = 1,  // concurrency-control abort (validation/lock failure)
  kAbortUser = 2,      // application abort (e.g. TPC-C invalid item id)
  kAbortNetwork = 3,   // remote operation failed (node down / timeout)
};

/// The interface stored procedures are written against.  Implemented by
/// every engine (STAR's two phase executors, PB. OCC, Dist. OCC, Dist. S2PL,
/// Calvin), so a single workload definition drives all comparisons — the
/// paper's "implemented in C++ in our framework" methodology (Section 7.1.2).
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// Reads the record into `out` (exactly the table's value size).  Returns
  /// false if the transaction must abort: concurrency conflict, missing
  /// record, or failed remote read.  Reads observe the transaction's own
  /// earlier writes.
  virtual bool Read(int table, int partition, uint64_t key, void* out) = 0;

  /// Buffers a full-record write, installed at commit.
  virtual void Write(int table, int partition, uint64_t key,
                     const void* value) = 0;

  /// Buffers a field-level operation (Section 5).  The caller must have read
  /// the record in this transaction; the operation is applied to the local
  /// copy immediately and shipped as an operation when the engine's
  /// replication mode allows, or folded into a value write otherwise.
  virtual void ApplyOperation(int table, int partition, uint64_t key,
                              const Operation& op) = 0;

  /// Buffers an insert of a new record.
  virtual void Insert(int table, int partition, uint64_t key,
                      const void* value) = 0;

  /// Buffers a logical delete of an existing record (the record becomes a
  /// TID-carrying tombstone at commit).  Deleting a key that does not exist
  /// is a no-op.
  virtual void Delete(int table, int partition, uint64_t key) {
    (void)table;
    (void)partition;
    (void)key;
  }

  /// Visitor for Scan results: `arg` is caller state, `key` the index key,
  /// `value` the record's bytes (valid only during the call).  Return false
  /// to stop the scan early.  A plain function pointer rather than
  /// std::function keeps the scan path allocation-free.
  using ScanVisitor = bool (*)(void* arg, uint64_t key, const void* value);

  /// Range scan over an ordered table: visits every visible record with key
  /// in [lo, hi] in ascending order, at most `limit` of them (0 = no limit).
  /// The scan observes the transaction's own earlier writes and deletes on
  /// existing records; keys Insert()ed by this transaction are NOT visited
  /// (inserts materialise at commit — scan after inserting into the same
  /// range is unsupported, and no workload does it).  The scanned range
  /// joins the transaction's validation footprint, so a concurrent insert
  /// into it aborts this transaction at commit (phantom protection,
  /// Silo-style).  Returns false only for permanent conditions — the
  /// context or table does not support scans — never for transient
  /// conflicts, so procedures should map it to a non-retried abort.
  virtual bool Scan(int table, int partition, uint64_t lo, uint64_t hi,
                    int limit, ScanVisitor visit, void* arg) {
    (void)table;
    (void)partition;
    (void)lo;
    (void)hi;
    (void)limit;
    (void)visit;
    (void)arg;
    return false;
  }

  /// Per-worker RNG (kept on the context so procedures are deterministic
  /// given a seed).
  virtual Rng& rng() = 0;

  /// Worker-global id of the executing thread (for diagnostics).
  virtual int worker_id() const { return 0; }
};

/// One element of a transaction's a-priori read/write set.  Used by
/// deterministic execution (Calvin, Section 7.3), whose lock manager must
/// know every lockable record before the transaction runs, and by the
/// distributed baselines for routing.  Records created by inserts are not
/// listed: their keys are derived from locked counters and cannot conflict.
struct AccessDesc {
  int32_t table = 0;
  int32_t partition = 0;
  uint64_t key = 0;
  bool write = false;
};

/// A stored-procedure invocation: body plus routing metadata.  `proc`
/// returns kCommitted or kAbortUser; concurrency aborts are produced by the
/// engine when a context call fails.
struct TxnRequest {
  std::function<TxnStatus(TxnContext&)> proc;
  bool cross_partition = false;
  int home_partition = 0;
  /// The procedure performs no writes/inserts/deletes: it may execute at a
  /// replica on a read-only snapshot context (cc/snapshot.h) instead of on
  /// the partition master.  Set by Workload::MakeReadOnly.
  bool read_only = false;
  /// Declared accesses (see AccessDesc).  Filled by every workload since
  /// keys are chosen at generation time.
  std::vector<AccessDesc> accesses;
};

}  // namespace star

#endif  // STAR_CC_TXN_H_
