#ifndef STAR_CC_TXN_H_
#define STAR_CC_TXN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cc/operation.h"
#include "common/rng.h"
#include "storage/hash_table.h"

namespace star {

/// Outcome of one transaction attempt.
enum class TxnStatus : uint8_t {
  kCommitted = 0,
  kAbortConflict = 1,  // concurrency-control abort (validation/lock failure)
  kAbortUser = 2,      // application abort (e.g. TPC-C invalid item id)
  kAbortNetwork = 3,   // remote operation failed (node down / timeout)
};

/// The interface stored procedures are written against.  Implemented by
/// every engine (STAR's two phase executors, PB. OCC, Dist. OCC, Dist. S2PL,
/// Calvin), so a single workload definition drives all comparisons — the
/// paper's "implemented in C++ in our framework" methodology (Section 7.1.2).
class TxnContext {
 public:
  virtual ~TxnContext() = default;

  /// Reads the record into `out` (exactly the table's value size).  Returns
  /// false if the transaction must abort: concurrency conflict, missing
  /// record, or failed remote read.  Reads observe the transaction's own
  /// earlier writes.
  virtual bool Read(int table, int partition, uint64_t key, void* out) = 0;

  /// Buffers a full-record write, installed at commit.
  virtual void Write(int table, int partition, uint64_t key,
                     const void* value) = 0;

  /// Buffers a field-level operation (Section 5).  The caller must have read
  /// the record in this transaction; the operation is applied to the local
  /// copy immediately and shipped as an operation when the engine's
  /// replication mode allows, or folded into a value write otherwise.
  virtual void ApplyOperation(int table, int partition, uint64_t key,
                              const Operation& op) = 0;

  /// Buffers an insert of a new record.
  virtual void Insert(int table, int partition, uint64_t key,
                      const void* value) = 0;

  /// Per-worker RNG (kept on the context so procedures are deterministic
  /// given a seed).
  virtual Rng& rng() = 0;

  /// Worker-global id of the executing thread (for diagnostics).
  virtual int worker_id() const { return 0; }
};

/// One element of a transaction's a-priori read/write set.  Used by
/// deterministic execution (Calvin, Section 7.3), whose lock manager must
/// know every lockable record before the transaction runs, and by the
/// distributed baselines for routing.  Records created by inserts are not
/// listed: their keys are derived from locked counters and cannot conflict.
struct AccessDesc {
  int32_t table = 0;
  int32_t partition = 0;
  uint64_t key = 0;
  bool write = false;
};

/// A stored-procedure invocation: body plus routing metadata.  `proc`
/// returns kCommitted or kAbortUser; concurrency aborts are produced by the
/// engine when a context call fails.
struct TxnRequest {
  std::function<TxnStatus(TxnContext&)> proc;
  bool cross_partition = false;
  int home_partition = 0;
  /// Declared accesses (see AccessDesc).  Filled by every workload since
  /// keys are chosen at generation time.
  std::vector<AccessDesc> accesses;
};

}  // namespace star

#endif  // STAR_CC_TXN_H_
