#ifndef STAR_CC_SILO_H_
#define STAR_CC_SILO_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "cc/scan_set.h"
#include "cc/txn.h"
#include "cc/write_set.h"
#include "common/thread_annotations.h"
#include "common/tid.h"
#include "storage/database.h"

namespace star {

/// An entry in the optimistic read set: the row and the meta word observed
/// by the stable read, compared again at validation.
struct ReadSetEntry {
  HashTable::Row row;
  uint64_t observed_word = 0;
};

/// Local-memory transaction context shared by every executor that runs
/// transactions against this node's own storage: STAR's two phases, the
/// PB. OCC primary, and the local legs of the distributed baselines.
///
/// The context is reused across transactions (`Reset()` between attempts):
/// the read set, write-set entries, value arena, and operation pool all keep
/// their capacity, so a warmed-up worker commits without heap allocation.
class SiloContext : public TxnContext {
 public:
  SiloContext(Database* db, Rng* rng, int worker_id)
      : db_(db), rng_(rng), worker_id_(worker_id) {}

  // --- TxnContext ---

  bool Read(int table, int partition, uint64_t key, void* out) override {
    if (WriteSetEntry* w = write_set_.Find(table, partition, key)) {
      if (w->is_delete) return false;  // own delete: the row reads absent
      std::memcpy(out, write_set_.ValuePtr(*w), w->value_len);
      return true;
    }
    HashTable* ht = db_->table(table, partition);
    if (ht == nullptr) return false;  // partition not stored here: mis-route
    HashTable::Row row = ht->GetRow(key);
    if (!row.valid()) return false;
    uint64_t w = row.ReadStable(out);
    if (Record::IsAbsent(w)) return false;
    read_set_.push_back(ReadSetEntry{row, w});
    max_observed_ = std::max(max_observed_, Record::TidOf(w));
    return true;
  }

  void Write(int table, int partition, uint64_t key,
             const void* value) override {
    HashTable* ht = db_->table(table, partition);
    uint32_t size = ht->value_size();
    if (WriteSetEntry* w = write_set_.Find(table, partition, key)) {
      write_set_.AssignValue(*w, value, size);
      w->is_delete = false;  // write-after-delete resurrects the row
      w->ops_only = false;
      return;
    }
    WriteSetEntry& e = write_set_.Add(table, partition, key);
    e.row = ht->GetRow(key);
    write_set_.AssignValue(e, value, size);
    e.ops_only = false;
  }

  void ApplyOperation(int table, int partition, uint64_t key,
                      const Operation& op) override {
    if (WriteSetEntry* w = write_set_.Find(table, partition, key)) {
      if (w->is_delete) {
        // Operating on a row this transaction deleted (reads observe it as
        // absent, so no correct procedure does this): resurrect from a
        // zeroed seed, shipped as a full value.
        HashTable* ht2 = db_->table(table, partition);
        char* value = write_set_.AllocValue(*w, ht2->value_size());
        std::memset(value, 0, w->value_len);
        w->is_delete = false;
        op.ApplyTo(value);
        w->ops_only = false;
        return;
      }
      op.ApplyTo(write_set_.ValuePtr(*w));
      write_set_.AppendOp(*w, op);
      return;
    }
    HashTable* ht = db_->table(table, partition);
    WriteSetEntry& e = write_set_.Add(table, partition, key);
    e.row = ht->GetRow(key);
    char* value = write_set_.AllocValue(e, ht->value_size());
    // Seed the new value from the current record.  If this read races with
    // a concurrent writer, OCC validation of the earlier Read (our workloads
    // always read before ApplyOperation) aborts the transaction.
    if (e.row.valid()) {
      e.row.ReadStable(value);
    } else {
      std::memset(value, 0, e.value_len);
    }
    op.ApplyTo(value);
    write_set_.AppendOp(e, op);
    e.ops_only = true;
  }

  void Insert(int table, int partition, uint64_t key,
              const void* value) override {
    HashTable* ht = db_->table(table, partition);
    if (WriteSetEntry* w = write_set_.Find(table, partition, key)) {
      // Re-inserting a key this transaction already deleted or wrote:
      // becomes a plain value write (the underlying record exists, so
      // insert's unique-key semantics do not apply), resurrecting any
      // pending delete.
      write_set_.AssignValue(*w, value, ht->value_size());
      w->is_delete = false;
      w->ops_only = false;
      return;
    }
    WriteSetEntry& e = write_set_.Add(table, partition, key);
    write_set_.AssignValue(e, value, ht->value_size());
    e.is_insert = true;
    e.ops_only = false;
  }

  void Delete(int table, int partition, uint64_t key) override {
    if (WriteSetEntry* w = write_set_.Find(table, partition, key)) {
      w->is_delete = true;
      w->ops_only = false;
      return;
    }
    HashTable* ht = db_->table(table, partition);
    if (ht == nullptr) return;
    HashTable::Row row = ht->GetRow(key);
    if (!row.valid()) return;  // deleting a never-inserted key: no-op
    WriteSetEntry& e = write_set_.Add(table, partition, key);
    e.row = row;
    e.is_delete = true;
    e.ops_only = false;
  }

  bool Scan(int table, int partition, uint64_t lo, uint64_t hi, int limit,
            ScanVisitor visit, void* arg) override {
    HashTable* ht = db_->table(table, partition);
    if (ht == nullptr || ht->index() == nullptr) return false;
    scans_.Walk(ht, table, partition, lo, hi, limit, visit, arg, write_set_,
                [&](uint64_t, const HashTable::Row& row, uint64_t word) {
                  read_set_.push_back(ReadSetEntry{row, word});
                  max_observed_ =
                      std::max(max_observed_, Record::TidOf(word));
                });
    return true;
  }

  /// Phantom validation over the scanned ranges (see ScanSet::Validate);
  /// call with the write set locked, after read-set validation.
  bool ValidateScans() {
    return scans_.empty() || scans_.Validate(db_, write_set_);
  }

  Rng& rng() override { return *rng_; }
  int worker_id() const override { return worker_id_; }

  // --- engine-side accessors ---

  std::vector<ReadSetEntry>& read_set() { return read_set_; }
  WriteSet& write_set() { return write_set_; }
  uint64_t max_observed_tid() const { return max_observed_; }
  Database* db() const { return db_; }

  void Reset() {
    read_set_.clear();
    write_set_.Clear();
    scans_.Clear();
    max_observed_ = 0;
  }

 private:
  Database* db_;
  Rng* rng_;
  int worker_id_;
  std::vector<ReadSetEntry> read_set_;
  WriteSet write_set_;
  ScanSet scans_;
  uint64_t max_observed_ = 0;
};

struct CommitResult {
  TxnStatus status = TxnStatus::kCommitted;
  uint64_t tid = 0;
};

/// Hook invoked after validation and TID generation but before values are
/// installed and locks released.  Used by synchronous replication (Figure 9
/// / Figure 15(a)'s SYNC STAR): the transaction holds its write locks for a
/// replication round trip.  Returning false aborts the transaction.
using PreInstallHook = std::function<bool(uint64_t tid, WriteSet&)>;

/// The OCC commit protocol of Section 4.2 (Silo variant), used wherever
/// multiple threads share partitions: STAR's single-master phase and the
/// PB. OCC primary.
///
///  1. materialise inserts,
///  2. lock the write set in a global order (record addresses),
///  3. read the global epoch,
///  4. validate the read set (TID unchanged, not locked by others),
///  5. generate the commit TID (criteria a/b/c of Section 3),
///  6. install values and release locks by publishing the new TID.
STAR_HOT_PATH inline CommitResult SiloOccCommit(SiloContext& ctx, TidGenerator& gen,
                                  const std::atomic<uint64_t>& global_epoch,
                                  const PreInstallHook& pre_install = nullptr) {
  WriteSet& ws = ctx.write_set();
  auto& writes = ws.entries();
  Database* db = ctx.db();

  // (1) Materialise inserts so they have lockable records.
  for (auto& w : writes) {
    if (w.is_insert) {
      HashTable* ht = db->table(w.table, w.partition);
      bool inserted = false;
      // star-lint: allow(hot-path): insert materialisation may grow the
      w.row = ht->GetOrInsertRow(w.key, &inserted);  // table arena (amortised)
      w.created_here = inserted;
    }
  }

  // (2) Address-ordered locking: deadlock-free.  Entries are views into the
  // write set's arena/pool, so the sort moves plain structs only.
  std::sort(writes.begin(), writes.end(),
            [](const WriteSetEntry& a, const WriteSetEntry& b) {
              return a.row.rec < b.row.rec;
            });
  uint64_t max_tid = ctx.max_observed_tid();
  auto abort_unlock = [&]() {
    for (auto& w : writes) {
      if (!w.locked) continue;
      // Plain unlock: a record materialised by this transaction's insert is
      // still absent (nothing was stored), and a record another transaction
      // committed in the meantime must not be touched.  (Marking absent here
      // would erase a concurrent committed insert that reused the node.)
      w.row.rec->Unlock();
    }
  };
  for (auto& w : writes) {
    if (w.is_insert) {
      w.row.rec->LockSpin();
      w.locked = true;
      if (!w.created_here && w.row.rec->IsPresent()) {
        // Unique-key violation: someone else committed this key first.
        abort_unlock();
        return {TxnStatus::kAbortConflict, 0};
      }
    } else {
      w.row.rec->LockSpin();
      w.locked = true;
    }
    max_tid = std::max(max_tid, Record::TidOf(w.row.rec->LoadWord()));
  }

  // (3) Epoch after locks, as in Silo, so the TID epoch can't run ahead of
  // a concurrent epoch bump observed by the fence.
  uint64_t epoch = global_epoch.load(std::memory_order_acquire);

  // (4) Read validation.
  for (auto& r : ctx.read_set()) {
    uint64_t w = r.row.rec->LoadWord();
    bool in_write_set = false;
    for (auto& wse : writes) {
      if (wse.row.rec == r.row.rec) {
        in_write_set = true;
        break;
      }
    }
    if (Record::TidOf(w) != Record::TidOf(r.observed_word) ||
        (Record::IsLocked(w) && !in_write_set)) {
      abort_unlock();
      return {TxnStatus::kAbortConflict, 0};
    }
  }

  // (4b) Scan validation: re-walk every scanned range to catch phantoms
  // (inserts into the range that committed — or are mid-commit — since the
  // scan).  Runs after read validation so surviving observed records are
  // known unchanged.
  if (!ctx.ValidateScans()) {
    abort_unlock();
    return {TxnStatus::kAbortConflict, 0};
  }

  // (5) + (6) Generate the TID, install, unlock.
  uint64_t tid = gen.Generate(max_tid, epoch);
  if (pre_install && !pre_install(tid, ws)) {
    abort_unlock();
    return {TxnStatus::kAbortNetwork, 0};
  }
  for (auto& w : writes) {
    if (w.is_delete) {
      if (db->two_version()) {
        w.row.rec->PrepareBackup(tid, w.row.size, w.row.value);
      }
      w.row.rec->UnlockWithTidAbsent(tid);
      continue;
    }
    w.row.rec->Store(tid, ws.ValuePtr(w), w.value_len, w.row.value,
                     db->two_version());
    w.row.rec->UnlockWithTid(tid);
  }
  return {TxnStatus::kCommitted, tid};
}

/// The partitioned-phase commit of Section 4.1: the partition has exactly
/// one worker thread, so neither write locks nor read validation are needed.
/// We still toggle the record lock around the value copy so concurrent
/// optimistic readers (checkpointer, remote read handlers) cannot observe a
/// torn value.
STAR_HOT_PATH inline CommitResult SiloSerialCommit(SiloContext& ctx, TidGenerator& gen,
                                     const std::atomic<uint64_t>& global_epoch) {
  WriteSet& ws = ctx.write_set();
  auto& writes = ws.entries();
  Database* db = ctx.db();
  uint64_t epoch = global_epoch.load(std::memory_order_acquire);
  uint64_t max_tid = ctx.max_observed_tid();
  for (auto& w : writes) {
    if (w.is_insert) {
      HashTable* ht = db->table(w.table, w.partition);
      bool inserted = false;
      // star-lint: allow(hot-path): insert materialisation may grow the
      w.row = ht->GetOrInsertRow(w.key, &inserted);  // table arena (amortised)
      w.created_here = inserted;
      if (!inserted && w.row.rec->IsPresent()) {
        return {TxnStatus::kAbortConflict, 0};  // duplicate key
      }
    }
    max_tid = std::max(max_tid, Record::TidOf(w.row.rec->LoadWord()));
  }
  uint64_t tid = gen.Generate(max_tid, epoch);
  for (auto& w : writes) {
    w.row.rec->LockSpin();  // uncontended: single writer per partition
    if (w.is_delete) {
      if (db->two_version()) {
        w.row.rec->PrepareBackup(tid, w.row.size, w.row.value);
      }
      w.row.rec->UnlockWithTidAbsent(tid);
      continue;
    }
    w.row.rec->Store(tid, ws.ValuePtr(w), w.value_len, w.row.value,
                     db->two_version());
    w.row.rec->UnlockWithTid(tid);
  }
  return {TxnStatus::kCommitted, tid};
}

}  // namespace star

#endif  // STAR_CC_SILO_H_
