#ifndef STAR_CC_SNAPSHOT_H_
#define STAR_CC_SNAPSHOT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "cc/epoch.h"
#include "cc/scan_set.h"
#include "cc/txn.h"
#include "common/config.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "common/tid.h"
#include "storage/database.h"

namespace star {

/// Read-only execution context for replica-served transactions: reads a
/// node's *replica* state with zero coordination — no locks taken, no OCC
/// registration with writers, no messages — piggybacking entirely on
/// machinery the system already maintains:
///
///  * The replication fence publishes a per-source applied-epoch watermark
///    (cc/epoch.h AppliedEpochWatermark): once every active source is
///    applied through epoch W, the replica's state *restricted to versions
///    with TID epoch <= W* is exactly the committed database as of the
///    fence that ended W — every committed write through W is applied
///    (fence drain), and anything still in flight carries a later epoch.
///  * The Thomas write rule only ever installs increasing TIDs, so the
///    snapshot-W version of a record is simply its current version whenever
///    that version's epoch is <= W.
///
/// Snapshot mode therefore pins W at Begin, reads records with bounded
/// optimistic reads, rejects any version from an epoch past W, and at
/// Commit revalidates that every record read *still* carries an epoch <= W
/// (Silo-style read-set re-check; a changed record necessarily moved past W
/// because replica writes come only from replay).  A failed read or commit
/// means replication replay touched the footprint mid-transaction — the
/// caller retries locally against a fresh watermark; no coordination, just
/// another attempt.
///
/// Monotonic-fresh mode (ReplicaReadMode::kMonotonic) skips the pin and all
/// validation: each record read is individually a committed version and
/// per-record time never moves backwards, but cross-record consistency is
/// not guaranteed.  It is the only mode available on engines without a
/// fence (pass a null watermark).
class SnapshotContext final : public TxnContext {
 public:
  SnapshotContext(Database* db, const AppliedEpochWatermark* watermark,
                  ReplicaReadMode mode, Rng* rng, int worker_id)
      : db_(db),
        watermark_(watermark),
        mode_(mode),
        rng_(rng),
        worker_id_(worker_id) {
    assert(mode_ == ReplicaReadMode::kMonotonic || watermark_ != nullptr);
  }

  /// Pins the snapshot for one attempt (call before running the procedure;
  /// each local retry re-pins a fresh watermark).  A watermark of 0 — before
  /// the first fence — still serves the bulk-loaded state: loaded records
  /// carry epoch-0 TIDs.
  ///
  /// `min_epoch` is the read-your-writes session floor: a session that
  /// committed a write in epoch E must not be served a snapshot older than
  /// E.  If the watermark has not yet caught up to `min_epoch` the attempt
  /// fails immediately as a conflict (Begin returns false) — the caller
  /// retries once replication applies the session's own epoch, typically
  /// within one fence round.  Monotonic mode cannot honour a floor (there
  /// is no pin); it reports failure the same way so callers don't silently
  /// read stale data.
  bool Begin(uint64_t min_epoch = 0) {
    pinned_ = mode_ == ReplicaReadMode::kSnapshot ? watermark_->watermark() : 0;
    reads_.clear();
    conflict_ = false;
    if (min_epoch > pinned_) {
      conflict_ = true;
      return false;
    }
    return true;
  }

  STAR_HOT_PATH bool Read(int table, int partition, uint64_t key,
                          void* out) override {
    HashTable* ht = db_->table(table, partition);
    if (ht == nullptr) return false;  // partition not stored on this replica
    HashTable::Row row = ht->GetRow(key);
    if (!row.valid()) return false;  // never inserted: absent at any snapshot
    uint64_t word;
    if (!row.rec->TryReadStable(out, row.size, row.value, &word)) {
      conflict_ = true;  // contended past the read bound: retry
      return false;
    }
    if (mode_ == ReplicaReadMode::kSnapshot &&
        Tid::Epoch(Record::TidOf(word)) > pinned_) {
      conflict_ = true;  // replay ran past the pinned snapshot: retry
      return false;
    }
    if (Record::IsAbsent(word)) return false;  // deleted at the snapshot
    if (mode_ == ReplicaReadMode::kSnapshot) {
      // star-lint: allow(hot-path): read-set tracking; capacity is recycled
      reads_.push_back(ReadEntry{row.rec, word});
    }
    return true;
  }

  STAR_HOT_PATH bool Scan(int table, int partition, uint64_t lo,
                          uint64_t hi, int limit,
            ScanVisitor visit, void* arg) override {
    HashTable* ht = db_->table(table, partition);
    if (ht == nullptr || ht->index() == nullptr) return false;
    bool ok = SnapshotWalk(
        ht, lo, hi, limit, pinned_, mode_ == ReplicaReadMode::kSnapshot,
        scratch_, visit, arg, [this](Record* rec, uint64_t word) {
          // star-lint: allow(hot-path): read-set tracking; capacity recycled
          reads_.push_back(ReadEntry{rec, word});
        });
    if (!ok) conflict_ = true;
    // Scan() == false is reserved for permanently unsupported; a snapshot
    // conflict surfaces through Commit() and triggers a local retry.
    return true;
  }

  // The context is read-only: procedures routed here must not write.  The
  // engine only routes requests flagged TxnRequest::read_only, whose
  // procedures issue no mutations by contract.
  void Write(int, int, uint64_t, const void*) override {
    assert(false && "write on a read-only snapshot context");
  }
  void ApplyOperation(int, int, uint64_t, const Operation&) override {
    assert(false && "operation on a read-only snapshot context");
  }
  void Insert(int, int, uint64_t, const void*) override {
    assert(false && "insert on a read-only snapshot context");
  }
  void Delete(int, int, uint64_t) override {
    assert(false && "delete on a read-only snapshot context");
  }

  /// Commit-time snapshot validation: no read failed, and every record read
  /// still carries a TID epoch <= the pinned watermark.  Always true in
  /// monotonic mode unless a bounded read gave up.  On false the caller
  /// retries the transaction locally (Begin re-pins a fresh watermark).
  STAR_HOT_PATH bool Commit() const {
    if (conflict_) return false;
    for (const ReadEntry& r : reads_) {
      if (Tid::Epoch(Record::TidOf(r.rec->LoadWord())) > pinned_) return false;
    }
    return true;
  }

  uint64_t pinned() const { return pinned_; }
  bool conflicted() const { return conflict_; }
  size_t validated_keys() const { return reads_.size(); }
  ReplicaReadMode mode() const { return mode_; }

  Rng& rng() override { return *rng_; }
  int worker_id() const override { return worker_id_; }

 private:
  struct ReadEntry {
    Record* rec;
    uint64_t word;  // word observed at read time (diagnostic; the re-check
                    // compares the *current* word's epoch to the pin)
  };

  Database* db_;
  const AppliedEpochWatermark* watermark_;
  ReplicaReadMode mode_;
  Rng* rng_;
  int worker_id_;

  uint64_t pinned_ = 0;
  bool conflict_ = false;
  std::vector<ReadEntry> reads_;
  std::string scratch_;
};

}  // namespace star

#endif  // STAR_CC_SNAPSHOT_H_
