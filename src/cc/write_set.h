#ifndef STAR_CC_WRITE_SET_H_
#define STAR_CC_WRITE_SET_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "cc/operation.h"
#include "common/arena.h"
#include "storage/hash_table.h"

namespace star {

/// A buffered write: the full new value plus, when the modification was
/// expressed through field operations, the operation list for operation
/// replication (Section 5).
///
/// Memory model: entries own nothing.  Value bytes live in the enclosing
/// WriteSet's bump arena as an (offset, length) view, and operations live in
/// the WriteSet's recycled operation pool as a (begin, count) range, so an
/// entry is trivially copyable and the commit protocols can sort the write
/// set without touching the allocator.  Resolve the views through the
/// WriteSet that produced the entry (`ValuePtr` / `ops`); the stable
/// `Record*` in `row` makes the resolved value safe to install directly.
struct WriteSetEntry {
  int32_t table = 0;
  int32_t partition = 0;
  uint64_t key = 0;
  HashTable::Row row;  // resolved at execution (updates) or commit (inserts)
  uint32_t value_off = 0;  // arena view of the buffered value bytes
  uint32_t value_len = 0;
  uint32_t ops_begin = 0;  // range in the WriteSet's operation pool
  uint32_t ops_count = 0;
  bool is_insert = false;
  /// Logical delete: commit installs a tombstone (absent bit + new TID)
  /// instead of value bytes; replication ships a delete entry.
  bool is_delete = false;
  /// True while every modification came in via ApplyOperation — only then
  /// may the engine replicate operations instead of the value.
  bool ops_only = false;
  bool locked = false;        // commit bookkeeping
  bool created_here = false;  // insert materialised a new node
};

/// A transaction's write set: entry list + value arena + operation pool,
/// shared by every execution context (SiloContext, the distributed
/// baselines' contexts, Calvin).
///
/// `Clear()` rewinds the arena, resets the operation-pool cursor, and clears
/// the entry vector — none of which releases memory — so a worker reusing
/// one WriteSet across transactions stops allocating once all three have
/// reached the workload's high-water mark.
class WriteSet {
 public:
  WriteSetEntry* Find(int table, int partition, uint64_t key) {
    for (auto& w : entries_) {
      if (w.key == key && w.table == table && w.partition == partition) {
        return &w;
      }
    }
    return nullptr;
  }

  /// Appends a blank entry (no value storage yet).  The returned reference
  /// is invalidated by the next Add (the entry vector may grow); callers
  /// must finish with it — or re-resolve through Find — before adding more.
  WriteSetEntry& Add(int table, int partition, uint64_t key) {
    entries_.emplace_back();
    WriteSetEntry& e = entries_.back();
    e.table = table;
    e.partition = partition;
    e.key = key;
    return e;
  }

  /// Reserves `size` uninitialised value bytes for `e`; returns the write
  /// pointer (valid until the next arena allocation).
  char* AllocValue(WriteSetEntry& e, uint32_t size) {
    e.value_off = arena_.Alloc(size);
    e.value_len = size;
    return arena_.ptr(e.value_off);
  }

  /// Copies `size` bytes into `e`'s value, allocating on first use and
  /// overwriting in place afterwards (table value sizes are fixed).
  void AssignValue(WriteSetEntry& e, const void* data, uint32_t size) {
    if (e.value_len != size) AllocValue(e, size);
    std::memcpy(arena_.ptr(e.value_off), data, size);
  }

  char* ValuePtr(const WriteSetEntry& e) { return arena_.ptr(e.value_off); }
  const char* ValuePtr(const WriteSetEntry& e) const {
    return arena_.ptr(e.value_off);
  }
  std::string_view ValueView(const WriteSetEntry& e) const {
    return std::string_view(arena_.ptr(e.value_off), e.value_len);
  }

  /// Appends an operation to `e`'s range.  Ranges must stay contiguous in
  /// the pool; if another entry appended since `e`'s last operation, `e`'s
  /// range is first relocated to the pool tail (capacity is recycled, so
  /// this too stops allocating in steady state).
  void AppendOp(WriteSetEntry& e, const Operation& op) {
    if (e.ops_count == 0) {
      e.ops_begin = ops_used_;
    } else if (e.ops_begin + e.ops_count != ops_used_) {
      ops_pool_.reserve(static_cast<size_t>(ops_used_) + e.ops_count + 1);
      uint32_t new_begin = ops_used_;
      for (uint32_t i = 0; i < e.ops_count; ++i) {
        PushOp(ops_pool_[e.ops_begin + i]);
      }
      e.ops_begin = new_begin;
    }
    PushOp(op);
    ++e.ops_count;
  }

  const Operation* ops(const WriteSetEntry& e) const {
    return ops_pool_.data() + e.ops_begin;
  }

  std::vector<WriteSetEntry>& entries() { return entries_; }
  const std::vector<WriteSetEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  TxnArena& arena() { return arena_; }

  /// Forgets everything while keeping all capacity (see class comment).
  void Clear() {
    entries_.clear();
    arena_.Rewind();
    ops_used_ = 0;
  }

 private:
  /// Writes into a recycled pool slot when one exists: Operation owns a
  /// std::string operand whose heap buffer survives across transactions
  /// under assign(), unlike a cleared vector whose destructors free it.
  void PushOp(const Operation& op) {
    if (ops_used_ < ops_pool_.size()) {
      Operation& slot = ops_pool_[ops_used_];
      slot.code = op.code;
      slot.offset = op.offset;
      slot.field_len = op.field_len;
      slot.operand.assign(op.operand);
    } else {
      ops_pool_.push_back(op);
    }
    ++ops_used_;
  }

  std::vector<WriteSetEntry> entries_;
  TxnArena arena_;
  std::vector<Operation> ops_pool_;  // first ops_used_ slots are live
  uint32_t ops_used_ = 0;
};

}  // namespace star

#endif  // STAR_CC_WRITE_SET_H_
