#ifndef STAR_CC_LOCK_TABLE_H_
#define STAR_CC_LOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "storage/hash_table.h"

namespace star {

/// Exact reader-writer lock table with NO_WAIT semantics, used by the
/// Dist. S2PL baseline (Section 7.1.2): "a transaction aborts if it fails to
/// acquire some lock", the deadlock-prevention policy shown most scalable by
/// Harding et al.
///
/// Locks are identity-checked: each held lock is an (ns, key) entry in a
/// striped bucket, so distinct records NEVER conflict.  An earlier version
/// hashed locks onto bare slot words; two keys of one transaction could
/// then collide on a slot, and under NO_WAIT the transaction would abort
/// against its own read lock — deterministically, on every retry, wedging
/// the worker forever (a TPC-C NewOrder holds ~30 locks, making a self
/// collision on 2^16 slots roughly a 1-in-130 event per transaction).
///
/// Entry words use the layout [writer:1][readers:63].  Buckets recycle
/// their entry storage (swap-pop erase, capacity kept), so steady-state
/// lock traffic does not touch the allocator.
class LockTable {
 public:
  explicit LockTable(size_t stripes = 1 << 12) : stripes_(stripes) {
    mask_ = stripes - 1;
  }

  /// NO_WAIT shared lock; false means the caller must abort.
  bool TryReadLock(int ns, uint64_t key) {
    Stripe& s = StripeFor(ns, key);
    SpinLockGuard g(s.mu);
    Entry* e = Find(s, ns, key);
    if (e == nullptr) {
      s.entries.push_back({ns, key, 1});
      return true;
    }
    if ((e->word & kWriterBit) != 0) return false;
    ++e->word;
    return true;
  }

  void ReadUnlock(int ns, uint64_t key) {
    Stripe& s = StripeFor(ns, key);
    SpinLockGuard g(s.mu);
    Entry* e = Find(s, ns, key);
    if (e == nullptr) return;  // tolerated: unlock of a never-locked key
    if (--e->word == 0) Erase(s, e);
  }

  /// NO_WAIT exclusive lock.
  bool TryWriteLock(int ns, uint64_t key) {
    Stripe& s = StripeFor(ns, key);
    SpinLockGuard g(s.mu);
    if (Find(s, ns, key) != nullptr) return false;  // any holder blocks
    s.entries.push_back({ns, key, kWriterBit});
    return true;
  }

  void WriteUnlock(int ns, uint64_t key) {
    Stripe& s = StripeFor(ns, key);
    SpinLockGuard g(s.mu);
    Entry* e = Find(s, ns, key);
    if (e != nullptr && (e->word & kWriterBit) != 0) Erase(s, e);
  }

  /// Read-to-write upgrade: succeeds only when the caller holds the sole
  /// read lock (TPC-C read-modify-write pattern).
  bool TryUpgrade(int ns, uint64_t key) {
    Stripe& s = StripeFor(ns, key);
    SpinLockGuard g(s.mu);
    Entry* e = Find(s, ns, key);
    if (e == nullptr || e->word != 1) return false;
    e->word = kWriterBit;
    return true;
  }

  /// Testing hook: true when no lock is held anywhere.
  bool AllFree() const {
    for (const Stripe& s : stripes_) {
      SpinLockGuard g(s.mu);
      if (!s.entries.empty()) return false;
    }
    return true;
  }

 private:
  static constexpr uint64_t kWriterBit = 1ull << 63;

  struct Entry {
    int32_t ns;
    uint64_t key;
    uint64_t word;
  };

  struct alignas(64) Stripe {
    mutable SpinLock mu;
    std::vector<Entry> entries STAR_GUARDED_BY(mu);  // live; capacity kept
  };

  Stripe& StripeFor(int ns, uint64_t key) {
    return stripes_[HashKey(key * 31 + static_cast<uint64_t>(ns) + 1) &
                    mask_];
  }
  const Stripe& StripeFor(int ns, uint64_t key) const {
    return const_cast<LockTable*>(this)->StripeFor(ns, key);
  }

  static Entry* Find(Stripe& s, int ns, uint64_t key) STAR_REQUIRES(s.mu) {
    for (Entry& e : s.entries) {
      if (e.key == key && e.ns == ns) return &e;
    }
    return nullptr;
  }

  static void Erase(Stripe& s, Entry* e) STAR_REQUIRES(s.mu) {
    *e = s.entries.back();
    s.entries.pop_back();
  }

  std::vector<Stripe> stripes_;
  size_t mask_;
};

}  // namespace star

#endif  // STAR_CC_LOCK_TABLE_H_
