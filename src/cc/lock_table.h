#ifndef STAR_CC_LOCK_TABLE_H_
#define STAR_CC_LOCK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "storage/hash_table.h"

namespace star {

/// Striped reader-writer lock table with NO_WAIT semantics, used by the
/// Dist. S2PL baseline (Section 7.1.2): "a transaction aborts if it fails to
/// acquire some lock", the deadlock-prevention policy shown most scalable by
/// Harding et al.
///
/// Locks are keyed by (table, key) hashes onto a fixed array of lock words;
/// distinct records may share a slot, which can only create false conflicts,
/// never missed ones.  Slot word layout: [writer:1][readers:63].
class LockTable {
 public:
  explicit LockTable(size_t slots = 1 << 16) : words_(slots) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
    mask_ = slots - 1;
  }

  static uint64_t SlotKey(int table, uint64_t key) {
    return HashKey(key * 31 + static_cast<uint64_t>(table) + 1);
  }

  /// NO_WAIT shared lock; false means the caller must abort.
  bool TryReadLock(int table, uint64_t key) {
    auto& w = words_[SlotKey(table, key) & mask_];
    uint64_t cur = w.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & kWriterBit) != 0) return false;
      if (w.compare_exchange_weak(cur, cur + 1, std::memory_order_acquire)) {
        return true;
      }
    }
  }

  void ReadUnlock(int table, uint64_t key) {
    words_[SlotKey(table, key) & mask_].fetch_sub(1,
                                                  std::memory_order_release);
  }

  /// NO_WAIT exclusive lock.
  bool TryWriteLock(int table, uint64_t key) {
    auto& w = words_[SlotKey(table, key) & mask_];
    uint64_t expected = 0;
    return w.compare_exchange_strong(expected, kWriterBit,
                                     std::memory_order_acquire);
  }

  void WriteUnlock(int table, uint64_t key) {
    words_[SlotKey(table, key) & mask_].store(0, std::memory_order_release);
  }

  /// Read-to-write upgrade: succeeds only when the caller holds the sole
  /// read lock (TPC-C read-modify-write pattern).
  bool TryUpgrade(int table, uint64_t key) {
    auto& w = words_[SlotKey(table, key) & mask_];
    uint64_t expected = 1;
    return w.compare_exchange_strong(expected, kWriterBit,
                                     std::memory_order_acquire);
  }

  /// Testing hook: true when no lock is held anywhere.
  bool AllFree() const {
    for (const auto& w : words_) {
      if (w.load(std::memory_order_relaxed) != 0) return false;
    }
    return true;
  }

 private:
  static constexpr uint64_t kWriterBit = 1ull << 63;
  std::vector<std::atomic<uint64_t>> words_;
  size_t mask_;
};

}  // namespace star

#endif  // STAR_CC_LOCK_TABLE_H_
