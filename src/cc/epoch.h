#ifndef STAR_CC_EPOCH_H_
#define STAR_CC_EPOCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace star {

/// The global epoch used for group commit.  In STAR the epoch is advanced by
/// the phase-switch coordinator (a phase switch *is* an epoch boundary,
/// Section 3); in the baselines a timer thread advances it every
/// `period_ms`, Silo-style (Section 7.1.3's "asynchronous replication +
/// epoch-based group commit" configuration).
class EpochManager {
 public:
  explicit EpochManager(double period_ms = 10.0) : period_ms_(period_ms) {}
  ~EpochManager() { StopTimer(); }

  uint64_t Current() const { return epoch_.load(std::memory_order_acquire); }
  const std::atomic<uint64_t>& counter() const { return epoch_; }

  /// Manual advance (STAR's coordinator at each phase switch).
  uint64_t Advance() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Starts the Silo-style timer thread for baseline engines.
  void StartTimer() {
    running_.store(true, std::memory_order_release);
    timer_ = std::thread([this] {
      while (running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(period_ms_ * 1000)));
        Advance();
      }
    });
  }

  void StopTimer() {
    if (!timer_.joinable()) return;
    running_.store(false, std::memory_order_release);
    timer_.join();
    // One final advance releases transactions committed in the last epoch.
    Advance();
  }

  double period_ms() const { return period_ms_; }

 private:
  double period_ms_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<bool> running_{false};
  std::thread timer_;
};

/// Per-source applied-epoch watermark published by the replication fence.
///
/// A node that drained source s's replication stream through the fence
/// ending epoch E (kFenceExpect observed applied_from(s) >= expected[s])
/// publishes `Publish(s, E)`: every write s committed in epochs <= E has
/// been applied here, and anything still in flight from s carries an epoch
/// > E.  The node-wide snapshot watermark is the MINIMUM over all *active*
/// sources — a replica is consistent at snapshot W when it holds every
/// committed write of every source through epoch W, so read-only
/// transactions pin `watermark()` and validate their read-set TIDs against
/// it (cc/snapshot.h).
///
/// Failure handling hooks:
///  * `SetActive(s, false)` removes a failed source from the minimum (its
///    stream is ignored from then on, Section 4.5.2), so a dead node cannot
///    freeze the watermark.
///  * `Revert(E)` clamps per-source values >= E back to E-1 when the
///    coordinator reverts the uncommitted epoch E — reads must not pin a
///    snapshot that is about to be rolled back.
///  * `Reset()` zeroes everything (rejoin storage reset: the replica is
///    empty and serves no snapshots until fences re-publish).
///
/// All methods are safe against concurrent readers; publication uses a
/// monotonic max so late or duplicated fence rounds never move a source
/// backwards (except through the explicit Revert path).
class AppliedEpochWatermark {
 public:
  explicit AppliedEpochWatermark(int sources)
      : applied_(sources), active_(sources) {
    for (auto& a : applied_) a.store(0, std::memory_order_relaxed);
    for (auto& a : active_) a.store(true, std::memory_order_relaxed);
  }

  /// Source `src` is fully applied through `epoch` (monotonic max).
  void Publish(int src, uint64_t epoch) {
    auto& a = applied_[src];
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < epoch &&
           !a.compare_exchange_weak(cur, epoch, std::memory_order_release,
                                    std::memory_order_relaxed)) {
    }
  }

  /// The node-wide snapshot watermark: min applied epoch over active
  /// sources.  0 until the first fence publishes every active source.
  uint64_t watermark() const {
    uint64_t w = ~0ull;
    bool any = false;
    for (size_t s = 0; s < applied_.size(); ++s) {
      if (!active_[s].load(std::memory_order_acquire)) continue;
      any = true;
      uint64_t v = applied_[s].load(std::memory_order_acquire);
      if (v < w) w = v;
    }
    return any ? w : 0;
  }

  uint64_t applied(int src) const {
    return applied_[src].load(std::memory_order_acquire);
  }

  /// A failed source leaves the minimum; a live (healthy or rejoining) one
  /// participates.
  void SetActive(int src, bool active) {
    active_[src].store(active, std::memory_order_release);
  }

  /// Epoch `revert_epoch` is being rolled back: clamp any source already
  /// published at or past it to the last surviving epoch.
  void Revert(uint64_t revert_epoch) {
    if (revert_epoch == 0) return;
    for (auto& a : applied_) {
      uint64_t cur = a.load(std::memory_order_acquire);
      while (cur >= revert_epoch &&
             !a.compare_exchange_weak(cur, revert_epoch - 1,
                                      std::memory_order_release,
                                      std::memory_order_acquire)) {
      }
    }
  }

  /// Rejoin storage reset: the replica holds nothing; no snapshot is
  /// servable until fences re-publish every source.
  void Reset() {
    for (auto& a : applied_) a.store(0, std::memory_order_release);
  }

  int sources() const { return static_cast<int>(applied_.size()); }

 private:
  std::vector<std::atomic<uint64_t>> applied_;
  std::vector<std::atomic<bool>> active_;
};

/// Tracks transactions awaiting epoch release (group commit) and records
/// their end-to-end latency once the epoch they committed in has closed.
/// Single-writer: each worker owns one tracker; the drain happens on the
/// worker's own thread when it notices the epoch advanced.
class GroupCommitTracker {
 public:
  /// Completion hook for externally submitted transactions (the serving
  /// front end): invoked exactly once, on the tracker owner's thread, when
  /// the transaction's epoch is released (`committed = true`), dropped by a
  /// revert (`committed = false`), or force-drained at shutdown.
  using DoneFn = void (*)(void* ctx, bool committed, uint64_t epoch);

  /// A transaction committed in `epoch`, having started at `start_ns`.
  void Add(uint64_t epoch, uint64_t start_ns) {
    pending_.push_back(Pending{epoch, start_ns, nullptr, nullptr, false});
  }

  /// As above, with a completion hook.  `wait_durable` holds the release
  /// behind the durable gate passed to Drain even when fire-and-forget
  /// transactions release at the plain epoch gate — this is how a single
  /// request opts into `commit_wait = durable` on an engine running with
  /// engine-wide `commit_wait = none`.
  void Add(uint64_t epoch, uint64_t start_ns, DoneFn done, void* ctx,
           bool wait_durable) {
    pending_.push_back(Pending{epoch, start_ns, done, ctx, wait_durable});
  }

  /// Releases every transaction whose epoch is now closed (epoch <
  /// current_epoch), recording latency against `now_ns`.  Returns the number
  /// released.
  size_t Drain(uint64_t current_epoch, uint64_t now_ns, Histogram& latency) {
    return Drain(current_epoch, current_epoch, now_ns, latency);
  }

  /// Two-gate drain: plain entries release at `release_epoch`, entries
  /// added with `wait_durable` release only at `durable_release_epoch`
  /// (normally cluster durable epoch + 1, which trails the phase epoch).
  size_t Drain(uint64_t release_epoch, uint64_t durable_release_epoch,
               uint64_t now_ns, Histogram& latency) {
    size_t released = 0;
    size_t w = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      const Pending& p = pending_[i];
      uint64_t gate = p.wait_durable ? durable_release_epoch : release_epoch;
      if (p.epoch < gate) {
        latency.Record(now_ns - p.start_ns);
        if (p.done != nullptr) p.done(p.ctx, true, p.epoch);
        ++released;
      } else {
        pending_[w++] = pending_[i];
      }
    }
    pending_.resize(w);
    return released;
  }

  /// Discards pending transactions from `epoch` and later without recording
  /// latency — they were reverted by failure handling (Section 4.5.2) and
  /// never released to clients.  External completions fire with
  /// `committed = false` so their clients see the abort instead of a hang.
  size_t DropFrom(uint64_t epoch) {
    size_t dropped = 0;
    size_t w = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      const Pending& p = pending_[i];
      if (p.epoch >= epoch) {
        if (p.done != nullptr) p.done(p.ctx, false, p.epoch);
        ++dropped;
      } else {
        pending_[w++] = pending_[i];
      }
    }
    pending_.resize(w);
    return dropped;
  }

  /// Releases everything unconditionally (engine shutdown; the final fence
  /// and log drain have already made every pending epoch stable).
  size_t DrainAll(uint64_t now_ns, Histogram& latency) {
    size_t released = pending_.size();
    for (const auto& p : pending_) {
      latency.Record(now_ns - p.start_ns);
      if (p.done != nullptr) p.done(p.ctx, true, p.epoch);
    }
    pending_.clear();
    return released;
  }

  size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    uint64_t epoch;
    uint64_t start_ns;
    DoneFn done;
    void* ctx;
    bool wait_durable;
  };
  std::vector<Pending> pending_;
};

}  // namespace star

#endif  // STAR_CC_EPOCH_H_
