#ifndef STAR_CC_EPOCH_H_
#define STAR_CC_EPOCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace star {

/// The global epoch used for group commit.  In STAR the epoch is advanced by
/// the phase-switch coordinator (a phase switch *is* an epoch boundary,
/// Section 3); in the baselines a timer thread advances it every
/// `period_ms`, Silo-style (Section 7.1.3's "asynchronous replication +
/// epoch-based group commit" configuration).
class EpochManager {
 public:
  explicit EpochManager(double period_ms = 10.0) : period_ms_(period_ms) {}
  ~EpochManager() { StopTimer(); }

  uint64_t Current() const { return epoch_.load(std::memory_order_acquire); }
  const std::atomic<uint64_t>& counter() const { return epoch_; }

  /// Manual advance (STAR's coordinator at each phase switch).
  uint64_t Advance() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Starts the Silo-style timer thread for baseline engines.
  void StartTimer() {
    running_.store(true, std::memory_order_release);
    timer_ = std::thread([this] {
      while (running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(period_ms_ * 1000)));
        Advance();
      }
    });
  }

  void StopTimer() {
    if (!timer_.joinable()) return;
    running_.store(false, std::memory_order_release);
    timer_.join();
    // One final advance releases transactions committed in the last epoch.
    Advance();
  }

  double period_ms() const { return period_ms_; }

 private:
  double period_ms_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<bool> running_{false};
  std::thread timer_;
};

/// Tracks transactions awaiting epoch release (group commit) and records
/// their end-to-end latency once the epoch they committed in has closed.
/// Single-writer: each worker owns one tracker; the drain happens on the
/// worker's own thread when it notices the epoch advanced.
class GroupCommitTracker {
 public:
  /// A transaction committed in `epoch`, having started at `start_ns`.
  void Add(uint64_t epoch, uint64_t start_ns) {
    pending_.push_back(Pending{epoch, start_ns});
  }

  /// Releases every transaction whose epoch is now closed (epoch <
  /// current_epoch), recording latency against `now_ns`.  Returns the number
  /// released.
  size_t Drain(uint64_t current_epoch, uint64_t now_ns, Histogram& latency) {
    size_t released = 0;
    size_t w = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].epoch < current_epoch) {
        latency.Record(now_ns - pending_[i].start_ns);
        ++released;
      } else {
        pending_[w++] = pending_[i];
      }
    }
    pending_.resize(w);
    return released;
  }

  /// Discards pending transactions from `epoch` and later without recording
  /// latency — they were reverted by failure handling (Section 4.5.2) and
  /// never released to clients.
  size_t DropFrom(uint64_t epoch) {
    size_t dropped = 0;
    size_t w = 0;
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].epoch >= epoch) {
        ++dropped;
      } else {
        pending_[w++] = pending_[i];
      }
    }
    pending_.resize(w);
    return dropped;
  }

  /// Releases everything unconditionally (engine shutdown).
  size_t DrainAll(uint64_t now_ns, Histogram& latency) {
    size_t released = pending_.size();
    for (const auto& p : pending_) latency.Record(now_ns - p.start_ns);
    pending_.clear();
    return released;
  }

  size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    uint64_t epoch;
    uint64_t start_ns;
  };
  std::vector<Pending> pending_;
};

}  // namespace star

#endif  // STAR_CC_EPOCH_H_
