#ifndef STAR_CC_OPERATION_H_
#define STAR_CC_OPERATION_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/serializer.h"

namespace star {

/// A logical update to one field of a record — the unit of *operation
/// replication* (Section 5).  Instead of shipping the whole record value,
/// the partitioned phase can ship the operation and let each replica
/// recompute the field.  The canonical example is TPC-C Payment, which
/// prepends a short string to the 500-byte C_DATA field: shipping the delta
/// is an order of magnitude cheaper than shipping the field.
///
/// Operations are deterministic functions of (old field value, operand), so
/// replaying them in commit order — guaranteed in the partitioned phase,
/// where each partition has a single writer and links are FIFO — reproduces
/// the primary's state exactly.
struct Operation {
  enum class Code : uint8_t {
    kSet = 0,            // overwrite field bytes with operand
    kAddI64 = 1,         // 64-bit integer add at offset
    kAddF64 = 2,         // double add at offset
    kStringPrepend = 3,  // new = truncate(operand + old, field_len)
  };

  Code code = Code::kSet;
  uint32_t offset = 0;     // field offset within the record value
  uint32_t field_len = 0;  // field capacity (string ops)
  std::string operand;

  /// Applies an operation to a record value in place.  Static so replication
  /// appliers can execute operations straight off the wire (operand viewed
  /// into the batch payload) without materialising an Operation.
  static void Apply(Code code, uint32_t offset, uint32_t field_len,
                    std::string_view operand, char* value) {
    char* field = value + offset;
    switch (code) {
      case Code::kSet:
        std::memcpy(field, operand.data(),
                    std::min<size_t>(operand.size(), field_len));
        break;
      case Code::kAddI64: {
        int64_t cur;
        std::memcpy(&cur, field, sizeof(cur));
        int64_t delta;
        std::memcpy(&delta, operand.data(), sizeof(delta));
        cur += delta;
        std::memcpy(field, &cur, sizeof(cur));
        break;
      }
      case Code::kAddF64: {
        double cur;
        std::memcpy(&cur, field, sizeof(cur));
        double delta;
        std::memcpy(&delta, operand.data(), sizeof(delta));
        cur += delta;
        std::memcpy(field, &cur, sizeof(cur));
        break;
      }
      case Code::kStringPrepend: {
        size_t keep = operand.size() >= field_len
                          ? 0
                          : static_cast<size_t>(field_len) - operand.size();
        std::memmove(field + std::min<size_t>(operand.size(), field_len),
                     field, keep);
        std::memcpy(field, operand.data(),
                    std::min<size_t>(operand.size(), field_len));
        break;
      }
    }
  }

  void ApplyTo(char* value) const {
    Apply(code, offset, field_len, operand, value);
  }

  void Serialize(WriteBuffer& out) const {
    out.Write<uint8_t>(static_cast<uint8_t>(code));
    out.Write<uint32_t>(offset);
    out.Write<uint32_t>(field_len);
    out.WriteString(operand);
  }

  static Operation Deserialize(ReadBuffer& in) {
    Operation op;
    op.code = static_cast<Code>(in.Read<uint8_t>());
    op.offset = in.Read<uint32_t>();
    op.field_len = in.Read<uint32_t>();
    op.operand = std::string(in.ReadBytes());
    return op;
  }

  /// Wire size (used to report replication savings, Figure 15(a)).
  size_t SerializedSize() const { return 1 + 4 + 4 + 4 + operand.size(); }

  // --- convenience constructors ---
  static Operation Set(uint32_t offset, std::string bytes) {
    Operation op;
    op.code = Code::kSet;
    op.offset = offset;
    op.field_len = static_cast<uint32_t>(bytes.size());
    op.operand = std::move(bytes);
    return op;
  }
  static Operation AddI64(uint32_t offset, int64_t delta) {
    Operation op;
    op.code = Code::kAddI64;
    op.offset = offset;
    op.field_len = 8;
    op.operand.assign(reinterpret_cast<const char*>(&delta), sizeof(delta));
    return op;
  }
  static Operation AddF64(uint32_t offset, double delta) {
    Operation op;
    op.code = Code::kAddF64;
    op.offset = offset;
    op.field_len = 8;
    op.operand.assign(reinterpret_cast<const char*>(&delta), sizeof(delta));
    return op;
  }
  static Operation StringPrepend(uint32_t offset, uint32_t field_len,
                                 std::string prefix) {
    Operation op;
    op.code = Code::kStringPrepend;
    op.offset = offset;
    op.field_len = field_len;
    op.operand = std::move(prefix);
    return op;
  }
};

}  // namespace star

#endif  // STAR_CC_OPERATION_H_
