#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/clock.h"

namespace star::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// epoll user-data: connection slots are small indices; the listener and
// the wake eventfd get sentinels well above max_conns.
constexpr uint64_t kListenerTag = ~0ull;
constexpr uint64_t kWakeTag = ~0ull - 1;

uint8_t MapStatus(TxnStatus s) {
  switch (s) {
    case TxnStatus::kCommitted:
      return static_cast<uint8_t>(Status::kOk);
    case TxnStatus::kAbortConflict:
      return static_cast<uint8_t>(Status::kAbortConflict);
    case TxnStatus::kAbortUser:
      return static_cast<uint8_t>(Status::kAbortUser);
    default:
      return static_cast<uint8_t>(Status::kRetry);
  }
}

}  // namespace

ServeServer::ServeServer(StarEngine* engine, const ProcRegistry* registry,
                         const ServeOptions& opts)
    : engine_(engine),
      registry_(registry),
      opts_(opts),
      num_partitions_(engine->options().cluster.num_partitions()),
      ring_(std::max(opts.response_ring, opts.admission.max_inflight + 1)),
      admission_(opts.admission) {}

ServeServer::~ServeServer() { Stop(); }

bool ServeServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, 256) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);

  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epfd_ < 0 || wake_fd_ < 0) {
    Stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  conns_.resize(opts_.max_conns);
  free_slots_.clear();
  for (size_t i = opts_.max_conns; i > 0; --i) {
    free_slots_.push_back(static_cast<uint32_t>(i - 1));
  }

  running_.store(true, std::memory_order_release);
  io_ = std::thread([this] { IoLoop(); });
  return true;
}

void ServeServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    WakeIo();
    if (io_.joinable()) io_.join();
  } else if (io_.joinable()) {
    io_.join();
  }
  for (uint32_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].live) CloseConn(i);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epfd_ >= 0) close(epfd_);
  listen_fd_ = wake_fd_ = epfd_ = -1;
}

ServeServer::Counters ServeServer::counters() const {
  Counters c;
  c.conns_accepted = count_.conns_accepted.load(std::memory_order_relaxed);
  c.conns_dropped = count_.conns_dropped.load(std::memory_order_relaxed);
  c.frames = count_.frames.load(std::memory_order_relaxed);
  c.bad_frames = count_.bad_frames.load(std::memory_order_relaxed);
  c.calls = count_.calls.load(std::memory_order_relaxed);
  c.shed = count_.shed.load(std::memory_order_relaxed);
  c.rejected = count_.rejected.load(std::memory_order_relaxed);
  c.results = count_.results.load(std::memory_order_relaxed);
  c.ring_overflow = ring_overflow_.v.load(std::memory_order_relaxed);
  return c;
}

void ServeServer::WakeIo() {
  uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void ServeServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epfd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        AcceptConns();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t buf;
        while (read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      uint32_t slot = static_cast<uint32_t>(tag);
      if (slot >= conns_.size() || !conns_[slot].live) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(slot);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushConn(slot);
      if (conns_[slot].live && (events[i].events & EPOLLIN) != 0) {
        ReadConn(slot);
      }
    }
    // The eventfd is level-cleared above; catch completions that raced in
    // after the read but before epoll_wait rearms.
    DrainCompletions();
  }
}

void ServeServer::AcceptConns() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (free_slots_.empty()) {
      // At connection capacity: refusing at accept is the connection-level
      // analogue of admission shedding.
      close(fd);
      count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    Conn& c = conns_[slot];
    c.fd = fd;
    c.live = true;
    c.want_write = false;
    c.session = 0;
    c.hdr_have = 0;
    c.in_body = false;
    c.body_have = 0;
    c.out = pool_.Acquire(static_cast<int>(slot));
    c.out_off = 0;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = slot;
    epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    count_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeServer::CloseConn(uint32_t slot) {
  Conn& c = conns_[slot];
  if (!c.live) return;
  if (epfd_ >= 0) epoll_ctl(epfd_, EPOLL_CTL_DEL, c.fd, nullptr);
  close(c.fd);
  c.fd = -1;
  c.live = false;
  // Bump the generation so in-flight completions addressed here are
  // recognised as stale and dropped instead of landing on a reused slot.
  ++c.gen;
  pool_.Release(static_cast<int>(slot), std::move(c.body));
  c.body = std::string();
  pool_.Release(static_cast<int>(slot), std::move(c.out));
  c.out = std::string();
  c.out_off = 0;
  free_slots_.push_back(slot);
}

void ServeServer::UpdateInterest(uint32_t slot) {
  Conn& c = conns_[slot];
  bool want = c.out_off < c.out.size();
  if (want == c.want_write) return;
  c.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = slot;
  epoll_ctl(epfd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void ServeServer::FlushConn(uint32_t slot) {
  Conn& c = conns_[slot];
  while (c.out_off < c.out.size()) {
    ssize_t n = send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                     MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(slot);
    count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  }
  UpdateInterest(slot);
}

void ServeServer::ReadConn(uint32_t slot) {
  Conn& c = conns_[slot];
  for (;;) {
    if (!c.in_body) {
      ssize_t n = recv(c.fd, c.hdr + c.hdr_have, kHeaderSize - c.hdr_have, 0);
      if (n == 0) {
        CloseConn(slot);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        CloseConn(slot);
        count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      c.hdr_have += static_cast<size_t>(n);
      if (c.hdr_have < kHeaderSize) continue;
      if (!DecodeHeader(c.hdr, &c.head)) {
        // Bad magic or oversized body: untrusted input, drop the
        // connection rather than resynchronise.
        count_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        CloseConn(slot);
        count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      c.hdr_have = 0;
      if (c.head.body_len == 0) {
        if (!HandleFrame(slot)) return;
        continue;
      }
      c.in_body = true;
      c.body = pool_.Acquire(static_cast<int>(slot));
      c.body.resize(c.head.body_len);
      c.body_have = 0;
      continue;
    }
    ssize_t n = recv(c.fd, c.body.data() + c.body_have,
                     c.body.size() - c.body_have, 0);
    if (n == 0) {
      CloseConn(slot);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConn(slot);
      count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    c.body_have += static_cast<size_t>(n);
    if (c.body_have < c.body.size()) continue;
    c.in_body = false;
    bool ok = HandleFrame(slot);
    if (conns_[slot].live) {
      pool_.Release(static_cast<int>(slot), std::move(conns_[slot].body));
      conns_[slot].body = std::string();
    }
    if (!ok) return;
  }
}

void ServeServer::AppendFrame(Conn& c, const FrameHeader& h, const char* body,
                              size_t body_len) {
  size_t at = c.out.size();
  c.out.resize(at + kHeaderSize + body_len);
  EncodeHeader(c.out.data() + at, h);
  if (body_len > 0) std::memcpy(c.out.data() + at + kHeaderSize, body, body_len);
}

bool ServeServer::HandleFrame(uint32_t slot) {
  Conn& c = conns_[slot];
  count_.frames.fetch_add(1, std::memory_order_relaxed);
  switch (static_cast<FrameType>(c.head.type)) {
    case FrameType::kHello: {
      uint32_t id = next_session_++;
      c.session = id;
      sessions_[id] = 0;
      FrameHeader ack;
      ack.type = static_cast<uint16_t>(FrameType::kHelloAck);
      ack.session = id;
      ack.request_id = c.head.request_id;
      AppendFrame(c, ack, nullptr, 0);
      FlushConn(slot);
      return c.live;
    }
    case FrameType::kGoodbye: {
      uint32_t id = static_cast<uint32_t>(c.head.session);
      if (id != 0) sessions_.erase(id);
      return true;
    }
    case FrameType::kCall:
      HandleCall(slot);
      return conns_[slot].live;
    default:
      // Unknown or server-to-client frame type from a client: protocol
      // error, close.
      count_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      CloseConn(slot);
      count_.conns_dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
}

void ServeServer::HandleCall(uint32_t slot) {
  Conn& c = conns_[slot];
  uint32_t session = c.head.session != 0
                         ? static_cast<uint32_t>(c.head.session)
                         : c.session;
  FrameHeader rh;
  rh.proc = c.head.proc;
  rh.session = session;
  rh.request_id = c.head.request_id;

  CallBody call;
  if (!DecodeCall(c.body.data(), c.body.size(), &call)) {
    count_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    ResultBody r;
    r.status = static_cast<uint8_t>(Status::kBadRequest);
    char buf[kResultBodySize];
    EncodeResult(buf, r);
    rh.type = static_cast<uint16_t>(FrameType::kResult);
    rh.body_len = kResultBodySize;
    AppendFrame(c, rh, buf, sizeof(buf));
    FlushConn(slot);
    return;
  }

  uint64_t now = NowNanos();
  uint64_t est = 0;
  if (!admission_.Admit(now, &est)) {
    count_.shed.fetch_add(1, std::memory_order_relaxed);
    ShedBody s;
    s.est_wait_ns = est;
    char buf[kShedBodySize];
    EncodeShed(buf, s);
    rh.type = static_cast<uint16_t>(FrameType::kShed);
    rh.body_len = kShedBodySize;
    AppendFrame(c, rh, buf, sizeof(buf));
    FlushConn(slot);
    return;
  }

  auto* t = new StarEngine::ExternalTxn();
  if (!registry_->Make(c.head.proc, call.seed,
                       static_cast<int>(call.partition), num_partitions_,
                       &t->req)) {
    delete t;
    admission_.OnCancel();
    count_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    ResultBody r;
    r.status = static_cast<uint8_t>(Status::kBadRequest);
    char buf[kResultBodySize];
    EncodeResult(buf, r);
    rh.type = static_cast<uint16_t>(FrameType::kResult);
    rh.body_len = kResultBodySize;
    AppendFrame(c, rh, buf, sizeof(buf));
    FlushConn(slot);
    return;
  }

  t->submit_ns = now;
  t->wait_durable = (call.flags & kCallWaitDurable) != 0;
  if (t->req.read_only && session != 0) {
    auto it = sessions_.find(session);
    if (it != sessions_.end()) t->min_epoch = it->second;
  }
  t->done = &ServeServer::OnExternalDone;
  t->owner = this;
  t->tag0 = static_cast<uint64_t>(slot) |
            (static_cast<uint64_t>(c.gen) << 32);
  t->tag1 = c.head.request_id;
  t->tag2 = (static_cast<uint64_t>(c.head.proc) << 32) | session;

  if (!engine_->SubmitExternal(t)) {
    // Queue full (backpressure below the admission gate) or the request
    // class has no serving thread: bounce as retryable.
    delete t;
    admission_.OnCancel();
    count_.rejected.fetch_add(1, std::memory_order_relaxed);
    ResultBody r;
    r.status = static_cast<uint8_t>(Status::kRetry);
    char buf[kResultBodySize];
    EncodeResult(buf, r);
    rh.type = static_cast<uint16_t>(FrameType::kResult);
    rh.body_len = kResultBodySize;
    AppendFrame(c, rh, buf, sizeof(buf));
    FlushConn(slot);
    return;
  }
  count_.calls.fetch_add(1, std::memory_order_relaxed);
}

void ServeServer::OnExternalDone(StarEngine::ExternalTxn* t, TxnStatus status,
                                 uint64_t epoch) {
  auto* s = static_cast<ServeServer*>(t->owner);
  Response r;
  r.slot = static_cast<uint32_t>(t->tag0 & 0xffffffffu);
  r.gen = static_cast<uint32_t>(t->tag0 >> 32);
  r.request_id = t->tag1;
  r.proc = static_cast<uint32_t>(t->tag2 >> 32);
  r.session = static_cast<uint32_t>(t->tag2 & 0xffffffffu);
  r.status = MapStatus(status);
  r.epoch = epoch;
  delete t;
  s->admission_.OnComplete(NowNanos());
  if (s->ring_.TryPush(std::move(r))) {
    s->WakeIo();
  } else {
    // Sized above max_inflight, so this cannot fire under the admission
    // cap; counted rather than asserted because clients own the timeout.
    s->ring_overflow_.v.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeServer::DrainCompletions() {
  Response r;
  while (ring_.TryPop(&r)) {
    // Advance the session's read-your-writes floor before anything else:
    // even if the connection died, the session may reconnect and must not
    // see state older than what this response certified.
    if (r.session != 0 && r.status == static_cast<uint8_t>(Status::kOk) &&
        r.epoch > 0) {
      auto it = sessions_.find(r.session);
      if (it != sessions_.end() && it->second < r.epoch) it->second = r.epoch;
    }
    if (r.slot >= conns_.size()) continue;
    Conn& c = conns_[r.slot];
    if (!c.live || c.gen != r.gen) continue;  // stale: connection turned over
    FrameHeader h;
    h.type = static_cast<uint16_t>(FrameType::kResult);
    h.body_len = kResultBodySize;
    h.proc = r.proc;
    h.session = r.session;
    h.request_id = r.request_id;
    ResultBody body;
    body.status = r.status;
    body.epoch = r.epoch;
    char buf[kResultBodySize];
    EncodeResult(buf, body);
    AppendFrame(c, h, buf, sizeof(buf));
    count_.results.fetch_add(1, std::memory_order_relaxed);
  }
  // Batched flush: one send per connection per drain, not per response.
  for (uint32_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].live && conns_[i].out_off < conns_[i].out.size()) {
      FlushConn(i);
    }
  }
}

}  // namespace star::serve
