#include "serve/loadgen.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fcntl.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "serve/protocol.h"

namespace star::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int DialLoopback(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return -1;
  }
  SetNoDelay(fd);
  SetNonBlocking(fd);
  return fd;
}

/// One in-flight request: the scheduled Poisson arrival that owns its
/// latency clock, plus everything needed to re-offer the identical call if
/// the server sheds it.
struct Pending {
  uint64_t sched = 0;    // scheduled arrival ns (kept across retries)
  uint32_t proc = 0;
  uint8_t attempts = 0;  // shed-retry attempts consumed
  CallBody call;
};

/// One simulated client: a connection, its session, its outstanding
/// requests keyed by request id, and its shed-retry queue.
struct Client {
  int fd = -1;
  uint64_t session = 0;
  bool hello_acked = false;
  std::string out;          // unsent bytes (honest open loop: never blocks)
  size_t out_off = 0;
  char hdr[kHeaderSize];
  size_t hdr_have = 0;
  FrameHeader head;
  bool in_body = false;
  char body[64];
  size_t body_have = 0;
  std::unordered_map<uint64_t, Pending> outstanding;  // req id → request
  /// Shed calls waiting out their backoff before re-injection.
  std::vector<std::pair<uint64_t, Pending>> retries;  // due ns → request
};

struct ThreadStats {
  uint64_t offered = 0, sent = 0, ok = 0, aborted = 0, retry = 0, bad = 0,
           shed = 0, shed_retried = 0, shed_give_up = 0, lost = 0;
  Histogram latency;
};

void FlushClient(Client& c) {
  while (c.out_off < c.out.size()) {
    ssize_t n = send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                     MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN: keep the backlog, the arrival clock keeps ticking
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off > (1u << 16)) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
}

/// Appends one encoded kCall frame for `p` and registers it outstanding.
void SendCall(Client& c, Pending p, uint64_t request_id) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kCall);
  h.body_len = kCallBodySize;
  h.proc = p.proc;
  h.session = c.session;
  h.request_id = request_id;
  char buf[kHeaderSize + kCallBodySize];
  EncodeHeader(buf, h);
  EncodeCall(buf + kHeaderSize, p.call);
  c.out.append(buf, sizeof(buf));
  c.outstanding.emplace(request_id, std::move(p));
}

/// Re-injects every shed call whose backoff has expired (fresh request id,
/// original arrival clock).
void ServiceRetries(Client& c, ThreadStats& st, Rng& rng, uint64_t now,
                    uint64_t* next_req) {
  (void)rng;
  for (size_t i = 0; i < c.retries.size();) {
    if (c.retries[i].first > now) {
      ++i;
      continue;
    }
    Pending p = std::move(c.retries[i].second);
    c.retries[i] = std::move(c.retries.back());
    c.retries.pop_back();
    SendCall(c, std::move(p), (*next_req)++);
    ++st.sent;  // a resend, not a new offered arrival
  }
}

/// Parses whatever responses are readable; records latencies and queues
/// shed calls for retry per the server's wait hint.
void PumpResponses(const LoadGenOptions& opts, Client& c, ThreadStats& st,
                   Rng& rng, uint64_t now) {
  for (;;) {
    if (!c.in_body) {
      ssize_t n = recv(c.fd, c.hdr + c.hdr_have, kHeaderSize - c.hdr_have, 0);
      if (n <= 0) return;
      c.hdr_have += static_cast<size_t>(n);
      if (c.hdr_have < kHeaderSize) continue;
      c.hdr_have = 0;
      if (!DecodeHeader(c.hdr, &c.head) || c.head.body_len > sizeof(c.body)) {
        return;  // server never sends this; treat as stream end
      }
      if (c.head.body_len == 0) {
        if (static_cast<FrameType>(c.head.type) == FrameType::kHelloAck) {
          c.session = c.head.session;
          c.hello_acked = true;
        }
        continue;
      }
      c.in_body = true;
      c.body_have = 0;
      continue;
    }
    ssize_t n = recv(c.fd, c.body + c.body_have, c.head.body_len - c.body_have,
                     0);
    if (n <= 0) return;
    c.body_have += static_cast<size_t>(n);
    if (c.body_have < c.head.body_len) continue;
    c.in_body = false;
    FrameType ft = static_cast<FrameType>(c.head.type);
    auto it = c.outstanding.find(c.head.request_id);
    bool known = it != c.outstanding.end();
    Pending p;
    if (known) {
      p = std::move(it->second);
      c.outstanding.erase(it);
    }
    uint64_t sched = known ? p.sched : 0;
    if (ft == FrameType::kShed) {
      ++st.shed;
      if (known && p.attempts < opts.shed_retries) {
        // Honour the server's wait estimate: clamp it into the configured
        // band, double per attempt (capped), jitter by U(0.5, 1.5).
        ShedBody sb;
        double est_ms = DecodeShed(c.body, c.head.body_len, &sb)
                            ? sb.est_wait_ns / 1e6
                            : opts.retry_backoff_min_ms;
        double base_ms = std::min(
            std::max(est_ms, opts.retry_backoff_min_ms) *
                static_cast<double>(1u << p.attempts),
            opts.retry_backoff_max_ms);
        uint64_t backoff_ns = static_cast<uint64_t>(
            base_ms * 1e6 * (0.5 + rng.NextDouble()));
        ++p.attempts;
        ++st.shed_retried;
        c.retries.emplace_back(now + backoff_ns, std::move(p));
      } else if (known) {
        ++st.shed_give_up;
      }
      continue;
    }
    if (ft != FrameType::kResult) continue;
    ResultBody r;
    if (!DecodeResult(c.body, c.head.body_len, &r)) continue;
    switch (static_cast<Status>(r.status)) {
      case Status::kOk:
        ++st.ok;
        break;
      case Status::kAbortConflict:
      case Status::kAbortUser:
        ++st.aborted;
        break;
      case Status::kRetry:
        ++st.retry;
        continue;  // never completed service; no latency sample
      default:
        ++st.bad;
        continue;
    }
    // Accepted-request latency from the scheduled arrival: this is the
    // anti-coordinated-omission measurement the bench reports.
    if (sched != 0 && now > sched) st.latency.Record(now - sched);
  }
}

void InjectorThread(const LoadGenOptions& opts, int tid, ThreadStats* st) {
  Rng rng(opts.seed * 7919 + static_cast<uint64_t>(tid) * 104729 + 1);
  std::vector<Client> clients(static_cast<size_t>(opts.conns_per_thread));
  for (auto& c : clients) {
    c.fd = DialLoopback(opts.port);
    if (c.fd < 0) continue;
    FrameHeader hello;
    hello.type = static_cast<uint16_t>(FrameType::kHello);
    char buf[kHeaderSize];
    EncodeHeader(buf, hello);
    c.out.append(buf, sizeof(buf));
    FlushClient(c);
  }

  double per_thread_tps = opts.offered_tps / opts.threads;
  double mean_gap_ns = 1e9 / (per_thread_tps > 0 ? per_thread_tps : 1.0);
  uint64_t start = NowNanos();
  uint64_t end = start + static_cast<uint64_t>(opts.duration_s * 1e9);
  uint64_t drain_end = end + static_cast<uint64_t>(opts.drain_s * 1e9);
  // First arrival after one exponential gap, not at t=0 (all threads
  // starting with a synchronized burst would not be a Poisson process).
  double u0 = rng.NextDouble();
  uint64_t next_arrival =
      start + static_cast<uint64_t>(-std::log(1.0 - u0) * mean_gap_ns);
  uint64_t next_req = 1;
  size_t rr = 0;

  for (;;) {
    uint64_t now = NowNanos();
    if (now >= end) break;
    // Inject every arrival the Poisson clock says is due — even if the
    // socket is backed up, the request's latency clock starts now.
    while (next_arrival <= now) {
      Client& c = clients[rr++ % clients.size()];
      if (c.fd >= 0) {
        bool read = rng.Flip(opts.read_fraction);
        bool cross = !read && rng.Flip(opts.cross_fraction);
        CallBody call;
        call.partition =
            static_cast<uint32_t>(rng.Uniform(
                static_cast<uint64_t>(opts.num_partitions > 0
                                          ? opts.num_partitions
                                          : 1)));
        call.seed = rng.Next();
        call.flags = (!read && rng.Flip(opts.durable_fraction))
                         ? kCallWaitDurable
                         : 0;
        Pending p;
        p.sched = next_arrival;
        p.proc = read ? opts.read_proc
                      : (cross ? opts.cross_proc : opts.write_proc);
        p.call = call;
        SendCall(c, std::move(p), next_req++);
        ++st->offered;
        ++st->sent;
      } else {
        ++st->offered;  // nowhere to send it: still offered, will be lost
        ++st->lost;
      }
      double u = rng.NextDouble();
      next_arrival += static_cast<uint64_t>(-std::log(1.0 - u) * mean_gap_ns);
    }
    for (auto& c : clients) {
      if (c.fd < 0) continue;
      ServiceRetries(c, *st, rng, now, &next_req);
      FlushClient(c);
      PumpResponses(opts, c, *st, rng, now);
    }
    uint64_t wake = next_arrival < end ? next_arrival : end;
    now = NowNanos();
    if (wake > now + 200'000) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  // Drain: flush backlogs and collect stragglers until quiet or deadline.
  for (;;) {
    uint64_t now = NowNanos();
    if (now >= drain_end) break;
    size_t pending = 0;
    for (auto& c : clients) {
      if (c.fd < 0) continue;
      ServiceRetries(c, *st, rng, now, &next_req);
      FlushClient(c);
      PumpResponses(opts, c, *st, rng, now);
      pending += c.outstanding.size() + c.retries.size() +
                 (c.out.size() - c.out_off);
    }
    if (pending == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& c : clients) {
    if (c.fd < 0) continue;
    st->lost += c.outstanding.size() + c.retries.size();
    close(c.fd);
  }
}

}  // namespace

LoadGenResult RunOpenLoopLoad(const LoadGenOptions& opts) {
  std::vector<ThreadStats> stats(static_cast<size_t>(opts.threads));
  std::vector<std::thread> threads;
  threads.reserve(stats.size());
  uint64_t t0 = NowNanos();
  for (int i = 0; i < opts.threads; ++i) {
    threads.emplace_back(InjectorThread, std::cref(opts), i, &stats[i]);
  }
  for (auto& t : threads) t.join();
  uint64_t t1 = NowNanos();

  LoadGenResult r;
  for (const ThreadStats& s : stats) {
    r.offered += s.offered;
    r.sent += s.sent;
    r.ok += s.ok;
    r.aborted += s.aborted;
    r.retry += s.retry;
    r.bad += s.bad;
    r.shed += s.shed;
    r.shed_retried += s.shed_retried;
    r.shed_give_up += s.shed_give_up;
    r.lost += s.lost;
    r.latency.Merge(s.latency);
  }
  double secs = (t1 - t0) / 1e9;
  uint64_t completed = r.ok + r.aborted;
  r.achieved_tps = secs > 0 ? completed / secs : 0.0;
  uint64_t judged = completed + r.shed;
  r.shed_rate = judged > 0 ? static_cast<double>(r.shed) / judged : 0.0;
  return r;
}

}  // namespace star::serve
