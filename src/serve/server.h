#ifndef STAR_SERVE_SERVER_H_
#define STAR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mpsc_ring.h"
#include "core/engine.h"
#include "net/payload_pool.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace star::serve {

struct ServeOptions {
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  size_t max_conns = 1024;
  /// Capacity of the engine→io completion ring.  Start() raises it to at
  /// least admission.max_inflight so a full ring (dropped response, client
  /// timeout) cannot happen under the admission cap.
  size_t response_ring = 16384;
  AdmissionController::Options admission;
};

/// The client-facing serving front end: one io thread multiplexing every
/// client connection over epoll, speaking the length-prefixed frame
/// protocol of serve/protocol.h, dispatching stored procedures from the
/// ProcRegistry into the engine's external queues (StarEngine::
/// SubmitExternal) and batching responses back per connection.
///
/// Structure (the YDB grpc_services → executer → datashard layering at this
/// repo's scale): the io thread owns all connection and session state —
/// no locks on the request path.  Engine threads finish requests by
/// enqueueing a POD Response on an MPSC ring and nudging an eventfd; the io
/// thread drains the ring, updates session read-your-writes floors, and
/// writes result frames.  Session floors are safe to keep io-thread-only:
/// a client cannot issue a read that depends on its write before it has
/// *received* the write's result, and receiving it means the io thread
/// already drained that completion and advanced the floor.
///
/// Request bodies are read zero-copy into payload-pool buffers (the same
/// recycling scheme the cluster transport uses) and released after decode;
/// the steady-state request path does not heap-allocate.
///
/// Admission control: every kCall passes the AdmissionController before it
/// touches the engine.  Shed requests are answered immediately with a
/// kShed frame carrying the queue-wait estimate, keeping accepted-request
/// tail latency bounded while the open-loop arrival rate exceeds capacity.
///
/// Lifecycle: Start() after engine.Start(); Stop() whenever — but the
/// ServeServer object must outlive engine.Stop(), because in-flight
/// completions fire the engine→server callback until the engine has fully
/// drained (pattern: server.Stop(); engine.Stop(); ~ServeServer).
class ServeServer {
 public:
  /// `engine` and `registry` must outlive the server.  The engine should
  /// normally run with synthetic_load=false so it executes exactly the
  /// offered client load.
  ServeServer(StarEngine* engine, const ProcRegistry* registry,
              const ServeOptions& opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and launches the io thread.  False on socket errors.
  bool Start();
  /// Stops the io thread and closes every connection.  Idempotent.
  void Stop();

  /// The bound port (after Start(); meaningful with opts.port == 0).
  uint16_t port() const { return port_; }

  struct Counters {
    uint64_t conns_accepted = 0;
    uint64_t conns_dropped = 0;   // at capacity, protocol error, or hangup
    uint64_t frames = 0;          // well-formed frames parsed
    uint64_t bad_frames = 0;      // header/body decode failures
    uint64_t calls = 0;           // kCall frames admitted into the engine
    uint64_t shed = 0;            // kCall frames rejected by admission
    uint64_t rejected = 0;        // kCall frames bounced by SubmitExternal
    uint64_t results = 0;         // kResult frames sent
    uint64_t ring_overflow = 0;   // completions dropped (ring full)
  };
  Counters counters() const;

  const AdmissionController& admission() const { return admission_; }
  AdmissionController& admission() { return admission_; }

 private:
  /// What an engine thread hands back to the io thread: pure POD so the
  /// completion ring never owns memory.
  struct Response {
    uint32_t slot = 0;
    uint32_t gen = 0;
    uint32_t proc = 0;
    uint32_t session = 0;
    uint64_t request_id = 0;
    uint8_t status = 0;  // protocol Status
    uint64_t epoch = 0;
  };

  /// Per-connection state machine, io-thread-only.  Slots are reused; the
  /// generation counter invalidates completions addressed to a connection
  /// that died while its request was in flight.
  struct Conn {
    int fd = -1;
    uint32_t gen = 0;
    bool live = false;
    bool want_write = false;
    uint32_t session = 0;  // last kHello-assigned session on this conn
    // Read side: fixed header staging, then body into a pooled buffer.
    char hdr[kHeaderSize];
    size_t hdr_have = 0;
    FrameHeader head;
    bool in_body = false;
    std::string body;
    size_t body_have = 0;
    // Write side: batched response bytes (pooled buffer).
    std::string out;
    size_t out_off = 0;
  };

  void IoLoop();
  void AcceptConns();
  void DrainCompletions();
  void ReadConn(uint32_t slot);
  void FlushConn(uint32_t slot);
  void CloseConn(uint32_t slot);
  /// Dispatches one fully received frame; false = protocol error, caller
  /// closes the connection.
  bool HandleFrame(uint32_t slot);
  void HandleCall(uint32_t slot);
  void AppendFrame(Conn& c, const FrameHeader& h, const char* body,
                   size_t body_len);
  void UpdateInterest(uint32_t slot);
  void WakeIo();

  /// Engine-thread completion trampoline (ExternalTxn::done).
  static void OnExternalDone(StarEngine::ExternalTxn* t, TxnStatus status,
                             uint64_t epoch);

  StarEngine* engine_;
  const ProcRegistry* registry_;
  ServeOptions opts_;
  int num_partitions_ = 0;

  int listen_fd_ = -1;
  int epfd_ = -1;
  int wake_fd_ = -1;  // eventfd: engine completions + Stop() nudge the poll
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread io_;

  std::vector<Conn> conns_;
  std::vector<uint32_t> free_slots_;
  net::PayloadPool pool_;

  /// Session id → read-your-writes floor (last result epoch delivered on
  /// the session).  Io-thread-only; see class comment for why that holds.
  std::unordered_map<uint32_t, uint64_t> sessions_;
  uint32_t next_session_ = 1;

  MpscRing<Response> ring_;
  AdmissionController admission_;

  /// Io-thread counters, read cross-thread by counters(): relaxed atomics,
  /// one padded block (single writer, so no contention to isolate).
  struct alignas(64) CounterBlock {
    std::atomic<uint64_t> conns_accepted{0};
    std::atomic<uint64_t> conns_dropped{0};
    std::atomic<uint64_t> frames{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> results{0};
  };
  CounterBlock count_;
  /// Written by engine threads, so it lives outside the io-thread block.
  struct alignas(64) RingOverflow {
    std::atomic<uint64_t> v{0};
  };
  RingOverflow ring_overflow_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_SERVER_H_
