#ifndef STAR_SERVE_ADMISSION_H_
#define STAR_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"

namespace star::serve {

/// Queue-depth / SLO-budget admission gate.
///
/// The estimator is Little's law run backwards: the server's drain rate is
/// tracked as an EWMA of the interval between request completions, so a
/// newly arriving request behind `inflight` others can expect to wait about
/// `inflight × inter_completion`.  When that estimate exceeds the SLO
/// budget the request is shed *at the door* — an open-loop arrival process
/// has no self-throttling, so without this gate the queue (and p99) grows
/// without bound the moment offered load crosses capacity.  Shedding early
/// converts overload into a bounded-p99 + explicit-shed-rate regime, which
/// is the degradation mode a front end wants (and what the kShed frame
/// reports back to clients, 429-style).
///
/// Admit() runs on the server's io thread; OnComplete() on whichever engine
/// thread finishes the request — everything is relaxed atomics, no locks.
/// Bursty completion is expected (group commit releases a whole epoch at
/// once): the EWMA spans bursts and gaps alike, which is exactly the
/// average drain rate the estimate needs.
class AdmissionController {
 public:
  struct Options {
    /// The tail budget: shed when the estimated queue wait exceeds this.
    /// Must comfortably exceed the group-commit floor (one iteration_ms),
    /// which every write pays regardless of load.
    uint64_t slo_budget_ns = 50ull * 1000 * 1000;
    /// Hard ceiling on admitted-but-uncompleted requests; a backstop for
    /// the estimator, not the primary gate.
    size_t max_inflight = 4096;
    /// Always admit below this depth: bootstraps the drain-rate estimate
    /// from idle and keeps a trickle flowing to refresh a stale one.
    size_t bootstrap_inflight = 8;
    /// EWMA weight as a right-shift (4 → alpha = 1/16).
    unsigned ewma_shift = 4;
  };

  explicit AdmissionController(Options opts) : opts_(opts) {}

  /// Gate one request.  On admit, the caller owes exactly one OnComplete()
  /// or OnCancel().  On shed, `est_wait_ns` (if non-null) receives the
  /// estimate that tripped the gate.
  bool Admit(uint64_t now_ns, uint64_t* est_wait_ns) {
    (void)now_ns;
    size_t inflight = inflight_.load(std::memory_order_relaxed);
    if (inflight >= opts_.max_inflight) {
      if (est_wait_ns != nullptr) *est_wait_ns = EstimateWait(inflight);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (inflight >= opts_.bootstrap_inflight) {
      uint64_t est = EstimateWait(inflight);
      if (est > opts_.slo_budget_ns) {
        if (est_wait_ns != nullptr) *est_wait_ns = est;
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// A previously admitted request finished (any outcome the client saw).
  void OnComplete(uint64_t now_ns) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    uint64_t last = last_complete_ns_.exchange(now_ns,
                                               std::memory_order_relaxed);
    if (last == 0 || now_ns <= last) return;
    uint64_t sample = now_ns - last;
    uint64_t cur = inter_complete_ns_.load(std::memory_order_relaxed);
    uint64_t next =
        cur == 0 ? sample
                 : cur - (cur >> opts_.ewma_shift) +
                       (sample >> opts_.ewma_shift);
    inter_complete_ns_.store(next, std::memory_order_relaxed);
  }

  /// A previously admitted request never reached the engine (submit
  /// bounced); undo the inflight charge without polluting the drain rate.
  void OnCancel() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  uint64_t EstimateWait(size_t inflight) const {
    return static_cast<uint64_t>(inflight) *
           inter_complete_ns_.load(std::memory_order_relaxed);
  }

  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t inter_complete_ns() const {
    return inter_complete_ns_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  /// Io-thread written (Admit) vs engine-thread written (OnComplete)
  /// atomics live on separate cache lines.
  struct alignas(64) {
    std::atomic<size_t> v{0};
  } inflight_pad_;
  std::atomic<size_t>& inflight_ = inflight_pad_.v;
  struct alignas(64) {
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed{0};
  } gate_;
  std::atomic<uint64_t>& admitted_ = gate_.admitted;
  std::atomic<uint64_t>& shed_ = gate_.shed;
  struct alignas(64) {
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> last_complete_ns{0};
    std::atomic<uint64_t> inter_complete_ns{0};
  } drain_;
  std::atomic<uint64_t>& completed_ = drain_.completed;
  std::atomic<uint64_t>& last_complete_ns_ = drain_.last_complete_ns;
  std::atomic<uint64_t>& inter_complete_ns_ = drain_.inter_complete_ns;
};

}  // namespace star::serve

#endif  // STAR_SERVE_ADMISSION_H_
