#ifndef STAR_SERVE_PROTOCOL_H_
#define STAR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <cstring>

namespace star::serve {

/// Client-facing wire protocol: length-prefixed frames in the style of the
/// cluster transport (net/tcp_transport.h), but versioned and hardened
/// separately — clients are untrusted, so every field is bounds-checked and
/// a malformed frame closes the connection instead of asserting.
///
/// Frame = fixed 32-byte header + body of header.body_len bytes.  All
/// integers are host-order (client and server share the machine or the
/// architecture, same as the cluster protocol).  The body of a kCall is
/// decoded zero-copy out of a payload-pool buffer; responses are batched
/// per connection by the server's io thread.

constexpr uint32_t kMagic = 0x31565253;  // "SRV1"
constexpr size_t kHeaderSize = 32;
/// Requests and responses are tiny; anything bigger is a protocol error
/// (and closes the connection) rather than an allocation request.
constexpr uint32_t kMaxBody = 1u << 20;

enum class FrameType : uint16_t {
  kHello = 1,     // open a session; server replies kHelloAck (session in hdr)
  kHelloAck = 2,
  kCall = 3,      // invoke a stored procedure; body = CallBody
  kResult = 4,    // outcome of a kCall; body = ResultBody
  kShed = 5,      // admission control rejected the call (the 429 analogue);
                  // body = ShedBody
  kGoodbye = 6,   // close the session (fire-and-forget)
};

/// ResultBody::status values.
enum class Status : uint8_t {
  kOk = 0,
  kAbortConflict = 1,  // CC abort after server-side retries; retryable
  kAbortUser = 2,      // application abort (e.g. TPC-C invalid item id)
  kRetry = 3,          // transient server condition (pause/shutdown)
  kBadRequest = 4,     // unknown procedure id or malformed body
};

struct FrameHeader {
  uint32_t magic = kMagic;
  uint32_t body_len = 0;
  uint16_t type = 0;       // FrameType
  uint16_t flags = 0;
  uint32_t proc = 0;       // kCall: procedure id, echoed on the response
  uint64_t session = 0;    // 0 until kHelloAck assigns one
  uint64_t request_id = 0; // client-chosen, echoed verbatim
};
static_assert(sizeof(uint32_t) * 2 + sizeof(uint16_t) * 2 + sizeof(uint32_t) +
                      sizeof(uint64_t) * 2 ==
                  kHeaderSize,
              "header layout drifted");

inline void EncodeHeader(char* out, const FrameHeader& h) {
  std::memcpy(out, &h.magic, 4);
  std::memcpy(out + 4, &h.body_len, 4);
  std::memcpy(out + 8, &h.type, 2);
  std::memcpy(out + 10, &h.flags, 2);
  std::memcpy(out + 12, &h.proc, 4);
  std::memcpy(out + 16, &h.session, 8);
  std::memcpy(out + 24, &h.request_id, 8);
}

/// Returns false on a bad magic or an oversized body — the caller must
/// treat either as a protocol error and drop the connection.
inline bool DecodeHeader(const char* in, FrameHeader* h) {
  std::memcpy(&h->magic, in, 4);
  std::memcpy(&h->body_len, in + 4, 4);
  std::memcpy(&h->type, in + 8, 2);
  std::memcpy(&h->flags, in + 10, 2);
  std::memcpy(&h->proc, in + 12, 4);
  std::memcpy(&h->session, in + 16, 8);
  std::memcpy(&h->request_id, in + 24, 8);
  return h->magic == kMagic && h->body_len <= kMaxBody;
}

/// kCall body: the procedure's deterministic argument seed.  The registry
/// regenerates the full argument surface (keys, item counts, amounts) from
/// (seed, partition) with the workload's own generator, so the wire stays a
/// fixed 13 bytes while exercising every proc the engine knows.
constexpr uint8_t kCallWaitDurable = 1;  // per-request commit_wait=durable

struct CallBody {
  uint32_t partition = 0;
  uint64_t seed = 0;
  uint8_t flags = 0;  // kCallWaitDurable
};
constexpr size_t kCallBodySize = 13;

inline void EncodeCall(char* out, const CallBody& c) {
  std::memcpy(out, &c.partition, 4);
  std::memcpy(out + 4, &c.seed, 8);
  std::memcpy(out + 12, &c.flags, 1);
}

inline bool DecodeCall(const char* in, size_t len, CallBody* c) {
  if (len < kCallBodySize) return false;
  std::memcpy(&c->partition, in, 4);
  std::memcpy(&c->seed, in + 4, 8);
  std::memcpy(&c->flags, in + 12, 1);
  return true;
}

/// kResult body: outcome + the commit epoch (clients feed the epoch back as
/// their session's read-your-writes floor; 0 for aborts and reads served
/// from snapshots before any commit).
struct ResultBody {
  uint8_t status = 0;  // Status
  uint64_t epoch = 0;
};
constexpr size_t kResultBodySize = 9;

inline void EncodeResult(char* out, const ResultBody& r) {
  std::memcpy(out, &r.status, 1);
  std::memcpy(out + 1, &r.epoch, 8);
}

inline bool DecodeResult(const char* in, size_t len, ResultBody* r) {
  if (len < kResultBodySize) return false;
  std::memcpy(&r->status, in, 1);
  std::memcpy(&r->epoch, in + 1, 8);
  return true;
}

/// kShed body: the queue-wait estimate that tripped the gate, so clients
/// can back off proportionally instead of hammering a saturated server.
struct ShedBody {
  uint64_t est_wait_ns = 0;
};
constexpr size_t kShedBodySize = 8;

inline void EncodeShed(char* out, const ShedBody& s) {
  std::memcpy(out, &s.est_wait_ns, 8);
}

inline bool DecodeShed(const char* in, size_t len, ShedBody* s) {
  if (len < kShedBodySize) return false;
  std::memcpy(&s->est_wait_ns, in, 8);
  return true;
}

}  // namespace star::serve

#endif  // STAR_SERVE_PROTOCOL_H_
