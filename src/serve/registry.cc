#include "serve/registry.h"

#include <algorithm>

#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star::serve {

void ProcRegistry::Register(Proc p) { procs_.push_back(std::move(p)); }

const ProcRegistry::Proc* ProcRegistry::Find(uint32_t id) const {
  for (const Proc& p : procs_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

bool ProcRegistry::Make(uint32_t id, uint64_t seed, int partition,
                        int num_partitions, TxnRequest* out) const {
  const Proc* p = Find(id);
  if (p == nullptr || num_partitions <= 0) return false;
  partition = std::clamp(partition, 0, num_partitions - 1);
  Rng rng(seed);
  *out = p->make(rng, partition, num_partitions);
  if (out->proc == nullptr) return false;
  // The entry's routing flags are the contract, not whatever the maker set:
  // a request routed to the replica readers must really be read-only.
  out->read_only = p->read_only;
  out->cross_partition = p->cross_partition;
  out->home_partition = partition;
  return true;
}

ProcRegistry ProcRegistry::ForWorkload(const Workload& w) {
  ProcRegistry r;
  r.Register({kSingle, "single", /*read_only=*/false, /*cross=*/false,
              [&w](Rng& rng, int p, int n) {
                return w.MakeSinglePartition(rng, p, n);
              }});
  r.Register({kCross, "cross", /*read_only=*/false, /*cross=*/true,
              [&w](Rng& rng, int p, int n) {
                return w.MakeCrossPartition(rng, p, n);
              }});
  r.Register({kReadOnly, "read_only", /*read_only=*/true, /*cross=*/false,
              [&w](Rng& rng, int p, int n) {
                return w.MakeReadOnly(rng, p, n);
              }});
  return r;
}

ProcRegistry ProcRegistry::ForTpcc(const TpccWorkload& w) {
  ProcRegistry r = ForWorkload(w);
  r.Register({kTpccNewOrder, "new_order", /*read_only=*/false,
              /*cross=*/false, [&w](Rng& rng, int p, int n) {
                return w.MakeNewOrder(rng, p, n, /*cross=*/false);
              }});
  r.Register({kTpccPayment, "payment", /*read_only=*/false, /*cross=*/false,
              [&w](Rng& rng, int p, int n) {
                return w.MakePayment(rng, p, n, /*cross=*/false);
              }});
  r.Register({kTpccOrderStatus, "order_status", /*read_only=*/true,
              /*cross=*/false, [&w](Rng& rng, int p, int n) {
                (void)n;
                return w.MakeOrderStatus(rng, p);
              }});
  r.Register({kTpccDelivery, "delivery", /*read_only=*/false,
              /*cross=*/false, [&w](Rng& rng, int p, int n) {
                (void)n;
                return w.MakeDelivery(rng, p);
              }});
  r.Register({kTpccStockLevel, "stock_level", /*read_only=*/true,
              /*cross=*/false, [&w](Rng& rng, int p, int n) {
                (void)n;
                return w.MakeStockLevel(rng, p);
              }});
  return r;
}

}  // namespace star::serve
