#ifndef STAR_SERVE_REGISTRY_H_
#define STAR_SERVE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cc/txn.h"
#include "cc/workload.h"
#include "common/rng.h"

namespace star {
class TpccWorkload;
class YcsbWorkload;
}  // namespace star

namespace star::serve {

/// A registry of named stored procedures over the function-shaped workload
/// procs (the YDB grpc_services→executer layering, scaled to this repo: the
/// wire names a procedure, the registry turns it into a TxnRequest, the
/// engine's queues execute it on whichever phase owns it).
///
/// Invocation model: a kCall carries (proc id, partition, seed).  The maker
/// regenerates the procedure's full argument surface deterministically from
/// an Rng seeded with the client's seed — TPC-C item lists, amounts and
/// customer selections, YCSB key sets — so the wire format stays a fixed
/// 13 bytes while the server executes exactly the transactions the paper's
/// workloads define.  `read_only` / `cross_partition` on the entry are the
/// routing contract: the registry stamps them onto the produced request so
/// a client cannot smuggle a write into the replica-reader path.
class ProcRegistry {
 public:
  struct Proc {
    uint32_t id = 0;
    std::string name;
    bool read_only = false;
    bool cross_partition = false;
    std::function<TxnRequest(Rng&, int partition, int num_partitions)> make;
  };

  void Register(Proc p);
  /// nullptr for unknown ids (the server answers Status::kBadRequest).
  const Proc* Find(uint32_t id) const;
  const std::vector<Proc>& procs() const { return procs_; }

  /// Builds the request for `id` or returns false.  Stamps the entry's
  /// routing flags and clamps the partition into range.
  bool Make(uint32_t id, uint64_t seed, int partition, int num_partitions,
            TxnRequest* out) const;

  // --- standard registries ---

  /// Workload-generic procs (any Workload): kSingle / kCross / kReadOnly
  /// dispatch to the workload's Make{SinglePartition,CrossPartition,
  /// ReadOnly}.  `w` must outlive the registry.
  static constexpr uint32_t kSingle = 1;
  static constexpr uint32_t kCross = 2;
  static constexpr uint32_t kReadOnly = 3;
  static ProcRegistry ForWorkload(const Workload& w);

  /// TPC-C named procedures on top of the generic three.
  static constexpr uint32_t kTpccNewOrder = 10;
  static constexpr uint32_t kTpccPayment = 11;
  static constexpr uint32_t kTpccOrderStatus = 12;
  static constexpr uint32_t kTpccDelivery = 13;
  static constexpr uint32_t kTpccStockLevel = 14;
  static ProcRegistry ForTpcc(const TpccWorkload& w);

 private:
  std::vector<Proc> procs_;
};

}  // namespace star::serve

#endif  // STAR_SERVE_REGISTRY_H_
