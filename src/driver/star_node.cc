// star_node — multi-process STAR deployment driver.
//
// Three modes:
//
//   # Launch a whole cluster (coordinator + f+k node processes) on
//   # localhost TCP, run TPC-C for 6 seconds, verify convergence:
//   star_node --launch --seconds=6
//
//   # Same, but SIGKILL node 2 mid-run and fork a fresh rejoin process:
//   star_node --launch --seconds=10 --kill-node=2 --kill-after=2.5 \
//             --rejoin-after=4.5
//
//   # Run one role by hand (every process must use identical cluster
//   # flags; ports are base..base+nodes, coordinator last):
//   star_node --role=coordinator --base-port=19000 --seconds=6
//   star_node --role=node --id=0 --base-port=19000 &
//   ...
//   star_node --role=node --id=2 --base-port=19000 --rejoin   # re-admission
//
// Exit code 0 means: >0 committed transactions including >0 cross-partition
// ones, every reporting replica of every partition carried an identical
// checksum, and every surviving node process saw a clean shutdown round.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "driver/cluster_driver.h"

namespace {

bool FlagValue(const char* arg, const char* name, const char** out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: star_node (--launch | --role=coordinator | --role=node --id=K)\n"
      "  cluster shape (must match across all processes of one cluster):\n"
      "    --full=N --partial=N --workers=N --cross=F --workload=tpcc|ycsb\n"
      "    --replay-shards=N  (parallel replication replay workers per node)\n"
      "    --host=ADDR --base-port=P --fence-timeout-ms=MS --seconds=S\n"
      "  gray-failure hardening (see StarOptions in core/options.h):\n"
      "    --fence-miss-threshold=N   (consecutive missed fences before a\n"
      "                                node is written off; 1 = fail-stop)\n"
      "    --phase-ack-wait-ms=MS     (phase-start ack wait, was fixed 500)\n"
      "    --coord-rpc-retries=N --coord-backoff-min-ms=MS\n"
      "    --coord-backoff-max-ms=MS  (control-RPC resend budget/backoff)\n"
      "    --rejoin-timeout-ms=MS     (rejoin budget, was fixed 15000)\n"
      "    --rejoin-backoff-min-ms=MS --rejoin-backoff-max-ms=MS\n"
      "    --coordinator-silence-ms=MS (node self-parks after this much\n"
      "                                coordinator silence; 0 auto, <0 off)\n"
      "  durability (must also match across processes):\n"
      "    --durable          (per-node logger pool, durable epochs)\n"
      "    --fsync            (fsync each logger batch)\n"
      "    --checkpoint       (incremental checkpoints off logger thread 0)\n"
      "    --checkpoint-ms=MS --log-dir=PATH --log-workers=N\n"
      "    --commit-wait=none|durable\n"
      "  launch mode only:\n"
      "    --kill-node=K --kill-after=S --rejoin-after=S --quiet\n"
      "  node mode only:\n"
      "    --rejoin   (announce to the coordinator and refetch partitions;\n"
      "                with --durable, recovers locally first and fetches\n"
      "                only the delta)\n");
}

}  // namespace

int main(int argc, char** argv) {
  star::driver::ClusterRunSpec spec;
  spec.base.cluster.full_replicas = 1;
  spec.base.cluster.partial_replicas = 3;
  spec.base.cluster.workers_per_node = 2;
  spec.base.cross_fraction = 0.1;
  spec.base.two_version = true;  // failure injection needs epoch revert
  // Snappier than the in-process default: over real sockets a dead peer is
  // detected by fence silence, and kill/rejoin tests need detection well
  // inside the run window.
  spec.base.fence_timeout_ms = 1500;
  spec.seconds = 6.0;

  std::string mode;
  int node_id = -1;
  bool rejoin = false;
  const char* v = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--launch") == 0) {
      mode = "launch";
    } else if (FlagValue(a, "--role", &v)) {
      mode = v;
    } else if (FlagValue(a, "--id", &v)) {
      node_id = std::atoi(v);
    } else if (std::strcmp(a, "--rejoin") == 0) {
      rejoin = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      spec.verbose = false;
    } else if (FlagValue(a, "--full", &v)) {
      spec.base.cluster.full_replicas = std::atoi(v);
    } else if (FlagValue(a, "--partial", &v)) {
      spec.base.cluster.partial_replicas = std::atoi(v);
    } else if (FlagValue(a, "--workers", &v)) {
      spec.base.cluster.workers_per_node = std::atoi(v);
    } else if (FlagValue(a, "--replay-shards", &v)) {
      spec.base.cluster.replay_shards = std::atoi(v);
    } else if (FlagValue(a, "--cross", &v)) {
      spec.base.cross_fraction = std::atof(v);
    } else if (FlagValue(a, "--workload", &v)) {
      spec.workload = v;
    } else if (FlagValue(a, "--host", &v)) {
      spec.base.tcp_host = v;
    } else if (FlagValue(a, "--base-port", &v)) {
      spec.base.tcp_base_port = std::atoi(v);
    } else if (std::strcmp(a, "--durable") == 0) {
      spec.base.durable_logging = true;
    } else if (std::strcmp(a, "--fsync") == 0) {
      spec.base.fsync = true;
    } else if (std::strcmp(a, "--checkpoint") == 0) {
      spec.base.checkpointing = true;
    } else if (FlagValue(a, "--checkpoint-ms", &v)) {
      spec.base.checkpoint_period_ms = std::atof(v);
    } else if (FlagValue(a, "--log-dir", &v)) {
      spec.base.log_dir = v;
    } else if (FlagValue(a, "--log-workers", &v)) {
      spec.base.log_workers = std::atoi(v);
    } else if (FlagValue(a, "--commit-wait", &v)) {
      if (std::strcmp(v, "durable") == 0) {
        spec.base.commit_wait = star::CommitWait::kDurable;
      } else if (std::strcmp(v, "none") == 0) {
        spec.base.commit_wait = star::CommitWait::kNone;
      } else {
        std::fprintf(stderr, "--commit-wait must be none|durable\n");
        return 64;
      }
    } else if (FlagValue(a, "--fence-timeout-ms", &v)) {
      spec.base.fence_timeout_ms = std::atof(v);
    } else if (FlagValue(a, "--fence-miss-threshold", &v)) {
      spec.base.fence_miss_threshold = std::atoi(v);
    } else if (FlagValue(a, "--phase-ack-wait-ms", &v)) {
      spec.base.phase_ack_wait_ms = std::atof(v);
    } else if (FlagValue(a, "--coord-rpc-retries", &v)) {
      spec.base.coord_rpc_retries = std::atoi(v);
    } else if (FlagValue(a, "--coord-backoff-min-ms", &v)) {
      spec.base.coord_backoff_min_ms = std::atof(v);
    } else if (FlagValue(a, "--coord-backoff-max-ms", &v)) {
      spec.base.coord_backoff_max_ms = std::atof(v);
    } else if (FlagValue(a, "--rejoin-timeout-ms", &v)) {
      spec.base.rejoin_timeout_ms = std::atof(v);
    } else if (FlagValue(a, "--rejoin-backoff-min-ms", &v)) {
      spec.base.rejoin_backoff_min_ms = std::atof(v);
    } else if (FlagValue(a, "--rejoin-backoff-max-ms", &v)) {
      spec.base.rejoin_backoff_max_ms = std::atof(v);
    } else if (FlagValue(a, "--coordinator-silence-ms", &v)) {
      spec.base.coordinator_silence_ms = std::atof(v);
    } else if (FlagValue(a, "--seconds", &v)) {
      spec.seconds = std::atof(v);
    } else if (FlagValue(a, "--kill-node", &v)) {
      spec.kill_node = std::atoi(v);
    } else if (FlagValue(a, "--kill-after", &v)) {
      spec.kill_after_s = std::atof(v);
    } else if (FlagValue(a, "--rejoin-after", &v)) {
      spec.rejoin_after_s = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      Usage();
      return 64;
    }
  }

  if (mode == "launch") {
    return star::driver::LaunchCluster(spec);
  }
  if (mode == "coordinator" || mode == "node") {
    if (spec.base.tcp_base_port == 0) {
      std::fprintf(stderr,
                   "--base-port is required for single-role modes (all "
                   "processes must agree on the port map)\n");
      return 64;
    }
    if (mode == "coordinator") {
      return star::driver::RunCoordinatorProcess(spec.base, spec.workload,
                                                 spec.seconds, spec.verbose);
    }
    if (node_id < 0 || node_id >= spec.base.cluster.nodes()) {
      std::fprintf(stderr, "--role=node requires --id in [0, %d)\n",
                   spec.base.cluster.nodes());
      return 64;
    }
    return star::driver::RunNodeProcess(spec.base, spec.workload, node_id,
                                        rejoin, spec.seconds);
  }
  Usage();
  return 64;
}
