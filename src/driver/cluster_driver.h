#ifndef STAR_DRIVER_CLUSTER_DRIVER_H_
#define STAR_DRIVER_CLUSTER_DRIVER_H_

// Multi-process STAR deployment driver: one coordinator process plus one
// process per node, all over localhost TCP.  Used by the star_node binary
// (and examples/tpcc_cluster --multiprocess) and by the CI smoke test.
//
// Process model: the launcher fork()s each role BEFORE any engine threads
// exist, so children start from a clean single-threaded image and every
// process constructs the engine from an identical StarOptions + workload
// spec (determinism is what lets each process compute the same placement
// and populate the same initial data).  Failure injection is a real
// SIGKILL; rejoin forks a genuinely fresh process that re-admits itself via
// kRejoinRequest and re-fetches its partitions over snapshot RPCs.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star::driver {

struct ClusterRunSpec {
  StarOptions base;            // cluster shape; transport forced to kTcp
  std::string workload = "tpcc";  // "tpcc" | "ycsb"
  double seconds = 5.0;        // coordinator measurement window
  int kill_node = -1;          // SIGKILL this node process ...
  double kill_after_s = 0;     // ... this long after launch (0 = never)
  double rejoin_after_s = 0;   // fork a fresh rejoin process at this time
  bool verbose = true;
};

/// Constructs the workload every process agrees on.  Scaled-down TPC-C /
/// YCSB shapes so population stays in the hundreds of milliseconds.
inline std::unique_ptr<Workload> MakeClusterWorkload(
    const std::string& name) {
  if (name == "ycsb") {
    YcsbOptions o;
    o.rows_per_partition = 5'000;
    return std::make_unique<YcsbWorkload>(o);
  }
  TpccOptions o;
  o.customers_per_district = 100;
  o.items = 1000;
  return std::make_unique<TpccWorkload>(o);
}

/// Picks a base port with `count` consecutive free TCP ports on localhost
/// (bind-probe, then release; the tiny TOCTOU window is acceptable for a
/// test driver).
inline int PickFreeBasePort(int count) {
  unsigned seed = static_cast<unsigned>(getpid()) * 2654435761u;
  for (int attempt = 0; attempt < 64; ++attempt) {
    seed = seed * 1664525u + 1013904223u;
    int base = 18000 + static_cast<int>(seed % 30000);
    std::vector<int> fds;
    bool ok = true;
    for (int i = 0; i < count && ok; ++i) {
      int fd = socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in a{};
      a.sin_family = AF_INET;
      a.sin_port = htons(static_cast<uint16_t>(base + i));
      a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (fd < 0 || bind(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)) != 0) {
        ok = false;
      }
      if (fd >= 0) fds.push_back(fd);
    }
    for (int fd : fds) close(fd);
    if (ok) return base;
  }
  return 28500;  // last resort; Start() reports a bind failure if taken
}

inline StarOptions ForRole(const StarOptions& base, bool coordinator,
                           int node_id, bool rejoining) {
  StarOptions o = base;
  o.transport = net::TransportKind::kTcp;
  o.multiprocess = true;
  o.hosted_coordinator = coordinator;
  o.hosted_nodes.clear();
  if (!coordinator) o.hosted_nodes.push_back(node_id);
  o.rejoining = rejoining;
  // A rejoining node with local logs recovers from its checkpoint chain +
  // log tail first; the coordinator-driven refetch then streams only the
  // delta (records with epochs past what recovery rebuilt).
  if (rejoining && o.durable_logging) o.recover_on_start = true;
  return o;
}

/// Body of a node process: run until the coordinator's shutdown round (or a
/// generous timeout, e.g. when the coordinator itself died).
inline int RunNodeProcess(const StarOptions& base, const std::string& workload,
                          int id, bool rejoining, double seconds) {
  auto wl = MakeClusterWorkload(workload);
  StarEngine engine(ForRole(base, /*coordinator=*/false, id, rejoining), *wl);
  engine.Start();
  // The rejoin budget honours the configured knob but never shrinks below
  // the run window + slack: in this harness an admission can only arrive
  // while the coordinator process is still driving phases.
  if (rejoining &&
      !engine.RequestRejoinFromCoordinator(std::max(
          base.rejoin_timeout_ms, seconds * 1000.0 + 30'000.0))) {
    std::fprintf(stderr, "[node %d] rejoin request never acknowledged\n", id);
    engine.Stop();
    return 3;
  }
  bool served = engine.WaitForShutdown(seconds * 1000.0 + 60'000.0);
  Metrics m = engine.Stop();
  std::fprintf(stderr, "[node %d] committed=%llu cross=%llu %s\n", id,
               static_cast<unsigned long long>(m.committed),
               static_cast<unsigned long long>(m.cross_partition),
               served ? "clean shutdown" : "TIMEOUT waiting for shutdown");
  if (rejoining) {
    // O(delta) rejoin check: with a recovered base the refetch must stream
    // far less than the full tables.  STAR_REJOIN_MAX_BYTES (set by the
    // delta-rejoin ctest) turns the printed number into a hard gate.
    std::fprintf(stderr, "[node %d] rejoin_fetch_bytes=%llu\n", id,
                 static_cast<unsigned long long>(m.rejoin_fetch_bytes));
    const char* cap = std::getenv("STAR_REJOIN_MAX_BYTES");
    if (cap != nullptr && m.rejoin_fetch_bytes >
                              std::strtoull(cap, nullptr, 10)) {
      std::fprintf(stderr,
                   "[node %d] rejoin fetch exceeded cap %s — delta path "
                   "regressed to a full-table stream\n",
                   id, cap);
      return 4;
    }
  }
  return served ? 0 : 2;
}

/// Body of the coordinator process: drive phases for `seconds`, then stop —
/// which runs the final fence + shutdown round — and judge the run.
inline int RunCoordinatorProcess(const StarOptions& base,
                                 const std::string& workload, double seconds,
                                 bool verbose) {
  auto wl = MakeClusterWorkload(workload);
  StarEngine engine(ForRole(base, /*coordinator=*/true, -1, false), *wl);
  engine.Start();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  engine.Stop();
  const StarEngine::ClusterSummary& s = engine.cluster_summary();
  if (verbose) {
    std::printf(
        "[coordinator] nodes_reporting=%d committed=%llu cross=%llu "
        "converged=%s epoch=%llu\n",
        s.nodes_reporting, static_cast<unsigned long long>(s.committed),
        static_cast<unsigned long long>(s.cross_partition),
        s.converged ? "yes" : "NO",
        static_cast<unsigned long long>(engine.epoch()));
    std::fflush(stdout);
  }
  bool ok = s.valid && s.nodes_reporting > 0 && s.committed > 0 &&
            s.cross_partition > 0 && s.converged;
  return ok ? 0 : 1;
}

/// Forks the whole cluster, optionally kills + rejoins a node, and reaps
/// every child.  Returns 0 iff the coordinator judged the run healthy and
/// every surviving node shut down cleanly.
inline int LaunchCluster(ClusterRunSpec spec) {
  spec.base.transport = net::TransportKind::kTcp;
  int n = spec.base.cluster.nodes();
  if (spec.base.durable_logging) {
    // Fresh log directory per launch: a rejoin recovery must never read
    // WAL incarnations or checkpoint chains left by a previous run (the
    // forked children inherit the amended path).
    spec.base.log_dir += "/run_" + std::to_string(getpid());
  }
  if (spec.base.tcp_base_port == 0) {
    spec.base.tcp_base_port = PickFreeBasePort(n + 1);
  }
  if (spec.verbose) {
    std::printf(
        "[launch] %d node processes + coordinator on %s ports %d..%d "
        "(workload=%s, %.1fs)\n",
        n, spec.base.tcp_host.c_str(), spec.base.tcp_base_port,
        spec.base.tcp_base_port + n, spec.workload.c_str(), spec.seconds);
    std::fflush(stdout);
  }
  std::fflush(stderr);

  pid_t coord = fork();
  if (coord == 0) {
    _exit(RunCoordinatorProcess(spec.base, spec.workload, spec.seconds,
                                spec.verbose));
  }
  std::vector<pid_t> pids(n, -1);
  for (int i = 0; i < n; ++i) {
    pid_t p = fork();
    if (p == 0) {
      _exit(RunNodeProcess(spec.base, spec.workload, i, /*rejoining=*/false,
                           spec.seconds));
    }
    pids[i] = p;
  }

  bool killed = false;
  if (spec.kill_node >= 0 && spec.kill_node < n && spec.kill_after_s > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(spec.kill_after_s * 1000)));
    if (spec.verbose) {
      std::printf("[launch] SIGKILL node %d (pid %d)\n", spec.kill_node,
                  static_cast<int>(pids[spec.kill_node]));
      std::fflush(stdout);
    }
    kill(pids[spec.kill_node], SIGKILL);
    waitpid(pids[spec.kill_node], nullptr, 0);
    pids[spec.kill_node] = -1;
    killed = true;

    if (spec.rejoin_after_s > spec.kill_after_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int64_t>((spec.rejoin_after_s - spec.kill_after_s) *
                               1000)));
      if (spec.verbose) {
        std::printf("[launch] forking rejoin process for node %d\n",
                    spec.kill_node);
        std::fflush(stdout);
      }
      pid_t p = fork();
      if (p == 0) {
        _exit(RunNodeProcess(spec.base, spec.workload, spec.kill_node,
                             /*rejoining=*/true, spec.seconds));
      }
      pids[spec.kill_node] = p;
    }
  }

  int rc = 0;
  int status = 0;
  waitpid(coord, &status, 0);
  int coord_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 100;
  if (coord_rc != 0) rc = coord_rc;
  for (int i = 0; i < n; ++i) {
    if (pids[i] < 0) continue;  // killed and not rejoined
    waitpid(pids[i], &status, 0);
    int node_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 100;
    if (node_rc != 0 && rc == 0) rc = 10 + node_rc;
  }
  if (spec.verbose) {
    std::printf("[launch] coordinator rc=%d overall rc=%d%s\n", coord_rc, rc,
                killed ? " (survived one killed node)" : "");
    std::fflush(stdout);
  }
  return rc;
}

}  // namespace star::driver

#endif  // STAR_DRIVER_CLUSTER_DRIVER_H_
