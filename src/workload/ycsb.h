#ifndef STAR_WORKLOAD_YCSB_H_
#define STAR_WORKLOAD_YCSB_H_

#include <cstring>
#include <memory>

#include "cc/workload.h"

namespace star {

/// YCSB as configured in Section 7.1.1: a single table with 10 columns of 10
/// random bytes, 64-bit integer keys, 200 K records per partition, and
/// transactions of 10 accesses following a uniform distribution with a 90/10
/// read / read-modify-write mix.
///
/// A cross-partition transaction draws each access's partition uniformly at
/// random ("access multiple partitions"); a single-partition transaction
/// confines every access to its home partition.
struct YcsbOptions {
  uint64_t rows_per_partition = 200'000;
  int ops_per_txn = 10;
  /// Probability that an access is a read (the rest are read-modify-writes).
  double read_ratio = 0.9;
  /// 0 = uniform (the paper's default); > 0 enables Zipfian skew.
  double zipf_theta = 0.0;
};

/// The YCSB row: 10 columns x 10 bytes.
struct YcsbRow {
  char columns[10][10];
};
static_assert(sizeof(YcsbRow) == 100);

class YcsbWorkload final : public Workload {
 public:
  explicit YcsbWorkload(const YcsbOptions& options = {}) : options_(options) {
    if (options_.zipf_theta > 0) {
      zipf_ = std::make_unique<Zipf>(options_.rows_per_partition,
                                     options_.zipf_theta);
    }
  }

  std::string name() const override { return "ycsb"; }

  std::vector<TableSchema> Schemas() const override {
    return {TableSchema{"usertable", sizeof(YcsbRow),
                        options_.rows_per_partition}};
  }

  void PopulatePartition(Database& db, int partition) const override {
    // Deterministic per partition so every replica loads identical bytes.
    Rng rng(0xC0FFEEull * (partition + 1));
    YcsbRow row;
    for (uint64_t k = 0; k < options_.rows_per_partition; ++k) {
      for (auto& col : row.columns) rng.FillString(col, sizeof(col));
      db.Load(kTable, partition, k, &row);
    }
  }

  TxnRequest MakeSinglePartition(Rng& rng, int partition,
                                 int num_partitions) const override {
    return MakeTxn(rng, partition, num_partitions, /*cross=*/false);
  }

  TxnRequest MakeCrossPartition(Rng& rng, int home_partition,
                                int num_partitions) const override {
    return MakeTxn(rng, home_partition, num_partitions, /*cross=*/true);
  }

  /// Pure-read transaction of ops_per_txn point reads confined to one
  /// partition, eligible for replica-served snapshot execution.
  TxnRequest MakeReadOnly(Rng& rng, int partition,
                          int num_partitions) const override {
    (void)num_partitions;
    TxnRequest req;
    req.home_partition = partition;
    req.read_only = true;
    req.accesses.reserve(options_.ops_per_txn);
    for (int i = 0; i < options_.ops_per_txn; ++i) {
      AccessDesc a;
      a.table = kTable;
      a.partition = partition;
      a.key = SampleKey(rng);
      req.accesses.push_back(a);
    }
    req.proc = [accesses = req.accesses](TxnContext& ctx) {
      YcsbRow row;
      for (const auto& a : accesses) {
        if (!ctx.Read(kTable, a.partition, a.key, &row)) {
          return TxnStatus::kAbortConflict;
        }
      }
      return TxnStatus::kCommitted;
    };
    return req;
  }

  static constexpr int kTable = 0;

 private:
  uint64_t SampleKey(Rng& rng) const {
    if (zipf_ != nullptr) return zipf_->Sample(rng);
    return rng.Uniform(options_.rows_per_partition);
  }

  TxnRequest MakeTxn(Rng& rng, int home, int num_partitions,
                     bool cross) const {
    TxnRequest req;
    req.cross_partition = cross;
    req.home_partition = home;
    req.accesses.reserve(options_.ops_per_txn);

    for (int i = 0; i < options_.ops_per_txn; ++i) {
      AccessDesc a;
      a.table = kTable;
      a.partition = cross ? static_cast<int>(rng.Uniform(num_partitions))
                          : home;
      a.key = SampleKey(rng);
      a.write = !rng.Flip(options_.read_ratio);
      req.accesses.push_back(a);
    }
    // Guarantee a cross-partition transaction actually leaves home.
    if (cross && num_partitions > 1) {
      bool leaves = false;
      for (const auto& a : req.accesses) leaves |= (a.partition != home);
      if (!leaves) {
        req.accesses[0].partition =
            (home + 1 + static_cast<int>(
                            rng.Uniform(num_partitions - 1))) %
            num_partitions;
      }
    }

    req.proc = [accesses = req.accesses](TxnContext& ctx) {
      YcsbRow row;
      for (const auto& a : accesses) {
        if (!ctx.Read(kTable, a.partition, a.key, &row)) {
          return TxnStatus::kAbortConflict;
        }
        if (a.write) {
          // Read-modify-write: rewrite one column (the whole record is
          // replicated — "a transaction in YCSB always updates the whole
          // record", Section 7.5).
          ctx.rng().FillString(row.columns[0], sizeof(row.columns[0]));
          ctx.Write(kTable, a.partition, a.key, &row);
        }
      }
      return TxnStatus::kCommitted;
    };
    return req;
  }

  YcsbOptions options_;
  std::unique_ptr<Zipf> zipf_;
};

}  // namespace star

#endif  // STAR_WORKLOAD_YCSB_H_
