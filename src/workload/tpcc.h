#ifndef STAR_WORKLOAD_TPCC_H_
#define STAR_WORKLOAD_TPCC_H_

#include <cstddef>
#include <cstring>

#include "cc/workload.h"

namespace star {

/// TPC-C as configured in Section 7.1.1: nine tables partitioned by
/// warehouse id, running the NewOrder + Payment mix (88% of the standard
/// mix; the remaining transactions need range scans the paper's hash-table
/// storage does not support).  One warehouse per partition.
///
/// Scale knobs default to a laptop-friendly fraction of the spec sizes; the
/// schema, access patterns, skew (NURand) and abort behaviour follow the
/// spec.  Cross-partition behaviour matches the paper: a cross-partition
/// NewOrder sources some items from remote warehouses, a cross-partition
/// Payment pays through a customer of a remote warehouse.
struct TpccOptions {
  int districts_per_warehouse = 10;
  int customers_per_district = 600;
  int items = 5000;
  /// Fraction of order lines drawn from a remote warehouse within a
  /// cross-partition NewOrder.
  double remote_item_prob = 0.5;
};

// --- row types (fixed-size, standard layout; offsets feed Operation) ---

struct WarehouseRow {
  double ytd;
  double tax;
  char name[10];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
};

struct DistrictRow {
  double ytd;
  double tax;
  int64_t next_o_id;
  char name[10];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
};

struct CustomerRow {
  double balance;
  double ytd_payment;
  double discount;
  int64_t payment_cnt;
  int64_t delivery_cnt;
  char first[16];
  char middle[2];
  char last[16];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
  char credit[2];  // "GC" or "BC"
  char data[500];  // the 500-character field Payment appends to (Section 5)
};

struct HistoryRow {
  int64_t c_id;
  int64_t c_d_id;
  int64_t c_w_id;
  int64_t d_id;
  int64_t w_id;
  double amount;
  char data[24];
};

struct NewOrderRow {
  int64_t placeholder;
};

struct OrderRow {
  int64_t c_id;
  int64_t entry_d;
  int64_t carrier_id;
  int64_t ol_cnt;
  int64_t all_local;
};

struct OrderLineRow {
  int64_t i_id;
  int64_t supply_w_id;
  int64_t quantity;
  double amount;
  int64_t delivery_d;
  char dist_info[24];
};

struct ItemRow {
  double price;
  int64_t im_id;
  char name[24];
  char data[50];
};

struct StockRow {
  int64_t quantity;
  double ytd;
  int64_t order_cnt;
  int64_t remote_cnt;
  char dist[24];
  char data[50];
};

/// Secondary index: (district, last-name id) -> representative customer id
/// ("Fields with secondary indexes can be accessed by mapping a value to the
/// relevant primary key", Section 3).  Loaded with the median matching
/// customer, per the spec's by-last-name selection.
struct CustomerNameIndexRow {
  int64_t c_id;
};

class TpccWorkload final : public Workload {
 public:
  enum Table : int {
    kWarehouse = 0,
    kDistrict = 1,
    kCustomer = 2,
    kHistory = 3,
    kNewOrder = 4,
    kOrder = 5,
    kOrderLine = 6,
    kItem = 7,
    kStock = 8,
    kCustomerNameIndex = 9,
  };

  explicit TpccWorkload(const TpccOptions& options = {}) : options_(options) {
    // The by-last-name index resolution used for a-priori access lists
    // (Calvin) relies on last-name ids mapping to themselves, which holds
    // while every district has at most 1000 customers (spec last-name rule).
    assert(options_.customers_per_district <= 1000);
  }

  std::string name() const override { return "tpcc"; }

  bool IsReadOnlyTable(int table) const override {
    return table == kItem || table == kCustomerNameIndex;
  }

  std::vector<TableSchema> Schemas() const override {
    size_t d = options_.districts_per_warehouse;
    size_t c = d * options_.customers_per_district;
    size_t i = options_.items;
    return {
        TableSchema{"warehouse", sizeof(WarehouseRow), 1},
        TableSchema{"district", sizeof(DistrictRow), d},
        TableSchema{"customer", sizeof(CustomerRow), c},
        TableSchema{"history", sizeof(HistoryRow), 4 * c},
        TableSchema{"new_order", sizeof(NewOrderRow), 4 * c},
        TableSchema{"order", sizeof(OrderRow), 4 * c},
        TableSchema{"order_line", sizeof(OrderLineRow), 8 * c},
        TableSchema{"item", sizeof(ItemRow), i},
        TableSchema{"stock", sizeof(StockRow), i},
        TableSchema{"customer_name_index", sizeof(CustomerNameIndexRow), c},
    };
  }

  // --- key packing (warehouse == partition; keys are partition-local) ---

  uint64_t DistrictKey(int d) const { return static_cast<uint64_t>(d); }
  uint64_t CustomerKey(int d, int c) const {
    return static_cast<uint64_t>(d) * options_.customers_per_district + c;
  }
  static uint64_t OrderKey(int d, int64_t o) {
    return (static_cast<uint64_t>(d) << 40) | static_cast<uint64_t>(o);
  }
  static uint64_t OrderLineKey(int d, int64_t o, int ol) {
    return (OrderKey(d, o) << 4) | static_cast<uint64_t>(ol);
  }
  static uint64_t StockKey(int item) { return static_cast<uint64_t>(item); }
  static uint64_t NameIndexKey(int d, int name_id) {
    return static_cast<uint64_t>(d) * 1000 + name_id;
  }

  void PopulatePartition(Database& db, int partition) const override;

  TxnRequest MakeSinglePartition(Rng& rng, int partition,
                                 int num_partitions) const override {
    // Standard mix: a NewOrder is followed by a Payment (Section 7.1.1).
    if (rng.Flip(0.5)) {
      return MakeNewOrder(rng, partition, num_partitions, /*cross=*/false);
    }
    return MakePayment(rng, partition, num_partitions, /*cross=*/false);
  }

  TxnRequest MakeCrossPartition(Rng& rng, int home,
                                int num_partitions) const override {
    if (rng.Flip(0.5)) {
      return MakeNewOrder(rng, home, num_partitions, /*cross=*/true);
    }
    return MakePayment(rng, home, num_partitions, /*cross=*/true);
  }

  TxnRequest MakeNewOrder(Rng& rng, int w, int num_partitions,
                          bool cross) const;
  TxnRequest MakePayment(Rng& rng, int w, int num_partitions,
                         bool cross) const;

  const TpccOptions& options() const { return options_; }

  /// Spec last-name generator: three syllables indexed by a 0..999 id.
  static void LastName(int id, char out[16]) {
    static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI",
                                       "PRES", "ESE",   "ANTI", "CALLY",
                                       "ATION", "EYING"};
    std::memset(out, 0, 16);
    std::string s = std::string(kSyllables[id / 100]) +
                    kSyllables[(id / 10) % 10] + kSyllables[id % 10];
    std::memcpy(out, s.data(), std::min<size_t>(s.size(), 15));
  }

 private:
  TpccOptions options_;
};

}  // namespace star

#endif  // STAR_WORKLOAD_TPCC_H_
