#ifndef STAR_WORKLOAD_TPCC_H_
#define STAR_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstddef>
#include <cstring>

#include "cc/workload.h"

namespace star {

/// TPC-C as configured in Section 7.1.1: nine tables partitioned by
/// warehouse id, one warehouse per partition.
///
/// Two mixes are supported:
///  * The paper's NewOrder + Payment subset (default), which is what STAR's
///    evaluation runs.
///  * The full five-transaction standard mix (`full_mix`): NewOrder 45%,
///    Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%.  The three
///    additional transactions need range scans, which the storage layer
///    provides through per-partition ordered indexes (OrderedIndex) over the
///    order-structured tables: NEW-ORDER and ORDER-LINE are scanned by their
///    order-preserving primary-key packings, and a dedicated
///    (district, customer, order) index table serves Order-Status's
///    latest-order-of-customer lookup.  Index maintenance is ordinary
///    inserts through the write set, so replication, WAL logging and
///    recovery keep replica indexes convergent with no extra machinery.
///
/// Scale knobs default to a laptop-friendly fraction of the spec sizes; the
/// schema, access patterns, skew (NURand) and abort behaviour follow the
/// spec.  Cross-partition behaviour matches the paper: a cross-partition
/// NewOrder sources some items from remote warehouses, a cross-partition
/// Payment pays through a customer of a remote warehouse.  Remaining
/// deviations from the spec are documented in README.md (scaled table
/// cardinalities, think-time-free open loop, and Delivery executed inline
/// rather than deferred/queued).
struct TpccOptions {
  int districts_per_warehouse = 10;
  int customers_per_district = 600;
  int items = 5000;
  /// Fraction of order lines drawn from a remote warehouse within a
  /// cross-partition NewOrder.
  double remote_item_prob = 0.5;
  /// Run the full five-transaction standard mix instead of the paper's
  /// NewOrder + Payment subset.  Requires a scan-capable execution context
  /// (STAR's two phases, PB. OCC, Dist. OCC); on contexts without scan
  /// support (Dist. S2PL lacks range locks, Calvin a-priori scan sets) the
  /// scan transactions abort as user aborts and are dropped, leaving the
  /// NewOrder/Payment share running.
  bool full_mix = false;
  /// Fraction of each district's initial orders loaded undelivered (with
  /// NEW-ORDER rows), so Delivery has work from the start.  The spec loads
  /// 900 of 3000 = 30%.
  double initial_undelivered = 0.3;
};

// --- row types (fixed-size, standard layout; offsets feed Operation) ---

struct WarehouseRow {
  double ytd;
  double tax;
  char name[10];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
};

struct DistrictRow {
  double ytd;
  double tax;
  int64_t next_o_id;
  char name[10];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
};

struct CustomerRow {
  double balance;
  double ytd_payment;
  double discount;
  int64_t payment_cnt;
  int64_t delivery_cnt;
  char first[16];
  char middle[2];
  char last[16];
  char street[20];
  char city[20];
  char state[2];
  char zip[9];
  char credit[2];  // "GC" or "BC"
  char data[500];  // the 500-character field Payment appends to (Section 5)
};

struct HistoryRow {
  int64_t c_id;
  int64_t c_d_id;
  int64_t c_w_id;
  int64_t d_id;
  int64_t w_id;
  double amount;
  char data[24];
};

struct NewOrderRow {
  int64_t placeholder;
};

struct OrderRow {
  int64_t c_id;
  int64_t entry_d;
  int64_t carrier_id;
  int64_t ol_cnt;
  int64_t all_local;
};

struct OrderLineRow {
  int64_t i_id;
  int64_t supply_w_id;
  int64_t quantity;
  double amount;
  int64_t delivery_d;
  char dist_info[24];
};

struct ItemRow {
  double price;
  int64_t im_id;
  char name[24];
  char data[50];
};

struct StockRow {
  int64_t quantity;
  double ytd;
  int64_t order_cnt;
  int64_t remote_cnt;
  char dist[24];
  char data[50];
};

/// Secondary index: (district, last-name id) -> representative customer id
/// ("Fields with secondary indexes can be accessed by mapping a value to the
/// relevant primary key", Section 3).  Loaded with the median matching
/// customer, per the spec's by-last-name selection.
struct CustomerNameIndexRow {
  int64_t c_id;
};

/// Ordered secondary index: (district, customer, order) -> order id.  Rows
/// are inserted by NewOrder alongside the ORDER row; Order-Status scans the
/// (district, customer) prefix to find the customer's most recent order.
struct OrderCustIndexRow {
  int64_t o_id;
};

class TpccWorkload final : public Workload {
 public:
  enum Table : int {
    kWarehouse = 0,
    kDistrict = 1,
    kCustomer = 2,
    kHistory = 3,
    kNewOrder = 4,
    kOrder = 5,
    kOrderLine = 6,
    kItem = 7,
    kStock = 8,
    kCustomerNameIndex = 9,
    kOrderCustIndex = 10,
  };

  /// Transaction classes of the standard mix, in weight order.
  enum TxnClass : int {
    kClassNewOrder = 0,
    kClassPayment = 1,
    kClassOrderStatus = 2,
    kClassDelivery = 3,
    kClassStockLevel = 4,
  };

  explicit TpccWorkload(const TpccOptions& options = {}) : options_(options) {
    // The by-last-name index resolution used for a-priori access lists
    // (Calvin) relies on last-name ids mapping to themselves, which holds
    // while every district has at most 1000 customers (spec last-name rule).
    assert(options_.customers_per_district <= 1000);
  }

  std::string name() const override { return "tpcc"; }

  bool IsReadOnlyTable(int table) const override {
    return table == kItem || table == kCustomerNameIndex;
  }

  std::vector<TableSchema> Schemas() const override {
    size_t d = options_.districts_per_warehouse;
    size_t c = d * options_.customers_per_district;
    size_t i = options_.items;
    // `ordered` marks the tables the full mix range-scans: their primary-key
    // packings are order-preserving, so the storage layer's OrderedIndex
    // serves Delivery (oldest NEW-ORDER), Stock-Level (recent ORDER-LINEs)
    // and Order-Status (latest order via the order-cust index).
    return {
        TableSchema{"warehouse", sizeof(WarehouseRow), 1},
        TableSchema{"district", sizeof(DistrictRow), d},
        TableSchema{"customer", sizeof(CustomerRow), c},
        TableSchema{"history", sizeof(HistoryRow), 4 * c},
        TableSchema{"new_order", sizeof(NewOrderRow), 4 * c, /*ordered=*/true},
        TableSchema{"order", sizeof(OrderRow), 4 * c},
        TableSchema{"order_line", sizeof(OrderLineRow), 8 * c,
                    /*ordered=*/true},
        TableSchema{"item", sizeof(ItemRow), i},
        TableSchema{"stock", sizeof(StockRow), i},
        TableSchema{"customer_name_index", sizeof(CustomerNameIndexRow), c},
        TableSchema{"order_cust_index", sizeof(OrderCustIndexRow), 4 * c,
                    /*ordered=*/true},
    };
  }

  // --- key packing (warehouse == partition; keys are partition-local) ---

  uint64_t DistrictKey(int d) const { return static_cast<uint64_t>(d); }
  uint64_t CustomerKey(int d, int c) const {
    return static_cast<uint64_t>(d) * options_.customers_per_district + c;
  }
  static uint64_t OrderKey(int d, int64_t o) {
    return (static_cast<uint64_t>(d) << 40) | static_cast<uint64_t>(o);
  }
  static uint64_t OrderLineKey(int d, int64_t o, int ol) {
    return (OrderKey(d, o) << 4) | static_cast<uint64_t>(ol);
  }
  static uint64_t StockKey(int item) { return static_cast<uint64_t>(item); }
  static uint64_t NameIndexKey(int d, int name_id) {
    return static_cast<uint64_t>(d) * 1000 + name_id;
  }
  /// Order id embedded in OrderKey / OrderCustKey.
  static int64_t OrderIdOf(uint64_t order_key) {
    return static_cast<int64_t>(order_key & ((1ull << 40) - 1));
  }
  /// (district, customer, order) packing for the order-cust index; order ids
  /// get 24 bits, plenty for any benchmark run.
  uint64_t OrderCustKey(int d, int c, int64_t o) const {
    return (CustomerKey(d, c) << 24) | static_cast<uint64_t>(o);
  }
  static constexpr uint64_t kOrderCustMask = (1ull << 24) - 1;

  void PopulatePartition(Database& db, int partition) const override;

  TxnRequest MakeSinglePartition(Rng& rng, int partition,
                                 int num_partitions) const override {
    if (options_.full_mix) {
      // Standard-mix weights 45/43/4/4/4.  The three scan transactions are
      // always warehouse-local per the spec, so they only appear here.
      uint64_t r = rng.Uniform(100);
      if (r < 45) {
        return MakeNewOrder(rng, partition, num_partitions, /*cross=*/false);
      }
      if (r < 88) {
        return MakePayment(rng, partition, num_partitions, /*cross=*/false);
      }
      if (r < 92) return MakeOrderStatus(rng, partition);
      if (r < 96) return MakeDelivery(rng, partition);
      return MakeStockLevel(rng, partition);
    }
    // Paper subset: a NewOrder is followed by a Payment (Section 7.1.1).
    if (rng.Flip(0.5)) {
      return MakeNewOrder(rng, partition, num_partitions, /*cross=*/false);
    }
    return MakePayment(rng, partition, num_partitions, /*cross=*/false);
  }

  TxnRequest MakeCrossPartition(Rng& rng, int home,
                                int num_partitions) const override {
    if (options_.full_mix) {
      // Only NewOrder and Payment can leave the home warehouse; keep their
      // standard-mix proportions (45 : 43).
      if (rng.Uniform(88) < 45) {
        return MakeNewOrder(rng, home, num_partitions, /*cross=*/true);
      }
      return MakePayment(rng, home, num_partitions, /*cross=*/true);
    }
    if (rng.Flip(0.5)) {
      return MakeNewOrder(rng, home, num_partitions, /*cross=*/true);
    }
    return MakePayment(rng, home, num_partitions, /*cross=*/true);
  }

  /// Replica-eligible read-only class: the standard mix's two pure-read
  /// transactions, Order-Status and Stock-Level, in equal shares.  Both are
  /// warehouse-local per the spec and issue only reads and index scans, so
  /// they run unmodified on a snapshot context (cc/snapshot.h).
  TxnRequest MakeReadOnly(Rng& rng, int partition,
                          int num_partitions) const override {
    (void)num_partitions;
    TxnRequest req = rng.Flip(0.5) ? MakeOrderStatus(rng, partition)
                                   : MakeStockLevel(rng, partition);
    req.read_only = true;
    return req;
  }

  TxnRequest MakeNewOrder(Rng& rng, int w, int num_partitions,
                          bool cross) const;
  TxnRequest MakePayment(Rng& rng, int w, int num_partitions,
                         bool cross) const;
  TxnRequest MakeOrderStatus(Rng& rng, int w) const;
  TxnRequest MakeDelivery(Rng& rng, int w) const;
  TxnRequest MakeStockLevel(Rng& rng, int w) const;

  const TpccOptions& options() const { return options_; }

  /// How many requests of each class this workload has generated (relaxed
  /// counters; benches use them to report the achieved mix).
  uint64_t generated(TxnClass c) const {
    return class_counts_[c].load(std::memory_order_relaxed);
  }

  /// Spec last-name generator: three syllables indexed by a 0..999 id.
  static void LastName(int id, char out[16]) {
    static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI",
                                       "PRES", "ESE",   "ANTI", "CALLY",
                                       "ATION", "EYING"};
    std::memset(out, 0, 16);
    std::string s = std::string(kSyllables[id / 100]) +
                    kSyllables[(id / 10) % 10] + kSyllables[id % 10];
    std::memcpy(out, s.data(), std::min<size_t>(s.size(), 15));
  }

 private:
  void Count(TxnClass c) const {
    class_counts_[c].fetch_add(1, std::memory_order_relaxed);
  }

  TpccOptions options_;
  mutable std::atomic<uint64_t> class_counts_[5] = {};
};

}  // namespace star

#endif  // STAR_WORKLOAD_TPCC_H_
