#include "workload/tpcc.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <vector>

namespace star {

void TpccWorkload::PopulatePartition(Database& db, int partition) const {
  Rng rng(0x7C9Cull * (partition + 1));

  // Warehouse.
  WarehouseRow w{};
  w.ytd = 300000.0;
  w.tax = rng.UniformInclusive(0, 2000) / 10000.0;
  rng.FillString(w.name, sizeof(w.name));
  rng.FillString(w.street, sizeof(w.street));
  rng.FillString(w.city, sizeof(w.city));
  rng.FillString(w.state, sizeof(w.state));
  rng.FillString(w.zip, sizeof(w.zip));
  db.Load(kWarehouse, partition, 0, &w);

  // Districts.
  for (int d = 0; d < options_.districts_per_warehouse; ++d) {
    DistrictRow dr{};
    dr.ytd = 30000.0;
    dr.tax = rng.UniformInclusive(0, 2000) / 10000.0;
    // One initial order per customer is loaded below (spec 4.3.3.1).
    dr.next_o_id = options_.customers_per_district + 1;
    rng.FillString(dr.name, sizeof(dr.name));
    rng.FillString(dr.street, sizeof(dr.street));
    rng.FillString(dr.city, sizeof(dr.city));
    rng.FillString(dr.state, sizeof(dr.state));
    rng.FillString(dr.zip, sizeof(dr.zip));
    db.Load(kDistrict, partition, DistrictKey(d), &dr);

    // Customers and the by-last-name index.
    std::map<int, std::vector<int>> by_name;
    for (int c = 0; c < options_.customers_per_district; ++c) {
      CustomerRow cr{};
      cr.balance = -10.0;
      cr.ytd_payment = 10.0;
      cr.discount = rng.UniformInclusive(0, 5000) / 10000.0;
      cr.payment_cnt = 1;
      rng.FillString(cr.first, sizeof(cr.first));
      cr.middle[0] = 'O';
      cr.middle[1] = 'E';
      // Spec: the first 1000 customers get last names from their id; the
      // rest use NURand(255).
      int name_id = c < 1000
                        ? c
                        : static_cast<int>(rng.NonUniform(255, 0, 999, 223));
      LastName(name_id, cr.last);
      by_name[name_id].push_back(c);
      rng.FillString(cr.street, sizeof(cr.street));
      rng.FillString(cr.city, sizeof(cr.city));
      rng.FillString(cr.state, sizeof(cr.state));
      rng.FillString(cr.zip, sizeof(cr.zip));
      // 10% bad credit, per spec.
      bool bc = rng.Flip(0.1);
      cr.credit[0] = bc ? 'B' : 'G';
      cr.credit[1] = 'C';
      rng.FillString(cr.data, 300);  // initial C_DATA payload
      db.Load(kCustomer, partition, CustomerKey(d, c), &cr);
    }
    for (auto& [name_id, ids] : by_name) {
      // By-last-name lookups return the median matching customer.
      CustomerNameIndexRow idx{};
      idx.c_id = ids[ids.size() / 2];
      db.Load(kCustomerNameIndex, partition, NameIndexKey(d, name_id), &idx);
    }

    // Initial orders (spec 4.3.3.1, scaled): one order per customer, in a
    // random permutation of the customer ids; the most recent
    // `initial_undelivered` fraction are undelivered — carrier unset, real
    // order-line amounts, and a NEW-ORDER row — so Delivery, Order-Status
    // and Stock-Level have spec-shaped data from the first transaction.
    int customers = options_.customers_per_district;
    std::vector<int> perm(customers);
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = customers - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
    }
    int64_t first_undelivered =
        1 + static_cast<int64_t>(customers * (1.0 - options_.initial_undelivered));
    for (int64_t o = 1; o <= customers; ++o) {
      int c = perm[o - 1];
      bool delivered = o < first_undelivered;
      OrderRow order{};
      order.c_id = c;
      order.entry_d = 20260601;
      order.carrier_id =
          delivered ? static_cast<int64_t>(rng.UniformInclusive(1, 10)) : 0;
      order.ol_cnt = static_cast<int64_t>(rng.UniformInclusive(5, 15));
      order.all_local = 1;
      db.Load(kOrder, partition, OrderKey(d, o), &order);
      OrderCustIndexRow oci{o};
      db.Load(kOrderCustIndex, partition, OrderCustKey(d, c, o), &oci);
      for (int ol = 0; ol < order.ol_cnt; ++ol) {
        OrderLineRow olr{};
        olr.i_id = static_cast<int64_t>(rng.Uniform(options_.items));
        olr.supply_w_id = partition;
        olr.quantity = 5;
        // Spec: delivered lines carry amount 0, undelivered a random amount.
        olr.amount =
            delivered ? 0.0 : rng.UniformInclusive(1, 999999) / 100.0;
        olr.delivery_d = delivered ? 20260601 : 0;
        rng.FillString(olr.dist_info, sizeof(olr.dist_info));
        db.Load(kOrderLine, partition, OrderLineKey(d, o, ol), &olr);
      }
      if (!delivered) {
        NewOrderRow no{};
        db.Load(kNewOrder, partition, OrderKey(d, o), &no);
      }
    }
  }

  // Items: every partition carries a full copy of the read-only catalogue,
  // so item reads are always local and never replicated (read-only fields
  // need no replication, Section 5).  The catalogue is seeded independently
  // of the partition so all copies are byte-identical — deterministic
  // engines may then serve catalogue reads from any local partition.
  Rng item_rng(0x17E5CA7ull);
  for (int i = 0; i < options_.items; ++i) {
    ItemRow ir{};
    ir.price = item_rng.UniformInclusive(100, 10000) / 100.0;
    ir.im_id = static_cast<int64_t>(item_rng.UniformInclusive(1, 10000));
    item_rng.FillString(ir.name, sizeof(ir.name));
    item_rng.FillString(ir.data, sizeof(ir.data));
    db.Load(kItem, partition, static_cast<uint64_t>(i), &ir);

    StockRow sr{};
    sr.quantity = static_cast<int64_t>(rng.UniformInclusive(10, 100));
    rng.FillString(sr.dist, sizeof(sr.dist));
    rng.FillString(sr.data, sizeof(sr.data));
    db.Load(kStock, partition, StockKey(i), &sr);
  }
}

TxnRequest TpccWorkload::MakeNewOrder(Rng& rng, int w, int num_partitions,
                                      bool cross) const {
  Count(kClassNewOrder);
  struct Line {
    int item;
    int supply_partition;
    int quantity;
  };
  struct Params {
    int w;
    int d;
    int c;
    int ol_cnt;
    bool invalid_item;  // spec: 1% of NewOrders abort on a bad item id
    Line lines[15];
  };
  Params p{};
  p.w = w;
  p.d = static_cast<int>(rng.Uniform(options_.districts_per_warehouse));
  p.c = static_cast<int>(rng.NonUniform(1023, 0,
                                        options_.customers_per_district - 1));
  p.ol_cnt = static_cast<int>(rng.UniformInclusive(5, 15));
  p.invalid_item = rng.Flip(0.01);
  bool any_remote = false;
  for (int i = 0; i < p.ol_cnt; ++i) {
    p.lines[i].item = static_cast<int>(rng.NonUniform(8191, 0,
                                                      options_.items - 1));
    p.lines[i].quantity = static_cast<int>(rng.UniformInclusive(1, 10));
    int supply = w;
    if (cross && num_partitions > 1 && rng.Flip(options_.remote_item_prob)) {
      supply = static_cast<int>(rng.Uniform(num_partitions - 1));
      if (supply >= w) ++supply;
      any_remote = true;
    }
    p.lines[i].supply_partition = supply;
  }
  if (cross && num_partitions > 1 && !any_remote) {
    int supply = static_cast<int>(rng.Uniform(num_partitions - 1));
    if (supply >= w) ++supply;
    p.lines[0].supply_partition = supply;
  }

  TxnRequest req;
  req.cross_partition = cross;
  req.home_partition = w;
  req.accesses.push_back({kWarehouse, w, 0, false});
  req.accesses.push_back({kDistrict, w, DistrictKey(p.d), true});
  req.accesses.push_back({kCustomer, w, CustomerKey(p.d, p.c), false});
  for (int i = 0; i < p.ol_cnt; ++i) {
    req.accesses.push_back({kStock, p.lines[i].supply_partition,
                            StockKey(p.lines[i].item), true});
  }

  req.proc = [this, p](TxnContext& ctx) {
    WarehouseRow wr;
    if (!ctx.Read(kWarehouse, p.w, 0, &wr)) return TxnStatus::kAbortConflict;

    DistrictRow dr;
    if (!ctx.Read(kDistrict, p.w, DistrictKey(p.d), &dr)) {
      return TxnStatus::kAbortConflict;
    }
    int64_t o_id = dr.next_o_id;
    // Order-id allocation ships as an operation under hybrid replication: 8
    // bytes instead of the whole district row (Section 5).
    ctx.ApplyOperation(
        kDistrict, p.w, DistrictKey(p.d),
        Operation::AddI64(offsetof(DistrictRow, next_o_id), 1));

    CustomerRow cr;
    if (!ctx.Read(kCustomer, p.w, CustomerKey(p.d, p.c), &cr)) {
      return TxnStatus::kAbortConflict;
    }

    OrderRow order{};
    order.c_id = p.c;
    order.entry_d = 20260610;
    order.ol_cnt = p.ol_cnt;
    order.all_local = 1;

    double total = 0;
    for (int i = 0; i < p.ol_cnt; ++i) {
      const auto& line = p.lines[i];
      if (p.invalid_item && i == p.ol_cnt - 1) {
        return TxnStatus::kAbortUser;  // unused item id: rollback
      }
      ItemRow ir;
      if (!ctx.Read(kItem, p.w, static_cast<uint64_t>(line.item), &ir)) {
        return TxnStatus::kAbortConflict;
      }
      StockRow sr;
      if (!ctx.Read(kStock, line.supply_partition, StockKey(line.item),
                    &sr)) {
        return TxnStatus::kAbortConflict;
      }
      bool remote = line.supply_partition != p.w;
      if (remote) order.all_local = 0;
      int64_t new_qty = sr.quantity >= line.quantity + 10
                            ? sr.quantity - line.quantity
                            : sr.quantity - line.quantity + 91;
      // Stock maintenance as field operations (quantity is conditional, so
      // it ships as a Set of the new 8-byte value).
      int64_t qty_le = new_qty;
      ctx.ApplyOperation(
          kStock, line.supply_partition, StockKey(line.item),
          Operation::Set(offsetof(StockRow, quantity),
                         std::string(reinterpret_cast<char*>(&qty_le), 8)));
      ctx.ApplyOperation(kStock, line.supply_partition, StockKey(line.item),
                         Operation::AddF64(offsetof(StockRow, ytd),
                                           line.quantity));
      ctx.ApplyOperation(
          kStock, line.supply_partition, StockKey(line.item),
          Operation::AddI64(offsetof(StockRow, order_cnt), 1));
      if (remote) {
        ctx.ApplyOperation(
            kStock, line.supply_partition, StockKey(line.item),
            Operation::AddI64(offsetof(StockRow, remote_cnt), 1));
      }

      OrderLineRow ol{};
      ol.i_id = line.item;
      ol.supply_w_id = line.supply_partition;
      ol.quantity = line.quantity;
      ol.amount = line.quantity * ir.price * (1 + wr.tax + dr.tax) *
                  (1 - cr.discount);
      std::memcpy(ol.dist_info, sr.dist, sizeof(ol.dist_info));
      ctx.Insert(kOrderLine, p.w, OrderLineKey(p.d, o_id, i), &ol);
      total += ol.amount;
    }
    (void)total;

    ctx.Insert(kOrder, p.w, OrderKey(p.d, o_id), &order);
    NewOrderRow no{};
    ctx.Insert(kNewOrder, p.w, OrderKey(p.d, o_id), &no);
    // Maintain the (district, customer, order) index for Order-Status: an
    // ordinary write-set insert, so it replicates and logs like any row.
    OrderCustIndexRow oci{o_id};
    ctx.Insert(kOrderCustIndex, p.w, OrderCustKey(p.d, p.c, o_id), &oci);
    return TxnStatus::kCommitted;
  };
  return req;
}

TxnRequest TpccWorkload::MakePayment(Rng& rng, int w, int num_partitions,
                                     bool cross) const {
  Count(kClassPayment);
  struct Params {
    int w;
    int d;
    int c_w;  // customer's warehouse (remote for cross-partition Payments)
    int c_d;
    int c;           // customer id; -1 selects by last name
    int name_id;     // last-name id when c == -1
    double amount;
  };
  Params p{};
  p.w = w;
  p.d = static_cast<int>(rng.Uniform(options_.districts_per_warehouse));
  p.c_w = w;
  if (cross && num_partitions > 1) {
    p.c_w = static_cast<int>(rng.Uniform(num_partitions - 1));
    if (p.c_w >= w) ++p.c_w;
  }
  p.c_d = static_cast<int>(rng.Uniform(options_.districts_per_warehouse));
  p.amount = rng.UniformInclusive(100, 500000) / 100.0;
  // Spec: 60% of Payments select the customer by last name.
  if (rng.Flip(0.6)) {
    p.c = -1;
    p.name_id = static_cast<int>(rng.NonUniform(255, 0, 999, 223));
  } else {
    p.c = static_cast<int>(
        rng.NonUniform(1023, 0, options_.customers_per_district - 1));
  }

  TxnRequest req;
  req.cross_partition = cross;
  req.home_partition = w;
  req.accesses.push_back({kWarehouse, w, 0, true});
  req.accesses.push_back({kDistrict, w, DistrictKey(p.d), true});
  // Declared customer access.  By-name payments resolve through the
  // secondary index at run time; for the a-priori access list we use the
  // same deterministic resolution (with customers_per_district <= 1000 the
  // index maps a last-name id to itself, and misses fall back to
  // name_id mod C — see the proc body).
  int declared_c =
      p.c >= 0 ? p.c : p.name_id % options_.customers_per_district;
  req.accesses.push_back(
      {kCustomer, p.c_w, CustomerKey(p.c_d, declared_c), true});

  req.proc = [this, p](TxnContext& ctx) {
    WarehouseRow wr;
    if (!ctx.Read(kWarehouse, p.w, 0, &wr)) return TxnStatus::kAbortConflict;
    ctx.ApplyOperation(kWarehouse, p.w, 0,
                       Operation::AddF64(offsetof(WarehouseRow, ytd),
                                         p.amount));

    DistrictRow dr;
    if (!ctx.Read(kDistrict, p.w, DistrictKey(p.d), &dr)) {
      return TxnStatus::kAbortConflict;
    }
    ctx.ApplyOperation(kDistrict, p.w, DistrictKey(p.d),
                       Operation::AddF64(offsetof(DistrictRow, ytd),
                                         p.amount));

    // Resolve the customer (by id, or via the last-name secondary index).
    int c = p.c;
    if (c < 0) {
      CustomerNameIndexRow idx;
      if (ctx.Read(kCustomerNameIndex, p.c_w, NameIndexKey(p.c_d, p.name_id),
                   &idx)) {
        c = static_cast<int>(idx.c_id);
      } else {
        c = p.name_id % options_.customers_per_district;  // index miss
      }
    }
    uint64_t ckey = CustomerKey(p.c_d, c);
    CustomerRow cr;
    if (!ctx.Read(kCustomer, p.c_w, ckey, &cr)) {
      return TxnStatus::kAbortConflict;
    }
    ctx.ApplyOperation(kCustomer, p.c_w, ckey,
                       Operation::AddF64(offsetof(CustomerRow, balance),
                                         -p.amount));
    ctx.ApplyOperation(
        kCustomer, p.c_w, ckey,
        Operation::AddF64(offsetof(CustomerRow, ytd_payment), p.amount));
    ctx.ApplyOperation(
        kCustomer, p.c_w, ckey,
        Operation::AddI64(offsetof(CustomerRow, payment_cnt), 1));
    if (cr.credit[0] == 'B') {
      // Bad credit: prepend the payment record to the 500-byte C_DATA field.
      // Under operation replication only these ~40 bytes cross the network
      // instead of the 500-byte field — the Section 5 example.
      char info[64];
      int len = std::snprintf(info, sizeof(info), "%d %d %d %d %d %.2f|",
                              c, p.c_d, p.c_w, p.d, p.w, p.amount);
      ctx.ApplyOperation(
          kCustomer, p.c_w, ckey,
          Operation::StringPrepend(offsetof(CustomerRow, data),
                                   sizeof(CustomerRow::data),
                                   std::string(info, len)));
    }

    HistoryRow h{};
    h.c_id = c;
    h.c_d_id = p.c_d;
    h.c_w_id = p.c_w;
    h.d_id = p.d;
    h.w_id = p.w;
    h.amount = p.amount;
    std::memcpy(h.data, wr.name, 10);
    std::memcpy(h.data + 10, dr.name, 10);
    uint64_t hkey = ctx.rng().Next();
    ctx.Insert(kHistory, p.w, hkey, &h);
    return TxnStatus::kCommitted;
  };
  return req;
}

TxnRequest TpccWorkload::MakeDelivery(Rng& rng, int w) const {
  Count(kClassDelivery);
  struct Params {
    int w;
    int carrier;
  };
  Params p{w, static_cast<int>(rng.UniformInclusive(1, 10))};

  TxnRequest req;
  req.cross_partition = false;
  req.home_partition = w;
  // No a-priori access list: the touched keys depend on the NEW-ORDER scan
  // (the classic dependent-transaction shape deterministic engines cannot
  // lock up front; Calvin therefore runs the subset mix only).

  req.proc = [this, p](TxnContext& ctx) {
    // Spec 2.7: deliver the oldest undelivered order of every district; a
    // district with no pending NEW-ORDER is skipped.
    for (int d = 0; d < options_.districts_per_warehouse; ++d) {
      struct Oldest {
        bool found = false;
        uint64_t key = 0;
      } oldest;
      if (!ctx.Scan(kNewOrder, p.w, OrderKey(d, 0), OrderKey(d + 1, 0) - 1,
                    /*limit=*/1,
                    [](void* arg, uint64_t key, const void*) {
                      auto* o = static_cast<Oldest*>(arg);
                      o->found = true;
                      o->key = key;
                      return false;  // only the minimum key is needed
                    },
                    &oldest)) {
        // Scan returns false only for permanent conditions (context or
        // table without scan support): abort as a user abort so engines
        // drop the request instead of retrying it forever.
        return TxnStatus::kAbortUser;
      }
      if (!oldest.found) continue;
      int64_t o_id = OrderIdOf(oldest.key);
      ctx.Delete(kNewOrder, p.w, oldest.key);

      OrderRow order;
      if (!ctx.Read(kOrder, p.w, OrderKey(d, o_id), &order)) {
        return TxnStatus::kAbortConflict;
      }
      order.carrier_id = p.carrier;
      ctx.Write(kOrder, p.w, OrderKey(d, o_id), &order);

      double amount_sum = 0;
      for (int ol = 0; ol < order.ol_cnt; ++ol) {
        OrderLineRow olr;
        if (!ctx.Read(kOrderLine, p.w, OrderLineKey(d, o_id, ol), &olr)) {
          return TxnStatus::kAbortConflict;
        }
        amount_sum += olr.amount;
        olr.delivery_d = 20260728;
        ctx.Write(kOrderLine, p.w, OrderLineKey(d, o_id, ol), &olr);
      }

      uint64_t ckey = CustomerKey(d, static_cast<int>(order.c_id));
      CustomerRow cr;  // read first so OCC validation covers the update
      if (!ctx.Read(kCustomer, p.w, ckey, &cr)) {
        return TxnStatus::kAbortConflict;
      }
      ctx.ApplyOperation(
          kCustomer, p.w, ckey,
          Operation::AddF64(offsetof(CustomerRow, balance), amount_sum));
      ctx.ApplyOperation(
          kCustomer, p.w, ckey,
          Operation::AddI64(offsetof(CustomerRow, delivery_cnt), 1));
    }
    return TxnStatus::kCommitted;
  };
  return req;
}

TxnRequest TpccWorkload::MakeOrderStatus(Rng& rng, int w) const {
  Count(kClassOrderStatus);
  struct Params {
    int w;
    int d;
    int c;        // customer id; -1 selects by last name
    int name_id;  // last-name id when c == -1
  };
  Params p{};
  p.w = w;
  p.d = static_cast<int>(rng.Uniform(options_.districts_per_warehouse));
  if (rng.Flip(0.6)) {  // spec: 60% by last name
    p.c = -1;
    p.name_id = static_cast<int>(rng.NonUniform(255, 0, 999, 223));
  } else {
    p.c = static_cast<int>(
        rng.NonUniform(1023, 0, options_.customers_per_district - 1));
  }

  TxnRequest req;
  req.cross_partition = false;
  req.home_partition = w;

  req.proc = [this, p](TxnContext& ctx) {
    int c = p.c;
    if (c < 0) {
      CustomerNameIndexRow idx;
      if (ctx.Read(kCustomerNameIndex, p.w, NameIndexKey(p.d, p.name_id),
                   &idx)) {
        c = static_cast<int>(idx.c_id);
      } else {
        c = p.name_id % options_.customers_per_district;
      }
    }
    CustomerRow cr;
    if (!ctx.Read(kCustomer, p.w, CustomerKey(p.d, c), &cr)) {
      return TxnStatus::kAbortConflict;
    }

    // Most recent order: highest order id in the customer's index prefix
    // (ascending scan, last hit wins).  The walk — and its validation
    // footprint — grows with the customer's order history; fine for bench
    // runs, and fixable later by packing the index key with the inverted
    // order id so limit=1 yields the latest.
    struct Latest {
      int64_t o_id = -1;
    } latest;
    uint64_t prefix = CustomerKey(p.d, c) << 24;
    if (!ctx.Scan(kOrderCustIndex, p.w, prefix, prefix | kOrderCustMask,
                  /*limit=*/0,
                  [](void* arg, uint64_t, const void* value) {
                    static_cast<Latest*>(arg)->o_id =
                        static_cast<const OrderCustIndexRow*>(value)->o_id;
                    return true;
                  },
                  &latest)) {
      return TxnStatus::kAbortUser;  // scans unsupported here: drop, not retry
    }
    if (latest.o_id < 0) return TxnStatus::kCommitted;  // no orders yet

    OrderRow order;
    if (!ctx.Read(kOrder, p.w, OrderKey(p.d, latest.o_id), &order)) {
      return TxnStatus::kAbortConflict;
    }
    // Join the order's lines via a range scan over the (d, o) prefix.
    struct Sum {
      double amount = 0;
      int lines = 0;
    } sum;
    if (!ctx.Scan(kOrderLine, p.w, OrderLineKey(p.d, latest.o_id, 0),
                  OrderLineKey(p.d, latest.o_id, 15), /*limit=*/0,
                  [](void* arg, uint64_t, const void* value) {
                    auto* s = static_cast<Sum*>(arg);
                    s->amount +=
                        static_cast<const OrderLineRow*>(value)->amount;
                    ++s->lines;
                    return true;
                  },
                  &sum)) {
      return TxnStatus::kAbortUser;  // scans unsupported here: drop, not retry
    }
    return sum.lines == order.ol_cnt ? TxnStatus::kCommitted
                                     : TxnStatus::kAbortConflict;
  };
  return req;
}

TxnRequest TpccWorkload::MakeStockLevel(Rng& rng, int w) const {
  Count(kClassStockLevel);
  struct Params {
    int w;
    int d;
    int threshold;
  };
  Params p{w, static_cast<int>(rng.Uniform(options_.districts_per_warehouse)),
           static_cast<int>(rng.UniformInclusive(10, 20))};

  TxnRequest req;
  req.cross_partition = false;
  req.home_partition = w;

  req.proc = [this, p](TxnContext& ctx) {
    DistrictRow dr;
    if (!ctx.Read(kDistrict, p.w, DistrictKey(p.d), &dr)) {
      return TxnStatus::kAbortConflict;
    }
    // Spec 2.8: the district's last 20 orders, joined with STOCK through
    // the distinct items on their order lines.
    int64_t o_hi = dr.next_o_id - 1;
    int64_t o_lo = std::max<int64_t>(1, dr.next_o_id - 20);
    if (o_hi < o_lo) return TxnStatus::kCommitted;
    struct Items {
      int64_t ids[20 * 15];
      int n = 0;
    } items;
    if (!ctx.Scan(kOrderLine, p.w, OrderLineKey(p.d, o_lo, 0),
                  OrderLineKey(p.d, o_hi, 15), /*limit=*/0,
                  [](void* arg, uint64_t, const void* value) {
                    auto* it = static_cast<Items*>(arg);
                    int64_t id =
                        static_cast<const OrderLineRow*>(value)->i_id;
                    for (int i = 0; i < it->n; ++i) {
                      if (it->ids[i] == id) return true;
                    }
                    it->ids[it->n++] = id;
                    return true;
                  },
                  &items)) {
      return TxnStatus::kAbortUser;  // scans unsupported here: drop, not retry
    }
    int low_stock = 0;
    for (int i = 0; i < items.n; ++i) {
      StockRow sr;
      if (!ctx.Read(kStock, p.w, StockKey(static_cast<int>(items.ids[i])),
                    &sr)) {
        return TxnStatus::kAbortConflict;
      }
      if (sr.quantity < p.threshold) ++low_stock;
    }
    (void)low_stock;
    return TxnStatus::kCommitted;
  };
  return req;
}

}  // namespace star
