#ifndef STAR_REPLICATION_LOG_ENTRY_H_
#define STAR_REPLICATION_LOG_ENTRY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "cc/operation.h"
#include "common/serializer.h"

namespace star {

/// Replication entry kinds (Section 5).
///  * kValue: the full record value; applied with the Thomas write rule, so
///    batches may be applied in any order (single-master phase, where a
///    partition is written by many threads).
///  * kOperation: field operations; must be applied in stream order, which
///    the partitioned phase guarantees (one writer per partition, FIFO
///    links).
enum class RepKind : uint8_t { kValue = 0, kOperation = 1 };

/// Serialises one replication entry into a batch buffer.
inline void SerializeValueEntry(WriteBuffer& out, int32_t table,
                                int32_t partition, uint64_t key, uint64_t tid,
                                std::string_view value) {
  out.Write<uint8_t>(static_cast<uint8_t>(RepKind::kValue));
  out.Write<int32_t>(table);
  out.Write<int32_t>(partition);
  out.Write<uint64_t>(key);
  out.Write<uint64_t>(tid);
  out.WriteBytes(value.data(), value.size());
}

inline void SerializeOperationEntry(WriteBuffer& out, int32_t table,
                                    int32_t partition, uint64_t key,
                                    uint64_t tid,
                                    const std::vector<Operation>& ops) {
  out.Write<uint8_t>(static_cast<uint8_t>(RepKind::kOperation));
  out.Write<int32_t>(table);
  out.Write<int32_t>(partition);
  out.Write<uint64_t>(key);
  out.Write<uint64_t>(tid);
  out.Write<uint16_t>(static_cast<uint16_t>(ops.size()));
  for (const auto& op : ops) op.Serialize(out);
}

/// A decoded replication entry (views point into the batch payload).
struct RepEntry {
  RepKind kind;
  int32_t table;
  int32_t partition;
  uint64_t key;
  uint64_t tid;
  std::string_view value;       // kValue
  std::vector<Operation> ops;   // kOperation

  static RepEntry Deserialize(ReadBuffer& in) {
    RepEntry e;
    e.kind = static_cast<RepKind>(in.Read<uint8_t>());
    e.table = in.Read<int32_t>();
    e.partition = in.Read<int32_t>();
    e.key = in.Read<uint64_t>();
    e.tid = in.Read<uint64_t>();
    if (e.kind == RepKind::kValue) {
      e.value = in.ReadBytes();
    } else {
      uint16_t n = in.Read<uint16_t>();
      e.ops.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        e.ops.push_back(Operation::Deserialize(in));
      }
    }
    return e;
  }
};

}  // namespace star

#endif  // STAR_REPLICATION_LOG_ENTRY_H_
