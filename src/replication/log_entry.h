#ifndef STAR_REPLICATION_LOG_ENTRY_H_
#define STAR_REPLICATION_LOG_ENTRY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "cc/operation.h"
#include "common/serializer.h"

namespace star {

/// Replication entry kinds (Section 5).
///  * kValue: the full record value; applied with the Thomas write rule, so
///    batches may be applied in any order (single-master phase, where a
///    partition is written by many threads).
///  * kOperation: field operations; must be applied in stream order, which
///    the partitioned phase guarantees (one writer per partition, FIFO
///    links).
///  * kDelete: a logical delete; applied with the Thomas write rule as a
///    TID-carrying tombstone, so it orders correctly against value writes.
enum class RepKind : uint8_t { kValue = 0, kOperation = 1, kDelete = 2 };

/// Every entry carries a body-length word right after the fixed header, so
/// consumers that only route or filter (the sharded-replay splitter, the
/// applier's stale/missing-table skips) hop over bodies in O(1) instead of
/// decoding per-operation operands they will never apply.

/// Serialises one replication entry into a batch buffer.
inline void SerializeValueEntry(WriteBuffer& out, int32_t table,
                                int32_t partition, uint64_t key, uint64_t tid,
                                std::string_view value) {
  out.Write<uint8_t>(static_cast<uint8_t>(RepKind::kValue));
  out.Write<int32_t>(table);
  out.Write<int32_t>(partition);
  out.Write<uint64_t>(key);
  out.Write<uint64_t>(tid);
  // Body = WriteBytes' own u32 length prefix + the value bytes.
  out.Write<uint32_t>(
      static_cast<uint32_t>(sizeof(uint32_t) + value.size()));
  out.WriteBytes(value.data(), value.size());
}

/// Serialises a delete entry (header only: a tombstone carries no value).
inline void SerializeDeleteEntry(WriteBuffer& out, int32_t table,
                                 int32_t partition, uint64_t key,
                                 uint64_t tid) {
  out.Write<uint8_t>(static_cast<uint8_t>(RepKind::kDelete));
  out.Write<int32_t>(table);
  out.Write<int32_t>(partition);
  out.Write<uint64_t>(key);
  out.Write<uint64_t>(tid);
  out.Write<uint32_t>(0);  // empty body
}

inline void SerializeOperationEntry(WriteBuffer& out, int32_t table,
                                    int32_t partition, uint64_t key,
                                    uint64_t tid, const Operation* ops,
                                    size_t count) {
  out.Write<uint8_t>(static_cast<uint8_t>(RepKind::kOperation));
  out.Write<int32_t>(table);
  out.Write<int32_t>(partition);
  out.Write<uint64_t>(key);
  out.Write<uint64_t>(tid);
  // Operation operands are variable-length; backpatch the body length once
  // the ops are serialised.
  size_t len_off = out.size();
  out.Write<uint32_t>(0);
  out.Write<uint16_t>(static_cast<uint16_t>(count));
  for (size_t i = 0; i < count; ++i) ops[i].Serialize(out);
  out.Patch<uint32_t>(
      len_off,
      static_cast<uint32_t>(out.size() - len_off - sizeof(uint32_t)));
}

inline void SerializeOperationEntry(WriteBuffer& out, int32_t table,
                                    int32_t partition, uint64_t key,
                                    uint64_t tid,
                                    const std::vector<Operation>& ops) {
  SerializeOperationEntry(out, table, partition, key, tid, ops.data(),
                          ops.size());
}

/// A decoded operation that still views its operand inside the batch
/// payload — the allocation-free unit the applier consumes.
struct OpView {
  Operation::Code code;
  uint32_t offset;
  uint32_t field_len;
  std::string_view operand;

  static OpView Deserialize(ReadBuffer& in) {
    OpView v;
    v.code = static_cast<Operation::Code>(in.Read<uint8_t>());
    v.offset = in.Read<uint32_t>();
    v.field_len = in.Read<uint32_t>();
    v.operand = in.ReadBytes();
    return v;
  }

  void ApplyTo(char* value) const {
    Operation::Apply(code, offset, field_len, operand, value);
  }
};

/// The header of one replication entry; the body (value bytes or operation
/// list) is consumed by the caller directly from the ReadBuffer, so batch
/// application performs no intermediate copies.
struct RepEntryHeader {
  RepKind kind;
  int32_t table;
  int32_t partition;
  uint64_t key;
  uint64_t tid;
  /// Byte length of the entry body following the header; `Skip(body_len)`
  /// lands exactly on the next entry.
  uint32_t body_len;

  static RepEntryHeader Deserialize(ReadBuffer& in) {
    RepEntryHeader h;
    h.kind = static_cast<RepKind>(in.Read<uint8_t>());
    h.table = in.Read<int32_t>();
    h.partition = in.Read<int32_t>();
    h.key = in.Read<uint64_t>();
    h.tid = in.Read<uint64_t>();
    h.body_len = in.Read<uint32_t>();
    return h;
  }
};

/// A fully decoded replication entry (value views into the batch payload,
/// operations materialised).  Convenience for tests and offline tools; the
/// hot path (ReplicationApplier) walks RepEntryHeader/OpView instead.
struct RepEntry {
  RepKind kind;
  int32_t table;
  int32_t partition;
  uint64_t key;
  uint64_t tid;
  std::string_view value;      // kValue
  std::vector<Operation> ops;  // kOperation

  static RepEntry Deserialize(ReadBuffer& in) {
    RepEntry e;
    RepEntryHeader h = RepEntryHeader::Deserialize(in);
    e.kind = h.kind;
    e.table = h.table;
    e.partition = h.partition;
    e.key = h.key;
    e.tid = h.tid;
    if (e.kind == RepKind::kValue) {
      e.value = in.ReadBytes();
    } else if (e.kind == RepKind::kDelete) {
      // header only
    } else {
      uint16_t n = in.Read<uint16_t>();
      e.ops.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        e.ops.push_back(Operation::Deserialize(in));
      }
    }
    return e;
  }
};

}  // namespace star

#endif  // STAR_REPLICATION_LOG_ENTRY_H_
