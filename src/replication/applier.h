#ifndef STAR_REPLICATION_APPLIER_H_
#define STAR_REPLICATION_APPLIER_H_

#include <functional>
#include <string_view>

#include "replication/log_entry.h"
#include "replication/stream.h"
#include "storage/database.h"

namespace star {

/// Applies inbound replication batches to a node's local replica.
///
///  * Value entries use the Thomas write rule (Section 3): they may arrive
///    in any order across worker streams, yet the record converges to the
///    version with the largest TID.
///  * Operation entries are applied unconditionally in arrival order; the
///    partitioned phase's single-writer discipline plus FIFO links make that
///    order the commit order (Section 5).
///
/// The batch walk is allocation- and copy-free: entry headers and operation
/// operands are decoded as views into the batch payload and applied directly
/// to the record's value bytes.
///
/// When durable logging is enabled, operation entries are transformed into
/// full-record values before logging (Section 5: "the replication messages
/// are transformed ... before logging to disk"), so recovery can replay the
/// log in any order with the Thomas write rule.
class ReplicationApplier {
 public:
  /// wal_hook(table, partition, key, tid, full_value, deleted) — invoked
  /// after an entry is applied, with the complete record value (empty and
  /// `deleted == true` for tombstones).
  using WalHook = std::function<void(int32_t, int32_t, uint64_t, uint64_t,
                                     std::string_view, bool)>;

  ReplicationApplier(Database* db, ReplicationCounters* counters)
      : db_(db), counters_(counters) {}

  void set_wal_hook(WalHook hook) { wal_hook_ = std::move(hook); }

  /// Applies one batch from node `src`; returns entries applied.
  uint64_t ApplyBatch(int src, std::string_view payload) {
    ReadBuffer in(payload);
    uint64_t n = 0;
    while (!in.Done()) {
      RepEntryHeader h = RepEntryHeader::Deserialize(in);
      if (h.kind == RepKind::kValue) {
        ApplyValue(h, in.ReadBytes());
      } else if (h.kind == RepKind::kDelete) {
        ApplyDelete(h);
      } else {
        ApplyOperations(h, in);
      }
      ++n;
    }
    if (counters_ != nullptr) counters_->AddApplied(src, n);
    return n;
  }

  void ApplyValue(const RepEntryHeader& h, std::string_view value) {
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) return;  // node does not store this partition
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    row.rec->ApplyThomas(h.tid, value.data(), row.size, row.value,
                         db_->two_version());
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid,
                std::string_view(row.value, row.size), false);
    }
  }

  void ApplyDelete(const RepEntryHeader& h) {
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) return;
    // GetOrInsert, not Get: a delete may overtake the value write it
    // follows in another stream; the tombstone's TID then wins the Thomas
    // race when the stale value arrives.
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    row.rec->ApplyThomasDelete(h.tid, row.size, row.value,
                               db_->two_version());
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid, std::string_view(), true);
    }
  }

  /// Consumes the operation list following `h` from the batch cursor and
  /// replays it onto the record, operands viewed in place.
  void ApplyOperations(const RepEntryHeader& h, ReadBuffer& in) {
    uint16_t count = in.Read<uint16_t>();
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) {
      // Not stored here: still consume the entry's bytes.
      for (uint16_t i = 0; i < count; ++i) (void)OpView::Deserialize(in);
      return;
    }
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    // Operation replay: single writer per partition in the partitioned
    // phase, but the record lock still guards against concurrent
    // optimistic readers seeing a torn update.
    row.rec->LockSpin();
    uint64_t w = row.rec->LoadWord();
    if (Record::TidOf(w) < h.tid || Record::IsAbsent(w)) {
      // Maintain the previous-epoch backup before the in-place mutation.
      if (db_->two_version()) {
        row.rec->PrepareBackup(h.tid, row.size, row.value);
      }
      for (uint16_t i = 0; i < count; ++i) {
        OpView::Deserialize(in).ApplyTo(row.value);
      }
      row.rec->UnlockWithTid(h.tid);
    } else {
      // Stale (already reflected); consume without applying.
      for (uint16_t i = 0; i < count; ++i) (void)OpView::Deserialize(in);
      row.rec->Unlock();
    }
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid,
                std::string_view(row.value, row.size), false);
    }
  }

 private:
  Database* db_;
  ReplicationCounters* counters_;
  WalHook wal_hook_;
};

}  // namespace star

#endif  // STAR_REPLICATION_APPLIER_H_
