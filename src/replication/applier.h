#ifndef STAR_REPLICATION_APPLIER_H_
#define STAR_REPLICATION_APPLIER_H_

#include <functional>
#include <string_view>

#include "replication/log_entry.h"
#include "replication/stream.h"
#include "storage/database.h"

namespace star {

/// Applies inbound replication batches to a node's local replica.
///
///  * Value entries use the Thomas write rule (Section 3): they may arrive
///    in any order across worker streams, yet the record converges to the
///    version with the largest TID.
///  * Operation entries are applied unconditionally in arrival order; the
///    partitioned phase's single-writer discipline plus FIFO links make that
///    order the commit order (Section 5).
///
/// When durable logging is enabled, operation entries are transformed into
/// full-record values before logging (Section 5: "the replication messages
/// are transformed ... before logging to disk"), so recovery can replay the
/// log in any order with the Thomas write rule.
class ReplicationApplier {
 public:
  /// wal_hook(table, partition, key, tid, full_value) — invoked after an
  /// entry is applied, with the complete record value.
  using WalHook = std::function<void(int32_t, int32_t, uint64_t, uint64_t,
                                     std::string_view)>;

  ReplicationApplier(Database* db, ReplicationCounters* counters)
      : db_(db), counters_(counters) {}

  void set_wal_hook(WalHook hook) { wal_hook_ = std::move(hook); }

  /// Applies one batch from node `src`; returns entries applied.
  uint64_t ApplyBatch(int src, std::string_view payload) {
    ReadBuffer in(payload);
    uint64_t n = 0;
    while (!in.Done()) {
      RepEntry e = RepEntry::Deserialize(in);
      Apply(e);
      ++n;
    }
    if (counters_ != nullptr) counters_->AddApplied(src, n);
    return n;
  }

  void Apply(const RepEntry& e) {
    HashTable* ht = db_->table(e.table, e.partition);
    if (ht == nullptr) return;  // node does not store this partition
    HashTable::Row row = ht->GetOrInsertRow(e.key);
    if (e.kind == RepKind::kValue) {
      row.rec->ApplyThomas(e.tid, e.value.data(), row.size, row.value,
                           db_->two_version());
      if (wal_hook_) wal_hook_(e.table, e.partition, e.key, e.tid,
                               std::string_view(row.value, row.size));
    } else {
      // Operation replay: single writer per partition in the partitioned
      // phase, but the record lock still guards against concurrent
      // optimistic readers seeing a torn update.
      row.rec->LockSpin();
      uint64_t w = row.rec->LoadWord();
      if (Record::TidOf(w) < e.tid || Record::IsAbsent(w)) {
        // Maintain the previous-epoch backup before the in-place mutation.
        if (db_->two_version() &&
            Tid::Epoch(Record::TidOf(w)) != Tid::Epoch(e.tid)) {
          // Store() handles backup+copy for value writes; replicate that
          // behaviour for in-place ops by copying the pre-image first.
          std::string pre(row.value, row.size);
          row.rec->Store(e.tid, pre.data(), row.size, row.value,
                         /*keep_backup=*/true);
        }
        for (const auto& op : e.ops) op.ApplyTo(row.value);
        row.rec->UnlockWithTid(e.tid);
      } else {
        row.rec->Unlock();  // stale (already reflected); nothing to do
      }
      if (wal_hook_) wal_hook_(e.table, e.partition, e.key, e.tid,
                               std::string_view(row.value, row.size));
    }
  }

 private:
  Database* db_;
  ReplicationCounters* counters_;
  WalHook wal_hook_;
};

}  // namespace star

#endif  // STAR_REPLICATION_APPLIER_H_
