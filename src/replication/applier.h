#ifndef STAR_REPLICATION_APPLIER_H_
#define STAR_REPLICATION_APPLIER_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/thread_annotations.h"
#include "replication/log_entry.h"
#include "replication/stream.h"
#include "storage/database.h"

namespace star {

/// A contiguous byte range of one batch payload holding whole replication
/// entries — the unit the sharded replay pipeline hands to a replay worker
/// (the io thread splits a batch into per-shard span lists; see
/// replication/sharded_applier.h).
struct RepSpan {
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// Applies inbound replication batches to a node's local replica.
///
///  * Value entries use the Thomas write rule (Section 3): they may arrive
///    in any order across worker streams, yet the record converges to the
///    version with the largest TID.
///  * Operation entries are applied unconditionally in arrival order; the
///    partitioned phase's single-writer discipline plus FIFO links make that
///    order the commit order (Section 5).
///
/// The batch walk is allocation- and copy-free: entry headers and operation
/// operands are decoded as views into the batch payload and applied directly
/// to the record's value bytes.
///
/// Two apply loops share the per-entry logic:
///
///  * ApplyBatch — the classic serial walk (decode, dependent lookup,
///    apply; one entry at a time).  This is the io-thread inline path.
///  * ApplySpans / ApplyBatchPipelined — the replay-worker loop: decodes a
///    window of entry headers ahead and software-prefetches the hash-table
///    bucket, chain node, and value lines before touching them, so the
///    dependent cache misses of neighbouring entries overlap instead of
///    serialising.  Entries are still applied strictly in span order, so
///    the final state is byte-identical to the serial walk.
///
/// When durable logging is enabled, operation entries are transformed into
/// full-record values before logging (Section 5: "the replication messages
/// are transformed ... before logging to disk"), so recovery can replay the
/// log in any order with the Thomas write rule.
class ReplicationApplier {
 public:
  /// wal_hook(table, partition, key, tid, full_value, deleted) — invoked
  /// after an entry is applied, with the complete record value (empty and
  /// `deleted == true` for tombstones).
  using WalHook = std::function<void(int32_t, int32_t, uint64_t, uint64_t,
                                     std::string_view, bool)>;

  /// `lane` selects this applier's ReplicationCounters lane: replay workers
  /// applying in parallel each get their own lane so AddApplied never
  /// contends on a shared cacheline.
  ReplicationApplier(Database* db, ReplicationCounters* counters, int lane = 0)
      : db_(db), counters_(counters), lane_(lane) {}

  void set_wal_hook(WalHook hook) { wal_hook_ = std::move(hook); }
  int lane() const { return lane_; }

  /// Applies one batch from node `src`; returns entries applied.
  STAR_HOT_PATH uint64_t ApplyBatch(int src, std::string_view payload) {
    ReadBuffer in(payload);
    uint64_t n = 0;
    while (!in.Done()) {
      RepEntryHeader h = RepEntryHeader::Deserialize(in);
      if (h.kind == RepKind::kValue) {
        ApplyValue(h, in.ReadBytes());
      } else if (h.kind == RepKind::kDelete) {
        ApplyDelete(h);
      } else {
        ApplyOperations(h, in);
      }
      ++n;
    }
    if (counters_ != nullptr) counters_->AddApplied(src, n, lane_);
    return n;
  }

  /// Applies the given spans of `payload` (each a run of whole entries) in
  /// order with the prefetched window loop; returns entries applied.  The
  /// spans must have been produced by splitting `payload` entry-aligned
  /// (SplitIntoSpans below or ShardedApplier's router).
  STAR_HOT_PATH uint64_t ApplySpans(int src, std::string_view payload, const RepSpan* spans,
                      size_t span_count) {
    Cursor cur{payload, spans, span_count, 0,
               ReadBuffer(std::string_view())};
    if (span_count > 0) {
      cur.in = ReadBuffer(payload.substr(spans[0].begin,
                                         spans[0].end - spans[0].begin));
    }
    Decoded win[kWindow];
    uint64_t n = 0;
    for (;;) {
      // Pass 1: decode headers + bodies; prefetch bucket cells.
      size_t cnt = 0;
      while (cnt < kWindow && DecodeNext(cur, &win[cnt])) ++cnt;
      if (cnt == 0) break;
      // Pass 2: bucket lines have arrived; load heads, prefetch first nodes.
      for (size_t i = 0; i < cnt; ++i) {
        Decoded& d = win[i];
        d.cursor = d.ht != nullptr ? d.ht->LoadHead(d.h.key) : nullptr;
      }
      // Pass 3: node lines have arrived; walk chains, prefetch value bytes.
      for (size_t i = 0; i < cnt; ++i) {
        Decoded& d = win[i];
        if (d.ht == nullptr) continue;
        d.row = d.ht->FindFrom(d.cursor, d.h.key);
        if (d.row.rec != nullptr) {
          // Whole record with write intent: the apply overwrites (or RFOs
          // for the Thomas compare) every value line.
          for (uint32_t off = 0; off < d.row.size; off += 64) {
            __builtin_prefetch(d.row.value + off, 1, 1);
          }
        }
      }
      // Pass 4: apply, strictly in span order.
      for (size_t i = 0; i < cnt; ++i) ApplyDecoded(win[i]);
      n += cnt;
    }
    if (counters_ != nullptr && n > 0) counters_->AddApplied(src, n, lane_);
    return n;
  }

  /// Whole-batch convenience over ApplySpans (benches, tests).
  STAR_HOT_PATH uint64_t ApplyBatchPipelined(int src, std::string_view payload) {
    RepSpan all{0, static_cast<uint32_t>(payload.size())};
    return ApplySpans(src, payload, &all, 1);
  }

  /// Advances `in` past the body of the entry whose header was just read —
  /// O(1) via the header's body-length word; routing and skipping never
  /// decode operands.
  STAR_HOT_PATH static void SkipEntryBody(const RepEntryHeader& h, ReadBuffer& in) {
    in.Skip(h.body_len);
  }

  STAR_HOT_PATH void ApplyValue(const RepEntryHeader& h, std::string_view value) {
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) return;  // node does not store this partition
    // star-lint: allow(hot-path): insert materialisation may grow the arena
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    ApplyValueToRow(h, value, row);
  }

  STAR_HOT_PATH void ApplyDelete(const RepEntryHeader& h) {
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) return;
    // GetOrInsert, not Get: a delete may overtake the value write it
    // follows in another stream; the tombstone's TID then wins the Thomas
    // race when the stale value arrives.
    // star-lint: allow(hot-path): insert materialisation may grow the arena
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    ApplyDeleteToRow(h, row);
  }

  /// Consumes the operation list following `h` from the batch cursor and
  /// replays it onto the record, operands viewed in place.
  STAR_HOT_PATH void ApplyOperations(const RepEntryHeader& h, ReadBuffer& in) {
    HashTable* ht = db_->table(h.table, h.partition);
    if (ht == nullptr) {
      // Not stored here: hop over the entry's bytes without decoding.
      in.Skip(h.body_len);
      return;
    }
    uint16_t count = in.Read<uint16_t>();
    // star-lint: allow(hot-path): insert materialisation may grow the arena
    HashTable::Row row = ht->GetOrInsertRow(h.key);
    // Operation replay: single writer per partition in the partitioned
    // phase, but the record lock still guards against concurrent
    // optimistic readers seeing a torn update.
    row.rec->LockSpin();
    uint64_t w = row.rec->LoadWord();
    if (Record::TidOf(w) < h.tid || Record::IsAbsent(w)) {
      // Maintain the previous-epoch backup before the in-place mutation.
      if (db_->two_version()) {
        row.rec->PrepareBackup(h.tid, row.size, row.value);
      }
      for (uint16_t i = 0; i < count; ++i) {
        OpView::Deserialize(in).ApplyTo(row.value);
      }
      row.rec->UnlockWithTid(h.tid);
    } else {
      // Stale (already reflected); hop over the remaining operand bytes
      // (the count word was already consumed).
      in.Skip(h.body_len - sizeof(uint16_t));
      row.rec->Unlock();
    }
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid,
                std::string_view(row.value, row.size), false);
    }
  }

 private:
  static constexpr size_t kWindow = 64;

  /// One pipelined entry in flight between the decode and apply passes.
  struct Decoded {
    RepEntryHeader h;
    HashTable* ht = nullptr;
    const void* cursor = nullptr;  // LoadHead result
    HashTable::Row row;            // FindFrom result (rec null = not present)
    std::string_view value;        // kValue
    std::string_view ops;          // kOperation serialized op list
    uint16_t op_count = 0;
  };

  struct Cursor {
    std::string_view payload;
    const RepSpan* spans;
    size_t span_count;
    size_t span_i;
    ReadBuffer in;  // over the current span
  };

  STAR_HOT_PATH bool DecodeNext(Cursor& cur, Decoded* out) {
    while (cur.span_i < cur.span_count && cur.in.Done()) {
      ++cur.span_i;
      if (cur.span_i < cur.span_count) {
        const RepSpan& s = cur.spans[cur.span_i];
        cur.in = ReadBuffer(cur.payload.substr(s.begin, s.end - s.begin));
      }
    }
    if (cur.span_i >= cur.span_count || cur.in.Done()) return false;
    ReadBuffer& in = cur.in;
    out->h = RepEntryHeader::Deserialize(in);
    out->row = HashTable::Row{};
    if (out->h.kind == RepKind::kValue) {
      out->value = in.ReadBytes();
    } else if (out->h.kind == RepKind::kOperation) {
      out->op_count = in.Read<uint16_t>();
      out->ops = in.View(out->h.body_len - sizeof(uint16_t));
    }
    out->ht = db_->table(out->h.table, out->h.partition);
    if (out->ht != nullptr) out->ht->PrefetchBucket(out->h.key);
    return true;
  }

  STAR_HOT_PATH void ApplyDecoded(Decoded& d) {
    if (d.ht == nullptr) return;  // not stored here; bytes already consumed
    // Slow path for keys the pipelined lookup did not find: insert under
    // the bucket latch.  (A key inserted by an *earlier* entry of the same
    // window is found here too — applies run in order, lookups may not.)
    // star-lint: allow(hot-path): insert materialisation may grow the arena
    if (d.row.rec == nullptr) d.row = d.ht->GetOrInsertRow(d.h.key);
    if (d.h.kind == RepKind::kValue) {
      ApplyValueToRow(d.h, d.value, d.row);
    } else if (d.h.kind == RepKind::kDelete) {
      ApplyDeleteToRow(d.h, d.row);
    } else {
      ReadBuffer ops(d.ops);
      ApplyOperationsToRow(d.h, ops, d.op_count, d.row);
    }
  }

  STAR_HOT_PATH void ApplyValueToRow(const RepEntryHeader& h, std::string_view value,
                       HashTable::Row& row) {
    row.rec->ApplyThomas(h.tid, value.data(), row.size, row.value,
                         db_->two_version());
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid,
                std::string_view(row.value, row.size), false);
    }
  }

  STAR_HOT_PATH void ApplyDeleteToRow(const RepEntryHeader& h, HashTable::Row& row) {
    row.rec->ApplyThomasDelete(h.tid, row.size, row.value,
                               db_->two_version());
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid, std::string_view(), true);
    }
  }

  /// Replays `count` operations read from `ops` onto the record.
  STAR_HOT_PATH void ApplyOperationsToRow(const RepEntryHeader& h, ReadBuffer& ops,
                            uint16_t count, HashTable::Row& row) {
    // Operation replay: single writer per partition in the partitioned
    // phase, but the record lock still guards against concurrent
    // optimistic readers seeing a torn update.
    row.rec->LockSpin();
    uint64_t w = row.rec->LoadWord();
    if (Record::TidOf(w) < h.tid || Record::IsAbsent(w)) {
      // Maintain the previous-epoch backup before the in-place mutation.
      if (db_->two_version()) {
        row.rec->PrepareBackup(h.tid, row.size, row.value);
      }
      for (uint16_t i = 0; i < count; ++i) {
        OpView::Deserialize(ops).ApplyTo(row.value);
      }
      row.rec->UnlockWithTid(h.tid);
    } else {
      // Stale (already reflected); skip without applying.
      row.rec->Unlock();
    }
    if (wal_hook_) {
      wal_hook_(h.table, h.partition, h.key, h.tid,
                std::string_view(row.value, row.size), false);
    }
  }

  Database* db_;
  ReplicationCounters* counters_;
  int lane_;
  WalHook wal_hook_;
};

}  // namespace star

#endif  // STAR_REPLICATION_APPLIER_H_
