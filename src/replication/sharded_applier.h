#ifndef STAR_REPLICATION_SHARDED_APPLIER_H_
#define STAR_REPLICATION_SHARDED_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "replication/applier.h"

namespace star {

/// Parallel replication replay (Section 3's premise that replicas "replay
/// updates in parallel"): splits every inbound batch into per-partition-shard
/// segments and hands them to a pool of replay workers over bounded MPSC
/// ring queues, so a replica drains the primary's W-wide write stream more
/// than 1-wide.
///
/// Ordering argument:
///  * All entries of partition p map to shard p % shards, and segments are
///    enqueued in batch-arrival order by a single router (the io thread).
///    Per-(src, partition) entry order is therefore exactly the serial
///    applier's order — which is what operation-entry replay needs (single
///    writer per partition + FIFO links = commit order, Section 5).
///  * Across shards, entries commute: they touch disjoint partitions, and
///    record state depends only on that record's own entry sequence.
///  * Value/delete entries are additionally order-free under the Thomas
///    write rule, which is why cross-source interleaving never mattered.
///
/// Accounting: each replay worker owns one ReplicationCounters lane and
/// bumps it only after applying a segment, so the replication fence's drain
/// round (engine kFenceExpect) transparently waits for backlogged shard
/// queues — the fence is replay-aware with no extra protocol.
///
/// Payload ownership: Submit takes the batch payload; the last replay
/// worker to finish a batch's segments hands the buffer to `release_hook`
/// (typically Endpoint::ReleasePayload), closing the payload-pool recycle
/// loop without a copy.
///
/// Threading contract: Submit may be called by one thread per source (the
/// per-link FIFO producer — io threads); Drain/Start/Stop are control-plane
/// calls.  Workers must be quiesced via Drain before storage-wide mutation
/// (epoch revert, ResetStorage), exactly like io threads are today.
class ShardedApplier {
 public:
  struct Options {
    int shards = 2;
    /// Segments per shard queue; the bound is the pipeline's backpressure.
    size_t queue_capacity = 512;
  };

  using WalHook = ReplicationApplier::WalHook;
  using ReleaseHook = std::function<void(std::string&&)>;

  ShardedApplier(Database* db, ReplicationCounters* counters, Options opts);
  ~ShardedApplier();

  ShardedApplier(const ShardedApplier&) = delete;
  ShardedApplier& operator=(const ShardedApplier&) = delete;

  /// Durable-logging hook for one shard's replay worker (its own WAL lane).
  /// Must be called before Start().
  void set_wal_hook(int shard, WalHook hook);

  /// Where consumed batch payloads go (payload-pool recycling).  Optional;
  /// unset buffers are freed.  Must be called before Start().
  void set_release_hook(ReleaseHook hook);

  void Start();

  /// Drains all queues, then stops and joins the replay workers.
  void Stop();

  /// Routes one inbound batch; takes ownership of `payload`.  Blocks
  /// (yielding) while a target shard queue is full — bounded backpressure,
  /// the replay-pipeline analogue of a busy io thread.  Returns the number
  /// of shard segments enqueued (entry accounting happens at apply time,
  /// in the workers' ReplicationCounters lanes).
  uint64_t Submit(int src, std::string&& payload);

  /// Blocks until every entry routed so far has been applied (or
  /// `timeout_ms` elapsed; 0 = wait forever).  Returns true when fully
  /// drained.  Quiesce point for epoch revert / storage reset / shutdown.
  bool Drain(double timeout_ms = 0);

  int shards() const { return static_cast<int>(shard_state_.size()); }
  uint64_t batches_routed() const {
    return batches_routed_.load(std::memory_order_relaxed);
  }

  /// Test-only: stalls each replay worker this long per segment, so tests
  /// can pile up a deliberate queue backlog behind a fence.
  void set_apply_delay_ns_for_test(uint64_t ns) {
    apply_delay_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Entry-aligned split helper: appends the spans of `payload` that belong
  /// to `shard` (partition % shards) to `out`, coalescing adjacent entries.
  /// Exposed for tests; the router uses the same walk for all shards in one
  /// pass.
  static uint64_t SplitForShard(std::string_view payload, int shard,
                                int shards, std::vector<RepSpan>* out);

 private:
  /// One routed batch; shared by every shard that received a segment of it.
  struct Batch {
    std::string payload;
    int src = 0;
    std::atomic<int> remaining{0};
    /// spans[shard]: entry-aligned byte ranges for that shard.
    std::vector<std::vector<RepSpan>> spans;
  };

  struct alignas(64) ShardState {
    explicit ShardState(size_t queue_capacity) : queue(queue_capacity) {}
    MpscRing<Batch*> queue;
    std::unique_ptr<ReplicationApplier> applier;
    std::thread worker;
    /// Exact drained-ness accounting, in segments: routed is bumped
    /// (release) before the segment is enqueued, done after it is applied.
    /// routed == done for every shard means the pipeline is empty.
    std::atomic<uint64_t> routed{0};
    std::atomic<uint64_t> done{0};
    /// Parked-consumer wakeup (io-thread-style spin first, then sleep).
    /// `mu` guards no data — it only serialises the sleep/notify handshake
    /// (`sleeping` is the atomic the producer checks before notifying).
    Mutex mu;
    CondVar cv;
    std::atomic<bool> sleeping{false};
  };

  void WorkerLoop(int shard);
  void Recycle(Batch* b);
  Batch* AcquireBatch();

  Database* db_;
  ReplicationCounters* counters_;
  Options opts_;
  ReleaseHook release_hook_;
  std::vector<std::unique_ptr<ShardState>> shard_state_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> batches_routed_{0};
  std::atomic<uint64_t> apply_delay_ns_{0};

  // Recycled Batch descriptors (payload capacity is owned by the payload
  // pool, but the span vectors keep theirs here).
  SpinLock free_mu_;
  std::vector<Batch*> free_batches_ STAR_GUARDED_BY(free_mu_);
};

}  // namespace star

#endif  // STAR_REPLICATION_SHARDED_APPLIER_H_
