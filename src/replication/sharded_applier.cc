#include "replication/sharded_applier.h"

#include <chrono>

#include "common/clock.h"

namespace star {

ShardedApplier::ShardedApplier(Database* db, ReplicationCounters* counters,
                               Options opts)
    : db_(db), counters_(counters), opts_(opts) {
  if (opts_.shards < 1) opts_.shards = 1;
  shard_state_.reserve(opts_.shards);
  for (int s = 0; s < opts_.shards; ++s) {
    auto st = std::make_unique<ShardState>(opts_.queue_capacity);
    st->applier =
        std::make_unique<ReplicationApplier>(db_, counters_, /*lane=*/s);
    shard_state_.push_back(std::move(st));
  }
}

ShardedApplier::~ShardedApplier() {
  Stop();
  SpinLockGuard g(free_mu_);  // workers are joined; kept for the analysis
  for (Batch* b : free_batches_) delete b;
  free_batches_.clear();
}

void ShardedApplier::set_wal_hook(int shard, WalHook hook) {
  shard_state_[shard]->applier->set_wal_hook(std::move(hook));
}

void ShardedApplier::set_release_hook(ReleaseHook hook) {
  release_hook_ = std::move(hook);
}

void ShardedApplier::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  for (int s = 0; s < shards(); ++s) {
    shard_state_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

void ShardedApplier::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Apply everything already routed: batches accepted by Submit must reach
  // the store (the shutdown convergence checks depend on it).
  Drain();
  running_.store(false, std::memory_order_release);
  for (auto& st : shard_state_) {
    {
      MutexLock g(st->mu);
    }
    st->cv.NotifyAll();
    if (st->worker.joinable()) st->worker.join();
  }
}

ShardedApplier::Batch* ShardedApplier::AcquireBatch() {
  {
    SpinLockGuard g(free_mu_);
    if (!free_batches_.empty()) {
      Batch* b = free_batches_.back();
      free_batches_.pop_back();
      return b;
    }
  }
  Batch* b = new Batch();
  b->spans.resize(shards());
  return b;
}

void ShardedApplier::Recycle(Batch* b) {
  if (release_hook_) {
    release_hook_(std::move(b->payload));
  }
  b->payload.clear();
  for (auto& v : b->spans) v.clear();  // keep capacity
  SpinLockGuard g(free_mu_);
  free_batches_.push_back(b);
}

uint64_t ShardedApplier::SplitForShard(std::string_view payload, int shard,
                                       int shards, std::vector<RepSpan>* out) {
  ReadBuffer in(payload);
  uint64_t n = 0;
  while (!in.Done()) {
    uint32_t begin = static_cast<uint32_t>(in.position());
    RepEntryHeader h = RepEntryHeader::Deserialize(in);
    ReplicationApplier::SkipEntryBody(h, in);
    if (h.partition % shards != shard) continue;
    uint32_t end = static_cast<uint32_t>(in.position());
    if (!out->empty() && out->back().end == begin) {
      out->back().end = end;  // coalesce adjacent entries
    } else {
      out->push_back(RepSpan{begin, end});
    }
    ++n;
  }
  return n;
}

uint64_t ShardedApplier::Submit(int src, std::string&& payload) {
  const int num_shards = shards();
  if (payload.empty()) return 0;
  Batch* b = AcquireBatch();
  b->payload = std::move(payload);
  b->src = src;

  if (num_shards == 1) {
    // Single replay worker: the whole batch is one segment; skip the split
    // walk entirely.
    b->spans[0].push_back(
        RepSpan{0, static_cast<uint32_t>(b->payload.size())});
  } else {
    // One pass over the batch: entry-aligned spans per shard, adjacent
    // entries coalesced.
    ReadBuffer in(b->payload);
    while (!in.Done()) {
      uint32_t begin = static_cast<uint32_t>(in.position());
      RepEntryHeader h = RepEntryHeader::Deserialize(in);
      ReplicationApplier::SkipEntryBody(h, in);
      uint32_t end = static_cast<uint32_t>(in.position());
      auto& spans = b->spans[h.partition % num_shards];
      if (!spans.empty() && spans.back().end == begin) {
        spans.back().end = end;
      } else {
        spans.push_back(RepSpan{begin, end});
      }
    }
  }

  int targets = 0;
  for (int s = 0; s < num_shards; ++s) {
    if (!b->spans[s].empty()) ++targets;
  }
  if (targets == 0) {
    Recycle(b);
    return 0;
  }
  b->remaining.store(targets, std::memory_order_release);
  batches_routed_.fetch_add(1, std::memory_order_relaxed);

  for (int s = 0; s < num_shards; ++s) {
    if (b->spans[s].empty()) continue;
    ShardState& st = *shard_state_[s];
    // Publish the routed count before the segment becomes poppable, so a
    // Drain that sees done == routed cannot miss in-flight work.
    st.routed.fetch_add(1, std::memory_order_release);
    Batch* item = b;
    while (!st.queue.TryPush(std::move(item))) {
      // Bounded backpressure: the io thread stalls until the replay worker
      // frees a slot, throttling inbound replication to apply speed.
      std::this_thread::yield();
      item = b;
    }
    if (st.sleeping.load(std::memory_order_acquire)) {
      MutexLock g(st.mu);
      st.cv.NotifyOne();
    }
  }
  return static_cast<uint64_t>(targets);
}

void ShardedApplier::WorkerLoop(int shard) {
  ShardState& st = *shard_state_[shard];
  ReplicationApplier& applier = *st.applier;
  int idle = 0;
  Batch* b = nullptr;
  while (true) {
    if (!st.queue.TryPop(&b)) {
      if (!running_.load(std::memory_order_acquire)) return;
      // Back off gradually (io-loop discipline): spin briefly for latency,
      // then sleep with the cv so parked shards cost nothing on small hosts.
      if (++idle > 64) {
        MutexLock lk(st.mu);
        st.sleeping.store(true, std::memory_order_release);
        st.cv.WaitFor(lk, std::chrono::milliseconds(1));
        st.sleeping.store(false, std::memory_order_release);
      } else {
        CpuRelax();
      }
      continue;
    }
    idle = 0;
    const auto& spans = b->spans[shard];
    applier.ApplySpans(b->src, b->payload, spans.data(), spans.size());
    uint64_t delay = apply_delay_ns_.load(std::memory_order_relaxed);
    if (delay != 0) {  // test hook: manufacture a backlog (sleep, don't
                       // spin — backlog tests run on small hosts)
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
    bool last = b->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
    if (last) Recycle(b);
    // done is the drain fence: published only after the segment's entries
    // hit the store (and the batch was recycled, so payload reuse is safe).
    st.done.fetch_add(1, std::memory_order_release);
  }
}

bool ShardedApplier::Drain(double timeout_ms) {
  uint64_t deadline =
      timeout_ms > 0 ? NowNanos() + MillisToNanos(timeout_ms) : ~0ull;
  for (;;) {
    bool drained = true;
    for (auto& st : shard_state_) {
      if (st->done.load(std::memory_order_acquire) <
          st->routed.load(std::memory_order_acquire)) {
        drained = false;
        break;
      }
    }
    if (drained) return true;
    if (NowNanos() >= deadline) return false;
    if (!running_.load(std::memory_order_acquire)) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace star
