#ifndef STAR_REPLICATION_STREAM_H_
#define STAR_REPLICATION_STREAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cc/write_set.h"
#include "common/config.h"
#include "common/serializer.h"
#include "net/endpoint.h"
#include "replication/log_entry.h"

namespace star {

/// Node-wide replication accounting used by the replication fence (Section
/// 4.3): during the fence "all participant nodes synchronize statistics
/// about the number of committed transactions with one another; from these
/// statistics each node learns how many outstanding writes it is waiting to
/// see".  We count replication entries per (src, dst) pair.
///
/// Both directions are laned.  On the applied side each replication replay
/// worker owns one lane (a cacheline-padded row of per-source counters), so
/// parallel appliers never bounce a cacheline on AddApplied.  On the sent
/// side each worker thread owns one lane for the same reason: every commit
/// bumps AddSent once per replica target, and with W workers funnelling into
/// one counter row the hot senders false-share a single cacheline.
/// `sent_to`/`applied_from` — fence-time polling reads, not hot paths — sum
/// the lanes.
class ReplicationCounters {
 public:
  explicit ReplicationCounters(int nodes, int lanes = 1, int sent_lanes = 1)
      : nodes_(nodes),
        lanes_(lanes < 1 ? 1 : lanes),
        sent_lanes_(sent_lanes < 1 ? 1 : sent_lanes),
        // Round the lane stride up to a full cacheline of counters so
        // distinct lanes never share a line.
        lane_stride_((static_cast<size_t>(nodes) + 7) & ~size_t{7}),
        sent_(lane_stride_ * static_cast<size_t>(sent_lanes_)),
        applied_(lane_stride_ * static_cast<size_t>(lanes_)) {
    for (auto& a : sent_) a.store(0, std::memory_order_relaxed);
    for (auto& a : applied_) a.store(0, std::memory_order_relaxed);
  }

  void AddSent(int dst, uint64_t n, int lane = 0) {
    sent_[static_cast<size_t>(lane) * lane_stride_ + dst].fetch_add(
        n, std::memory_order_acq_rel);
  }
  void AddApplied(int src, uint64_t n, int lane = 0) {
    applied_[static_cast<size_t>(lane) * lane_stride_ + src].fetch_add(
        n, std::memory_order_acq_rel);
  }
  uint64_t sent_to(int dst) const {
    uint64_t sum = 0;
    for (int l = 0; l < sent_lanes_; ++l) {
      sum += sent_[static_cast<size_t>(l) * lane_stride_ + dst].load(
          std::memory_order_acquire);
    }
    return sum;
  }
  uint64_t applied_from(int src) const {
    uint64_t sum = 0;
    for (int l = 0; l < lanes_; ++l) {
      sum += applied_[static_cast<size_t>(l) * lane_stride_ + src].load(
          std::memory_order_acquire);
    }
    return sum;
  }
  int nodes() const { return nodes_; }
  int lanes() const { return lanes_; }
  int sent_lanes() const { return sent_lanes_; }

  /// Zeroes both directions; used on view changes after an epoch revert,
  /// when the coordinator resynchronises the replication accounting.
  void Reset() {
    for (auto& a : sent_) a.store(0, std::memory_order_release);
    for (auto& a : applied_) a.store(0, std::memory_order_release);
  }

 private:
  int nodes_;
  int lanes_;
  int sent_lanes_;
  size_t lane_stride_;
  std::vector<std::atomic<uint64_t>> sent_;
  std::vector<std::atomic<uint64_t>> applied_;
};

/// Per-worker replication output: batches committed writes per destination
/// and ships them asynchronously (Section 3: "writes of committed
/// transactions are buffered and asynchronously shipped to replicas" — the
/// primary does NOT hold locks while replicating).
///
/// Entries are serialised straight from the committing transaction's
/// write-set views (arena value bytes, pooled operation ranges) into batch
/// buffers whose backing strings come from the transport's payload pool, so a
/// warmed-up stream ships batches without heap allocation.
///
/// Fence accounting is exact under fail-stop drops: a batch rejected by the
/// transport (peer declared down or link dead) is NOT counted as sent, so
/// the fence never
/// waits on — and the rebuilt accounting never credits — writes that no one
/// will apply.
class ReplicationStream {
 public:
  /// `lane` is this stream's sent-side counter lane — per worker, so hot
  /// senders never false-share one cacheline of AddSent counters.
  ReplicationStream(net::Endpoint* endpoint, ReplicationCounters* counters,
                    int nodes, size_t flush_bytes = 8 * 1024, int lane = 0)
      : endpoint_(endpoint),
        counters_(counters),
        flush_bytes_(flush_bytes),
        lane_(lane),
        buffers_(nodes),
        counts_(nodes, 0) {}

  int lane() const { return lane_; }

  /// Appends the write set of a committed transaction for one destination.
  /// `allow_operations` selects operation replication for ops-only writes
  /// (hybrid mode, partitioned phase).
  void Append(int dst, uint64_t tid, const WriteSet& ws,
              bool allow_operations) {
    for (const auto& w : ws.entries()) {
      AppendEntry(dst, tid, ws, w, allow_operations);
    }
  }

  /// Appends a single write-set entry for one destination (cross-partition
  /// transactions replicate each entry to that partition's replica set).
  void AppendEntry(int dst, uint64_t tid, const WriteSet& ws,
                   const WriteSetEntry& w, bool allow_operations) {
    WriteBuffer& buf = buffers_[dst];
    if (w.is_delete) {
      SerializeDeleteEntry(buf, w.table, w.partition, w.key, tid);
    } else if (allow_operations && w.ops_only && !w.is_insert) {
      SerializeOperationEntry(buf, w.table, w.partition, w.key, tid,
                              ws.ops(w), w.ops_count);
    } else {
      SerializeValueEntry(buf, w.table, w.partition, w.key, tid,
                          ws.ValueView(w));
    }
    ++counts_[dst];
    if (buf.size() >= flush_bytes_) Flush(dst);
  }

  /// Ships the pending batch for one destination.
  void Flush(int dst) {
    if (buffers_[dst].empty()) return;
    uint64_t n = counts_[dst];
    counts_[dst] = 0;
    std::string payload = buffers_[dst].Release();
    buffers_[dst].Adopt(endpoint_->AcquirePayload());
    if (endpoint_->Send(dst, net::MsgType::kReplicationBatch,
                        std::move(payload))) {
      counters_->AddSent(dst, n, lane_);
    }
  }

  /// Ships everything (called before acknowledging a fence stop).
  void FlushAll() {
    for (size_t dst = 0; dst < buffers_.size(); ++dst) {
      Flush(static_cast<int>(dst));
    }
  }

 private:
  net::Endpoint* endpoint_;
  ReplicationCounters* counters_;
  size_t flush_bytes_;
  int lane_;
  std::vector<WriteBuffer> buffers_;
  std::vector<uint64_t> counts_;
};

}  // namespace star

#endif  // STAR_REPLICATION_STREAM_H_
