#ifndef STAR_NET_ENDPOINT_H_
#define STAR_NET_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/transport.h"

namespace star::net {

/// A node's attachment to the transport: io threads that poll for inbound
/// messages and dispatch them, plus a blocking RPC facility for worker
/// threads.  This plays the role of the paper's "2 threads for network
/// communication" per node (Section 7.1).
///
/// Threading contract:
///  * Handlers run on io threads and must not block on RPCs themselves
///    (they may touch node-local storage, which is latch-protected).
///  * With io_threads == 1 (the default), messages from a given source are
///    handled in FIFO order — a property operation replication relies on
///    (Section 5).  Engines that enable more io threads must only do so for
///    order-insensitive traffic (value replication via the Thomas rule).
///  * Dispatch is zero-copy hand-off: a handler that needs a payload beyond
///    its own invocation moves it out of the Message (the io loop then has
///    nothing to recycle) and whoever finishes consuming it returns the
///    buffer with ReleasePayload.  The replication replay pipeline routes
///    batches to replay workers this way — the worker that applies the last
///    segment of a batch releases its buffer, not the io thread.
class Endpoint {
 public:
  using Handler = std::function<void(Message&&)>;

  Endpoint(Transport* transport, int node_id, int io_threads = 1)
      : transport_(transport), node_(node_id), io_threads_(io_threads) {}
  ~Endpoint() { Stop(); }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Registers the callback for a request type.  Must happen before Start().
  void RegisterHandler(MsgType type, Handler handler) {
    handlers_[static_cast<size_t>(type)] = std::move(handler);
  }

  void Start();
  void Stop();

  /// One-way message (replication batches, unlock notifications, ...).
  /// Returns false if the transport dropped the message (fail-stop peer), so
  /// callers tracking delivery accounting can stay exact.
  bool Send(int dst, MsgType type, std::string payload);

  /// A cleared payload buffer with recycled capacity from the transport's
  /// payload pool — serialise into this (WriteBuffer::Adopt) before Send to
  /// keep the send path allocation-free.  Buffers return to the pool when
  /// the receiving endpoint finishes delivering them.
  std::string AcquirePayload();

  /// Returns a payload buffer to the transport's pool.  The release half of
  /// the zero-copy dispatch contract: handlers that moved a payload out of
  /// their Message (e.g. to route it to a replay worker) call this — from
  /// any thread — once the bytes are fully consumed.
  void ReleasePayload(std::string&& payload);

  /// Sends the response leg of an RPC initiated by `request`.
  void Respond(const Message& request, MsgType type, std::string payload);

  /// Issues a request and returns a token to wait on.  Several calls may be
  /// outstanding simultaneously (used for fan-out rounds such as 2PC).
  uint64_t CallAsync(int dst, MsgType type, std::string payload);

  /// Blocks until the response for `token` arrives.  Returns false on
  /// timeout (e.g. the peer died); the token is consumed either way.
  bool Wait(uint64_t token, std::string* response,
            uint64_t timeout_ns = kDefaultTimeoutNs);

  /// Non-destructive readiness check for an outstanding token.
  bool IsReady(uint64_t token) {
    SpinLockGuard g(pending_mu_);
    auto it = pending_.find(token);
    return it != pending_.end() &&
           it->second->ready.load(std::memory_order_acquire);
  }

  /// Convenience: CallAsync + Wait.
  bool Call(int dst, MsgType type, std::string payload, std::string* response,
            uint64_t timeout_ns = kDefaultTimeoutNs) {
    return Wait(CallAsync(dst, type, std::move(payload)), response,
                timeout_ns);
  }

  int node() const { return node_; }
  Transport* transport() const { return transport_; }

  static constexpr uint64_t kDefaultTimeoutNs = 5'000'000'000ull;  // 5 s

 private:
  struct PendingCall {
    std::atomic<bool> ready{false};
    std::string payload;
  };

  void IoLoop();

  Transport* transport_;
  int node_;
  int io_threads_;
  std::vector<Handler> handlers_{256};
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};

  SpinLock pending_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending_
      STAR_GUARDED_BY(pending_mu_);
  std::atomic<uint64_t> next_rpc_{1};
};

}  // namespace star::net

#endif  // STAR_NET_ENDPOINT_H_
