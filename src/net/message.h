#ifndef STAR_NET_MESSAGE_H_
#define STAR_NET_MESSAGE_H_

#include <cstdint>
#include <string>

namespace star::net {

/// Every message type used by any engine in the repository.  A single enum
/// keeps the fabric engine-agnostic while letting tooling print readable
/// traces.  Values are grouped by subsystem.
enum class MsgType : uint16_t {
  kInvalid = 0,

  // --- replication (STAR and all baselines) ---
  kReplicationBatch = 10,  // one-way batch of log entries
  kReplicationAck = 11,    // ack for synchronous replication

  // --- STAR phase-switching coordination (Section 4.3) ---
  kPhaseStart = 20,    // coordinator -> node: enter phase (payload: descriptor)
  kFenceStop = 21,     // coordinator -> node: stop workers, report stats
  kFenceStats = 22,    // node -> coordinator: per-destination sent counts
  kFenceExpect = 23,   // coordinator -> node: how many writes to wait for
  kFenceDrained = 24,  // node -> coordinator: replication stream drained
  kViewChange = 25,    // coordinator -> node: view broadcast (health, master)
  kShutdown = 26,      // coordinator -> node: final stats + checksum round

  // --- generic distributed transaction RPCs (Dist. OCC / Dist. S2PL) ---
  kReadRequest = 40,
  kReadResponse = 41,
  kLockRequest = 42,  // write lock (OCC commit) or read/write lock (S2PL)
  kLockResponse = 43,
  kValidateRequest = 44,
  kValidateResponse = 45,
  kInstallRequest = 46,  // apply writes + unlock on the owner
  kInstallResponse = 47,
  kUnlockRequest = 48,  // one-way lock release (abort path)

  // --- two-phase commit (synchronous replication mode, Section 7.1.3) ---
  kPrepareRequest = 60,
  kPrepareResponse = 61,
  kCommitRequest = 62,
  kCommitResponse = 63,

  // --- Calvin (Section 7.3) ---
  kCalvinBatch = 80,      // sequencer -> node: ordered batch of txn inputs
  kCalvinBatchAck = 81,   // node -> sequencer: batch fully executed
  kCalvinForward = 82,    // participant -> participant: local read results

  // --- recovery (Section 4.5.3) ---
  kSnapshotRequest = 90,   // rejoining node -> donor: {table, partition}
  kSnapshotResponse = 91,  // donor -> rejoining node: record dump
  kRejoinFetch = 92,       // coordinator -> rejoining node: start fetching
  kRejoinDone = 93,        // rejoining node -> coordinator (one-way)
  kRejoinRequest = 94,     // restarted node process -> coordinator (RPC)
  kDeltaRequest = 95,      // rejoining node -> donor: {table, partition,
                           //   since_epoch} — records changed after since
  kDeltaResponse = 96,     // donor -> rejoining node: delta record dump

  // --- tests/examples ---
  kPing = 100,
  kPong = 101,
};

/// Marks a message as the response leg of an RPC; the io thread completes the
/// matching pending call instead of invoking a handler.
inline constexpr uint16_t kFlagResponse = 1;

/// A datagram on the transport.  `payload` is an opaque byte string
/// (engines use WriteBuffer/ReadBuffer); `deliver_at` is stamped at send
/// time by the simulated fabric's latency/bandwidth model (sim) or with the
/// receive timestamp (tcp).
///
/// Payload ownership: the buffer travels with the message.  Senders that
/// care about the allocator obtain it from the transport's PayloadPool
/// (Endpoint::AcquirePayload); after a handler runs, the receiving endpoint
/// returns whatever the handler left in `payload` to the pool, closing the
/// recycle loop.  A handler that needs the bytes beyond its own invocation
/// must move the payload out (which leaves nothing to recycle) — it must
/// never retain views into a payload it did not move.
struct Message {
  int32_t src = -1;
  int32_t dst = -1;
  MsgType type = MsgType::kInvalid;
  uint16_t flags = 0;
  uint64_t rpc_id = 0;
  uint64_t deliver_at = 0;  // ns, monotonic clock
  std::string payload;
};

}  // namespace star::net

#endif  // STAR_NET_MESSAGE_H_
