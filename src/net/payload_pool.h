#ifndef STAR_NET_PAYLOAD_POOL_H_
#define STAR_NET_PAYLOAD_POOL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"

namespace star::net {

/// Recycles message payload buffers so the steady-state send path does not
/// heap-allocate.
///
/// Memory model: payload strings circulate — a sender Acquire()s a buffer
/// (receiving its retained capacity), serialises into it, and moves it into
/// a Message; after delivery the receiving endpoint Release()s the buffer
/// back.  The pool is sharded to keep senders on different nodes off each
/// other's cache lines; Acquire falls back to stealing from other shards, so
/// asymmetric flows (single-master phase: one node sends, many release)
/// still recirculate instead of growing.  Buffers outside [kMinUseful,
/// kMaxPooled] are dropped rather than hoarded, and each shard is capped.
class PayloadPool {
 public:
  /// Returns a cleared buffer with recycled capacity, or a fresh empty
  /// string when the pool is dry.  `hint` selects the preferred shard
  /// (callers pass their endpoint id).
  std::string Acquire(int hint) {
    size_t home = Shard(hint);
    for (size_t i = 0; i < kShards; ++i) {
      ShardState& s = shards_[(home + i) % kShards];
      SpinLockGuard g(s.mu);
      if (!s.free.empty()) {
        std::string out = std::move(s.free.back());
        s.free.pop_back();
        return out;
      }
    }
    return std::string();
  }

  /// Returns a buffer to `hint`'s shard.  Cheap to call with any string:
  /// buffers too small to matter or too large to hoard are simply freed.
  void Release(int hint, std::string&& payload) {
    size_t cap = payload.capacity();
    if (cap < kMinUseful || cap > kMaxPooled) return;
    payload.clear();
    ShardState& s = shards_[Shard(hint)];
    SpinLockGuard g(s.mu);
    if (s.free.size() >= kMaxPerShard) return;  // drop: pool is full
    s.free.push_back(std::move(payload));
  }

  static constexpr size_t kShards = 8;
  static constexpr size_t kMaxPerShard = 64;
  static constexpr size_t kMinUseful = 64;        // below SSO-ish: not worth it
  static constexpr size_t kMaxPooled = 4u << 20;  // don't hoard giant buffers

 private:
  static size_t Shard(int hint) {
    return static_cast<size_t>(hint < 0 ? 0 : hint) % kShards;
  }

  struct alignas(64) ShardState {
    SpinLock mu;
    std::vector<std::string> free STAR_GUARDED_BY(mu);
  };

  ShardState shards_[kShards];
};

}  // namespace star::net

#endif  // STAR_NET_PAYLOAD_POOL_H_
