#include "net/fabric.h"

#include "common/clock.h"

namespace star::net {

void Fabric::Send(Message&& m) {
  if (down_[m.src].load(std::memory_order_acquire) ||
      down_[m.dst].load(std::memory_order_acquire)) {
    return;  // fail-stop: the wire to/from a dead node is cut
  }

  uint64_t now = NowNanos();
  uint64_t wire_bytes = m.payload.size() + options_.per_message_overhead_bytes;
  uint64_t depart = now;

  if (m.src != m.dst && options_.bandwidth_gbps > 0) {
    // Per-endpoint egress serialization: claim a transmission slot on the
    // sender's NIC.  CAS loop because multiple worker threads share a node.
    uint64_t tx_ns = static_cast<uint64_t>(
        static_cast<double>(wire_bytes) * 8.0 / options_.bandwidth_gbps);
    auto& clock = egress_free_at_[m.src];
    uint64_t prev = clock.load(std::memory_order_relaxed);
    uint64_t start, end;
    do {
      start = prev > now ? prev : now;
      end = start + tx_ns;
    } while (!clock.compare_exchange_weak(prev, end,
                                          std::memory_order_acq_rel));
    depart = end;
  }

  double latency_us =
      m.src == m.dst ? options_.local_latency_us : options_.link_latency_us;
  m.deliver_at = depart + MicrosToNanos(latency_us);

  bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
  messages_.fetch_add(1, std::memory_order_relaxed);

  Link& link = LinkFor(m.src, m.dst);
  std::lock_guard<SpinLock> g(link.mu);
  link.q.push_back(std::move(m));
}

bool Fabric::Poll(int dst, Message* out) {
  if (down_[dst].load(std::memory_order_acquire)) return false;
  uint64_t now = NowNanos();
  uint32_t start = cursors_[dst].v.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < endpoints_; ++i) {
    int src = static_cast<int>((start + i) % endpoints_);
    Link& link = LinkFor(src, dst);
    std::lock_guard<SpinLock> g(link.mu);
    if (!link.q.empty() && link.q.front().deliver_at <= now) {
      *out = std::move(link.q.front());
      link.q.pop_front();
      return true;
    }
  }
  return false;
}

bool Fabric::HasTraffic(int dst) const {
  for (int src = 0; src < endpoints_; ++src) {
    const Link& link = LinkFor(src, dst);
    // Benign race: used only by idle-detection loops in tests.
    if (!link.q.empty()) return true;
  }
  return false;
}

}  // namespace star::net
