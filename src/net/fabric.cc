#include "net/fabric.h"

#include "common/clock.h"

namespace star::net {

bool Fabric::Send(Message&& m) {
  uint64_t wire_bytes = m.payload.size() + options_.per_message_overhead_bytes;
  if (down_[m.src].load(std::memory_order_acquire) ||
      down_[m.dst].load(std::memory_order_acquire)) {
    // Fail-stop: the wire to/from a dead node is cut.  Recycle the payload —
    // the sender keeps committing and needs its buffers back.
    dropped_bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
    dropped_messages_.fetch_add(1, std::memory_order_relaxed);
    pool_.Release(m.src, std::move(m.payload));
    return false;
  }

  uint64_t now = NowNanos();
  uint64_t depart = now;

  if (m.src != m.dst && options_.bandwidth_gbps > 0) {
    // Per-endpoint egress serialization: claim a transmission slot on the
    // sender's NIC.  CAS loop because multiple worker threads share a node.
    uint64_t tx_ns = static_cast<uint64_t>(
        static_cast<double>(wire_bytes) * 8.0 / options_.bandwidth_gbps);
    auto& clock = egress_free_at_[m.src];
    uint64_t prev = clock.load(std::memory_order_relaxed);
    uint64_t start, end;
    do {
      start = prev > now ? prev : now;
      end = start + tx_ns;
    } while (!clock.compare_exchange_weak(prev, end,
                                          std::memory_order_acq_rel));
    depart = end;
  }

  double latency_us =
      m.src == m.dst ? options_.local_latency_us : options_.link_latency_us;
  m.deliver_at = depart + MicrosToNanos(latency_us);

  bytes_.fetch_add(wire_bytes, std::memory_order_relaxed);
  messages_.fetch_add(1, std::memory_order_relaxed);

  int src = m.src;
  int dst = m.dst;
  Link& link = LinkFor(src, dst);
  {
    SpinLockGuard g(link.mu);
    link.q.push_back(std::move(m));
    // Publish readiness under the link lock (see ready_ docs).
    ReadyWord(dst, static_cast<size_t>(src) / 64)
        .fetch_or(1ull << (src % 64), std::memory_order_release);
    dst_state_[dst].pending.fetch_add(1, std::memory_order_release);
  }
  return true;
}

bool Fabric::Poll(int dst, Message* out) {
  if (down_[dst].load(std::memory_order_acquire)) return false;
  DstState& ds = dst_state_[dst];
  if (ds.pending.load(std::memory_order_acquire) == 0) return false;

  uint64_t now = NowNanos();
  uint32_t start = ds.cursor.fetch_add(1, std::memory_order_relaxed) %
                   static_cast<uint32_t>(endpoints_);
  size_t start_word = start / 64;
  uint32_t start_bit = start % 64;

  // Circular scan over the ready bitmap beginning at `start`: words
  // [start_word .. end), then [0 .. start_word], with the first and last
  // visit of start_word masked to the bits at/after and before `start`.
  for (size_t step = 0; step <= words_per_dst_; ++step) {
    size_t w = (start_word + step) % words_per_dst_;  // wraps to start_word
    if (step == words_per_dst_ && start_bit == 0) break;
    uint64_t bits = ReadyWord(dst, w).load(std::memory_order_acquire);
    if (step == 0) {
      bits &= ~uint64_t{0} << start_bit;
    } else if (step == words_per_dst_) {
      bits &= (uint64_t{1} << start_bit) - 1;
    }
    while (bits != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      int src = static_cast<int>(w * 64 + bit);
      if (src >= endpoints_) break;
      Link& link = LinkFor(src, dst);
      SpinLockGuard g(link.mu);
      if (link.q.empty()) {
        // Stale bit (a racing Poll drained the queue): clear it.
        ReadyWord(dst, w).fetch_and(~(1ull << bit), std::memory_order_release);
        continue;
      }
      if (link.q.front().deliver_at > now) continue;  // in flight: keep bit
      *out = std::move(link.q.front());
      link.q.pop_front();
      if (link.q.empty()) {
        ReadyWord(dst, w).fetch_and(~(1ull << bit), std::memory_order_release);
      }
      ds.pending.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

}  // namespace star::net
