#ifndef STAR_NET_FABRIC_H_
#define STAR_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/spinlock.h"
#include "net/message.h"

namespace star::net {

/// Parameters of the simulated network.  Defaults approximate the paper's
/// EC2 testbed (Section 7.1): same-AZ one-way latency of ~50 us and a
/// 4.8 Gbit/s per-node link as measured by iperf.
struct FabricOptions {
  double link_latency_us = 50.0;
  double local_latency_us = 0.0;  // loopback (src == dst)
  double bandwidth_gbps = 4.8;    // per-endpoint egress; <= 0 -> unlimited
  /// Fixed per-message overhead charged against bandwidth, modelling
  /// TCP/IP + framing headers.
  uint32_t per_message_overhead_bytes = 54;
};

/// In-process message fabric standing in for the cluster network.
///
/// Substitution note (DESIGN.md Section 2): the paper's experiments hinge on
/// (i) round-trip stalls, (ii) message counts, and (iii) bytes shipped.  The
/// fabric models all three explicitly: each message is delivered no earlier
/// than send_time + serialization_delay + link_latency, where serialization
/// delay is produced by a per-endpoint egress token clock (so a 4.8 Gbit/s
/// node saturates exactly as in Figure 16(b)).
///
/// Per (src, dst) ordering is FIFO, like a TCP connection; this is what makes
/// operation replication safe in the partitioned phase (Section 5).
class Fabric {
 public:
  Fabric(int endpoints, const FabricOptions& options)
      : options_(options),
        endpoints_(endpoints),
        links_(static_cast<size_t>(endpoints) * endpoints),
        egress_free_at_(endpoints),
        down_(endpoints),
        cursors_(endpoints) {
    for (auto& e : egress_free_at_) e.store(0, std::memory_order_relaxed);
    for (auto& d : down_) d.store(false, std::memory_order_relaxed);
  }

  /// Stamps the delivery deadline and enqueues.  Messages to or from a downed
  /// endpoint are silently dropped (fail-stop model, Section 4.5.2).
  void Send(Message&& m);

  /// Retrieves one ready message for `dst`, scanning source queues round-
  /// robin for fairness.  Returns false if nothing is deliverable yet.
  bool Poll(int dst, Message* out);

  /// True if any message (ready or in flight) is queued for `dst`.
  bool HasTraffic(int dst) const;

  /// Fail-stop injection: while down, an endpoint sends and receives
  /// nothing.  Bringing it back up does not resurrect dropped messages.
  void SetDown(int endpoint, bool down) {
    down_[endpoint].store(down, std::memory_order_release);
  }
  bool IsDown(int endpoint) const {
    return down_[endpoint].load(std::memory_order_acquire);
  }

  uint64_t total_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    bytes_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
  }

  int endpoints() const { return endpoints_; }
  const FabricOptions& options() const { return options_; }

 private:
  struct Link {
    SpinLock mu;
    std::deque<Message> q;
  };

  Link& LinkFor(int src, int dst) {
    return links_[static_cast<size_t>(src) * endpoints_ + dst];
  }
  const Link& LinkFor(int src, int dst) const {
    return links_[static_cast<size_t>(src) * endpoints_ + dst];
  }

  FabricOptions options_;
  int endpoints_;
  std::vector<Link> links_;
  /// Per-endpoint egress clock: the time at which the sender's NIC frees up.
  std::vector<std::atomic<uint64_t>> egress_free_at_;
  std::vector<std::atomic<bool>> down_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
  /// Round-robin cursor per destination (one cache line each).
  struct alignas(64) Cursor {
    std::atomic<uint32_t> v{0};
  };
  std::vector<Cursor> cursors_;
};

}  // namespace star::net

#endif  // STAR_NET_FABRIC_H_
