#ifndef STAR_NET_FABRIC_H_
#define STAR_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/payload_pool.h"
#include "net/transport.h"

namespace star::net {

/// Options alias kept for the fabric's historical spelling; the canonical
/// definition lives in net/transport.h next to the other transport knobs.
using FabricOptions = SimNetOptions;

/// In-process simulated message fabric — the `TransportKind::kSim`
/// implementation of the Transport interface.
///
/// Substitution note (DESIGN.md Section 2): the paper's experiments hinge on
/// (i) round-trip stalls, (ii) message counts, and (iii) bytes shipped.  The
/// fabric models all three explicitly: each message is delivered no earlier
/// than send_time + serialization_delay + link_latency, where serialization
/// delay is produced by a per-endpoint egress token clock (so a 4.8 Gbit/s
/// node saturates exactly as in Figure 16(b)).
///
/// Since the Transport split, everything above src/net/ talks to the
/// abstract Transport interface and the same engines also run over real TCP
/// sockets (net/tcp_transport.h).  The sim remains the default because it
/// models what TCP-over-localhost cannot: a configurable one-way link
/// latency and a per-node egress bandwidth cap, both of which the figure
/// reproductions depend on.  What the sim does *not* model — and the TCP
/// transport delivers for real — is kernel socket buffering, framing,
/// connection setup/teardown, and genuinely independent process failure.
///
/// Per (src, dst) ordering is FIFO, like a TCP connection; this is what makes
/// operation replication safe in the partitioned phase (Section 5).
///
/// Polling is O(ready sources), not O(endpoints): each destination keeps an
/// atomic bitmap of sources with queued traffic plus a pending-message
/// counter, so idle io threads return after one load and busy ones jump
/// straight to non-empty queues.
class Fabric : public Transport {
 public:
  Fabric(int endpoints, const FabricOptions& options)
      : options_(options),
        endpoints_(endpoints),
        words_per_dst_((static_cast<size_t>(endpoints) + 63) / 64),
        links_(static_cast<size_t>(endpoints) * endpoints),
        egress_free_at_(endpoints),
        down_(endpoints),
        dst_state_(endpoints),
        ready_(static_cast<size_t>(endpoints) * words_per_dst_) {
    for (auto& e : egress_free_at_) e.store(0, std::memory_order_relaxed);
    for (auto& d : down_) d.store(false, std::memory_order_relaxed);
    for (auto& r : ready_) r.store(0, std::memory_order_relaxed);
  }

  /// Stamps the delivery deadline and enqueues.  Messages to or from a downed
  /// endpoint are dropped (fail-stop model, Section 4.5.2); the return value
  /// reports whether the fabric accepted the message, so senders can keep
  /// delivery accounting (e.g. the replication fence) truthful.
  bool Send(Message&& m) override;

  /// Retrieves one ready message for `dst`, scanning ready source queues
  /// round-robin for fairness.  Returns false if nothing is deliverable yet.
  bool Poll(int dst, Message* out) override;

  /// True if any message (ready or in flight) is queued for `dst`.
  bool HasTraffic(int dst) const override {
    return dst_state_[dst].pending.load(std::memory_order_acquire) != 0;
  }

  /// Fail-stop injection: while down, an endpoint sends and receives
  /// nothing.  Bringing it back up does not resurrect dropped messages.
  void SetDown(int endpoint, bool down) override {
    down_[endpoint].store(down, std::memory_order_release);
  }
  bool IsDown(int endpoint) const override {
    return down_[endpoint].load(std::memory_order_acquire);
  }

  uint64_t total_bytes() const override {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_messages() const override {
    return messages_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_bytes() const override {
    return dropped_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_messages() const override {
    return dropped_messages_.load(std::memory_order_relaxed);
  }
  void ResetStats() override {
    bytes_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
    dropped_bytes_.store(0, std::memory_order_relaxed);
    dropped_messages_.store(0, std::memory_order_relaxed);
  }

  /// Shared payload recycler (see PayloadPool).  Senders acquire their batch
  /// buffers here; endpoints return payloads after delivery.
  PayloadPool& payload_pool() override { return pool_; }

  int endpoints() const override { return endpoints_; }
  TransportKind kind() const override { return TransportKind::kSim; }
  const FabricOptions& options() const { return options_; }

 private:
  struct Link {
    SpinLock mu;
    std::deque<Message> q STAR_GUARDED_BY(mu);
  };

  Link& LinkFor(int src, int dst) {
    return links_[static_cast<size_t>(src) * endpoints_ + dst];
  }
  const Link& LinkFor(int src, int dst) const {
    return links_[static_cast<size_t>(src) * endpoints_ + dst];
  }

  std::atomic<uint64_t>& ReadyWord(int dst, size_t word) {
    return ready_[static_cast<size_t>(dst) * words_per_dst_ + word];
  }

  FabricOptions options_;
  int endpoints_;
  size_t words_per_dst_;
  std::vector<Link> links_;
  /// Per-endpoint egress clock: the time at which the sender's NIC frees up.
  std::vector<std::atomic<uint64_t>> egress_free_at_;
  std::vector<std::atomic<bool>> down_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> dropped_bytes_{0};
  std::atomic<uint64_t> dropped_messages_{0};

  /// Per-destination poll state (one cache line each): round-robin cursor
  /// and the count of queued messages (ready or still in flight).
  struct alignas(64) DstState {
    std::atomic<uint32_t> cursor{0};
    std::atomic<uint64_t> pending{0};
  };
  std::vector<DstState> dst_state_;
  /// ready_[dst * words_per_dst_ + w] bit b set <=> link (w*64+b) -> dst has
  /// queued messages.  Set/cleared under the link lock, so Send and Poll
  /// cannot lose a wakeup.
  std::vector<std::atomic<uint64_t>> ready_;

  PayloadPool pool_;
};

/// The fabric is the simulated implementation of the Transport split; code
/// above src/net/ should use this name (or better, the Transport interface
/// via MakeTransport).
using SimTransport = Fabric;

}  // namespace star::net

#endif  // STAR_NET_FABRIC_H_
