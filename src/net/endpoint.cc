#include "net/endpoint.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace star::net {

void Endpoint::Start() {
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < io_threads_; ++i) {
    threads_.emplace_back([this] { IoLoop(); });
  }
}

void Endpoint::Stop() {
  running_.store(false, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

bool Endpoint::Send(int dst, MsgType type, std::string payload) {
  Message m;
  m.src = node_;
  m.dst = dst;
  m.type = type;
  m.payload = std::move(payload);
  return transport_->Send(std::move(m));
}

std::string Endpoint::AcquirePayload() {
  return transport_->payload_pool().Acquire(node_);
}

void Endpoint::ReleasePayload(std::string&& payload) {
  transport_->payload_pool().Release(node_, std::move(payload));
}

void Endpoint::Respond(const Message& request, MsgType type,
                       std::string payload) {
  Message m;
  m.src = node_;
  m.dst = request.src;
  m.type = type;
  m.flags = kFlagResponse;
  m.rpc_id = request.rpc_id;
  m.payload = std::move(payload);
  transport_->Send(std::move(m));
}

uint64_t Endpoint::CallAsync(int dst, MsgType type, std::string payload) {
  uint64_t id = next_rpc_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<PendingCall>();
  {
    SpinLockGuard g(pending_mu_);
    pending_.emplace(id, pending);
  }
  Message m;
  m.src = node_;
  m.dst = dst;
  m.type = type;
  m.rpc_id = id;
  m.payload = std::move(payload);
  transport_->Send(std::move(m));
  return id;
}

bool Endpoint::Wait(uint64_t token, std::string* response,
                    uint64_t timeout_ns) {
  std::shared_ptr<PendingCall> pending;
  {
    SpinLockGuard g(pending_mu_);
    auto it = pending_.find(token);
    if (it == pending_.end()) return false;
    pending = it->second;
  }
  uint64_t deadline = NowNanos() + timeout_ns;
  int spins = 0;
  while (!pending->ready.load(std::memory_order_acquire)) {
    CpuRelax();
    // The simulated link latency is tens of microseconds, so a short spin
    // usually wins; fall back to yielding on an oversubscribed host.
    if (++spins > 128) {
      std::this_thread::yield();
      spins = 0;
      if (NowNanos() > deadline) {
        SpinLockGuard g(pending_mu_);
        pending_.erase(token);
        return false;
      }
    }
  }
  if (response != nullptr) *response = std::move(pending->payload);
  SpinLockGuard g(pending_mu_);
  pending_.erase(token);
  return true;
}

void Endpoint::IoLoop() {
  int idle = 0;
  Message m;
  while (running_.load(std::memory_order_acquire)) {
    if (!transport_->Poll(node_, &m)) {
      // Back off gradually: spin briefly for latency, then sleep with
      // growing intervals to leave CPU for worker threads on small hosts.
      if (++idle > 64) {
        int us = std::min(200, (idle - 64) / 4 + 20);
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      } else {
        CpuRelax();
      }
      continue;
    }
    idle = 0;
    if ((m.flags & kFlagResponse) != 0) {
      std::shared_ptr<PendingCall> pending;
      {
        SpinLockGuard g(pending_mu_);
        auto it = pending_.find(m.rpc_id);
        if (it != pending_.end()) pending = it->second;
      }
      if (pending != nullptr) {
        pending->payload = std::move(m.payload);
        pending->ready.store(true, std::memory_order_release);
      }
      continue;
    }
    Handler& h = handlers_[static_cast<size_t>(m.type)];
    if (h) h(std::move(m));
    // Delivery complete: recycle the payload buffer unless the handler took
    // ownership (moved-from strings are empty and skipped by the pool).
    transport_->payload_pool().Release(node_, std::move(m.payload));
  }
}

}  // namespace star::net
