#ifndef STAR_NET_TRANSPORT_H_
#define STAR_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/payload_pool.h"

namespace star::net {

/// Which message substrate a cluster runs on.
enum class TransportKind : uint8_t {
  kSim = 0,  // in-process simulated fabric (latency/bandwidth model)
  kTcp = 1,  // real nonblocking TCP sockets (single- or multi-process)
};

inline const char* TransportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::kSim: return "sim";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

/// Parameters of the simulated network.  Defaults approximate the paper's
/// EC2 testbed (Section 7.1): same-AZ one-way latency of ~50 us and a
/// 4.8 Gbit/s per-node link as measured by iperf.
struct SimNetOptions {
  double link_latency_us = 50.0;
  double local_latency_us = 0.0;  // loopback (src == dst)
  double bandwidth_gbps = 4.8;    // per-endpoint egress; <= 0 -> unlimited
  /// Fixed per-message overhead charged against bandwidth, modelling
  /// TCP/IP + framing headers.
  uint32_t per_message_overhead_bytes = 54;
};

/// Parameters of the TCP transport.  Endpoint `i` listens on
/// `base_port + i` on `host`; with `base_port == 0` every local endpoint
/// binds an ephemeral port (valid only when all endpoints are local, i.e.
/// the single-process configurations used by tests and benches).
struct TcpNetOptions {
  std::string host = "127.0.0.1";
  int base_port = 0;
  /// Endpoint ids hosted by this process (empty = all of them).  Multi-
  /// process deployments give each process its own subset; Send() to a
  /// remote endpoint goes over the wire, Poll() is only meaningful for
  /// local endpoints.
  std::vector<int> local_endpoints;
  /// Throttle between reconnect attempts to an unreachable peer; failed
  /// sends in between are dropped (fail-stop accounting).
  double connect_retry_ms = 100.0;
  /// Hard ceiling on a single framed message (sanity check against
  /// corrupted length prefixes) and on a connection's send backlog.
  size_t max_frame_bytes = 64u << 20;
};

/// One scheduled fault on one directed link.  Windows are measured from the
/// schedule origin (FaultOptions::origin_ns, or Start() when 0), so a
/// multi-process cluster on one machine shares exactly aligned windows — the
/// Linux monotonic clock is process-independent.
struct FaultEpisode {
  enum class Kind : uint8_t {
    /// Every message gets an extra uniform delay in [delay_min_us,
    /// delay_max_us] (gray link: slow but alive).
    kDelay = 0,
    /// Each message independently "drops" with probability drop_p.  By
    /// default a drop models TCP loss: the message is held for penalty_ms
    /// (the retransmission timeout) and still delivered in order.  With
    /// `loss = true` the drop is visible — Send() returns false, the payload
    /// is recycled and dropped_*() counts it — which silently diverges
    /// replicas fed by one-way replication, so schedules restrict loss mode
    /// to request/response links.
    kDrop = 1,
    /// The directed link src->dst is dead for the whole window; traffic is
    /// held and delivered (in order) when the window closes, like TCP
    /// retransmitting across a partition.  The reverse link is unaffected
    /// unless the schedule also includes it — that asymmetry is the point.
    /// A connection flap is just a short partition on both directions.
    kPartition = 2,
  };

  int src = 0;
  int dst = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  Kind kind = Kind::kDelay;
  double delay_min_us = 0.0;  // kDelay
  double delay_max_us = 0.0;  // kDelay
  double drop_p = 0.0;        // kDrop
  double penalty_ms = 50.0;   // kDrop: per-drop retransmission penalty
  bool loss = false;          // kDrop: visible fail-stop drop instead
};

inline const char* FaultKindName(FaultEpisode::Kind k) {
  switch (k) {
    case FaultEpisode::Kind::kDelay: return "delay";
    case FaultEpisode::Kind::kDrop: return "drop";
    case FaultEpisode::Kind::kPartition: return "partition";
  }
  return "?";
}

/// Configuration of the fault-injection decorator (net/fault_transport.h).
/// When `enabled`, MakeTransport wraps the selected substrate in a
/// FaultTransport executing `episodes`; with no episodes the wrapper is a
/// pass-through that still honors the full Transport contract.
struct FaultOptions {
  bool enabled = false;
  /// Seeds the per-link RNG streams (drop coin flips, delay jitter); the
  /// same seed and schedule reproduce the same fault behavior.
  uint64_t seed = 1;
  /// Absolute monotonic-clock origin of the schedule windows (NowNanos
  /// units); 0 means "this transport's Start() time".  Multi-process
  /// drivers stamp this before forking so all processes agree.
  uint64_t origin_ns = 0;
  std::vector<FaultEpisode> episodes;
};

/// Everything needed to build a Transport; engines construct this from
/// their options and hand it to MakeTransport().
struct TransportConfig {
  TransportKind kind = TransportKind::kSim;
  SimNetOptions sim;
  TcpNetOptions tcp;
  FaultOptions fault;
};

/// The message substrate every engine runs on.  Two implementations:
///
///  * SimTransport (net/fabric.h) — the in-process simulated fabric with an
///    explicit latency/bandwidth model; the default, and what every figure
///    reproduction uses.
///  * TcpTransport (net/tcp_transport.h) — real nonblocking sockets, so the
///    same engines run as separate OS processes over localhost or a LAN.
///
/// Contract shared by both (and machine-checked by the transport
/// conformance suite in tests/transport_conformance_test.cc):
///
///  * Per-(src, dst) FIFO: messages between one ordered endpoint pair are
///    delivered in send order.  Operation replication in the partitioned
///    phase relies on this (Section 5).
///  * Fail-stop drops: Send() to or from a down endpoint returns false, the
///    message is dropped (payload recycled) and counted in dropped_*();
///    bringing an endpoint back up never resurrects dropped messages.
///  * Poll() on a down endpoint returns false.
///  * Payload recycling: accepted payloads circulate through payload_pool()
///    so the steady-state send/receive path does not heap-allocate.
///  * Byte accounting: total_bytes()/total_messages() count egress accepted
///    by Send(), including framing overhead.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Brings the substrate up (bind/listen/connect for TCP; no-op for the
  /// sim).  Must be called before the first Send().  Returns false when the
  /// substrate cannot start (e.g. a listen port is taken).
  virtual bool Start() { return true; }

  /// Tears the substrate down; pending outbound bytes are flushed on a best
  /// effort basis first.
  virtual void Stop() {}

  /// Queues a message for delivery.  The return value reports whether the
  /// transport accepted it; rejected messages (fail-stop peer, dead link)
  /// are counted in dropped_messages()/dropped_bytes() and their payload is
  /// recycled, so senders can keep delivery accounting exact.
  virtual bool Send(Message&& m) = 0;

  /// Retrieves one ready message for local endpoint `dst`.  Returns false
  /// if nothing is deliverable (or `dst` is down).
  virtual bool Poll(int dst, Message* out) = 0;

  /// True if any message is queued (ready or in flight) for `dst`.  For the
  /// TCP transport this covers parsed inbound frames only, not bytes still
  /// in kernel buffers.
  virtual bool HasTraffic(int dst) const = 0;

  /// Fail-stop injection: while down, an endpoint sends and receives
  /// nothing.  Bringing it back up does not resurrect dropped messages.
  virtual void SetDown(int endpoint, bool down) = 0;
  virtual bool IsDown(int endpoint) const = 0;

  // --- accounting ---
  virtual uint64_t total_bytes() const = 0;
  virtual uint64_t total_messages() const = 0;
  virtual uint64_t dropped_bytes() const = 0;
  virtual uint64_t dropped_messages() const = 0;
  virtual void ResetStats() = 0;

  /// Shared payload recycler (see PayloadPool).  Senders acquire their
  /// batch buffers here; endpoints return payloads after delivery.
  virtual PayloadPool& payload_pool() = 0;

  virtual int endpoints() const = 0;
  virtual TransportKind kind() const = 0;
};

/// Builds the transport selected by `config.kind` with `endpoints` endpoint
/// slots.  The caller owns the result and must call Start() before use.
std::unique_ptr<Transport> MakeTransport(int endpoints,
                                         const TransportConfig& config);

}  // namespace star::net

#endif  // STAR_NET_TRANSPORT_H_
