#include "net/fault_transport.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace star::net {

FaultTransport::FaultTransport(std::unique_ptr<Transport> inner,
                               const FaultOptions& options)
    : inner_(std::move(inner)),
      options_(options),
      links_(static_cast<size_t>(inner_->endpoints()) *
             static_cast<size_t>(inner_->endpoints())),
      held_for_dst_(static_cast<size_t>(inner_->endpoints())) {
  for (auto& h : held_for_dst_) h.store(0, std::memory_order_relaxed);
  const int n = inner_->endpoints();
  for (uint32_t i = 0; i < options_.episodes.size(); ++i) {
    const FaultEpisode& e = options_.episodes[i];
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n) continue;
    LinkState& link = LinkFor(e.src, e.dst);
    SpinLockGuard g(link.mu);  // construction-time; satisfies the analysis
    link.episodes.push_back(i);
  }
  // One RNG stream per link, derived from the schedule seed and the link
  // coordinates, so a seed replays identically no matter how threads
  // interleave across links.
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      LinkState& link = LinkFor(s, d);
      SpinLockGuard g(link.mu);
      link.rng.Seed(options_.seed ^
                    (static_cast<uint64_t>(s) * 0x9E3779B97F4A7C15ull +
                     static_cast<uint64_t>(d) * 0xC2B2AE3D27D4EB4Full + 1));
    }
  }
}

FaultTransport::~FaultTransport() {
  running_.store(false, std::memory_order_release);
  if (pacer_.joinable()) pacer_.join();
}

bool FaultTransport::Start() {
  uint64_t origin =
      options_.origin_ns != 0 ? options_.origin_ns : NowNanos();
  origin_ns_.store(origin, std::memory_order_release);
  if (!inner_->Start()) return false;
  if (!options_.episodes.empty()) {
    running_.store(true, std::memory_order_release);
    pacer_ = std::thread([this] { PacerLoop(); });
  }
  return true;
}

void FaultTransport::Stop() {
  running_.store(false, std::memory_order_release);
  if (pacer_.joinable()) pacer_.join();
  // Best-effort flush: release everything still held, in link order, so the
  // inner Stop() sees (and flushes) the full backlog.  Messages to a peer
  // that went down get dropped by the inner fail-stop accounting, exactly as
  // an undelayed send would.
  for (auto& link : links_) {
    SpinLockGuard g(link.mu);
    while (!link.q.empty()) {
      Message m = std::move(link.q.front().m);
      link.q.pop_front();
      int dst = m.dst;
      inner_->Send(std::move(m));
      held_for_dst_[static_cast<size_t>(dst)].fetch_sub(
          1, std::memory_order_acq_rel);
      held_total_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  inner_->Stop();
}

bool FaultTransport::EvalEpisodes(LinkState& link, uint64_t now,
                                  uint64_t* delay_ns) {
  const uint64_t origin = origin_ns_.load(std::memory_order_acquire);
  const double elapsed_ms =
      (static_cast<double>(now) - static_cast<double>(origin)) / 1e6;
  uint64_t delay = 0;
  for (uint32_t idx : link.episodes) {
    const FaultEpisode& e = options_.episodes[idx];
    if (elapsed_ms < e.start_ms || elapsed_ms >= e.end_ms) continue;
    switch (e.kind) {
      case FaultEpisode::Kind::kDelay: {
        double us = e.delay_min_us +
                    (e.delay_max_us - e.delay_min_us) * link.rng.NextDouble();
        delay += MicrosToNanos(us);
        break;
      }
      case FaultEpisode::Kind::kDrop: {
        if (link.rng.Flip(e.drop_p)) {
          if (e.loss) return false;
          // Retransmission model: the "lost" message is still delivered,
          // after an RTO-like penalty — what packet loss does to TCP.
          delay += MillisToNanos(e.penalty_ms);
        }
        break;
      }
      case FaultEpisode::Kind::kPartition: {
        // Dead directed link: hold until the window closes.
        uint64_t end_ns = origin + MillisToNanos(e.end_ms);
        if (end_ns > now) delay = std::max(delay, end_ns - now);
        break;
      }
    }
  }
  *delay_ns = delay;
  return true;
}

bool FaultTransport::Send(Message&& m) {
  LinkState& link = LinkFor(m.src, m.dst);
  if (link.episodes.empty()) return inner_->Send(std::move(m));
  // Down endpoints keep fail-stop semantics: forward so the inner transport
  // rejects, counts and recycles exactly as it would without the decorator.
  if (inner_->IsDown(m.src) || inner_->IsDown(m.dst)) {
    return inner_->Send(std::move(m));
  }
  const uint64_t now = NowNanos();
  SpinLockGuard g(link.mu);
  uint64_t delay = 0;
  if (!EvalEpisodes(link, now, &delay)) {
    loss_bytes_.fetch_add(m.payload.size(), std::memory_order_relaxed);
    loss_messages_.fetch_add(1, std::memory_order_relaxed);
    inner_->payload_pool().Release(m.src, std::move(m.payload));
    return false;
  }
  if (delay == 0 && link.q.empty()) {
    // Undelayed and nothing held ahead of it: straight through.  Done under
    // the link lock so a racing delayed send cannot overtake (per-link FIFO).
    return inner_->Send(std::move(m));
  }
  uint64_t release = now + delay;
  // Monotone release stamps per link: a later send never releases before an
  // earlier one, so delivery order within the link is preserved.
  if (release < link.last_release) release = link.last_release;
  link.last_release = release;
  const int dst = m.dst;
  link.q.push_back(Held{release, std::move(m)});
  held_for_dst_[static_cast<size_t>(dst)].fetch_add(1,
                                                    std::memory_order_acq_rel);
  held_total_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

uint64_t FaultTransport::PumpAll() {
  uint64_t released = 0;
  const uint64_t now = NowNanos();
  for (auto& link : links_) {
    if (held_total_.load(std::memory_order_acquire) == 0) break;
    if (link.episodes.empty()) continue;  // never holds anything
    SpinLockGuard g(link.mu);
    while (!link.q.empty() && link.q.front().release_at <= now) {
      Message m = std::move(link.q.front().m);
      link.q.pop_front();
      const int dst = m.dst;
      // A rejection here (peer went down while the message was held) lands
      // in the inner fail-stop accounting, same as an undelayed send.
      inner_->Send(std::move(m));
      held_for_dst_[static_cast<size_t>(dst)].fetch_sub(
          1, std::memory_order_acq_rel);
      held_total_.fetch_sub(1, std::memory_order_acq_rel);
      ++released;
    }
  }
  return released;
}

void FaultTransport::PacerLoop() {
  // Held messages must progress even when their destination lives in another
  // process (nobody polls it locally), so a dedicated pacer re-injects due
  // messages.  100 us resolution is far below any injected delay.
  while (running_.load(std::memory_order_acquire)) {
    if (held_total_.load(std::memory_order_acquire) != 0) PumpAll();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

bool FaultTransport::Poll(int dst, Message* out) {
  return inner_->Poll(dst, out);
}

bool FaultTransport::HasTraffic(int dst) const {
  // Held traffic counts: engine shutdown drains on HasTraffic and must not
  // declare the network quiet while the fault layer still holds messages.
  return held_for_dst_[static_cast<size_t>(dst)].load(
             std::memory_order_acquire) != 0 ||
         inner_->HasTraffic(dst);
}

}  // namespace star::net
