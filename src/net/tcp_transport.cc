#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "net/fabric.h"
#include "net/fault_transport.h"

namespace star::net {

namespace {

void EncodeHeader(char* hdr, const Message& m) {
  uint32_t len = static_cast<uint32_t>(m.payload.size());
  int32_t src = m.src, dst = m.dst;
  uint16_t type = static_cast<uint16_t>(m.type);
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &src, 4);
  std::memcpy(hdr + 8, &dst, 4);
  std::memcpy(hdr + 12, &type, 2);
  std::memcpy(hdr + 14, &m.flags, 2);
  std::memcpy(hdr + 16, &m.rpc_id, 8);
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(int endpoints, const TcpNetOptions& options)
    : endpoints_(endpoints),
      opts_(options),
      is_local_(endpoints, options.local_endpoints.empty()),
      ports_(endpoints, 0),
      out_conn_(static_cast<size_t>(endpoints) * endpoints),
      in_conn_(static_cast<size_t>(endpoints) * endpoints),
      retry_at_(static_cast<size_t>(endpoints) * endpoints, 0),
      inbound_(endpoints),
      down_(endpoints) {
  for (int e : opts_.local_endpoints) {
    if (e >= 0 && e < endpoints_) is_local_[e] = true;
  }
  for (auto& d : down_) d.store(false, std::memory_order_relaxed);
  for (int i = 0; i < endpoints_; ++i) {
    if (opts_.base_port != 0) ports_[i] = opts_.base_port + i;
  }
}

TcpTransport::~TcpTransport() { Stop(); }

bool TcpTransport::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  bool all_local = true;
  for (int i = 0; i < endpoints_; ++i) all_local &= is_local_[i];
  if (opts_.base_port == 0 && !all_local) {
    std::fprintf(stderr,
                 "[tcp] base_port=0 (ephemeral) requires all endpoints "
                 "local\n");
    return false;
  }

  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) return false;

  for (int i = 0; i < endpoints_; ++i) {
    if (!is_local_[i]) continue;
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(ports_[i]));
    if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      std::fprintf(stderr, "[tcp] bad host %s\n", opts_.host.c_str());
      return false;
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, 128) != 0) {
      std::fprintf(stderr, "[tcp] cannot listen on %s:%d for endpoint %d: %s\n",
                   opts_.host.c_str(), ports_[i], i, std::strerror(errno));
      close(fd);
      return false;
    }
    ::sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    ports_[i] = ntohs(bound.sin_port);
    SetNonBlocking(fd);

    auto l = std::make_unique<Listener>();
    l->is_listener = true;
    l->fd = fd;
    l->endpoint = i;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = static_cast<Pollable*>(l.get());
    epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    listeners_.push_back(std::move(l));
  }

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return true;
}

void TcpTransport::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (io_thread_.joinable()) io_thread_.join();

  // Best-effort flush of outbound backlogs (e.g. a node's final shutdown
  // response) before tearing sockets down.
  uint64_t deadline = NowNanos() + MillisToNanos(200);
  std::vector<std::shared_ptr<Conn>> conns;
  {
    MutexLock g(conns_mu_);
    conns = all_conns_;
  }
  for (auto& sp : conns) {
    Conn* c = sp.get();
    MutexLock g(c->mu);
    while (c->fd >= 0 && c->backlog_bytes() > 0 && NowNanos() < deadline) {
      ssize_t w = send(c->fd, c->out_buf.data() + c->out_off,
                       c->backlog_bytes(), MSG_NOSIGNAL);
      if (w > 0) {
        c->out_off += static_cast<size_t>(w);
      } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{c->fd, POLLOUT, 0};
        poll(&p, 1, 10);
      } else {
        break;
      }
    }
    if (c->fd >= 0) {
      int fd = c->fd;
      c->fd = -1;
      c->dead.store(true, std::memory_order_release);
      close(fd);
    }
  }
  for (auto& l : listeners_) {
    if (l->fd >= 0) close(l->fd);
    l->fd = -1;
  }
  listeners_.clear();
  {
    MutexLock g(conns_mu_);
    all_conns_.clear();
    std::fill(out_conn_.begin(), out_conn_.end(), nullptr);
    std::fill(in_conn_.begin(), in_conn_.end(), nullptr);
  }
  if (epfd_ >= 0) close(epfd_);
  epfd_ = -1;
}

bool TcpTransport::PeerAddr(int dst, ::sockaddr_in* out) const {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(ports_[dst]));
  return ports_[dst] != 0 &&
         inet_pton(AF_INET, opts_.host.c_str(), &out->sin_addr) == 1;
}

void TcpTransport::DropSend(int src_hint, size_t frame_bytes,
                            std::string&& payload) {
  dropped_bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
  dropped_messages_.fetch_add(1, std::memory_order_relaxed);
  pool_.Release(src_hint, std::move(payload));
}

std::shared_ptr<TcpTransport::Conn> TcpTransport::GetOrConnect(int src,
                                                               int dst) {
  size_t slot = static_cast<size_t>(src) * endpoints_ + dst;
  MutexLock g(conns_mu_);
  std::shared_ptr<Conn>& cur = out_conn_[slot];
  if (cur != nullptr && !cur->dead.load(std::memory_order_acquire)) {
    return cur;
  }
  uint64_t now = NowNanos();
  if (now < retry_at_[slot]) return nullptr;

  ::sockaddr_in addr;
  if (!PeerAddr(dst, &addr)) return nullptr;
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  SetNoDelay(fd);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    close(fd);
    retry_at_[slot] = now + MicrosToNanos(opts_.connect_retry_ms * 1000.0);
    return nullptr;
  }

  auto sp = std::make_shared<Conn>();
  Conn* c = sp.get();
  {
    // The Conn is unpublished here; the lock exists for the analysis.
    MutexLock init(c->mu);
    c->fd = fd;
    c->src.store(src, std::memory_order_relaxed);
    c->dst.store(dst, std::memory_order_relaxed);
    c->outgoing = true;
    c->hs_done = true;  // this direction only sends; no inbound handshake
    // Queue the handshake as the first bytes on the wire; it is flushed by
    // the epoll thread once the connect completes (EPOLLOUT).
    char hs[kHandshakeSize];
    uint32_t magic = kMagic;
    int32_t s = src, d = dst;
    std::memcpy(hs, &magic, 4);
    std::memcpy(hs + 4, &s, 4);
    std::memcpy(hs + 8, &d, 4);
    c->out_buf.append(hs, kHandshakeSize);
    c->out_frames.emplace_back(kHandshakeSize, false);
    c->want_write = true;
  }

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.ptr = static_cast<Pollable*>(c);
  epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);

  cur = sp;
  all_conns_.push_back(sp);
  return sp;
}

void TcpTransport::ArmWriteLocked(Conn* c) {
  if (c->want_write || c->fd < 0) return;
  c->want_write = true;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.ptr = static_cast<Pollable*>(c);
  epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void TcpTransport::DisarmWriteLocked(Conn* c) {
  if (!c->want_write || c->fd < 0) return;
  c->want_write = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = static_cast<Pollable*>(c);
  epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void TcpTransport::CloseConn(Conn* c, bool throttle_reconnect) {
  uint64_t lost_msgs = 0, lost_bytes = 0;
  {
    MutexLock g(c->mu);
    if (c->dead.load(std::memory_order_acquire)) return;
    c->dead.store(true, std::memory_order_release);
    if (c->fd >= 0) {
      int fd = c->fd;
      c->fd = -1;
      epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
      close(fd);
    }
    lost_bytes = c->backlog_bytes();
    for (auto& [len, is_msg] : c->out_frames) {
      (void)len;
      if (is_msg) ++lost_msgs;
    }
    c->out_buf.clear();
    c->out_off = 0;
    c->out_frames.clear();
    // A half-read inbound frame dies with the connection; recycle its
    // partially-filled payload buffer.
    if (c->in_body) {
      pool_.Release(c->dst.load(std::memory_order_relaxed),
                    std::move(c->in_msg.payload));
      c->in_body = false;
    }
  }
  dropped_messages_.fetch_add(lost_msgs, std::memory_order_relaxed);
  dropped_bytes_.fetch_add(lost_bytes, std::memory_order_relaxed);

  MutexLock g(conns_mu_);
  const int csrc = c->src.load(std::memory_order_relaxed);
  const int cdst = c->dst.load(std::memory_order_relaxed);
  if (csrc >= 0 && cdst >= 0) {
    size_t slot = static_cast<size_t>(csrc) * endpoints_ + cdst;
    if (c->outgoing) {
      if (out_conn_[slot].get() == c) out_conn_[slot] = nullptr;
      if (throttle_reconnect) {
        retry_at_[slot] =
            NowNanos() + MicrosToNanos(opts_.connect_retry_ms * 1000.0);
      }
    } else {
      if (in_conn_[slot].get() == c) in_conn_[slot] = nullptr;
    }
  }
}

bool TcpTransport::Send(Message&& m) {
  const int src = m.src, dst = m.dst;
  const size_t frame_len = kHeaderSize + m.payload.size();
  if (src < 0 || src >= endpoints_ || dst < 0 || dst >= endpoints_ ||
      !is_local_[src]) {
    DropSend(src < 0 ? 0 : src, frame_len, std::move(m.payload));
    return false;
  }
  if (down_[src].load(std::memory_order_acquire) ||
      down_[dst].load(std::memory_order_acquire)) {
    DropSend(src, frame_len, std::move(m.payload));
    return false;
  }
  m.deliver_at = NowNanos();

  if (src == dst) {
    // Loopback within one endpoint: no self-connection, deliver directly.
    bytes_.fetch_add(frame_len, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
    DstQueue& q = inbound_[dst];
    SpinLockGuard g(q.mu);
    q.q.push_back(std::move(m));
    q.pending.fetch_add(1, std::memory_order_release);
    return true;
  }

  std::shared_ptr<Conn> conn = GetOrConnect(src, dst);
  if (conn == nullptr) {
    DropSend(src, frame_len, std::move(m.payload));
    return false;
  }
  Conn* c = conn.get();

  char hdr[kHeaderSize];
  EncodeHeader(hdr, m);
  bool close_it = false;
  {
    MutexLock g(c->mu);
    if (c->dead.load(std::memory_order_acquire) || c->fd < 0) {
      DropSend(src, frame_len, std::move(m.payload));
      return false;
    }
    if (c->backlog_bytes() + frame_len > opts_.max_frame_bytes) {
      // Backlog cap: a receiver this far behind is as good as dead under
      // the fail-stop model; drop rather than grow without bound.
      DropSend(src, frame_len, std::move(m.payload));
      return false;
    }
    size_t written = 0;
    if (c->ready && c->backlog_bytes() == 0) {
      // Fast path: scatter-gather the header and the payload straight to
      // the kernel, no intermediate copy of the batch bytes.
      iovec iov[2];
      iov[0] = {hdr, kHeaderSize};
      iov[1] = {const_cast<char*>(m.payload.data()), m.payload.size()};
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = m.payload.empty() ? 1 : 2;
      ssize_t w = sendmsg(c->fd, &mh, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          close_it = true;
        }
        w = 0;
      }
      written = static_cast<size_t>(w);
    }
    if (close_it) {
      // fallthrough: close below, count this message as dropped.
    } else if (written < frame_len) {
      size_t hdr_done = written < kHeaderSize ? written : kHeaderSize;
      size_t pay_done = written - hdr_done;
      c->out_buf.append(hdr + hdr_done, kHeaderSize - hdr_done);
      c->out_buf.append(m.payload.data() + pay_done,
                        m.payload.size() - pay_done);
      c->out_frames.emplace_back(frame_len - written, true);
      ArmWriteLocked(c);
    }
  }
  if (close_it) {
    CloseConn(c, /*throttle_reconnect=*/true);
    DropSend(src, frame_len, std::move(m.payload));
    return false;
  }
  bytes_.fetch_add(frame_len, std::memory_order_relaxed);
  messages_.fetch_add(1, std::memory_order_relaxed);
  pool_.Release(src, std::move(m.payload));
  return true;
}

bool TcpTransport::Poll(int dst, Message* out) {
  if (down_[dst].load(std::memory_order_acquire)) return false;
  DstQueue& q = inbound_[dst];
  if (q.pending.load(std::memory_order_acquire) == 0) return false;
  SpinLockGuard g(q.mu);
  if (q.q.empty()) return false;
  *out = std::move(q.q.front());
  q.q.pop_front();
  q.pending.fetch_sub(1, std::memory_order_release);
  return true;
}

bool TcpTransport::HasTraffic(int dst) const {
  return inbound_[dst].pending.load(std::memory_order_acquire) != 0;
}

void TcpTransport::SetDown(int endpoint, bool down) {
  down_[endpoint].store(down, std::memory_order_release);
  if (down) {
    // Cut existing links to/from the endpoint; their backlogs count as
    // dropped (fail-stop).  New sends are rejected by the down_ check.
    std::vector<std::shared_ptr<Conn>> victims;
    {
      MutexLock g(conns_mu_);
      for (auto& c : all_conns_) {
        if (c != nullptr && !c->dead.load(std::memory_order_acquire) &&
            (c->src.load(std::memory_order_relaxed) == endpoint ||
             c->dst.load(std::memory_order_relaxed) == endpoint)) {
          victims.push_back(c);
        }
      }
    }
    for (auto& c : victims) CloseConn(c.get(), /*throttle_reconnect=*/false);
  } else {
    // Re-admitted (rejoin): allow immediate reconnects.
    MutexLock g(conns_mu_);
    for (int other = 0; other < endpoints_; ++other) {
      retry_at_[static_cast<size_t>(other) * endpoints_ + endpoint] = 0;
      retry_at_[static_cast<size_t>(endpoint) * endpoints_ + other] = 0;
    }
  }
}

void TcpTransport::AcceptConns(Listener* l) {
  for (;;) {
    int fd = accept4(l->fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    SetNoDelay(fd);
    auto c = std::make_shared<Conn>();
    {
      // Unpublished Conn; the lock exists for the analysis.
      MutexLock init(c->mu);
      c->fd = fd;  // src/dst unknown until the handshake arrives
    }
    {
      MutexLock g(conns_mu_);
      all_conns_.push_back(c);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = static_cast<Pollable*>(c.get());
    epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpTransport::DeliverLocked(Conn* c) {
  Message m = std::move(c->in_msg);
  c->in_msg = Message();
  m.deliver_at = NowNanos();
  int dst = m.dst;
  if (dst < 0 || dst >= endpoints_ || !is_local_[dst]) {
    const int hint = c->dst.load(std::memory_order_relaxed);
    pool_.Release(hint < 0 ? 0 : hint, std::move(m.payload));
    dropped_messages_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  DstQueue& q = inbound_[dst];
  SpinLockGuard g(q.mu);
  q.q.push_back(std::move(m));
  q.pending.fetch_add(1, std::memory_order_release);
}

void TcpTransport::ReadConn(Conn* c) {
  bool close_it = false;
  std::shared_ptr<Conn> replaced;
  {
    MutexLock g(c->mu);
    if (c->dead.load(std::memory_order_acquire) || c->fd < 0) return;
    // Bound the work per wakeup so one firehose connection cannot starve
    // the rest; level-triggered epoll re-fires for the remainder.
    for (int frames = 0; frames < 64 && !close_it;) {
      if (!c->hs_done) {
        ssize_t r = read(c->fd, c->hs + c->hs_have,
                         kHandshakeSize - c->hs_have);
        if (r <= 0) {
          if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            close_it = true;
          }
          break;
        }
        c->hs_have += static_cast<size_t>(r);
        if (c->hs_have < kHandshakeSize) continue;
        uint32_t magic;
        int32_t src, dst;
        std::memcpy(&magic, c->hs, 4);
        std::memcpy(&src, c->hs + 4, 4);
        std::memcpy(&dst, c->hs + 8, 4);
        if (magic != kMagic || src < 0 || src >= endpoints_ || dst < 0 ||
            dst >= endpoints_ || !is_local_[dst]) {
          close_it = true;
          break;
        }
        c->src.store(src, std::memory_order_relaxed);
        c->dst.store(dst, std::memory_order_relaxed);
        c->hs_done = true;
        // A fresh handshake for a pair replaces any stale connection from
        // a previous peer incarnation: its unread bytes must not
        // resurrect after the restart.
        size_t slot = static_cast<size_t>(src) * endpoints_ + dst;
        MutexLock cg(conns_mu_);
        replaced = in_conn_[slot];
        in_conn_[slot] = c->shared_from_this();
        continue;
      }
      if (!c->in_body) {
        ssize_t r =
            read(c->fd, c->hdr + c->hdr_have, kHeaderSize - c->hdr_have);
        if (r <= 0) {
          if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            close_it = true;
          }
          break;
        }
        c->hdr_have += static_cast<size_t>(r);
        if (c->hdr_have < kHeaderSize) continue;
        uint32_t len;
        int32_t src, dst;
        uint16_t type;
        std::memcpy(&len, c->hdr, 4);
        std::memcpy(&src, c->hdr + 4, 4);
        std::memcpy(&dst, c->hdr + 8, 4);
        std::memcpy(&type, c->hdr + 12, 2);
        std::memcpy(&c->in_msg.flags, c->hdr + 14, 2);
        std::memcpy(&c->in_msg.rpc_id, c->hdr + 16, 8);
        if (len > opts_.max_frame_bytes) {
          close_it = true;
          break;
        }
        c->in_msg.src = src;
        c->in_msg.dst = dst;
        c->in_msg.type = static_cast<MsgType>(type);
        c->in_msg.payload =
            pool_.Acquire(c->dst.load(std::memory_order_relaxed));
        c->in_msg.payload.resize(len);
        c->body_len = len;
        c->body_have = 0;
        c->in_body = true;
        c->hdr_have = 0;
      }
      if (c->body_have < c->body_len) {
        ssize_t r = read(c->fd, c->in_msg.payload.data() + c->body_have,
                         c->body_len - c->body_have);
        if (r <= 0) {
          if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            close_it = true;
          }
          break;
        }
        c->body_have += static_cast<size_t>(r);
      }
      if (c->body_have == c->body_len) {
        c->in_body = false;
        DeliverLocked(c);
        ++frames;
      }
    }
  }
  if (replaced != nullptr && replaced.get() != c) {
    CloseConn(replaced.get(), /*throttle_reconnect=*/false);
  }
  if (close_it) CloseConn(c, /*throttle_reconnect=*/true);
}

void TcpTransport::FlushConn(Conn* c) {
  bool close_it = false;
  {
    MutexLock g(c->mu);
    if (c->dead.load(std::memory_order_acquire) || c->fd < 0) return;
    if (!c->ready && c->outgoing) {
      int err = 0;
      socklen_t elen = sizeof(err);
      getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &elen);
      if (err != 0) {
        close_it = true;
      } else {
        c->ready = true;
      }
    }
    while (!close_it && c->backlog_bytes() > 0) {
      ssize_t w = send(c->fd, c->out_buf.data() + c->out_off,
                       c->backlog_bytes(), MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_it = true;
        break;
      }
      c->out_off += static_cast<size_t>(w);
      size_t consumed = static_cast<size_t>(w);
      while (consumed > 0 && !c->out_frames.empty()) {
        auto& [len, is_msg] = c->out_frames.front();
        (void)is_msg;
        size_t take = len < consumed ? len : consumed;
        len -= take;
        consumed -= take;
        if (len == 0) c->out_frames.pop_front();
      }
    }
    if (!close_it && c->backlog_bytes() == 0) {
      c->out_buf.clear();
      c->out_off = 0;
      DisarmWriteLocked(c);
    } else if (!close_it && c->out_off > (1u << 20)) {
      // Sustained partial backlog: reclaim the consumed prefix, or the
      // buffer grows by the whole traffic volume of a busy stretch (the
      // cap in Send() measures backlog_bytes(), not raw buffer size).
      c->out_buf.erase(0, c->out_off);
      c->out_off = 0;
    }
  }
  if (close_it) CloseConn(c, /*throttle_reconnect=*/true);
}

void TcpTransport::IoLoop() {
  epoll_event evs[64];
  while (running_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epfd_, evs, 64, 20 /*ms*/);
    for (int i = 0; i < n; ++i) {
      Pollable* p = static_cast<Pollable*>(evs[i].data.ptr);
      if (p->is_listener) {
        AcceptConns(static_cast<Listener*>(p));
        continue;
      }
      // Conn objects live until Stop() (which joins this thread first), so
      // the raw pointer in the event payload is always valid; a stale
      // event for a closed connection is ignored via the dead flag.
      Conn* c = static_cast<Conn*>(p);
      if ((evs[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        // Drain what is readable first (a peer that wrote then closed),
        // then tear the connection down.
        if ((evs[i].events & EPOLLIN) != 0) ReadConn(c);
        CloseConn(c, /*throttle_reconnect=*/true);
        continue;
      }
      if ((evs[i].events & EPOLLOUT) != 0) FlushConn(c);
      if ((evs[i].events & EPOLLIN) != 0) ReadConn(c);
    }
  }
}

std::unique_ptr<Transport> MakeTransport(int endpoints,
                                         const TransportConfig& config) {
  std::unique_ptr<Transport> t;
  if (config.kind == TransportKind::kTcp) {
    t = std::make_unique<TcpTransport>(endpoints, config.tcp);
  } else {
    t = std::make_unique<Fabric>(endpoints, config.sim);
  }
  if (config.fault.enabled) {
    t = std::make_unique<FaultTransport>(std::move(t), config.fault);
  }
  return t;
}

}  // namespace star::net
