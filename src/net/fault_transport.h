#ifndef STAR_NET_FAULT_TRANSPORT_H_
#define STAR_NET_FAULT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/payload_pool.h"
#include "net/transport.h"

namespace star::net {

/// Deterministic network-fault injection as a Transport decorator: wraps any
/// substrate (sim or TCP) and executes a seeded schedule of per-directed-link
/// FaultEpisodes — delivery delay/jitter, probabilistic and burst drops,
/// asymmetric partitions and connection flaps (see FaultEpisode in
/// net/transport.h for the fault classes and their semantics).
///
/// Design: faults never reorder a link.  A message that must be delayed goes
/// into the link's hold queue stamped with a release time that is clamped to
/// be monotone per link, and while a link holds anything, every later send on
/// that link queues behind it — so the per-(src, dst) FIFO contract the
/// replication protocol depends on survives arbitrary schedules.  A drop (in
/// the default retransmission model) is just a large delay: that mirrors what
/// packet loss does to a TCP link and keeps one-way replication lossless,
/// which is a correctness requirement — the sender's fence accounting only
/// counts batches the transport accepted, and an accepted-then-lost batch
/// would diverge replicas silently.  Visible fail-stop drops (Send() ->
/// false) are available per episode via `loss` for request/response traffic.
///
/// Held messages are re-injected into the inner transport by a pacer thread
/// (~100 us tick), so delivery progresses even when the destination lives in
/// another process and nobody locally polls it.  If the inner transport
/// refuses a released message (endpoint went down meanwhile), the inner
/// fail-stop accounting applies, same as an undelayed send.
///
/// With no episodes every call forwards straight to the inner transport;
/// the pass-through configuration is held to the full Transport contract by
/// the conformance suite (tests/transport_conformance_test.cc).
class FaultTransport : public Transport {
 public:
  FaultTransport(std::unique_ptr<Transport> inner, const FaultOptions& options);
  ~FaultTransport() override;

  bool Start() override;
  void Stop() override;

  bool Send(Message&& m) override;
  bool Poll(int dst, Message* out) override;
  bool HasTraffic(int dst) const override;

  void SetDown(int endpoint, bool down) override {
    inner_->SetDown(endpoint, down);
  }
  bool IsDown(int endpoint) const override { return inner_->IsDown(endpoint); }

  uint64_t total_bytes() const override { return inner_->total_bytes(); }
  uint64_t total_messages() const override { return inner_->total_messages(); }
  uint64_t dropped_bytes() const override {
    return inner_->dropped_bytes() +
           loss_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_messages() const override {
    return inner_->dropped_messages() +
           loss_messages_.load(std::memory_order_relaxed);
  }
  void ResetStats() override {
    inner_->ResetStats();
    loss_bytes_.store(0, std::memory_order_relaxed);
    loss_messages_.store(0, std::memory_order_relaxed);
  }

  PayloadPool& payload_pool() override { return inner_->payload_pool(); }
  int endpoints() const override { return inner_->endpoints(); }
  TransportKind kind() const override { return inner_->kind(); }

  Transport& inner() { return *inner_; }
  /// Messages currently held by the fault layer (all links).
  uint64_t held_messages() const {
    return held_total_.load(std::memory_order_acquire);
  }

 private:
  struct Held {
    uint64_t release_at = 0;
    Message m;
  };

  /// Per directed link: hold queue, monotone release clock, and the link's
  /// private RNG stream (drop flips, jitter) so schedules replay exactly
  /// regardless of cross-link interleaving.
  struct LinkState {
    SpinLock mu;
    std::deque<Held> q STAR_GUARDED_BY(mu);
    uint64_t last_release STAR_GUARDED_BY(mu) = 0;
    Rng rng STAR_GUARDED_BY(mu);
    /// Indices into options_.episodes that target this link (immutable after
    /// construction; empty for the vast majority of links).
    std::vector<uint32_t> episodes;
  };

  LinkState& LinkFor(int src, int dst) {
    return links_[static_cast<size_t>(src) *
                      static_cast<size_t>(inner_->endpoints()) +
                  static_cast<size_t>(dst)];
  }

  /// Evaluates the link's active episodes at `now`.  Returns false when the
  /// message must be visibly dropped; otherwise sets *delay_ns (0 = deliver
  /// immediately, subject to FIFO behind the hold queue).
  bool EvalEpisodes(LinkState& link, uint64_t now, uint64_t* delay_ns)
      STAR_REQUIRES(link.mu);

  /// Re-injects every due held message, in per-link order.  Returns the
  /// number of messages released.
  uint64_t PumpAll();
  void PacerLoop();

  std::unique_ptr<Transport> inner_;
  FaultOptions options_;
  std::vector<LinkState> links_;
  /// Count of held messages destined for each endpoint (HasTraffic must see
  /// held traffic or engine shutdown drains would miss in-flight messages).
  std::vector<std::atomic<uint64_t>> held_for_dst_;
  std::atomic<uint64_t> held_total_{0};
  std::atomic<uint64_t> loss_bytes_{0};
  std::atomic<uint64_t> loss_messages_{0};
  /// Schedule origin (monotonic ns); set at Start() unless options pin it.
  std::atomic<uint64_t> origin_ns_{0};
  std::atomic<bool> running_{false};
  std::thread pacer_;
};

}  // namespace star::net

#endif  // STAR_NET_FAULT_TRANSPORT_H_
