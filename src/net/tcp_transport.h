#ifndef STAR_NET_TCP_TRANSPORT_H_
#define STAR_NET_TCP_TRANSPORT_H_

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/spinlock.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/payload_pool.h"
#include "net/transport.h"

namespace star::net {

/// Real-socket implementation of Transport: nonblocking TCP + epoll, so the
/// same engines that run over the simulated fabric run as separate OS
/// processes over localhost (or a LAN).
///
/// Wire model:
///  * One TCP connection per ordered (src, dst) endpoint pair, established
///    lazily by the first Send and identified by a 12-byte handshake
///    carrying (magic, src, dst).  One connection per direction keeps
///    per-(src, dst) FIFO trivially true and makes reconnection after a
///    process restart unambiguous: a new handshake for an existing pair
///    replaces (and closes) the stale connection, so bytes from a previous
///    incarnation can never resurrect.
///  * Length-prefixed frames: a fixed 24-byte header (payload length, src,
///    dst, type, flags, rpc_id) followed by the payload.  The send path
///    writes header + payload with one scatter-gather sendmsg() straight
///    from the caller's buffer — the payload (serialised in place from the
///    arena-backed write-set views) is never re-copied unless the kernel
///    accepts only part of the frame, in which case the remainder is queued
///    and flushed by the io thread on EPOLLOUT.
///  * The receive path reads the body directly into a payload-pool buffer
///    sized from the header, so a warmed-up receiver does not allocate.
///
/// Threading: Send() runs on the caller (worker/io) thread and performs the
/// socket write itself when the connection is idle; a single background
/// epoll thread handles accepts, connect completions, reads, and backlog
/// flushes.  Parsed messages land in per-destination queues that Poll()
/// drains, mirroring the fabric's interface.
///
/// Fail-stop semantics: Send() to or from an endpoint marked down is
/// dropped at the send side and counted (the receive path is deliberately
/// not filtered by source — a rejoining process is a *new* incarnation and
/// its first messages must get through; engines already ignore data-plane
/// traffic from nodes they consider failed).  Poll() on a down endpoint
/// returns false.  A connection error (peer process died) closes the
/// connection and counts any backlogged frames as dropped; subsequent sends
/// retry the connect with a throttle.
///
/// Caveat vs the sim: a frame accepted by Send() can still die with its
/// connection (backlog dropped on a conn error), so "accepted" is not
/// "delivered" the way it is on the fabric.  Under the fail-stop model a
/// connection error between live peers is indistinguishable from a peer
/// crash, and the system heals through the same machinery: the replication
/// fence stalls on the lost entries, times out, and the view change that
/// evicts the stalled side resets the delivery accounting.  Retransmitting
/// the backlog instead is NOT an option — the head frame may be partially
/// written, and resuming mid-stream would re-order or tear the per-link
/// FIFO that operation replication depends on.
///
/// What this transport does NOT model, by design: the sim's configurable
/// link latency and per-node bandwidth cap.  Figure reproductions therefore
/// keep using SimTransport; this class is the deployment substrate.
class TcpTransport : public Transport {
 public:
  TcpTransport(int endpoints, const TcpNetOptions& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds + listens on every local endpoint's port and starts the epoll
  /// thread.  Returns false if a listen socket cannot be set up (port
  /// taken, bad host) — or if base_port == 0 while some endpoints are
  /// remote (peer ports would be unknowable).
  bool Start() override;

  /// Best-effort flushes pending outbound bytes, then closes every socket
  /// and joins the epoll thread.
  void Stop() override;

  bool Send(Message&& m) override;
  bool Poll(int dst, Message* out) override;
  bool HasTraffic(int dst) const override;

  void SetDown(int endpoint, bool down) override;
  bool IsDown(int endpoint) const override {
    return down_[endpoint].load(std::memory_order_acquire);
  }

  uint64_t total_bytes() const override {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_messages() const override {
    return messages_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_bytes() const override {
    return dropped_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_messages() const override {
    return dropped_messages_.load(std::memory_order_relaxed);
  }
  void ResetStats() override {
    bytes_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
    dropped_bytes_.store(0, std::memory_order_relaxed);
    dropped_messages_.store(0, std::memory_order_relaxed);
  }

  PayloadPool& payload_pool() override { return pool_; }
  int endpoints() const override { return endpoints_; }
  TransportKind kind() const override { return TransportKind::kTcp; }

  /// Actual listen port of local endpoint `i` (interesting when base_port
  /// == 0 picked ephemeral ports).
  int listen_port(int i) const { return ports_[i]; }

  static constexpr size_t kHeaderSize = 24;
  static constexpr size_t kHandshakeSize = 12;
  static constexpr uint32_t kMagic = 0x52415453;  // "STAR" little-endian

 private:
  /// Common base for everything registered with epoll, so event.data.ptr
  /// can be tagged.
  struct Pollable {
    bool is_listener = false;
  };

  struct Listener : Pollable {
    int fd = -1;
    int endpoint = -1;
  };

  /// One direction of one endpoint pair.  All socket operations and state
  /// transitions happen under `mu`; `fd == -1` marks a closed socket (the
  /// fd is invalidated under the lock before close(), so no thread can
  /// write to a recycled descriptor).
  struct Conn : Pollable, std::enable_shared_from_this<Conn> {
    Mutex mu;
    int fd STAR_GUARDED_BY(mu) = -1;
    // src/dst/dead are read by SetDown()'s registry scan (under conns_mu_,
    // not this->mu) while the io thread mutates them under mu — atomics
    // keep that cross-lock-domain traffic defined.
    std::atomic<int> src{-1};
    std::atomic<int> dst{-1};
    std::atomic<bool> dead{false};
    /// Set once before the Conn is published (GetOrConnect/AcceptConns) and
    /// immutable afterwards, so it is readable under either lock domain.
    bool outgoing = false;
    bool ready STAR_GUARDED_BY(mu) = false;       // outgoing: connected
    bool want_write STAR_GUARDED_BY(mu) = false;  // EPOLLOUT armed

    // Outbound backlog (bytes the kernel has not yet accepted).
    std::string out_buf STAR_GUARDED_BY(mu);
    size_t out_off STAR_GUARDED_BY(mu) = 0;
    /// Byte length of each queued frame (second: counts as a dropped
    /// *message* if the connection dies), so drop accounting can translate
    /// a dead backlog back into messages.
    std::deque<std::pair<size_t, bool>> out_frames STAR_GUARDED_BY(mu);

    // Inbound reassembly state machine: handshake -> header -> body.
    char hs[kHandshakeSize] STAR_GUARDED_BY(mu);
    size_t hs_have STAR_GUARDED_BY(mu) = 0;
    bool hs_done STAR_GUARDED_BY(mu) = false;
    char hdr[kHeaderSize] STAR_GUARDED_BY(mu);
    size_t hdr_have STAR_GUARDED_BY(mu) = 0;
    bool in_body STAR_GUARDED_BY(mu) = false;
    size_t body_len STAR_GUARDED_BY(mu) = 0;
    size_t body_have STAR_GUARDED_BY(mu) = 0;
    Message in_msg STAR_GUARDED_BY(mu);

    size_t backlog_bytes() const STAR_REQUIRES(mu) {
      return out_buf.size() - out_off;
    }
  };

  struct alignas(64) DstQueue {
    mutable SpinLock mu;
    std::deque<Message> q STAR_GUARDED_BY(mu);
    std::atomic<uint64_t> pending{0};
  };

  std::shared_ptr<Conn> GetOrConnect(int src, int dst);
  void DropSend(int src_hint, size_t frame_bytes, std::string&& payload);
  void CloseConn(Conn* c, bool throttle_reconnect);
  void ArmWriteLocked(Conn* c) STAR_REQUIRES(c->mu);
  void DisarmWriteLocked(Conn* c) STAR_REQUIRES(c->mu);
  void FlushConn(Conn* c);
  void ReadConn(Conn* c);
  void AcceptConns(Listener* l);
  void DeliverLocked(Conn* c) STAR_REQUIRES(c->mu);
  void IoLoop();
  bool PeerAddr(int dst, ::sockaddr_in* out) const;

  int endpoints_;
  TcpNetOptions opts_;
  std::vector<bool> is_local_;
  std::vector<int> ports_;  // actual listen port per endpoint (0 = unknown)
  std::vector<std::unique_ptr<Listener>> listeners_;

  int epfd_ = -1;
  std::thread io_thread_;
  std::atomic<bool> running_{false};

  /// Registry: all_conns_ owns every Conn ever created (graveyard included,
  /// so epoll data pointers stay valid until Stop); out_conn_/in_conn_ are
  /// the live slots per ordered (src, dst) pair.
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> all_conns_ STAR_GUARDED_BY(conns_mu_);
  std::vector<std::shared_ptr<Conn>> out_conn_ STAR_GUARDED_BY(conns_mu_);
  std::vector<std::shared_ptr<Conn>> in_conn_ STAR_GUARDED_BY(conns_mu_);
  /// Per out slot: no reconnect before this time.
  std::vector<uint64_t> retry_at_ STAR_GUARDED_BY(conns_mu_);

  std::vector<DstQueue> inbound_;
  std::vector<std::atomic<bool>> down_;

  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> dropped_bytes_{0};
  std::atomic<uint64_t> dropped_messages_{0};

  PayloadPool pool_;
};

}  // namespace star::net

#endif  // STAR_NET_TCP_TRANSPORT_H_
