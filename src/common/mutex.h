#ifndef STAR_COMMON_MUTEX_H_
#define STAR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace star {

/// An annotated std::mutex.  libstdc++'s std::mutex carries no thread-safety
/// attributes, so Clang's analysis cannot see acquisitions through it; this
/// wrapper is the capability the analysis tracks.  Control-plane state
/// (mailboxes, connection registries, view application) uses Mutex; short
/// data-plane critical sections use star::SpinLock.
class STAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STAR_ACQUIRE() { mu_.lock(); }
  void Unlock() STAR_RELEASE() { mu_.unlock(); }
  bool TryLock() STAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for CondVar's wait plumbing only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex — the annotated replacement for
/// std::lock_guard/std::unique_lock at every call site in src/.
class STAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STAR_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() STAR_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The wrapped lock, for CondVar's wait plumbing only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with star::Mutex.  Waits release and reacquire
/// the lock internally — invisible to the thread-safety analysis, which
/// treats the capability as continuously held across the wait; that is the
/// standard (and sound) model: the caller owns the lock at every point it
/// can observe.  Prefer deadline loops over predicate lambdas at call
/// sites: the analysis does not propagate capabilities into lambdas, so a
/// guarded-field predicate would need an escape.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.native()); }

  /// Returns false on timeout.
  template <class Rep, class Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.native(), dur) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace star

#endif  // STAR_COMMON_MUTEX_H_
