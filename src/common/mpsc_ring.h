#ifndef STAR_COMMON_MPSC_RING_H_
#define STAR_COMMON_MPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/spinlock.h"

namespace star {

/// Bounded multi-producer / single-consumer ring queue (Vyukov's bounded
/// queue scheme): each cell carries a sequence word, so producers claim
/// slots with one fetch_add and publish with a release store — no producer
/// ever takes a lock, and a full ring is detected without sweeping.
///
/// Used by the replication replay pipeline: io threads (producers) route
/// batch segments to replay workers (one consumer per shard queue).  The
/// bound is the pipeline's backpressure: a producer whose TryPush fails is
/// expected to yield and retry, which throttles inbound replication to the
/// speed the replay workers sustain instead of queueing unbounded memory.
///
/// T must be nothrow-movable.  Capacity is rounded up to a power of two.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side; returns false when the ring is full.
  bool TryPush(T&& v) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      uint64_t seq = c.seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          c.item = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (single consumer); returns false when empty.
  bool TryPop(T* out) {
    uint64_t pos = head_;
    Cell& c = cells_[pos & mask_];
    uint64_t seq = c.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // empty
    }
    *out = std::move(c.item);
    c.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_ = pos + 1;
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> seq{0};
    T item{};
  };

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> tail_{0};  // producers
  alignas(64) uint64_t head_ = 0;              // consumer-private
};

}  // namespace star

#endif  // STAR_COMMON_MPSC_RING_H_
