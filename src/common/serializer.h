#ifndef STAR_COMMON_SERIALIZER_H_
#define STAR_COMMON_SERIALIZER_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace star {

/// Append-only byte buffer used to build network messages and WAL entries.
/// Integers are encoded little-endian fixed-width; blobs are length-prefixed
/// when written via WriteBytes, or raw via WriteRaw when the length is known
/// from the schema.
class WriteBuffer {
 public:
  WriteBuffer() = default;
  explicit WriteBuffer(size_t reserve) { data_.reserve(reserve); }

  template <typename T>
  void Write(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = data_.size();
    data_.resize(off + sizeof(T));
    std::memcpy(data_.data() + off, &v, sizeof(T));
  }

  void WriteRaw(const void* p, size_t n) {
    size_t off = data_.size();
    // star-lint: allow(hot-path): Clear() keeps capacity; recycled buffers stop growing after warm-up
    data_.resize(off + n);
    std::memcpy(data_.data() + off, p, n);
  }

  void WriteBytes(const void* p, size_t n) {
    Write<uint32_t>(static_cast<uint32_t>(n));
    WriteRaw(p, n);
  }

  void WriteString(std::string_view s) { WriteBytes(s.data(), s.size()); }

  /// Overwrites sizeof(T) bytes at `offset` — used to patch headers (e.g.
  /// entry counts) after the body has been appended.
  template <typename T>
  void Patch(size_t offset, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= data_.size());
    std::memcpy(data_.data() + offset, &v, sizeof(T));
  }

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }
  void Clear() { data_.clear(); }

  /// Replaces the backing string (cleared, capacity kept) — used to refill a
  /// buffer from a recycled payload pool after Release() donated the old
  /// backing string to a message.
  void Adopt(std::string&& backing) {
    data_ = std::move(backing);
    data_.clear();
  }

 private:
  std::string data_;
};

/// Cursor over a byte span produced by WriteBuffer.  Reads must mirror the
/// write sequence exactly; violations trip the assertions in debug builds.
class ReadBuffer {
 public:
  ReadBuffer(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ReadBuffer(std::string_view s) : ReadBuffer(s.data(), s.size()) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(pos_ + sizeof(T) <= size_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void ReadRaw(void* out, size_t n) {
    assert(pos_ + n <= size_);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  /// Returns a view over the next length-prefixed blob without copying.
  std::string_view ReadBytes() {
    uint32_t n = Read<uint32_t>();
    assert(pos_ + n <= size_);
    std::string_view v(data_ + pos_, n);
    pos_ += n;
    return v;
  }

  /// Returns a view over the next `n` raw bytes without copying.
  std::string_view View(size_t n) {
    assert(pos_ + n <= size_);
    std::string_view v(data_ + pos_, n);
    pos_ += n;
    return v;
  }

  void Skip(size_t n) {
    assert(pos_ + n <= size_);
    pos_ += n;
  }

  bool Done() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  /// Start of the underlying span (for re-viewing ranges already walked).
  const char* data() const { return data_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace star

#endif  // STAR_COMMON_SERIALIZER_H_
