#ifndef STAR_COMMON_STATS_H_
#define STAR_COMMON_STATS_H_

#include <atomic>
#include <cstdint>

#include "common/histogram.h"

namespace star {

/// Per-worker counters, cache-line padded so neighbouring workers do not
/// false-share.  Workers increment their own slot without synchronization;
/// readers aggregate with relaxed loads (benchmark snapshots tolerate a few
/// in-flight increments).
struct alignas(64) WorkerStats {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};          // concurrency-control aborts
  std::atomic<uint64_t> aborted_user{0};     // application-requested aborts
  std::atomic<uint64_t> single_partition{0};
  std::atomic<uint64_t> cross_partition{0};
  Histogram latency;  // written only by the owning worker / release thread
  /// Set by a cross-thread ResetStats, consumed by the owning worker before
  /// its next latency write — the histogram stays single-writer.
  std::atomic<bool> latency_reset_pending{false};

  /// Cross-thread-safe reset request: counters are zeroed directly (they
  /// are atomics), the latency histogram is reset by its owning worker at
  /// the next MaybeResetLatency().  Engines whose workers are stopped may
  /// follow up with a direct `latency.Reset()`.
  void Reset() {
    committed.store(0, std::memory_order_relaxed);
    aborted.store(0, std::memory_order_relaxed);
    aborted_user.store(0, std::memory_order_relaxed);
    single_partition.store(0, std::memory_order_relaxed);
    cross_partition.store(0, std::memory_order_relaxed);
    latency_reset_pending.store(true, std::memory_order_release);
  }

  /// Owning-worker side of Reset(); call before recording latency.
  void MaybeResetLatency() {
    if (latency_reset_pending.exchange(false, std::memory_order_acq_rel)) {
      latency.Reset();
    }
  }
};

/// Aggregated snapshot returned by every engine.
struct Metrics {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t aborted_user = 0;
  uint64_t single_partition = 0;
  uint64_t cross_partition = 0;
  double seconds = 0;
  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;
  /// Fail-stop drop accounting surfaced from the transport: messages the
  /// substrate refused (down peer, dead link, over-cap backlog).  Nonzero
  /// values outside failure experiments indicate a sick cluster.
  uint64_t network_dropped_bytes = 0;
  uint64_t network_dropped_messages = 0;
  /// Replication batches a node received but deliberately ignored because
  /// their source was marked failed (Section 4.5.2: healthy nodes "safely
  /// ignore all replication messages from failed nodes").  Like the drop
  /// counters, nonzero outside failure experiments flags a sick cluster —
  /// previously these batches vanished without a trace.
  uint64_t replication_ignored_batches = 0;
  /// Replica-served read-only transactions (cc/snapshot.h).  Kept separate
  /// from `committed`/`aborted`: replica reads ride a different execution
  /// path with different semantics, and folding them in would corrupt every
  /// existing write-throughput figure.
  uint64_t replica_reads = 0;           // successfully validated read txns
  uint64_t replica_read_aborts = 0;     // gave up (missing record/user abort)
  uint64_t replica_read_conflicts = 0;  // snapshot retries (replay in flight)
  uint64_t replica_read_keys = 0;       // read-set keys validated
  /// Sum over committed replica reads of (node epoch - pinned watermark):
  /// divide by replica_reads for the mean staleness in epochs.
  uint64_t replica_read_lag_epochs = 0;
  /// Durability (wal/logger.h).  durable_epoch is the cluster durable epoch
  /// E_d — every transaction with epoch <= E_d is fsynced on every healthy
  /// node; the byte/fsync/batch counters aggregate the logger fleet; the
  /// checkpoint counters aggregate the incremental checkpointers; and
  /// rejoin_fetch_bytes is what a rejoining node streamed from donors
  /// (O(delta) with a recovered base, O(table) without).  All zero when
  /// durable logging is off.
  uint64_t durable_epoch = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_batches = 0;
  uint64_t wal_epoch_markers = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_entries = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t rejoin_fetch_bytes = 0;
  Histogram latency;

  double Tps() const { return seconds > 0 ? committed / seconds : 0.0; }
  double ReplicaReadTps() const {
    return seconds > 0 ? replica_reads / seconds : 0.0;
  }
  double ReplicaReadLagEpochs() const {
    return replica_reads == 0
               ? 0.0
               : static_cast<double>(replica_read_lag_epochs) / replica_reads;
  }
  double ReplicaReadConflictRate() const {
    uint64_t attempts = replica_reads + replica_read_conflicts;
    return attempts == 0
               ? 0.0
               : static_cast<double>(replica_read_conflicts) / attempts;
  }
  double AbortRate() const {
    uint64_t attempts = committed + aborted;
    return attempts == 0 ? 0.0 : static_cast<double>(aborted) / attempts;
  }
  double BytesPerCommit() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(network_bytes) / committed;
  }
};

}  // namespace star

#endif  // STAR_COMMON_STATS_H_
