#ifndef STAR_COMMON_CLOCK_H_
#define STAR_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace star {

/// Nanoseconds from a monotonic clock.  All engine timing (phase lengths,
/// message delivery deadlines, latency measurements) uses this single source
/// so values are directly comparable.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double NanosToMillis(uint64_t ns) { return static_cast<double>(ns) / 1e6; }
inline uint64_t MillisToNanos(double ms) {
  return static_cast<uint64_t>(ms * 1e6);
}
inline uint64_t MicrosToNanos(double us) {
  return static_cast<uint64_t>(us * 1e3);
}

}  // namespace star

#endif  // STAR_COMMON_CLOCK_H_
