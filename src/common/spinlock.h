#ifndef STAR_COMMON_SPINLOCK_H_
#define STAR_COMMON_SPINLOCK_H_

#include <atomic>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/thread_annotations.h"

namespace star {

/// Relaxes the CPU inside a spin loop (PAUSE on x86, yield elsewhere).
inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// A test-and-test-and-set spinlock.  Used for hash-table buckets and other
/// short critical sections where a futex-based mutex would dominate the cost
/// of the protected work.  An annotated capability: guard fields with
/// STAR_GUARDED_BY(mu) and acquire through SpinLockGuard so the
/// STAR_ANALYZE=ON build checks the discipline (std::lock_guard carries no
/// annotations on libstdc++ and is invisible to the analysis).
class STAR_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() STAR_ACQUIRE() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
        // On oversubscribed hosts (fewer cores than worker threads) the lock
        // holder may be descheduled; yield after a bounded spin so we do not
        // burn a whole quantum.
        if (++spins > 256) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() STAR_TRY_ACQUIRE(true) {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() STAR_RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard over SpinLock — the annotated replacement for
/// std::lock_guard<SpinLock> at every call site in src/.
class STAR_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& mu) STAR_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SpinLockGuard() STAR_RELEASE() { mu_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& mu_;
};

/// A sense-reversing barrier for synchronizing a fixed set of threads at
/// engine start/stop.  Unlike std::barrier it can be waited on repeatedly by
/// exactly `count` participants with no allocation.
class SpinBarrier {
 public:
  explicit SpinBarrier(int count) : count_(count), remaining_(count) {}

  void Wait() {
    bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(count_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        CpuRelax();
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

 private:
  const int count_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace star

#endif  // STAR_COMMON_SPINLOCK_H_
