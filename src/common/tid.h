#ifndef STAR_COMMON_TID_H_
#define STAR_COMMON_TID_H_

#include <cstdint>

namespace star {

/// Transaction IDs (TIDs) follow Silo's layout, packed into the low 62 bits
/// of a 64-bit word so that the two top bits of a record's meta word can
/// serve as the lock bit and the absent (logically-deleted) bit.  The epoch
/// lives in the most significant TID bits, which makes a plain integer
/// comparison respect the three TID-generation criteria of the paper
/// (Section 3):
///
///   (a) larger than every TID in the transaction's read/write set,
///   (b) larger than the thread's previously chosen TID,
///   (c) within the current global epoch.
///
/// Layout (62 bits):  [ epoch : 22 ][ sequence : 32 ][ thread : 8 ]
///
/// The sequence field is per-thread and monotonically increasing; the thread
/// field breaks ties between threads so TIDs are globally unique.  Numeric
/// order of TIDs from conflicting transactions is therefore a valid
/// serial-equivalent order, which is what the Thomas write rule relies on.
class Tid {
 public:
  static constexpr int kThreadBits = 8;
  static constexpr int kSequenceBits = 32;
  static constexpr int kEpochBits = 22;
  static constexpr uint64_t kThreadMask = (1ull << kThreadBits) - 1;
  static constexpr uint64_t kSequenceMask = (1ull << kSequenceBits) - 1;
  static constexpr uint64_t kEpochMask = (1ull << kEpochBits) - 1;
  static constexpr uint64_t kTidMask =
      (1ull << (kThreadBits + kSequenceBits + kEpochBits)) - 1;

  /// Packs (epoch, sequence, thread) into a 62-bit TID.
  static constexpr uint64_t Make(uint64_t epoch, uint64_t sequence,
                                 uint64_t thread) {
    return ((epoch & kEpochMask) << (kSequenceBits + kThreadBits)) |
           ((sequence & kSequenceMask) << kThreadBits) |
           (thread & kThreadMask);
  }

  static constexpr uint64_t Epoch(uint64_t tid) {
    return (tid >> (kSequenceBits + kThreadBits)) & kEpochMask;
  }

  static constexpr uint64_t Sequence(uint64_t tid) {
    return (tid >> kThreadBits) & kSequenceMask;
  }

  static constexpr uint64_t Thread(uint64_t tid) { return tid & kThreadMask; }

  /// Returns a TID in `epoch` that is strictly larger than `floor` (assuming
  /// `floor` is from `epoch` or an earlier one) and tagged with `thread`.
  static uint64_t Next(uint64_t floor, uint64_t epoch, uint64_t thread) {
    uint64_t seq = 0;
    if (Epoch(floor) == epoch) {
      seq = Sequence(floor) + 1;
    }
    return Make(epoch, seq, thread);
  }
};

/// A per-thread TID generator.  Remembers the last TID handed out so that
/// criterion (b) holds without any shared state.
class TidGenerator {
 public:
  explicit TidGenerator(uint64_t thread_id) : thread_id_(thread_id) {}

  /// Generates a commit TID given the maximum TID observed in the
  /// transaction's read and write sets and the current global epoch.
  uint64_t Generate(uint64_t observed_max, uint64_t epoch) {
    uint64_t floor = observed_max > last_ ? observed_max : last_;
    last_ = Tid::Next(floor, epoch, thread_id_);
    return last_;
  }

  uint64_t last() const { return last_; }
  uint64_t thread_id() const { return thread_id_; }

 private:
  uint64_t thread_id_;
  uint64_t last_ = 0;
};

}  // namespace star

#endif  // STAR_COMMON_TID_H_
