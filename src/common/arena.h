#ifndef STAR_COMMON_ARENA_H_
#define STAR_COMMON_ARENA_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace star {

/// Per-worker bump arena backing a transaction's scratch byte storage
/// (write-set values, read caches).
///
/// Memory model: the arena owns a single contiguous buffer that only ever
/// grows.  Allocations hand out *offsets*, not pointers — the buffer may be
/// reallocated by a later Alloc, so holders resolve an offset to a pointer
/// (`ptr()`) at each use and never retain the pointer across an Alloc.
/// `Rewind()` resets the bump cursor without releasing capacity, which is
/// what makes the per-transaction hot path allocation-free in steady state:
/// after the first few transactions have grown the buffer to the workload's
/// high-water mark, every subsequent transaction reuses it.
///
/// Not thread-safe: each worker thread owns its own arena (the same
/// discipline as the per-worker replication streams).
class TxnArena {
 public:
  TxnArena() = default;
  explicit TxnArena(size_t reserve) { buf_.resize(reserve); }

  /// Reserves `n` bytes and returns their offset.  The bytes are
  /// uninitialised (callers always overwrite them in full).
  uint32_t Alloc(size_t n) {
    size_t off = used_;
    if (used_ + n > buf_.size()) {
      size_t want = used_ + n;
      size_t cap = buf_.empty() ? 4096 : buf_.size();
      while (cap < want) cap *= 2;
      buf_.resize(cap);
    }
    used_ += n;
    return static_cast<uint32_t>(off);
  }

  char* ptr(uint32_t offset) { return buf_.data() + offset; }
  const char* ptr(uint32_t offset) const { return buf_.data() + offset; }

  /// Resets the cursor; capacity (and stale bytes) stay.  Offsets handed out
  /// before the rewind must not be dereferenced afterwards.
  void Rewind() { used_ = 0; }

  size_t used() const { return used_; }
  size_t capacity() const { return buf_.size(); }

 private:
  std::vector<char> buf_;
  size_t used_ = 0;
};

}  // namespace star

#endif  // STAR_COMMON_ARENA_H_
