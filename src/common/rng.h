#ifndef STAR_COMMON_RNG_H_
#define STAR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

namespace star {

/// xoshiro256** — a small, fast, statistically strong PRNG.  Each worker
/// thread owns one instance, seeded from its (node, worker) coordinates so
/// experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed, as recommended by the xoshiro
    // authors, so that nearby seeds produce unrelated streams.
    uint64_t z = seed;
    for (int i = 0; i < 4; ++i) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s_[i] = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive (TPC-C's rand(x, y)).
  uint64_t UniformInclusive(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli trial: true with probability p.
  bool Flip(double p) { return NextDouble() < p; }

  /// TPC-C non-uniform random distribution NURand(A, x, y).
  uint64_t NonUniform(uint64_t a, uint64_t x, uint64_t y, uint64_t c = 42) {
    return (((UniformInclusive(0, a) | UniformInclusive(x, y)) + c) %
            (y - x + 1)) +
           x;
  }

  /// Fills `out` with `len` random alphanumeric bytes.
  void FillString(char* out, size_t len) {
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    for (size_t i = 0; i < len; ++i) {
      out[i] = kAlphabet[Uniform(sizeof(kAlphabet) - 1)];
    }
  }

  std::string RandomString(size_t len) {
    std::string s(len, '\0');
    FillString(s.data(), len);
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipfian sampler over [0, n) using the classic YCSB construction
/// (Gray et al. "Quickly generating billion-record synthetic databases").
/// The paper's default YCSB configuration is uniform; this is provided for
/// skew experiments beyond the paper's defaults.
class Zipf {
 public:
  Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace star

#endif  // STAR_COMMON_RNG_H_
