#ifndef STAR_COMMON_HISTOGRAM_H_
#define STAR_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace star {

/// Log-scale latency histogram (nanosecond samples), in the style of the
/// HdrHistogram used by transaction-processing benchmarks.  Buckets grow
/// geometrically: 128 linear buckets per power-of-two decade, giving < 1%
/// relative error, which is plenty for the p50/p99 columns of Figure 12.
///
/// Recording is single-writer (each worker owns one); Merge combines worker
/// histograms at the end of a measurement window.
class Histogram {
 public:
  static constexpr int kSubBuckets = 128;  // per power of two
  static constexpr int kDecades = 36;      // covers up to ~2^36 ns (~68 s)

  Histogram() : buckets_(kSubBuckets * kDecades, 0) {}

  void Record(uint64_t value_ns) {
    ++count_;
    sum_ += value_ns;
    max_ = std::max(max_, value_ns);
    buckets_[Index(value_ns)]++;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  /// Value (ns) at quantile q in [0, 1].  Returns 0 for an empty histogram.
  uint64_t Quantile(double q) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) return UpperBound(i);
    }
    return max_;
  }

  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p99() const { return Quantile(0.99); }
  uint64_t max() const { return max_; }
  uint64_t count() const { return count_; }
  double MeanNs() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

 private:
  static size_t Index(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    int msb = 63 - __builtin_clzll(v);
    int decade = msb - 6;  // values < 128 handled above (2^7)
    if (decade >= kDecades) decade = kDecades - 1;
    uint64_t sub = (v >> (decade - 1)) & (kSubBuckets - 1);
    return static_cast<size_t>(decade) * kSubBuckets + sub;
  }

  static uint64_t UpperBound(size_t index) {
    size_t decade = index / kSubBuckets;
    uint64_t sub = index % kSubBuckets;
    if (decade == 0) return sub;
    return (static_cast<uint64_t>(kSubBuckets) + sub + 1)
           << (decade - 1);
  }

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace star

#endif  // STAR_COMMON_HISTOGRAM_H_
