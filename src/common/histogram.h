#ifndef STAR_COMMON_HISTOGRAM_H_
#define STAR_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

namespace star {

/// Log-scale latency histogram (nanosecond samples), in the style of the
/// HdrHistogram used by transaction-processing benchmarks.  Buckets grow
/// geometrically: 128 linear buckets per power-of-two decade, giving < 1%
/// relative error, which is plenty for the p50/p99 columns of Figure 12.
///
/// Recording is single-writer (each worker owns one); Merge combines worker
/// histograms at the end of a measurement window.  Cells are relaxed
/// atomics so a live Snapshot() may Merge a histogram that its worker is
/// still recording into: the result is approximate (documented behaviour)
/// but well-defined — plain loads/stores on every relevant target, zero
/// cost over the non-atomic version.
class Histogram {
 public:
  static constexpr int kSubBuckets = 128;  // per power of two
  static constexpr int kDecades = 36;      // covers up to ~2^36 ns (~68 s)

  Histogram() : buckets_(kSubBuckets * kDecades) {}
  Histogram(const Histogram& other) : buckets_(kSubBuckets * kDecades) {
    CopyFrom(other);
  }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void Record(uint64_t value_ns) {
    // Single-writer: load+store beats an atomic RMW.
    Bump(count_, 1);
    Bump(sum_, value_ns);
    uint64_t m = max_.load(std::memory_order_relaxed);
    if (value_ns > m) max_.store(value_ns, std::memory_order_relaxed);
    Bump(buckets_[Index(value_ns)], 1);
  }

  void Merge(const Histogram& other) {
    Bump(count_, other.count_.load(std::memory_order_relaxed));
    Bump(sum_, other.sum_.load(std::memory_order_relaxed));
    uint64_t om = other.max_.load(std::memory_order_relaxed);
    if (om > max_.load(std::memory_order_relaxed)) {
      max_.store(om, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      Bump(buckets_[i], other.buckets_[i].load(std::memory_order_relaxed));
    }
  }

  /// Value (ns) at quantile q in [0, 1].  Returns 0 for an empty histogram.
  /// Exact to within one sub-bucket (< 1% relative error), clamped to the
  /// recorded maximum: a lone sample in a wide bucket reports itself rather
  /// than the bucket's upper bound, and a quantile landing in the saturated
  /// top decade reports the true max instead of a fabricated bound.
  uint64_t Quantile(double q) const {
    uint64_t count = count_.load(std::memory_order_relaxed);
    if (count == 0) return 0;
    uint64_t m = max_.load(std::memory_order_relaxed);
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank >= count) rank = count - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen > rank) {
        uint64_t ub = UpperBound(i);
        // Top-decade buckets absorb every overflowing value, so ub may lie
        // far below the samples they hold; the recorded max is then the
        // only honest answer.
        if (i / kSubBuckets == kDecades - 1 && m > ub) return m;
        return std::min(ub, m);
      }
    }
    return m;
  }

  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p99() const { return Quantile(0.99); }
  uint64_t p999() const { return Quantile(0.999); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double MeanNs() const {
    uint64_t count = count_.load(std::memory_order_relaxed);
    return count == 0
               ? 0.0
               : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                     count;
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static void Bump(std::atomic<uint64_t>& cell, uint64_t by) {
    cell.store(cell.load(std::memory_order_relaxed) + by,
               std::memory_order_relaxed);
  }

  void CopyFrom(const Histogram& other) {
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }

  static size_t Index(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    int msb = 63 - __builtin_clzll(v);
    int decade = msb - 6;  // values < 128 handled above (2^7)
    if (decade >= kDecades) decade = kDecades - 1;
    uint64_t sub = (v >> (decade - 1)) & (kSubBuckets - 1);
    return static_cast<size_t>(decade) * kSubBuckets + sub;
  }

  static uint64_t UpperBound(size_t index) {
    size_t decade = index / kSubBuckets;
    uint64_t sub = index % kSubBuckets;
    if (decade == 0) return sub;
    return (static_cast<uint64_t>(kSubBuckets) + sub + 1)
           << (decade - 1);
  }

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace star

#endif  // STAR_COMMON_HISTOGRAM_H_
