#ifndef STAR_COMMON_CRC32_H_
#define STAR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace star {

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven software
/// implementation.  Used to frame every WAL and checkpoint record so that
/// recovery can tell a torn or bit-flipped tail from valid data — the
/// durability story is only as strong as the ability to refuse garbage.
///
/// Throughput is ~1 byte/cycle-ish, far from hardware CRC32C, but the log
/// write path batches kilobytes per call and is dominated by fsync; keeping
/// this dependency-free beats squeezing the checksum.
namespace crc32_internal {

struct Table {
  uint32_t v[256];
  constexpr Table() : v() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      v[i] = c;
    }
  }
};

inline constexpr Table kTable{};

}  // namespace crc32_internal

/// One-shot CRC over a byte span.  `seed` lets callers chain spans:
/// Crc32(b, m, Crc32(a, n)) == Crc32(concat(a, b), n + m).
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = crc32_internal::kTable.v[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace star

#endif  // STAR_COMMON_CRC32_H_
