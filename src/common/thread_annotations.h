#ifndef STAR_COMMON_THREAD_ANNOTATIONS_H_
#define STAR_COMMON_THREAD_ANNOTATIONS_H_

// Compile-time concurrency contracts.
//
// Two families of annotations live here:
//
//  1. Clang Thread Safety Analysis attributes (STAR_CAPABILITY,
//     STAR_GUARDED_BY, STAR_REQUIRES, ...).  Under clang with
//     -Wthread-safety (the STAR_ANALYZE=ON build) every lock acquisition
//     and guarded-field access is checked against these declarations on
//     every line of every build — unlike TSan, which only sees the
//     schedules a test happens to execute.  Under other compilers they
//     expand to nothing.
//
//  2. STAR-specific contract tags (STAR_HOT_PATH, STAR_CACHELINE_ALIGNED)
//     enforced by tools/star_lint.py: hot-path functions must not allocate
//     or block and may only call hot-tagged (or explicitly escaped)
//     functions; cross-thread counter structs must be cache-line padded.
//
// Capability wrappers that make family (1) effective on libstdc++ (whose
// std::mutex / std::lock_guard carry no annotations) live in
// common/mutex.h (star::Mutex) and common/spinlock.h (star::SpinLock).

// NOLINTBEGIN(bugprone-macro-parentheses): attribute arguments are lock
// expressions (`mu`, `c->mu`); parenthesising them is not valid inside
// __attribute__ argument lists.

#if defined(__clang__) && defined(__has_attribute)
#define STAR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STAR_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (a lock).  The string names the
/// capability kind in diagnostics ("mutex", "spinlock").
#define STAR_CAPABILITY(x) STAR_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (star::MutexLock, star::SpinLockGuard).
#define STAR_SCOPED_CAPABILITY STAR_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define STAR_GUARDED_BY(x) STAR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define STAR_PT_GUARDED_BY(x) STAR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define STAR_REQUIRES(...) \
  STAR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define STAR_REQUIRES_SHARED(...) \
  STAR_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define STAR_ACQUIRE(...) \
  STAR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define STAR_ACQUIRE_SHARED(...) \
  STAR_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define STAR_RELEASE(...) \
  STAR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define STAR_RELEASE_SHARED(...) \
  STAR_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the boolean first argument
/// is the return value on success.
#define STAR_TRY_ACQUIRE(...) \
  STAR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy contract).
#define STAR_EXCLUDES(...) STAR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define STAR_ASSERT_CAPABILITY(x) \
  STAR_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the capability that guards its result.
#define STAR_RETURN_CAPABILITY(x) STAR_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking discipline is correct but not
/// expressible (document why at every use site).
#define STAR_NO_THREAD_SAFETY_ANALYSIS \
  STAR_THREAD_ANNOTATION__(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

// ---------------------------------------------------------------------------
// STAR-specific contract tags (enforced by tools/star_lint.py).
// ---------------------------------------------------------------------------

/// Marks a function as part of a zero-allocation, non-blocking hot path
/// (commit, replay-apply, snapshot-read).  star_lint rejects heap
/// allocation, blocking calls (std::mutex, sleeps, file IO), and calls to
/// repo-defined functions that are neither STAR_HOT_PATH themselves nor
/// escaped with a justified `// star-lint: allow(hot-path): ...` comment.
/// Spin latches (star::SpinLock) are permitted: bounded short critical
/// sections are part of the Silo protocol, not blocking.
/// Also a real compiler hint: hot-path code is optimised for speed and kept
/// out of cold sections.
#if defined(__GNUC__) || defined(__clang__)
#define STAR_HOT_PATH __attribute__((hot))
#else
#define STAR_HOT_PATH
#endif

/// Cache line size the padding contracts assume.  64 bytes covers x86 and
/// most aarch64 parts; over-aligning on exotic 128-byte-line hosts costs
/// only memory.
#ifndef STAR_CACHELINE_SIZE
#define STAR_CACHELINE_SIZE 64
#endif

/// Pads a cross-thread counter (or a whole per-thread lane struct) to its
/// own cache line so concurrent writers never false-share.  star_lint
/// requires this (or a plain alignas(64)) on counter-lane structs.
#define STAR_CACHELINE_ALIGNED alignas(STAR_CACHELINE_SIZE)

#endif  // STAR_COMMON_THREAD_ANNOTATIONS_H_
