#ifndef STAR_COMMON_CONFIG_H_
#define STAR_COMMON_CONFIG_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace star {

/// Replication strategies from Section 5 / Figure 9 of the paper.
enum class ReplicationMode : uint8_t {
  kValue,      // full-record value replication everywhere
  kHybrid,     // value in the single-master phase, operation in partitioned
  kSyncValue,  // synchronous value replication (locks held across the wire)
};

/// Consistency mode for replica-served read-only transactions
/// (cc/snapshot.h).
enum class ReplicaReadMode : uint8_t {
  /// Pin the node's applied-epoch watermark W, admit only record versions
  /// with TID epoch <= W, and revalidate the read set against W at commit:
  /// the transaction observes exactly the state as of epoch W (a consistent
  /// committed snapshot), retrying locally when replication replay runs
  /// ahead mid-transaction.
  kSnapshot,
  /// Best-effort freshness: bounded optimistic reads with no watermark pin
  /// and no validation.  Each record individually is a committed version and
  /// per-record time never runs backwards (the Thomas write rule only
  /// installs increasing TIDs), but different records may be observed at
  /// different epochs.  Zero validation cost; the only mode available on
  /// engines without a replication fence (the baseline chassis).
  kMonotonic,
};

/// Cluster-wide configuration shared by STAR and the baseline engines.
/// The default message substrate is the simulated fabric (src/net/fabric.h)
/// standing in for the paper's EC2 cluster; latency/bandwidth defaults
/// approximate the m5.4xlarge testbed (Section 7.1): ~100 microsecond round
/// trips and a 4.8 Gbit/s per-node network.  Engines can instead run over
/// real TCP sockets — substrate selection lives in StarOptions /
/// BaselineOptions (net::TransportKind); the fields below parameterise the
/// sim.
struct ClusterConfig {
  int full_replicas = 1;     // f: nodes holding a complete copy (Figure 2)
  int partial_replicas = 3;  // k: nodes holding a partition subset
  int workers_per_node = 2;
  int io_threads_per_node = 1;

  /// Replication replay shards per node: >= 2 routes inbound replication
  /// batches to a pool of replay workers over per-partition-shard queues
  /// (replication/sharded_applier.h), so replicas drain a W-wide write
  /// stream in parallel; 1 forces the classic inline serial apply on the io
  /// thread (byte-identical final state); 0 (the default) autosizes from the
  /// host core budget via ResolveReplayShards — a 1-core host degrades to a
  /// single prefetched replay worker.
  int replay_shards = 0;

  /// Outbound replication batching: a worker's per-destination batch is
  /// shipped once it reaches this many bytes (ReplicationStream).  Bigger
  /// batches amortise per-message cost, smaller ones cut replica lag; the
  /// trade-off is measured in bench/transport_substrate.
  size_t rep_flush_bytes = 8 * 1024;

  /// Number of partitions; 0 means "one per worker thread", the paper's
  /// configuration (Section 7.1: partitions == total worker threads).
  int partitions = 0;

  // --- simulated network fabric ---
  double link_latency_us = 50.0;  // one-way latency between distinct nodes
  double local_latency_us = 0.0;  // loopback latency
  double bandwidth_gbps = 4.8;    // per-node egress cap; <= 0 disables
  uint64_t seed = 42;

  int nodes() const { return full_replicas + partial_replicas; }
  int total_workers() const { return nodes() * workers_per_node; }
  int num_partitions() const {
    return partitions > 0 ? partitions : total_workers();
  }
};

/// Resolves a configured replay-shard count to the effective one (shared by
/// StarEngine, the baseline chassis, and the WAL-lane accounting in tests):
///  * > 0 — explicit; taken as-is (1 = the legacy inline serial io-thread
///    path, >= 2 = that many parallel replay workers).
///  * 0 (autosize, the default) — derived from the host core budget: a
///    quarter of the hardware threads, clamped to [1, 8].  A 1-core host
///    resolves to 1, which under autosize still runs the sharded pipeline's
///    single prefetched worker (ApplySpans) rather than the inline path —
///    the prefetched window loop wins even without fan-out.
inline int ResolveReplayShards(int configured) {
  if (configured > 0) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::clamp(static_cast<int>(hw) / 4, 1, 8);
}

/// Which nodes store and master each partition.
///
/// STAR layout (Figure 2): nodes [0, f) are full replicas and store every
/// partition; nodes [f, f+k) are partial replicas that collectively store at
/// least one complete copy.  Every partition is mastered by exactly one node
/// during the partitioned phase, and every node masters some portion.
/// Committed writes reach f+1 copies.
///
/// Baseline layout (Section 7.1.3): every partition has 2 replicas, primary
/// and secondary hashed to different nodes.
class Placement {
 public:
  /// Builds the asymmetric STAR placement.
  static Placement Star(int full_replicas, int partial_replicas,
                        int num_partitions) {
    Placement p;
    int n = full_replicas + partial_replicas;
    p.num_nodes_ = n;
    p.master_.resize(num_partitions);
    p.storing_.resize(num_partitions);
    p.mastered_by_.resize(n);
    for (int part = 0; part < num_partitions; ++part) {
      int master = part % n;
      p.master_[part] = master;
      p.mastered_by_[master].push_back(part);
      for (int fnode = 0; fnode < full_replicas; ++fnode) {
        p.storing_[part].push_back(fnode);
      }
      // The one partial replica holding this partition: the master itself if
      // the master is a partial node, otherwise assigned round-robin so the
      // partial nodes collectively store a complete copy.
      int partial_holder = master >= full_replicas
                               ? master
                               : full_replicas + (part % partial_replicas);
      if (partial_replicas > 0) {
        p.storing_[part].push_back(partial_holder);
      }
      p.Dedup(part);
    }
    return p;
  }

  /// Builds the symmetric primary/secondary placement used by Dist. OCC and
  /// Dist. S2PL: primary = p mod n, secondary = (p+1) mod n.
  static Placement PrimaryBackup(int num_nodes, int num_partitions,
                                 int replicas = 2) {
    Placement p;
    p.num_nodes_ = num_nodes;
    p.master_.resize(num_partitions);
    p.storing_.resize(num_partitions);
    p.mastered_by_.resize(num_nodes);
    for (int part = 0; part < num_partitions; ++part) {
      int master = part % num_nodes;
      p.master_[part] = master;
      p.mastered_by_[master].push_back(part);
      for (int r = 0; r < replicas && r < num_nodes; ++r) {
        p.storing_[part].push_back((master + r) % num_nodes);
      }
    }
    return p;
  }

  /// Non-partitioned layout (PB. OCC, Section 7.1.2): node 0 masters every
  /// partition; nodes 1..replicas-1 hold backups.
  static Placement AllOnPrimary(int num_nodes, int num_partitions,
                                int replicas = 2) {
    Placement p;
    p.num_nodes_ = num_nodes;
    p.master_.assign(num_partitions, 0);
    p.storing_.resize(num_partitions);
    p.mastered_by_.resize(num_nodes);
    for (int part = 0; part < num_partitions; ++part) {
      p.mastered_by_[0].push_back(part);
      for (int r = 0; r < replicas && r < num_nodes; ++r) {
        p.storing_[part].push_back(r);
      }
    }
    return p;
  }

  int master(int partition) const { return master_[partition]; }
  const std::vector<int>& storing(int partition) const {
    return storing_[partition];
  }
  const std::vector<int>& mastered_by(int node) const {
    return mastered_by_[node];
  }

  bool IsStored(int node, int partition) const {
    for (int s : storing_[partition]) {
      if (s == node) return true;
    }
    return false;
  }

  /// Partitions present on `node` (stored, whether as primary or secondary).
  std::vector<int> StoredPartitions(int node) const {
    std::vector<int> out;
    for (size_t part = 0; part < storing_.size(); ++part) {
      if (IsStored(node, static_cast<int>(part))) {
        out.push_back(static_cast<int>(part));
      }
    }
    return out;
  }

  /// Replication targets for a write on `partition` originating at `from`:
  /// every node storing the partition except the writer.
  std::vector<int> ReplicaTargets(int from, int partition) const {
    std::vector<int> out;
    for (int s : storing_[partition]) {
      if (s != from) out.push_back(s);
    }
    return out;
  }

  int num_partitions() const { return static_cast<int>(master_.size()); }
  int num_nodes() const { return num_nodes_; }

 private:
  void Dedup(int part) {
    auto& v = storing_[part];
    std::vector<int> out;
    for (int s : v) {
      bool seen = false;
      for (int o : out) seen |= (o == s);
      if (!seen) out.push_back(s);
    }
    v = std::move(out);
  }

  int num_nodes_ = 0;
  std::vector<int> master_;
  std::vector<std::vector<int>> storing_;
  std::vector<std::vector<int>> mastered_by_;
};

}  // namespace star

#endif  // STAR_COMMON_CONFIG_H_
