#ifndef STAR_MODEL_MODEL_H_
#define STAR_MODEL_MODEL_H_

namespace star::model {

/// The analytical model of Section 6.3.
///
/// A workload has n_s single-partition and n_c cross-partition transactions;
/// t_s and t_c are the average times to run each kind in a partitioning-
/// based system, K = t_c / t_s, and P = n_c / (n_c + n_s).
///
///   T_partitioning(n) = (n_s t_s + n_c t_c) / n          (Equation 3)
///   T_non-partitioned(n) = (n_s + n_c) t_s               (Equation 4)
///   T_STAR(n) = (n_s / n + n_c) t_s                      (Equation 5)
///
/// All ratios below are unitless and depend only on K, P and n.

/// I_partitioning(n) = (KP - P + 1) / (nP - P + 1): STAR's improvement over
/// a partitioning-based system on n nodes (Figure 10's K-curves).
inline double ImprovementOverPartitioning(double k, double p, double n) {
  return (k * p - p + 1.0) / (n * p - p + 1.0);
}

/// I_non-partitioned(n) = n / (nP - P + 1): STAR's improvement over a
/// non-partitioned (primary/backup) system (Figure 10's dashed curve).
inline double ImprovementOverNonPartitioned(double p, double n) {
  return n / (n * p - p + 1.0);
}

/// I(n) = n / (nP - P + 1): speedup of STAR on n nodes over STAR on a
/// single node (Figure 3).  Identical in form to the non-partitioned
/// improvement because one STAR node degenerates to a non-partitioned
/// system.
inline double Speedup(double p, double n) {
  return n / (n * p - p + 1.0);
}

/// Break-even cost ratio: STAR outperforms a partitioning-based system when
/// K > n (Section 6.3's closing observation).
inline double BreakEvenK(double n) { return n; }

}  // namespace star::model

#endif  // STAR_MODEL_MODEL_H_
