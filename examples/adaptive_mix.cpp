// Adaptivity demo (Figure 1 / Section 4.3): the phase-length controller
// solves Equations (1)-(2) from monitored throughput, so the fraction of
// wall-clock time spent in each phase adapts to the offered mix.  This
// example sweeps P and prints tau_p / tau_s along with throughput —
// reproducing the "best of both worlds" curve in miniature.
//
//   ./build/examples/adaptive_mix

#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "workload/ycsb.h"

int main() {
  star::YcsbOptions yopt;
  yopt.rows_per_partition = 10'000;
  star::YcsbWorkload workload(yopt);

  std::printf("%-8s %12s %10s %10s %12s\n", "P", "txns/sec", "tau_p(ms)",
              "tau_s(ms)", "achieved-mix");
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.5, 0.8, 1.0}) {
    star::StarOptions options;
    options.cluster.workers_per_node = 2;
    options.cross_fraction = p;
    star::StarEngine engine(options, workload);
    engine.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    engine.ResetStats();
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    star::Metrics m = engine.Stop();
    std::printf("%-8.2f %12.0f %10.2f %10.2f %11.1f%%\n", p, m.Tps(),
                engine.current_tau_p_ms(), engine.current_tau_s_ms(),
                m.committed ? 100.0 * m.cross_partition / m.committed : 0.0);
  }
  std::printf("\nThe controller gives the partitioned phase the bulk of the "
              "iteration at low P and hands everything to the single-master "
              "phase as P -> 1 (Section 4.3).\n");
  return 0;
}
