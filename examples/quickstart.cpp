// Quickstart: bring up a 4-node STAR cluster (1 full replica + 3 partial
// replicas) on the in-process fabric, run YCSB with 10% cross-partition
// transactions for two seconds, and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "workload/ycsb.h"

int main() {
  star::YcsbOptions ycsb;
  ycsb.rows_per_partition = 10'000;  // keep the demo snappy
  star::YcsbWorkload workload(ycsb);

  star::StarOptions options;
  options.cluster.full_replicas = 1;   // f = 1 (Figure 2)
  options.cluster.partial_replicas = 3;  // k = 3
  options.cluster.workers_per_node = 2;
  options.iteration_ms = 10;  // e = 10 ms, the paper's default
  options.cross_fraction = 0.10;

  std::printf("Starting STAR: %d nodes (%d full + %d partial), %d workers, "
              "%d partitions, P=%.0f%%\n",
              options.cluster.nodes(), options.cluster.full_replicas,
              options.cluster.partial_replicas,
              options.cluster.total_workers(),
              options.cluster.num_partitions(),
              options.cross_fraction * 100);

  star::StarEngine engine(options, workload);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));  // warm up
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::seconds(2));
  star::Metrics m = engine.Stop();

  std::printf("\n--- results ---\n");
  std::printf("committed:        %llu txns (%.0f txns/sec)\n",
              static_cast<unsigned long long>(m.committed), m.Tps());
  std::printf("  single-partition: %llu, cross-partition: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(m.single_partition),
              static_cast<unsigned long long>(m.cross_partition),
              m.committed ? 100.0 * m.cross_partition / m.committed : 0.0);
  std::printf("aborted:          %llu (%.2f%% of attempts)\n",
              static_cast<unsigned long long>(m.aborted),
              100 * m.AbortRate());
  std::printf("latency:          p50 %.2f ms, p99 %.2f ms\n",
              m.latency.p50() / 1e6, m.latency.p99() / 1e6);
  std::printf("epochs (fences):  %llu, fence overhead %.2f ms total\n",
              static_cast<unsigned long long>(engine.fence_count()),
              1000 * engine.fence_seconds());
  std::printf("network:          %.1f MB, %llu messages (%.0f B/txn)\n",
              m.network_bytes / 1e6,
              static_cast<unsigned long long>(m.network_messages),
              m.BytesPerCommit());
  std::printf("tau_p=%.2f ms tau_s=%.2f ms (e=%.0f ms)\n",
              engine.current_tau_p_ms(), engine.current_tau_s_ms(),
              engine.options().iteration_ms);
  return 0;
}
