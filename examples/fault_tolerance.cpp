// Fault-tolerance walkthrough (Section 4.5): inject a fail-stop failure on
// a partial replica, watch the coordinator detect it at the fence, revert
// the uncommitted epoch, re-master the lost partitions, keep processing —
// then rejoin the node, which re-fetches its partitions from healthy
// replicas while the cluster keeps running.
//
//   ./build/example_fault_tolerance [--transport=sim|tcp]
//
// --transport=tcp runs the identical scenario over real loopback sockets
// (failure injection cuts the node's connections; rejoin reconnects and
// refetches snapshots over the wire).

#include <cstdio>
#include <cstring>
#include <thread>

#include "core/engine.h"
#include "workload/ycsb.h"

using namespace std::chrono_literals;

int main(int argc, char** argv) {
  star::net::TransportKind transport = star::net::TransportKind::kSim;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      transport = star::net::TransportKind::kTcp;
    }
  }

  star::YcsbOptions yopt;
  yopt.rows_per_partition = 5'000;
  star::YcsbWorkload workload(yopt);

  star::StarOptions options;
  options.cluster.full_replicas = 1;
  options.cluster.partial_replicas = 3;
  options.cluster.workers_per_node = 2;
  options.cross_fraction = 0.1;
  options.two_version = true;        // enables epoch revert on failure
  options.fence_timeout_ms = 300;    // snappy failure detection for the demo
  options.transport = transport;     // tcp: ephemeral loopback ports

  star::StarEngine engine(options, workload);
  engine.Start();
  std::printf("cluster up: 1 full replica + 3 partial replicas (%s)\n",
              star::net::TransportKindName(transport));
  std::this_thread::sleep_for(500ms);

  auto snapshot = [&](const char* label) {
    star::Metrics m = engine.Snapshot();
    std::printf("%-28s %9.0f txns/sec | epoch %llu | healthy:",
                label, m.Tps(),
                static_cast<unsigned long long>(engine.epoch()));
    for (int n = 0; n < options.cluster.nodes(); ++n) {
      std::printf(" %d%s", n, engine.IsNodeHealthy(n) ? "" : "(down)");
    }
    std::printf("\n");
  };

  engine.ResetStats();
  std::this_thread::sleep_for(1s);
  snapshot("steady state");

  std::printf("\n>> injecting fail-stop failure on node 2\n");
  engine.InjectFailure(2);
  std::this_thread::sleep_for(1s);
  snapshot("after failure (Case 1/3)");
  std::printf("   node 2's partitions were re-mastered to the full replica;"
              "\n   the uncommitted epoch was reverted on all survivors\n");

  engine.ResetStats();
  std::this_thread::sleep_for(1s);
  snapshot("degraded throughput");

  std::printf("\n>> rejoining node 2 (snapshot fetch runs in parallel with "
              "processing)\n");
  engine.RequestRejoin(2);
  std::this_thread::sleep_for(3s);
  snapshot("after rejoin");

  engine.ResetStats();
  std::this_thread::sleep_for(1s);
  snapshot("recovered throughput");

  star::Metrics final = engine.Stop();
  std::printf("\nfinal state: %s, %llu transactions committed in the last "
              "window\n",
              engine.state() == star::SystemState::kStopped ? "clean stop"
                                                            : "degraded",
              static_cast<unsigned long long>(final.committed));
  return 0;
}
