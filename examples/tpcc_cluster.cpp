// TPC-C on a STAR cluster with hybrid replication — the paper's flagship
// configuration (Sections 5 and 7).  Shows throughput, the committed
// transaction mix, and the replication-bandwidth saving from shipping
// operations instead of values in the partitioned phase.
//
//   ./build/example_tpcc_cluster [cross_fraction=0.1] [seconds=3]
//       [--transport=sim|tcp] [--multiprocess] [--replay-shards=N]
//
// --transport=tcp runs the same single-process cluster over real loopback
// sockets instead of the simulated fabric (useful for eyeballing what the
// latency/bandwidth model adds).  --multiprocess deploys the full cluster
// as separate OS processes over localhost TCP (one per node plus the
// coordinator) and verifies replica convergence at shutdown — the paper's
// actual deployment shape (Section 7.1).  --replay-shards=N drains inbound
// replication through N parallel replay workers per node instead of the
// io thread (replication/sharded_applier.h); the fence drain waits on the
// replay queues, so convergence is unchanged.  The default (0) autosizes
// the replay width from the host core budget; =1 forces the old inline
// io-thread apply.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/engine.h"
#include "driver/cluster_driver.h"
#include "workload/tpcc.h"

int main(int argc, char** argv) {
  double cross = 0.1;
  int seconds = 3;
  star::net::TransportKind transport = star::net::TransportKind::kSim;
  bool multiprocess = false;
  int replay_shards = 0;  // 0 = autosize from the host core budget
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      transport = star::net::TransportKind::kTcp;
    } else if (std::strcmp(argv[i], "--transport=sim") == 0) {
      transport = star::net::TransportKind::kSim;
    } else if (std::strcmp(argv[i], "--multiprocess") == 0) {
      multiprocess = true;
    } else if (std::strncmp(argv[i], "--replay-shards=", 16) == 0) {
      replay_shards = std::atoi(argv[i] + 16);
    } else if (positional == 0) {
      cross = std::atof(argv[i]);
      ++positional;
    } else {
      seconds = std::atoi(argv[i]);
      ++positional;
    }
  }

  if (multiprocess) {
    star::driver::ClusterRunSpec spec;
    spec.base.cluster.full_replicas = 1;
    spec.base.cluster.partial_replicas = 3;
    spec.base.cluster.workers_per_node = 2;
    spec.base.cross_fraction = cross;
    spec.base.cluster.replay_shards = replay_shards;
    spec.base.two_version = true;
    spec.base.fence_timeout_ms = 1500;
    spec.workload = "tpcc";
    spec.seconds = seconds;
    return star::driver::LaunchCluster(spec);
  }

  star::TpccOptions topt;
  topt.customers_per_district = 300;
  topt.items = 2000;
  star::TpccWorkload workload(topt);

  auto run = [&](star::ReplicationMode mode, const char* name) {
    star::StarOptions options;
    options.cluster.full_replicas = 1;
    options.cluster.partial_replicas = 3;
    options.cluster.workers_per_node = 2;
    options.cross_fraction = cross;
    options.replication = mode;
    options.transport = transport;  // tcp: ephemeral loopback ports
    options.cluster.replay_shards = replay_shards;
    star::StarEngine engine(options, workload);
    engine.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    engine.ResetStats();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    star::Metrics m = engine.Stop();
    std::printf("%-12s %9.0f txns/sec | mix %4.1f%% cross | p50 %5.1f ms | "
                "%6.0f replication B/txn | fence drain %5.1f ms total\n",
                name, m.Tps(),
                m.committed ? 100.0 * m.cross_partition / m.committed : 0.0,
                m.latency.p50() / 1e6, m.BytesPerCommit(),
                engine.fence_drain_ns() / 1e6);
    return m.BytesPerCommit();
  };

  std::printf("TPC-C (NewOrder+Payment), 4-node STAR, P=%.0f%%, %s transport, "
              "%d replay shard(s)\n\n",
              cross * 100, star::net::TransportKindName(transport),
              replay_shards);
  double value_bytes = run(star::ReplicationMode::kValue, "value rep");
  double hybrid_bytes = run(star::ReplicationMode::kHybrid, "hybrid rep");
  std::printf("\nhybrid replication ships %.1fx fewer bytes per transaction "
              "(Section 5's Payment C_DATA example)\n",
              value_bytes / hybrid_bytes);
  return 0;
}
