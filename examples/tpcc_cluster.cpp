// TPC-C on a STAR cluster with hybrid replication — the paper's flagship
// configuration (Sections 5 and 7).  Shows throughput, the committed
// transaction mix, and the replication-bandwidth saving from shipping
// operations instead of values in the partitioned phase.
//
//   ./build/examples/tpcc_cluster [cross_fraction=0.1] [seconds=3]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/engine.h"
#include "workload/tpcc.h"

int main(int argc, char** argv) {
  double cross = argc > 1 ? std::atof(argv[1]) : 0.1;
  int seconds = argc > 2 ? std::atoi(argv[2]) : 3;

  star::TpccOptions topt;
  topt.customers_per_district = 300;
  topt.items = 2000;
  star::TpccWorkload workload(topt);

  auto run = [&](star::ReplicationMode mode, const char* name) {
    star::StarOptions options;
    options.cluster.full_replicas = 1;
    options.cluster.partial_replicas = 3;
    options.cluster.workers_per_node = 2;
    options.cross_fraction = cross;
    options.replication = mode;
    star::StarEngine engine(options, workload);
    engine.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    engine.ResetStats();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    star::Metrics m = engine.Stop();
    std::printf("%-12s %9.0f txns/sec | mix %4.1f%% cross | p50 %5.1f ms | "
                "%6.0f replication B/txn\n",
                name, m.Tps(),
                m.committed ? 100.0 * m.cross_partition / m.committed : 0.0,
                m.latency.p50() / 1e6, m.BytesPerCommit());
    return m.BytesPerCommit();
  };

  std::printf("TPC-C (NewOrder+Payment), 4-node STAR, P=%.0f%%\n\n",
              cross * 100);
  double value_bytes = run(star::ReplicationMode::kValue, "value rep");
  double hybrid_bytes = run(star::ReplicationMode::kHybrid, "hybrid rep");
  std::printf("\nhybrid replication ships %.1fx fewer bytes per transaction "
              "(Section 5's Payment C_DATA example)\n",
              value_bytes / hybrid_bytes);
  return 0;
}
