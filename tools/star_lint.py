#!/usr/bin/env python3
"""STAR invariant linter: concurrency contracts the compiler cannot check.

Three checks over the C++ sources in src/:

  memory-order   Every std::atomic access must name an explicit
                 std::memory_order.  Implicit operators (``a = x``, ``a++``,
                 ``a += x``, reading ``a`` by conversion) compile to
                 seq_cst, which on the hot paths is both a silent fence and
                 evidence nobody thought about the required ordering.

  hot-path       Functions tagged STAR_HOT_PATH (commit, replay-apply and
                 snapshot-read paths) must not reach heap allocation or
                 blocking calls: no new/malloc/make_shared, no growing
                 containers, no std::mutex, no sleeps or stdio.  The check
                 is transitive across functions *defined in src/*: a
                 hot-path function may only call src/ functions that are
                 themselves tagged (and therefore checked) or explicitly
                 escaped at the call site.

  padding        A struct holding two or more cross-thread atomic counters
                 must be cacheline-aligned (alignas(64) /
                 STAR_CACHELINE_ALIGNED) so adjacent lanes do not
                 false-share.

Escapes: a finding on line N is suppressed by a comment on line N or N-1 of

    // star-lint: allow(<check>): <reason>

The reason is mandatory; the escape names exactly one check.

Engine: the default engine is a self-contained lexer (no dependencies
beyond the standard library) so the linter runs anywhere the repo builds.
``--engine=libclang`` selects an AST-exact engine when python libclang
bindings are installed; this container does not ship them, so the flag
exists for CI images that do.

Exit status: 0 when no findings, 1 when findings, 2 on usage error.
"""

import argparse
import json
import os
import re
import sys

CHECKS = ("memory-order", "hot-path", "padding")

ALLOW_RE = re.compile(r"//\s*star-lint:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)")

# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


class Source:
    """One file: raw text, comment-stripped text, and escape annotations."""

    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8") as f:
            self.text = f.read()
        self.lines = self.text.split("\n")
        # allows[line] = set of check names escaped for that line (1-based).
        self.allows = {}
        for i, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                check = m.group(1)
                # An escape covers its own line and the following line (for
                # comment-above-statement style).
                self.allows.setdefault(i, set()).add(check)
                self.allows.setdefault(i + 1, set()).add(check)
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.split("\n")

    def allowed(self, line, check):
        return check in self.allows.get(line, set())


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines and
    column positions so line/offset arithmetic stays valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: R"delim( ... )delim"
                if out and out[-1] == "R":
                    m = re.match(r'R"([^(]*)\(', text[i - 1 :])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end < 0:
                            end = n - 1
                        end += len(m.group(1)) + 2
                        seg = text[i : end]
                        out.append("".join(ch if ch == "\n" else " " for ch in seg))
                        i = end
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(code, offset):
    return code.count("\n", 0, offset) + 1


def matching_paren(code, open_idx):
    """Index just past the ')' matching the '(' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def matching_brace(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# ---------------------------------------------------------------------------
# Check 1: explicit memory_order on every atomic access
# ---------------------------------------------------------------------------

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set|"
    r"clear|wait)\s*\("
)

ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic\s*<[^;{}>]*>\s+(\w+)|std::atomic_flag\s+(\w+)"
)

# Implicit operators on a known atomic lvalue: ++a, a++, a op= x, a = x.
_IMPLICIT_OPS = (
    r"(?:\+\+|--)\s*{name}\b",          # ++a / --a
    r"\b{name}\s*(?:\+\+|--)",          # a++ / a--
    r"\b{name}\s*(?:\+=|-=|\|=|&=|\^=)",  # a += x ...
    r"\b{name}\s*=[^=]",                # a = x (not ==)
)


def check_memory_order(src, findings):
    code = src.code
    # Explicit member calls missing a memory_order argument.
    for m in ATOMIC_CALL_RE.finditer(code):
        open_idx = m.end() - 1
        close = matching_paren(code, open_idx)
        if close < 0:
            continue
        args = code[open_idx + 1 : close - 1]
        line = line_of(code, m.start())
        # Accept a literal std::memory_order argument, or a pass-through of
        # a parameter named *order (Record::LoadWord-style wrappers whose
        # callers supply the order).
        if "memory_order" in args or re.search(r"\border\b", args):
            continue
        # Heuristic guard: require the receiver to look atomic-ish — the
        # method-name set above is distinctive enough in this codebase that
        # every match is an atomic (std::string has none of these members).
        if m.group(1) in ("clear", "wait"):
            # Too generic (containers/condvars); only flag when the receiver
            # is a declared atomic name.
            recv = receiver_name(code, m.start())
            if recv is None or recv not in atomic_names(src):
                continue
        if src.allowed(line, "memory-order"):
            continue
        findings.append(
            (
                src.path,
                line,
                "memory-order",
                "atomic .%s() without an explicit std::memory_order" % m.group(1),
            )
        )
    # Implicit operators on declared atomic variables.
    names = atomic_names(src)
    for name in names:
        for pat in _IMPLICIT_OPS:
            for m in re.finditer(pat.format(name=re.escape(name)), code):
                line = line_of(code, m.start())
                decl_line_hit = ATOMIC_DECL_RE.search(src.code_lines[line - 1])
                if decl_line_hit:
                    continue  # `std::atomic<int> a = ...` initialisation
                if "==" in m.group(0):
                    continue
                # A preceding identifier/type token means this is a fresh
                # declaration of an unrelated local/member that happens to
                # share the atomic's name (`uint64_t seq = ...`).
                before = code[: m.start()].rstrip()
                if before and (before[-1].isalnum() or before[-1] in "_>&*"):
                    continue
                if src.allowed(line, "memory-order"):
                    continue
                findings.append(
                    (
                        src.path,
                        line,
                        "memory-order",
                        "implicit seq_cst operator on atomic '%s' "
                        "(use .load/.store/.fetch_* with an explicit order)" % name,
                    )
                )


def receiver_name(code, dot_idx):
    """Identifier immediately left of '.'/'->' at dot_idx, or None."""
    j = dot_idx
    m = re.search(r"(\w+)\s*(?:\.|->)\s*$", code[max(0, j - 64) : j + 1])
    return m.group(1) if m else None


_ATOMIC_NAME_CACHE = {}


def atomic_names(src):
    if src.path not in _ATOMIC_NAME_CACHE:
        names = set()
        for m in ATOMIC_DECL_RE.finditer(src.code):
            names.add(m.group(1) or m.group(2))
        _ATOMIC_NAME_CACHE[src.path] = names
    return _ATOMIC_NAME_CACHE[src.path]


# ---------------------------------------------------------------------------
# Check 2: hot-path purity (no allocation / blocking), transitive
# ---------------------------------------------------------------------------

# Tokens that mean "this line heap-allocates or may block".
FORBIDDEN = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"\bnew\s*\("), "placement/operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("), "malloc-family call"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "heap-allocating factory"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|resize|reserve|insert|"
                r"emplace|append)\s*\("), "potentially-growing container op"),
    (re.compile(r"\bstd\s*::\s*mutex\b"), "blocking std::mutex"),
    (re.compile(r"\bsleep_(?:for|until)\b|\busleep\s*\(|\bnanosleep\s*\("),
     "sleep"),
    (re.compile(r"\bf(?:open|close|write|read|flush|printf|sync)\s*\("),
     "stdio/file IO"),
    (re.compile(r"\bstd\s*::\s*c(?:out|err)\b"), "iostream IO"),
    (re.compile(r"\bMutexLock\b|\bCondVar\b"), "blocking mutex/condvar"),
]

# A `new` appearing as placement-new into pre-reserved storage is spelled
# `new (ptr) T` — the FORBIDDEN list flags it too (placement-new itself is
# fine, but on STAR's hot paths it only ever appears in arena code that is
# escaped explicitly, so the conservative rule stays).

FUNC_DEF_RE = re.compile(
    r"(?:^|[;}{])\s*(?:template\s*<[^;{}]*>\s*)?"
    r"((?:[\w:~<>,*&\s]|::)*?)"          # return type + qualifiers
    r"\b([A-Za-z_]\w*)\s*\("             # function name
)


class Func:
    def __init__(self, name, path, line, body, hot):
        self.name = name
        self.path = path
        self.line = line
        self.body = body
        self.hot = hot


def extract_functions(src):
    """Finds function definitions (name, body) with a brace-matching scan.
    Lexer-grade: good enough to build a call graph over src/, not a parser."""
    code = src.code
    funcs = []
    i = 0
    n = len(code)
    while i < n:
        m = FUNC_DEF_RE.search(code, i)
        if not m:
            break
        name = m.group(2)
        open_paren = m.end() - 1
        close_paren = matching_paren(code, open_paren)
        if close_paren < 0:
            i = m.end()
            continue
        # Skip trailing qualifiers/attributes up to '{', ';' or next token.
        j = close_paren
        while j < n and code[j] not in "{;=":
            j += 1
        if j >= n or code[j] != "{":
            i = m.end()
            continue
        # Control-flow keywords match the pattern too; drop them.
        if name in ("if", "for", "while", "switch", "return", "sizeof",
                    "catch", "alignas", "alignof", "decltype", "defined",
                    "static_assert", "noexcept"):
            i = m.end()
            continue
        body_end = matching_brace(code, j)
        if body_end < 0:
            i = m.end()
            continue
        prefix = m.group(1) or ""
        qualifiers = code[close_paren:j]
        hot = "STAR_HOT_PATH" in prefix or "STAR_HOT_PATH" in qualifiers
        funcs.append(
            Func(name, src.path, line_of(code, m.start(2)),
                 code[j:body_end], hot)
        )
        # Continue scanning *inside* the body too (nested lambdas/classes
        # contain further definitions); the outer body is still attributed
        # to the outer function.
        i = j + 1
    return funcs


CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

_CALL_KEYWORDS = frozenset(
    "if for while switch return sizeof static_cast const_cast dynamic_cast "
    "reinterpret_cast alignof alignas decltype noexcept assert defined "
    "catch throw new delete".split()
)


def check_hot_path(sources, findings):
    # Index all function definitions across the linted set.
    by_name = {}
    for src in sources:
        for fn in extract_functions(src):
            by_name.setdefault(fn.name, []).append(fn)

    srcs_by_path = {s.path: s for s in sources}

    def body_findings(fn):
        """Direct forbidden tokens in fn's body, minus escaped lines."""
        src = srcs_by_path[fn.path]
        out = []
        base = src.code.find(fn.body)
        for pat, why in FORBIDDEN:
            for m in pat.finditer(fn.body):
                line = line_of(src.code, base + m.start()) if base >= 0 else fn.line
                if src.allowed(line, "hot-path"):
                    continue
                out.append((line, why))
        return out

    # Transitive reachability from hot roots through src/-defined callees.
    reported = set()

    def visit(fn, chain, depth):
        src = srcs_by_path[fn.path]
        key = (fn.path, fn.name, fn.line)
        if key in reported or depth > 8:
            return
        reported.add(key)
        for line, why in body_findings(fn):
            findings.append(
                (
                    fn.path,
                    line,
                    "hot-path",
                    "%s in hot path %s%s"
                    % (why, fn.name, chain and " (via %s)" % " -> ".join(chain) or ""),
                )
            )
        base = src.code.find(fn.body)
        for m in CALL_RE.finditer(fn.body):
            callee = m.group(1)
            if callee in _CALL_KEYWORDS or callee == fn.name:
                continue
            defs = by_name.get(callee)
            if not defs:
                continue  # not defined in src/: stdlib or system, not ours
            if len(defs) > 1:
                # Ambiguous name (several definitions across src/).  The
                # lexer engine has no type information to pick the right
                # overload, and recursing into all of them manufactures
                # impossible call chains (e.g. TidGenerator::Generate vs a
                # workload's Generate).  Same-file definitions are the only
                # safe bet; otherwise skip rather than guess.
                defs = [d for d in defs if d.path == fn.path]
                if len(defs) != 1:
                    continue
            line = line_of(src.code, base + m.start()) if base >= 0 else fn.line
            if src.allowed(line, "hot-path"):
                continue
            for target in defs:
                if target.hot:
                    continue  # tagged: checked as its own root
                visit(target, chain + [fn.name], depth + 1)

    for src in sources:
        for fn in extract_functions(src):
            if fn.hot:
                visit(fn, [], 0)


# ---------------------------------------------------------------------------
# Check 3: atomic counter lanes must be cacheline-aligned
# ---------------------------------------------------------------------------

STRUCT_RE = re.compile(
    r"\bstruct\s+(alignas\s*\([^)]*\)\s*|STAR_CACHELINE_ALIGNED\s+)?"
    r"([A-Za-z_]\w*)?\s*(?::[^{;]*)?\{"
)
COUNTER_RE = re.compile(
    r"std\s*::\s*atomic\s*<\s*(?:std\s*::\s*)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|long|unsigned(?:\s+long)*)\s*>"
)


def check_padding(src, findings):
    code = src.code
    for m in STRUCT_RE.finditer(code):
        body_open = m.end() - 1
        body_end = matching_brace(code, body_open)
        if body_end < 0:
            continue
        body = code[body_open:body_end]
        # Only the struct's own top-level members: blank nested braces.
        top = blank_nested(body)
        counters = COUNTER_RE.findall(top)
        if len(counters) < 2:
            continue
        aligned = bool(m.group(1))
        line = line_of(code, m.start())
        if aligned or src.allowed(line, "padding"):
            continue
        name = m.group(2) or "<anonymous>"
        findings.append(
            (
                src.path,
                line,
                "padding",
                "struct %s holds %d atomic counters but is not "
                "cacheline-aligned (alignas(64) / STAR_CACHELINE_ALIGNED)"
                % (name, len(counters)),
            )
        )


def blank_nested(body):
    """body starts at '{'; blanks everything inside nested braces."""
    out = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
            out.append(ch if depth <= 1 else " ")
        elif ch == "}":
            out.append(ch if depth <= 1 else " ")
            depth -= 1
        else:
            out.append(ch if depth <= 1 else (ch if ch == "\n" else " "))
    return "".join(out)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def gather_files(paths, compdb):
    files = set()
    if compdb:
        try:
            with open(compdb, "r", encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError) as e:
            print("star_lint: cannot read %s: %s" % (compdb, e), file=sys.stderr)
            sys.exit(2)
        for e in entries:
            p = os.path.normpath(os.path.join(e.get("directory", "."), e["file"]))
            files.add(p)
    for root in paths:
        if os.path.isfile(root):
            files.add(os.path.normpath(root))
            continue
        for dirpath, _, names in os.walk(root):
            for n in names:
                if n.endswith((".h", ".hpp", ".cc", ".cpp")):
                    files.add(os.path.normpath(os.path.join(dirpath, n)))
    # The concurrency contracts apply to the engine sources; out-of-tree
    # entries from the compdb (tests, benches) are filtered by the caller's
    # path arguments.
    roots = [os.path.abspath(p) for p in paths]
    return sorted(
        f
        for f in files
        if any(os.path.abspath(f).startswith(r + os.sep) or os.path.abspath(f) == r
               for r in roots)
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--compdb", metavar="FILE",
                    help="compile_commands.json; its entries under the lint "
                         "paths are added to the file set")
    ap.add_argument("--engine", choices=("lexer", "libclang"), default="lexer",
                    help="analysis engine (default: lexer)")
    ap.add_argument("--check", action="append", choices=CHECKS,
                    help="run only the named check (repeatable)")
    args = ap.parse_args()

    if args.engine == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print(
                "star_lint: --engine=libclang requires python libclang "
                "bindings (pip package 'libclang' or distro "
                "python3-clang); this environment does not have them. "
                "The default lexer engine needs no dependencies.",
                file=sys.stderr,
            )
            return 2
        print("star_lint: libclang engine not implemented yet; "
              "use the lexer engine", file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    files = gather_files(paths, args.compdb)
    if not files:
        print("star_lint: no source files found under %s" % paths,
              file=sys.stderr)
        return 2

    checks = args.check or list(CHECKS)
    sources = [Source(f) for f in files]
    findings = []
    for src in sources:
        if "memory-order" in checks:
            check_memory_order(src, findings)
        if "padding" in checks:
            check_padding(src, findings)
    if "hot-path" in checks:
        check_hot_path(sources, findings)

    findings.sort()
    for path, line, check, msg in findings:
        print("%s:%d: [%s] %s" % (path, line, check, msg))
    if findings:
        print("star_lint: %d finding(s) in %d file(s)"
              % (len(findings), len({f[0] for f in findings})), file=sys.stderr)
        return 1
    print("star_lint: %d files clean (checks: %s)" % (len(files),
                                                      ", ".join(checks)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
