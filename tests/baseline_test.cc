// Baseline engines (Section 7.1.2): PB. OCC, Dist. OCC, Dist. S2PL, Calvin.
// Each engine must commit work, honour the offered mix, keep replicas
// convergent, and preserve the TPC-C money invariants (a serializability
// witness across distributed commits).

#include <gtest/gtest.h>

#include <thread>

#include "baselines/calvin.h"
#include "baselines/dist_engine.h"
#include "baselines/pb_occ.h"
#include "tests/test_util.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star {
namespace {

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 1000;
  return o;
}

TpccOptions SmallTpcc() {
  TpccOptions o;
  o.districts_per_warehouse = 4;
  o.customers_per_district = 100;
  o.items = 500;
  return o;
}

BaselineOptions FastBase() {
  BaselineOptions o;
  o.num_nodes = 4;
  o.workers_per_node = 2;
  o.partitions = 8;
  o.cross_fraction = 0.1;
  return o;
}

template <class Engine>
Metrics RunFor(Engine& e, int warm_ms, int run_ms) {
  e.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(warm_ms));
  e.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  return e.Stop();
}

void ExpectTpccInvariants(Database* db, const TpccWorkload& wl,
                          int partitions) {
  for (int p = 0; p < partitions; ++p) {
    if (db->table(TpccWorkload::kWarehouse, p) == nullptr) continue;
    WarehouseRow w;
    db->table(TpccWorkload::kWarehouse, p)->GetRow(0).ReadStable(&w);
    double dsum = 0;
    for (int d = 0; d < wl.options().districts_per_warehouse; ++d) {
      DistrictRow dr;
      db->table(TpccWorkload::kDistrict, p)
          ->GetRow(wl.DistrictKey(d))
          .ReadStable(&dr);
      dsum += dr.ytd - 30000.0;
    }
    EXPECT_NEAR(w.ytd - 300000.0, dsum, 0.5) << "warehouse " << p;
  }
}

TEST(PbOcc, CommitsAndFlatMix) {
  YcsbWorkload wl(SmallYcsb());
  PbOccEngine engine(FastBase(), wl);
  Metrics m = RunFor(engine, 200, 800);
  EXPECT_GT(m.committed, 1000u);
  EXPECT_NEAR(static_cast<double>(m.cross_partition) / m.committed, 0.1,
              0.05);
}

TEST(PbOcc, BackupConvergesToPrimary) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  PbOccEngine engine(o, wl);
  RunFor(engine, 200, 800);
  // Give the backup a moment to apply the tail of the stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int p = 0; p < o.num_partitions(); ++p) {
    EXPECT_EQ(testutil::DatabasePartitionChecksum(*engine.database(0), p),
              testutil::DatabasePartitionChecksum(*engine.database(1), p))
        << "partition " << p;
  }
}

TEST(PbOcc, BackupConvergesWithShardedReplay) {
  // The non-phase-switching chassis runs the same replay pipeline: a
  // backup draining the primary's stream through 4 replay shards must
  // reach the identical state.
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  o.replay_shards = 4;
  PbOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  EXPECT_GT(m.committed, 100u);
  for (int p = 0; p < o.num_partitions(); ++p) {
    EXPECT_EQ(testutil::DatabasePartitionChecksum(*engine.database(0), p),
              testutil::DatabasePartitionChecksum(*engine.database(1), p))
        << "partition " << p;
  }
}

TEST(PbOcc, SyncReplicationStillCommits) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  o.sync_replication = true;
  PbOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  EXPECT_GT(m.committed, 100u);
  // Sync latency is per-transaction (no group commit): p50 far below the
  // 10 ms epoch.
  EXPECT_LT(m.latency.p50(), MillisToNanos(10));
}

TEST(DistOcc, CommitsUnderMixAndConverges) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  DistOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 500u);
  EXPECT_GT(m.cross_partition, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Every partition has 2 replicas; both copies must match.
  for (int p = 0; p < o.num_partitions(); ++p) {
    uint64_t expect = 0;
    bool first = true;
    for (int n = 0; n < o.num_nodes; ++n) {
      Database* db = engine.database(n);
      if (!db->HasPartition(p)) continue;
      uint64_t sum = testutil::DatabasePartitionChecksum(*db, p);
      if (first) {
        expect = sum;
        first = false;
      } else {
        EXPECT_EQ(sum, expect) << "partition " << p << " node " << n;
      }
    }
  }
}

TEST(DistOcc, TpccInvariantsAcrossPartitions) {
  TpccWorkload wl(SmallTpcc());
  BaselineOptions o = FastBase();
  o.cross_fraction = 0.3;  // plenty of distributed Payments
  DistOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1500);
  EXPECT_GT(m.committed, 100u);
  for (int n = 0; n < o.num_nodes; ++n) {
    // Customer balance invariant on primary copies: balance+ytd == 0.
    Database* db = engine.database(n);
    for (int p : engine.placement().mastered_by(n)) {
      for (int d = 0; d < wl.options().districts_per_warehouse; ++d) {
        for (int c = 0; c < wl.options().customers_per_district; c += 11) {
          CustomerRow cr;
          db->table(TpccWorkload::kCustomer, p)
              ->GetRow(wl.CustomerKey(d, c))
              .ReadStable(&cr);
          ASSERT_NEAR(cr.balance + cr.ytd_payment, 0.0, 0.01)
              << "dirty/lost update on customer (" << p << "," << d << ","
              << c << ")";
        }
      }
    }
  }
}

TEST(PbOcc, FullTpccMixCommitsAndConverges) {
  // PB. OCC runs every transaction through the shared SiloContext, so the
  // full five-transaction mix — scans, deletes, phantom validation under
  // multi-worker OCC — works unchanged.
  TpccOptions topt = SmallTpcc();
  topt.full_mix = true;
  TpccWorkload wl(topt);
  BaselineOptions o = FastBase();
  PbOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1200);
  EXPECT_GT(m.committed, 100u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassDelivery), 0u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassStockLevel), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int p = 0; p < o.num_partitions(); ++p) {
    EXPECT_EQ(testutil::DatabasePartitionChecksum(*engine.database(0), p),
              testutil::DatabasePartitionChecksum(*engine.database(1), p))
        << "partition " << p;
  }
}

TEST(DistOcc, FullTpccMixCommitsAndConverges) {
  // Dist. OCC supports the scan transactions on home partitions (they are
  // warehouse-local per the spec); the commit re-validates scanned ranges.
  TpccOptions topt = SmallTpcc();
  topt.full_mix = true;
  TpccWorkload wl(topt);
  BaselineOptions o = FastBase();
  DistOccEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1200);
  EXPECT_GT(m.committed, 100u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassDelivery), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int p = 0; p < o.num_partitions(); ++p) {
    uint64_t expect = 0;
    bool first = true;
    for (int n = 0; n < o.num_nodes; ++n) {
      Database* db = engine.database(n);
      if (!db->HasPartition(p)) continue;
      uint64_t sum = testutil::DatabasePartitionChecksum(*db, p);
      if (first) {
        expect = sum;
        first = false;
      } else {
        EXPECT_EQ(sum, expect) << "partition " << p << " node " << n;
      }
    }
  }
}

TEST(DistS2pl, FullMixDropsScanTransactionsInsteadOfLivelocking) {
  // S2PL has no range locks, so the scan transactions are unsupported:
  // they must be dropped as user aborts (Scan returns false → kAbortUser),
  // not retried forever — the engine keeps committing the NewOrder/Payment
  // share.
  TpccOptions topt = SmallTpcc();
  topt.full_mix = true;
  TpccWorkload wl(topt);
  DistS2plEngine engine(FastBase(), wl);
  Metrics m = RunFor(engine, 200, 800);
  // Threshold kept low: S2PL runs NO_WAIT with backoff and sanitizer builds
  // are several times slower — the point is commits flow at all (a livelock
  // yields ~0) and the scan classes are dropped as user aborts.
  EXPECT_GT(m.committed, 20u);
  EXPECT_GT(m.aborted_user, 0u) << "scan classes dropped, not spun on";
}

TEST(DistS2pl, CommitsUnderMix) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  DistS2plEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 500u);
  EXPECT_GT(m.cross_partition, 0u);
}

TEST(DistS2pl, TpccYtdInvariant) {
  TpccWorkload wl(SmallTpcc());
  BaselineOptions o = FastBase();
  o.cross_fraction = 0.2;
  DistS2plEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1500);
  EXPECT_GT(m.committed, 50u);
  for (int n = 0; n < o.num_nodes; ++n) {
    ExpectTpccInvariants(engine.database(n), wl, o.num_partitions());
  }
}

TEST(DistS2pl, NoLeakedLocksAfterRun) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  o.cross_fraction = 0.3;
  DistS2plEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  EXPECT_GT(m.committed, 0u);
  // After Stop every transaction finished or aborted; a leaked lock would
  // have wedged later transactions long before this check.
  SUCCEED();
}

TEST(DistEngines, SyncReplicationCommitsWith2pc) {
  YcsbWorkload wl(SmallYcsb());
  BaselineOptions o = FastBase();
  o.sync_replication = true;
  {
    DistOccEngine engine(o, wl);
    Metrics m = RunFor(engine, 200, 800);
    EXPECT_GT(m.committed, 50u) << "Dist. OCC w/ 2PC";
  }
  {
    DistS2plEngine engine(o, wl);
    Metrics m = RunFor(engine, 200, 800);
    EXPECT_GT(m.committed, 50u) << "Dist. S2PL w/ 2PC";
  }
}

TEST(Calvin, CommitsDeterministically) {
  YcsbWorkload wl(SmallYcsb());
  CalvinOptions co;
  co.base = FastBase();
  co.lock_managers = 1;
  CalvinEngine engine(co, wl);
  Metrics m = RunFor(engine, 300, 1500);
  EXPECT_GT(m.committed, 500u);
  EXPECT_GT(m.cross_partition, 0u);
}

TEST(Calvin, TpccInvariantUnderDeterministicExecution) {
  TpccWorkload wl(SmallTpcc());
  CalvinOptions co;
  co.base = FastBase();
  co.base.cross_fraction = 0.2;
  co.lock_managers = 1;
  CalvinEngine engine(co, wl);
  Metrics m = RunFor(engine, 400, 2000);
  EXPECT_GT(m.committed, 50u);
  for (int n = 0; n < co.base.num_nodes; ++n) {
    ExpectTpccInvariants(engine.database(n), wl, co.base.num_partitions());
  }
}

TEST(Calvin, UserAbortsAreDeterministic) {
  // NewOrder's 1% invalid-item aborts must not wedge batches.
  TpccWorkload wl(SmallTpcc());
  CalvinOptions co;
  co.base = FastBase();
  co.lock_managers = 1;
  CalvinEngine engine(co, wl);
  Metrics m = RunFor(engine, 400, 1500);
  EXPECT_GT(m.committed, 50u);
  EXPECT_GT(m.aborted_user, 0u) << "some NewOrders roll back by design";
}

}  // namespace
}  // namespace star
