// Silo-variant OCC and the serial (partitioned-phase) commit path
// (Sections 4.1 and 4.2), including a multi-threaded serializability
// witness.

#include "cc/silo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cc/lock_table.h"

namespace star {
namespace {

std::unique_ptr<Database> MakeDb(int partitions = 1) {
  std::vector<TableSchema> schemas{{"t", 8, 1024}};
  std::vector<int> present;
  for (int p = 0; p < partitions; ++p) present.push_back(p);
  auto db = std::make_unique<Database>(schemas, partitions, present, false);
  for (int p = 0; p < partitions; ++p) {
    for (uint64_t k = 0; k < 100; ++k) {
      uint64_t v = 1000;
      db->Load(0, p, k, &v);
    }
  }
  return db;
}

TEST(SiloContext, ReadSeesOwnWrites) {
  auto db = MakeDb();
  Rng rng(1);
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t v = 7;
  ctx.Write(0, 0, 3, &v);
  uint64_t out = 0;
  ASSERT_TRUE(ctx.Read(0, 0, 3, &out));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(ctx.read_set().empty()) << "own-write reads skip the read set";
}

TEST(SiloContext, ReadMissingKeyFails) {
  auto db = MakeDb();
  Rng rng(1);
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  EXPECT_FALSE(ctx.Read(0, 0, 9999, &out));
}

TEST(SiloOcc, CommitInstallsAndTags) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{3};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 1, &out));
  uint64_t v = out + 1;
  ctx.Write(0, 0, 1, &v);
  CommitResult cr = SiloOccCommit(ctx, gen, epoch);
  ASSERT_EQ(cr.status, TxnStatus::kCommitted);
  EXPECT_EQ(Tid::Epoch(cr.tid), 3u);

  uint64_t now = 0;
  db->table(0, 0)->GetRow(1).ReadStable(&now);
  EXPECT_EQ(now, 1001u);
}

TEST(SiloOcc, StaleReadAborts) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 1, &out));

  // A concurrent transaction commits to the same record.
  {
    SiloContext other(db.get(), &rng, 1);
    TidGenerator gen2(1);
    uint64_t dummy;
    ASSERT_TRUE(other.Read(0, 0, 1, &dummy));
    uint64_t v = 5;
    other.Write(0, 0, 1, &v);
    ASSERT_EQ(SiloOccCommit(other, gen2, epoch).status,
              TxnStatus::kCommitted);
  }

  uint64_t v = out + 1;
  ctx.Write(0, 0, 1, &v);
  EXPECT_EQ(SiloOccCommit(ctx, gen, epoch).status,
            TxnStatus::kAbortConflict);
}

TEST(SiloOcc, LockedReadAborts) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 2, &out));
  // Someone holds the record lock at validation time.
  HashTable::Row row = db->table(0, 0)->GetRow(2);
  row.rec->LockSpin();
  uint64_t v = 1;
  ctx.Write(0, 0, 3, &v);  // disjoint write so the lock isn't ours
  EXPECT_EQ(SiloOccCommit(ctx, gen, epoch).status,
            TxnStatus::kAbortConflict);
  row.rec->Unlock();
}

TEST(SiloOcc, InsertAbortLeavesRecordAbsent) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 1, &out));
  uint64_t v = 1;
  ctx.Insert(0, 0, 777, &v);
  // Force a validation failure.
  {
    SiloContext other(db.get(), &rng, 1);
    TidGenerator gen2(1);
    uint64_t dummy;
    ASSERT_TRUE(other.Read(0, 0, 1, &dummy));
    uint64_t nv = 2;
    other.Write(0, 0, 1, &nv);
    ASSERT_EQ(SiloOccCommit(other, gen2, epoch).status,
              TxnStatus::kCommitted);
  }
  ASSERT_EQ(SiloOccCommit(ctx, gen, epoch).status, TxnStatus::kAbortConflict);
  Record* rec = db->table(0, 0)->Get(777);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->IsPresent()) << "aborted insert must stay invisible";
}

TEST(SiloOcc, DuplicateInsertConflicts) {
  auto db = MakeDb();
  Rng rng(1);
  std::atomic<uint64_t> epoch{1};
  uint64_t v = 1;
  {
    SiloContext a(db.get(), &rng, 0);
    TidGenerator gen(0);
    a.Insert(0, 0, 500, &v);
    ASSERT_EQ(SiloOccCommit(a, gen, epoch).status, TxnStatus::kCommitted);
  }
  {
    SiloContext b(db.get(), &rng, 1);
    TidGenerator gen(1);
    b.Insert(0, 0, 500, &v);
    EXPECT_EQ(SiloOccCommit(b, gen, epoch).status,
              TxnStatus::kAbortConflict);
  }
}

TEST(SiloSerial, CommitWithoutValidation) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{2};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 4, &out));
  uint64_t v = out * 2;
  ctx.Write(0, 0, 4, &v);
  CommitResult cr = SiloSerialCommit(ctx, gen, epoch);
  ASSERT_EQ(cr.status, TxnStatus::kCommitted);
  uint64_t now;
  db->table(0, 0)->GetRow(4).ReadStable(&now);
  EXPECT_EQ(now, 2000u);
}

TEST(SiloContext, ApplyOperationComposesWithReads) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);
  uint64_t out;
  ASSERT_TRUE(ctx.Read(0, 0, 6, &out));
  ctx.ApplyOperation(0, 0, 6, Operation::AddI64(0, 5));
  ctx.ApplyOperation(0, 0, 6, Operation::AddI64(0, 7));
  ASSERT_TRUE(ctx.Read(0, 0, 6, &out));
  EXPECT_EQ(out, 1012u) << "reads must observe buffered operations";
  EXPECT_TRUE(ctx.write_set().entries()[0].ops_only);
  EXPECT_EQ(ctx.write_set().entries()[0].ops_count, 2u);
  ASSERT_EQ(SiloOccCommit(ctx, gen, epoch).status, TxnStatus::kCommitted);
  uint64_t now;
  db->table(0, 0)->GetRow(6).ReadStable(&now);
  EXPECT_EQ(now, 1012u);
}

// Serializability witness: concurrent balance transfers preserve the total.
TEST(SiloOcc, ConcurrentTransfersConserveTotal) {
  auto db = MakeDb();
  constexpr int kThreads = 4;
  constexpr int kTxns = 4000;
  std::atomic<uint64_t> epoch{1};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Rng rng(100 + t);
      TidGenerator gen(t);
      SiloContext ctx(db.get(), &rng, t);
      for (int i = 0; i < kTxns; ++i) {
        ctx.Reset();
        uint64_t from = rng.Uniform(100);
        uint64_t to = rng.Uniform(100);
        if (from == to) continue;
        uint64_t a, b;
        if (!ctx.Read(0, 0, from, &a) || !ctx.Read(0, 0, to, &b)) continue;
        if (a == 0) continue;
        uint64_t na = a - 1, nb = b + 1;
        ctx.Write(0, 0, from, &na);
        ctx.Write(0, 0, to, &nb);
        SiloOccCommit(ctx, gen, epoch);  // aborts are fine
      }
    });
  }
  for (auto& t : ts) t.join();
  uint64_t total = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t v;
    db->table(0, 0)->GetRow(k).ReadStable(&v);
    total += v;
  }
  EXPECT_EQ(total, 100 * 1000u)
      << "a lost update or dirty read changed the total balance";
}

TEST(LockTable, NoWaitSemantics) {
  LockTable lt(1024);
  EXPECT_TRUE(lt.TryReadLock(0, 5));
  EXPECT_TRUE(lt.TryReadLock(0, 5)) << "shared locks coexist";
  EXPECT_FALSE(lt.TryWriteLock(0, 5)) << "writer blocked by readers";
  lt.ReadUnlock(0, 5);
  EXPECT_TRUE(lt.TryUpgrade(0, 5)) << "sole reader may upgrade";
  EXPECT_FALSE(lt.TryReadLock(0, 5)) << "readers blocked by writer";
  lt.WriteUnlock(0, 5);
  EXPECT_TRUE(lt.AllFree());
}

TEST(LockTable, DistinctKeysNeverFalselyConflict) {
  // Regression: the table used to hash locks onto bare slot words, so two
  // of one transaction's keys could collide and NO_WAIT-abort the
  // transaction against its own read lock on every retry (a permanent
  // worker wedge under TPC-C's ~30-lock NewOrders).  With thousands of
  // held locks a hashed table would collide with near certainty; the exact
  // table must grant every one.
  LockTable lt;
  for (uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(lt.TryReadLock(7, k)) << "read key " << k;
  }
  for (uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(lt.TryWriteLock(8, 1'000'000 + k)) << "write key " << k;
  }
  for (uint64_t k = 0; k < 3000; ++k) {
    lt.ReadUnlock(7, k);
    lt.WriteUnlock(8, 1'000'000 + k);
  }
  EXPECT_TRUE(lt.AllFree());
}

}  // namespace
}  // namespace star
