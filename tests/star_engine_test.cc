// End-to-end StarEngine integration: phase switching, group commit, replica
// convergence, hybrid replication, durability (Sections 3-5).

#include "core/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "tests/test_util.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star {
namespace {

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 2000;
  return o;
}

StarOptions FastStar() {
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = 0.1;
  return o;
}

Metrics RunFor(StarEngine& engine, int warm_ms, int run_ms) {
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(warm_ms));
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
  return engine.Stop();
}

void ExpectReplicasConverged(StarEngine& engine, int nodes,
                             int partitions) {
  for (int p = 0; p < partitions; ++p) {
    uint64_t expect = 0;
    bool first = true;
    for (int n = 0; n < nodes; ++n) {
      Database* db = engine.database(n);
      if (!db->HasPartition(p)) continue;
      uint64_t sum = testutil::DatabasePartitionChecksum(*db, p);
      if (first) {
        expect = sum;
        first = false;
      } else {
        EXPECT_EQ(sum, expect) << "replica divergence: partition " << p
                               << " on node " << n;
      }
    }
  }
}

TEST(StarEngine, CommitsBothTransactionClasses) {
  YcsbWorkload wl(SmallYcsb());
  StarEngine engine(FastStar(), wl);
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 1000u);
  EXPECT_GT(m.single_partition, 0u);
  EXPECT_GT(m.cross_partition, 0u);
  EXPECT_GT(engine.fence_count(), 5u) << "phases must alternate";
  EXPECT_GT(engine.epoch(), 5u) << "each fence advances the epoch";
}

TEST(StarEngine, AchievedMixTracksP) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cross_fraction = 0.2;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 500, 1500);
  double achieved =
      static_cast<double>(m.cross_partition) / m.committed;
  EXPECT_NEAR(achieved, 0.2, 0.1)
      << "Equations (1)-(2) should steer the committed mix towards P";
}

TEST(StarEngine, PZeroRunsPartitionedOnly) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cross_fraction = 0.0;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  EXPECT_GT(m.committed, 0u);
  EXPECT_EQ(m.cross_partition, 0u);
  EXPECT_DOUBLE_EQ(engine.current_tau_s_ms(), 0.0)
      << "P=0 sets tau_p=e, tau_s=0 (Section 4.3)";
}

TEST(StarEngine, ReplicasConvergeAfterStop) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  StarEngine engine(o, wl);
  RunFor(engine, 200, 1000);
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());
}

TEST(StarEngine, ReplicasConvergeUnderHybridReplication) {
  TpccOptions topt;
  topt.districts_per_warehouse = 4;
  topt.customers_per_district = 100;
  topt.items = 500;
  TpccWorkload wl(topt);
  StarOptions o = FastStar();
  o.replication = ReplicationMode::kHybrid;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1200);
  EXPECT_GT(m.committed, 100u);
  // Operation replication must reproduce the primary state exactly.
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());
}

TEST(StarEngine, HybridShipsFewerBytesThanValue) {
  TpccOptions topt;
  topt.districts_per_warehouse = 4;
  topt.customers_per_district = 100;
  topt.items = 500;
  TpccWorkload wl(topt);
  double value_bytes, hybrid_bytes;
  {
    StarOptions o = FastStar();
    StarEngine engine(o, wl);
    Metrics m = RunFor(engine, 300, 1000);
    ASSERT_GT(m.committed, 0u);
    value_bytes = m.BytesPerCommit();
  }
  {
    StarOptions o = FastStar();
    o.replication = ReplicationMode::kHybrid;
    StarEngine engine(o, wl);
    Metrics m = RunFor(engine, 300, 1000);
    ASSERT_GT(m.committed, 0u);
    hybrid_bytes = m.BytesPerCommit();
  }
  EXPECT_LT(hybrid_bytes, value_bytes * 0.85)
      << "hybrid replication should significantly cut TPC-C bytes "
         "(Section 5)";
}

TEST(StarEngine, GroupCommitLatencyTracksIterationTime) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.iteration_ms = 20;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1200);
  ASSERT_GT(m.latency.count(), 0u);
  // Release happens at the next phase switch: latency is on the order of
  // the iteration time (plus fence overhead), never far below it.
  EXPECT_GT(m.latency.p50(), MillisToNanos(2));
  EXPECT_LT(m.latency.p50(), MillisToNanos(500));
}

TEST(StarEngine, TpccMoneyInvariantsHold) {
  TpccOptions topt;
  topt.districts_per_warehouse = 4;
  topt.customers_per_district = 100;
  topt.items = 500;
  TpccWorkload wl(topt);
  StarOptions o = FastStar();
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1500);
  ASSERT_GT(m.committed, 100u);

  // Serializability witnesses on the full replica (node 0): Payment adds
  // the same amount to a warehouse and one of its districts, and every
  // customer satisfies balance + ytd_payment == 0.
  Database* db = engine.database(0);
  for (int p = 0; p < o.cluster.num_partitions(); ++p) {
    WarehouseRow w;
    db->table(TpccWorkload::kWarehouse, p)->GetRow(0).ReadStable(&w);
    double dsum = 0;
    for (int d = 0; d < topt.districts_per_warehouse; ++d) {
      DistrictRow dr;
      db->table(TpccWorkload::kDistrict, p)
          ->GetRow(wl.DistrictKey(d))
          .ReadStable(&dr);
      dsum += dr.ytd - 30000.0;
    }
    EXPECT_NEAR(w.ytd - 300000.0, dsum, 0.5) << "warehouse " << p;
    for (int d = 0; d < topt.districts_per_warehouse; ++d) {
      for (int c = 0; c < topt.customers_per_district; c += 7) {
        CustomerRow cr;
        db->table(TpccWorkload::kCustomer, p)
            ->GetRow(wl.CustomerKey(d, c))
            .ReadStable(&cr);
        EXPECT_NEAR(cr.balance + cr.ytd_payment, 0.0, 0.01)
            << "customer (" << p << "," << d << "," << c << ")";
      }
    }
  }
}

TEST(StarEngine, AllCrossPartitionMixCommitsAndConverges) {
  // P = 1: every transaction is cross-partition, so the controller must run
  // a pure single-master schedule (tau_p = 0) without stalling — the
  // regression mode for the tau bootstrap going non-positive.
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cross_fraction = 1.0;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 100u);
  EXPECT_EQ(m.single_partition, 0u);
  EXPECT_GT(m.cross_partition, 0u);
  EXPECT_GT(engine.fence_count(), 5u) << "fences must keep cycling at P=1";
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());
}

TEST(StarEngine, NearOneCrossFractionStillRunsBothPhases) {
  // P close to 1 must clamp the bootstrap so the partitioned phase keeps a
  // min_phase_ms share instead of being starved from the first iteration.
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cross_fraction = 0.99;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 100u);
  EXPECT_GE(engine.current_tau_p_ms(), o.min_phase_ms * 0.99);
  EXPECT_GE(engine.current_tau_s_ms(), o.min_phase_ms * 0.99);
}

TEST(StarEngine, ResetStatsClearsLatencyAndFenceTimers) {
  // Regression: ResetStats used to keep warm-up latency samples (and fence
  // timer accumulations), polluting every measured window.
  YcsbWorkload wl(SmallYcsb());
  StarEngine engine(FastStar(), wl);
  Metrics m = RunFor(engine, 200, 600);
  ASSERT_GT(m.committed, 0u);
  ASSERT_GT(m.latency.count(), 0u);
  engine.ResetStats();
  Metrics after = engine.Snapshot();
  EXPECT_EQ(after.committed, 0u);
  EXPECT_EQ(after.latency.count(), 0u)
      << "Snapshot after ResetStats must not see old latency samples";
  EXPECT_EQ(engine.fence_stop_ns(), 0u);
  EXPECT_EQ(engine.fence_drain_ns(), 0u);
  EXPECT_EQ(engine.fence_count(), 0u);
}

TEST(StarEngine, FullMixReplicasConvergeIndexVisible) {
  // The full five-transaction TPC-C mix end-to-end: Delivery's scans +
  // deletes and NewOrder's index-maintained inserts must leave every
  // replica's ordered indexes returning identical visible sequences after
  // the final fence.
  TpccOptions topt;
  topt.districts_per_warehouse = 4;
  topt.customers_per_district = 60;
  topt.items = 300;
  topt.full_mix = true;
  TpccWorkload wl(topt);
  StarOptions o = FastStar();
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 300, 1500);
  ASSERT_GT(m.committed, 100u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassDelivery), 0u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassOrderStatus), 0u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassStockLevel), 0u);
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());

  // Index-visible convergence: what a Scan returns — (key, tid) over
  // visible records — matches on every replica of each partition, for every
  // ordered table.
  for (int p = 0; p < o.cluster.num_partitions(); ++p) {
    for (int t : {static_cast<int>(TpccWorkload::kNewOrder),
                  static_cast<int>(TpccWorkload::kOrderLine),
                  static_cast<int>(TpccWorkload::kOrderCustIndex)}) {
      std::vector<std::pair<uint64_t, uint64_t>> expect;
      bool first = true;
      for (int n = 0; n < o.cluster.nodes(); ++n) {
        Database* db = engine.database(n);
        if (!db->HasPartition(p)) continue;
        HashTable* ht = db->table(t, p);
        ASSERT_NE(ht->index(), nullptr);
        std::vector<std::pair<uint64_t, uint64_t>> got;
        ht->index()->Scan(0, ~0ull, [&](uint64_t key, Record* rec) {
          uint64_t w = rec->LoadWord();
          if (!Record::IsAbsent(w)) got.emplace_back(key, Record::TidOf(w));
          return true;
        });
        if (first) {
          expect = std::move(got);
          first = false;
        } else {
          EXPECT_EQ(got, expect) << "index divergence: table " << t
                                 << " partition " << p << " node " << n;
        }
      }
      EXPECT_FALSE(first) << "partition stored nowhere?";
    }
  }
}

TEST(StarEngine, DurableLoggingRecoversCommittedState) {
  std::string dir = "/tmp/star_engine_test_logs";
  std::filesystem::remove_all(dir);
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  // Pin the inline serial applier: this test recovers from the worker and
  // io-thread WAL lanes only (shard-lane recovery is covered by
  // ShardedReplayLogsToPerShardWalsAndRecovers).
  o.cluster.replay_shards = 1;
  o.durable_logging = true;
  o.checkpointing = true;  // base data reaches disk via the checkpointer
  o.checkpoint_period_ms = 150;
  o.log_dir = dir;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  ASSERT_GT(m.committed, 0u);

  // Rebuild node 1's partitions from its logs (Case 4 recovery) and compare
  // to the in-memory replica.
  Database* live = engine.database(1);
  Database rebuilt(wl.Schemas(), o.cluster.num_partitions(),
                   [&] {
                     std::vector<int> parts;
                     for (int p = 0; p < o.cluster.num_partitions(); ++p) {
                       if (live->HasPartition(p)) parts.push_back(p);
                     }
                     return parts;
                   }(),
                   false);
  wal::RecoveryResult r = wal::Recover(&rebuilt, dir, 1);
  EXPECT_GT(r.committed_epoch, 0u);
  EXPECT_GT(r.log_entries_replayed, 0u);

  // The recovered state equals the live replica at the recovered epoch for
  // every record whose TID is within the committed epoch.  Since the engine
  // stopped cleanly, every record with epoch <= committed must match.
  for (int p = 0; p < o.cluster.num_partitions(); ++p) {
    if (!live->HasPartition(p)) continue;
    HashTable* lt = live->table(0, p);
    std::string scratch(lt->value_size(), '\0');
    int checked = 0;
    lt->ForEach([&](uint64_t key, Record* rec, char* value) {
      uint64_t w = rec->ReadStable(scratch.data(), scratch.size(), value);
      if (Record::IsAbsent(w)) return;
      if (Tid::Epoch(Record::TidOf(w)) > r.committed_epoch) return;
      // Never-written records reach disk only through a checkpoint; skip
      // them if the run stopped before one completed.
      if (Record::TidOf(w) == Database::kLoadTid &&
          r.checkpoint_entries == 0) {
        return;
      }
      HashTable::Row rrow = rebuilt.table(0, p)->GetRow(key);
      ASSERT_TRUE(rrow.valid()) << "missing key " << key;
      std::string rv(rrow.size, '\0');
      uint64_t rw = rrow.rec->ReadStable(rv.data(), rv.size(), rrow.value);
      EXPECT_EQ(Record::TidOf(rw), Record::TidOf(w));
      EXPECT_EQ(rv, scratch);
      ++checked;
    });
    EXPECT_GT(checked, 0);
  }
  std::filesystem::remove_all(dir);
}

TEST(StarEngine, ShardedReplayLogsToPerShardWalsAndRecovers) {
  // With durable logging, each replay worker owns a log lane (workers,
  // then io threads, then shards) that multiplexes into the logger pool's
  // per-shard WAL files; the fence's epoch markers cover them, so Case-4
  // recovery over ALL the node's logs still reaches a nonzero committed
  // epoch and replays replicated writes.
  std::string dir = "/tmp/star_engine_sharded_wal_logs";
  std::filesystem::remove_all(dir);
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cluster.replay_shards = 2;
  o.durable_logging = true;
  o.log_workers = 2;  // two logger threads -> two shard WAL files per node
  o.log_dir = dir;
  StarEngine engine(o, wl);
  Metrics m = RunFor(engine, 200, 800);
  ASSERT_GT(m.committed, 0u);
  EXPECT_GT(m.wal_bytes, 0u);
  EXPECT_GT(m.wal_epoch_markers, 0u);
  EXPECT_GT(m.durable_epoch, 0u)
      << "a clean run's fences must have advanced the cluster durable epoch";

  // Node 1 is a replica target: both of its logger shard files (fresh
  // incarnation 1) must exist and hold the applied replication.
  uintmax_t shard_wal_bytes = 0;
  for (int s = 0; s < o.log_workers; ++s) {
    std::string path = wal::LoggerPool::ShardPath(dir, 1, /*inc=*/1, s);
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    shard_wal_bytes += std::filesystem::file_size(path);
  }
  EXPECT_GT(shard_wal_bytes, 0u)
      << "logger threads must persist what the lanes publish";

  Database* live = engine.database(1);
  Database rebuilt(wl.Schemas(), o.cluster.num_partitions(),
                   [&] {
                     std::vector<int> parts;
                     for (int p = 0; p < o.cluster.num_partitions(); ++p) {
                       if (live->HasPartition(p)) parts.push_back(p);
                     }
                     return parts;
                   }(),
                   false);
  wal::RecoveryResult r = wal::Recover(&rebuilt, dir, 1);
  EXPECT_GT(r.committed_epoch, 0u);
  EXPECT_GT(r.log_entries_replayed, 0u);
  std::filesystem::remove_all(dir);
}

TEST(StarEngine, DefaultReplayAutosizesToShardedPipeline) {
  // replay_shards = 0 (the default) derives a shard count from the host
  // core budget and always takes the sharded pipeline — on a 1-core host it
  // degrades to a single prefetched replay worker, never the inline apply.
  YcsbWorkload wl(SmallYcsb());
  StarEngine engine(FastStar(), wl);
  int expect = ResolveReplayShards(0);
  EXPECT_GE(expect, 1);
  for (int n = 0; n < FastStar().cluster.nodes(); ++n) {
    ASSERT_NE(engine.sharded_applier(n), nullptr)
        << "autosized default must run the sharded pipeline";
    EXPECT_EQ(engine.sharded_applier(n)->shards(), expect);
  }
}

TEST(StarEngine, ExplicitSingleShardKeepsInlineSerialApply) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cluster.replay_shards = 1;
  StarEngine engine(o, wl);
  for (int n = 0; n < o.cluster.nodes(); ++n) {
    EXPECT_EQ(engine.sharded_applier(n), nullptr)
        << "replay_shards=1 must keep today's io-thread inline apply";
  }
}

TEST(StarEngine, ShardedReplayConvergesAndMatchesSerial) {
  // The same workload/seed run with the serial applier and with the 4-shard
  // replay pipeline must both converge; sharding only changes *how* the
  // replica drains its stream, never what state it reaches.
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cluster.replay_shards = 4;
  StarEngine engine(o, wl);
  for (int n = 0; n < o.cluster.nodes(); ++n) {
    EXPECT_NE(engine.sharded_applier(n), nullptr);
    EXPECT_EQ(engine.sharded_applier(n)->shards(), 4);
  }
  Metrics m = RunFor(engine, 200, 1000);
  EXPECT_GT(m.committed, 100u);
  EXPECT_GT(engine.fence_count(), 2u);
  EXPECT_EQ(m.replication_ignored_batches, 0u)
      << "no batch may be dropped outside failure experiments";
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());
}

TEST(StarEngine, FenceCompletesWithBackloggedReplayQueues) {
  // The replay-aware fence: with every replay worker deliberately stalled,
  // shard queues build a backlog behind each fence — the drain round must
  // wait for the queues (applied counters lag sent) instead of declaring
  // the stream drained, and the run must still converge.
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FastStar();
  o.cluster.replay_shards = 2;
  StarEngine engine(o, wl);
  engine.Start();
  for (int n = 0; n < o.cluster.nodes(); ++n) {
    ASSERT_NE(engine.sharded_applier(n), nullptr);
    engine.sharded_applier(n)->set_apply_delay_ns_for_test(3'000'000);  // 3ms
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  uint64_t fences_while_stalled = engine.fence_count();
  for (int n = 0; n < o.cluster.nodes(); ++n) {
    engine.sharded_applier(n)->set_apply_delay_ns_for_test(0);
  }
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(fences_while_stalled, 0u)
      << "fences must complete while replay queues are backlogged";
  ExpectReplicasConverged(engine, o.cluster.nodes(),
                          o.cluster.num_partitions());
}

}  // namespace
}  // namespace star
