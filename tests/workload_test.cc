// Workload generators: schema sanity, deterministic population, request
// shapes (Section 7.1.1's configurations).

#include <gtest/gtest.h>

#include "cc/silo.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star {
namespace {

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 1000;
  return o;
}

TpccOptions SmallTpcc() {
  TpccOptions o;
  o.districts_per_warehouse = 4;
  o.customers_per_district = 50;
  o.items = 200;
  return o;
}

TEST(Ycsb, PopulationIsDeterministicPerPartition) {
  YcsbWorkload wl(SmallYcsb());
  auto mk = [&] {
    auto db = std::make_unique<Database>(wl.Schemas(), 2,
                                         std::vector<int>{0, 1}, false);
    wl.PopulatePartition(*db, 0);
    wl.PopulatePartition(*db, 1);
    return db;
  };
  auto a = mk();
  auto b = mk();
  for (int p = 0; p < 2; ++p) {
    for (uint64_t k = 0; k < 1000; k += 97) {
      YcsbRow ra, rb;
      a->table(0, p)->GetRow(k).ReadStable(&ra);
      b->table(0, p)->GetRow(k).ReadStable(&rb);
      EXPECT_EQ(0, std::memcmp(&ra, &rb, sizeof(ra)))
          << "replicas must load identical bytes";
    }
  }
}

TEST(Ycsb, SinglePartitionStaysHome) {
  YcsbWorkload wl(SmallYcsb());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    TxnRequest req = wl.MakeSinglePartition(rng, 3, 8);
    EXPECT_FALSE(req.cross_partition);
    for (const auto& a : req.accesses) {
      EXPECT_EQ(a.partition, 3);
      EXPECT_LT(a.key, 1000u);
    }
  }
}

TEST(Ycsb, CrossPartitionLeavesHome) {
  YcsbWorkload wl(SmallYcsb());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    TxnRequest req = wl.MakeCrossPartition(rng, 3, 8);
    bool leaves = false;
    for (const auto& a : req.accesses) leaves |= (a.partition != 3);
    EXPECT_TRUE(leaves);
  }
}

TEST(Ycsb, MixRespectsReadRatio) {
  YcsbWorkload wl(SmallYcsb());
  Rng rng(2);
  int writes = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    TxnRequest req = wl.MakeSinglePartition(rng, 0, 8);
    for (const auto& a : req.accesses) {
      writes += a.write;
      ++total;
    }
  }
  EXPECT_NEAR(writes / static_cast<double>(total), 0.1, 0.02)
      << "90/10 read/read-modify-write mix (Section 7.1.1)";
}

TEST(Tpcc, SchemasCoverNineTablesPlusIndex) {
  TpccWorkload wl(SmallTpcc());
  auto schemas = wl.Schemas();
  ASSERT_EQ(schemas.size(), 11u);  // 9 TPC-C tables + two index tables
  EXPECT_EQ(schemas[TpccWorkload::kCustomer].value_size,
            sizeof(CustomerRow));
  EXPECT_GE(sizeof(CustomerRow::data), 500u)
      << "C_DATA must be the 500-character field of Section 5";
}

TEST(Tpcc, PopulateLoadsExpectedCounts) {
  TpccWorkload wl(SmallTpcc());
  Database db(wl.Schemas(), 1, {0}, false);
  wl.PopulatePartition(db, 0);
  EXPECT_EQ(db.table(TpccWorkload::kWarehouse, 0)->size(), 1u);
  EXPECT_EQ(db.table(TpccWorkload::kDistrict, 0)->size(), 4u);
  EXPECT_EQ(db.table(TpccWorkload::kCustomer, 0)->size(), 200u);
  EXPECT_EQ(db.table(TpccWorkload::kItem, 0)->size(), 200u);
  EXPECT_EQ(db.table(TpccWorkload::kStock, 0)->size(), 200u);
}

TEST(Tpcc, ItemCatalogueIdenticalAcrossPartitions) {
  TpccWorkload wl(SmallTpcc());
  Database db(wl.Schemas(), 2, {0, 1}, false);
  wl.PopulatePartition(db, 0);
  wl.PopulatePartition(db, 1);
  for (int i = 0; i < 200; i += 17) {
    ItemRow a, b;
    db.table(TpccWorkload::kItem, 0)->GetRow(i).ReadStable(&a);
    db.table(TpccWorkload::kItem, 1)->GetRow(i).ReadStable(&b);
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(a)));
  }
}

TEST(Tpcc, NewOrderExecutesAgainstPopulatedPartition) {
  TpccWorkload wl(SmallTpcc());
  Database db(wl.Schemas(), 1, {0}, false);
  wl.PopulatePartition(db, 0);
  Rng rng(7);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  size_t orders0 = db.table(TpccWorkload::kOrder, 0)->size();
  size_t new_orders0 = db.table(TpccWorkload::kNewOrder, 0)->size();
  int committed = 0, user_aborts = 0;
  for (int i = 0; i < 500; ++i) {
    TxnRequest req = wl.MakeSinglePartition(rng, 0, 1);
    SiloContext ctx(&db, &rng, 0);
    TxnStatus st = req.proc(ctx);
    if (st == TxnStatus::kCommitted) {
      ASSERT_EQ(SiloSerialCommit(ctx, gen, epoch).status,
                TxnStatus::kCommitted);
      ++committed;
    } else {
      ASSERT_EQ(st, TxnStatus::kAbortUser)
          << "single-partition TPC-C must only abort by application choice";
      ++user_aborts;
    }
  }
  EXPECT_GT(committed, 450);
  // Each committed NewOrder inserted one ORDER and one NEW-ORDER row on top
  // of the populated baseline.
  EXPECT_GT(db.table(TpccWorkload::kOrder, 0)->size(), orders0);
  EXPECT_EQ(db.table(TpccWorkload::kOrder, 0)->size() - orders0,
            db.table(TpccWorkload::kNewOrder, 0)->size() - new_orders0);
}

TEST(Tpcc, PaymentPreservesYtdInvariant) {
  // Payment adds its amount to the warehouse and to one of its districts:
  // w_ytd - 300000 == sum_d (d_ytd - 30000) at all times.
  TpccWorkload wl(SmallTpcc());
  Database db(wl.Schemas(), 1, {0}, false);
  wl.PopulatePartition(db, 0);
  Rng rng(3);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  for (int i = 0; i < 300; ++i) {
    TxnRequest req = wl.MakePayment(rng, 0, 1, false);
    SiloContext ctx(&db, &rng, 0);
    ASSERT_EQ(req.proc(ctx), TxnStatus::kCommitted);
    ASSERT_EQ(SiloSerialCommit(ctx, gen, epoch).status,
              TxnStatus::kCommitted);
  }
  WarehouseRow w;
  db.table(TpccWorkload::kWarehouse, 0)->GetRow(0).ReadStable(&w);
  double district_sum = 0;
  for (int d = 0; d < 4; ++d) {
    DistrictRow dr;
    db.table(TpccWorkload::kDistrict, 0)
        ->GetRow(wl.DistrictKey(d))
        .ReadStable(&dr);
    district_sum += dr.ytd - 30000.0;
  }
  EXPECT_NEAR(w.ytd - 300000.0, district_sum, 0.01);
  EXPECT_GT(w.ytd, 300000.0);
}

TEST(Tpcc, BadCreditPaymentPrependsCustomerData) {
  TpccWorkload wl(SmallTpcc());
  Database db(wl.Schemas(), 1, {0}, false);
  wl.PopulatePartition(db, 0);
  // Find a bad-credit customer.
  int bc_d = -1, bc_c = -1;
  for (int d = 0; d < 4 && bc_d < 0; ++d) {
    for (int c = 0; c < 50; ++c) {
      CustomerRow cr;
      db.table(TpccWorkload::kCustomer, 0)
          ->GetRow(wl.CustomerKey(d, c))
          .ReadStable(&cr);
      if (cr.credit[0] == 'B') {
        bc_d = d;
        bc_c = c;
        break;
      }
    }
  }
  ASSERT_GE(bc_d, 0) << "population must create ~10% bad-credit customers";
  CustomerRow before;
  db.table(TpccWorkload::kCustomer, 0)
      ->GetRow(wl.CustomerKey(bc_d, bc_c))
      .ReadStable(&before);

  Rng rng(1);
  SiloContext ctx(&db, &rng, 0);
  ctx.ApplyOperation(
      TpccWorkload::kCustomer, 0, wl.CustomerKey(bc_d, bc_c),
      Operation::StringPrepend(offsetof(CustomerRow, data),
                               sizeof(CustomerRow::data), "PAY|"));
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  ASSERT_EQ(SiloSerialCommit(ctx, gen, epoch).status, TxnStatus::kCommitted);

  CustomerRow after;
  db.table(TpccWorkload::kCustomer, 0)
      ->GetRow(wl.CustomerKey(bc_d, bc_c))
      .ReadStable(&after);
  EXPECT_EQ(std::string(after.data, 4), "PAY|");
  EXPECT_EQ(std::string(after.data + 4, 8), std::string(before.data, 8))
      << "old C_DATA shifted right";
}

TEST(Tpcc, CrossPaymentTargetsRemoteWarehouse) {
  TpccWorkload wl(SmallTpcc());
  Rng rng(5);
  int remote = 0;
  for (int i = 0; i < 200; ++i) {
    TxnRequest req = wl.MakePayment(rng, 2, 8, true);
    for (const auto& a : req.accesses) {
      if (a.table == TpccWorkload::kCustomer && a.partition != 2) ++remote;
    }
  }
  EXPECT_EQ(remote, 200) << "cross Payment pays through a remote customer";
}

}  // namespace
}  // namespace star
