// The STAR engine over real TCP sockets (single process, loopback,
// ephemeral ports): the phase-switching protocol, replication convergence,
// and fail-stop handling must work unchanged on the deployment substrate.

#include <gtest/gtest.h>

#include <thread>

#include "core/engine.h"
#include "tests/test_util.h"
#include "workload/ycsb.h"

namespace star {
namespace {

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 1000;
  return o;
}

StarOptions TcpStar() {
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.cross_fraction = 0.1;
  o.transport = net::TransportKind::kTcp;  // ephemeral loopback ports
  o.fence_timeout_ms = 2000;
  return o;
}

TEST(TcpEngine, CommitsAndConvergesOverLoopback) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = TcpStar();
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  Metrics m = engine.Stop();

  EXPECT_GT(m.committed, 100u) << "STAR must commit over TCP";
  EXPECT_GT(m.cross_partition, 0u) << "single-master phase must run";
  EXPECT_GT(m.network_bytes, 0u) << "traffic must be accounted";
  EXPECT_EQ(m.network_dropped_messages, 0u)
      << "no fail-stop drops without failures";

  // Replicas of every partition must agree after the final drain.
  Database* full = engine.database(0);
  int compared = 0;
  for (int node = 1; node < o.cluster.nodes(); ++node) {
    Database* db = engine.database(node);
    for (int p = 0; p < o.cluster.num_partitions(); ++p) {
      if (!db->HasPartition(p)) continue;
      EXPECT_EQ(testutil::DatabasePartitionChecksum(*db, p),
                testutil::DatabasePartitionChecksum(*full, p))
          << "node " << node << " partition " << p;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(TcpEngine, SurvivesInjectedFailureOverLoopback) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = TcpStar();
  o.two_version = true;
  o.fence_timeout_ms = 500;  // quick detection
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  engine.InjectFailure(3);
  uint64_t deadline = NowNanos() + MillisToNanos(10000);
  while (engine.IsNodeHealthy(3) && NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(engine.IsNodeHealthy(3)) << "fence must detect the failure";
  EXPECT_EQ(engine.state(), SystemState::kRunning);

  // Drops happen in the window between the cut and the view change that
  // removes the node from the replication targets, so check the cumulative
  // transport counter (ResetStats would have consumed the window).
  EXPECT_GT(engine.transport()->dropped_messages(), 0u)
      << "sends to the failed node must surface in the drop accounting";

  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u) << "survivors keep committing over TCP";
}

}  // namespace
}  // namespace star
