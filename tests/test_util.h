#ifndef STAR_TESTS_TEST_UTIL_H_
#define STAR_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "storage/checksum.h"
#include "storage/database.h"

namespace star::testutil {

/// Replica-convergence checksums moved to src/storage/checksum.h (the
/// multi-process shutdown round uses them too); these aliases keep the
/// historical test spelling.
using star::DatabasePartitionChecksum;
using star::PartitionChecksum;

}  // namespace star::testutil

#endif  // STAR_TESTS_TEST_UTIL_H_
