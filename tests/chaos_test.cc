// Chaos harness (the robustness tentpole): randomized, seeded fault
// schedules — delay/jitter, loss-with-retransmission, asymmetric
// partitions, link flaps — injected by net::FaultTransport underneath a
// live STAR cluster, with four invariants checked on every episode:
//
//   1. convergence: all replicas of every partition end byte-identical
//   2. monotonicity: epoch and durable epoch never move backwards
//   3. no acked-commit loss: every client-acked write survives in the store
//   4. liveness: once the faults lift, the cluster commits again
//
// Every episode is reproducible from its printed seed:
//   STAR_CHAOS_BASE_SEED=<seed> STAR_CHAOS_TCP_SEEDS=1 ./chaos_test \
//       --gtest_filter='Chaos.TcpSoak'
// (and the same knobs with STAR_CHAOS_SIM_SEEDS for Chaos.SimSweep).  A
// failing seed also dumps its full fault schedule to stderr.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "tests/chaos_util.h"

namespace star::chaos {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

/// Per-seed configuration mix: most episodes are plain; every third adds
/// replica readers (snapshot reads must survive chaos too) and every
/// fourth runs with durable logging so the durable-epoch invariant is
/// exercised against a real WAL, not a constant zero.
ChaosConfig ConfigForSeed(uint64_t seed) {
  ChaosConfig cfg;
  cfg.replica_readers = (seed % 3) == 0;
  cfg.durable = (seed % 4) == 1;
  return cfg;
}

void RunSimSeeds(uint64_t base_seed, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    std::string diag;
    int rc = RunSimChaosEpisode(seed, ConfigForSeed(seed), &diag);
    if (rc != 0) {
      PrintSchedule(seed, ChaosOptions(seed, ConfigForSeed(seed), 300, 1500)
                              .fault.episodes,
                    stderr);
    }
    ASSERT_EQ(rc, 0) << "sim chaos seed " << seed << " failed (rc " << rc
                     << "):\n"
                     << diag
                     << "replay: STAR_CHAOS_BASE_SEED=" << seed
                     << " STAR_CHAOS_SIM_SEEDS=1 ./chaos_test "
                        "--gtest_filter='Chaos.SimSweep'";
  }
}

void RunTcpSeeds(uint64_t base_seed, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    int rc = RunTcpChaosEpisode(seed, ConfigForSeed(seed));
    ASSERT_EQ(rc, 0) << "tcp chaos seed " << seed << " failed (rc " << rc
                     << "; schedule above); replay: STAR_CHAOS_BASE_SEED="
                     << seed
                     << " STAR_CHAOS_TCP_SEEDS=1 ./chaos_test "
                        "--gtest_filter='Chaos.TcpSoak'";
  }
}

/// In-process simulated sweep: deeper schedules, full oracle + convergence
/// checks per episode.
TEST(Chaos, SimSweep) {
  RunSimSeeds(EnvU64("STAR_CHAOS_BASE_SEED", 1000),
              EnvU64("STAR_CHAOS_SIM_SEEDS", 12));
}

/// The acceptance soak: >= 50 randomized schedules against the real
/// multiprocess TCP cluster (one process per node + coordinator, faults
/// aligned across processes via a shared CLOCK_MONOTONIC origin).
TEST(Chaos, TcpSoak) {
  RunTcpSeeds(EnvU64("STAR_CHAOS_BASE_SEED", 5000),
              EnvU64("STAR_CHAOS_TCP_SEEDS", 50));
}

/// chaos_smoke tier (ctest -L chaos_smoke): one quick episode per
/// substrate, suitable for every CI run.
TEST(Chaos, SmokeSim) { RunSimSeeds(EnvU64("STAR_CHAOS_BASE_SEED", 42), 1); }

TEST(Chaos, SmokeTcp) { RunTcpSeeds(EnvU64("STAR_CHAOS_BASE_SEED", 42), 1); }

}  // namespace
}  // namespace star::chaos
