// Record meta-word protocol, stable reads, Thomas write rule, two-version
// epoch revert (Sections 3 and 4.5.2).

#include "storage/record.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/hash_table.h"

namespace star {
namespace {

struct Slot {
  Record rec;
  char value[16];
  char backup[16];

  Slot() {
    rec.Init(false);
    std::memset(value, 0, sizeof(value));
  }
};

TEST(Record, LockTransitions) {
  Slot s;
  EXPECT_TRUE(s.rec.TryLock());
  EXPECT_FALSE(s.rec.TryLock()) << "second lock must fail";
  s.rec.Unlock();
  EXPECT_TRUE(s.rec.TryLock());
  s.rec.UnlockWithTid(Tid::Make(1, 5, 0));
  EXPECT_EQ(s.rec.LoadTid(), Tid::Make(1, 5, 0));
  EXPECT_TRUE(s.rec.IsPresent()) << "UnlockWithTid clears the absent bit";
}

TEST(Record, UnlockMarkAbsentRestoresInvisibility) {
  Slot s;
  s.rec.Init(true);
  EXPECT_FALSE(s.rec.IsPresent());
  ASSERT_TRUE(s.rec.TryLock());
  s.rec.UnlockMarkAbsent();
  EXPECT_FALSE(s.rec.IsPresent());
  EXPECT_FALSE(Record::IsLocked(s.rec.LoadWord()));
}

TEST(Record, ThomasWriteRuleOrdering) {
  Slot s;
  char v1[16] = "first";
  char v2[16] = "second";
  EXPECT_TRUE(s.rec.ApplyThomas(Tid::Make(1, 2, 0), v2, 16, s.value, false));
  // An older write must be discarded.
  EXPECT_FALSE(s.rec.ApplyThomas(Tid::Make(1, 1, 0), v1, 16, s.value, false));
  EXPECT_STREQ(s.value, "second");
  EXPECT_EQ(s.rec.LoadTid(), Tid::Make(1, 2, 0));
}

TEST(Record, ThomasAppliesToAbsentRecord) {
  Slot s;
  s.rec.Init(true);
  char v[16] = "x";
  EXPECT_TRUE(s.rec.ApplyThomas(Tid::Make(1, 1, 0), v, 16, s.value, false));
  EXPECT_TRUE(s.rec.IsPresent());
}

// Property: applying any permutation of a write stream converges to the
// state with the largest TID — the guarantee asynchronous value replication
// rests on (Section 3).
class ThomasShuffleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThomasShuffleProperty, AnyOrderConverges) {
  Rng rng(GetParam());
  std::vector<std::pair<uint64_t, std::string>> writes;
  for (int i = 1; i <= 50; ++i) {
    writes.emplace_back(Tid::Make(1 + i / 25, i, i % 3),
                        "v" + std::to_string(i));
  }
  auto expect = writes.back();
  for (int shuffle = 0; shuffle < 20; ++shuffle) {
    for (size_t i = writes.size(); i > 1; --i) {
      std::swap(writes[i - 1], writes[rng.Uniform(i)]);
    }
    Slot s;
    for (auto& [tid, v] : writes) {
      char buf[16] = {};
      std::memcpy(buf, v.data(), v.size());
      s.rec.ApplyThomas(tid, buf, 16, s.value, false);
    }
    EXPECT_EQ(s.rec.LoadTid(), expect.first);
    EXPECT_EQ(std::string(s.value), expect.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThomasShuffleProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(Record, StableReadNeverTears) {
  // A writer repeatedly installs all-same-byte values; readers must never
  // observe a mix of bytes from two versions.
  Slot s;
  std::memset(s.value, 'a', 16);
  s.rec.UnlockWithTid(Tid::Make(1, 1, 0));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(3);
    uint64_t seq = 2;
    while (!stop.load()) {
      char buf[16];
      std::memset(buf, 'a' + static_cast<char>(rng.Uniform(26)), 16);
      s.rec.LockSpin();
      s.rec.Store(Tid::Make(1, seq, 0), buf, 16, s.value, false);
      s.rec.UnlockWithTid(Tid::Make(1, seq, 0));
      ++seq;
    }
  });
  for (int i = 0; i < 200000; ++i) {
    char out[16];
    s.rec.ReadStable(out, 16, s.value);
    for (int j = 1; j < 16; ++j) {
      ASSERT_EQ(out[j], out[0]) << "torn read at byte " << j;
    }
  }
  stop.store(true);
  writer.join();
}

TEST(Record, TwoVersionRevertRestoresPreviousEpoch) {
  Slot s;
  char v1[16] = "epoch1";
  char v2[16] = "epoch2";
  s.rec.LockSpin();
  s.rec.Store(Tid::Make(1, 1, 0), v1, 16, s.value, true);
  s.rec.UnlockWithTid(Tid::Make(1, 1, 0));
  s.rec.LockSpin();
  s.rec.Store(Tid::Make(2, 1, 0), v2, 16, s.value, true);
  s.rec.UnlockWithTid(Tid::Make(2, 1, 0));
  EXPECT_STREQ(s.value, "epoch2");

  s.rec.RevertEpoch(2, 16, s.value);
  EXPECT_STREQ(s.value, "epoch1");
  EXPECT_EQ(Tid::Epoch(s.rec.LoadTid()), 1u);
}

TEST(Record, RevertLeavesOtherEpochsAlone) {
  Slot s;
  char v1[16] = "keep";
  s.rec.LockSpin();
  s.rec.Store(Tid::Make(3, 1, 0), v1, 16, s.value, true);
  s.rec.UnlockWithTid(Tid::Make(3, 1, 0));
  s.rec.RevertEpoch(4, 16, s.value);  // nothing from epoch 4
  EXPECT_STREQ(s.value, "keep");
}

TEST(Record, RevertRemovesRecordsCreatedInEpoch) {
  Slot s;
  s.rec.Init(true);  // brand-new record, never existed before
  char v[16] = "new";
  s.rec.LockSpin();
  s.rec.Store(Tid::Make(5, 1, 0), v, 16, s.value, true);
  s.rec.UnlockWithTid(Tid::Make(5, 1, 0));
  EXPECT_TRUE(s.rec.IsPresent());
  s.rec.RevertEpoch(5, 16, s.value);
  EXPECT_FALSE(s.rec.IsPresent())
      << "an insert from the reverted epoch must disappear";
}

TEST(Record, MultipleWritesSameEpochRevertToPreEpochVersion) {
  Slot s;
  char v0[16] = "base";
  char v1[16] = "mid";
  char v2[16] = "late";
  s.rec.LockSpin();
  s.rec.Store(Tid::Make(1, 1, 0), v0, 16, s.value, true);
  s.rec.UnlockWithTid(Tid::Make(1, 1, 0));
  for (auto* v : {v1, v2}) {
    static uint64_t seq = 1;
    s.rec.LockSpin();
    s.rec.Store(Tid::Make(2, seq, 0), v, 16, s.value, true);
    s.rec.UnlockWithTid(Tid::Make(2, seq, 0));
    ++seq;
  }
  s.rec.RevertEpoch(2, 16, s.value);
  EXPECT_STREQ(s.value, "base")
      << "backup must hold the newest pre-epoch version, not an intra-epoch "
         "one";
}

}  // namespace
}  // namespace star
