// Replication formats, the value-vs-operation correctness argument of
// Figure 8, and the stream/applier accounting used by the fence.

#include "replication/applier.h"

#include <gtest/gtest.h>

#include <cstring>

#include "replication/log_entry.h"
#include "replication/stream.h"

namespace star {
namespace {

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", 16, 64}};
  auto db = std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
  char zero[16] = {};
  for (uint64_t k = 0; k < 10; ++k) db->Load(0, 0, k, zero);
  return db;
}

TEST(RepEntry, ValueRoundTrip) {
  WriteBuffer buf;
  SerializeValueEntry(buf, 1, 2, 42, Tid::Make(3, 4, 5), "hello world!....");
  ReadBuffer in(buf.data());
  RepEntry e = RepEntry::Deserialize(in);
  EXPECT_EQ(e.kind, RepKind::kValue);
  EXPECT_EQ(e.table, 1);
  EXPECT_EQ(e.partition, 2);
  EXPECT_EQ(e.key, 42u);
  EXPECT_EQ(e.tid, Tid::Make(3, 4, 5));
  EXPECT_EQ(e.value, "hello world!....");
  EXPECT_TRUE(in.Done());
}

TEST(RepEntry, OperationRoundTrip) {
  WriteBuffer buf;
  std::vector<Operation> ops{Operation::AddI64(0, 9),
                             Operation::StringPrepend(8, 8, "ab")};
  SerializeOperationEntry(buf, 0, 0, 7, Tid::Make(1, 1, 1), ops);
  ReadBuffer in(buf.data());
  RepEntry e = RepEntry::Deserialize(in);
  EXPECT_EQ(e.kind, RepKind::kOperation);
  ASSERT_EQ(e.ops.size(), 2u);
  EXPECT_EQ(e.ops[0].code, Operation::Code::kAddI64);
  EXPECT_EQ(e.ops[1].operand, "ab");
}

TEST(Operation, StringPrependTruncates) {
  char field[8] = {'1', '2', '3', '4', '5', '6', '7', '8'};
  Operation::StringPrepend(0, 8, "XY").ApplyTo(field);
  EXPECT_EQ(std::string(field, 8), "XY123456");
}

TEST(Operation, AddF64) {
  char field[8];
  double v = 1.5;
  std::memcpy(field, &v, 8);
  Operation::AddF64(0, 2.25).ApplyTo(field);
  std::memcpy(&v, field, 8);
  EXPECT_DOUBLE_EQ(v, 3.75);
}

// Figure 8: with multi-threaded writers, value replication must ship the
// whole record.  Partial-field values applied out of order lose T1's update;
// full-record values converge correctly under the Thomas rule.
TEST(Replication, Figure8WholeRecordValueSurvivesReordering) {
  // Record layout: [A: 8 bytes][B: 8 bytes], initial A=0, B=0.
  // T1 (tid 1): A = 1.   T2 (tid 2): B = 2.   Applied in order T2, T1.
  auto db = MakeDb();
  HashTable::Row row = db->table(0, 0)->GetRow(0);

  // Correct scheme: each write carries all fields.
  char t1_full[16] = {};
  t1_full[0] = 1;  // A=1, B=0 (T1 ran first on the primary)
  char t2_full[16] = {};
  t2_full[0] = 1;
  t2_full[8] = 2;  // A=1, B=2 (T2 observed T1's A)
  row.rec->ApplyThomas(Tid::Make(1, 2, 0), t2_full, 16, row.value, false);
  row.rec->ApplyThomas(Tid::Make(1, 1, 0), t1_full, 16, row.value, false);
  EXPECT_EQ(row.value[0], 1) << "A must survive";
  EXPECT_EQ(row.value[8], 2) << "B must survive";

  // Incorrect scheme (what the paper warns against): T2 ships only B, so
  // its record image carries a stale A; T1's later-arriving write is
  // discarded by the Thomas rule and A is lost.
  HashTable::Row row2 = db->table(0, 0)->GetRow(1);
  char t2_partial[16] = {};
  t2_partial[8] = 2;  // B=2 but A missing (stale 0)
  char t1_partial[16] = {};
  t1_partial[0] = 1;  // A=1 but B missing
  row2.rec->ApplyThomas(Tid::Make(1, 2, 0), t2_partial, 16, row2.value,
                        false);
  row2.rec->ApplyThomas(Tid::Make(1, 1, 0), t1_partial, 16, row2.value,
                        false);
  EXPECT_EQ(row2.value[0], 0) << "demonstrates the lost update of Figure 8";
}

// Figure 8 right side: with a single writer per partition and FIFO delivery,
// operation replication applies updated fields in order and converges.
TEST(Replication, Figure8OperationReplicationInOrder) {
  auto db = MakeDb();
  ReplicationCounters counters(2);
  ReplicationApplier applier(db.get(), &counters);

  WriteBuffer batch;
  SerializeOperationEntry(batch, 0, 0, 2, Tid::Make(1, 1, 0),
                          {Operation::AddI64(0, 1)});  // T1: A += 1
  SerializeOperationEntry(batch, 0, 0, 2, Tid::Make(1, 2, 0),
                          {Operation::AddI64(8, 2)});  // T2: B += 2
  EXPECT_EQ(applier.ApplyBatch(0, batch.data()), 2u);

  HashTable::Row row = db->table(0, 0)->GetRow(2);
  int64_t a, b;
  std::memcpy(&a, row.value, 8);
  std::memcpy(&b, row.value + 8, 8);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(row.rec->LoadTid(), Tid::Make(1, 2, 0));
  EXPECT_EQ(counters.applied_from(0), 2u);
}

TEST(Replication, StaleOperationSkipped) {
  auto db = MakeDb();
  ReplicationCounters counters(2);
  ReplicationApplier applier(db.get(), &counters);
  WriteBuffer b1;
  SerializeOperationEntry(b1, 0, 0, 3, Tid::Make(2, 5, 0),
                          {Operation::AddI64(0, 10)});
  applier.ApplyBatch(0, b1.data());
  // Replay of an older entry must not double-apply.
  WriteBuffer b2;
  SerializeOperationEntry(b2, 0, 0, 3, Tid::Make(2, 4, 0),
                          {Operation::AddI64(0, 100)});
  applier.ApplyBatch(0, b2.data());
  int64_t a;
  std::memcpy(&a, db->table(0, 0)->GetRow(3).value, 8);
  EXPECT_EQ(a, 10);
}

TEST(Replication, ApplierCreatesMissingRecords) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  WriteBuffer batch;
  char v[16] = "inserted";
  SerializeValueEntry(batch, 0, 0, 999, Tid::Make(1, 1, 0),
                      std::string_view(v, 16));
  applier.ApplyBatch(0, batch.data());
  HashTable::Row row = db->table(0, 0)->GetRow(999);
  ASSERT_TRUE(row.valid());
  EXPECT_TRUE(row.rec->IsPresent());
  EXPECT_STREQ(row.value, "inserted");
}

TEST(Replication, WalHookSeesFullRecordForOperations) {
  // Section 5: operation entries are transformed into whole-record values
  // before logging so recovery can replay in any order.
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  std::string logged;
  applier.set_wal_hook([&](int32_t, int32_t, uint64_t, uint64_t,
                           std::string_view value, bool) {
    logged = std::string(value);
  });
  WriteBuffer batch;
  SerializeOperationEntry(batch, 0, 0, 4, Tid::Make(1, 1, 0),
                          {Operation::AddI64(0, 42)});
  applier.ApplyBatch(0, batch.data());
  ASSERT_EQ(logged.size(), 16u);
  int64_t a;
  std::memcpy(&a, logged.data(), 8);
  EXPECT_EQ(a, 42) << "the log must contain the post-operation record image";
}

TEST(ReplicationCounters, TracksBothDirections) {
  ReplicationCounters c(3);
  c.AddSent(1, 5);
  c.AddSent(2, 7);
  c.AddApplied(0, 3);
  EXPECT_EQ(c.sent_to(1), 5u);
  EXPECT_EQ(c.sent_to(2), 7u);
  EXPECT_EQ(c.applied_from(0), 3u);
  c.Reset();
  EXPECT_EQ(c.sent_to(1), 0u);
}

}  // namespace
}  // namespace star
