// Transactional range scans: visibility, read-your-writes, logical deletes,
// phantom-abort validation under concurrency (Silo-style scan-set
// re-validation), delete replication, and the full-mix TPC-C transactions
// built on top of them.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "cc/silo.h"
#include "replication/applier.h"
#include "replication/log_entry.h"
#include "workload/tpcc.h"

namespace star {
namespace {

struct KeyCollector {
  std::vector<uint64_t> keys;
  std::vector<int64_t> values;

  static bool Visit(void* arg, uint64_t key, const void* value) {
    auto* c = static_cast<KeyCollector*>(arg);
    c->keys.push_back(key);
    c->values.push_back(*static_cast<const int64_t*>(value));
    return true;
  }
};

std::unique_ptr<Database> MakeOrderedDb() {
  std::vector<TableSchema> schemas{
      {"t", sizeof(int64_t), 256, /*ordered=*/true}};
  auto db = std::make_unique<Database>(schemas, 1, std::vector<int>{0},
                                       /*two_version=*/false);
  for (uint64_t k = 10; k <= 50; k += 10) {
    int64_t v = static_cast<int64_t>(k * 100);
    db->Load(0, 0, k, &v);
  }
  return db;
}

TEST(ScanTxn, ScanSeesCommittedRecordsInOrder) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  SiloContext ctx(db.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(ctx.Scan(0, 0, 15, 45, 0, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{20, 30, 40}));
  EXPECT_EQ(c.values, (std::vector<int64_t>{2000, 3000, 4000}));
}

TEST(ScanTxn, ScanLimitStopsEarly) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  SiloContext ctx(db.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(ctx.Scan(0, 0, 0, 100, 2, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{10, 20}));
}

TEST(ScanTxn, ScanObservesOwnWritesAndDeletes) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  SiloContext ctx(db.get(), &rng, 0);
  int64_t v = 7777;
  ctx.Write(0, 0, 30, &v);   // buffered update
  ctx.Delete(0, 0, 40);      // buffered delete
  KeyCollector c;
  ASSERT_TRUE(ctx.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{10, 20, 30, 50}))
      << "own delete hides the row before commit";
  EXPECT_EQ(c.values[2], 7777) << "own write is visible to the scan";
}

TEST(ScanTxn, CommittedDeleteHidesRecordFromScansAndReads) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  {
    SiloContext ctx(db.get(), &rng, 0);
    ctx.Delete(0, 0, 30);
    ASSERT_EQ(SiloOccCommit(ctx, gen, epoch).status, TxnStatus::kCommitted);
  }
  SiloContext ctx(db.get(), &rng, 0);
  int64_t out;
  EXPECT_FALSE(ctx.Read(0, 0, 30, &out)) << "tombstone reads as absent";
  KeyCollector c;
  ASSERT_TRUE(ctx.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{10, 20, 40, 50}));
  // Re-inserting the key resurrects the record with a fresh TID.
  {
    SiloContext ctx2(db.get(), &rng, 0);
    int64_t v = 1;
    ctx2.Insert(0, 0, 30, &v);
    ASSERT_EQ(SiloOccCommit(ctx2, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_TRUE(SiloContext(db.get(), &rng, 0).Read(0, 0, 30, &out));
}

TEST(ScanTxn, PhantomInsertIntoScannedRangeAbortsTheScanner) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};

  // T1 scans [0, 100], then T2 inserts key 25 inside the range and commits
  // before T1.  T1's commit must abort: its scan no longer holds.
  SiloContext t1(db.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(t1.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  int64_t v = 1;
  t1.Write(0, 0, 10, &v);  // give T1 a write so the commit does work

  {
    SiloContext t2(db.get(), &rng, 1);
    int64_t nv = 2500;
    t2.Insert(0, 0, 25, &nv);
    ASSERT_EQ(SiloOccCommit(t2, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_EQ(SiloOccCommit(t1, gen, epoch).status, TxnStatus::kAbortConflict)
      << "insert into a scanned range between read and commit must abort";

  // Control: an insert outside the scanned range does not abort the scanner.
  SiloContext t3(db.get(), &rng, 0);
  KeyCollector c3;
  ASSERT_TRUE(t3.Scan(0, 0, 0, 30, 0, KeyCollector::Visit, &c3));
  t3.Write(0, 0, 10, &v);
  {
    SiloContext t4(db.get(), &rng, 1);
    int64_t nv = 9900;
    t4.Insert(0, 0, 99, &nv);
    ASSERT_EQ(SiloOccCommit(t4, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_EQ(SiloOccCommit(t3, gen, epoch).status, TxnStatus::kCommitted);
}

TEST(ScanTxn, TruncatedScanOnlyValidatesTheVisitedPrefix) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};

  // T1 scans with limit 2 (stops at key 20); an insert at 35 — beyond the
  // truncation point — must NOT abort it, an insert at 15 must.
  SiloContext t1(db.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(t1.Scan(0, 0, 0, 100, 2, KeyCollector::Visit, &c));
  int64_t v = 1;
  t1.Write(0, 0, 50, &v);
  {
    SiloContext t2(db.get(), &rng, 1);
    int64_t nv = 3500;
    t2.Insert(0, 0, 35, &nv);
    ASSERT_EQ(SiloOccCommit(t2, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_EQ(SiloOccCommit(t1, gen, epoch).status, TxnStatus::kCommitted);

  SiloContext t3(db.get(), &rng, 0);
  KeyCollector c3;
  ASSERT_TRUE(t3.Scan(0, 0, 0, 100, 2, KeyCollector::Visit, &c3));
  t3.Write(0, 0, 50, &v);
  {
    SiloContext t4(db.get(), &rng, 1);
    int64_t nv = 1500;
    t4.Insert(0, 0, 15, &nv);
    ASSERT_EQ(SiloOccCommit(t4, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_EQ(SiloOccCommit(t3, gen, epoch).status, TxnStatus::kAbortConflict);
}

TEST(ScanTxn, DeleteInteractsCorrectlyWithOtherBufferedAccesses) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  int64_t out;

  // Read-after-delete observes absence.
  {
    SiloContext t(db.get(), &rng, 0);
    t.Delete(0, 0, 30);
    EXPECT_FALSE(t.Read(0, 0, 30, &out));
  }
  // Write-after-delete resurrects the row: the write wins at commit.
  {
    SiloContext t(db.get(), &rng, 0);
    t.Delete(0, 0, 30);
    int64_t v = 12345;
    t.Write(0, 0, 30, &v);
    ASSERT_TRUE(t.Read(0, 0, 30, &out));
    EXPECT_EQ(out, 12345);
    ASSERT_EQ(SiloOccCommit(t, gen, epoch).status, TxnStatus::kCommitted);
  }
  ASSERT_TRUE(SiloContext(db.get(), &rng, 0).Read(0, 0, 30, &out));
  EXPECT_EQ(out, 12345);
  // Insert-after-delete within one transaction also resurrects.
  {
    SiloContext t(db.get(), &rng, 0);
    t.Delete(0, 0, 40);
    int64_t v = 777;
    t.Insert(0, 0, 40, &v);
    ASSERT_EQ(SiloOccCommit(t, gen, epoch).status, TxnStatus::kCommitted);
  }
  ASSERT_TRUE(SiloContext(db.get(), &rng, 0).Read(0, 0, 40, &out));
  EXPECT_EQ(out, 777);
}

TEST(ScanTxn, OwnDeleteInsideScannedRangeIsNotAPhantom) {
  // Regression: the delete leaves the underlying record present (and, at
  // validation, locked by this very transaction); the re-walk must treat it
  // as own pending work, not as a committed phantom.
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext t1(db.get(), &rng, 0);
  t1.Delete(0, 0, 30);
  KeyCollector c;
  ASSERT_TRUE(t1.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{10, 20, 40, 50}));
  EXPECT_EQ(SiloOccCommit(t1, gen, epoch).status, TxnStatus::kCommitted)
      << "delete-then-scan of the same range must commit";
  int64_t out;
  EXPECT_FALSE(SiloContext(db.get(), &rng, 0).Read(0, 0, 30, &out));
}

TEST(ScanTxn, ConcurrentDeleteOfScannedRecordAbortsTheScanner) {
  auto db = MakeOrderedDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext t1(db.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(t1.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  int64_t v = 1;
  t1.Write(0, 0, 10, &v);
  {
    SiloContext t2(db.get(), &rng, 1);
    t2.Delete(0, 0, 30);
    ASSERT_EQ(SiloOccCommit(t2, gen, epoch).status, TxnStatus::kCommitted);
  }
  EXPECT_EQ(SiloOccCommit(t1, gen, epoch).status, TxnStatus::kAbortConflict)
      << "a scanned record vanishing before commit fails TID validation";
}

TEST(ScanTxn, DeleteReplicatesAsTombstoneAndOrdersByTid) {
  auto db = MakeOrderedDb();
  auto replica = MakeOrderedDb();
  ReplicationCounters counters(2);
  ReplicationApplier applier(replica.get(), &counters);

  // Apply a delete with TID t9, then a stale value write with TID t5: the
  // tombstone must win (Thomas write rule over deletes).
  uint64_t t9 = Tid::Make(1, 9, 0);
  uint64_t t5 = Tid::Make(1, 5, 0);
  WriteBuffer batch;
  SerializeDeleteEntry(batch, 0, 0, 30, t9);
  int64_t stale = 4242;
  SerializeValueEntry(batch, 0, 0, 30, t5,
                      std::string_view(reinterpret_cast<char*>(&stale), 8));
  applier.ApplyBatch(0, batch.data());

  HashTable::Row row = replica->table(0, 0)->GetRow(30);
  ASSERT_TRUE(row.valid());
  uint64_t w = row.rec->LoadWord();
  EXPECT_TRUE(Record::IsAbsent(w));
  EXPECT_EQ(Record::TidOf(w), t9) << "stale value must not resurrect";
  // And the ordered index skips it like any absent record.
  Rng rng(1);
  SiloContext ctx(replica.get(), &rng, 0);
  KeyCollector c;
  ASSERT_TRUE(ctx.Scan(0, 0, 0, 100, 0, KeyCollector::Visit, &c));
  EXPECT_EQ(c.keys, (std::vector<uint64_t>{10, 20, 40, 50}));
}

// --- full-mix TPC-C transaction bodies against a populated partition ---

class TpccFullMixTest : public ::testing::Test {
 protected:
  TpccFullMixTest() {
    TpccOptions o;
    o.districts_per_warehouse = 4;
    o.customers_per_district = 60;
    o.items = 200;
    o.full_mix = true;
    wl_ = std::make_unique<TpccWorkload>(o);
    db_ = std::make_unique<Database>(wl_->Schemas(), 1, std::vector<int>{0},
                                     false);
    wl_->PopulatePartition(*db_, 0);
  }

  TxnStatus Run(const TxnRequest& req) {
    SiloContext ctx(db_.get(), &rng_, 0);
    TxnStatus st = req.proc(ctx);
    if (st != TxnStatus::kCommitted) return st;
    return SiloSerialCommit(ctx, gen_, epoch_).status;
  }

  std::unique_ptr<TpccWorkload> wl_;
  std::unique_ptr<Database> db_;
  Rng rng_{7};
  TidGenerator gen_{0};
  std::atomic<uint64_t> epoch_{1};
};

TEST_F(TpccFullMixTest, PopulationLoadsInitialOrders) {
  int C = wl_->options().customers_per_district;
  int D = wl_->options().districts_per_warehouse;
  EXPECT_EQ(db_->table(TpccWorkload::kOrder, 0)->size(),
            static_cast<size_t>(C * D));
  EXPECT_EQ(db_->table(TpccWorkload::kOrderCustIndex, 0)->size(),
            static_cast<size_t>(C * D));
  // ~30% of each district's orders are undelivered.
  size_t pending = db_->table(TpccWorkload::kNewOrder, 0)->size();
  EXPECT_NEAR(static_cast<double>(pending), 0.3 * C * D, D + 1);
}

TEST_F(TpccFullMixTest, DeliveryDrainsOldestOrdersAndPaysCustomers) {
  HashTable* no_table = db_->table(TpccWorkload::kNewOrder, 0);
  auto pending = [&] {
    // Count visible (non-tombstone) NEW-ORDER rows via the index.
    size_t n = 0;
    no_table->index()->Scan(0, ~0ull, [&](uint64_t, Record* rec) {
      if (rec->IsPresent()) ++n;
      return true;
    });
    return n;
  };
  size_t before = pending();
  ASSERT_GT(before, 0u);
  ASSERT_EQ(Run(wl_->MakeDelivery(rng_, 0)), TxnStatus::kCommitted);
  size_t after = pending();
  EXPECT_EQ(before - after,
            static_cast<size_t>(wl_->options().districts_per_warehouse))
      << "one order delivered per non-empty district";
  // Drain everything; Delivery on an empty warehouse still commits.
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(Run(wl_->MakeDelivery(rng_, 0)), TxnStatus::kCommitted);
  }
  EXPECT_EQ(pending(), 0u);
  ASSERT_EQ(Run(wl_->MakeDelivery(rng_, 0)), TxnStatus::kCommitted);
}

TEST_F(TpccFullMixTest, OrderStatusAndStockLevelAreReadOnlyAndCommit) {
  uint64_t orders = db_->table(TpccWorkload::kOrder, 0)->size();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(Run(wl_->MakeOrderStatus(rng_, 0)), TxnStatus::kCommitted);
    ASSERT_EQ(Run(wl_->MakeStockLevel(rng_, 0)), TxnStatus::kCommitted);
  }
  EXPECT_EQ(db_->table(TpccWorkload::kOrder, 0)->size(), orders)
      << "read-only transactions must not create rows";
}

TEST_F(TpccFullMixTest, MixedRunKeepsOrderBookConsistent) {
  int committed = 0;
  for (int i = 0; i < 600; ++i) {
    TxnStatus st = Run(wl_->MakeSinglePartition(rng_, 0, 1));
    ASSERT_NE(st, TxnStatus::kAbortConflict)
        << "serial execution cannot conflict";
    committed += st == TxnStatus::kCommitted;
  }
  EXPECT_GT(committed, 550);
  // Every NEW-ORDER row still pairs with an undelivered ORDER row, and the
  // order-cust index never points at a missing order.
  for (int d = 0; d < wl_->options().districts_per_warehouse; ++d) {
    HashTable* orders = db_->table(TpccWorkload::kOrder, 0);
    db_->table(TpccWorkload::kNewOrder, 0)
        ->index()
        ->Scan(TpccWorkload::OrderKey(d, 0), TpccWorkload::OrderKey(d + 1, 0) - 1,
               [&](uint64_t key, Record* rec) {
                 if (!rec->IsPresent()) return true;
                 HashTable::Row row = orders->GetRow(key);
                 EXPECT_TRUE(row.valid() && row.rec->IsPresent());
                 OrderRow orow;
                 row.ReadStable(&orow);
                 EXPECT_EQ(orow.carrier_id, 0) << "pending ⇒ no carrier";
                 return true;
               });
  }
  // Generation counters cover all five classes.
  EXPECT_GT(wl_->generated(TpccWorkload::kClassNewOrder), 0u);
  EXPECT_GT(wl_->generated(TpccWorkload::kClassPayment), 0u);
  EXPECT_GT(wl_->generated(TpccWorkload::kClassOrderStatus), 0u);
  EXPECT_GT(wl_->generated(TpccWorkload::kClassDelivery), 0u);
  EXPECT_GT(wl_->generated(TpccWorkload::kClassStockLevel), 0u);
}

}  // namespace
}  // namespace star
