// Serving front end: wire protocol round trips, the admission gate's
// shed/admit algebra, the group-commit tracker's two-gate release (the
// per-request commit_wait=durable mechanism), the stored-procedure
// registry's routing contract, and the full client path — hello / call /
// result over TCP loopback against a live engine, including the
// read-your-writes session floor end to end.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "cc/epoch.h"
#include "common/clock.h"
#include "core/engine.h"
#include "serve/admission.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "workload/ycsb.h"

namespace star {
namespace {

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 2000;
  return o;
}

using serve::AdmissionController;
using serve::CallBody;
using serve::FrameHeader;
using serve::FrameType;
using serve::ProcRegistry;
using serve::ResultBody;
using serve::ServeOptions;
using serve::ServeServer;
using serve::ShedBody;
using serve::Status;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(ServeProtocol, HeaderRoundTrips) {
  FrameHeader h;
  h.body_len = 13;
  h.type = static_cast<uint16_t>(FrameType::kCall);
  h.flags = 7;
  h.proc = ProcRegistry::kTpccNewOrder;
  h.session = 0x1122334455667788ull;
  h.request_id = 0x99aabbccddeeff00ull;
  char buf[serve::kHeaderSize];
  EncodeHeader(buf, h);
  FrameHeader d;
  ASSERT_TRUE(DecodeHeader(buf, &d));
  EXPECT_EQ(d.magic, serve::kMagic);
  EXPECT_EQ(d.body_len, h.body_len);
  EXPECT_EQ(d.type, h.type);
  EXPECT_EQ(d.flags, h.flags);
  EXPECT_EQ(d.proc, h.proc);
  EXPECT_EQ(d.session, h.session);
  EXPECT_EQ(d.request_id, h.request_id);
}

TEST(ServeProtocol, RejectsBadMagicAndOversizedBody) {
  FrameHeader h;
  char buf[serve::kHeaderSize];
  EncodeHeader(buf, h);
  buf[0] ^= 0x5a;  // corrupt the magic
  FrameHeader d;
  EXPECT_FALSE(DecodeHeader(buf, &d));

  h.body_len = serve::kMaxBody + 1;
  EncodeHeader(buf, h);
  EXPECT_FALSE(DecodeHeader(buf, &d))
      << "an oversized body length is a protocol error, not an allocation";
}

TEST(ServeProtocol, BodiesRoundTripAndShortBuffersFail) {
  CallBody c;
  c.partition = 3;
  c.seed = 0xdeadbeefcafef00dull;
  c.flags = serve::kCallWaitDurable;
  char cb[serve::kCallBodySize];
  EncodeCall(cb, c);
  CallBody cd;
  ASSERT_TRUE(DecodeCall(cb, sizeof(cb), &cd));
  EXPECT_EQ(cd.partition, c.partition);
  EXPECT_EQ(cd.seed, c.seed);
  EXPECT_EQ(cd.flags, c.flags);
  EXPECT_FALSE(DecodeCall(cb, serve::kCallBodySize - 1, &cd));

  ResultBody r;
  r.status = static_cast<uint8_t>(Status::kAbortConflict);
  r.epoch = 42;
  char rb[serve::kResultBodySize];
  EncodeResult(rb, r);
  ResultBody rd;
  ASSERT_TRUE(DecodeResult(rb, sizeof(rb), &rd));
  EXPECT_EQ(rd.status, r.status);
  EXPECT_EQ(rd.epoch, r.epoch);
  EXPECT_FALSE(DecodeResult(rb, serve::kResultBodySize - 1, &rd));

  ShedBody s;
  s.est_wait_ns = 123456789;
  char sb[serve::kShedBodySize];
  EncodeShed(sb, s);
  ShedBody sd;
  ASSERT_TRUE(DecodeShed(sb, sizeof(sb), &sd));
  EXPECT_EQ(sd.est_wait_ns, s.est_wait_ns);
  EXPECT_FALSE(DecodeShed(sb, serve::kShedBodySize - 1, &sd));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, BootstrapDepthAlwaysAdmits) {
  AdmissionController::Options o;
  o.bootstrap_inflight = 4;
  o.slo_budget_ns = 1;  // a budget nothing could meet
  AdmissionController a(o);
  // Poison the drain estimate so the SLO test would reject if consulted.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.Admit(1000, nullptr)) << "below bootstrap depth";
  }
  EXPECT_EQ(a.inflight(), 4u);
}

TEST(Admission, ShedsWhenEstimatedWaitExceedsBudget) {
  AdmissionController::Options o;
  o.bootstrap_inflight = 2;
  o.slo_budget_ns = 1000;  // 1 us budget
  AdmissionController a(o);
  // Establish a slow drain: completions 1 ms apart -> EWMA ~1 ms each.
  uint64_t now = 1;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(a.Admit(now, nullptr));
    a.OnComplete(now);
    now += 1'000'000;
  }
  EXPECT_GT(a.inter_complete_ns(), 100'000u);
  // Fill past the bootstrap floor, then the estimate (inflight x ~1 ms)
  // dwarfs the 1 us budget.
  ASSERT_TRUE(a.Admit(now, nullptr));
  ASSERT_TRUE(a.Admit(now, nullptr));
  uint64_t est = 0;
  EXPECT_FALSE(a.Admit(now, &est));
  EXPECT_GT(est, o.slo_budget_ns);
  EXPECT_EQ(a.shed(), 1u);
}

TEST(Admission, HardCapAndCancelRestoreInflight) {
  AdmissionController::Options o;
  o.bootstrap_inflight = 64;  // keep the SLO estimate out of the way
  o.max_inflight = 2;
  AdmissionController a(o);
  ASSERT_TRUE(a.Admit(1, nullptr));
  ASSERT_TRUE(a.Admit(1, nullptr));
  EXPECT_FALSE(a.Admit(1, nullptr)) << "hard cap";
  a.OnCancel();
  EXPECT_TRUE(a.Admit(1, nullptr)) << "cancel released the slot";
  a.OnComplete(2);
  a.OnComplete(3);
  EXPECT_EQ(a.inflight(), 0u);
  EXPECT_EQ(a.completed(), 2u);
}

// ---------------------------------------------------------------------------
// Two-gate group-commit release (per-request commit_wait=durable)
// ---------------------------------------------------------------------------

struct DoneRecord {
  int calls = 0;
  bool committed = false;
  uint64_t epoch = 0;
};

void RecordDone(void* ctx, bool committed, uint64_t epoch) {
  auto* r = static_cast<DoneRecord*>(ctx);
  ++r->calls;
  r->committed = committed;
  r->epoch = epoch;
}

TEST(GroupCommitTracker, DurableEntriesHoldAtThePlainGate) {
  GroupCommitTracker t;
  Histogram lat;
  DoneRecord plain, durable;
  t.Add(5, 100, &RecordDone, &plain, /*wait_durable=*/false);
  t.Add(5, 100, &RecordDone, &durable, /*wait_durable=*/true);

  // Epoch 5 closed (release gate 6), but durability only covers epoch 4.
  EXPECT_EQ(t.Drain(/*release=*/6, /*durable_release=*/5, 200, lat), 1u);
  EXPECT_EQ(plain.calls, 1);
  EXPECT_TRUE(plain.committed);
  EXPECT_EQ(plain.epoch, 5u);
  EXPECT_EQ(durable.calls, 0) << "held for the durable gate";
  EXPECT_EQ(t.pending(), 1u);

  // Durability catches up: the held entry releases with committed=true.
  EXPECT_EQ(t.Drain(6, 6, 300, lat), 1u);
  EXPECT_EQ(durable.calls, 1);
  EXPECT_TRUE(durable.committed);
  EXPECT_EQ(t.pending(), 0u);
}

TEST(GroupCommitTracker, DropFromFiresAbortedCompletions) {
  GroupCommitTracker t;
  Histogram lat;
  DoneRecord kept, dropped;
  t.Add(3, 100, &RecordDone, &kept, false);
  t.Add(7, 100, &RecordDone, &dropped, false);
  EXPECT_EQ(t.DropFrom(5), 1u);
  EXPECT_EQ(dropped.calls, 1);
  EXPECT_FALSE(dropped.committed) << "reverted epochs report the abort";
  EXPECT_EQ(kept.calls, 0);
  EXPECT_EQ(t.DrainAll(200, lat), 1u);
  EXPECT_EQ(kept.calls, 1);
  EXPECT_TRUE(kept.committed) << "shutdown drain releases survivors";
}

// ---------------------------------------------------------------------------
// Stored-procedure registry
// ---------------------------------------------------------------------------

TEST(ProcRegistryTest, StampsTheRoutingContract) {
  YcsbWorkload wl(SmallYcsb());
  ProcRegistry reg = ProcRegistry::ForWorkload(wl);
  TxnRequest req;
  ASSERT_TRUE(reg.Make(ProcRegistry::kReadOnly, /*seed=*/1, /*partition=*/0,
                       /*num_partitions=*/4, &req));
  EXPECT_TRUE(req.read_only) << "the registry entry decides routing";
  EXPECT_NE(req.proc, nullptr);

  ASSERT_TRUE(reg.Make(ProcRegistry::kCross, 1, 0, 4, &req));
  EXPECT_TRUE(req.cross_partition);
  EXPECT_FALSE(req.read_only);

  ASSERT_TRUE(reg.Make(ProcRegistry::kSingle, 1, 9999, 4, &req));
  EXPECT_EQ(req.home_partition, 3) << "partition clamped into range";

  EXPECT_FALSE(reg.Make(/*id=*/777, 1, 0, 4, &req)) << "unknown procedure";
}

TEST(ProcRegistryTest, SameSeedSameArguments) {
  YcsbWorkload wl(SmallYcsb());
  ProcRegistry reg = ProcRegistry::ForWorkload(wl);
  TxnRequest a, b;
  ASSERT_TRUE(reg.Make(ProcRegistry::kSingle, 42, 1, 4, &a));
  ASSERT_TRUE(reg.Make(ProcRegistry::kSingle, 42, 1, 4, &b));
  // The argument surface is regenerated deterministically from the seed:
  // both requests touch the identical access list.
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].key, b.accesses[i].key);
    EXPECT_EQ(a.accesses[i].partition, b.accesses[i].partition);
  }
}

// ---------------------------------------------------------------------------
// End to end over TCP loopback
// ---------------------------------------------------------------------------

/// A deliberately simple blocking client (the loadgen's nonblocking pump is
/// exercised by serving_smoke; tests want determinism).
class BlockingClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }
  ~BlockingClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool SendAll(const char* data, size_t len) {
    size_t off = 0;
    while (off < len) {
      ssize_t n = send(fd_, data + off, len - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvAll(char* data, size_t len) {
    size_t off = 0;
    while (off < len) {
      ssize_t n = recv(fd_, data + off, len - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Hello(uint64_t* session) {
    FrameHeader h;
    h.type = static_cast<uint16_t>(FrameType::kHello);
    char buf[serve::kHeaderSize];
    EncodeHeader(buf, h);
    if (!SendAll(buf, sizeof(buf))) return false;
    FrameHeader ack;
    if (!RecvAll(buf, sizeof(buf)) || !DecodeHeader(buf, &ack)) return false;
    if (ack.type != static_cast<uint16_t>(FrameType::kHelloAck)) return false;
    *session = ack.session;
    return true;
  }

  /// One call, waiting for its response frame.  Returns the frame type;
  /// fills `result` for kResult frames.
  FrameType Call(uint32_t proc, uint64_t session, uint64_t seed,
                 uint32_t partition, uint8_t flags, ResultBody* result) {
    FrameHeader h;
    h.type = static_cast<uint16_t>(FrameType::kCall);
    h.body_len = serve::kCallBodySize;
    h.proc = proc;
    h.session = session;
    h.request_id = ++next_req_;
    CallBody c;
    c.partition = partition;
    c.seed = seed;
    c.flags = flags;
    char buf[serve::kHeaderSize + serve::kCallBodySize];
    EncodeHeader(buf, h);
    EncodeCall(buf + serve::kHeaderSize, c);
    if (!SendAll(buf, sizeof(buf))) return FrameType::kGoodbye;
    FrameHeader rh;
    char hdr[serve::kHeaderSize];
    if (!RecvAll(hdr, sizeof(hdr)) || !DecodeHeader(hdr, &rh)) {
      return FrameType::kGoodbye;
    }
    char body[64];
    if (rh.body_len > sizeof(body)) return FrameType::kGoodbye;
    if (rh.body_len > 0 && !RecvAll(body, rh.body_len)) {
      return FrameType::kGoodbye;
    }
    EXPECT_EQ(rh.request_id, h.request_id) << "responses echo the request id";
    if (rh.type == static_cast<uint16_t>(FrameType::kResult) &&
        result != nullptr) {
      EXPECT_TRUE(DecodeResult(body, rh.body_len, result));
    }
    return static_cast<FrameType>(rh.type);
  }

  int fd_ = -1;
  uint64_t next_req_ = 0;
};

StarOptions ServeStar() {
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.synthetic_load = false;   // the engine executes only what clients send
  o.replica_read_workers = 1; // read-only procs need replica readers
  return o;
}

TEST(ServeServerTest, WritesReadsAndReadYourWrites) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = ServeStar();
  ProcRegistry reg = ProcRegistry::ForWorkload(wl);
  StarEngine engine(o, wl);
  engine.Start();
  {
    ServeOptions so;
    ServeServer server(&engine, &reg, so);
    ASSERT_TRUE(server.Start());

    BlockingClient cli;
    ASSERT_TRUE(cli.Connect(server.port()));
    uint64_t session = 0;
    ASSERT_TRUE(cli.Hello(&session));
    EXPECT_NE(session, 0u);

    // A single-partition write: blocks until group-commit release, so the
    // result carries the commit epoch.
    ResultBody wr;
    ASSERT_EQ(cli.Call(ProcRegistry::kSingle, session, /*seed=*/7,
                       /*partition=*/0, /*flags=*/0, &wr),
              FrameType::kResult);
    ASSERT_EQ(static_cast<Status>(wr.status), Status::kOk);
    EXPECT_GT(wr.epoch, 0u) << "committed writes report their epoch";

    // Read-your-writes: the io thread advanced this session's floor to the
    // write's epoch before the client could even see the result, so the
    // read's snapshot must pin at least that epoch.
    ResultBody rd;
    ASSERT_EQ(cli.Call(ProcRegistry::kReadOnly, session, /*seed=*/8,
                       /*partition=*/0, /*flags=*/0, &rd),
              FrameType::kResult);
    ASSERT_EQ(static_cast<Status>(rd.status), Status::kOk);
    EXPECT_GE(rd.epoch, wr.epoch)
        << "session read served below its read-your-writes floor";

    // A cross-partition write commits through the single-master path.
    ResultBody cr;
    ASSERT_EQ(cli.Call(ProcRegistry::kCross, session, /*seed=*/9,
                       /*partition=*/1, /*flags=*/0, &cr),
              FrameType::kResult);
    EXPECT_EQ(static_cast<Status>(cr.status), Status::kOk);

    // wait_durable on an engine without durable logging degrades to the
    // plain release gate instead of hanging forever.
    ResultBody dr;
    ASSERT_EQ(cli.Call(ProcRegistry::kSingle, session, /*seed=*/10,
                       /*partition=*/0, serve::kCallWaitDurable, &dr),
              FrameType::kResult);
    EXPECT_EQ(static_cast<Status>(dr.status), Status::kOk);

    // Unknown procedure id answers kBadRequest without killing the
    // connection.
    ResultBody br;
    ASSERT_EQ(cli.Call(/*proc=*/999, session, 1, 0, 0, &br),
              FrameType::kResult);
    EXPECT_EQ(static_cast<Status>(br.status), Status::kBadRequest);

    ServeServer::Counters c = server.counters();
    EXPECT_EQ(c.conns_accepted, 1u);
    EXPECT_GE(c.results, 4u);

    server.Stop();
  }
  engine.Stop();
}

TEST(ServeServerTest, ZeroCapacityGateShedsEveryCall) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = ServeStar();
  ProcRegistry reg = ProcRegistry::ForWorkload(wl);
  StarEngine engine(o, wl);
  engine.Start();
  {
    ServeOptions so;
    so.admission.max_inflight = 0;
    so.admission.bootstrap_inflight = 0;
    ServeServer server(&engine, &reg, so);
    ASSERT_TRUE(server.Start());

    BlockingClient cli;
    ASSERT_TRUE(cli.Connect(server.port()));
    uint64_t session = 0;
    ASSERT_TRUE(cli.Hello(&session));
    EXPECT_EQ(cli.Call(ProcRegistry::kSingle, session, 1, 0, 0, nullptr),
              FrameType::kShed)
        << "a zero-capacity gate sheds at the door with a kShed frame";
    EXPECT_EQ(server.counters().shed, 1u);
    server.Stop();
  }
  engine.Stop();
}

}  // namespace
}  // namespace star
