// Protocol robustness: the serving front end faces untrusted clients, so
// no byte sequence — truncated, oversized, garbage, or cut off mid-frame —
// may crash or wedge the server.  Each attack is followed by a well-formed
// probe client completing a real call, which is the liveness proof: a
// server that leaked the attacked connection's state, deadlocked its io
// thread, or tripped an assert would fail the probe.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "workload/ycsb.h"

namespace star {
namespace {

using serve::CallBody;
using serve::FrameHeader;
using serve::FrameType;
using serve::ProcRegistry;
using serve::ResultBody;
using serve::ServeOptions;
using serve::ServeServer;
using serve::Status;

int Dial(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool RecvAll(int fd, char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = recv(fd, data + off, len - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// One engine + server for the whole attack suite: surviving every attack
/// on shared state is precisely the point.
class ServeFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    YcsbOptions yo;
    yo.rows_per_partition = 2000;
    wl_ = new YcsbWorkload(yo);
    StarOptions o;
    o.cluster.full_replicas = 1;
    o.cluster.partial_replicas = 3;
    o.cluster.workers_per_node = 2;
    o.iteration_ms = 10;
    o.synthetic_load = false;
    o.replica_read_workers = 1;
    reg_ = new ProcRegistry(ProcRegistry::ForWorkload(*wl_));
    engine_ = new StarEngine(o, *wl_);
    engine_->Start();
    server_ = new ServeServer(engine_, reg_, ServeOptions{});
    ASSERT_TRUE(server_->Start());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    engine_->Stop();
    delete server_;
    delete engine_;
    delete reg_;
    delete wl_;
    server_ = nullptr;
    engine_ = nullptr;
  }

  /// The liveness probe: a fresh well-formed client must still get served.
  static void ExpectServerAlive() {
    int fd = Dial(server_->port());
    ASSERT_GE(fd, 0) << "server stopped accepting";
    FrameHeader h;
    h.type = static_cast<uint16_t>(FrameType::kCall);
    h.body_len = serve::kCallBodySize;
    h.proc = ProcRegistry::kSingle;
    h.request_id = 0xfeed;
    CallBody c;
    c.partition = 0;
    c.seed = 11;
    char buf[serve::kHeaderSize + serve::kCallBodySize];
    EncodeHeader(buf, h);
    EncodeCall(buf + serve::kHeaderSize, c);
    ASSERT_TRUE(SendAll(fd, buf, sizeof(buf)));
    char rh[serve::kHeaderSize];
    ASSERT_TRUE(RecvAll(fd, rh, sizeof(rh))) << "server wedged: no response";
    FrameHeader rd;
    ASSERT_TRUE(DecodeHeader(rh, &rd));
    EXPECT_EQ(rd.request_id, h.request_id);
    char body[64];
    ASSERT_LE(rd.body_len, sizeof(body));
    ASSERT_TRUE(RecvAll(fd, body, rd.body_len));
    ResultBody r;
    ASSERT_TRUE(DecodeResult(body, rd.body_len, &r));
    EXPECT_EQ(static_cast<Status>(r.status), Status::kOk);
    close(fd);
  }

  static YcsbWorkload* wl_;
  static ProcRegistry* reg_;
  static StarEngine* engine_;
  static ServeServer* server_;
};

YcsbWorkload* ServeFuzz::wl_ = nullptr;
ProcRegistry* ServeFuzz::reg_ = nullptr;
StarEngine* ServeFuzz::engine_ = nullptr;
ServeServer* ServeFuzz::server_ = nullptr;

TEST_F(ServeFuzz, TruncatedHeaderThenDisconnect) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  char partial[7] = {0x53, 0x52, 0x56, 0x31, 1, 0, 0};
  ASSERT_TRUE(SendAll(fd, partial, sizeof(partial)));
  close(fd);  // mid-header disconnect
  ExpectServerAlive();
}

TEST_F(ServeFuzz, GarbageBytesCloseTheConnection) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  std::string garbage(4096, '\0');
  Rng rng(0xbadf00d);
  for (char& ch : garbage) ch = static_cast<char>(rng.Next());
  // Ensure the magic really is wrong so this exercises the reject path.
  garbage[0] = 0x00;
  SendAll(fd, garbage.data(), garbage.size());  // may fail once server RSTs
  char byte;
  EXPECT_LE(recv(fd, &byte, 1, 0), 0) << "server should close, not reply";
  close(fd);
  ExpectServerAlive();
}

TEST_F(ServeFuzz, OversizedBodyLengthIsRejectedNotAllocated) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kCall);
  char buf[serve::kHeaderSize];
  EncodeHeader(buf, h);
  // Patch body_len beyond kMaxBody after encoding (EncodeHeader is for
  // honest clients; the attack writes the raw field).
  uint32_t huge = serve::kMaxBody + 1;
  std::memcpy(buf + 4, &huge, 4);
  ASSERT_TRUE(SendAll(fd, buf, sizeof(buf)));
  char byte;
  EXPECT_LE(recv(fd, &byte, 1, 0), 0) << "oversized frame must drop the conn";
  close(fd);
  ExpectServerAlive();
}

TEST_F(ServeFuzz, DisconnectMidBody) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kCall);
  h.body_len = serve::kCallBodySize;
  h.proc = ProcRegistry::kSingle;
  char buf[serve::kHeaderSize + 5];
  EncodeHeader(buf, h);
  std::memset(buf + serve::kHeaderSize, 0x41, 5);
  ASSERT_TRUE(SendAll(fd, buf, sizeof(buf)));  // 5 of 13 body bytes
  close(fd);  // the rest never arrives
  ExpectServerAlive();
}

TEST_F(ServeFuzz, DisconnectBeforeResponse) {
  // A valid call whose connection dies while the transaction is in flight:
  // the completion must be dropped by the generation check, not delivered
  // to whoever reuses the slot.
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kCall);
  h.body_len = serve::kCallBodySize;
  h.proc = ProcRegistry::kSingle;
  h.request_id = 0xdead;
  CallBody c;
  c.seed = 99;
  char buf[serve::kHeaderSize + serve::kCallBodySize];
  EncodeHeader(buf, h);
  EncodeCall(buf + serve::kHeaderSize, c);
  ASSERT_TRUE(SendAll(fd, buf, sizeof(buf)));
  close(fd);  // don't wait for the result
  ExpectServerAlive();
}

TEST_F(ServeFuzz, ByteAtATimeHeaderStillParses) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kHello);
  h.request_id = 7;
  char buf[serve::kHeaderSize];
  EncodeHeader(buf, h);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    ASSERT_TRUE(SendAll(fd, buf + i, 1));  // worst-case fragmentation
  }
  char rh[serve::kHeaderSize];
  ASSERT_TRUE(RecvAll(fd, rh, sizeof(rh)));
  FrameHeader rd;
  ASSERT_TRUE(DecodeHeader(rh, &rd));
  EXPECT_EQ(rd.type, static_cast<uint16_t>(FrameType::kHelloAck));
  EXPECT_NE(rd.session, 0u);
  close(fd);
  ExpectServerAlive();
}

TEST_F(ServeFuzz, UnknownFrameTypeClosesTheConnection) {
  int fd = Dial(server_->port());
  ASSERT_GE(fd, 0);
  FrameHeader h;
  h.type = 0x7777;  // not a FrameType
  char buf[serve::kHeaderSize];
  EncodeHeader(buf, h);
  ASSERT_TRUE(SendAll(fd, buf, sizeof(buf)));
  char byte;
  EXPECT_LE(recv(fd, &byte, 1, 0), 0);
  close(fd);
  ExpectServerAlive();
}

TEST_F(ServeFuzz, RandomizedFrameFuzz) {
  // Seeded random attacks: random lengths of random bytes, sometimes with a
  // valid magic prefix so parsing proceeds into the length/type fields.
  Rng rng(20260807);
  for (int round = 0; round < 50; ++round) {
    int fd = Dial(server_->port());
    ASSERT_GE(fd, 0) << "round " << round;
    size_t len = 1 + rng.Uniform(512);
    std::string bytes(len, '\0');
    for (char& ch : bytes) ch = static_cast<char>(rng.Next());
    if (rng.Flip(0.5) && len >= 4) {
      std::memcpy(bytes.data(), &serve::kMagic, 4);
    }
    SendAll(fd, bytes.data(), bytes.size());
    if (rng.Flip(0.5)) {
      // Half the rounds linger briefly so the server actually parses what
      // was sent before the disconnect.
      char byte;
      recv(fd, &byte, 1, MSG_DONTWAIT);
    }
    close(fd);
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace star
